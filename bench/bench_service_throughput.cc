/// \file
/// Exploration-service throughput: jobs/sec at 1-8 workers over the
/// bundled minipy+minilua workload batch (every Table-3 package,
/// CHEF_BENCH_REPS repetitions with distinct spec seeds).
///
/// Besides the scaling table, the bench cross-checks that every worker
/// count discovers the same deduplicated set of high-level path
/// fingerprints (per-job sessions are seed-deterministic; the shared
/// corpus is order-independent as a set), and writes the 4-worker batch
/// as a JSON report (arg 1, default "service_report.json").

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "service/report.h"
#include "service/service.h"
#include "workloads/registry.h"

namespace {

std::vector<chef::service::JobSpec>
MakeBatch(int reps)
{
    std::vector<chef::service::JobSpec> jobs;
    for (int rep = 0; rep < reps; ++rep) {
        for (const std::string& id : chef::workloads::WorkloadIds()) {
            chef::service::JobSpec spec;
            spec.workload = id;
            spec.label = id + "#" + std::to_string(rep);
            spec.seed = static_cast<uint64_t>(rep) + 1;
            spec.options.max_runs = 25;
            // Bound work by run count only: a session truncated by its
            // own wall clock under CPU contention would break the
            // corpus-equality check across worker counts.
            spec.options.max_seconds = 1e9;
            spec.options.collect_timeline = false;
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

}  // namespace

int
main(int argc, char** argv)
{
    using chef::service::ExplorationService;
    using chef::service::JobResult;

    const char* reps_env = std::getenv("CHEF_BENCH_REPS");
    const int reps = reps_env != nullptr ? std::atoi(reps_env) : 2;
    const std::string report_path =
        argc > 1 ? argv[1] : "service_report.json";

    const std::vector<chef::service::JobSpec> jobs =
        MakeBatch(reps > 0 ? reps : 2);
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("service throughput: %zu jobs (%zu workloads x %d reps), "
                "%u hardware threads\n",
                jobs.size(), chef::workloads::WorkloadIds().size(),
                reps > 0 ? reps : 2, cores);
    if (cores < 4) {
        std::printf("NOTE: <4 hardware threads; worker scaling is "
                    "serialized by the OS and speedups reflect "
                    "scheduling, not the service.\n");
    }
    std::printf("\n");
    std::printf("%8s %10s %10s %10s %12s %8s\n", "workers", "wall_s",
                "jobs/s", "speedup", "corpus", "match");

    double baseline_jps = 0.0;
    double speedup_at_4 = 0.0;
    std::vector<chef::service::TestCorpus::Key> baseline_keys;
    bool all_match = true;

    for (const size_t workers : {1u, 2u, 4u, 8u}) {
        ExplorationService::Options options;
        options.num_workers = workers;
        options.seed = 1234;
        ExplorationService service(options);
        const std::vector<JobResult> results = service.RunBatch(jobs);

        size_t failed = 0;
        for (const JobResult& result : results) {
            if (result.status != chef::service::JobStatus::kCompleted) {
                ++failed;
            }
        }
        const double jps = service.stats().jobs_per_second;
        const std::vector<chef::service::TestCorpus::Key> keys =
            service.corpus().Keys();

        bool match = true;
        if (workers == 1) {
            baseline_jps = jps;
            baseline_keys = keys;
        } else {
            match = keys == baseline_keys;
            all_match = all_match && match;
        }
        const double speedup =
            baseline_jps > 0.0 ? jps / baseline_jps : 0.0;
        if (workers == 4) {
            speedup_at_4 = speedup;
            if (!chef::service::WriteJsonReportFile(
                    report_path, service.stats(), results,
                    service.corpus())) {
                std::fprintf(stderr, "failed to write %s\n",
                             report_path.c_str());
                return 1;
            }
        }

        std::printf("%8zu %10.2f %10.2f %9.2fx %12zu %8s\n", workers,
                    service.stats().wall_seconds, jps, speedup,
                    keys.size(), workers == 1 ? "-" : (match ? "yes" : "NO"));
        if (failed != 0) {
            std::fprintf(stderr, "  %zu jobs did not complete\n", failed);
        }
    }

    std::printf("\n4-worker speedup: %.2fx (target > 1.5x); corpus %s "
                "across worker counts\n",
                speedup_at_4, all_match ? "identical" : "DIVERGED");
    std::printf("report: %s\n", report_path.c_str());
    return all_match ? 0 : 1;
}
