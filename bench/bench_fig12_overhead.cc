/// \file
/// Figure 12: overhead of the CHEF-derived Python engine relative to the
/// hand-written NICE-like engine on the OpenFlow MAC-learning controller,
/// as a function of the number of symbolic Ethernet frames, for each
/// interpreter build.
///
/// The paper's overhead includes S2E's fixed session cost (booting the
/// guest VM and initializing the interpreter inside it), which dominates
/// at 1-2 frames (~120x), is amortized in the middle (<5x), and gives way
/// to the low-level-reasoning gap at 10 frames (~40x) — a convex curve.
/// Our substrate has no real VM, so that fixed cost is simulated with a
/// constant (kSimulatedVmBootSeconds, documented in DESIGN.md).

#include "bench_common.h"
#include "dedicated/mac_controller.h"
#include "dedicated/nice_engine.h"

namespace chef::bench {
namespace {

/// Simulated S2E session setup: guest VM boot + in-VM interpreter start.
// Scaled to this substrate: the paper's boot is minutes against a
// Python-hosted comparator; both our engines are C++ and ~1000x faster,
// so the fixed cost shrinks proportionally (see EXPERIMENTS.md).
constexpr double kSimulatedVmBootSeconds = 0.25;

struct Measurement {
    double chef_per_path = 0.0;
    double nice_per_path = 0.0;
};

Measurement
Measure(int frames, const interp::InterpBuildOptions& build,
        const Budget& budget, uint64_t seed)
{
    Measurement m;
    // The CHEF-derived engine: full interpreter under the engine.
    {
        auto program = workloads::CompilePyOrDie(
            dedicated::MacControllerSource(frames));
        Engine::Options options;
        options.strategy = StrategyKind::kCupaPath;
        options.seed = seed;
        options.max_runs = budget.max_runs;
        options.max_seconds = budget.max_seconds * 4;
        options.max_steps_per_run = budget.max_steps_per_run;
        Engine engine(options);
        engine.Explore(workloads::MakePyRunFn(
            program, dedicated::MacControllerPyTest(frames), build));
        const double hl =
            std::max<uint64_t>(engine.stats().hl_paths, 1);
        m.chef_per_path =
            (engine.stats().elapsed_seconds + kSimulatedVmBootSeconds) /
            static_cast<double>(hl);
    }
    // The dedicated engine.
    {
        dedicated::NicePyEngine::Options options;
        options.seed = seed;
        options.max_runs = budget.max_runs;
        options.max_seconds = budget.max_seconds * 4;
        dedicated::NicePyEngine engine(
            dedicated::MacControllerSource(frames), options);
        const auto result = engine.Explore(
            "process", dedicated::MacControllerArgs(frames));
        const double hl = std::max<uint64_t>(result.hl_paths, 1);
        // Dedicated engines start instantly: no VM, no guest boot.
        m.nice_per_path =
            result.stats.elapsed_seconds / static_cast<double>(hl);
    }
    return m;
}

}  // namespace
}  // namespace chef::bench

int
main()
{
    using namespace chef::bench;
    const Budget budget = DefaultBudget();
    const int max_frames =
        std::getenv("CHEF_FIG12_MAX_FRAMES")
            ? std::atoi(std::getenv("CHEF_FIG12_MAX_FRAMES"))
            : 6;

    std::printf("CHEF reproduction -- Figure 12: CHEF overhead vs. the "
                "hand-written (NICE-like) engine, MAC-learning "
                "controller\n");
    std::printf("(paper: ~120x at 1-2 frames, <5x after boot "
                "amortization, rising to ~40x at 10 frames; optimizations "
                "reduce overhead by orders of magnitude)\n");
    std::printf("(simulated VM boot cost: %.1fs)\n\n",
                kSimulatedVmBootSeconds);

    std::printf("%-8s", "frames");
    for (int level = 0; level < 4; ++level) {
        std::printf(" %16s",
                    interp::InterpBuildOptions::Level(level).Name());
    }
    std::printf("\n");

    for (int frames = 1; frames <= max_frames; ++frames) {
        std::printf("%-8d", frames);
        for (int level = 0; level < 4; ++level) {
            // The vanilla build explodes quickly; cap the sweep cost by
            // measuring vanilla and +sym-ptr only up to few frames.
            if (level < 2 && frames > 3) {
                std::printf(" %16s", "-");
                continue;
            }
            std::vector<double> overheads;
            for (int rep = 0; rep < budget.reps; ++rep) {
                const Measurement m = Measure(
                    frames, interp::InterpBuildOptions::Level(level),
                    budget, static_cast<uint64_t>(rep + 1));
                if (m.nice_per_path > 0.0) {
                    overheads.push_back(m.chef_per_path /
                                        m.nice_per_path);
                }
            }
            std::printf(" %15.1fx", Mean(overheads));
        }
        std::printf("\n");
    }
    return 0;
}
