/// \file
/// Supporting microbenchmarks: end-to-end engine throughput (concolic
/// iterations per second) on guest kernels, comparing state selection
/// strategies and interpreter builds.

#include <benchmark/benchmark.h>

#include "workloads/py_harness.h"

namespace chef::bench {
namespace {

const char* kFindGuest = R"(def probe(s):
    pos = s.find('@')
    if pos < 3:
        return 0
    return 1
)";

void
BM_ExploreFindGuest(benchmark::State& state)
{
    const StrategyKind strategy =
        static_cast<StrategyKind>(state.range(0));
    auto program = workloads::CompilePyOrDie(kFindGuest);
    workloads::PySymbolicTest spec;
    spec.source = kFindGuest;
    spec.entry = "probe";
    spec.args = {workloads::SymbolicArg::Str("s", 6)};
    uint64_t paths = 0;
    for (auto _ : state) {
        Engine::Options options;
        options.strategy = strategy;
        options.max_runs = 60;
        options.collect_timeline = false;
        Engine engine(options);
        engine.Explore(workloads::MakePyRunFn(
            program, spec, interp::InterpBuildOptions::FullyOptimized()));
        paths += engine.stats().ll_paths;
    }
    state.counters["ll_paths_per_iter"] = benchmark::Counter(
        static_cast<double>(paths) /
        static_cast<double>(state.iterations()));
    state.SetLabel(StrategyKindName(strategy));
}
BENCHMARK(BM_ExploreFindGuest)
    ->Arg(static_cast<int>(chef::StrategyKind::kRandom))
    ->Arg(static_cast<int>(chef::StrategyKind::kCupaPath))
    ->Arg(static_cast<int>(chef::StrategyKind::kCupaCoverage));

const char* kDictGuest = R"(def probe(key):
    table = {}
    table[key] = 1
    return table.get(key)
)";

void
BM_ExploreDictGuest(benchmark::State& state)
{
    const bool optimized = state.range(0) != 0;
    auto program = workloads::CompilePyOrDie(kDictGuest);
    workloads::PySymbolicTest spec;
    spec.source = kDictGuest;
    spec.entry = "probe";
    spec.args = {workloads::SymbolicArg::Str("key", 2, "ab")};
    for (auto _ : state) {
        Engine::Options options;
        options.max_runs = 40;
        options.max_seconds = 10.0;
        options.collect_timeline = false;
        Engine engine(options);
        engine.Explore(workloads::MakePyRunFn(
            program, spec,
            optimized ? interp::InterpBuildOptions::FullyOptimized()
                      : interp::InterpBuildOptions::Vanilla()));
        benchmark::DoNotOptimize(engine.stats().ll_paths);
    }
    state.SetLabel(optimized ? "optimized build" : "vanilla build");
}
BENCHMARK(BM_ExploreDictGuest)->Arg(1)->Arg(0);

void
BM_ConcreteInterpreterRun(benchmark::State& state)
{
    // Cost of one concrete interpreter run (the concolic re-execution
    // unit the engine pays per path).
    auto program = workloads::CompilePyOrDie(kFindGuest);
    workloads::PySymbolicTest spec;
    spec.source = kFindGuest;
    spec.entry = "probe";
    spec.args = {workloads::SymbolicArg::Str("s", 6, "ab@cde")};
    for (auto _ : state) {
        const auto replay =
            workloads::ReplayPy(program, spec, solver::Assignment());
        benchmark::DoNotOptimize(replay.ok);
    }
}
BENCHMARK(BM_ConcreteInterpreterRun);

}  // namespace
}  // namespace chef::bench

BENCHMARK_MAIN();
