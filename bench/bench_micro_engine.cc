/// \file
/// Supporting microbenchmarks: end-to-end engine throughput (concolic
/// iterations per second) on guest kernels, comparing state selection
/// strategies and interpreter builds — plus the intra-session
/// parallel-scaling phase (`--smoke PATH`), which measures one deep
/// minipy session at 1/2/4 exploration threads, asserts round-mode
/// fingerprint parity across thread counts, and writes the
/// BENCH_engine_parallel.json artifact.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <thread>

#include "bench/bench_common.h"
#include "workloads/py_harness.h"

namespace chef::bench {
namespace {

const char* kFindGuest = R"(def probe(s):
    pos = s.find('@')
    if pos < 3:
        return 0
    return 1
)";

void
BM_ExploreFindGuest(benchmark::State& state)
{
    const StrategyKind strategy =
        static_cast<StrategyKind>(state.range(0));
    auto program = workloads::CompilePyOrDie(kFindGuest);
    workloads::PySymbolicTest spec;
    spec.source = kFindGuest;
    spec.entry = "probe";
    spec.args = {workloads::SymbolicArg::Str("s", 6)};
    uint64_t paths = 0;
    for (auto _ : state) {
        Engine::Options options;
        options.strategy = strategy;
        options.max_runs = 60;
        options.collect_timeline = false;
        Engine engine(options);
        engine.Explore(workloads::MakePyRunFn(
            program, spec, interp::InterpBuildOptions::FullyOptimized()));
        paths += engine.stats().ll_paths;
    }
    state.counters["ll_paths_per_iter"] = benchmark::Counter(
        static_cast<double>(paths) /
        static_cast<double>(state.iterations()));
    state.SetLabel(StrategyKindName(strategy));
}
BENCHMARK(BM_ExploreFindGuest)
    ->Arg(static_cast<int>(chef::StrategyKind::kRandom))
    ->Arg(static_cast<int>(chef::StrategyKind::kCupaPath))
    ->Arg(static_cast<int>(chef::StrategyKind::kCupaCoverage));

const char* kDictGuest = R"(def probe(key):
    table = {}
    table[key] = 1
    return table.get(key)
)";

void
BM_ExploreDictGuest(benchmark::State& state)
{
    const bool optimized = state.range(0) != 0;
    auto program = workloads::CompilePyOrDie(kDictGuest);
    workloads::PySymbolicTest spec;
    spec.source = kDictGuest;
    spec.entry = "probe";
    spec.args = {workloads::SymbolicArg::Str("key", 2, "ab")};
    for (auto _ : state) {
        Engine::Options options;
        options.max_runs = 40;
        options.max_seconds = 10.0;
        options.collect_timeline = false;
        Engine engine(options);
        engine.Explore(workloads::MakePyRunFn(
            program, spec,
            optimized ? interp::InterpBuildOptions::FullyOptimized()
                      : interp::InterpBuildOptions::Vanilla()));
        benchmark::DoNotOptimize(engine.stats().ll_paths);
    }
    state.SetLabel(optimized ? "optimized build" : "vanilla build");
}
BENCHMARK(BM_ExploreDictGuest)->Arg(1)->Arg(0);

void
BM_ConcreteInterpreterRun(benchmark::State& state)
{
    // Cost of one concrete interpreter run (the concolic re-execution
    // unit the engine pays per path).
    auto program = workloads::CompilePyOrDie(kFindGuest);
    workloads::PySymbolicTest spec;
    spec.source = kFindGuest;
    spec.entry = "probe";
    spec.args = {workloads::SymbolicArg::Str("s", 6, "ab@cde")};
    for (auto _ : state) {
        const auto replay =
            workloads::ReplayPy(program, spec, solver::Assignment());
        benchmark::DoNotOptimize(replay.ok);
    }
}
BENCHMARK(BM_ConcreteInterpreterRun);

// ---------------------------------------------------------------------------
// Intra-session parallel scaling (--smoke): one deep session, 1/2/4
// exploration threads.
// ---------------------------------------------------------------------------

/// Interpreter-dominated guest: a long concrete arithmetic loop pads
/// every run to a few milliseconds (the work the parallel run phase
/// spreads across workers) before a handful of cheap symbolic branches
/// fan the session out. Solver queries stay trivial, so the serial
/// solve/commit sections are a small fraction of each round.
const char* kDeepGuest = R"(def probe(s):
    acc = 0
    for i in range(300):
        pad = 'qwertyuiopasdfghjklzxcvbnm' * 150
        acc = acc + len(pad)
    score = 0
    if s.find('a') >= 0:
        score = score + 1
    if s.find('b') >= 0:
        score = score + 1
    if s.find('c') >= 0:
        score = score + 1
    return score + acc
)";

struct ScalingRun {
    double seconds = 0.0;
    uint64_t ll_paths = 0;
    std::set<uint64_t> fingerprints;
};

ScalingRun
ExploreDeepGuest(const std::shared_ptr<minipy::Program>& program,
                 const workloads::PySymbolicTest& spec, uint32_t threads)
{
    Engine::Options options;
    options.strategy = StrategyKind::kCupaPath;
    options.seed = 7;
    options.max_runs = 48;
    options.max_seconds = 120.0;
    options.collect_timeline = false;
    options.exploration_threads = threads;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(
        workloads::MakePyRunFn(
            program, spec, interp::InterpBuildOptions::FullyOptimized()));
    ScalingRun run;
    run.seconds = engine.stats().elapsed_seconds;
    run.ll_paths = engine.stats().ll_paths;
    for (const TestCase& test : tests) {
        run.fingerprints.insert(test.hl_path_fingerprint);
    }
    return run;
}

int
RunParallelScalingSmoke(const std::string& path)
{
    BenchReport report("engine_parallel", true);
    auto program = workloads::CompilePyOrDie(kDeepGuest);
    workloads::PySymbolicTest spec;
    spec.source = kDeepGuest;
    spec.entry = "probe";
    spec.args = {workloads::SymbolicArg::Str("s", 4)};

    const unsigned cores = std::thread::hardware_concurrency();
    report.Config("max_runs", 48);
    report.Config("threads", "1/2/4");
    report.Config("hardware_cores", cores);

    // Best-of-2 per thread count: the quantity of interest is capacity,
    // not scheduling noise.
    auto best = [&](uint32_t threads) {
        ScalingRun best_run = ExploreDeepGuest(program, spec, threads);
        ScalingRun second = ExploreDeepGuest(program, spec, threads);
        if (second.seconds < best_run.seconds) {
            second.fingerprints = std::move(best_run.fingerprints);
            best_run = std::move(second);
        }
        return best_run;
    };
    const ScalingRun serial = best(1);
    const ScalingRun two = best(2);
    const ScalingRun four = best(4);

    const double speedup_2 =
        two.seconds > 0.0 ? serial.seconds / two.seconds : 0.0;
    const double speedup_4 =
        four.seconds > 0.0 ? serial.seconds / four.seconds : 0.0;
    // Round mode is deterministic in the thread count, so the HL
    // fingerprint sets must be identical — parallelism may not change
    // what gets explored.
    const bool parity = two.fingerprints == four.fingerprints &&
                        serial.fingerprints == four.fingerprints;
    // The scaling target only binds when the machine can actually run
    // 4 exploration threads.
    const bool scaling_ok = cores < 4 || speedup_4 >= 1.6;

    report.Metric("ll_paths", serial.ll_paths);
    report.Metric("seconds_1_thread", serial.seconds);
    report.Metric("seconds_2_threads", two.seconds);
    report.Metric("seconds_4_threads", four.seconds);
    report.Metric("speedup_2_threads", speedup_2);
    report.Metric("speedup_4_threads", speedup_4);
    report.Metric("fingerprint_parity", parity);
    report.Metric("scaling_target_met", scaling_ok);

    std::printf("engine_parallel: %llu paths  1T %.3fs  2T %.3fs  "
                "4T %.3fs  speedup x%.2f/x%.2f  parity=%s\n",
                static_cast<unsigned long long>(serial.ll_paths),
                serial.seconds, two.seconds, four.seconds, speedup_2,
                speedup_4, parity ? "yes" : "no");
    if (!parity) {
        std::fprintf(stderr,
                     "FAIL: fingerprint sets differ across thread "
                     "counts\n");
    }
    if (!scaling_ok) {
        std::fprintf(stderr,
                     "FAIL: 4-thread speedup x%.2f below 1.6x target "
                     "(%u cores)\n",
                     speedup_4, cores);
    }
    const bool wrote = report.Write(path);
    return wrote && parity && scaling_ok ? 0 : 1;
}

void
BM_ExploreParallelDeepGuest(benchmark::State& state)
{
    const uint32_t threads = static_cast<uint32_t>(state.range(0));
    auto program = workloads::CompilePyOrDie(kDeepGuest);
    workloads::PySymbolicTest spec;
    spec.source = kDeepGuest;
    spec.entry = "probe";
    spec.args = {workloads::SymbolicArg::Str("s", 4)};
    uint64_t paths = 0;
    for (auto _ : state) {
        const ScalingRun run = ExploreDeepGuest(program, spec, threads);
        paths += run.ll_paths;
    }
    state.counters["ll_paths_per_iter"] = benchmark::Counter(
        static_cast<double>(paths) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ExploreParallelDeepGuest)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chef::bench

int
main(int argc, char** argv)
{
    // `--smoke [PATH]` runs the parallel-scaling phase and writes the
    // BENCH_engine_parallel.json artifact instead of the
    // google-benchmark suite (matching every other bench binary's CI
    // contract).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            const std::string path =
                i + 1 < argc ? argv[i + 1] : "BENCH_engine_parallel.json";
            return chef::bench::RunParallelScalingSmoke(path);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
