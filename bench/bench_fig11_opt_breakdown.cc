/// \file
/// Figure 11: contribution of the individual interpreter optimizations
/// for Python, as high-level paths explored with each incremental build
/// (vanilla -> +symbolic-pointer avoidance -> +hash neutralization ->
/// +fast-path elimination), relative to the fully optimized build (100%).

#include "bench_common.h"

int
main()
{
    using namespace chef::bench;
    const Budget budget = DefaultBudget();

    std::printf("CHEF reproduction -- Figure 11: interpreter optimization "
                "breakdown (Python), HL paths relative to full build\n");
    std::printf("(paper: monotone gains for simplejson/argparse/"
                "HTMLParser; flat for unicodecsv/ConfigParser; xlrd "
                "peaks at +sym-ptr-avoidance)\n\n");
    std::printf("%-14s %12s %12s %12s %12s\n", "package", "vanilla",
                "+sym-ptr", "+hash-neut", "+fast-path");

    for (const PyPackage& package : PyPackages()) {
        double by_level[4] = {};
        for (int level = 0; level < 4; ++level) {
            std::vector<double> hl_counts;
            for (int rep = 0; rep < budget.reps; ++rep) {
                const RunOutcome outcome = RunPy(
                    package, StrategyKind::kCupaPath,
                    interp::InterpBuildOptions::Level(level), budget,
                    static_cast<uint64_t>(rep + 1), false);
                hl_counts.push_back(
                    static_cast<double>(outcome.hl_paths));
            }
            by_level[level] = Mean(hl_counts);
        }
        const double full = by_level[3] > 0.0 ? by_level[3] : 1.0;
        std::printf("%-14s %11.0f%% %11.0f%% %11.0f%% %11.0f%%\n",
                    package.name.c_str(), 100.0 * by_level[0] / full,
                    100.0 * by_level[1] / full,
                    100.0 * by_level[2] / full,
                    100.0 * by_level[3] / full);
    }
    return 0;
}
