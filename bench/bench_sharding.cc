/// \file
/// Distributed sharding: 1 vs 2 vs 4 loopback shards on duplicate-skewed
/// batches.
///
/// Two phases:
///
/// 1. Coverage/scaling (plateau off, gossip on): the same batch —
///    duplicate-heavy head, diverse tail, every job distinctly seeded —
///    runs on 1, 2, and 4 single-threaded loopback shards. Seeds derive
///    from *global* indices, so every partition runs bit-identical
///    sessions: the merged corpus fingerprint set must equal the
///    1-shard set exactly, while the per-shard wall time (the batch's
///    critical path) drops with the shard count.
///
/// 2. Cross-shard dedup (plateau on): the duplicate head is now N
///    copies of the *identical* job (same exact seed — the re-submitted
///    job case). The first completion saturates the workload, so every
///    other copy is pure duplicate work; local zero-yield streaks plus
///    gossiped yield snapshots must cancel >= 50% of the duplicate jobs
///    before dispatch, with and without a second chance from gossip
///    measured separately (gossip on vs off).
///
/// Emits one JSON document (default BENCH_sharding.json) embedding the
/// merged coordinator reports of every configuration.
///
/// Usage: bench_sharding [--smoke] [report.json]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "service/job.h"
#include "shard/coordinator.h"
#include "support/json.h"

namespace {

using chef::service::JobResult;
using chef::service::JobSpec;
using chef::service::JobStatus;
using chef::service::TestCorpus;
using chef::shard::RunLoopbackShards;
using chef::shard::ShardCoordinator;

JobSpec
MakeJob(const char* workload, int copy, uint64_t max_runs)
{
    JobSpec spec;
    spec.workload = workload;
    spec.label = std::string(workload) + "#" + std::to_string(copy);
    spec.seed = static_cast<uint64_t>(copy) + 1;
    spec.options.max_runs = max_runs;
    spec.options.max_seconds = 1e9;
    spec.options.collect_timeline = false;
    return spec;
}

/// Duplicate-heavy head (distinct seeds), diverse tail.
std::vector<JobSpec>
CoverageBatch(bool smoke)
{
    const int dups = smoke ? 4 : 8;
    const uint64_t dup_runs = smoke ? 60 : 400;
    const uint64_t tail_runs = smoke ? 20 : 120;
    std::vector<JobSpec> jobs;
    for (int i = 0; i < dups; ++i) {
        jobs.push_back(MakeJob("py/argparse", i, dup_runs));
    }
    int copy = 0;
    for (const char* id : {"py/simplejson", "lua/cliargs", "lua/haml"}) {
        jobs.push_back(MakeJob(id, copy++, tail_runs));
    }
    return jobs;
}

/// Duplicate head where every copy is the *same* session (identical
/// exact seed): re-submitted work, the pure cross-shard dedup target.
std::vector<JobSpec>
DedupBatch(bool smoke, size_t* duplicate_jobs)
{
    // 6 identical copies per shard: enough that the local plateau floor
    // (first copy yields, two zero-yield copies trip cancel_after=2)
    // alone suppresses >= 50% of the duplicates; gossiped streaks and
    // fingerprints only raise the count.
    const int dups = 12;
    const uint64_t dup_runs = smoke ? 60 : 300;
    std::vector<JobSpec> jobs;
    for (int i = 0; i < dups; ++i) {
        JobSpec spec = MakeJob("py/argparse", i, dup_runs);
        spec.seed = 42;
        spec.exact_seed = true;  // Identical session, every copy.
        jobs.push_back(std::move(spec));
    }
    *duplicate_jobs = static_cast<size_t>(dups) - 1;
    jobs.push_back(MakeJob("lua/cliargs", 0, smoke ? 20 : 120));
    jobs.push_back(MakeJob("py/simplejson", 0, smoke ? 20 : 120));
    return jobs;
}

ShardCoordinator::Options
BaseOptions()
{
    ShardCoordinator::Options options;
    options.service.seed = 2014;
    options.service.num_workers = 1;  // One core per "machine".
    return options;
}

struct Outcome {
    bool ok = false;
    size_t corpus_size = 0;
    std::vector<TestCorpus::Key> corpus_keys;
    double shard_wall = 0.0;  // Max across shards: the critical path.
    size_t suppressed = 0;
    uint64_t remote_duplicate_hits = 0;
    uint64_t merge_duplicates = 0;
    uint64_t fingerprints_gossiped = 0;
    std::string report;
};

Outcome
RunShards(const std::vector<JobSpec>& jobs, size_t num_shards,
          bool plateau, bool gossip)
{
    ShardCoordinator::Options options = BaseOptions();
    options.gossip = gossip;
    if (plateau) {
        options.service.plateau_policy.enabled = true;
        options.service.plateau_policy.deprioritize_after = 1;
        options.service.plateau_policy.cancel_after = 2;
    }
    ShardCoordinator coordinator(options);
    std::string error;
    Outcome outcome;
    if (!RunLoopbackShards(&coordinator, jobs, num_shards, &error)) {
        std::fprintf(stderr, "FAIL: %zu shards: %s\n", num_shards,
                     error.c_str());
        return outcome;
    }
    outcome.ok = true;
    outcome.corpus_size = coordinator.corpus().size();
    outcome.corpus_keys = coordinator.corpus().Keys();
    outcome.shard_wall = coordinator.merged_stats().wall_seconds;
    for (const JobResult& result : coordinator.results()) {
        if (result.stop_source == "plateau") {
            ++outcome.suppressed;
        }
    }
    outcome.remote_duplicate_hits =
        coordinator.cross_shard().remote_duplicate_hits;
    outcome.merge_duplicates = coordinator.cross_shard().merge_duplicates;
    outcome.fingerprints_gossiped =
        coordinator.cross_shard().fingerprints_gossiped;
    outcome.report = coordinator.RenderMergedReport();
    return outcome;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string report_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            report_path = argv[i];
        }
    }
    bool ok = true;
    chef::bench::BenchReport bench("sharding", smoke);
    if (report_path.empty()) {
        report_path = bench.DefaultPath();
    }

    // --- Phase 1: coverage parity and per-shard wall scaling. ----------
    const std::vector<JobSpec> coverage_jobs = CoverageBatch(smoke);
    std::printf("coverage batch: %zu jobs%s\n", coverage_jobs.size(),
                smoke ? " [smoke]" : "");
    const Outcome one = RunShards(coverage_jobs, 1, false, true);
    const Outcome two = RunShards(coverage_jobs, 2, false, true);
    const Outcome four = RunShards(coverage_jobs, 4, false, true);
    if (!one.ok || !two.ok || !four.ok) {
        return 1;
    }
    std::printf("%22s %10s %10s %10s\n", "", "1 shard", "2 shards",
                "4 shards");
    std::printf("%22s %10zu %10zu %10zu\n", "corpus_size",
                one.corpus_size, two.corpus_size, four.corpus_size);
    std::printf("%22s %10.3f %10.3f %10.3f\n", "shard_wall_seconds",
                one.shard_wall, two.shard_wall, four.shard_wall);
    std::printf("%22s %10s %10llu %10llu\n", "merge_duplicates", "-",
                static_cast<unsigned long long>(two.merge_duplicates),
                static_cast<unsigned long long>(four.merge_duplicates));

    const bool coverage_2_ok = two.corpus_keys == one.corpus_keys;
    const bool coverage_4_ok = four.corpus_keys == one.corpus_keys;
    if (!coverage_2_ok || !coverage_4_ok) {
        std::fprintf(stderr,
                     "FAIL: sharded corpus differs from the 1-shard "
                     "fingerprint set (2: %s, 4: %s)\n",
                     coverage_2_ok ? "ok" : "DIFFERS",
                     coverage_4_ok ? "ok" : "DIFFERS");
        ok = false;
    }
    // Wall-per-shard must drop when the batch spreads over more
    // machines. Loopback shards are threads, so the win only exists
    // when the hardware can actually run them concurrently; smoke
    // batches are too short to assert timing on either way.
    const unsigned cores = std::thread::hardware_concurrency();
    if (!smoke && cores >= 4 && two.shard_wall >= one.shard_wall) {
        std::fprintf(stderr,
                     "FAIL: 2-shard critical path (%.3fs) not below the "
                     "1-shard wall (%.3fs) on %u cores\n",
                     two.shard_wall, one.shard_wall, cores);
        ok = false;
    } else if (!smoke && cores < 4) {
        std::printf("note: %u core(s) — loopback shards timeshare, "
                    "skipping the wall-scaling assertion\n",
                    cores);
    }

    // --- Phase 2: duplicate-job suppression. ---------------------------
    size_t duplicate_jobs = 0;
    const std::vector<JobSpec> dedup_jobs = DedupBatch(smoke, &duplicate_jobs);
    std::printf("\ndedup batch: %zu jobs (%zu duplicates), 2 shards\n",
                dedup_jobs.size(), duplicate_jobs);
    const Outcome gossip_on = RunShards(dedup_jobs, 2, true, true);
    const Outcome gossip_off = RunShards(dedup_jobs, 2, true, false);
    if (!gossip_on.ok || !gossip_off.ok) {
        return 1;
    }
    std::printf("%26s %10s %10s\n", "", "gossip", "no gossip");
    std::printf("%26s %10zu %10zu\n", "jobs_suppressed",
                gossip_on.suppressed, gossip_off.suppressed);
    std::printf("%26s %10llu %10llu\n", "remote_duplicate_hits",
                static_cast<unsigned long long>(
                    gossip_on.remote_duplicate_hits),
                static_cast<unsigned long long>(
                    gossip_off.remote_duplicate_hits));
    std::printf("%26s %10llu %10llu\n", "merge_duplicates",
                static_cast<unsigned long long>(gossip_on.merge_duplicates),
                static_cast<unsigned long long>(
                    gossip_off.merge_duplicates));
    std::printf("%26s %10zu %10zu\n", "corpus_size",
                gossip_on.corpus_size, gossip_off.corpus_size);

    // The acceptance target: cross-shard dedup suppresses >= 50% of the
    // duplicate jobs. The local plateau floor alone guarantees it for
    // this batch shape; gossip propagates the zero-yield streak between
    // shards and can only raise it.
    const bool target_met = gossip_on.suppressed * 2 >= duplicate_jobs;
    if (!target_met) {
        std::fprintf(stderr,
                     "FAIL: suppressed %zu of %zu duplicate jobs "
                     "(< 50%%)\n",
                     gossip_on.suppressed, duplicate_jobs);
        ok = false;
    }
    // Every fingerprint of the identical duplicated session must still
    // be present despite the cancellations.
    if (gossip_on.corpus_size == 0 ||
        gossip_on.corpus_size < gossip_off.corpus_size) {
        std::fprintf(stderr,
                     "FAIL: gossip run lost corpus entries (%zu vs %zu "
                     "without gossip)\n",
                     gossip_on.corpus_size, gossip_off.corpus_size);
        ok = false;
    }

    // --- Report. -------------------------------------------------------
    bench.Config("coverage_jobs", coverage_jobs.size());
    bench.Config("dedup_jobs", dedup_jobs.size());
    bench.Config("duplicate_jobs", duplicate_jobs);
    bench.Metric("corpus_1", one.corpus_size);
    bench.Metric("corpus_2", two.corpus_size);
    bench.Metric("corpus_4", four.corpus_size);
    bench.Metric("coverage_2_ok", coverage_2_ok);
    bench.Metric("coverage_4_ok", coverage_4_ok);
    bench.Metric("shard_wall_1", one.shard_wall);
    bench.Metric("shard_wall_2", two.shard_wall);
    bench.Metric("shard_wall_4", four.shard_wall);
    bench.Metric("suppressed_gossip", gossip_on.suppressed);
    bench.Metric("suppressed_no_gossip", gossip_off.suppressed);
    bench.Metric("remote_duplicate_hits",
                 gossip_on.remote_duplicate_hits);
    bench.Metric("fingerprints_gossiped",
                 gossip_on.fingerprints_gossiped);
    bench.Metric("merge_duplicates_gossip", gossip_on.merge_duplicates);
    bench.Metric("merge_duplicates_no_gossip",
                 gossip_off.merge_duplicates);
    bench.Metric("target_met", target_met);
    bench.Report("shards_1", one.report);
    bench.Report("shards_2", two.report);
    bench.Report("shards_4", four.report);
    bench.Report("dedup_gossip", gossip_on.report);
    bench.Report("dedup_no_gossip", gossip_off.report);
    std::printf("\n");
    if (!bench.Write(report_path)) {
        return 1;
    }
    return ok ? 0 : 1;
}
