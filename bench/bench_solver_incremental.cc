/// \file
/// Solver hot path: independence slicing + incremental SAT on deep-path
/// concolic workloads.
///
/// Replays the query sequence a concolic session produces while marching
/// down a deep path — for every depth k, the path prefix plus the negated
/// branch condition at k — under two workload shapes:
///
///   independent-bytes  one byte-equality per branch (string matching);
///                      every assertion touches its own variable, so
///                      slicing answers the prefix from per-slice cache
///                      entries and only solves the flipped branch.
///   chained-adds       an accumulator chain x[i+1] == x[i] + c[i] with a
///                      final comparison; every assertion shares variables
///                      with its neighbor, so slicing cannot split and the
///                      win comes from the incremental backend (the prefix
///                      is blasted and CNF-loaded once per session).
///
/// Each shape runs under the baseline pipeline (slicing and incremental
/// off — the PR 2 state) and the optimized one (both on), checking that
/// sat/unsat outcomes agree under *all four* option combinations, then
/// reports queries/s, SAT calls, and clauses loaded per query. A JSON
/// report (default BENCH_solver.json) captures the numbers for the CI
/// trajectory.
///
/// Usage: bench_solver_incremental [--smoke] [report.json]
///   --smoke   shallow paths for CI; skips the (noise-sensitive) 2x
///             wall-time check and enforces only outcome equivalence and
///             the deterministic clauses-loaded reduction.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "solver/solver.h"

namespace {

using chef::solver::Assignment;
using chef::solver::ExprRef;
using chef::solver::QueryResult;
using chef::solver::Solver;
using chef::solver::SolverStats;

using Query = std::vector<ExprRef>;

/// Queries for a depth-N path over independent byte equalities: query k
/// asserts bytes 0..k-1 match and flips branch k.
std::vector<Query>
IndependentBytesQueries(int depth)
{
    using namespace chef::solver;
    std::vector<ExprRef> eqs;
    for (int i = 0; i < depth; ++i) {
        const ExprRef byte = MakeVar(static_cast<uint32_t>(i + 1),
                                     "s" + std::to_string(i), 8);
        eqs.push_back(MakeEq(byte, MakeConst('a' + (i % 26), 8)));
    }
    std::vector<Query> queries;
    for (int k = 0; k < depth; ++k) {
        Query q(eqs.begin(), eqs.begin() + k);
        q.push_back(MakeBoolNot(eqs[k]));
        queries.push_back(std::move(q));
    }
    return queries;
}

/// Queries for a depth-N accumulator chain: x[i+1] == x[i] + (i % 7 + 1),
/// with query k asserting the prefix and flipping a bound on x[k]. The
/// chain connects every assertion, so this shape defeats slicing on
/// purpose.
std::vector<Query>
ChainedAddsQueries(int depth)
{
    using namespace chef::solver;
    std::vector<ExprRef> xs;
    for (int i = 0; i <= depth; ++i) {
        xs.push_back(MakeVar(static_cast<uint32_t>(i + 1),
                             "x" + std::to_string(i), 16));
    }
    std::vector<ExprRef> links;
    for (int i = 0; i < depth; ++i) {
        links.push_back(MakeEq(
            xs[i + 1],
            MakeAdd(xs[i], MakeConst(static_cast<uint64_t>(i % 7 + 1),
                                     16))));
    }
    std::vector<Query> queries;
    for (int k = 0; k < depth; ++k) {
        Query q(links.begin(), links.begin() + k + 1);
        // Alternate sat/unsat flavors: an achievable bound on the chain
        // head vs. an impossible equality through the chain.
        if (k % 2 == 0) {
            q.push_back(MakeUlt(xs[0], MakeConst(100, 16)));
        } else {
            q.push_back(MakeEq(MakeSub(xs[k + 1], xs[k]),
                               MakeConst(9, 16)));  // Step is never 9.
        }
        queries.push_back(std::move(q));
    }
    return queries;
}

struct RunOutcome {
    std::vector<QueryResult> results;
    SolverStats stats;
    double seconds = 0.0;
};

RunOutcome
RunQueries(const std::vector<Query>& queries, bool slicing,
           bool incremental)
{
    Solver::Options options;
    options.enable_independence_slicing = slicing;
    options.enable_incremental_sat = incremental;
    Solver solver(options);
    RunOutcome outcome;
    outcome.results.reserve(queries.size());
    const auto start = std::chrono::steady_clock::now();
    for (const Query& query : queries) {
        Assignment model;
        outcome.results.push_back(solver.Solve(query, &model));
    }
    outcome.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    outcome.stats = solver.stats();
    return outcome;
}

void
WriteRunOutcome(chef::support::JsonWriter* json, const char* name,
                const RunOutcome& run)
{
    const double qps =
        run.seconds > 0.0
            ? static_cast<double>(run.results.size()) / run.seconds
            : 0.0;
    json->Key(name);
    json->BeginObject();
    json->Key("queries"), json->Value(run.results.size());
    json->Key("seconds"), json->Value(run.seconds);
    json->Key("queries_per_second"), json->Value(qps);
    json->Key("sat_calls"), json->Value(run.stats.sat_calls);
    json->Key("incremental_sat_calls"),
        json->Value(run.stats.incremental_sat_calls);
    json->Key("sliced_queries"), json->Value(run.stats.sliced_queries);
    json->Key("clauses_loaded"), json->Value(run.stats.clauses_loaded);
    json->Key("clauses_loaded_per_query"),
        json->Value(run.results.empty()
                        ? 0.0
                        : static_cast<double>(run.stats.clauses_loaded) /
                              static_cast<double>(run.results.size()));
    json->Key("cache_hits"), json->Value(run.stats.cache_hits);
    json->EndObject();
}

bool
OutcomesMatch(const RunOutcome& a, const RunOutcome& b)
{
    return a.results == b.results;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string report_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            report_path = argv[i];
        }
    }
    chef::bench::BenchReport bench("solver", smoke);
    if (report_path.empty()) {
        report_path = bench.DefaultPath();
    }

    const int depth = smoke ? 24 : 96;
    struct Workload {
        const char* name;
        std::vector<Query> queries;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"independent-bytes",
                         IndependentBytesQueries(depth)});
    workloads.push_back({"chained-adds", ChainedAddsQueries(depth)});

    std::printf("solver incremental bench: depth %d%s\n\n", depth,
                smoke ? " [smoke]" : "");

    bool ok = true;
    bench.Config("depth", depth);
    chef::support::JsonWriter workloads_json;
    workloads_json.BeginArray();

    for (size_t w = 0; w < workloads.size(); ++w) {
        const Workload& workload = workloads[w];
        // All four combinations; outcomes must agree everywhere.
        const RunOutcome baseline =
            RunQueries(workload.queries, false, false);
        const RunOutcome slicing_only =
            RunQueries(workload.queries, true, false);
        const RunOutcome incremental_only =
            RunQueries(workload.queries, false, true);
        const RunOutcome optimized =
            RunQueries(workload.queries, true, true);

        const bool outcomes_match =
            OutcomesMatch(baseline, slicing_only) &&
            OutcomesMatch(baseline, incremental_only) &&
            OutcomesMatch(baseline, optimized);
        const double speedup = optimized.seconds > 0.0
                                   ? baseline.seconds / optimized.seconds
                                   : 0.0;
        const double clause_reduction =
            optimized.stats.clauses_loaded > 0
                ? static_cast<double>(baseline.stats.clauses_loaded) /
                      static_cast<double>(optimized.stats.clauses_loaded)
                : 0.0;

        std::printf("%s (%zu queries)\n", workload.name,
                    workload.queries.size());
        std::printf("  %22s %12s %12s\n", "", "baseline", "optimized");
        std::printf("  %22s %12.4f %12.4f\n", "seconds",
                    baseline.seconds, optimized.seconds);
        std::printf("  %22s %12llu %12llu\n", "sat_calls",
                    static_cast<unsigned long long>(
                        baseline.stats.sat_calls),
                    static_cast<unsigned long long>(
                        optimized.stats.sat_calls));
        std::printf("  %22s %12llu %12llu\n", "clauses_loaded",
                    static_cast<unsigned long long>(
                        baseline.stats.clauses_loaded),
                    static_cast<unsigned long long>(
                        optimized.stats.clauses_loaded));
        std::printf(
            "  speedup: %.2fx; clauses-loaded reduction: %.1fx; "
            "outcomes %s\n\n",
            speedup, clause_reduction,
            outcomes_match ? "match" : "DIFFER");

        if (!outcomes_match) {
            std::fprintf(stderr,
                         "FAIL: %s: outcomes differ between option "
                         "combinations\n",
                         workload.name);
            ok = false;
        }
        // Deterministic win: the optimized pipeline must load a fraction
        // of the baseline's clauses even in smoke mode.
        if (clause_reduction < 2.0) {
            std::fprintf(stderr,
                         "FAIL: %s: clauses-loaded reduction %.2fx < 2x\n",
                         workload.name, clause_reduction);
            ok = false;
        }
        // Timing win: enforced only in full mode (smoke runs are too
        // short for stable wall-clock ratios).
        if (!smoke && speedup < 2.0) {
            std::fprintf(stderr,
                         "FAIL: %s: solver wall-time speedup %.2fx < 2x\n",
                         workload.name, speedup);
            ok = false;
        }

        const std::string prefix = std::string(workload.name) + "_";
        bench.Metric((prefix + "speedup").c_str(), speedup);
        bench.Metric((prefix + "clause_reduction").c_str(),
                     clause_reduction);
        bench.Metric((prefix + "outcomes_match").c_str(), outcomes_match);
        workloads_json.BeginObject();
        workloads_json.Key("name"), workloads_json.Value(workload.name);
        workloads_json.Key("speedup"), workloads_json.Value(speedup);
        workloads_json.Key("clause_reduction"),
            workloads_json.Value(clause_reduction);
        workloads_json.Key("outcomes_match"),
            workloads_json.Value(outcomes_match);
        WriteRunOutcome(&workloads_json, "baseline", baseline);
        WriteRunOutcome(&workloads_json, "slicing_only", slicing_only);
        WriteRunOutcome(&workloads_json, "incremental_only",
                        incremental_only);
        WriteRunOutcome(&workloads_json, "optimized", optimized);
        workloads_json.EndObject();
    }
    workloads_json.EndArray();
    bench.Report("workloads", workloads_json.Take());
    if (!bench.Write(report_path)) {
        return 1;
    }
    return ok ? 0 : 1;
}
