/// \file
/// Yield-weighted scheduling: equal-budget corpus coverage vs. FIFO.
///
/// Two phases over mixed py/lua batches:
///
/// 1. Equivalence (no wall budget, plateau off): FIFO and yield-priority
///    dispatch must produce *identical per-job results* — ordering only
///    permutes who runs when — and one completed-event per job in every
///    mode.
/// 2. Equal budget: a batch whose submission order front-loads duplicate
///    jobs of one workload, run under the same service wall budget with
///    (a) FIFO and (b) yield-priority + plateau cancellation. FIFO burns
///    the budget re-exploring the duplicates; the scheduler tries every
///    workload once first, then spends the rest where yield is climbing,
///    so it must reach at least the FIFO corpus (typically more, or the
///    same corpus in less wall time when plateau cancellation drains the
///    duplicates early).
/// 3. Recorder overhead: the bounded batch again, with and without a
///    TimeSeriesRecorder sampling at the default 100 ms cadence, best
///    wall time of a few repetitions each. The recorder must be cheap
///    enough to leave on in production (the regression gate holds this
///    bench's total wall time to the checked-in baseline).
/// 4. Attribution overhead: the bounded batch with the per-location
///    attribution profiler off vs. on (its default), best of the same
///    repetition count. Attribution ships enabled, so its cost rides
///    the same wall-time regression gate as the recorder's.
///
/// Emits one JSON document (default BENCH_scheduler.json) embedding both
/// configurations' full service reports.
///
/// Usage: bench_scheduler [--smoke] [report.json]
///   --smoke   small budgets for CI; enforces corpus_priority >=
///             corpus_fifo (full mode additionally requires a strict
///             corpus or wall-time win).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "service/report.h"
#include "service/scheduler.h"
#include "service/service.h"

namespace {

using chef::service::ExplorationService;
using chef::service::JobEvent;
using chef::service::JobEventQueue;
using chef::service::JobResult;
using chef::service::JobSpec;
using chef::service::PlateauPolicy;
using chef::service::SchedulePolicy;
using chef::service::ServiceStats;

JobSpec
MakeJob(const char* workload, int copy, uint64_t max_runs)
{
    JobSpec spec;
    spec.workload = workload;
    spec.label = std::string(workload) + "#" + std::to_string(copy);
    spec.seed = static_cast<uint64_t>(copy) + 1;
    spec.options.max_runs = max_runs;
    spec.options.max_seconds = 1e9;
    spec.options.collect_timeline = false;
    return spec;
}

/// Duplicate-heavy head, diverse tail: the adversarial order for FIFO.
std::vector<JobSpec>
MakeSkewedBatch(bool smoke)
{
    const int dups = smoke ? 6 : 10;
    const uint64_t dup_runs = smoke ? 200 : 1000;
    const uint64_t tail_runs = smoke ? 30 : 120;
    std::vector<JobSpec> jobs;
    for (int i = 0; i < dups; ++i) {
        jobs.push_back(MakeJob("py/argparse", i, dup_runs));
    }
    int copy = 0;
    for (const char* id :
         {"py/simplejson", "lua/cliargs", "lua/haml", "lua/JSON"}) {
        jobs.push_back(MakeJob(id, copy++, tail_runs));
    }
    return jobs;
}

std::vector<JobSpec>
MakeBoundedBatch(bool smoke)
{
    const uint64_t max_runs = smoke ? 8 : 30;
    std::vector<JobSpec> jobs;
    int copy = 0;
    for (const char* id : {"py/argparse", "py/simplejson", "lua/cliargs",
                           "lua/haml", "py/argparse", "lua/JSON"}) {
        jobs.push_back(MakeJob(id, copy++, max_runs));
    }
    return jobs;
}

struct ConfigOutcome {
    ServiceStats stats;
    std::vector<JobResult> results;
    std::string report_json;
    size_t completed_events = 0;
    size_t corpus_size = 0;
    std::vector<chef::service::TestCorpus::Key> corpus_keys;
};

ConfigOutcome
RunConfig(const std::vector<JobSpec>& jobs, SchedulePolicy policy,
          bool plateau, double budget_seconds, size_t workers)
{
    JobEventQueue events;
    ExplorationService::Options options;
    options.num_workers = workers;
    options.seed = 2014;
    options.max_total_seconds = budget_seconds;
    options.schedule_policy = policy;
    options.event_queue = &events;
    if (plateau) {
        options.plateau_policy.enabled = true;
        options.plateau_policy.deprioritize_after = 1;
        options.plateau_policy.cancel_after = 2;
    }
    ExplorationService service(options);

    ConfigOutcome outcome;
    outcome.results = service.RunBatch(jobs);
    outcome.stats = service.stats();
    outcome.report_json = chef::service::RenderJsonReport(
        service.stats(), outcome.results, service.corpus());
    outcome.corpus_size = service.corpus().size();
    outcome.corpus_keys = service.corpus().Keys();
    for (const JobEvent& event : events.Drain()) {
        if (event.kind == JobEvent::Kind::kJobCompleted) {
            ++outcome.completed_events;
        }
    }
    return outcome;
}

bool
SameJobResults(const std::vector<JobResult>& a,
               const std::vector<JobResult>& b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].status != b[i].status ||
            a[i].seed_used != b[i].seed_used ||
            a[i].num_test_cases != b[i].num_test_cases ||
            a[i].num_relevant_test_cases != b[i].num_relevant_test_cases ||
            a[i].engine_stats.ll_paths != b[i].engine_stats.ll_paths ||
            a[i].engine_stats.hl_paths != b[i].engine_stats.hl_paths ||
            a[i].engine_stats.solver_queries !=
                b[i].engine_stats.solver_queries) {
            return false;
        }
    }
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string report_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            report_path = argv[i];
        }
    }
    const size_t workers = smoke ? 2 : 4;
    bool ok = true;
    chef::bench::BenchReport bench("scheduler", smoke);
    if (report_path.empty()) {
        report_path = bench.DefaultPath();
    }
    bench.Config("workers", workers);

    // --- Phase 1: dispatch order must not change per-job results. ------
    const std::vector<JobSpec> bounded = MakeBoundedBatch(smoke);
    const ConfigOutcome eq_fifo =
        RunConfig(bounded, SchedulePolicy::kFifo, false, 0.0, workers);
    const ConfigOutcome eq_priority = RunConfig(
        bounded, SchedulePolicy::kYieldPriority, false, 0.0, workers);
    const bool equivalence_ok =
        SameJobResults(eq_fifo.results, eq_priority.results) &&
        eq_fifo.corpus_keys == eq_priority.corpus_keys;
    std::printf("equivalence (untruncated, %zu jobs): %s\n",
                bounded.size(), equivalence_ok ? "identical" : "DIVERGED");
    if (!equivalence_ok) {
        std::fprintf(stderr,
                     "FAIL: per-job results differ between FIFO and "
                     "priority dispatch\n");
        ok = false;
    }
    if (eq_fifo.completed_events != bounded.size() ||
        eq_priority.completed_events != bounded.size()) {
        std::fprintf(stderr,
                     "FAIL: expected one completed-event per job "
                     "(fifo: %zu, priority: %zu, jobs: %zu)\n",
                     eq_fifo.completed_events,
                     eq_priority.completed_events, bounded.size());
        ok = false;
    }

    // --- Phase 2: equal wall budget on the duplicate-skewed batch. -----
    const double budget = smoke ? 2.0 : 10.0;
    const std::vector<JobSpec> skewed = MakeSkewedBatch(smoke);
    std::printf(
        "\nequal budget: %zu jobs (duplicate-heavy head), %.1fs, "
        "%zu workers%s\n\n",
        skewed.size(), budget, workers, smoke ? " [smoke]" : "");
    const ConfigOutcome fifo =
        RunConfig(skewed, SchedulePolicy::kFifo, false, budget, workers);
    const ConfigOutcome priority = RunConfig(
        skewed, SchedulePolicy::kYieldPriority, true, budget, workers);

    std::printf("%26s %12s %18s\n", "", "fifo", "priority+plateau");
    std::printf("%26s %12zu %18zu\n", "corpus_size", fifo.corpus_size,
                priority.corpus_size);
    std::printf("%26s %12.3f %18.3f\n", "wall_seconds",
                fifo.stats.wall_seconds, priority.stats.wall_seconds);
    std::printf("%26s %12zu %18zu\n", "jobs_completed",
                fifo.stats.jobs_completed, priority.stats.jobs_completed);
    std::printf("%26s %12zu %18zu\n", "jobs_cancelled",
                fifo.stats.jobs_cancelled, priority.stats.jobs_cancelled);
    std::printf("%26s %12zu %18zu\n", "jobs_plateau_cancelled",
                fifo.stats.jobs_plateau_cancelled,
                priority.stats.jobs_plateau_cancelled);
    std::printf("%26s %12llu %18llu\n", "hl_paths",
                static_cast<unsigned long long>(fifo.stats.hl_paths),
                static_cast<unsigned long long>(priority.stats.hl_paths));

    if (fifo.completed_events != skewed.size() ||
        priority.completed_events != skewed.size()) {
        std::fprintf(stderr,
                     "FAIL: expected one completed-event per job under "
                     "budget (fifo: %zu, priority: %zu, jobs: %zu)\n",
                     fifo.completed_events, priority.completed_events,
                     skewed.size());
        ok = false;
    }
    if (priority.corpus_size < fifo.corpus_size) {
        std::fprintf(stderr,
                     "FAIL: priority+plateau corpus (%zu) below the FIFO "
                     "baseline (%zu) at equal budget\n",
                     priority.corpus_size, fifo.corpus_size);
        ok = false;
    }
    const bool strict_win =
        priority.corpus_size > fifo.corpus_size ||
        (priority.corpus_size >= fifo.corpus_size &&
         priority.stats.wall_seconds < fifo.stats.wall_seconds);
    if (!smoke && !strict_win) {
        // Smoke batches can drain fully inside the budget on a fast
        // machine, legitimately tying both corpus and wall.
        std::fprintf(stderr,
                     "FAIL: no strict corpus or wall-time win over FIFO "
                     "(corpus %zu vs %zu, wall %.3f vs %.3f)\n",
                     priority.corpus_size, fifo.corpus_size,
                     priority.stats.wall_seconds, fifo.stats.wall_seconds);
        ok = false;
    }
    std::printf("\npriority+plateau vs FIFO: corpus %+zd, wall %+.3fs\n",
                static_cast<ssize_t>(priority.corpus_size) -
                    static_cast<ssize_t>(fifo.corpus_size),
                priority.stats.wall_seconds - fifo.stats.wall_seconds);

    // --- Phase 3: time-series recorder overhead at 100 ms. -------------
    const int overhead_reps = smoke ? 2 : 3;
    const auto run_bounded = [&](bool with_recorder, uint64_t* samples) {
        chef::obs::MetricsRegistry metrics;
        chef::obs::TimeSeriesRecorder recorder;  // 100 ms default.
        JobEventQueue events;
        ExplorationService::Options options;
        options.num_workers = workers;
        options.seed = 2014;
        options.schedule_policy = SchedulePolicy::kYieldPriority;
        options.event_queue = &events;
        options.obs.metrics = &metrics;
        if (with_recorder) {
            options.obs.timeseries = &recorder;
        }
        ExplorationService service(options);
        service.RunBatch(bounded);
        if (samples != nullptr) {
            *samples = recorder.total_recorded();
        }
        return service.stats().wall_seconds;
    };
    double wall_off = 1e9;
    double wall_on = 1e9;
    uint64_t recorder_samples = 0;
    for (int rep = 0; rep < overhead_reps; ++rep) {
        wall_off = std::min(wall_off, run_bounded(false, nullptr));
        wall_on = std::min(wall_on, run_bounded(true, &recorder_samples));
    }
    const double overhead_fraction =
        wall_off > 0.0 ? (wall_on - wall_off) / wall_off : 0.0;
    std::printf(
        "\nrecorder overhead (100ms cadence, best of %d): off %.3fs, "
        "on %.3fs (%+.1f%%, %llu samples)\n",
        overhead_reps, wall_off, wall_on, overhead_fraction * 100.0,
        static_cast<unsigned long long>(recorder_samples));

    // --- Phase 4: attribution profiler overhead. -----------------------
    const auto run_attributed = [&](bool attribution,
                                    uint64_t* locations) {
        ExplorationService::Options options;
        options.num_workers = workers;
        options.seed = 2014;
        options.schedule_policy = SchedulePolicy::kYieldPriority;
        options.attribution = attribution;
        ExplorationService service(options);
        service.RunBatch(bounded);
        if (locations != nullptr) {
            *locations = 0;
            const chef::obs::AttributionSnapshot table =
                service.attribution();
            for (const auto& [workload, rows] : table.workloads) {
                (void)workload;
                *locations += rows.size();
            }
        }
        return service.stats().wall_seconds;
    };
    double attribution_wall_off = 1e9;
    double attribution_wall_on = 1e9;
    uint64_t attribution_locations = 0;
    for (int rep = 0; rep < overhead_reps; ++rep) {
        attribution_wall_off =
            std::min(attribution_wall_off, run_attributed(false, nullptr));
        attribution_wall_on = std::min(
            attribution_wall_on,
            run_attributed(true, &attribution_locations));
    }
    const double attribution_overhead_fraction =
        attribution_wall_off > 0.0
            ? (attribution_wall_on - attribution_wall_off) /
                  attribution_wall_off
            : 0.0;
    std::printf(
        "attribution overhead (best of %d): off %.3fs, on %.3fs "
        "(%+.1f%%, %llu locations)\n",
        overhead_reps, attribution_wall_off, attribution_wall_on,
        attribution_overhead_fraction * 100.0,
        static_cast<unsigned long long>(attribution_locations));
    if (attribution_locations == 0) {
        std::fprintf(stderr,
                     "FAIL: attribution-enabled run charged no "
                     "locations\n");
        ok = false;
    }

    bench.Config("bounded_jobs", bounded.size());
    bench.Config("skewed_jobs", skewed.size());
    bench.Config("budget_seconds", budget);
    bench.Metric("equivalence_ok", equivalence_ok);
    bench.Metric("corpus_fifo", fifo.corpus_size);
    bench.Metric("corpus_priority", priority.corpus_size);
    bench.Metric("wall_fifo", fifo.stats.wall_seconds);
    bench.Metric("wall_priority", priority.stats.wall_seconds);
    bench.Metric("jobs_plateau_cancelled",
                 priority.stats.jobs_plateau_cancelled);
    bench.Metric("recorder_wall_off", wall_off);
    bench.Metric("recorder_wall_on", wall_on);
    bench.Metric("recorder_overhead_fraction", overhead_fraction);
    bench.Metric("recorder_samples", recorder_samples);
    bench.Metric("attribution_wall_off", attribution_wall_off);
    bench.Metric("attribution_wall_on", attribution_wall_on);
    bench.Metric("attribution_overhead_fraction",
                 attribution_overhead_fraction);
    bench.Metric("attribution_locations", attribution_locations);
    bench.Report("fifo", fifo.report_json);
    bench.Report("priority_plateau", priority.report_json);
    if (!bench.Write(report_path)) {
        return 1;
    }
    return ok ? 0 : 1;
}
