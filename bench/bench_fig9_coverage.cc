/// \file
/// Figure 9: line coverage achieved by each configuration using
/// coverage-optimized CUPA (§3.4). Coverage is measured by replaying each
/// relevant test case on the vanilla interpreter build, exactly like the
/// paper replays on the host Python/Lua. Set CHEF_FIG9_ABLATE_P=1 to
/// sweep the fork-weight decay p (paper fixes p = 0.75).

#include "bench_common.h"

namespace chef::bench {
namespace {

template <typename Package, typename Runner>
void
RunSuite(const char* language, const std::vector<Package>& packages,
         Runner&& runner)
{
    const Budget budget = DefaultBudget();
    std::printf("\n-- Figure 9 (%s): line coverage [%%] --\n", language);
    std::printf("%-14s %10s %10s %10s %10s\n", "package", "cupa+opt",
                "opt-only", "cupa-only", "baseline");
    for (const Package& package : packages) {
        std::printf("%-14s", package.name.c_str());
        for (const EvalConfig& config : EvalConfigs()) {
            std::vector<double> coverages;
            for (int rep = 0; rep < budget.reps; ++rep) {
                const RunOutcome outcome = runner(
                    package,
                    StrategyFor(config, /*coverage_optimized=*/true),
                    BuildFor(config), budget,
                    static_cast<uint64_t>(rep + 1));
                coverages.push_back(outcome.coverage_fraction * 100.0);
            }
            std::printf(" %9.1f%%", Mean(coverages));
        }
        std::printf("\n");
    }
}

void
AblateForkWeightDecay()
{
    // Ablation called out in DESIGN.md: vary the §3.4 decay p on one
    // coverage-sensitive package.
    const Budget budget = DefaultBudget();
    const auto& package = workloads::PyPackageByName("simplejson");
    std::printf("\n-- ablation: fork-weight decay p (paper fixes 0.75), "
                "simplejson coverage --\n");
    for (double p : {0.25, 0.5, 0.75, 0.9, 1.0}) {
        std::vector<double> coverages;
        for (int rep = 0; rep < budget.reps; ++rep) {
            auto program =
                workloads::CompilePyOrDie(package.test.source);
            Engine::Options options;
            options.strategy = StrategyKind::kCupaCoverage;
            options.fork_weight_decay = p;
            options.seed = static_cast<uint64_t>(rep + 1);
            options.max_runs = budget.max_runs;
            options.max_seconds = budget.max_seconds;
            options.max_steps_per_run = budget.max_steps_per_run;
            Engine engine(options);
            const auto tests = engine.Explore(workloads::MakePyRunFn(
                program, package.test,
                interp::InterpBuildOptions::FullyOptimized()));
            std::set<int> covered;
            for (const TestCase& test : tests) {
                if (!test.new_hl_path || test.outcome_kind == "hang") {
                    continue;
                }
                const auto replay = workloads::ReplayPy(
                    program, package.test, test.inputs);
                covered.insert(replay.covered_lines.begin(),
                               replay.covered_lines.end());
            }
            coverages.push_back(
                100.0 * static_cast<double>(covered.size()) /
                static_cast<double>(
                    workloads::CoverableLines(*program)));
        }
        std::printf("  p = %.2f: %.1f%%\n", p, Mean(coverages));
    }
}

}  // namespace
}  // namespace chef::bench

int
main()
{
    using namespace chef::bench;
    std::printf("CHEF reproduction -- Figure 9: line coverage with "
                "coverage-optimized CUPA\n");
    std::printf("(paper: noticeable improvement in 6/11 packages; "
                "simplejson ~80%% and xlrd ~40%% with the aggregate "
                "config)\n");
    RunSuite("Python", PyPackages(),
             [](const PyPackage& p, StrategyKind s,
                interp::InterpBuildOptions b, const Budget& budget,
                uint64_t seed) {
                 return RunPy(p, s, b, budget, seed, true);
             });
    RunSuite("Lua", LuaPackages(),
             [](const LuaPackage& p, StrategyKind s,
                interp::InterpBuildOptions b, const Budget& budget,
                uint64_t seed) {
                 return RunLua(p, s, b, budget, seed, true);
             });
    if (std::getenv("CHEF_FIG9_ABLATE_P") != nullptr) {
        AblateForkWeightDecay();
    }
    return 0;
}
