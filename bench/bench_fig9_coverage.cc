/// \file
/// Figure 9: line coverage achieved by each configuration using
/// coverage-optimized CUPA (§3.4). Coverage is measured by replaying each
/// relevant test case on the vanilla interpreter build, exactly like the
/// paper replays on the host Python/Lua. Set CHEF_FIG9_ABLATE_P=1 to
/// sweep the fork-weight decay p (paper fixes p = 0.75).
///
/// The per-package progress curves (new high-level paths vs runs and vs
/// wall time, the temporal axis of the paper's figure) go through the
/// obs time-series machinery rather than ad-hoc collection: each
/// aggregate-config run's engine timeline feeds a TimeSeriesRecorder
/// (tier coarsening bounds memory on long runs), the recorders merge
/// into a ClusterSeries keyed by package, and the standard
/// coverage_curves CSV (obs::RenderCoverageCurvesCsv — the same
/// artifact `chef_shard --curves-out` writes) lands next to the bench
/// output as coverage_curves_fig9.csv. In that CSV "jobs_finished"
/// carries completed engine runs (one run = one low-level path).

#include "bench_common.h"
#include "obs/timeseries.h"

namespace chef::bench {
namespace {

/// Replays one run's engine timeline into the recorder/series pipeline
/// under counter names the coverage-curves renderer knows.
void
CollectCurve(obs::ClusterSeries* curves, const std::string& workload,
             const RunOutcome& outcome)
{
    obs::TimeSeriesRecorder recorder;
    for (const EngineStats::Sample& sample : outcome.timeline) {
        obs::MetricsSnapshot snapshot;
        snapshot.counters = {
            {obs::kFingerprintsNewCounter, sample.hl_paths},
            {std::string(obs::kFingerprintsNewCounter) + "." + workload,
             sample.hl_paths},
            {obs::kJobsFinishedCounter, sample.ll_paths},
            {std::string(obs::kJobsFinishedCounter) + "." + workload,
             sample.ll_paths},
        };
        recorder.Record(sample.t, std::move(snapshot));
    }
    curves->Update(workload, recorder.Retained());
}

template <typename Package, typename Runner>
void
RunSuite(const char* language, const std::vector<Package>& packages,
         Runner&& runner, obs::ClusterSeries* curves)
{
    const Budget budget = DefaultBudget();
    std::printf("\n-- Figure 9 (%s): line coverage [%%] --\n", language);
    std::printf("%-14s %10s %10s %10s %10s\n", "package", "cupa+opt",
                "opt-only", "cupa-only", "baseline");
    for (const Package& package : packages) {
        std::printf("%-14s", package.name.c_str());
        for (const EvalConfig& config : EvalConfigs()) {
            std::vector<double> coverages;
            for (int rep = 0; rep < budget.reps; ++rep) {
                const RunOutcome outcome = runner(
                    package,
                    StrategyFor(config, /*coverage_optimized=*/true),
                    BuildFor(config), budget,
                    static_cast<uint64_t>(rep + 1));
                coverages.push_back(outcome.coverage_fraction * 100.0);
                // Curves track the paper's aggregate configuration;
                // one rep per package keeps the CSV deterministic.
                if (std::string(config.name) == "cupa+opt" && rep == 0) {
                    CollectCurve(curves,
                                 std::string(language == std::string("Python")
                                                 ? "py/"
                                                 : "lua/") +
                                     package.name,
                                 outcome);
                }
            }
            std::printf(" %9.1f%%", Mean(coverages));
        }
        std::printf("\n");
    }
}

void
AblateForkWeightDecay()
{
    // Ablation called out in DESIGN.md: vary the §3.4 decay p on one
    // coverage-sensitive package.
    const Budget budget = DefaultBudget();
    const auto& package = workloads::PyPackageByName("simplejson");
    std::printf("\n-- ablation: fork-weight decay p (paper fixes 0.75), "
                "simplejson coverage --\n");
    for (double p : {0.25, 0.5, 0.75, 0.9, 1.0}) {
        std::vector<double> coverages;
        for (int rep = 0; rep < budget.reps; ++rep) {
            auto program =
                workloads::CompilePyOrDie(package.test.source);
            Engine::Options options;
            options.strategy = StrategyKind::kCupaCoverage;
            options.fork_weight_decay = p;
            options.seed = static_cast<uint64_t>(rep + 1);
            options.max_runs = budget.max_runs;
            options.max_seconds = budget.max_seconds;
            options.max_steps_per_run = budget.max_steps_per_run;
            Engine engine(options);
            const auto tests = engine.Explore(workloads::MakePyRunFn(
                program, package.test,
                interp::InterpBuildOptions::FullyOptimized()));
            std::set<int> covered;
            for (const TestCase& test : tests) {
                if (!test.new_hl_path || test.outcome_kind == "hang") {
                    continue;
                }
                const auto replay = workloads::ReplayPy(
                    program, package.test, test.inputs);
                covered.insert(replay.covered_lines.begin(),
                               replay.covered_lines.end());
            }
            coverages.push_back(
                100.0 * static_cast<double>(covered.size()) /
                static_cast<double>(
                    workloads::CoverableLines(*program)));
        }
        std::printf("  p = %.2f: %.1f%%\n", p, Mean(coverages));
    }
}

}  // namespace
}  // namespace chef::bench

int
main()
{
    using namespace chef::bench;
    std::printf("CHEF reproduction -- Figure 9: line coverage with "
                "coverage-optimized CUPA\n");
    std::printf("(paper: noticeable improvement in 6/11 packages; "
                "simplejson ~80%% and xlrd ~40%% with the aggregate "
                "config)\n");
    chef::obs::ClusterSeries curves;
    RunSuite("Python", PyPackages(),
             [](const PyPackage& p, StrategyKind s,
                interp::InterpBuildOptions b, const Budget& budget,
                uint64_t seed) {
                 return RunPy(p, s, b, budget, seed, true);
             },
             &curves);
    RunSuite("Lua", LuaPackages(),
             [](const LuaPackage& p, StrategyKind s,
                interp::InterpBuildOptions b, const Budget& budget,
                uint64_t seed) {
                 return RunLua(p, s, b, budget, seed, true);
             },
             &curves);
    {
        const std::string csv = chef::obs::RenderCoverageCurvesCsv(curves);
        const char* path = "coverage_curves_fig9.csv";
        std::FILE* file = std::fopen(path, "wb");
        if (file != nullptr) {
            std::fwrite(csv.data(), 1, csv.size(), file);
            std::fclose(file);
            std::printf("\ncoverage curves: %s (%zu packages)\n", path,
                        curves.Sources().size());
        } else {
            std::fprintf(stderr, "failed to write %s\n", path);
        }
    }
    if (std::getenv("CHEF_FIG9_ABLATE_P") != nullptr) {
        AblateForkWeightDecay();
    }
    return 0;
}
