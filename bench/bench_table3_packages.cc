/// \file
/// Table 3: testing results for the Python and Lua packages: size,
/// coverable LOC, exceptions discovered (total / undocumented), and
/// hangs. Exceptions are classified like the paper (§6.2): documented =
/// in the package's documented list or a common standard exception
/// (ValueError, TypeError, KeyError); everything else is undocumented.

#include <set>

#include "bench_common.h"

namespace chef::bench {
namespace {

bool
IsDocumented(const std::string& exception_type,
             const std::vector<std::string>& documented)
{
    static const std::set<std::string> kCommon = {
        "ValueError", "TypeError", "KeyError"};
    if (kCommon.count(exception_type)) {
        return true;
    }
    for (const std::string& name : documented) {
        if (name == exception_type) {
            return true;
        }
    }
    return false;
}

}  // namespace
}  // namespace chef::bench

int
main()
{
    using namespace chef::bench;
    Budget budget = DefaultBudget();
    budget.max_seconds = 3.0;
    budget.max_runs = 400;

    std::printf("CHEF reproduction -- Table 3: testing results per "
                "package\n");
    std::printf("(paper totals: 18,493 LOC / 12,852 coverable; argparse "
                "4/0, ConfigParser 1/0, HTMLParser 1/0, simplejson 2/0,\n"
                " unicodecsv 1/0, xlrd 5/4 exceptions; hang in Lua "
                "JSON)\n\n");
    std::printf("%-14s %-8s %6s %10s %12s %6s\n", "package", "type",
                "LOC", "coverable", "exc(tot/und)", "hangs");

    size_t total_loc = 0;
    size_t total_coverable = 0;

    for (const PyPackage& package : PyPackages()) {
        auto program = workloads::CompilePyOrDie(package.test.source);
        const RunOutcome outcome =
            RunPy(package, StrategyKind::kCupaPath,
                  interp::InterpBuildOptions::FullyOptimized(), budget,
                  1, false);
        std::set<std::string> types;
        std::set<std::string> undocumented;
        for (const TestCase& test : outcome.tests) {
            if (test.outcome_kind != "exception" ||
                test.outcome_detail.empty()) {
                continue;
            }
            types.insert(test.outcome_detail);
            if (!IsDocumented(test.outcome_detail,
                              package.documented_exceptions)) {
                undocumented.insert(test.outcome_detail);
            }
        }
        const size_t loc = workloads::GuestLoc(package.test.source);
        const size_t coverable = workloads::CoverableLines(*program);
        total_loc += loc;
        total_coverable += coverable;
        std::printf("%-14s %-8s %6zu %10zu %8zu/%-3zu %6s\n",
                    package.name.c_str(), package.category.c_str(), loc,
                    coverable, types.size(), undocumented.size(),
                    outcome.hangs > 0 ? "yes" : "-");
        if (!undocumented.empty()) {
            std::printf("    undocumented:");
            for (const std::string& name : undocumented) {
                std::printf(" %s", name.c_str());
            }
            std::printf("\n");
        }
    }

    for (const LuaPackage& package : LuaPackages()) {
        auto chunk = workloads::ParseLuaOrDie(package.test.source);
        const RunOutcome outcome =
            RunLua(package, StrategyKind::kCupaPath,
                   interp::InterpBuildOptions::FullyOptimized(), budget,
                   1, false);
        const size_t loc = workloads::GuestLoc(package.test.source);
        const size_t coverable = chunk->coverable_lines.size();
        total_loc += loc;
        total_coverable += coverable;
        // Lua has no exception hierarchy: Table 3 reports only hangs.
        std::printf("%-14s %-8s %6zu %10zu %8s %9s\n",
                    package.name.c_str(), package.category.c_str(), loc,
                    coverable, "-",
                    outcome.hangs > 0 ? "yes" : "-");
    }
    std::printf("%-14s %-8s %6zu %10zu\n", "TOTAL", "", total_loc,
                total_coverable);
    return 0;
}
