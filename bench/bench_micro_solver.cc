/// \file
/// Supporting microbenchmarks: constraint solver throughput on the query
/// shapes concolic execution produces, with the query cache and model
/// reuse on/off (the DESIGN.md solver ablation).

#include <benchmark/benchmark.h>

#include "solver/solver.h"

namespace chef::solver {
namespace {

/// Path-condition shape: byte-equality chain (string match prefix) plus
/// one negated comparison at the end.
std::vector<ExprRef>
StringMatchQuery(int length, int flip_at)
{
    std::vector<ExprRef> assertions;
    for (int i = 0; i < length; ++i) {
        const ExprRef byte =
            MakeVar(static_cast<uint32_t>(i + 1),
                    "s" + std::to_string(i), 8);
        ExprRef eq = MakeEq(byte, MakeConst('a' + (i % 26), 8));
        if (i == flip_at) {
            eq = MakeBoolNot(eq);
        }
        assertions.push_back(eq);
    }
    return assertions;
}

void
BM_SolverStringMatch(benchmark::State& state)
{
    const int length = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Solver solver;
        Assignment model;
        const auto result =
            solver.Solve(StringMatchQuery(length, length / 2), &model);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SolverStringMatch)->Arg(8)->Arg(32)->Arg(128);

void
BM_SolverArith32(benchmark::State& state)
{
    // 3x + y == k with bounds: the Figure-1 shape.
    const ExprRef x = MakeVar(1, "x", 32);
    const ExprRef y = MakeVar(2, "y", 32);
    const ExprRef sum = MakeAdd(MakeMul(x, MakeConst(3, 32)), y);
    uint64_t k = 10;
    for (auto _ : state) {
        Solver solver;
        Assignment model;
        const auto result = solver.Solve(
            {MakeEq(sum, MakeConst(k++, 32)),
             MakeUlt(x, MakeConst(1000, 32))},
            &model);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SolverArith32);

void
BM_SolverMul16Factor(benchmark::State& state)
{
    for (auto _ : state) {
        Solver solver;
        const ExprRef x = MakeVar(1, "x", 16);
        const ExprRef y = MakeVar(2, "y", 16);
        Assignment model;
        const auto result = solver.Solve(
            {MakeEq(MakeMul(x, y), MakeConst(12851, 16)),
             MakeUgt(x, MakeConst(1, 16)),
             MakeUgt(y, MakeConst(1, 16))},
            &model);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SolverMul16Factor);

void
BM_SolverCacheEffect(benchmark::State& state)
{
    const bool enable_cache = state.range(0) != 0;
    Solver::Options options;
    options.enable_query_cache = enable_cache;
    options.enable_model_reuse = enable_cache;
    Solver solver(options);
    const auto query = StringMatchQuery(32, 16);
    for (auto _ : state) {
        Assignment model;
        const auto result = solver.Solve(query, &model);
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(enable_cache ? "cache+reuse on" : "cache+reuse off");
}
BENCHMARK(BM_SolverCacheEffect)->Arg(0)->Arg(1);

void
BM_UpperBound(benchmark::State& state)
{
    // The symbolic-allocation-size query (paper Figure 6).
    for (auto _ : state) {
        Solver solver;
        const ExprRef n = MakeVar(1, "n", 32);
        uint64_t bound = 0;
        solver.UpperBound({MakeUlt(n, MakeConst(4096, 32))}, n, &bound);
        benchmark::DoNotOptimize(bound);
    }
}
BENCHMARK(BM_UpperBound);

}  // namespace
}  // namespace chef::solver

BENCHMARK_MAIN();
