#ifndef CHEF_BENCH_BENCH_COMMON_H_
#define CHEF_BENCH_BENCH_COMMON_H_

/// \file
/// Shared harness for the evaluation benchmarks (one binary per paper
/// table/figure). The paper runs 30 minutes x 15 repetitions per
/// configuration on a 48-core machine; these benches run scaled-down
/// budgets (seconds per configuration, CHEF_BENCH_REPS repetitions,
/// default 2) and report the same rows/series so the shapes can be
/// compared. See EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "chef/engine.h"
#include "workloads/packages.h"

namespace chef::bench {

// Re-exports so bench binaries can reference everything through
// chef::bench after a single using-directive in main().
namespace workloads = chef::workloads;
namespace interp = chef::interp;
using chef::Engine;
using chef::EngineStats;
using chef::StrategyKind;
using chef::StrategyKindName;
using chef::TestCase;
using workloads::LuaPackage;
using workloads::LuaPackages;
using workloads::PyPackage;
using workloads::PyPackages;

/// The four Figure-8/9 configurations.
struct EvalConfig {
    const char* name;
    bool cupa;       ///< CUPA vs. random state selection.
    bool optimized;  ///< Optimized vs. vanilla interpreter build.
};

inline const std::vector<EvalConfig>&
EvalConfigs()
{
    static const std::vector<EvalConfig> configs = {
        {"cupa+opt", true, true},
        {"opt-only", false, true},
        {"cupa-only", true, false},
        {"baseline", false, false},
    };
    return configs;
}

/// Scaled-down exploration budgets (env-overridable).
struct Budget {
    uint64_t max_runs = 150;
    double max_seconds = 1.5;
    uint64_t max_steps_per_run = 60'000;
    int reps = 2;
};

inline Budget
DefaultBudget()
{
    Budget budget;
    if (const char* reps = std::getenv("CHEF_BENCH_REPS")) {
        budget.reps = std::max(1, std::atoi(reps));
    }
    if (const char* secs = std::getenv("CHEF_BENCH_SECONDS")) {
        budget.max_seconds = std::atof(secs);
    }
    return budget;
}

/// Result of one exploration.
struct RunOutcome {
    uint64_t ll_paths = 0;
    uint64_t hl_paths = 0;
    uint64_t hangs = 0;
    double seconds = 0.0;
    double coverage_fraction = 0.0;  ///< Filled when requested.
    std::vector<EngineStats::Sample> timeline;
    std::vector<TestCase> tests;
};

/// Runs one Python package under a strategy/build pair.
inline RunOutcome
RunPy(const PyPackage& package, StrategyKind strategy,
      interp::InterpBuildOptions build, const Budget& budget,
      uint64_t seed, bool measure_coverage)
{
    auto program = workloads::CompilePyOrDie(package.test.source);
    Engine::Options options;
    options.strategy = strategy;
    options.seed = seed;
    options.max_runs = budget.max_runs;
    options.max_seconds = budget.max_seconds;
    options.max_steps_per_run = budget.max_steps_per_run;
    Engine engine(options);
    RunOutcome outcome;
    outcome.tests =
        engine.Explore(workloads::MakePyRunFn(program, package.test, build));
    outcome.ll_paths = engine.stats().ll_paths;
    outcome.hl_paths = engine.stats().hl_paths;
    outcome.hangs = engine.stats().hangs;
    outcome.seconds = engine.stats().elapsed_seconds;
    outcome.timeline = engine.stats().timeline;
    if (measure_coverage) {
        std::set<int> covered;
        for (const TestCase& test : outcome.tests) {
            if (!test.new_hl_path || test.outcome_kind == "hang") {
                continue;
            }
            const auto replay =
                workloads::ReplayPy(program, package.test, test.inputs);
            covered.insert(replay.covered_lines.begin(),
                           replay.covered_lines.end());
        }
        const size_t coverable = workloads::CoverableLines(*program);
        outcome.coverage_fraction =
            coverable == 0 ? 0.0
                           : static_cast<double>(covered.size()) /
                                 static_cast<double>(coverable);
    }
    return outcome;
}

/// Runs one Lua package under a strategy/build pair.
inline RunOutcome
RunLua(const LuaPackage& package, StrategyKind strategy,
       interp::InterpBuildOptions build, const Budget& budget,
       uint64_t seed, bool measure_coverage)
{
    auto chunk = workloads::ParseLuaOrDie(package.test.source);
    Engine::Options options;
    options.strategy = strategy;
    options.seed = seed;
    options.max_runs = budget.max_runs;
    options.max_seconds = budget.max_seconds;
    options.max_steps_per_run = budget.max_steps_per_run;
    Engine engine(options);
    RunOutcome outcome;
    outcome.tests = engine.Explore(
        workloads::MakeLuaRunFn(chunk, package.test, build));
    outcome.ll_paths = engine.stats().ll_paths;
    outcome.hl_paths = engine.stats().hl_paths;
    outcome.hangs = engine.stats().hangs;
    outcome.seconds = engine.stats().elapsed_seconds;
    outcome.timeline = engine.stats().timeline;
    if (measure_coverage) {
        std::set<int> covered;
        for (const TestCase& test : outcome.tests) {
            if (!test.new_hl_path || test.outcome_kind == "hang") {
                continue;
            }
            const auto replay =
                workloads::ReplayLua(chunk, package.test, test.inputs);
            covered.insert(replay.covered_lines.begin(),
                           replay.covered_lines.end());
        }
        const size_t coverable = chunk->coverable_lines.size();
        outcome.coverage_fraction =
            coverable == 0 ? 0.0
                           : static_cast<double>(covered.size()) /
                                 static_cast<double>(coverable);
    }
    return outcome;
}

/// Strategy/build for an EvalConfig (path- or coverage-optimized CUPA).
inline StrategyKind
StrategyFor(const EvalConfig& config, bool coverage_optimized)
{
    if (!config.cupa) {
        return StrategyKind::kRandom;
    }
    return coverage_optimized ? StrategyKind::kCupaCoverage
                              : StrategyKind::kCupaPath;
}

inline interp::InterpBuildOptions
BuildFor(const EvalConfig& config)
{
    return config.optimized ? interp::InterpBuildOptions::FullyOptimized()
                            : interp::InterpBuildOptions::Vanilla();
}

inline double
Mean(const std::vector<double>& values)
{
    if (values.empty()) {
        return 0.0;
    }
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

}  // namespace chef::bench

#endif  // CHEF_BENCH_BENCH_COMMON_H_
