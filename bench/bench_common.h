#ifndef CHEF_BENCH_BENCH_COMMON_H_
#define CHEF_BENCH_BENCH_COMMON_H_

/// \file
/// Shared harness for the evaluation benchmarks (one binary per paper
/// table/figure). The paper runs 30 minutes x 15 repetitions per
/// configuration on a 48-core machine; these benches run scaled-down
/// budgets (seconds per configuration, CHEF_BENCH_REPS repetitions,
/// default 2) and report the same rows/series so the shapes can be
/// compared. See EXPERIMENTS.md.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "chef/engine.h"
#include "support/json.h"
#include "workloads/packages.h"

namespace chef::bench {

// Re-exports so bench binaries can reference everything through
// chef::bench after a single using-directive in main().
namespace workloads = chef::workloads;
namespace interp = chef::interp;
using chef::Engine;
using chef::EngineStats;
using chef::StrategyKind;
using chef::StrategyKindName;
using chef::TestCase;
using workloads::LuaPackage;
using workloads::LuaPackages;
using workloads::PyPackage;
using workloads::PyPackages;

/// The four Figure-8/9 configurations.
struct EvalConfig {
    const char* name;
    bool cupa;       ///< CUPA vs. random state selection.
    bool optimized;  ///< Optimized vs. vanilla interpreter build.
};

inline const std::vector<EvalConfig>&
EvalConfigs()
{
    static const std::vector<EvalConfig> configs = {
        {"cupa+opt", true, true},
        {"opt-only", false, true},
        {"cupa-only", true, false},
        {"baseline", false, false},
    };
    return configs;
}

/// Scaled-down exploration budgets (env-overridable).
struct Budget {
    uint64_t max_runs = 150;
    double max_seconds = 1.5;
    uint64_t max_steps_per_run = 60'000;
    int reps = 2;
};

inline Budget
DefaultBudget()
{
    Budget budget;
    if (const char* reps = std::getenv("CHEF_BENCH_REPS")) {
        budget.reps = std::max(1, std::atoi(reps));
    }
    if (const char* secs = std::getenv("CHEF_BENCH_SECONDS")) {
        budget.max_seconds = std::atof(secs);
    }
    return budget;
}

/// Result of one exploration.
struct RunOutcome {
    uint64_t ll_paths = 0;
    uint64_t hl_paths = 0;
    uint64_t hangs = 0;
    double seconds = 0.0;
    double coverage_fraction = 0.0;  ///< Filled when requested.
    std::vector<EngineStats::Sample> timeline;
    std::vector<TestCase> tests;
};

/// Runs one Python package under a strategy/build pair.
inline RunOutcome
RunPy(const PyPackage& package, StrategyKind strategy,
      interp::InterpBuildOptions build, const Budget& budget,
      uint64_t seed, bool measure_coverage)
{
    auto program = workloads::CompilePyOrDie(package.test.source);
    Engine::Options options;
    options.strategy = strategy;
    options.seed = seed;
    options.max_runs = budget.max_runs;
    options.max_seconds = budget.max_seconds;
    options.max_steps_per_run = budget.max_steps_per_run;
    Engine engine(options);
    RunOutcome outcome;
    outcome.tests =
        engine.Explore(workloads::MakePyRunFn(program, package.test, build));
    outcome.ll_paths = engine.stats().ll_paths;
    outcome.hl_paths = engine.stats().hl_paths;
    outcome.hangs = engine.stats().hangs;
    outcome.seconds = engine.stats().elapsed_seconds;
    outcome.timeline = engine.stats().timeline;
    if (measure_coverage) {
        std::set<int> covered;
        for (const TestCase& test : outcome.tests) {
            if (!test.new_hl_path || test.outcome_kind == "hang") {
                continue;
            }
            const auto replay =
                workloads::ReplayPy(program, package.test, test.inputs);
            covered.insert(replay.covered_lines.begin(),
                           replay.covered_lines.end());
        }
        const size_t coverable = workloads::CoverableLines(*program);
        outcome.coverage_fraction =
            coverable == 0 ? 0.0
                           : static_cast<double>(covered.size()) /
                                 static_cast<double>(coverable);
    }
    return outcome;
}

/// Runs one Lua package under a strategy/build pair.
inline RunOutcome
RunLua(const LuaPackage& package, StrategyKind strategy,
       interp::InterpBuildOptions build, const Budget& budget,
       uint64_t seed, bool measure_coverage)
{
    auto chunk = workloads::ParseLuaOrDie(package.test.source);
    Engine::Options options;
    options.strategy = strategy;
    options.seed = seed;
    options.max_runs = budget.max_runs;
    options.max_seconds = budget.max_seconds;
    options.max_steps_per_run = budget.max_steps_per_run;
    Engine engine(options);
    RunOutcome outcome;
    outcome.tests = engine.Explore(
        workloads::MakeLuaRunFn(chunk, package.test, build));
    outcome.ll_paths = engine.stats().ll_paths;
    outcome.hl_paths = engine.stats().hl_paths;
    outcome.hangs = engine.stats().hangs;
    outcome.seconds = engine.stats().elapsed_seconds;
    outcome.timeline = engine.stats().timeline;
    if (measure_coverage) {
        std::set<int> covered;
        for (const TestCase& test : outcome.tests) {
            if (!test.new_hl_path || test.outcome_kind == "hang") {
                continue;
            }
            const auto replay =
                workloads::ReplayLua(chunk, package.test, test.inputs);
            covered.insert(replay.covered_lines.begin(),
                           replay.covered_lines.end());
        }
        const size_t coverable = chunk->coverable_lines.size();
        outcome.coverage_fraction =
            coverable == 0 ? 0.0
                           : static_cast<double>(covered.size()) /
                                 static_cast<double>(coverable);
    }
    return outcome;
}

/// Strategy/build for an EvalConfig (path- or coverage-optimized CUPA).
inline StrategyKind
StrategyFor(const EvalConfig& config, bool coverage_optimized)
{
    if (!config.cupa) {
        return StrategyKind::kRandom;
    }
    return coverage_optimized ? StrategyKind::kCupaCoverage
                              : StrategyKind::kCupaPath;
}

inline interp::InterpBuildOptions
BuildFor(const EvalConfig& config)
{
    return config.optimized ? interp::InterpBuildOptions::FullyOptimized()
                            : interp::InterpBuildOptions::Vanilla();
}

inline double
Mean(const std::vector<double>& values)
{
    if (values.empty()) {
        return 0.0;
    }
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

/// Uniform bench artifact. Every bench with a --smoke mode writes
/// BENCH_<name>.json through this one helper, so CI collects artifacts
/// with a single glob and downstream consumers parse a single schema:
///
///   {"bench": <name>, "smoke": <bool>, "wall_seconds": <seconds>,
///    "config": {<knobs the bench ran with>},
///    "metrics": {<scalar results and pass/fail booleans>},
///    "reports": {<embedded full JSON documents>}}
///
/// wall_seconds spans construction to Write() — the whole bench run,
/// every configuration included. Keys keep insertion order.
class BenchReport
{
  public:
    BenchReport(std::string name, bool smoke)
        : name_(std::move(name)), smoke_(smoke),
          start_(std::chrono::steady_clock::now())
    {
    }

    template <typename T>
    void Config(const char* key, const T& value)
    {
        Add(&config_, key, value);
    }

    template <typename T>
    void Metric(const char* key, const T& value)
    {
        Add(&metrics_, key, value);
    }

    /// Embeds an already-rendered JSON document (a service report, a
    /// merged shard report) under reports.<key> verbatim.
    void Report(const char* key, std::string json)
    {
        reports_.emplace_back(key, std::move(json));
    }

    /// The artifact name CI globs for.
    std::string DefaultPath() const { return "BENCH_" + name_ + ".json"; }

    /// Renders and writes the document, complaining on stderr itself so
    /// call sites can collapse to `return report.Write(path) && ok`.
    bool Write(const std::string& path) const
    {
        support::JsonWriter json;
        json.BeginObject();
        json.Key("bench"), json.Value(name_);
        json.Key("smoke"), json.Value(smoke_);
        json.Key("wall_seconds"),
            json.Value(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
        WriteSection(&json, "config", config_);
        WriteSection(&json, "metrics", metrics_);
        WriteSection(&json, "reports", reports_);
        json.EndObject();
        const std::string document = json.Take();
        std::FILE* file = std::fopen(path.c_str(), "wb");
        if (file == nullptr ||
            std::fwrite(document.data(), 1, document.size(), file) !=
                document.size() ||
            std::fclose(file) != 0) {
            std::fprintf(stderr, "failed to write %s\n", path.c_str());
            return false;
        }
        std::printf("report: %s\n", path.c_str());
        return true;
    }

  private:
    using Entries = std::vector<std::pair<std::string, std::string>>;

    /// Values are rendered to JSON eagerly (one tiny writer each), so
    /// the sections can hold mixed types without a variant.
    template <typename T>
    static void Add(Entries* entries, const char* key, const T& value)
    {
        support::JsonWriter json;
        json.Value(value);
        entries->emplace_back(key, json.Take());
    }

    static void WriteSection(support::JsonWriter* json, const char* key,
                             const Entries& entries)
    {
        json->Key(key);
        json->BeginObject();
        for (const auto& [name, value] : entries) {
            json->Key(name.c_str());
            json->RawValue(value);
        }
        json->EndObject();
    }

    std::string name_;
    bool smoke_;
    std::chrono::steady_clock::time_point start_;
    Entries config_;
    Entries metrics_;
    Entries reports_;
};

}  // namespace chef::bench

#endif  // CHEF_BENCH_BENCH_COMMON_H_
