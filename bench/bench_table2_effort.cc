/// \file
/// Table 2: effort required to support Python and Lua in CHEF. The paper
/// counts lines added to each interpreter; here the same structural
/// accounting is computed from this repository's sources: interpreter
/// core size, HLPC instrumentation sites, symbolic-execution optimization
/// code, and the symbolic test library.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef CHEF_SOURCE_DIR
#define CHEF_SOURCE_DIR "."
#endif

namespace {

struct FileStats {
    size_t lines = 0;
    size_t log_pc_sites = 0;
    size_t branch_sites = 0;
};

FileStats
CountFile(const std::string& path)
{
    FileStats stats;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        // Count non-blank lines.
        if (line.find_first_not_of(" \t\r") != std::string::npos) {
            ++stats.lines;
        }
        size_t pos = 0;
        while ((pos = line.find("LogPc(", pos)) != std::string::npos) {
            ++stats.log_pc_sites;
            pos += 6;
        }
        pos = 0;
        while ((pos = line.find("CHEF_LLPC", pos)) != std::string::npos) {
            ++stats.branch_sites;
            pos += 9;
        }
    }
    return stats;
}

FileStats
CountFiles(const std::vector<std::string>& paths)
{
    FileStats total;
    for (const std::string& path : paths) {
        const FileStats stats =
            CountFile(std::string(CHEF_SOURCE_DIR) + "/" + path);
        total.lines += stats.lines;
        total.log_pc_sites += stats.log_pc_sites;
        total.branch_sites += stats.branch_sites;
    }
    return total;
}

}  // namespace

int
main()
{
    std::printf("CHEF reproduction -- Table 2: interpreter preparation "
                "effort (structural accounting of this repository)\n\n");

    const FileStats minipy = CountFiles(
        {"src/minipy/lexer.cc", "src/minipy/parser.cc",
         "src/minipy/compiler.cc", "src/minipy/vm.cc",
         "src/minipy/builtins.cc", "src/minipy/object.cc"});
    const FileStats minilua =
        CountFiles({"src/minilua/lua_parser.cc",
                    "src/minilua/lua_interp.cc"});
    const FileStats optimizations = CountFiles(
        {"src/interp/str_ops.cc", "src/interp/mem_ops.cc",
         "src/interp/int_ops.cc"});
    const FileStats py_testlib = CountFiles({"src/workloads/py_harness.cc"});
    const FileStats lua_testlib =
        CountFiles({"src/workloads/lua_harness.cc"});

    std::printf("%-38s %12s %12s\n", "component", "MiniPy", "MiniLua");
    std::printf("%-38s %12zu %12zu\n",
                "interpreter core size (non-blank LoC)", minipy.lines,
                minilua.lines);
    std::printf("%-38s %12zu %12zu\n", "HLPC instrumentation (log_pc sites)",
                minipy.log_pc_sites, minilua.log_pc_sites);
    std::printf("%-38s %12zu %12zu\n",
                "instrumented branch sites (CHEF_LLPC)",
                minipy.branch_sites, minilua.branch_sites);
    std::printf("%-38s %12zu %12zu\n",
                "shared symbex optimization code (LoC)",
                optimizations.lines, optimizations.lines);
    std::printf("%-38s %12zu %12zu\n", "symbolic test library (LoC)",
                py_testlib.lines, lua_testlib.lines);

    std::printf("\npaper (real CPython 2.7.3 / Lua 5.2.2): core 427,435 / "
                "14,553 LoC; HLPC instrumentation 47 / 44 LoC;\n"
                "optimizations 274 / 233 LoC; test library 103 / 87 LoC; "
                "effort 5 / 3 person-days.\n");
    std::printf("\nThe reproduced ratio to note: instrumentation + "
                "optimizations are orders of magnitude smaller than the "
                "interpreter cores,\nand the same shared API serves both "
                "a bytecode VM (MiniPy) and an AST walker (MiniLua).\n");
    return 0;
}
