#!/usr/bin/env python3
"""Gate bench wall-time regressions against checked-in baselines.

Compares freshly produced BENCH_<name>.json reports (written by every
bench target via BenchReport::Write) against the committed baselines in
bench/baselines/. A bench regresses when its wall_seconds exceeds the
baseline by more than the relative tolerance AND the absolute slack —
both must trip, so micro-benches whose wall time is noise-dominated
don't flap the gate.

Usage:
    check_bench_regression.py [--baselines DIR] [REPORT...]

With no REPORT arguments, globs BENCH_*.json in the current directory.
Benches without a baseline (or baselines without a fresh report) are
reported but never fail the gate, so adding a new bench does not
require updating baselines in the same change. A baseline only
compares against a report with the same smoke flag: full-budget runs
and --smoke runs measure different workloads.

Environment:
    CHEF_BENCH_TOLERANCE  relative slowdown allowed (default 0.25)
    CHEF_BENCH_ABS_SLACK  absolute seconds always allowed (default 2.0)

Exit status: 0 when no comparable bench regressed, 1 otherwise.
"""

import argparse
import glob
import json
import os
import sys


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: unreadable bench report {path}: {error}")
        return None
    if "bench" not in report or "wall_seconds" not in report:
        print(f"error: {path} is not a bench report "
              "(missing 'bench'/'wall_seconds')")
        return None
    return report


def main(argv):
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json against bench/baselines/")
    parser.add_argument(
        "reports", nargs="*",
        help="fresh bench reports (default: ./BENCH_*.json)")
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "baselines"),
        help="directory of committed baseline reports")
    args = parser.parse_args(argv)

    tolerance = float(os.environ.get("CHEF_BENCH_TOLERANCE", "0.25"))
    abs_slack = float(os.environ.get("CHEF_BENCH_ABS_SLACK", "2.0"))

    paths = args.reports or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("error: no fresh BENCH_*.json reports found")
        return 1

    baselines = {}
    for path in sorted(glob.glob(os.path.join(args.baselines, "*.json"))):
        baseline = load_report(path)
        if baseline is not None:
            baselines[baseline["bench"]] = baseline

    failures = 0
    compared = 0
    for path in paths:
        report = load_report(path)
        if report is None:
            failures += 1
            continue
        name = report["bench"]
        baseline = baselines.pop(name, None)
        if baseline is None:
            print(f"  skip {name}: no baseline (seed one from this run)")
            continue
        if bool(report.get("smoke")) != bool(baseline.get("smoke")):
            print(f"  skip {name}: smoke flag differs from baseline")
            continue
        fresh = float(report["wall_seconds"])
        base = float(baseline["wall_seconds"])
        limit = base * (1.0 + tolerance) + abs_slack
        verdict = "ok" if fresh <= limit else "REGRESSED"
        print(f"  {verdict:9s} {name}: {fresh:.3f}s vs baseline "
              f"{base:.3f}s (limit {limit:.3f}s)")
        compared += 1
        if fresh > limit:
            failures += 1

    for name in sorted(baselines):
        print(f"  skip {name}: baseline present but no fresh report")

    if compared == 0 and failures == 0:
        print("warning: nothing compared; gate passes vacuously")
    if failures:
        print(f"{failures} bench(es) regressed beyond "
              f"{tolerance * 100:.0f}% + {abs_slack:.1f}s")
        return 1
    print(f"bench regression gate: {compared} compared, all within "
          f"{tolerance * 100:.0f}% + {abs_slack:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
