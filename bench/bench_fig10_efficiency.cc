/// \file
/// Figure 10: fraction of low-level paths that contribute a new
/// high-level path, over time, averaged across the testing targets.
/// The paper shows the aggregate configuration sustaining ~25% (Python)
/// and ~12% (Lua), about 10x / 2.6x above the best other configuration.

#include "bench_common.h"

namespace chef::bench {
namespace {

constexpr int kTimeBuckets = 10;

/// Accumulates the HL/LL ratio time series, normalized to the budget.
struct Series {
    double sums[kTimeBuckets] = {};
    int counts[kTimeBuckets] = {};

    void Add(const std::vector<EngineStats::Sample>& timeline,
             double horizon)
    {
        // For each bucket boundary take the last sample at or before it.
        size_t cursor = 0;
        EngineStats::Sample last{0.0, 0, 0};
        for (int bucket = 0; bucket < kTimeBuckets; ++bucket) {
            const double t =
                horizon * static_cast<double>(bucket + 1) / kTimeBuckets;
            while (cursor < timeline.size() &&
                   timeline[cursor].t <= t) {
                last = timeline[cursor];
                ++cursor;
            }
            if (last.ll_paths > 0) {
                sums[bucket] += static_cast<double>(last.hl_paths) /
                                static_cast<double>(last.ll_paths);
                counts[bucket] += 1;
            }
        }
    }

    double At(int bucket) const
    {
        return counts[bucket] == 0 ? 0.0
                                   : sums[bucket] / counts[bucket];
    }
};

template <typename Package, typename Runner>
void
RunSuite(const char* language, const std::vector<Package>& packages,
         Runner&& runner)
{
    const Budget budget = DefaultBudget();
    std::printf("\n-- Figure 10 (%s): HL/LL path ratio over time [%%] "
                "--\n",
                language);
    std::printf("%-10s", "t/T");
    for (int bucket = 0; bucket < kTimeBuckets; ++bucket) {
        std::printf(" %5.1f",
                    static_cast<double>(bucket + 1) / kTimeBuckets);
    }
    std::printf("\n");
    for (const EvalConfig& config : EvalConfigs()) {
        Series series;
        for (const Package& package : packages) {
            for (int rep = 0; rep < budget.reps; ++rep) {
                const RunOutcome outcome = runner(
                    package,
                    StrategyFor(config, /*coverage_optimized=*/false),
                    BuildFor(config), budget,
                    static_cast<uint64_t>(rep + 1));
                series.Add(outcome.timeline, budget.max_seconds);
            }
        }
        std::printf("%-10s", config.name);
        for (int bucket = 0; bucket < kTimeBuckets; ++bucket) {
            std::printf(" %5.1f", 100.0 * series.At(bucket));
        }
        std::printf("\n");
    }
}

}  // namespace
}  // namespace chef::bench

int
main()
{
    using namespace chef::bench;
    std::printf("CHEF reproduction -- Figure 10: efficiency of high-level "
                "test case generation\n");
    std::printf("(paper: aggregate config sustains ~25%% on Python and "
                "~12%% on Lua, ~10x / ~2.6x above the next best)\n");
    RunSuite("Python", PyPackages(),
             [](const PyPackage& p, StrategyKind s,
                interp::InterpBuildOptions b, const Budget& budget,
                uint64_t seed) {
                 return RunPy(p, s, b, budget, seed, false);
             });
    RunSuite("Lua", LuaPackages(),
             [](const LuaPackage& p, StrategyKind s,
                interp::InterpBuildOptions b, const Budget& budget,
                uint64_t seed) {
                 return RunLua(p, s, b, budget, seed, false);
             });
    return 0;
}
