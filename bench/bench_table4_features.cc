/// \file
/// Table 4: language feature support of the CHEF-derived engine vs.
/// dedicated Python engines. The CHEF and NICE-like columns are verified
/// live by running feature-probe guests through each engine; the CutiePy
/// and Commuter columns reproduce the paper's reported assessment (those
/// engines are not reimplemented here; see DESIGN.md).

#include "bench_common.h"
#include "dedicated/nice_engine.h"

namespace chef::bench {
namespace {

/// A probe program exercising one language feature symbolically; support
/// is "full" if the engine explores it without aborting.
struct FeatureProbe {
    const char* feature;
    const char* source;
    const char* entry;
};

const FeatureProbe kProbes[] = {
    {"integers", R"(def probe(x):
    if x + 1 > 10:
        return 1
    return 0
)",
     "probe"},
    {"strings", R"(def probe(x):
    s = 'ab'
    t = s + 'c'
    if t.find('b') == 1 and x > 0:
        return t.upper()
    return s
)",
     "probe"},
    {"lists and maps", R"(def probe(x):
    l = [1, 2, 3]
    d = {}
    d[x] = l
    if x in d:
        return len(d[x])
    return 0
)",
     "probe"},
    {"user-defined classes", R"(class Box:
    def __init__(self, v):
        self.v = v
    def get(self):
        return self.v

def probe(x):
    b = Box(x)
    if b.get() > 5:
        return 1
    return 0
)",
     "probe"},
    {"basic control flow", R"(def helper(x):
    return x * 2

def probe(x):
    t = 0
    for i in range(3):
        t = t + helper(x)
    if t > 100:
        t = t - 100
    return t
)",
     "probe"},
    {"advanced control flow", R"(def probe(x):
    try:
        if x > 10:
            raise ValueError('big')
        return 0
    except ValueError:
        return 1
)",
     "probe"},
    {"native methods", R"(def probe(x):
    s = str(x)
    return len(s.strip())
)",
     "probe"},
};

/// Runs a probe through the CHEF-derived engine.
bool
ChefSupports(const FeatureProbe& probe)
{
    auto program = workloads::CompilePyOrDie(probe.source);
    workloads::PySymbolicTest spec;
    spec.source = probe.source;
    spec.entry = probe.entry;
    spec.args = {workloads::SymbolicArg::Int("x", 3)};
    Engine::Options options;
    options.max_runs = 40;
    options.max_seconds = 5.0;
    Engine engine(options);
    const auto tests = engine.Explore(workloads::MakePyRunFn(
        program, spec, interp::InterpBuildOptions::FullyOptimized()));
    if (tests.empty() || engine.stats().hl_paths == 0) {
        return false;
    }
    for (const TestCase& test : tests) {
        if (test.outcome_kind == "abort") {
            return false;
        }
    }
    return true;
}

/// Runs a probe through the dedicated NICE-like engine.
bool
NiceSupports(const FeatureProbe& probe)
{
    dedicated::NicePyEngine::Options options;
    options.max_runs = 40;
    options.max_seconds = 5.0;
    dedicated::NicePyEngine engine(probe.source, options);
    const auto result = engine.Explore(probe.entry, {{"x", 3}});
    if (result.tests.empty()) {
        return false;
    }
    for (const TestCase& test : result.tests) {
        if (test.outcome_kind == "abort") {
            return false;
        }
    }
    return true;
}

/// Paper-reported columns for the engines not reimplemented here.
const char*
PaperReported(const std::string& feature, const std::string& engine)
{
    // CutiePy: concrete-complete, symbolic support partial for most.
    if (engine == "CutiePy") {
        if (feature == "integers" || feature == "basic control flow") {
            return "full";
        }
        if (feature == "advanced control flow") {
            return "none";
        }
        return "partial";
    }
    // Commuter: model-based engine with rich symbolic collections but no
    // native methods.
    if (feature == "native methods") {
        return "none";
    }
    if (feature == "user-defined classes" ||
        feature == "advanced control flow") {
        return "partial";
    }
    return "full";
}

}  // namespace
}  // namespace chef::bench

int
main()
{
    using namespace chef::bench;
    std::printf("CHEF reproduction -- Table 4: language feature support\n");
    std::printf("(CHEF and NICE columns measured live; CutiePy and "
                "Commuter columns reproduce the paper's reported "
                "assessment)\n\n");
    std::printf("%-24s %10s %10s %10s %10s\n", "feature", "CHEF",
                "CutiePy", "NICE", "Commuter");
    for (const FeatureProbe& probe : kProbes) {
        const bool chef_full = ChefSupports(probe);
        const bool nice_full = NiceSupports(probe);
        std::printf("%-24s %10s %10s %10s %10s\n", probe.feature,
                    chef_full ? "full" : "partial",
                    PaperReported(probe.feature, "CutiePy"),
                    nice_full ? "full" : "none",
                    PaperReported(probe.feature, "Commuter"));
    }
    std::printf("\npaper: CHEF full across the board except floats "
                "(concrete-only; MiniPy likewise rejects float literals), "
                "NICE full only for integers\nand basic control flow.\n");
    return 0;
}
