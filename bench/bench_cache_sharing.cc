/// \file
/// Cross-worker solver-cache sharing: same-workload batch speedup.
///
/// Runs one batch of identical-workload jobs twice — sharing off (the PR 1
/// baseline) and sharing on — with the same service seed and ≥4 workers,
/// then compares total solver time and reports the shared-cache hit rate.
/// Both configurations' full service reports are embedded in one JSON
/// document (arg: report path, default "BENCH_cache_sharing.json").
///
/// Usage: bench_cache_sharing [--smoke] [report.json]
///   --smoke   tiny per-job budgets, for CI; skips the (noise-sensitive)
///             solver-time regression check and only enforces hit rate.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "service/report.h"
#include "service/service.h"

namespace {

using chef::service::ExplorationService;
using chef::service::JobResult;
using chef::service::JobSpec;
using chef::service::ServiceStats;

constexpr const char* kWorkload = "py/argparse";

std::vector<JobSpec>
MakeSameWorkloadBatch(int jobs, uint64_t max_runs)
{
    std::vector<JobSpec> batch;
    for (int i = 0; i < jobs; ++i) {
        JobSpec spec;
        spec.workload = kWorkload;
        spec.label = std::string(kWorkload) + "#" + std::to_string(i);
        spec.seed = static_cast<uint64_t>(i) + 1;
        spec.options.max_runs = max_runs;
        // Bound work by run count so both configurations do comparable
        // amounts of exploration.
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        batch.push_back(std::move(spec));
    }
    return batch;
}

struct ConfigOutcome {
    ServiceStats stats;
    std::string report_json;
    size_t failed = 0;
};

ConfigOutcome
RunConfig(const std::vector<JobSpec>& jobs, bool share)
{
    ExplorationService::Options options;
    options.num_workers = 4;
    options.seed = 2014;
    options.share_solver_cache = share;
    ExplorationService service(options);
    const std::vector<JobResult> results = service.RunBatch(jobs);

    ConfigOutcome outcome;
    outcome.stats = service.stats();
    outcome.report_json = chef::service::RenderJsonReport(
        service.stats(), results, service.corpus());
    for (const JobResult& result : results) {
        if (result.status != chef::service::JobStatus::kCompleted) {
            ++outcome.failed;
        }
    }
    return outcome;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string report_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            report_path = argv[i];
        }
    }
    chef::bench::BenchReport bench("cache_sharing", smoke);
    if (report_path.empty()) {
        report_path = bench.DefaultPath();
    }

    const int num_jobs = smoke ? 8 : 12;
    const uint64_t max_runs = smoke ? 10 : 50;
    const std::vector<JobSpec> jobs =
        MakeSameWorkloadBatch(num_jobs, max_runs);
    std::printf("cache sharing: %d x %s, %lu runs/job, 4 workers%s\n\n",
                num_jobs, kWorkload,
                static_cast<unsigned long>(max_runs),
                smoke ? " [smoke]" : "");

    const ConfigOutcome off = RunConfig(jobs, false);
    const ConfigOutcome on = RunConfig(jobs, true);

    const ServiceStats& s_off = off.stats;
    const ServiceStats& s_on = on.stats;
    const uint64_t shared_lookups =
        s_on.shared_cache_hits + s_on.shared_cache_misses;
    const double hit_rate =
        shared_lookups > 0
            ? static_cast<double>(s_on.shared_cache_hits) /
                  static_cast<double>(shared_lookups)
            : 0.0;
    const double solver_speedup =
        s_on.solver_seconds > 0.0
            ? s_off.solver_seconds / s_on.solver_seconds
            : 0.0;

    std::printf("%22s %14s %14s\n", "", "sharing_off", "sharing_on");
    std::printf("%22s %14.3f %14.3f\n", "solver_seconds",
                s_off.solver_seconds, s_on.solver_seconds);
    std::printf("%22s %14.3f %14.3f\n", "wall_seconds",
                s_off.wall_seconds, s_on.wall_seconds);
    std::printf("%22s %14lu %14lu\n", "solver_queries",
                static_cast<unsigned long>(s_off.solver_queries),
                static_cast<unsigned long>(s_on.solver_queries));
    std::printf("%22s %14s %14lu\n", "shared_cache_hits", "-",
                static_cast<unsigned long>(s_on.shared_cache_hits));
    std::printf("%22s %14s %14lu\n", "shared_model_hits", "-",
                static_cast<unsigned long>(s_on.shared_cache_model_hits));
    std::printf("%22s %14s %14lu\n", "shared_cache_entries", "-",
                static_cast<unsigned long>(s_on.shared_cache_entries));
    std::printf("\nshared hit rate: %.1f%%; solver-time speedup: %.2fx\n",
                hit_rate * 100.0, solver_speedup);

    bool ok = true;
    if (off.failed != 0 || on.failed != 0) {
        std::fprintf(stderr,
                     "FAIL: jobs did not complete (sharing off: %zu, "
                     "on: %zu)\n",
                     off.failed, on.failed);
        ok = false;
    }
    if (s_on.shared_cache_hits == 0) {
        std::fprintf(stderr,
                     "FAIL: shared cache saw no hits on a same-workload "
                     "batch\n");
        ok = false;
    }
    if (!smoke && s_on.solver_seconds >= s_off.solver_seconds) {
        // Full mode treats this as a failure; smoke batches are too
        // small for stable timing.
        std::fprintf(stderr,
                     "FAIL: sharing did not reduce total solver time "
                     "(%.3fs -> %.3fs)\n",
                     s_off.solver_seconds, s_on.solver_seconds);
        ok = false;
    }

    bench.Config("workload", kWorkload);
    bench.Config("jobs", num_jobs);
    bench.Config("max_runs", max_runs);
    bench.Config("workers", 4);
    bench.Metric("shared_hit_rate", hit_rate);
    bench.Metric("solver_time_speedup", solver_speedup);
    bench.Metric("shared_cache_hits", s_on.shared_cache_hits);
    bench.Metric("shared_model_hits", s_on.shared_cache_model_hits);
    bench.Report("sharing_off", off.report_json);
    bench.Report("sharing_on", on.report_json);
    if (!bench.Write(report_path)) {
        return 1;
    }
    return ok ? 0 : 1;
}
