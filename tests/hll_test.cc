/// \file
/// Tests for high-level tracking: the HL execution tree, the dynamic CFG,
/// branching-opcode inference, and distance analysis.

#include <gtest/gtest.h>

#include "hll/hl_tracker.h"

namespace chef::hll {
namespace {

enum FakeOpcode : uint32_t {
    kOpLoad = 1,
    kOpCmp = 2,
    kOpJumpIf = 3,
    kOpCall = 4,
    kOpRaise = 5,
};

TEST(HlExecutionTree, AdvanceBuildsPrefixTree)
{
    HlExecutionTree tree;
    const uint32_t a = tree.Advance(0, 100);
    const uint32_t b = tree.Advance(a, 101);
    // Replaying the same sequence reuses nodes.
    EXPECT_EQ(tree.Advance(0, 100), a);
    EXPECT_EQ(tree.Advance(a, 101), b);
    // Diverging creates a new node.
    const uint32_t c = tree.Advance(a, 102);
    EXPECT_NE(c, b);
    EXPECT_EQ(tree.num_nodes(), 4u);  // root + 3.
}

TEST(HlExecutionTree, SameHlpcDifferentContextIsDifferentNode)
{
    // The dynamic HLPC distinguishes occurrences of one static HLPC on
    // different high-level paths (loop unrolling).
    HlExecutionTree tree;
    const uint32_t first = tree.Advance(0, 100);
    const uint32_t second = tree.Advance(first, 100);
    EXPECT_NE(first, second);
    EXPECT_EQ(tree.hlpc_of(first), tree.hlpc_of(second));
}

TEST(HlExecutionTree, TerminalMarksCountNewPathsOnce)
{
    HlExecutionTree tree;
    const uint32_t a = tree.Advance(0, 100);
    EXPECT_TRUE(tree.MarkTerminal(a));
    EXPECT_FALSE(tree.MarkTerminal(a));
    EXPECT_EQ(tree.num_terminal_paths(), 1u);
}

TEST(HlCfg, BranchingOpcodeInference)
{
    HlCfg cfg;
    // Instruction 10 (kOpJumpIf) has two successors; instruction 20
    // (kOpLoad) has one.
    for (int i = 0; i < 10; ++i) {
        cfg.RecordNode(10, kOpJumpIf);
        cfg.RecordNode(20, kOpLoad);
    }
    cfg.RecordEdge(10, 20);
    cfg.RecordEdge(10, 30);
    cfg.RecordEdge(20, 10);
    cfg.RecomputeAnalysis();
    EXPECT_TRUE(cfg.IsBranchingOpcode(kOpJumpIf));
    EXPECT_FALSE(cfg.IsBranchingOpcode(kOpLoad));
}

TEST(HlCfg, RareOpcodesAreDropped)
{
    HlCfg cfg;
    // kOpJumpIf branches frequently; kOpRaise branches once (a rare
    // exception edge). With the 10% cutoff the rare opcode is eliminated.
    for (int site = 0; site < 20; ++site) {
        const uint64_t hlpc = 100 + site;
        for (int n = 0; n < 10; ++n) {
            cfg.RecordNode(hlpc, kOpJumpIf);
        }
        cfg.RecordEdge(hlpc, 1000 + site);
        cfg.RecordEdge(hlpc, 2000 + site);
    }
    cfg.RecordNode(999, kOpRaise);
    cfg.RecordEdge(999, 1);  // Two successors: 999 branches, but rarely.
    cfg.RecordEdge(999, 2);
    cfg.RecomputeAnalysis(0.10);
    EXPECT_TRUE(cfg.IsBranchingOpcode(kOpJumpIf));
    EXPECT_FALSE(cfg.IsBranchingOpcode(kOpRaise));
}

TEST(HlCfg, PotentialBranchPointsHaveOneSuccessor)
{
    HlCfg cfg;
    // Site 10 branches (2 successors); site 11 has the same opcode but
    // only one successor observed -> potential branching point.
    for (int n = 0; n < 5; ++n) {
        cfg.RecordNode(10, kOpJumpIf);
        cfg.RecordNode(11, kOpJumpIf);
        cfg.RecordNode(12, kOpLoad);
    }
    cfg.RecordEdge(10, 11);
    cfg.RecordEdge(10, 12);
    cfg.RecordEdge(11, 12);
    cfg.RecomputeAnalysis();
    EXPECT_FALSE(cfg.IsPotentialBranchPoint(10));
    EXPECT_TRUE(cfg.IsPotentialBranchPoint(11));
    EXPECT_FALSE(cfg.IsPotentialBranchPoint(12));
}

TEST(HlCfg, DistanceAnalysis)
{
    HlCfg cfg;
    // Chain 1 -> 2 -> 3 -> 4 where 4 is a potential branching point, plus
    // the branching site 0 with successors 1 and 5 establishing kOpJumpIf
    // as a branching opcode.
    for (int n = 0; n < 5; ++n) {
        cfg.RecordNode(0, kOpJumpIf);
        cfg.RecordNode(1, kOpLoad);
        cfg.RecordNode(2, kOpLoad);
        cfg.RecordNode(3, kOpLoad);
        cfg.RecordNode(4, kOpJumpIf);
        cfg.RecordNode(5, kOpLoad);
    }
    cfg.RecordEdge(0, 1);
    cfg.RecordEdge(0, 5);
    cfg.RecordEdge(1, 2);
    cfg.RecordEdge(2, 3);
    cfg.RecordEdge(3, 4);
    cfg.RecordEdge(4, 5);  // Only one successor: 4 is potential.
    cfg.RecomputeAnalysis();
    ASSERT_TRUE(cfg.IsPotentialBranchPoint(4));
    EXPECT_EQ(cfg.DistanceToBranchPoint(4), 0u);
    EXPECT_EQ(cfg.DistanceToBranchPoint(3), 1u);
    EXPECT_EQ(cfg.DistanceToBranchPoint(2), 2u);
    EXPECT_EQ(cfg.DistanceToBranchPoint(1), 3u);
    EXPECT_DOUBLE_EQ(cfg.DistanceWeight(4), 1.0);
    EXPECT_DOUBLE_EQ(cfg.DistanceWeight(3), 0.5);
    // Unreachable nodes get a small residual weight.
    EXPECT_LT(cfg.DistanceWeight(5), 0.01);
}

TEST(HlpcTracker, TracksDynamicPositionIntoRuntime)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    lowlevel::LowLevelRuntime runtime(&tree, &solver, {});
    HlpcTracker tracker;
    tracker.Attach(&runtime);
    tracker.Reset();

    runtime.BeginRun(solver::Assignment());
    tracker.BeginRun();
    runtime.LogPc(100, kOpLoad);
    runtime.LogPc(101, kOpCmp);

    // A symbolic branch after the second instruction snapshots HL state.
    lowlevel::SymValue x = runtime.MakeSymbolicValue("x", 8, 5);
    runtime.Branch(SvUgt(x, lowlevel::SymValue(10, 8)), 777);
    ASSERT_EQ(tree.pending().size(), 1u);
    const auto& state = tree.pending().begin()->second;
    EXPECT_EQ(state.static_hlpc, 101u);
    EXPECT_EQ(state.hl_opcode, static_cast<uint32_t>(kOpCmp));
    EXPECT_NE(state.dynamic_hlpc, 0u);

    const HlPathInfo info = tracker.EndRun();
    EXPECT_TRUE(info.is_new_path);
    EXPECT_EQ(info.length, 2u);
}

TEST(HlpcTracker, DistinguishesHlPaths)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    lowlevel::LowLevelRuntime runtime(&tree, &solver, {});
    HlpcTracker tracker;
    tracker.Attach(&runtime);
    tracker.Reset();

    // Run 1: 100 -> 101.
    runtime.BeginRun(solver::Assignment());
    tracker.BeginRun();
    runtime.LogPc(100, kOpLoad);
    runtime.LogPc(101, kOpLoad);
    EXPECT_TRUE(tracker.EndRun().is_new_path);

    // Run 2 identical: not a new path.
    runtime.BeginRun(solver::Assignment());
    tracker.BeginRun();
    runtime.LogPc(100, kOpLoad);
    runtime.LogPc(101, kOpLoad);
    EXPECT_FALSE(tracker.EndRun().is_new_path);

    // Run 3 diverges: new path.
    runtime.BeginRun(solver::Assignment());
    tracker.BeginRun();
    runtime.LogPc(100, kOpLoad);
    runtime.LogPc(102, kOpLoad);
    EXPECT_TRUE(tracker.EndRun().is_new_path);

    // Run 4 is a strict prefix: it ends at an interior node that was never
    // terminal, so it is also a distinct high-level path.
    runtime.BeginRun(solver::Assignment());
    tracker.BeginRun();
    runtime.LogPc(100, kOpLoad);
    EXPECT_TRUE(tracker.EndRun().is_new_path);
}

}  // namespace
}  // namespace chef::hll
