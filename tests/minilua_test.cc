/// \file
/// MiniLua interpreter tests: concrete semantics plus symbolic execution
/// through the engine (interning effects, numeric-for forking, pcall).

#include <gtest/gtest.h>

#include "chef/engine.h"
#include "minilua/lua_interp.h"

namespace chef::minilua {
namespace {

struct RunResult {
    std::string output;
    LuaOutcome outcome;
};

RunResult
RunLua(const std::string& source)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    lowlevel::LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());

    LuaParseResult parsed = LuaParse(source);
    if (!parsed.ok) {
        return {"<parse error: " + parsed.error + " at line " +
                    std::to_string(parsed.error_line) + ">",
                {}};
    }
    LuaInterp interp(&rt, parsed.chunk, LuaInterp::Options{});
    RunResult result;
    result.outcome = interp.RunChunk();
    result.output = interp.output();
    if (!result.outcome.ok) {
        result.output += "<error: " + result.outcome.error_message + ">";
    }
    return result;
}

std::string
Out(const std::string& source)
{
    return RunLua(source).output;
}

TEST(MiniLuaBasics, PrintAndTypes)
{
    EXPECT_EQ(Out("print(42)\n"), "42\n");
    EXPECT_EQ(Out("print('hello')\n"), "hello\n");
    EXPECT_EQ(Out("print(true, false, nil)\n"), "true\tfalse\tnil\n");
    EXPECT_EQ(Out("print(type(1), type('s'), type({}), type(nil), "
                  "type(print))\n"),
              "number\tstring\ttable\tnil\tfunction\n");
    EXPECT_EQ(Out("print(0x10)\n"), "16\n");
}

TEST(MiniLuaBasics, Arithmetic)
{
    EXPECT_EQ(Out("print(2 + 3 * 4)\n"), "14\n");
    EXPECT_EQ(Out("print(7 / 2, 7 % 2)\n"), "3\t1\n");
    EXPECT_EQ(Out("print(-7 / 2, -7 % 2)\n"), "-4\t1\n");  // Floor.
    EXPECT_EQ(Out("print(-(3 + 4))\n"), "-7\n");
    EXPECT_EQ(Out("print('10' + 5)\n"), "15\n");  // Coercion.
}

TEST(MiniLuaBasics, ComparisonAndLogic)
{
    EXPECT_EQ(Out("print(1 < 2, 2 <= 2, 3 > 4, 1 == 1, 1 ~= 2)\n"),
              "true\ttrue\tfalse\ttrue\ttrue\n");
    EXPECT_EQ(Out("print('a' < 'b', 'abc' == 'abc')\n"), "true\ttrue\n");
    EXPECT_EQ(Out("print(1 and 2, nil and 2, false or 'x', nil or 5)\n"),
              "2\tnil\tx\t5\n");
    EXPECT_EQ(Out("print(not nil, not 0)\n"), "true\tfalse\n");
    EXPECT_EQ(Out("print(1 == '1')\n"), "false\n");  // No coercion.
}

TEST(MiniLuaBasics, StringsAndConcat)
{
    EXPECT_EQ(Out("print('ab' .. 'cd' .. 1)\n"), "abcd1\n");
    EXPECT_EQ(Out("print(#'chef')\n"), "4\n");
    EXPECT_EQ(Out("s = 'hello'\nprint(s:len(), s:upper(), s:sub(2, 4))\n"),
              "5\tHELLO\tell\n");
    EXPECT_EQ(Out("print(('abc'):byte(2))\n"), "98\n");
    EXPECT_EQ(Out("print(string.rep('ab', 3))\n"), "ababab\n");
    EXPECT_EQ(Out("print(('hay@stack'):find('@'))\n"), "4\n");
    EXPECT_EQ(Out("print(('xyz'):find('q'))\n"), "nil\n");
    EXPECT_EQ(Out("print(('a,b'):sub(-1))\n"), "b\n");
    EXPECT_EQ(Out("print(string.char(104, 105))\n"), "hi\n");
}

TEST(MiniLuaControlFlow, IfWhileRepeatFor)
{
    EXPECT_EQ(Out("x = 7\nif x > 10 then print('big') elseif x > 5 then "
                  "print('mid') else print('small') end\n"),
              "mid\n");
    EXPECT_EQ(Out("i = 0\nwhile i < 3 do i = i + 1 end\nprint(i)\n"),
              "3\n");
    EXPECT_EQ(Out("i = 0\nrepeat i = i + 1 until i >= 3\nprint(i)\n"),
              "3\n");
    EXPECT_EQ(Out("t = 0\nfor i = 1, 5 do t = t + i end\nprint(t)\n"),
              "15\n");
    EXPECT_EQ(Out("for i = 6, 1, -2 do print(i) end\n"), "6\n4\n2\n");
    EXPECT_EQ(Out("for i = 1, 10 do if i == 3 then break end "
                  "print(i) end\n"),
              "1\n2\n");
}

TEST(MiniLuaTables, ArrayAndHashParts)
{
    EXPECT_EQ(Out("t = {10, 20, 30}\nprint(t[1], t[3], #t)\n"),
              "10\t30\t3\n");
    EXPECT_EQ(Out("t = {}\nt[1] = 'a'\nt[2] = 'b'\nprint(#t, t[2])\n"),
              "2\tb\n");
    EXPECT_EQ(Out("t = {x = 1, y = 2}\nprint(t.x, t['y'])\n"), "1\t2\n");
    EXPECT_EQ(Out("t = {}\nt.name = 'chef'\nprint(t.name, t.missing)\n"),
              "chef\tnil\n");
    EXPECT_EQ(Out("t = {[5] = 'five'}\nprint(t[5])\n"), "five\n");
    EXPECT_EQ(Out("t = {a = 1}\nt.a = nil\nprint(t.a)\n"), "nil\n");
    EXPECT_EQ(Out("t = {1, 2}\ntable.insert(t, 3)\nprint(#t, t[3])\n"),
              "3\t3\n");
    EXPECT_EQ(Out("t = {1, 2, 3}\nlocal r = table.remove(t)\n"
                  "print(r, #t)\n"),
              "3\t2\n");
    EXPECT_EQ(Out("t = {'a', 'b', 'c'}\nprint(table.concat(t, '-'))\n"),
              "a-b-c\n");
    EXPECT_EQ(Out("t = {1, 2}\ntable.insert(t, 1, 0)\nprint(t[1], #t)\n"),
              "0\t3\n");
}

TEST(MiniLuaTables, PairsAndIpairs)
{
    EXPECT_EQ(Out("t = {10, 20}\nfor i, v in ipairs(t) do print(i, v) "
                  "end\n"),
              "1\t10\n2\t20\n");
    EXPECT_EQ(Out("t = {}\nt.a = 1\nt.b = 2\nlocal n = 0\n"
                  "for k, v in pairs(t) do n = n + v end\nprint(n)\n"),
              "3\n");
}

TEST(MiniLuaFunctions, DefinitionsAndCalls)
{
    EXPECT_EQ(Out("function add(a, b) return a + b end\n"
                  "print(add(2, 3))\n"),
              "5\n");
    EXPECT_EQ(Out("local function fib(n)\n"
                  "  if n < 2 then return n end\n"
                  "  return fib(n - 1) + fib(n - 2)\n"
                  "end\nprint(fib(10))\n"),
              "55\n");
    EXPECT_EQ(Out("f = function(x) return x * 2 end\nprint(f(21))\n"),
              "42\n");
}

TEST(MiniLuaFunctions, ClosuresCaptureEnvironment)
{
    const char* program = R"(local function counter()
  local n = 0
  return function()
    n = n + 1
    return n
  end
end
local c = counter()
print(c(), c(), c())
)";
    EXPECT_EQ(Out(program), "1\t2\t3\n");
}

TEST(MiniLuaFunctions, MethodsAndSelf)
{
    const char* program = R"(account = {balance = 100}
function account:deposit(amount)
  self.balance = self.balance + amount
end
account:deposit(50)
print(account.balance)
)";
    EXPECT_EQ(Out(program), "150\n");
}

TEST(MiniLuaErrors, ErrorAndPcall)
{
    EXPECT_EQ(Out("local ok, err = pcall(function() error('boom') end)\n"
                  "print(ok, err)\n"),
              "false\tboom\n");
    EXPECT_EQ(Out("local ok, v = pcall(function() return 7 end)\n"
                  "print(ok, v)\n"),
              "true\t7\n");
    RunResult result = RunLua("error('top level')\n");
    EXPECT_FALSE(result.outcome.ok);
    EXPECT_EQ(result.outcome.error_message, "top level");
}

TEST(MiniLuaErrors, RuntimeErrors)
{
    EXPECT_FALSE(RunLua("local x = nil\nprint(x.field)\n").outcome.ok);
    EXPECT_FALSE(RunLua("print(1 + {})\n").outcome.ok);
    EXPECT_FALSE(RunLua("local f = nil\nf()\n").outcome.ok);
    EXPECT_FALSE(RunLua("print(1 / 0)\n").outcome.ok);
    EXPECT_EQ(Out("local ok = pcall(function() return {} + 1 end)\n"
                  "print(ok)\n"),
              "false\n");
}

TEST(MiniLuaErrors, AssertBuiltin)
{
    EXPECT_EQ(Out("print(pcall(function() assert(false, 'nope') end))\n"),
              "false\tnope\n");
    EXPECT_EQ(Out("assert(true)\nprint('ok')\n"), "ok\n");
}

TEST(MiniLuaMisc, TonumberTostring)
{
    EXPECT_EQ(Out("print(tonumber('42'), tonumber('x'), tonumber('-7'))\n"),
              "42\tnil\t-7\n");
    EXPECT_EQ(Out("print(tostring(42) .. tostring(nil))\n"), "42nil\n");
}

TEST(MiniLuaMisc, CommentsAndLongComments)
{
    EXPECT_EQ(Out("-- comment\nprint(1) -- trailing\n--[[ long\n"
                  "comment ]]\nprint(2)\n"),
              "1\n2\n");
}

TEST(MiniLuaMisc, MultipleAssignment)
{
    EXPECT_EQ(Out("local a, b = 1, 2\na, b = b, a\nprint(a, b)\n"),
              "2\t1\n");
    EXPECT_EQ(Out("local a, b = 1\nprint(a, b)\n"), "1\tnil\n");
}

TEST(MiniLuaPrograms, TokenizerShapedLoop)
{
    const char* program = R"(local function split(s, sep)
  local parts = {}
  local current = ''
  for i = 1, #s do
    local c = s:sub(i, i)
    if c == sep then
      table.insert(parts, current)
      current = ''
    else
      current = current .. c
    end
  end
  table.insert(parts, current)
  return parts
end
local parts = split('a,b,c', ',')
print(#parts, parts[1], parts[3])
)";
    EXPECT_EQ(Out(program), "3\ta\tc\n");
}

// ---------------------------------------------------------------------------
// Symbolic execution through the engine.
// ---------------------------------------------------------------------------

Engine::RunFn
LuaRunFn(std::shared_ptr<LuaChunk> chunk, const std::string& entry,
         int str_len, interp::InterpBuildOptions build)
{
    return [chunk, entry, str_len,
            build](lowlevel::LowLevelRuntime& rt) -> Engine::GuestOutcome {
        LuaInterp::Options options;
        options.build = build;
        LuaInterp interp(&rt, chunk, options);
        LuaOutcome module_outcome = interp.RunChunk();
        if (!module_outcome.ok) {
            return {"abort", module_outcome.error_message};
        }
        interp::SymStr bytes;
        for (int i = 0; i < str_len; ++i) {
            bytes.push_back(rt.MakeSymbolicValue(
                "s" + std::to_string(i), 8, 'a'));
        }
        LuaOutcome outcome =
            interp.CallGlobal(entry, {LuaValue::Str(std::move(bytes))});
        if (!outcome.ok) {
            if (outcome.aborted) {
                return {"abort", ""};
            }
            return {"error", outcome.error_message};
        }
        return {"ok", ""};
    };
}

std::shared_ptr<LuaChunk>
ParseLuaOrDie(const std::string& source)
{
    LuaParseResult parsed = LuaParse(source);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.chunk;
}

TEST(MiniLuaSymbolic, BranchOnSymbolicByte)
{
    const char* source = R"(function check(s)
  if s:byte(1) == 64 then
    return 'at'
  end
  return 'other'
end
)";
    Engine::Options options;
    options.max_runs = 50;
    Engine engine(options);
    engine.Explore(LuaRunFn(ParseLuaOrDie(source), "check", 2,
                            interp::InterpBuildOptions::FullyOptimized()));
    EXPECT_EQ(engine.stats().ll_paths, 2u);
    EXPECT_EQ(engine.stats().hl_paths, 2u);
}

TEST(MiniLuaSymbolic, InputDependentLoopForks)
{
    // Scanning for a comment terminator; the loop trip count depends on
    // the input (the shape of the JSON-comment bug).
    const char* source = R"(function scan(s)
  local i = 1
  while i <= #s do
    if s:sub(i, i) == '*' then
      return i
    end
    i = i + 1
  end
  return -1
end
)";
    Engine::Options options;
    options.max_runs = 60;
    Engine engine(options);
    engine.Explore(LuaRunFn(ParseLuaOrDie(source), "scan", 4,
                            interp::InterpBuildOptions::FullyOptimized()));
    // Positions 1..4 plus not-found.
    EXPECT_EQ(engine.stats().hl_paths, 5u);
}

TEST(MiniLuaSymbolic, ErrorPathsAreDistinguished)
{
    const char* source = R"(function parse(s)
  if s:sub(1, 1) == '!' then
    error('bang')
  end
  return true
end
)";
    Engine::Options options;
    options.max_runs = 40;
    Engine engine(options);
    const auto tests = engine.Explore(
        LuaRunFn(ParseLuaOrDie(source), "parse", 2,
                 interp::InterpBuildOptions::FullyOptimized()));
    bool found_error = false;
    for (const TestCase& test : tests) {
        if (test.outcome_kind == "error") {
            found_error = true;
            EXPECT_EQ(static_cast<char>(test.inputs.Get(1)), '!');
        }
    }
    EXPECT_TRUE(found_error);
}

TEST(MiniLuaSymbolic, InterningMakesVanillaForkMore)
{
    // Creating a derived string (concat) from symbolic bytes interns it
    // in the vanilla build: hashing + equality probes fork.
    const char* source = R"(function tag(s)
  local t = 'v:' .. s
  if t == 'v:ok' then
    return 1
  end
  return 0
end
)";
    auto chunk = ParseLuaOrDie(source);
    auto run_with = [&](interp::InterpBuildOptions build) {
        Engine::Options options;
        options.max_runs = 400;
        options.max_seconds = 15.0;
        Engine engine(options);
        engine.Explore(LuaRunFn(chunk, "tag", 2, build));
        return engine.stats().ll_paths;
    };
    const uint64_t vanilla =
        run_with(interp::InterpBuildOptions::Vanilla());
    const uint64_t optimized =
        run_with(interp::InterpBuildOptions::FullyOptimized());
    EXPECT_GT(vanilla, optimized);
    EXPECT_LE(optimized, 3u);
}

TEST(MiniLuaSymbolic, TableWithSymbolicKeysForksInVanilla)
{
    const char* source = R"(function store(s)
  local t = {}
  t[s] = 1
  return t[s]
end
)";
    auto chunk = ParseLuaOrDie(source);
    auto run_with = [&](interp::InterpBuildOptions build) {
        Engine::Options options;
        options.max_runs = 200;
        options.max_seconds = 15.0;
        Engine engine(options);
        engine.Explore(LuaRunFn(chunk, "store", 2, build));
        return engine.stats().ll_paths;
    };
    const uint64_t vanilla =
        run_with(interp::InterpBuildOptions::Vanilla());
    const uint64_t optimized =
        run_with(interp::InterpBuildOptions::FullyOptimized());
    EXPECT_GE(vanilla, optimized);
}

}  // namespace
}  // namespace chef::minilua
