/// \file
/// Tests for CUPA and the baseline search strategies, including the
/// class-uniformity statistical property the heuristic is named for.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "cupa/strategy.h"
#include "lowlevel/runtime.h"
#include "lowlevel/symvalue.h"

namespace chef::cupa {
namespace {

AlternateState
MakeState(StateId id, uint64_t dynamic_hlpc, uint64_t llpc,
          uint64_t static_hlpc = 0, double fork_weight = 1.0)
{
    AlternateState state;
    state.id = id;
    state.dynamic_hlpc = dynamic_hlpc;
    state.llpc = llpc;
    state.static_hlpc = static_hlpc;
    state.fork_weight = fork_weight;
    return state;
}

TEST(RandomStrategy, AddRemoveSelect)
{
    Rng rng(1);
    RandomStrategy strategy(&rng);
    EXPECT_TRUE(strategy.empty());
    strategy.OnStateAdded(MakeState(1, 0, 0));
    strategy.OnStateAdded(MakeState(2, 0, 0));
    EXPECT_EQ(strategy.size(), 2u);
    strategy.OnStateRemoved(1);
    EXPECT_EQ(strategy.ClaimState(), 2u);
    strategy.OnStateRemoved(2);
    EXPECT_TRUE(strategy.empty());
    // Removing an unknown id is a no-op.
    strategy.OnStateRemoved(99);
}

TEST(DfsStrategy, PicksNewest)
{
    DfsStrategy strategy;
    strategy.OnStateAdded(MakeState(5, 0, 0));
    strategy.OnStateAdded(MakeState(9, 0, 0));
    strategy.OnStateAdded(MakeState(7, 0, 0));
    EXPECT_EQ(strategy.ClaimState(), 9u);
}

TEST(BfsStrategy, PicksOldest)
{
    BfsStrategy strategy;
    strategy.OnStateAdded(MakeState(5, 0, 0));
    strategy.OnStateAdded(MakeState(9, 0, 0));
    strategy.OnStateAdded(MakeState(3, 0, 0));
    EXPECT_EQ(strategy.ClaimState(), 3u);
}

TEST(CupaStrategy, SelectsFromSingleClass)
{
    lowlevel::ExecutionTree tree;
    Rng rng(7);
    auto strategy = MakePathOptimizedCupa(&tree, &rng);
    strategy->OnStateAdded(MakeState(1, 10, 100));
    EXPECT_EQ(strategy->ClaimState(), 1u);
}

TEST(CupaStrategy, RemovalPrunesClasses)
{
    lowlevel::ExecutionTree tree;
    Rng rng(7);
    auto strategy = MakePathOptimizedCupa(&tree, &rng);
    strategy->OnStateAdded(MakeState(1, 10, 100));
    strategy->OnStateAdded(MakeState(2, 20, 100));
    strategy->OnStateRemoved(1);
    EXPECT_EQ(strategy->size(), 1u);
    EXPECT_EQ(strategy->ClaimState(), 2u);
    strategy->OnStateRemoved(2);
    EXPECT_TRUE(strategy->empty());
}

/// The defining CUPA property (§3.2): a class containing many states is
/// selected no more often than a class containing one state.
TEST(CupaStrategy, ClassUniformityHoldsUnderSkewedPopulation)
{
    lowlevel::ExecutionTree tree;
    Rng rng(1234);
    auto strategy = MakePathOptimizedCupa(&tree, &rng);

    // Class A (dynamic HLPC 1): a single state. Class B (dynamic HLPC 2):
    // 50 states, as a string-compare hot spot would produce.
    strategy->OnStateAdded(MakeState(1, /*dyn=*/1, /*llpc=*/500));
    for (StateId id = 2; id <= 51; ++id) {
        strategy->OnStateAdded(MakeState(id, /*dyn=*/2, /*llpc=*/600));
    }

    int class_a = 0;
    int class_b = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        const StateId picked = strategy->ClaimState();
        if (picked == 1) {
            ++class_a;
        } else {
            ++class_b;
        }
    }
    // Each class should receive ~50% of selections; allow generous noise.
    EXPECT_GT(class_a, trials * 0.44);
    EXPECT_LT(class_a, trials * 0.56);
    EXPECT_GT(class_b, trials * 0.44);
}

/// Without CUPA (uniform over states), the same population is dominated by
/// the big class -- the bias CUPA removes.
TEST(RandomStrategy, UniformOverStatesIsBiasedTowardBigClasses)
{
    Rng rng(1234);
    RandomStrategy strategy(&rng);
    strategy.OnStateAdded(MakeState(1, 1, 500));
    for (StateId id = 2; id <= 51; ++id) {
        strategy.OnStateAdded(MakeState(id, 2, 600));
    }
    int class_a = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        if (strategy.ClaimState() == 1) {
            ++class_a;
        }
    }
    // State 1 is one of 51 states: ~2% of selections.
    EXPECT_LT(class_a, trials * 0.06);
}

TEST(CupaStrategy, SecondLevelPartitionsByLlpc)
{
    lowlevel::ExecutionTree tree;
    Rng rng(99);
    auto strategy = MakePathOptimizedCupa(&tree, &rng);
    // Same dynamic HLPC, two low-level fork sites: 1 state vs 30 states.
    strategy->OnStateAdded(MakeState(1, 7, /*llpc=*/111));
    for (StateId id = 2; id <= 31; ++id) {
        strategy->OnStateAdded(MakeState(id, 7, /*llpc=*/222));
    }
    int site_a = 0;
    const int trials = 3000;
    for (int i = 0; i < trials; ++i) {
        if (strategy->ClaimState() == 1) {
            ++site_a;
        }
    }
    EXPECT_GT(site_a, trials * 0.42);
    EXPECT_LT(site_a, trials * 0.58);
}

TEST(CoverageCupa, WeighsClassesByDistance)
{
    lowlevel::ExecutionTree tree;
    Rng rng(5);
    // static HLPC 10 is close to a potential branch (weight 1.0); static
    // HLPC 20 is far (weight 0.1).
    auto strategy = MakeCoverageOptimizedCupa(
        &tree, &rng, [](uint64_t static_hlpc) {
            return static_hlpc == 10 ? 1.0 : 0.1;
        });
    strategy->OnStateAdded(MakeState(1, 0, 0, /*static=*/10));
    strategy->OnStateAdded(MakeState(2, 0, 0, /*static=*/20));
    int near = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        if (strategy->ClaimState() == 1) {
            ++near;
        }
    }
    // Expected ratio 1.0 : 0.1 => ~91%.
    EXPECT_GT(near, trials * 0.85);
}

TEST(CoverageCupa, WeighsStatesByForkWeightFromTree)
{
    // Fork weights are read live from the tree's pending pool, so streak
    // decay applied after insertion is visible at selection time.
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    lowlevel::LowLevelRuntime runtime(&tree, &solver, {});
    Rng rng(5);
    auto strategy = MakeCoverageOptimizedCupa(
        &tree, &rng, [](uint64_t) { return 1.0; });
    runtime.set_state_added_hook(
        [&strategy](const lowlevel::AlternateState& state) {
            strategy->OnStateAdded(state);
        });
    tree.set_on_pending_removed(
        [&strategy](StateId id) { strategy->OnStateRemoved(id); });

    runtime.BeginRun(solver::Assignment());
    // Two consecutive forks at one site -> weights p and 1. Both states
    // share static HLPC 0, so they land in one class; the second (most
    // recent) fork should be preferred p:1.
    lowlevel::SymValue a = runtime.MakeSymbolicValue("a", 8, 1);
    lowlevel::SymValue b = runtime.MakeSymbolicValue("b", 8, 2);
    runtime.Branch(SvEq(a, lowlevel::SymValue(9, 8)), 42);
    runtime.Branch(SvEq(b, lowlevel::SymValue(9, 8)), 42);

    // Identify the most recent state (id 2).
    int recent = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        if (strategy->ClaimState() == 2) {
            ++recent;
        }
    }
    // Expected share = 1 / (1 + 0.75) ~= 0.571.
    EXPECT_GT(recent, trials * 0.50);
    EXPECT_LT(recent, trials * 0.65);
}


// ---------------------------------------------------------------------------
// Concurrent claim/release protocol (run under ThreadSanitizer in CI).
// ---------------------------------------------------------------------------

// Several worker threads concurrently register states on a shared tree
// (each along its own path) and drive the strategy through the tree's
// claim protocol, occasionally handing claims back or marking them
// infeasible. Every registered state must be finalized at most once and
// the pending/finalized accounting must balance.
TEST(StrategyConcurrency, ClaimReleaseCompleteAcrossThreads)
{
    lowlevel::ExecutionTree tree;
    Rng rng(7);
    std::unique_ptr<CupaStrategy> strategy =
        MakePathOptimizedCupa(&tree, &rng);
    tree.set_on_pending_removed(
        [&strategy](StateId id) { strategy->OnStateRemoved(id); });
    tree.set_on_state_added([&strategy](const AlternateState& state) {
        strategy->OnStateAdded(state);
    });

    constexpr int kThreads = 4;
    constexpr int kBranchesPerThread = 32;
    const solver::ExprRef cond = solver::MakeVar(1, "v", 1);
    const solver::ExprRef negated = solver::MakeBoolNot(cond);

    std::vector<std::vector<StateId>> finalized(kThreads);
    std::atomic<uint64_t> infeasible{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Produce: walk a thread-unique path (the first two branch
            // directions encode the thread id) registering alternates.
            lowlevel::ExecutionTree::Cursor cursor;
            tree.BeginRun(cursor);
            for (int k = 0; k < kBranchesPerThread; ++k) {
                const bool taken = k < 2 ? ((t >> k) & 1) != 0 : true;
                tree.Advance(cursor, 1000 + static_cast<uint64_t>(k), taken,
                             cond, negated,
                             lowlevel::HlPosition{
                                 static_cast<uint64_t>(k),
                                 static_cast<uint64_t>(k), 1});
            }
            // Consume: claim through the tree, resolving each lease.
            int releases_left = kBranchesPerThread;
            int claimed_count = 0;
            AlternateState state;
            while (tree.ClaimState(
                [&strategy] {
                    return strategy->empty() ? StateId(0)
                                             : strategy->ClaimState();
                },
                &state)) {
                ++claimed_count;
                if (releases_left > 0 && claimed_count % 4 == 0) {
                    --releases_left;
                    tree.ReleaseClaim(state);
                    continue;
                }
                if (state.id % 7 == 0) {
                    tree.MarkInfeasible(state);
                    infeasible.fetch_add(1);
                } else {
                    tree.CompleteClaim(state.id);
                }
                finalized[t].push_back(state.id);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }

    std::set<StateId> unique;
    size_t total_finalized = 0;
    for (const std::vector<StateId>& ids : finalized) {
        for (StateId id : ids) {
            EXPECT_TRUE(unique.insert(id).second)
                << "state " << id << " finalized twice";
            ++total_finalized;
        }
    }
    EXPECT_EQ(tree.states_in_flight(), 0u);
    // Quiescent now: every registered state was finalized exactly once,
    // is still pending (a thread may exit while a release from another
    // thread is about to re-announce a state), or was overtaken — dropped
    // by Advance when a concurrent run explored its direction before any
    // consumer claimed it.
    EXPECT_EQ(total_finalized + tree.pending().size() +
                  tree.states_overtaken(),
              tree.total_registered());
    EXPECT_EQ(strategy->size(), tree.pending().size());
}

}  // namespace
}  // namespace chef::cupa
