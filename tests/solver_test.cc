/// \file
/// Tests for the Solver facade: caching, model reuse, upper bound search.

#include "solver/solver.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace chef::solver {
namespace {

TEST(Solver, EmptyQueryIsSat)
{
    Solver solver;
    Assignment model;
    EXPECT_EQ(solver.Solve({}, &model), QueryResult::kSat);
}

TEST(Solver, TrivialTrueAssertionIsSat)
{
    Solver solver;
    EXPECT_EQ(solver.Solve({MakeBool(true)}, nullptr), QueryResult::kSat);
    EXPECT_EQ(solver.stats().sat_calls, 0u);
}

TEST(Solver, TrivialFalseAssertionIsUnsat)
{
    Solver solver;
    EXPECT_EQ(solver.Solve({MakeBool(false)}, nullptr),
              QueryResult::kUnsat);
    EXPECT_EQ(solver.stats().sat_calls, 0u);
}

TEST(Solver, ModelSatisfiesQuery)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 32);
    const ExprRef y = MakeVar(2, "y", 32);
    const std::vector<ExprRef> assertions = {
        MakeUgt(x, MakeConst(100, 32)),
        MakeUlt(x, MakeConst(110, 32)),
        MakeEq(MakeAdd(x, y), MakeConst(300, 32)),
    };
    Assignment model;
    ASSERT_EQ(solver.Solve(assertions, &model), QueryResult::kSat);
    const uint64_t xv = model.Get(1);
    const uint64_t yv = model.Get(2);
    EXPECT_GT(xv, 100u);
    EXPECT_LT(xv, 110u);
    EXPECT_EQ((xv + yv) & 0xffffffffu, 300u);
}

TEST(Solver, ContradictionIsUnsat)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 8);
    EXPECT_EQ(solver.Solve({MakeUlt(x, MakeConst(5, 8)),
                            MakeUgt(x, MakeConst(10, 8))},
                           nullptr),
              QueryResult::kUnsat);
}

TEST(Solver, QueryCacheHitsOnRepeat)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 16);
    const std::vector<ExprRef> assertions = {
        MakeEq(x, MakeConst(77, 16))};
    Assignment model;
    ASSERT_EQ(solver.Solve(assertions, &model), QueryResult::kSat);
    const uint64_t sat_calls = solver.stats().sat_calls;
    // Structurally identical but freshly constructed assertion.
    const ExprRef x2 = MakeVar(1, "x", 16);
    Assignment model2;
    ASSERT_EQ(solver.Solve({MakeEq(x2, MakeConst(77, 16))}, &model2),
              QueryResult::kSat);
    EXPECT_EQ(solver.stats().sat_calls, sat_calls);
    EXPECT_GE(solver.stats().cache_hits, 1u);
    EXPECT_EQ(model2.Get(1), 77u);
}

TEST(Solver, CacheIsOrderInsensitive)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 16);
    const ExprRef a = MakeUgt(x, MakeConst(10, 16));
    const ExprRef b = MakeUlt(x, MakeConst(20, 16));
    ASSERT_EQ(solver.Solve({a, b}, nullptr), QueryResult::kSat);
    const uint64_t sat_calls = solver.stats().sat_calls;
    ASSERT_EQ(solver.Solve({b, a}, nullptr), QueryResult::kSat);
    EXPECT_EQ(solver.stats().sat_calls, sat_calls);
}

TEST(Solver, ModelReuseAvoidsSatCalls)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 32);
    Assignment model;
    ASSERT_EQ(solver.Solve({MakeUgt(x, MakeConst(50, 32))}, &model),
              QueryResult::kSat);
    const uint64_t sat_calls = solver.stats().sat_calls;
    // A weaker query is satisfied by the cached model without a SAT call.
    ASSERT_EQ(solver.Solve({MakeUgt(x, MakeConst(10, 32))}, nullptr),
              QueryResult::kSat);
    EXPECT_EQ(solver.stats().sat_calls, sat_calls);
    EXPECT_GE(solver.stats().model_reuse_hits, 1u);
}

TEST(Solver, DisablingCacheForcesResolve)
{
    Solver::Options options;
    options.enable_query_cache = false;
    options.enable_model_reuse = false;
    Solver solver(options);
    const ExprRef x = MakeVar(1, "x", 16);
    ASSERT_EQ(solver.Solve({MakeEq(x, MakeConst(5, 16))}, nullptr),
              QueryResult::kSat);
    ASSERT_EQ(solver.Solve({MakeEq(x, MakeConst(5, 16))}, nullptr),
              QueryResult::kSat);
    EXPECT_EQ(solver.stats().sat_calls, 2u);
}

TEST(Solver, TinyLearnedClauseCapKeepsOutcomesCorrect)
{
    // An aggressive purge cap must never change sat/unsat answers — only
    // how much past search effort the persistent session remembers. (64
    // forces several purges on this battery but is not degenerate: caps
    // near zero turn every conflict into a root restart.)
    Solver::Options options;
    options.max_learned_clauses = 64;
    options.enable_query_cache = false;
    options.enable_model_reuse = false;
    Solver capped(options);
    Solver reference;

    const ExprRef x = MakeVar(1, "x", 16);
    const ExprRef y = MakeVar(2, "y", 16);
    Rng rng(7);
    for (int i = 0; i < 12; ++i) {
        const uint64_t sum = 100 + rng.NextBelow(400);
        const uint64_t low = rng.NextBelow(300);
        std::vector<ExprRef> assertions = {
            MakeEq(MakeAdd(x, y), MakeConst(sum, 16)),
            MakeUgt(x, MakeConst(low, 16)),
            MakeUlt(y, MakeConst(50 + rng.NextBelow(200), 16)),
        };
        Assignment model;
        const QueryResult expected = reference.Solve(assertions, nullptr);
        ASSERT_EQ(capped.Solve(assertions, &model), expected) << i;
    }
    // The capped session really purged (so the equal outcomes above
    // exercised the purge path); the uncapped reference never did.
    EXPECT_GT(capped.stats().learned_clauses_purged, 0u);
    EXPECT_EQ(reference.stats().learned_clauses_purged, 0u);
}

TEST(Solver, UpperBoundExact)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 8);
    uint64_t bound = 0;
    // x < 57 constrains max to 56.
    ASSERT_TRUE(solver.UpperBound({MakeUlt(x, MakeConst(57, 8))}, x,
                                  &bound));
    EXPECT_EQ(bound, 56u);
}

TEST(Solver, UpperBoundUnconstrained)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 8);
    uint64_t bound = 0;
    ASSERT_TRUE(solver.UpperBound({}, x, &bound));
    EXPECT_EQ(bound, 255u);
}

TEST(Solver, UpperBoundOfDerivedExpression)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 8);
    uint64_t bound = 0;
    // max of 2*x for x < 10 is 18 (within 8 bits).
    const ExprRef doubled = MakeMul(x, MakeConst(2, 8));
    ASSERT_TRUE(solver.UpperBound({MakeUlt(x, MakeConst(10, 8))}, doubled,
                                  &bound));
    EXPECT_EQ(bound, 18u);
}

TEST(Solver, UpperBoundUnsatAssertions)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 8);
    uint64_t bound = 0;
    EXPECT_FALSE(solver.UpperBound({MakeBool(false)}, x, &bound));

    // A non-trivially unsat assertion set also reports failure (and
    // leaves the output untouched).
    bound = 99;
    EXPECT_FALSE(solver.UpperBound({MakeUlt(x, MakeConst(5, 8)),
                                    MakeUgt(x, MakeConst(10, 8))},
                                   x, &bound));
    EXPECT_EQ(bound, 99u);
}

TEST(Solver, UpperBoundBinarySearchPopulatesQueryCache)
{
    // The binary search issues one query per probe; repeating the same
    // UpperBound call must answer every probe from the query cache.
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 8);
    uint64_t bound = 0;
    ASSERT_TRUE(solver.UpperBound({MakeUlt(x, MakeConst(57, 8))}, x,
                                  &bound));
    EXPECT_EQ(bound, 56u);
    const uint64_t sat_calls = solver.stats().sat_calls;
    const uint64_t cache_hits = solver.stats().cache_hits;

    uint64_t bound_again = 0;
    ASSERT_TRUE(solver.UpperBound({MakeUlt(x, MakeConst(57, 8))}, x,
                                  &bound_again));
    EXPECT_EQ(bound_again, 56u);
    EXPECT_EQ(solver.stats().sat_calls, sat_calls);
    EXPECT_GT(solver.stats().cache_hits, cache_hits);
}

TEST(Solver, UpperBoundWithCacheDisabledStillExact)
{
    Solver::Options options;
    options.enable_query_cache = false;
    options.enable_model_reuse = false;
    Solver solver(options);
    const ExprRef x = MakeVar(1, "x", 8);
    uint64_t bound = 0;
    ASSERT_TRUE(solver.UpperBound({MakeUlt(x, MakeConst(57, 8))}, x,
                                  &bound));
    EXPECT_EQ(bound, 56u);
    EXPECT_EQ(solver.stats().cache_hits, 0u);
    EXPECT_EQ(solver.stats().cache_bytes, 0u);
}

TEST(Solver, CacheBytesGaugeTracksInsertsAndSkipsUnsatModels)
{
    Solver solver;
    EXPECT_EQ(solver.stats().cache_bytes, 0u);

    const ExprRef x = MakeVar(1, "x", 16);
    ASSERT_EQ(solver.Solve({MakeEq(x, MakeConst(5, 16))}, nullptr),
              QueryResult::kSat);
    const uint64_t after_sat = solver.stats().cache_bytes;
    EXPECT_GT(after_sat, 0u);

    // An unsat entry stores no model: despite holding *two* assertions
    // to the sat entry's one, it must not cost more than the sat entry
    // plus one assertion ref (it would if the model were also stored).
    ASSERT_EQ(solver.Solve({MakeUlt(x, MakeConst(5, 16)),
                            MakeUgt(x, MakeConst(10, 16))},
                           nullptr),
              QueryResult::kUnsat);
    const uint64_t unsat_entry = solver.stats().cache_bytes - after_sat;
    EXPECT_GT(unsat_entry, 0u);
    EXPECT_LE(unsat_entry, after_sat + sizeof(ExprRef));

    // A cache hit does not grow the gauge.
    ASSERT_EQ(solver.Solve({MakeEq(x, MakeConst(5, 16))}, nullptr),
              QueryResult::kSat);
    EXPECT_EQ(solver.stats().cache_bytes, after_sat + unsat_entry);
    EXPECT_GT(solver.stats().solve_seconds, 0.0);
}

TEST(Solver, LocalCacheEvictsLruBeyondByteBudget)
{
    Solver::Options options;
    // Tiny budget: a handful of entries at most.
    options.max_cache_bytes = 600;
    options.enable_model_reuse = false;  // Force distinct cache inserts.
    Solver solver(options);

    const ExprRef x = MakeVar(1, "x", 16);
    ASSERT_EQ(solver.Solve({MakeEq(x, MakeConst(0, 16))}, nullptr),
              QueryResult::kSat);
    const uint64_t one_entry = solver.stats().cache_bytes;
    ASSERT_GT(one_entry, 0u);

    uint64_t peak = 0;
    for (uint64_t v = 1; v < 40; ++v) {
        ASSERT_EQ(solver.Solve({MakeEq(x, MakeConst(v, 16))}, nullptr),
                  QueryResult::kSat);
        peak = std::max(peak, solver.stats().cache_bytes);
        // The gauge respects the budget at every step.
        EXPECT_LE(solver.stats().cache_bytes, options.max_cache_bytes);
    }
    EXPECT_GT(solver.stats().cache_evictions, 0u);
    // The gauge went *down* on eviction: at some point it held more than
    // it would after evicting one entry.
    EXPECT_LE(solver.stats().cache_bytes, peak);
    EXPECT_GE(peak, one_entry * 2);

    // Evicted (oldest) entries re-solve; the most recent still hits.
    const uint64_t hits = solver.stats().cache_hits;
    ASSERT_EQ(solver.Solve({MakeEq(x, MakeConst(39, 16))}, nullptr),
              QueryResult::kSat);
    EXPECT_EQ(solver.stats().cache_hits, hits + 1);
    const uint64_t sat_calls = solver.stats().sat_calls;
    ASSERT_EQ(solver.Solve({MakeEq(x, MakeConst(0, 16))}, nullptr),
              QueryResult::kSat);
    EXPECT_EQ(solver.stats().sat_calls, sat_calls + 1);
}

TEST(Solver, SyntacticContradictionShortCircuitsBothOrientations)
{
    const ExprRef x = MakeVar(1, "x", 8);
    const ExprRef c = MakeUlt(x, MakeConst(5, 8));

    // Plain condition in the prefix, negation last.
    {
        Solver solver;
        EXPECT_EQ(solver.Solve({c, MakeBool(true), MakeBoolNot(c)},
                               nullptr),
                  QueryResult::kUnsat);
        EXPECT_EQ(solver.stats().sat_calls, 0u);
    }
    // Negation in the prefix, plain condition last.
    {
        Solver solver;
        EXPECT_EQ(solver.Solve({MakeBoolNot(c), c}, nullptr),
                  QueryResult::kUnsat);
        EXPECT_EQ(solver.stats().sat_calls, 0u);
    }
}

TEST(Solver, DisablingSlicingAndIncrementalStillSolves)
{
    Solver::Options options;
    options.enable_independence_slicing = false;
    options.enable_incremental_sat = false;
    Solver solver(options);
    const ExprRef x = MakeVar(1, "x", 8);
    Assignment model;
    ASSERT_EQ(solver.Solve({MakeEq(x, MakeConst(9, 8)),
                            MakeEq(MakeVar(2, "y", 8), MakeConst(4, 8))},
                           &model),
              QueryResult::kSat);
    EXPECT_EQ(model.Get(1), 9u);
    EXPECT_EQ(model.Get(2), 4u);
    EXPECT_EQ(solver.stats().sliced_queries, 0u);
    EXPECT_EQ(solver.stats().incremental_sat_calls, 0u);
}

/// Property: for random interval constraints, the model returned lies in
/// the interval and UpperBound returns the interval's top.
class SolverIntervalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverIntervalProperty, ModelsRespectIntervals)
{
    Rng rng(GetParam());
    Solver solver;
    for (int round = 0; round < 10; ++round) {
        const uint64_t lo = rng.NextBelow(200);
        const uint64_t hi = lo + 1 + rng.NextBelow(55);
        const ExprRef x = MakeVar(1, "x", 8);
        const std::vector<ExprRef> assertions = {
            MakeUge(x, MakeConst(lo, 8)), MakeUle(x, MakeConst(hi, 8))};
        Assignment model;
        ASSERT_EQ(solver.Solve(assertions, &model), QueryResult::kSat);
        EXPECT_GE(model.Get(1), lo);
        EXPECT_LE(model.Get(1), hi);
        uint64_t bound = 0;
        ASSERT_TRUE(solver.UpperBound(assertions, x, &bound));
        EXPECT_EQ(bound, std::min<uint64_t>(hi, 255));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverIntervalProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace chef::solver
