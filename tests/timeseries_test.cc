/// \file
/// Tests for the time-series telemetry layer: tier-0 ring wraparound,
/// coarse-tier promotion, windowed-rate correctness on synthetic
/// counter curves, series JSON / NDJSON round trips through the strict
/// parser, ClusterSeries merge order-independence and idempotent
/// re-delivery, and a 2-shard loopback batch whose merged fingerprint
/// curve must be monotone and equal to the sum of the per-shard curves.

#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "service/job.h"
#include "shard/coordinator.h"
#include "support/json.h"

namespace chef::obs {
namespace {

using support::JsonValue;
using support::JsonWriter;
using support::ParseJson;

/// A snapshot whose counters are exactly \p counters (sorted by name,
/// matching the registry invariant).
MetricsSnapshot
CountersSnapshot(std::map<std::string, uint64_t> counters)
{
    MetricsSnapshot snapshot;
    snapshot.counters.assign(counters.begin(), counters.end());
    return snapshot;
}

std::vector<uint64_t>
Indices(const std::vector<SeriesSample>& samples)
{
    std::vector<uint64_t> indices;
    for (const SeriesSample& sample : samples) {
        indices.push_back(sample.index);
    }
    return indices;
}

// --------------------------------------------------------------------------
// Recorder: ring wraparound and tier coarsening.

TEST(TimeSeriesTest, RawRingWrapsAndSamplesSinceStaysAscending)
{
    TimeSeriesRecorder::Options options;
    options.raw_capacity = 4;
    options.coarse_tiers = 0;
    TimeSeriesRecorder recorder(options);
    for (int i = 1; i <= 10; ++i) {
        recorder.Record(static_cast<double>(i),
                        CountersSnapshot({{"c", static_cast<uint64_t>(i)}}));
    }
    EXPECT_EQ(recorder.last_index(), 10u);
    EXPECT_EQ(recorder.total_recorded(), 10u);
    // Only the newest raw_capacity samples survive in tier 0.
    EXPECT_EQ(Indices(recorder.SamplesSince(0)),
              (std::vector<uint64_t>{7, 8, 9, 10}));
    EXPECT_EQ(Indices(recorder.SamplesSince(8)),
              (std::vector<uint64_t>{9, 10}));
    EXPECT_TRUE(recorder.SamplesSince(10).empty());
    EXPECT_EQ(recorder.Retained().size(), 4u);

    SeriesSample latest;
    ASSERT_TRUE(recorder.Latest(&latest));
    EXPECT_EQ(latest.index, 10u);
    EXPECT_DOUBLE_EQ(latest.t_seconds, 10.0);
    EXPECT_EQ(latest.metrics.CounterValue("c"), 10u);
}

TEST(TimeSeriesTest, CoarseTiersRetainLongHorizon)
{
    TimeSeriesRecorder::Options options;
    options.raw_capacity = 4;
    options.coarse_tiers = 2;
    options.coarsen_factor = 2;
    options.tier_capacity = 4;
    TimeSeriesRecorder recorder(options);
    for (int i = 1; i <= 64; ++i) {
        recorder.Record(static_cast<double>(i),
                        CountersSnapshot({{"c", static_cast<uint64_t>(i)}}));
    }
    // Tier 0 keeps 61..64; tier 1 every 2nd sample (58,60,62,64); tier 2
    // every 4th (52,56,60,64). Retained() is the deduplicated ascending
    // union — the long horizon survives tier-0 wraparound, coarsened.
    EXPECT_EQ(Indices(recorder.Retained()),
              (std::vector<uint64_t>{52, 56, 58, 60, 61, 62, 63, 64}));
    // Memory stays bounded no matter how long the run gets.
    for (int i = 65; i <= 1000; ++i) {
        recorder.Record(static_cast<double>(i),
                        CountersSnapshot({{"c", static_cast<uint64_t>(i)}}));
    }
    EXPECT_LE(recorder.Retained().size(),
              options.raw_capacity + 2 * options.tier_capacity);
    EXPECT_EQ(recorder.total_recorded(), 1000u);
}

// --------------------------------------------------------------------------
// Windowed rates over synthetic counter curves.

TEST(TimeSeriesTest, WindowedRatesMatchSyntheticSlopes)
{
    TimeSeriesRecorder recorder;
    // Linear counters: jobs at 10/s, hits at 5/s, queries at 10/s, plus
    // a cumulative histogram accruing 1000 nanos per second.
    for (int t = 0; t <= 10; ++t) {
        MetricsSnapshot snapshot = CountersSnapshot(
            {{"hits", static_cast<uint64_t>(5 * t)},
             {"jobs", static_cast<uint64_t>(10 * t)},
             {"queries", static_cast<uint64_t>(10 * t)}});
        HistogramSnapshot h;
        h.name = "h";
        h.count = static_cast<uint64_t>(t);
        h.sum_nanos = static_cast<uint64_t>(t) * 1000;
        h.min_nanos = t > 0 ? 1000 : 0;
        h.max_nanos = t > 0 ? 1000 : 0;
        if (t > 0) {
            h.buckets[Histogram::BucketFor(1000)] =
                static_cast<uint64_t>(t);
        }
        snapshot.histograms.push_back(std::move(h));
        recorder.Record(static_cast<double>(t), std::move(snapshot));
    }
    // Baseline = newest sample at least `window` older than the newest.
    EXPECT_DOUBLE_EQ(recorder.WindowedRate("jobs", 2.0), 10.0);
    // Window larger than the series: falls back to the oldest sample.
    EXPECT_DOUBLE_EQ(recorder.WindowedRate("jobs", 100.0), 10.0);
    // Default window comes from Options::default_window_seconds.
    EXPECT_DOUBLE_EQ(recorder.WindowedRate("jobs"), 10.0);
    EXPECT_DOUBLE_EQ(recorder.WindowedRatio("hits", "queries", 2.0), 0.5);
    // Unknown counters read as flat zero, not an error.
    EXPECT_DOUBLE_EQ(recorder.WindowedRate("absent", 2.0), 0.0);

    HistogramSnapshot delta;
    ASSERT_TRUE(recorder.WindowedHistogram("h", &delta, 2.0));
    EXPECT_EQ(delta.count, 2u);
    EXPECT_EQ(delta.sum_nanos, 2000u);
    EXPECT_FALSE(recorder.WindowedHistogram("absent", &delta, 2.0));

    const std::vector<SeriesSample> samples = recorder.Retained();
    EXPECT_DOUBLE_EQ(WindowedHistogramSumRate(samples, "h", 2.0),
                     1000.0 / 1e9);
    // A single sample can never produce a rate.
    TimeSeriesRecorder lone;
    lone.Record(0.0, CountersSnapshot({{"jobs", 5}}));
    EXPECT_DOUBLE_EQ(lone.WindowedRate("jobs", 2.0), 0.0);
}

TEST(TimeSeriesTest, CounterRateClampsAtZeroOnRegression)
{
    // Counters are monotone per source; a decreasing series (e.g. a
    // restarted shard) must clamp to 0 instead of going negative.
    TimeSeriesRecorder recorder;
    recorder.Record(0.0, CountersSnapshot({{"jobs", 100}}));
    recorder.Record(1.0, CountersSnapshot({{"jobs", 40}}));
    EXPECT_DOUBLE_EQ(recorder.WindowedRate("jobs", 10.0), 0.0);
}

// --------------------------------------------------------------------------
// Serialization round trips through the strict parser.

TEST(TimeSeriesTest, SeriesSamplesJsonRoundTrip)
{
    TimeSeriesRecorder recorder;
    MetricsRegistry registry;
    registry.counter("solver.queries")->Add(3);
    registry.gauge("corpus.size")->Set(17);
    registry.histogram("solver.solve_seconds")->RecordNanos(250'000);
    recorder.Record(0.25, registry.Snapshot());
    registry.counter("solver.queries")->Add(4);
    recorder.Record(0.75, registry.Snapshot());
    const std::vector<SeriesSample> original = recorder.Retained();

    JsonWriter json;
    WriteSeriesSamples(json, original);
    const std::string text = json.Take();
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(text, &parsed, &error)) << error;
    std::vector<SeriesSample> decoded;
    ASSERT_TRUE(DecodeSeriesSamples(parsed, &decoded, &error)) << error;
    JsonWriter again;
    WriteSeriesSamples(again, decoded);
    EXPECT_EQ(again.Take(), text);
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[1].index, 2u);
    EXPECT_DOUBLE_EQ(decoded[1].t_seconds, 0.75);
    EXPECT_EQ(decoded[1].metrics.CounterValue("solver.queries"), 7u);

    // A sample without its index is rejected — the index is what makes
    // cluster-side deduplication idempotent.
    JsonValue bogus;
    ASSERT_TRUE(
        ParseJson("[{\"t_seconds\":1.0,\"metrics\":{}}]", &bogus, &error))
        << error;
    std::vector<SeriesSample> ignored;
    EXPECT_FALSE(DecodeSeriesSamples(bogus, &ignored, &error));
}

TEST(TimeSeriesTest, NdjsonLineIsOneStrictJsonObject)
{
    ClusterSeries series;
    std::vector<SeriesSample> samples;
    for (int t = 0; t <= 4; ++t) {
        SeriesSample sample;
        sample.index = static_cast<uint64_t>(t + 1);
        sample.t_seconds = static_cast<double>(t);
        sample.metrics = CountersSnapshot(
            {{kFingerprintsNewCounter, static_cast<uint64_t>(20 * t)},
             {kJobsFinishedCounter, static_cast<uint64_t>(2 * t)}});
        samples.push_back(std::move(sample));
    }
    ASSERT_EQ(series.Update("shard0", samples), samples.size());

    const std::string line = RenderSeriesSampleNdjson(
        series, "shard0", samples.back(), /*window_seconds=*/2.0);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1)
        << "one NDJSON record must be exactly one line";
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(line, &parsed, &error)) << error;
    std::string source;
    EXPECT_TRUE(parsed.GetString("source", &source));
    EXPECT_EQ(source, "shard0");
    uint64_t index = 0;
    EXPECT_TRUE(parsed.GetUint64("index", &index));
    EXPECT_EQ(index, 5u);
    double rate = 0.0;
    EXPECT_TRUE(parsed.GetDouble("jobs_per_second", &rate));
    EXPECT_DOUBLE_EQ(rate, 2.0);
    EXPECT_TRUE(parsed.GetDouble("fingerprints_per_second", &rate));
    EXPECT_DOUBLE_EQ(rate, 20.0);
    const JsonValue* cluster = parsed.Find("cluster");
    ASSERT_NE(cluster, nullptr);
    uint64_t total = 0;
    EXPECT_TRUE(cluster->GetUint64("fingerprints_total", &total));
    EXPECT_EQ(total, 80u);
}

// --------------------------------------------------------------------------
// ClusterSeries: merge semantics.

TEST(TimeSeriesTest, ClusterMergeIsOrderIndependentAndIdempotent)
{
    std::vector<SeriesSample> a, b;
    for (int t = 0; t < 6; ++t) {
        SeriesSample sample;
        sample.index = static_cast<uint64_t>(t + 1);
        sample.t_seconds = static_cast<double>(t);
        sample.metrics =
            CountersSnapshot({{"c", static_cast<uint64_t>(10 * t)}});
        a.push_back(sample);
        sample.metrics =
            CountersSnapshot({{"c", static_cast<uint64_t>(3 * t)}});
        b.push_back(std::move(sample));
    }
    // One cluster sees A whole then B whole; the other sees B's tail,
    // then A, then B's head — chunked and out of source order.
    ClusterSeries forward, shuffled;
    EXPECT_EQ(forward.Update("sa", a), a.size());
    EXPECT_EQ(forward.Update("sb", b), b.size());
    EXPECT_EQ(shuffled.Update(
                  "sb", std::vector<SeriesSample>(b.begin() + 3, b.end())),
              3u);
    EXPECT_EQ(shuffled.Update("sa", a), a.size());
    EXPECT_EQ(shuffled.Update(
                  "sb", std::vector<SeriesSample>(b.begin(), b.begin() + 4)),
              3u);  // Indices 1..3 are new; 4 deduplicates.
    EXPECT_EQ(forward.total_samples(), shuffled.total_samples());
    EXPECT_EQ(forward.MergedCounterCurve("c"),
              shuffled.MergedCounterCurve("c"));
    EXPECT_EQ(RenderClusterSeriesJson(forward),
              RenderClusterSeriesJson(shuffled));

    // Re-delivering everything is a no-op (gossip may duplicate).
    EXPECT_EQ(forward.Update("sa", a), 0u);
    EXPECT_EQ(forward.Update("sb", b), 0u);
    EXPECT_EQ(forward.total_samples(), 2 * a.size());

    // The merged curve is the sum of per-source last-at-or-before
    // values: both sources step together here, so the curve is
    // 13*t at each union time, and monotone.
    const auto curve = forward.MergedCounterCurve("c");
    ASSERT_EQ(curve.size(), 6u);
    for (size_t i = 0; i < curve.size(); ++i) {
        EXPECT_DOUBLE_EQ(curve[i].first, static_cast<double>(i));
        EXPECT_EQ(curve[i].second, 13 * i);
    }
    // MergedLatest folds the newest snapshot per source.
    EXPECT_EQ(forward.MergedLatest().CounterValue("c"), 50u + 15u);
}

// --------------------------------------------------------------------------
// End-to-end: 2-shard loopback batch with live telemetry. The merged
// fingerprint curve must be monotone and everywhere equal to the sum of
// the per-shard curves, and the coverage CSV must be derivable.

TEST(TimeSeriesTest, LoopbackShardsMergedCurveIsSumOfShardCurves)
{
    std::vector<chef::service::JobSpec> jobs;
    int copy = 0;
    for (const char* workload :
         {"py/argparse", "py/simplejson", "lua/cliargs", "py/argparse"}) {
        chef::service::JobSpec spec;
        spec.workload = workload;
        spec.label = std::string(workload) + "#" + std::to_string(copy);
        spec.seed = static_cast<uint64_t>(++copy);
        spec.options.max_runs = 8;
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }

    shard::ShardCoordinator::Options options;
    options.service.seed = 11;
    options.service.metrics_interval_seconds = 0.005;
    shard::ShardCoordinator coordinator(options);
    std::string error;
    ASSERT_TRUE(shard::RunLoopbackShards(&coordinator, jobs, 2, &error))
        << error;

    const ClusterSeries& series = coordinator.cluster_series();
    const std::vector<std::string> sources = series.Sources();
    ASSERT_EQ(sources.size(), 2u) << "both shards must report series";
    // Every shard contributes at least its final RunBatch sample, and
    // each series carries the shard's full counter state.
    uint64_t final_sum = 0;
    for (const std::string& source : sources) {
        const std::vector<SeriesSample>* shard = series.SeriesFor(source);
        ASSERT_NE(shard, nullptr);
        ASSERT_FALSE(shard->empty());
        final_sum +=
            shard->back().metrics.CounterValue(kFingerprintsNewCounter);
    }
    EXPECT_GT(final_sum, 0u);

    const auto curve = series.MergedCounterCurve(kFingerprintsNewCounter);
    ASSERT_FALSE(curve.empty());
    uint64_t previous = 0;
    for (const auto& [t, value] : curve) {
        EXPECT_GE(value, previous) << "merged curve must be monotone";
        previous = value;
        // Re-derive the sum-of-shards definition independently: each
        // source contributes its last value at-or-before t.
        uint64_t expected = 0;
        for (const std::string& source : sources) {
            const std::vector<SeriesSample>* shard =
                series.SeriesFor(source);
            uint64_t last = 0;
            for (const SeriesSample& sample : *shard) {
                if (sample.t_seconds > t) {
                    break;
                }
                last = sample.metrics.CounterValue(kFingerprintsNewCounter);
            }
            expected += last;
        }
        EXPECT_EQ(value, expected);
    }
    // The curve ends at the cluster total, which must agree with the
    // merged telemetry snapshot's counter.
    EXPECT_EQ(curve.back().second, final_sum);
    EXPECT_EQ(series.MergedLatest().CounterValue(kFingerprintsNewCounter),
              final_sum);

    // The Figure-9 CSV renders from the same series: header plus one
    // "__all__" row per merged-curve point, final row at the total.
    const std::string csv = RenderCoverageCurvesCsv(series);
    EXPECT_EQ(csv.rfind("workload,t_seconds,jobs_finished,new_fingerprints",
                        0),
              0u);
    EXPECT_NE(csv.find("__all__"), std::string::npos);
}

}  // namespace
}  // namespace chef::obs
