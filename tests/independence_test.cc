/// \file
/// Tests for constraint-independence slicing: variable collection across
/// every node kind that nests operands, transitive slice merging, the
/// solver integration (per-slice caching, UpperBound), and outcome
/// equivalence between the sliced and unsliced pipelines.

#include "solver/independence.h"

#include <gtest/gtest.h>

#include "solver/solver.h"
#include "support/rng.h"

namespace chef::solver {
namespace {

// ---------------------------------------------------------------------------
// Variable collection.
// ---------------------------------------------------------------------------

TEST(CollectVarIds, WalksIteConditionAndBothArms)
{
    const ExprRef c = MakeVar(1, "c", 1);
    const ExprRef t = MakeVar(2, "t", 8);
    const ExprRef e = MakeVar(3, "e", 8);
    std::vector<uint32_t> ids;
    CollectVarIds(MakeIte(c, t, e), &ids);
    EXPECT_EQ(ids.size(), 3u);
    EXPECT_NE(std::find(ids.begin(), ids.end(), 1u), ids.end());
    EXPECT_NE(std::find(ids.begin(), ids.end(), 2u), ids.end());
    EXPECT_NE(std::find(ids.begin(), ids.end(), 3u), ids.end());
}

TEST(CollectVarIds, WalksConcatHalvesAndExtractOperand)
{
    const ExprRef high = MakeVar(7, "high", 8);
    const ExprRef low = MakeVar(9, "low", 8);
    std::vector<uint32_t> ids;
    CollectVarIds(MakeExtract(MakeConcat(high, low), 4, 8), &ids);
    EXPECT_EQ(ids.size(), 2u);
    EXPECT_NE(std::find(ids.begin(), ids.end(), 7u), ids.end());
    EXPECT_NE(std::find(ids.begin(), ids.end(), 9u), ids.end());
}

TEST(CollectVarIds, WalksSignAndZeroExtension)
{
    const ExprRef x = MakeVar(3, "x", 8);
    const ExprRef y = MakeVar(4, "y", 8);
    std::vector<uint32_t> ids;
    CollectVarIds(MakeUlt(MakeSExt(x, 16), MakeZExt(y, 16)), &ids);
    EXPECT_EQ(ids.size(), 2u);
}

TEST(CollectVarIds, DeduplicatesAgainstExistingEntries)
{
    const ExprRef x = MakeVar(5, "x", 8);
    std::vector<uint32_t> ids = {5};
    CollectVarIds(MakeEq(x, MakeConst(1, 8)), &ids);
    EXPECT_EQ(ids.size(), 1u);
    // A shared node referenced twice counts once.
    CollectVarIds(MakeEq(MakeAdd(x, x), MakeConst(2, 8)), &ids);
    EXPECT_EQ(ids.size(), 1u);
}

// ---------------------------------------------------------------------------
// Partitioning.
// ---------------------------------------------------------------------------

ExprRef
ByteEq(uint32_t id, uint64_t value)
{
    return MakeEq(MakeVar(id, "b" + std::to_string(id), 8),
                  MakeConst(value, 8));
}

TEST(PartitionIndependent, DisjointAssertionsEachFormASlice)
{
    const std::vector<ExprRef> assertions = {ByteEq(1, 10), ByteEq(2, 20),
                                             ByteEq(3, 30)};
    const auto slices = PartitionIndependent(assertions);
    ASSERT_EQ(slices.size(), 3u);
    // Ordered by first occurrence; each constrains exactly its variable.
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(slices[i].assertions.size(), 1u);
        ASSERT_EQ(slices[i].var_ids.size(), 1u);
        EXPECT_EQ(slices[i].var_ids[0], static_cast<uint32_t>(i + 1));
    }
}

TEST(PartitionIndependent, SharedVariableMergesTransitively)
{
    const ExprRef x = MakeVar(1, "x", 8);
    const ExprRef y = MakeVar(2, "y", 8);
    const ExprRef z = MakeVar(3, "z", 8);
    // {x,y} and {y,z} chain into one slice even though x and z never
    // appear together; the unrelated {w} stays separate.
    const std::vector<ExprRef> assertions = {
        MakeEq(MakeAdd(x, y), MakeConst(5, 8)),
        MakeUlt(y, z),
        ByteEq(9, 1),
    };
    const auto slices = PartitionIndependent(assertions);
    ASSERT_EQ(slices.size(), 2u);
    EXPECT_EQ(slices[0].assertions.size(), 2u);
    EXPECT_EQ(slices[0].var_ids, (std::vector<uint32_t>{1, 2, 3}));
    EXPECT_EQ(slices[1].assertions.size(), 1u);
    EXPECT_EQ(slices[1].var_ids, (std::vector<uint32_t>{9}));
}

TEST(PartitionIndependent, LaterAssertionCanBridgeEarlierSlices)
{
    const ExprRef x = MakeVar(1, "x", 8);
    const ExprRef y = MakeVar(2, "y", 8);
    // {x} and {y} look independent until the third assertion links them.
    const std::vector<ExprRef> assertions = {
        MakeUlt(x, MakeConst(50, 8)),
        MakeUlt(y, MakeConst(50, 8)),
        MakeEq(MakeAdd(x, y), MakeConst(60, 8)),
    };
    const auto slices = PartitionIndependent(assertions);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0].assertions.size(), 3u);
    // Original relative order is preserved inside the slice.
    EXPECT_TRUE(Expr::Equal(slices[0].assertions[0], assertions[0]));
    EXPECT_TRUE(Expr::Equal(slices[0].assertions[2], assertions[2]));
}

TEST(PartitionIndependent, VariableFreeAssertionFormsOwnSlice)
{
    // The solver's constant folder removes literal constants before
    // partitioning, but the partition itself must stay sound for any
    // variable-free shape it is handed.
    const std::vector<ExprRef> assertions = {MakeBool(true), ByteEq(1, 2)};
    const auto slices = PartitionIndependent(assertions);
    ASSERT_EQ(slices.size(), 2u);
    EXPECT_TRUE(slices[0].var_ids.empty());
}

// ---------------------------------------------------------------------------
// Solver integration.
// ---------------------------------------------------------------------------

TEST(SlicedSolver, PrefixSlicesAnswerFromCacheAcrossQueries)
{
    Solver solver;
    // Query 1 proves {b1==11}; query 2 = {b1==11, b2==22} must only pay a
    // SAT call for the new slice.
    ASSERT_EQ(solver.Solve({ByteEq(1, 11)}, nullptr), QueryResult::kSat);
    const uint64_t sat_calls = solver.stats().sat_calls;
    Assignment model;
    ASSERT_EQ(solver.Solve({ByteEq(1, 11), ByteEq(2, 22)}, &model),
              QueryResult::kSat);
    EXPECT_EQ(solver.stats().sat_calls, sat_calls + 1);
    EXPECT_GE(solver.stats().cache_hits, 1u);
    EXPECT_EQ(solver.stats().sliced_queries, 1u);
    // The merged model assigns both slices' variables explicitly.
    EXPECT_EQ(model.Get(1), 11u);
    EXPECT_EQ(model.Get(2), 22u);
    EXPECT_TRUE(model.Has(1));
    EXPECT_TRUE(model.Has(2));
}

TEST(SlicedSolver, UnsatSliceDecidesTheWholeQuery)
{
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 8);
    const std::vector<ExprRef> query = {
        ByteEq(2, 7),
        MakeUlt(x, MakeConst(5, 8)),
        MakeUgt(x, MakeConst(10, 8)),
    };
    EXPECT_EQ(solver.Solve(query, nullptr), QueryResult::kUnsat);
    EXPECT_EQ(solver.stats().sliced_queries, 1u);
}

TEST(SlicedSolver, SlicingShrinksCacheKeys)
{
    // With slicing, {a} and {a, b} share the per-slice entry for {a}; the
    // unsliced pipeline caches the two queries under unrelated keys.
    Solver::Options sliced_options;
    sliced_options.enable_independence_slicing = true;
    Solver sliced(sliced_options);
    ASSERT_EQ(sliced.Solve({ByteEq(1, 1)}, nullptr), QueryResult::kSat);
    ASSERT_EQ(sliced.Solve({ByteEq(1, 1), ByteEq(2, 2)}, nullptr),
              QueryResult::kSat);
    EXPECT_GE(sliced.stats().cache_hits, 1u);

    Solver::Options unsliced_options;
    unsliced_options.enable_independence_slicing = false;
    Solver unsliced(unsliced_options);
    ASSERT_EQ(unsliced.Solve({ByteEq(1, 1)}, nullptr), QueryResult::kSat);
    ASSERT_EQ(unsliced.Solve({ByteEq(1, 1), ByteEq(2, 2)}, nullptr),
              QueryResult::kSat);
    EXPECT_EQ(unsliced.stats().cache_hits, 0u);
}

TEST(SlicedSolver, UpperBoundUnaffectedByIndependentClutter)
{
    // The binary search augments the query with constraints on `value`;
    // the unrelated byte constraint lives in its own slice and must not
    // perturb the bound.
    Solver solver;
    const ExprRef x = MakeVar(1, "x", 8);
    uint64_t bound = 0;
    ASSERT_TRUE(solver.UpperBound(
        {MakeUlt(x, MakeConst(57, 8)), ByteEq(2, 3)}, x, &bound));
    EXPECT_EQ(bound, 56u);
    EXPECT_GT(solver.stats().sliced_queries, 0u);

    // Repeating the search answers every probe from the cache.
    const uint64_t sat_calls = solver.stats().sat_calls;
    ASSERT_TRUE(solver.UpperBound(
        {MakeUlt(x, MakeConst(57, 8)), ByteEq(2, 3)}, x, &bound));
    EXPECT_EQ(bound, 56u);
    EXPECT_EQ(solver.stats().sat_calls, sat_calls);
}

// ---------------------------------------------------------------------------
// Equivalence: sliced vs. unsliced outcomes on randomized queries.
// ---------------------------------------------------------------------------

/// Builds a random query mixing connected and independent assertions over
/// a small pool of 8-bit variables, with shapes (ite/concat/extract/ext)
/// the variable walk must handle.
std::vector<ExprRef>
RandomQuery(Rng& rng)
{
    std::vector<ExprRef> vars;
    for (uint32_t id = 1; id <= 6; ++id) {
        vars.push_back(MakeVar(id, "v" + std::to_string(id), 8));
    }
    std::vector<ExprRef> query;
    const int n = 2 + static_cast<int>(rng.NextBelow(5));
    for (int i = 0; i < n; ++i) {
        const ExprRef& a = vars[rng.NextBelow(vars.size())];
        const ExprRef& b = vars[rng.NextBelow(vars.size())];
        const uint64_t k = rng.NextBelow(256);
        ExprRef assertion;
        switch (rng.NextBelow(6)) {
          case 0:
            assertion = MakeEq(a, MakeConst(k, 8));
            break;
          case 1:
            assertion = MakeUlt(a, MakeConst(1 + k % 255, 8));
            break;
          case 2:
            assertion = MakeEq(MakeAdd(a, b), MakeConst(k, 8));
            break;
          case 3:
            assertion = MakeUlt(MakeExtract(MakeConcat(a, b), 4, 8),
                                MakeConst(1 + k % 255, 8));
            break;
          case 4:
            assertion = MakeSlt(MakeSExt(a, 16), MakeConst(k, 16));
            break;
          default:
            assertion = MakeEq(
                MakeIte(MakeUlt(a, MakeConst(128, 8)), a, b),
                MakeConst(k, 8));
            break;
        }
        query.push_back(assertion);
    }
    return query;
}

class SlicingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlicingEquivalence, AllOptionCombosAgreeOnOutcomes)
{
    Rng rng(GetParam());
    std::vector<std::vector<ExprRef>> queries;
    for (int i = 0; i < 30; ++i) {
        queries.push_back(RandomQuery(rng));
    }

    // Reference: everything off (fresh blast per query, no slicing).
    Solver::Options reference_options;
    reference_options.enable_independence_slicing = false;
    reference_options.enable_incremental_sat = false;
    Solver reference(reference_options);

    std::vector<Solver> variants;
    for (const bool slicing : {false, true}) {
        for (const bool incremental : {false, true}) {
            Solver::Options options;
            options.enable_independence_slicing = slicing;
            options.enable_incremental_sat = incremental;
            variants.emplace_back(options);
        }
    }

    for (const auto& query : queries) {
        Assignment reference_model;
        const QueryResult expected =
            reference.Solve(query, &reference_model);
        for (Solver& variant : variants) {
            Assignment model;
            const QueryResult got = variant.Solve(query, &model);
            EXPECT_EQ(got, expected);
            if (got == QueryResult::kSat) {
                for (const ExprRef& assertion : query) {
                    EXPECT_EQ(EvalConcrete(assertion, model), 1u)
                        << assertion->ToString();
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicingEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace chef::solver
