/// \file
/// Integration tests for the CHEF engine with synthetic instrumented
/// "interpreters" (C++ guest programs using the runtime API directly).
///
/// These check the core soundness and completeness invariants from
/// DESIGN.md before any real interpreter is involved.

#include <gtest/gtest.h>

#include <set>

#include "chef/engine.h"

namespace chef {
namespace {

using lowlevel::LowLevelRuntime;
using lowlevel::PathStatus;
using lowlevel::SymValue;

enum Opcode : uint32_t { kOpStmt = 1, kOpCmp = 2, kOpJump = 3 };

/// A guest with three independent byte branches: 8 feasible paths.
Engine::GuestOutcome
ThreeBranchGuest(LowLevelRuntime& rt)
{
    SymValue a = rt.MakeSymbolicValue("a", 8, 0);
    SymValue b = rt.MakeSymbolicValue("b", 8, 0);
    SymValue c = rt.MakeSymbolicValue("c", 8, 0);
    uint64_t hlpc = 1;
    int sum = 0;
    for (const SymValue* byte : {&a, &b, &c}) {
        rt.LogPc(hlpc++, kOpCmp);
        if (rt.Branch(SvUgt(*byte, SymValue(100, 8)), CHEF_LLPC)) {
            sum += 1;
        }
        rt.LogPc(hlpc++, kOpJump);
    }
    rt.LogPc(hlpc + static_cast<uint64_t>(sum), kOpStmt);
    return {};
}

TEST(Engine, EnumeratesAllPathsAndStops)
{
    Engine::Options options;
    options.max_runs = 100;
    options.strategy = StrategyKind::kCupaPath;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(ThreeBranchGuest);
    EXPECT_EQ(engine.stats().ll_paths, 8u);
    EXPECT_EQ(tests.size(), 8u);
    // All 8 input combinations are distinct in their branch pattern.
    std::set<std::vector<bool>> patterns;
    for (const TestCase& test : tests) {
        std::vector<bool> pattern;
        for (uint32_t var = 1; var <= 3; ++var) {
            pattern.push_back(test.inputs.Get(var) > 100);
        }
        patterns.insert(pattern);
    }
    EXPECT_EQ(patterns.size(), 8u);
}

TEST(Engine, EveryStrategyEnumeratesTheSamePathSet)
{
    for (const StrategyKind kind :
         {StrategyKind::kRandom, StrategyKind::kDfs, StrategyKind::kBfs,
          StrategyKind::kCupaPath, StrategyKind::kCupaCoverage,
          StrategyKind::kCupaPathInverted}) {
        Engine::Options options;
        options.max_runs = 100;
        options.strategy = kind;
        Engine engine(options);
        engine.Explore(ThreeBranchGuest);
        EXPECT_EQ(engine.stats().ll_paths, 8u)
            << "strategy " << StrategyKindName(kind);
    }
}

/// Soundness: replaying each generated test case concretely follows
/// exactly the predicted branch pattern.
TEST(Engine, TestCasesReplayDeterministically)
{
    Engine::Options options;
    options.max_runs = 100;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(ThreeBranchGuest);
    ASSERT_EQ(tests.size(), 8u);
    for (const TestCase& test : tests) {
        // Replay without any engine: pure concrete execution.
        int expected_sum = 0;
        for (uint32_t var = 1; var <= 3; ++var) {
            if (test.inputs.Get(var) > 100) {
                ++expected_sum;
            }
        }
        // The final LogPc hlpc encodes the sum; HL length is 7 for every
        // path (3 cmp + 3 jump + 1 final).
        EXPECT_EQ(test.hl_length, 7u);
        (void)expected_sum;
    }
}

/// A guest whose single high-level statement forks many low-level states
/// (the paper's string-find pattern): HL paths << LL paths.
Engine::GuestOutcome
FindLikeGuest(LowLevelRuntime& rt)
{
    SymValue bytes[6];
    for (int i = 0; i < 6; ++i) {
        bytes[i] = rt.MakeSymbolicValue("s" + std::to_string(i), 8, 'a');
    }
    rt.LogPc(1, kOpStmt);  // "pos = s.find('@')"
    int pos = -1;
    const uint64_t loop_llpc = 4242;
    for (int i = 0; i < 6; ++i) {
        if (rt.Branch(SvEq(bytes[i], SymValue('@', 8)), loop_llpc)) {
            pos = i;
            break;
        }
    }
    rt.LogPc(2, kOpCmp);  // "if pos < 3"
    if (rt.Branch(SymValue(pos >= 0 && pos < 3 ? 1 : 0, 1), CHEF_LLPC)) {
        rt.LogPc(3, kOpStmt);  // raise branch
    } else {
        rt.LogPc(4, kOpStmt);
    }
    return {};
}

TEST(Engine, HighLevelPathsFewerThanLowLevelPaths)
{
    Engine::Options options;
    options.max_runs = 100;
    Engine engine(options);
    engine.Explore(FindLikeGuest);
    // 7 low-level outcomes of find (position 0..5 or not found); the
    // "if pos < 3" comparison is concrete once find resolved, so LL paths
    // = 7; HL paths: found-early (raise) vs found-late/not-found = 2
    // distinct HL paths... but HLPC traces also differ in length? No:
    // the find loop is one HL statement regardless of iterations.
    EXPECT_EQ(engine.stats().ll_paths, 7u);
    EXPECT_EQ(engine.stats().hl_paths, 2u);
    EXPECT_LT(engine.stats().hl_paths, engine.stats().ll_paths);
}

/// Hang detection: a symbolic branch guards an infinite loop.
Engine::GuestOutcome
MaybeHangGuest(LowLevelRuntime& rt)
{
    SymValue x = rt.MakeSymbolicValue("x", 8, 0);
    rt.LogPc(1, kOpCmp);
    if (rt.Branch(SvEq(x, SymValue(77, 8)), CHEF_LLPC)) {
        // Infinite loop, bounded by the step budget.
        while (rt.CountStep()) {
        }
        return {"hang", "loop"};
    }
    rt.LogPc(2, kOpStmt);
    return {};
}

TEST(Engine, DetectsHangs)
{
    Engine::Options options;
    options.max_runs = 10;
    options.max_steps_per_run = 10'000;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(MaybeHangGuest);
    EXPECT_EQ(engine.stats().hangs, 1u);
    bool hang_case_found = false;
    for (const TestCase& test : tests) {
        if (test.outcome_kind == "hang") {
            hang_case_found = true;
            EXPECT_EQ(test.inputs.Get(1), 77u);
        }
    }
    EXPECT_TRUE(hang_case_found);
}

/// Assume: all generated inputs satisfy the assumption.
Engine::GuestOutcome
AssumeGuest(LowLevelRuntime& rt)
{
    SymValue x = rt.MakeSymbolicValue("x", 8, 150);
    rt.Assume(SvUgt(x, SymValue(100, 8)));
    rt.LogPc(1, kOpCmp);
    if (rt.Branch(SvUlt(x, SymValue(180, 8)), CHEF_LLPC)) {
        rt.LogPc(2, kOpStmt);
    } else {
        rt.LogPc(3, kOpStmt);
    }
    return {};
}

TEST(Engine, AssumeConstrainsAllTestCases)
{
    Engine::Options options;
    options.max_runs = 20;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(AssumeGuest);
    EXPECT_EQ(engine.stats().ll_paths, 2u);
    for (const TestCase& test : tests) {
        EXPECT_GT(test.inputs.Get(1), 100u);
    }
}

/// Assume with a violating default: the engine re-solves and recovers.
Engine::GuestOutcome
AssumeViolatedByDefaultGuest(LowLevelRuntime& rt)
{
    SymValue x = rt.MakeSymbolicValue("x", 8, 0);  // Default violates.
    rt.Assume(SvUgt(x, SymValue(100, 8)));
    rt.LogPc(1, kOpStmt);
    return {};
}

TEST(Engine, RecoversFromViolatedAssumption)
{
    Engine::Options options;
    options.max_runs = 20;
    Engine engine(options);
    const std::vector<TestCase> tests =
        engine.Explore(AssumeViolatedByDefaultGuest);
    EXPECT_GE(engine.stats().assume_retries, 1u);
    ASSERT_EQ(tests.size(), 1u);
    EXPECT_GT(tests[0].inputs.Get(1), 100u);
}

/// Infeasible alternate states are pruned without being executed.
Engine::GuestOutcome
InfeasibleAlternateGuest(LowLevelRuntime& rt)
{
    SymValue x = rt.MakeSymbolicValue("x", 8, 0);
    rt.LogPc(1, kOpCmp);
    // First branch: x < 10 concretely true with default 0.
    if (rt.Branch(SvUlt(x, SymValue(10, 8)), CHEF_LLPC)) {
        rt.LogPc(2, kOpCmp);
        // Second branch: x > 200 is infeasible given x < 10.
        if (rt.Branch(SvUgt(x, SymValue(200, 8)), CHEF_LLPC)) {
            rt.LogPc(3, kOpStmt);
        } else {
            rt.LogPc(4, kOpStmt);
        }
    } else {
        rt.LogPc(5, kOpStmt);
    }
    return {};
}

TEST(Engine, PrunesInfeasibleStates)
{
    Engine::Options options;
    options.max_runs = 20;
    Engine engine(options);
    engine.Explore(InfeasibleAlternateGuest);
    // Feasible paths: (x<10, !x>200) and (!x<10). The alternate
    // (x<10, x>200) must be proven infeasible, not executed.
    EXPECT_EQ(engine.stats().ll_paths, 2u);
    EXPECT_EQ(engine.stats().infeasible_states, 1u);
}

TEST(Engine, RespectsRunBudget)
{
    Engine::Options options;
    options.max_runs = 3;
    Engine engine(options);
    engine.Explore(ThreeBranchGuest);
    EXPECT_EQ(engine.stats().ll_paths, 3u);
}

TEST(Engine, TimelineIsMonotonic)
{
    Engine::Options options;
    options.max_runs = 50;
    Engine engine(options);
    engine.Explore(ThreeBranchGuest);
    const auto& timeline = engine.stats().timeline;
    ASSERT_FALSE(timeline.empty());
    for (size_t i = 1; i < timeline.size(); ++i) {
        EXPECT_GE(timeline[i].ll_paths, timeline[i - 1].ll_paths);
        EXPECT_GE(timeline[i].hl_paths, timeline[i - 1].hl_paths);
    }
    EXPECT_EQ(timeline.back().ll_paths, engine.stats().ll_paths);
}

/// Determinism: same seed, same exploration.
TEST(Engine, DeterministicUnderSeed)
{
    auto run_once = [](uint64_t seed) {
        Engine::Options options;
        options.max_runs = 100;
        options.seed = seed;
        options.collect_timeline = false;
        Engine engine(options);
        std::vector<uint64_t> inputs_flat;
        for (const TestCase& test : engine.Explore(ThreeBranchGuest)) {
            for (uint32_t var = 1; var <= 3; ++var) {
                inputs_flat.push_back(test.inputs.Get(var));
            }
        }
        return inputs_flat;
    };
    EXPECT_EQ(run_once(42), run_once(42));
}

}  // namespace
}  // namespace chef
