/// \file
/// Integration tests for the CHEF engine with synthetic instrumented
/// "interpreters" (C++ guest programs using the runtime API directly).
///
/// These check the core soundness and completeness invariants from
/// DESIGN.md before any real interpreter is involved.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "chef/engine.h"
#include "support/strings.h"

namespace chef {
namespace {

using lowlevel::LowLevelRuntime;
using lowlevel::PathStatus;
using lowlevel::SymValue;

enum Opcode : uint32_t { kOpStmt = 1, kOpCmp = 2, kOpJump = 3 };

/// A guest with three independent byte branches: 8 feasible paths.
Engine::GuestOutcome
ThreeBranchGuest(LowLevelRuntime& rt)
{
    SymValue a = rt.MakeSymbolicValue("a", 8, 0);
    SymValue b = rt.MakeSymbolicValue("b", 8, 0);
    SymValue c = rt.MakeSymbolicValue("c", 8, 0);
    uint64_t hlpc = 1;
    int sum = 0;
    for (const SymValue* byte : {&a, &b, &c}) {
        rt.LogPc(hlpc++, kOpCmp);
        if (rt.Branch(SvUgt(*byte, SymValue(100, 8)), CHEF_LLPC)) {
            sum += 1;
        }
        rt.LogPc(hlpc++, kOpJump);
    }
    rt.LogPc(hlpc + static_cast<uint64_t>(sum), kOpStmt);
    return {};
}

TEST(Engine, EnumeratesAllPathsAndStops)
{
    Engine::Options options;
    options.max_runs = 100;
    options.strategy = StrategyKind::kCupaPath;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(ThreeBranchGuest);
    EXPECT_EQ(engine.stats().ll_paths, 8u);
    EXPECT_EQ(tests.size(), 8u);
    // All 8 input combinations are distinct in their branch pattern.
    std::set<std::vector<bool>> patterns;
    for (const TestCase& test : tests) {
        std::vector<bool> pattern;
        for (uint32_t var = 1; var <= 3; ++var) {
            pattern.push_back(test.inputs.Get(var) > 100);
        }
        patterns.insert(pattern);
    }
    EXPECT_EQ(patterns.size(), 8u);
}

TEST(Engine, EveryStrategyEnumeratesTheSamePathSet)
{
    for (const StrategyKind kind :
         {StrategyKind::kRandom, StrategyKind::kDfs, StrategyKind::kBfs,
          StrategyKind::kCupaPath, StrategyKind::kCupaCoverage,
          StrategyKind::kCupaPathInverted}) {
        Engine::Options options;
        options.max_runs = 100;
        options.strategy = kind;
        Engine engine(options);
        engine.Explore(ThreeBranchGuest);
        EXPECT_EQ(engine.stats().ll_paths, 8u)
            << "strategy " << StrategyKindName(kind);
    }
}

/// Soundness: replaying each generated test case concretely follows
/// exactly the predicted branch pattern.
TEST(Engine, TestCasesReplayDeterministically)
{
    Engine::Options options;
    options.max_runs = 100;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(ThreeBranchGuest);
    ASSERT_EQ(tests.size(), 8u);
    for (const TestCase& test : tests) {
        // Replay without any engine: pure concrete execution.
        int expected_sum = 0;
        for (uint32_t var = 1; var <= 3; ++var) {
            if (test.inputs.Get(var) > 100) {
                ++expected_sum;
            }
        }
        // The final LogPc hlpc encodes the sum; HL length is 7 for every
        // path (3 cmp + 3 jump + 1 final).
        EXPECT_EQ(test.hl_length, 7u);
        (void)expected_sum;
    }
}

/// A guest whose single high-level statement forks many low-level states
/// (the paper's string-find pattern): HL paths << LL paths.
Engine::GuestOutcome
FindLikeGuest(LowLevelRuntime& rt)
{
    SymValue bytes[6];
    for (int i = 0; i < 6; ++i) {
        bytes[i] = rt.MakeSymbolicValue("s" + std::to_string(i), 8, 'a');
    }
    rt.LogPc(1, kOpStmt);  // "pos = s.find('@')"
    int pos = -1;
    const uint64_t loop_llpc = 4242;
    for (int i = 0; i < 6; ++i) {
        if (rt.Branch(SvEq(bytes[i], SymValue('@', 8)), loop_llpc)) {
            pos = i;
            break;
        }
    }
    rt.LogPc(2, kOpCmp);  // "if pos < 3"
    if (rt.Branch(SymValue(pos >= 0 && pos < 3 ? 1 : 0, 1), CHEF_LLPC)) {
        rt.LogPc(3, kOpStmt);  // raise branch
    } else {
        rt.LogPc(4, kOpStmt);
    }
    return {};
}

TEST(Engine, HighLevelPathsFewerThanLowLevelPaths)
{
    Engine::Options options;
    options.max_runs = 100;
    Engine engine(options);
    engine.Explore(FindLikeGuest);
    // 7 low-level outcomes of find (position 0..5 or not found); the
    // "if pos < 3" comparison is concrete once find resolved, so LL paths
    // = 7; HL paths: found-early (raise) vs found-late/not-found = 2
    // distinct HL paths... but HLPC traces also differ in length? No:
    // the find loop is one HL statement regardless of iterations.
    EXPECT_EQ(engine.stats().ll_paths, 7u);
    EXPECT_EQ(engine.stats().hl_paths, 2u);
    EXPECT_LT(engine.stats().hl_paths, engine.stats().ll_paths);
}

/// Hang detection: a symbolic branch guards an infinite loop.
Engine::GuestOutcome
MaybeHangGuest(LowLevelRuntime& rt)
{
    SymValue x = rt.MakeSymbolicValue("x", 8, 0);
    rt.LogPc(1, kOpCmp);
    if (rt.Branch(SvEq(x, SymValue(77, 8)), CHEF_LLPC)) {
        // Infinite loop, bounded by the step budget.
        while (rt.CountStep()) {
        }
        return {"hang", "loop"};
    }
    rt.LogPc(2, kOpStmt);
    return {};
}

TEST(Engine, DetectsHangs)
{
    Engine::Options options;
    options.max_runs = 10;
    options.max_steps_per_run = 10'000;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(MaybeHangGuest);
    EXPECT_EQ(engine.stats().hangs, 1u);
    bool hang_case_found = false;
    for (const TestCase& test : tests) {
        if (test.outcome_kind == "hang") {
            hang_case_found = true;
            EXPECT_EQ(test.inputs.Get(1), 77u);
        }
    }
    EXPECT_TRUE(hang_case_found);
}

/// Assume: all generated inputs satisfy the assumption.
Engine::GuestOutcome
AssumeGuest(LowLevelRuntime& rt)
{
    SymValue x = rt.MakeSymbolicValue("x", 8, 150);
    rt.Assume(SvUgt(x, SymValue(100, 8)));
    rt.LogPc(1, kOpCmp);
    if (rt.Branch(SvUlt(x, SymValue(180, 8)), CHEF_LLPC)) {
        rt.LogPc(2, kOpStmt);
    } else {
        rt.LogPc(3, kOpStmt);
    }
    return {};
}

TEST(Engine, AssumeConstrainsAllTestCases)
{
    Engine::Options options;
    options.max_runs = 20;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(AssumeGuest);
    EXPECT_EQ(engine.stats().ll_paths, 2u);
    for (const TestCase& test : tests) {
        EXPECT_GT(test.inputs.Get(1), 100u);
    }
}

/// Assume with a violating default: the engine re-solves and recovers.
Engine::GuestOutcome
AssumeViolatedByDefaultGuest(LowLevelRuntime& rt)
{
    SymValue x = rt.MakeSymbolicValue("x", 8, 0);  // Default violates.
    rt.Assume(SvUgt(x, SymValue(100, 8)));
    rt.LogPc(1, kOpStmt);
    return {};
}

TEST(Engine, RecoversFromViolatedAssumption)
{
    Engine::Options options;
    options.max_runs = 20;
    Engine engine(options);
    const std::vector<TestCase> tests =
        engine.Explore(AssumeViolatedByDefaultGuest);
    EXPECT_GE(engine.stats().assume_retries, 1u);
    ASSERT_EQ(tests.size(), 1u);
    EXPECT_GT(tests[0].inputs.Get(1), 100u);
}

/// Infeasible alternate states are pruned without being executed.
Engine::GuestOutcome
InfeasibleAlternateGuest(LowLevelRuntime& rt)
{
    SymValue x = rt.MakeSymbolicValue("x", 8, 0);
    rt.LogPc(1, kOpCmp);
    // First branch: x < 10 concretely true with default 0.
    if (rt.Branch(SvUlt(x, SymValue(10, 8)), CHEF_LLPC)) {
        rt.LogPc(2, kOpCmp);
        // Second branch: x > 200 is infeasible given x < 10.
        if (rt.Branch(SvUgt(x, SymValue(200, 8)), CHEF_LLPC)) {
            rt.LogPc(3, kOpStmt);
        } else {
            rt.LogPc(4, kOpStmt);
        }
    } else {
        rt.LogPc(5, kOpStmt);
    }
    return {};
}

TEST(Engine, PrunesInfeasibleStates)
{
    Engine::Options options;
    options.max_runs = 20;
    Engine engine(options);
    engine.Explore(InfeasibleAlternateGuest);
    // Feasible paths: (x<10, !x>200) and (!x<10). The alternate
    // (x<10, x>200) must be proven infeasible, not executed.
    EXPECT_EQ(engine.stats().ll_paths, 2u);
    EXPECT_EQ(engine.stats().infeasible_states, 1u);
}

TEST(Engine, RespectsRunBudget)
{
    Engine::Options options;
    options.max_runs = 3;
    Engine engine(options);
    engine.Explore(ThreeBranchGuest);
    EXPECT_EQ(engine.stats().ll_paths, 3u);
}

TEST(Engine, TimelineIsMonotonic)
{
    Engine::Options options;
    options.max_runs = 50;
    Engine engine(options);
    engine.Explore(ThreeBranchGuest);
    const auto& timeline = engine.stats().timeline;
    ASSERT_FALSE(timeline.empty());
    for (size_t i = 1; i < timeline.size(); ++i) {
        EXPECT_GE(timeline[i].ll_paths, timeline[i - 1].ll_paths);
        EXPECT_GE(timeline[i].hl_paths, timeline[i - 1].hl_paths);
    }
    EXPECT_EQ(timeline.back().ll_paths, engine.stats().ll_paths);
}

/// Determinism: same seed, same exploration.
TEST(Engine, DeterministicUnderSeed)
{
    auto run_once = [](uint64_t seed) {
        Engine::Options options;
        options.max_runs = 100;
        options.seed = seed;
        options.collect_timeline = false;
        Engine engine(options);
        std::vector<uint64_t> inputs_flat;
        for (const TestCase& test : engine.Explore(ThreeBranchGuest)) {
            for (uint32_t var = 1; var <= 3; ++var) {
                inputs_flat.push_back(test.inputs.Get(var));
            }
        }
        return inputs_flat;
    };
    EXPECT_EQ(run_once(42), run_once(42));
}


// ---------------------------------------------------------------------------
// Parallel exploration: determinism contract + wind-down behavior.
// ---------------------------------------------------------------------------

/// Golden guest for the bit-identity regression: a mix of branch streaks at
/// one site, an assume-retry path, and input-dependent control flow.
/// Literal LLPCs (not CHEF_LLPC) so the digest is independent of this
/// file's path and line numbers.
Engine::GuestOutcome
GoldenGuest(LowLevelRuntime& rt)
{
    SymValue a = rt.MakeSymbolicValue("a", 8, 10);
    SymValue b = rt.MakeSymbolicValue("b", 8, 200);
    SymValue c = rt.MakeSymbolicValue("c", 8, 3);
    rt.LogPc(1, 2);
    uint64_t acc = 0;
    for (int i = 0; i < 4; ++i) {
        rt.LogPc(10 + static_cast<uint64_t>(i), 3);
        if (rt.Branch(
                lowlevel::SvUlt(
                    lowlevel::SvAdd(a, SymValue(
                                           static_cast<uint64_t>(i) * 17, 8)),
                    b),
                7777)) {
            acc += 1;
            rt.LogPc(20 + static_cast<uint64_t>(i), 1);
        } else {
            rt.LogPc(30 + static_cast<uint64_t>(i), 1);
        }
    }
    rt.LogPc(50, 2);
    if (rt.Branch(lowlevel::SvEq(c, SymValue(acc & 0xff, 8)), 8888)) {
        rt.LogPc(51, 1);
        rt.Assume(lowlevel::SvUgt(a, SymValue(2, 8)));
        rt.LogPc(52, 1);
    } else {
        rt.LogPc(53, 1);
    }
    rt.LogPc(60, 2);
    if (rt.Branch(lowlevel::SvUlt(lowlevel::SvXor(a, c), b), 9999)) {
        rt.LogPc(61, 1);
    } else {
        rt.LogPc(62, 1);
    }
    return {};
}

/// Digests everything the determinism contract pins: per-test HL
/// fingerprints, statuses, lengths and complete inputs, plus the
/// exploration-shape stats. Timeline and wall-clock stats are excluded.
uint64_t
SessionDigest(StrategyKind strategy, uint64_t seed, uint32_t threads,
              bool free_running = false)
{
    Engine::Options options;
    options.strategy = strategy;
    options.seed = seed;
    options.max_runs = 64;
    options.max_seconds = 60.0;
    options.collect_timeline = false;
    options.exploration_threads = threads;
    options.free_running = free_running;
    Engine engine(options);
    const std::vector<TestCase> tests = engine.Explore(GoldenGuest);
    uint64_t digest = 0xcbf29ce484222325ull;
    for (const TestCase& test : tests) {
        digest = HashCombine(digest, test.hl_path_fingerprint);
        digest = HashCombine(digest, static_cast<uint64_t>(test.status));
        digest = HashCombine(digest, test.hl_length);
        for (const auto& [var, value] : test.inputs.entries()) {
            digest = HashCombine(digest, var);
            digest = HashCombine(digest, value);
        }
    }
    const EngineStats& stats = engine.stats();
    digest = HashCombine(digest, stats.ll_paths);
    digest = HashCombine(digest, stats.hl_paths);
    digest = HashCombine(digest, stats.states_registered);
    digest = HashCombine(digest, stats.infeasible_states);
    digest = HashCombine(digest, stats.assume_retries);
    return digest;
}

// Golden digests captured from the pre-refactor serial engine (PR 8 tree).
// exploration_threads = 1 must keep reproducing these bit-for-bit.
TEST(EngineParallel, SerialPathBitIdenticalToPreRefactorEngine)
{
    const struct {
        StrategyKind strategy;
        uint64_t seed;
        uint64_t digest;
    } kGolden[] = {
        {StrategyKind::kRandom, 1ull, 0x068784a2759f82a0ull},
        {StrategyKind::kRandom, 42ull, 0xca2b00389b6274a4ull},
        {StrategyKind::kDfs, 1ull, 0x2f07e68b3918b941ull},
        {StrategyKind::kDfs, 42ull, 0x2f07e68b3918b941ull},
        {StrategyKind::kBfs, 1ull, 0x98643f5de6c71e91ull},
        {StrategyKind::kBfs, 42ull, 0x98643f5de6c71e91ull},
        {StrategyKind::kCupaPath, 1ull, 0x3f4f124163cce5deull},
        {StrategyKind::kCupaPath, 42ull, 0x2cbd7864cb409844ull},
        {StrategyKind::kCupaCoverage, 1ull, 0xcae8f67f9c61359bull},
        {StrategyKind::kCupaCoverage, 42ull, 0x726b7dae98c97713ull},
    };
    for (const auto& golden : kGolden) {
        EXPECT_EQ(SessionDigest(golden.strategy, golden.seed, 1),
                  golden.digest)
            << StrategyKindName(golden.strategy) << " seed " << golden.seed;
    }
}

// Deterministic round mode: the full digest (inputs, fingerprints, stats)
// is invariant in the number of exploration threads, for every strategy.
TEST(EngineParallel, RoundModeInvariantInThreadCount)
{
    const StrategyKind kinds[] = {
        StrategyKind::kRandom,
        StrategyKind::kDfs,
        StrategyKind::kBfs,
        StrategyKind::kCupaPath,
        StrategyKind::kCupaCoverage,
    };
    for (const StrategyKind kind : kinds) {
        const uint64_t two = SessionDigest(kind, 42, 2);
        const uint64_t three = SessionDigest(kind, 42, 3);
        const uint64_t four = SessionDigest(kind, 42, 4);
        EXPECT_EQ(two, three) << StrategyKindName(kind);
        EXPECT_EQ(two, four) << StrategyKindName(kind);
    }
}

// On an exhaustively explorable guest, round mode reaches exactly the
// serial engine's HL-path fingerprint set (the corpus-parity contract).
TEST(EngineParallel, RoundModeReachesSerialFingerprintSet)
{
    auto fingerprints = [](uint32_t threads) {
        Engine::Options options;
        options.max_runs = 100;
        options.strategy = StrategyKind::kCupaPath;
        options.exploration_threads = threads;
        Engine engine(options);
        std::set<uint64_t> set;
        for (const TestCase& test : engine.Explore(ThreeBranchGuest)) {
            set.insert(test.hl_path_fingerprint);
        }
        EXPECT_EQ(engine.stats().ll_paths, 8u);
        return set;
    };
    EXPECT_EQ(fingerprints(1), fingerprints(4));
}

// Free-running mode gives up ordering determinism but must still explore
// the same path set when the guest is exhaustible.
TEST(EngineParallel, FreeRunningReachesSerialFingerprintSet)
{
    Engine::Options options;
    options.max_runs = 100;
    options.strategy = StrategyKind::kCupaPath;
    options.exploration_threads = 4;
    options.free_running = true;
    Engine engine(options);
    std::set<uint64_t> parallel_set;
    for (const TestCase& test : engine.Explore(ThreeBranchGuest)) {
        parallel_set.insert(test.hl_path_fingerprint);
    }
    EXPECT_EQ(engine.stats().ll_paths, 8u);
    EXPECT_EQ(engine.stats().threads_used, 4u);

    Engine::Options serial_options;
    serial_options.max_runs = 100;
    serial_options.strategy = StrategyKind::kCupaPath;
    Engine serial_engine(serial_options);
    std::set<uint64_t> serial_set;
    for (const TestCase& test : serial_engine.Explore(ThreeBranchGuest)) {
        serial_set.insert(test.hl_path_fingerprint);
    }
    EXPECT_EQ(parallel_set, serial_set);
}

// Free-running assume-retry: the retry chain must keep the worker's work
// token so exhaustion is not declared while a retry is about to rerun.
TEST(EngineParallel, FreeRunningHandlesAssumeRetries)
{
    Engine::Options options;
    options.max_runs = 100;
    options.exploration_threads = 3;
    options.free_running = true;
    Engine engine(options);
    const std::vector<TestCase> tests =
        engine.Explore(AssumeViolatedByDefaultGuest);
    EXPECT_GE(engine.stats().assume_retries, 1u);
    ASSERT_EQ(tests.size(), 1u);
    EXPECT_GT(tests[0].inputs.Get(1), 100u);
    EXPECT_NE(tests[0].status, PathStatus::kAssumeViolated);
}

/// Guest with plenty of states whose runs take a measurable ~10ms each, so
/// a stop request provably lands mid-round.
Engine::GuestOutcome
SlowDeepGuest(LowLevelRuntime& rt)
{
    SymValue x = rt.MakeSymbolicValue("x", 8, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    uint64_t hlpc = 1;
    for (int i = 0; i < 6; ++i) {
        rt.LogPc(hlpc++, kOpCmp);
        rt.Branch(SvUgt(x, SymValue(static_cast<uint64_t>(i) * 20, 8)),
                  1000 + static_cast<uint64_t>(i));
    }
    rt.LogPc(hlpc, kOpStmt);
    return {};
}

// A stop request fired mid-round lets in-flight runs finish, skips queued
// ones, commits what completed, and returns promptly — it does not run the
// session anywhere near its budget.
TEST(EngineParallel, MidRoundStopWindsDownWorkersPromptly)
{
    std::atomic<uint64_t> runs_started{0};
    Engine::Options options;
    options.max_runs = 500;
    options.max_seconds = 60.0;
    options.exploration_threads = 4;
    options.round_width = 8;
    options.stop_requested = [&runs_started] {
        return runs_started.load() >= 3;
    };
    Engine engine(options);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<TestCase> tests =
        engine.Explore([&runs_started](LowLevelRuntime& rt) {
            runs_started.fetch_add(1);
            return SlowDeepGuest(rt);
        });
    const double took =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_TRUE(engine.stats().stopped);
    // Far below the 500-run / 60s budget: a handful of runs at most.
    EXPECT_LT(engine.stats().ll_paths, 50u);
    EXPECT_LT(took, 10.0);
    // Committed completed runs survive the stop.
    EXPECT_EQ(tests.size(), engine.stats().ll_paths);
}

}  // namespace
}  // namespace chef
