/// \file
/// Validation of the 11 evaluation packages: guests compile, behave
/// sensibly on concrete inputs, and are explorable symbolically. Includes
/// the headline §6.2 checks: the Lua JSON comment-hang bug is found, and
/// mini_xlrd's four undocumented exception types are reachable.

#include <gtest/gtest.h>

#include <set>

#include "workloads/packages.h"

namespace chef::workloads {
namespace {

TEST(Workloads, AllPythonPackagesCompile)
{
    for (const PyPackage& package : PyPackages()) {
        minipy::CompileResult compiled =
            minipy::Compile(package.test.source);
        EXPECT_TRUE(compiled.ok)
            << package.name << ": " << compiled.error << " at line "
            << compiled.error_line;
    }
    EXPECT_EQ(PyPackages().size(), 6u);
}

TEST(Workloads, AllLuaPackagesParse)
{
    for (const LuaPackage& package : LuaPackages()) {
        minilua::LuaParseResult parsed =
            minilua::LuaParse(package.test.source);
        EXPECT_TRUE(parsed.ok) << package.name << ": " << parsed.error
                               << " at line " << parsed.error_line;
    }
    EXPECT_EQ(LuaPackages().size(), 5u);
}

TEST(Workloads, PyDefaultInputsReplayCleanly)
{
    // Each package's default (seed) input should exercise the guest
    // without crashing the interpreter itself.
    for (const PyPackage& package : PyPackages()) {
        auto program = CompilePyOrDie(package.test.source);
        const PyReplayResult replay =
            ReplayPy(program, package.test, solver::Assignment());
        // Outcome may be a guest exception (inputs are short), but the
        // interpreter must not abort, and coverage must be non-empty.
        EXPECT_FALSE(replay.covered_lines.empty()) << package.name;
        EXPECT_GT(CoverableLines(*program), 10u) << package.name;
    }
}

TEST(Workloads, LuaDefaultInputsReplayCleanly)
{
    for (const LuaPackage& package : LuaPackages()) {
        auto chunk = ParseLuaOrDie(package.test.source);
        const LuaReplayResult replay =
            ReplayLua(chunk, package.test, solver::Assignment());
        EXPECT_FALSE(replay.covered_lines.empty()) << package.name;
    }
}

TEST(Workloads, ArgparseParsesFlagsConcretely)
{
    const PyPackage& package = PyPackageByName("argparse");
    auto program = CompilePyOrDie(package.test.source);
    // Two positional arguments "aaa" and "bbb" bound to values "v1v",
    // "v2v" parse successfully; an unknown flag "-zz" does not.
    auto replay_with = [&](const std::string& a1n, const std::string& a2n,
                           const std::string& a1, const std::string& a2) {
        solver::Assignment inputs;
        uint32_t var = 1;
        for (const std::string* s : {&a1n, &a2n, &a1, &a2}) {
            for (char c : *s) {
                inputs.Set(var++, static_cast<uint8_t>(c));
            }
        }
        return ReplayPy(program, package.test, inputs);
    };
    const PyReplayResult ok_case =
        replay_with("aaa", "bbb", "v1v", "v2v");
    EXPECT_TRUE(ok_case.ok)
        << ok_case.exception_type << ": " << ok_case.exception_message;
    const PyReplayResult bad_flag =
        replay_with("aaa", "bbb", "-zz", "v2v");
    EXPECT_FALSE(bad_flag.ok);
    EXPECT_EQ(bad_flag.exception_type, "ArgparseError");
    // A declared flag consuming its value leaves a positional missing.
    const PyReplayResult flag_case =
        replay_with("-ff", "bbb", "-ff", "vvv");
    EXPECT_FALSE(flag_case.ok);
    EXPECT_EQ(flag_case.exception_type, "ArgparseError");
}

TEST(Workloads, SimpleJsonAcceptsAndRejects)
{
    const PyPackage& package = PyPackageByName("simplejson");
    auto program = CompilePyOrDie(package.test.source);
    auto replay_with = [&](const std::string& doc) {
        solver::Assignment inputs;
        for (size_t i = 0; i < 6; ++i) {
            inputs.Set(static_cast<uint32_t>(i + 1),
                       i < doc.size() ? static_cast<uint8_t>(doc[i])
                                      : ' ');
        }
        return ReplayPy(program, package.test, inputs);
    };
    EXPECT_TRUE(replay_with("{\"a\":1").ok == false);  // Unterminated.
    EXPECT_TRUE(replay_with("[1,2] ").ok);
    EXPECT_TRUE(replay_with("true  ").ok);
    EXPECT_TRUE(replay_with("\"ab\"  ").ok);
    const PyReplayResult bad = replay_with("{oops}");
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.exception_type, "JSONDecodeError");
}

TEST(Workloads, XlrdUndocumentedExceptionsReachable)
{
    const PyPackage& package = PyPackageByName("xlrd");
    auto program = CompilePyOrDie(package.test.source);
    auto replay_with = [&](const std::string& data) {
        solver::Assignment inputs;
        for (size_t i = 0; i < 8; ++i) {
            inputs.Set(static_cast<uint32_t>(i + 1),
                       i < data.size() ? static_cast<uint8_t>(data[i])
                                       : 0);
        }
        return ReplayPy(program, package.test, inputs);
    };
    // The paper's four undocumented exception types (§6.2).
    EXPECT_EQ(replay_with("PK").exception_type, "BadZipfile");
    EXPECT_EQ(replay_with(std::string("XL") + '\x02' + '\x01' + 'S')
                  .exception_type,
              "error");  // SHEET before BOF.
    EXPECT_EQ(replay_with(std::string("XL") + '\x03').exception_type,
              "AssertionError");  // CELL before BOF.
    // Formula referencing a missing sheet: BOF, then record 4.
    const std::string bof_then_formula =
        std::string("XL") + '\x01' + '\x01' + '\x08' + '\x04' + '\x01' +
        '\x00';
    EXPECT_EQ(replay_with(bof_then_formula).exception_type, "IndexError");
    // And the documented path.
    EXPECT_EQ(replay_with("QQ").exception_type, "XLRDError");
    EXPECT_TRUE(
        replay_with(std::string("XL") + '\x01' + '\x01' + '\x05').ok);
}

TEST(Workloads, LuaJsonDecodesConcretely)
{
    const LuaPackage& package = LuaPackageByName("JSON");
    auto chunk = ParseLuaOrDie(package.test.source);
    auto replay_with = [&](const std::string& doc) {
        solver::Assignment inputs;
        for (size_t i = 0; i < 5; ++i) {
            inputs.Set(static_cast<uint32_t>(i + 1),
                       i < doc.size() ? static_cast<uint8_t>(doc[i])
                                      : ' ');
        }
        return ReplayLua(chunk, package.test, inputs);
    };
    EXPECT_TRUE(replay_with("[1,2]").ok);
    EXPECT_TRUE(replay_with("12345").ok);
    EXPECT_FALSE(replay_with("[1,2 ").ok);
    // Terminated comments are accepted (the convenience extension).
    EXPECT_TRUE(replay_with("/**/1").ok);
}

TEST(Workloads, LuaJsonCommentHangIsFoundSymbolically)
{
    // The §6.2 headline bug: symbolic exploration discovers an input
    // whose unterminated comment hangs the parser.
    const LuaPackage& package = LuaPackageByName("JSON");
    auto chunk = ParseLuaOrDie(package.test.source);
    Engine::Options options;
    options.max_runs = 400;
    options.max_seconds = 60.0;
    options.max_steps_per_run = 60'000;  // The paper's 60s per-path cap.
    Engine engine(options);
    const auto tests = engine.Explore(MakeLuaRunFn(
        chunk, package.test, interp::InterpBuildOptions::FullyOptimized()));
    bool hang_found = false;
    std::string hang_input;
    for (const TestCase& test : tests) {
        if (test.outcome_kind != "hang") {
            continue;
        }
        hang_found = true;
        hang_input.clear();
        for (uint32_t var = 1; var <= 5; ++var) {
            hang_input.push_back(
                static_cast<char>(test.inputs.Get(var)));
        }
        break;
    }
    ASSERT_TRUE(hang_found)
        << "exploration did not find the comment hang";
    // The hanging input must contain a comment opener.
    const bool has_comment_opener =
        hang_input.find("/*") != std::string::npos ||
        hang_input.find("//") != std::string::npos;
    EXPECT_TRUE(has_comment_opener) << "input: " << hang_input;
}

TEST(Workloads, EveryPyPackageExploresSymbolically)
{
    for (const PyPackage& package : PyPackages()) {
        auto program = CompilePyOrDie(package.test.source);
        Engine::Options options;
        options.max_runs = 25;
        options.max_seconds = 20.0;
        options.max_steps_per_run = 60'000;
        Engine engine(options);
        const auto tests = engine.Explore(MakePyRunFn(
            program, package.test,
            interp::InterpBuildOptions::FullyOptimized()));
        EXPECT_GT(engine.stats().ll_paths, 1u) << package.name;
        EXPECT_GT(engine.stats().hl_paths, 1u) << package.name;
        // Soundness spot check: replay the first three test cases.
        size_t checked = 0;
        for (const TestCase& test : tests) {
            if (checked++ >= 3 || test.outcome_kind == "hang") {
                continue;
            }
            const PyReplayResult replay =
                ReplayPy(program, package.test, test.inputs);
            if (test.outcome_kind == "ok") {
                EXPECT_TRUE(replay.ok)
                    << package.name << ": " << replay.exception_type;
            } else {
                EXPECT_EQ(replay.exception_type, test.outcome_detail)
                    << package.name;
            }
        }
    }
}

TEST(Workloads, EveryLuaPackageExploresSymbolically)
{
    for (const LuaPackage& package : LuaPackages()) {
        auto chunk = ParseLuaOrDie(package.test.source);
        Engine::Options options;
        options.max_runs = 25;
        options.max_seconds = 20.0;
        options.max_steps_per_run = 60'000;
        Engine engine(options);
        engine.Explore(MakeLuaRunFn(
            chunk, package.test,
            interp::InterpBuildOptions::FullyOptimized()));
        EXPECT_GT(engine.stats().ll_paths, 1u) << package.name;
        EXPECT_GT(engine.stats().hl_paths, 1u) << package.name;
    }
}

TEST(Workloads, GuestLocCountsLines)
{
    EXPECT_EQ(GuestLoc("a = 1\n\n# comment\nb = 2\n"), 2u);
    EXPECT_GT(GuestLoc(PyPackageByName("xlrd").test.source), 40u);
}

}  // namespace
}  // namespace chef::workloads
