/// \file
/// Property tests for the bit-blaster: for every operator, the circuit must
/// agree with concrete evaluation on random inputs, checked by asserting
/// "op(a,b) == expected" and "op(a,b) != expected" for satisfiability.

#include "solver/bitblast.h"

#include <gtest/gtest.h>

#include "solver/expr.h"
#include "solver/sat.h"
#include "support/rng.h"

namespace chef::solver {
namespace {

/// Checks satisfiability of a single width-1 expression.
SatStatus
CheckSat(const ExprRef& assertion, Assignment* model = nullptr)
{
    CnfFormula cnf;
    BitBlaster blaster(&cnf);
    blaster.AssertTrue(assertion);
    SatSolver sat;
    const SatStatus status = sat.Solve(cnf);
    if (status == SatStatus::kSat && model != nullptr) {
        for (const auto& [var_id, info] : blaster.variables()) {
            model->Set(var_id, blaster.ModelValue(sat, var_id));
        }
    }
    return status;
}

TEST(BitBlast, VariableEqualsConstant)
{
    const ExprRef x = MakeVar(1, "x", 8);
    Assignment model;
    ASSERT_EQ(CheckSat(MakeEq(x, MakeConst(0x5a, 8)), &model),
              SatStatus::kSat);
    EXPECT_EQ(model.Get(1), 0x5au);
}

TEST(BitBlast, UnsatEquality)
{
    const ExprRef x = MakeVar(1, "x", 8);
    const ExprRef both = MakeBoolAnd(MakeEq(x, MakeConst(1, 8)),
                                     MakeEq(x, MakeConst(2, 8)));
    EXPECT_EQ(CheckSat(both), SatStatus::kUnsat);
}

TEST(BitBlast, AdditionWitness)
{
    const ExprRef x = MakeVar(1, "x", 16);
    const ExprRef y = MakeVar(2, "y", 16);
    Assignment model;
    const ExprRef sum_is = MakeEq(MakeAdd(x, y), MakeConst(1000, 16));
    const ExprRef x_is = MakeEq(x, MakeConst(260, 16));
    ASSERT_EQ(CheckSat(MakeBoolAnd(sum_is, x_is), &model), SatStatus::kSat);
    EXPECT_EQ(model.Get(1), 260u);
    EXPECT_EQ(model.Get(2), 740u);
}

TEST(BitBlast, OverflowWraps)
{
    const ExprRef x = MakeVar(1, "x", 8);
    // x + 1 == 0 forces x == 255.
    Assignment model;
    ASSERT_EQ(CheckSat(MakeEq(MakeAdd(x, MakeConst(1, 8)),
                              MakeConst(0, 8)),
                       &model),
              SatStatus::kSat);
    EXPECT_EQ(model.Get(1), 255u);
}

TEST(BitBlast, MultiplicationFactoring)
{
    // Find a factorization of 143 with both factors > 1 (11 * 13).
    const ExprRef x = MakeVar(1, "x", 8);
    const ExprRef y = MakeVar(2, "y", 8);
    const ExprRef product =
        MakeMul(MakeZExt(x, 16), MakeZExt(y, 16));
    const ExprRef wanted = MakeBoolAnd(
        MakeBoolAnd(MakeEq(product, MakeConst(143, 16)),
                    MakeUgt(x, MakeConst(1, 8))),
        MakeUgt(y, MakeConst(1, 8)));
    Assignment model;
    ASSERT_EQ(CheckSat(wanted, &model), SatStatus::kSat);
    const uint64_t xv = model.Get(1);
    const uint64_t yv = model.Get(2);
    EXPECT_EQ(xv * yv, 143u);
    EXPECT_GT(xv, 1u);
    EXPECT_GT(yv, 1u);
}

struct OpCase {
    const char* name;
    ExprRef (*make)(const ExprRef&, const ExprRef&);
    int width;
};

uint64_t
FnvHashSeedFor(const char* name)
{
    uint64_t h = 1469598103934665603ull;
    for (const char* p = name; *p; ++p) {
        h = (h ^ static_cast<uint64_t>(*p)) * 1099511628211ull;
    }
    return h;
}

class BitBlastOpAgreement : public ::testing::TestWithParam<OpCase> {};

/// For random concrete a, b: assert op(a,b) != concrete-eval result and
/// expect UNSAT (circuit agrees with evaluator), then assert equality and
/// expect SAT.
TEST_P(BitBlastOpAgreement, CircuitMatchesEvaluator)
{
    const OpCase& op = GetParam();
    Rng rng(FnvHashSeedFor(op.name));
    for (int round = 0; round < 12; ++round) {
        const int width = op.width;
        const uint64_t av = rng.Next() & WidthMask(width);
        uint64_t bv = rng.Next() & WidthMask(width);
        if (round == 0) {
            bv = 0;  // Exercise division-by-zero semantics.
        }
        const ExprRef xa = MakeVar(1, "a", width);
        const ExprRef xb = MakeVar(2, "b", width);
        Assignment concrete;
        concrete.Set(1, av);
        concrete.Set(2, bv);
        const ExprRef symbolic = op.make(xa, xb);
        const uint64_t expected = EvalConcrete(symbolic, concrete);

        const ExprRef pinned = MakeBoolAnd(
            MakeEq(xa, MakeConst(av, width)),
            MakeEq(xb, MakeConst(bv, width)));
        const ExprRef result_const =
            MakeConst(expected, symbolic->width());

        EXPECT_EQ(CheckSat(MakeBoolAnd(
                      pinned, MakeEq(symbolic, result_const))),
                  SatStatus::kSat)
            << op.name << " a=" << av << " b=" << bv;
        EXPECT_EQ(CheckSat(MakeBoolAnd(
                      pinned, MakeNe(symbolic, result_const))),
                  SatStatus::kUnsat)
            << op.name << " a=" << av << " b=" << bv;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, BitBlastOpAgreement,
    ::testing::Values(
        OpCase{"add32", MakeAdd, 32}, OpCase{"sub32", MakeSub, 32},
        OpCase{"mul16", MakeMul, 16}, OpCase{"udiv12", MakeUDiv, 12},
        OpCase{"sdiv12", MakeSDiv, 12}, OpCase{"urem12", MakeURem, 12},
        OpCase{"srem12", MakeSRem, 12}, OpCase{"and32", MakeAnd, 32},
        OpCase{"or32", MakeOr, 32}, OpCase{"xor32", MakeXor, 32},
        OpCase{"shl16", MakeShl, 16}, OpCase{"lshr16", MakeLShr, 16},
        OpCase{"ashr16", MakeAShr, 16}, OpCase{"eq32", MakeEq, 32},
        OpCase{"ult32", MakeUlt, 32}, OpCase{"ule32", MakeUle, 32},
        OpCase{"slt32", MakeSlt, 32}, OpCase{"sle32", MakeSle, 32},
        OpCase{"add64", MakeAdd, 64}, OpCase{"ult64", MakeUlt, 64},
        OpCase{"add7", MakeAdd, 7}, OpCase{"mul7", MakeMul, 7},
        OpCase{"udiv8", MakeUDiv, 8}, OpCase{"slt8", MakeSlt, 8}),
    [](const ::testing::TestParamInfo<OpCase>& info) {
        return info.param.name;
    });

TEST(BitBlast, ExtensionAndExtract)
{
    const ExprRef x = MakeVar(1, "x", 8);
    // zext(x, 16) < 256 always.
    EXPECT_EQ(CheckSat(MakeUge(MakeZExt(x, 16), MakeConst(256, 16))),
              SatStatus::kUnsat);
    // sext of a negative 8-bit value has high bits set.
    Assignment model;
    ASSERT_EQ(CheckSat(MakeBoolAnd(
                  MakeEq(x, MakeConst(0x80, 8)),
                  MakeEq(MakeSExt(x, 16), MakeConst(0xff80, 16))),
                      &model),
              SatStatus::kSat);
    // extract(concat(h, l), 8, 8) == h.
    const ExprRef h = MakeVar(2, "h", 8);
    const ExprRef l = MakeVar(3, "l", 8);
    EXPECT_EQ(CheckSat(MakeNe(MakeExtract(MakeConcat(h, l), 8, 8), h)),
              SatStatus::kUnsat);
}

TEST(BitBlast, IteSelectsCorrectArm)
{
    const ExprRef c = MakeVar(1, "c", 1);
    const ExprRef picked = MakeIte(c, MakeConst(10, 8), MakeConst(20, 8));
    Assignment model;
    ASSERT_EQ(CheckSat(MakeEq(picked, MakeConst(10, 8)), &model),
              SatStatus::kSat);
    EXPECT_EQ(model.Get(1), 1u);
    ASSERT_EQ(CheckSat(MakeEq(picked, MakeConst(20, 8)), &model),
              SatStatus::kSat);
    EXPECT_EQ(CheckSat(MakeEq(picked, MakeConst(30, 8))),
              SatStatus::kUnsat);
}

TEST(BitBlast, StringEqualityStyleConstraints)
{
    // Four byte variables constrained to spell "chef".
    std::vector<ExprRef> bytes;
    ExprRef all = MakeBool(true);
    const char* word = "chef";
    for (int i = 0; i < 4; ++i) {
        bytes.push_back(MakeVar(10 + i, "s" + std::to_string(i), 8));
        all = MakeBoolAnd(
            all, MakeEq(bytes[i],
                        MakeConst(static_cast<uint8_t>(word[i]), 8)));
    }
    Assignment model;
    ASSERT_EQ(CheckSat(all, &model), SatStatus::kSat);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(model.Get(10 + i), static_cast<uint8_t>(word[i]));
    }
}

}  // namespace
}  // namespace chef::solver
