/// \file
/// Tests for the dedicated (NICE-like) engine: subset execution, agreement
/// with the CHEF-derived engine on the MAC controller, speed advantage,
/// and the §6.6 cross-check that exposes the seeded `if not` bug.

#include <gtest/gtest.h>

#include "dedicated/mac_controller.h"
#include "dedicated/nice_engine.h"
#include "workloads/py_harness.h"

namespace chef::dedicated {
namespace {

TEST(Dedicated, ExploresSimpleBranches)
{
    const char* source = R"(def f(x):
    if x > 100:
        return 1
    return 0
)";
    NicePyEngine engine(source, {});
    const NiceResult result = engine.Explore("f", {{"x", 0}});
    EXPECT_EQ(result.stats.ll_paths, 2u);
    EXPECT_EQ(result.hl_paths, 2u);
}

TEST(Dedicated, DictMembershipForksPerEntry)
{
    const char* source = R"(def f(a, b, probe):
    d = {}
    d[a] = 1
    d[b] = 2
    if probe in d:
        return 1
    return 0
)";
    NicePyEngine engine(source, {});
    const NiceResult result =
        engine.Explore("f", {{"a", 1}, {"b", 2}, {"probe", 3}});
    // Outcomes: probe==a; probe!=a && probe==b; neither. Plus the
    // a==b aliasing split on insertion.
    EXPECT_GE(result.stats.ll_paths, 3u);
    EXPECT_GE(result.hl_paths, 2u);
}

TEST(Dedicated, MacControllerPathsMatchChefEngine)
{
    // Both engines must discover the same number of high-level paths for
    // the same controller and frame count (the cross-check premise).
    const int frames = 2;
    NicePyEngine dedicated(MacControllerSource(frames), {});
    const NiceResult nice_result =
        dedicated.Explore("process", MacControllerArgs(frames));

    auto program =
        workloads::CompilePyOrDie(MacControllerSource(frames));
    Engine::Options options;
    options.max_runs = 500;
    options.max_seconds = 60.0;
    Engine chef_engine(options);
    chef_engine.Explore(workloads::MakePyRunFn(
        program, MacControllerPyTest(frames),
        interp::InterpBuildOptions::FullyOptimized()));

    EXPECT_EQ(nice_result.hl_paths, chef_engine.stats().hl_paths);
    EXPECT_GT(nice_result.hl_paths, 2u);
}

TEST(Dedicated, FasterPerPathThanChefEngine)
{
    // The Figure-12 premise: the dedicated engine spends far fewer
    // low-level steps per high-level path (it executes the guest
    // natively instead of through the interpreter).
    const int frames = 2;
    NicePyEngine dedicated(MacControllerSource(frames), {});
    const NiceResult nice_result =
        dedicated.Explore("process", MacControllerArgs(frames));
    uint64_t nice_steps = 0;
    for (const TestCase& test : nice_result.tests) {
        nice_steps += test.ll_steps;
    }

    auto program =
        workloads::CompilePyOrDie(MacControllerSource(frames));
    Engine::Options options;
    options.max_runs = 500;
    options.max_seconds = 60.0;
    Engine chef_engine(options);
    const auto chef_tests = chef_engine.Explore(workloads::MakePyRunFn(
        program, MacControllerPyTest(frames),
        interp::InterpBuildOptions::FullyOptimized()));
    uint64_t chef_steps = 0;
    for (const TestCase& test : chef_tests) {
        chef_steps += test.ll_steps;
    }
    ASSERT_GT(nice_result.hl_paths, 0u);
    ASSERT_GT(chef_engine.stats().hl_paths, 0u);
    const double nice_per_path =
        static_cast<double>(nice_steps) /
        static_cast<double>(nice_result.hl_paths);
    const double chef_per_path =
        static_cast<double>(chef_steps) /
        static_cast<double>(chef_engine.stats().hl_paths);
    // The interpreter-level engine pays dispatch + runtime-structure
    // costs per path; the exact factor varies with build options, so the
    // test asserts a conservative bound (the Figure-12 bench measures the
    // real curve with wall-clock time and the simulated VM boot cost).
    EXPECT_GT(chef_per_path, 2.0 * nice_per_path);
}

TEST(Dedicated, SeededNotBugLosesPaths)
{
    // §6.6: cross-checking against the CHEF engine reveals the NICE
    // branch-selection bug on `if not <expr>`: the buggy engine explores
    // fewer distinct high-level paths (it re-drives old paths).
    const char* source = R"(def f(x, y):
    out = 0
    if not x > 50:
        out = out + 1
    if not y > 50:
        out = out + 2
    return out
)";
    NicePyEngine::Options correct_options;
    NicePyEngine correct(source, correct_options);
    const NiceResult correct_result =
        correct.Explore("f", {{"x", 0}, {"y", 0}});

    NicePyEngine::Options buggy_options;
    buggy_options.seeded_not_bug = true;
    NicePyEngine buggy(source, buggy_options);
    const NiceResult buggy_result =
        buggy.Explore("f", {{"x", 0}, {"y", 0}});

    EXPECT_EQ(correct_result.hl_paths, 4u);
    EXPECT_LT(buggy_result.hl_paths, correct_result.hl_paths);

    // The cross-check detects the discrepancy against the reference
    // (CHEF-derived) engine.
    auto program = workloads::CompilePyOrDie(source);
    workloads::PySymbolicTest spec;
    spec.source = source;
    spec.entry = "f";
    spec.args = {workloads::SymbolicArg::Int("x", 0),
                 workloads::SymbolicArg::Int("y", 0)};
    Engine::Options options;
    options.max_runs = 200;
    Engine reference(options);
    reference.Explore(workloads::MakePyRunFn(
        program, spec, interp::InterpBuildOptions::FullyOptimized()));
    EXPECT_EQ(reference.stats().hl_paths, correct_result.hl_paths);
    EXPECT_NE(reference.stats().hl_paths, buggy_result.hl_paths);
}

TEST(Dedicated, UnsupportedConstructsAreReported)
{
    const char* source = R"(def f(x):
    s = 'hello'
    return s
)";
    NicePyEngine engine(source, {});
    const NiceResult result = engine.Explore("f", {{"x", 0}});
    // Every run aborts: strings are outside the supported subset.
    for (const TestCase& test : result.tests) {
        EXPECT_EQ(test.outcome_kind, "abort");
    }
}

TEST(Dedicated, FeatureMatrix)
{
    EXPECT_TRUE(NicePyEngine::SupportsFeature("int"));
    EXPECT_FALSE(NicePyEngine::SupportsFeature("str"));
    EXPECT_FALSE(NicePyEngine::SupportsFeature("class"));
    EXPECT_FALSE(NicePyEngine::SupportsFeature("exceptions"));
    EXPECT_FALSE(NicePyEngine::SupportsFeature("native"));
}

TEST(Dedicated, MacControllerSourceScalesWithFrames)
{
    const std::string source1 = MacControllerSource(1);
    const std::string source3 = MacControllerSource(3);
    EXPECT_NE(source1.find("src0"), std::string::npos);
    EXPECT_EQ(source1.find("src1"), std::string::npos);
    EXPECT_NE(source3.find("src2"), std::string::npos);
    EXPECT_EQ(MacControllerArgs(3).size(), 6u);
    EXPECT_EQ(MacControllerPyTest(2).args.size(), 4u);
}

}  // namespace
}  // namespace chef::dedicated
