/// \file
/// Tests for the cross-worker shared solver cache: canonicalization,
/// hash-collision rejection, LRU eviction under a byte budget, the
/// counterexample store, solver integration (including the determinism
/// contract), and a multi-thread stress test.

#include "cache/shared_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cache/canonical.h"
#include "solver/solver.h"
#include "support/rng.h"

namespace chef::cache {
namespace {

using solver::Assignment;
using solver::ExprRef;
using solver::MakeConst;
using solver::MakeEq;
using solver::MakeUgt;
using solver::MakeUlt;
using solver::MakeVar;
using solver::QueryResult;
using solver::Solver;

std::vector<ExprRef>
IntervalQuery(uint32_t var_id, uint64_t lo, uint64_t hi)
{
    const ExprRef x = MakeVar(var_id, "x" + std::to_string(var_id), 16);
    return {MakeUgt(x, MakeConst(lo, 16)), MakeUlt(x, MakeConst(hi, 16))};
}

// ---------------------------------------------------------------------------
// Canonicalization.
// ---------------------------------------------------------------------------

TEST(Canonical, PermutedAssertionSetsShareTheCanonicalForm)
{
    const std::vector<ExprRef> ab = IntervalQuery(1, 10, 20);
    const std::vector<ExprRef> ba = {ab[1], ab[0]};

    EXPECT_EQ(QueryHash(ab), QueryHash(ba));
    const CanonicalQuery qa = Canonicalize(ab);
    const CanonicalQuery qb = Canonicalize(ba);
    EXPECT_EQ(qa.hash, qb.hash);
    ASSERT_EQ(qa.sorted_assertions.size(), qb.sorted_assertions.size());
    EXPECT_TRUE(SameAssertions(qa.sorted_assertions, qb.sorted_assertions));
}

TEST(Canonical, StructurallyEqualFreshExpressionsShareTheCanonicalForm)
{
    // Freshly constructed nodes, not shared refs.
    const CanonicalQuery a = Canonicalize(IntervalQuery(1, 10, 20));
    const CanonicalQuery b = Canonicalize(IntervalQuery(1, 10, 20));
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_TRUE(SameAssertions(a.sorted_assertions, b.sorted_assertions));
}

TEST(Canonical, DifferentQueriesDiffer)
{
    const CanonicalQuery a = Canonicalize(IntervalQuery(1, 10, 20));
    const CanonicalQuery b = Canonicalize(IntervalQuery(1, 10, 21));
    EXPECT_FALSE(
        SameAssertions(a.sorted_assertions, b.sorted_assertions));
}

// ---------------------------------------------------------------------------
// Cache lookup/insert.
// ---------------------------------------------------------------------------

TEST(SharedSolverCache, ReturnsInsertedResults)
{
    SharedSolverCache cache;
    const CanonicalQuery sat_query = Canonicalize(IntervalQuery(1, 5, 9));
    Assignment sat_model;
    sat_model.Set(1, 7);
    cache.Insert(sat_query, CachedResult::kSat, sat_model);

    const CanonicalQuery unsat_query =
        Canonicalize(IntervalQuery(2, 9, 5));
    cache.Insert(unsat_query, CachedResult::kUnsat, Assignment());

    CachedResult result;
    Assignment model;
    ASSERT_TRUE(cache.Lookup(sat_query, &result, &model));
    EXPECT_EQ(result, CachedResult::kSat);
    EXPECT_EQ(model.Get(1), 7u);

    ASSERT_TRUE(cache.Lookup(unsat_query, &result, nullptr));
    EXPECT_EQ(result, CachedResult::kUnsat);

    EXPECT_FALSE(
        cache.Lookup(Canonicalize(IntervalQuery(3, 1, 2)), &result,
                     nullptr));

    const SharedSolverCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.inserts, 2u);
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(SharedSolverCache, UnsatEntriesStoreNoModel)
{
    SharedSolverCache cache;
    const CanonicalQuery query = Canonicalize(IntervalQuery(1, 9, 5));
    Assignment full_model;
    full_model.Set(1, 7);
    // Even if the caller passes a (bogus) model with an unsat result,
    // the cache must not store or serve it.
    cache.Insert(query, CachedResult::kUnsat, full_model);

    CachedResult result;
    Assignment model;
    model.Set(99, 1);  // Sentinel: must survive an unsat hit untouched.
    ASSERT_TRUE(cache.Lookup(query, &result, &model));
    EXPECT_EQ(result, CachedResult::kUnsat);
    EXPECT_TRUE(model.Has(99));
}

/// Hash collisions must be rejected by the exact structural comparison:
/// fabricate a key whose hash matches an existing entry but whose
/// assertions differ.
TEST(SharedSolverCache, HashCollisionsAreRejected)
{
    SharedSolverCache cache;
    const CanonicalQuery original = Canonicalize(IntervalQuery(1, 5, 9));
    Assignment model;
    model.Set(1, 7);
    cache.Insert(original, CachedResult::kSat, model);

    CanonicalQuery collider = Canonicalize(IntervalQuery(2, 100, 200));
    collider.hash = original.hash;  // Forced collision.

    CachedResult result;
    EXPECT_FALSE(cache.Lookup(collider, &result, nullptr));

    // Colliding insert: first writer wins, the original stays intact.
    cache.Insert(collider, CachedResult::kUnsat, Assignment());
    Assignment out;
    ASSERT_TRUE(cache.Lookup(original, &result, &out));
    EXPECT_EQ(result, CachedResult::kSat);
    EXPECT_EQ(out.Get(1), 7u);

    const SharedSolverCache::Stats stats = cache.stats();
    EXPECT_GE(stats.collisions, 2u);  // One lookup, one insert.
    EXPECT_EQ(stats.entries, 1u);
}

// ---------------------------------------------------------------------------
// Eviction.
// ---------------------------------------------------------------------------

TEST(SharedSolverCache, EvictsLruUnderByteBudget)
{
    SharedSolverCache::Options options;
    options.num_shards = 1;  // One shard: budget and LRU order are exact.
    options.max_bytes = 1024;
    SharedSolverCache cache(options);

    // Each entry costs ~160 bytes; 32 inserts must overflow 1024.
    std::vector<CanonicalQuery> queries;
    for (uint32_t i = 1; i <= 32; ++i) {
        queries.push_back(Canonicalize(IntervalQuery(i, 5, 9)));
        Assignment model;
        model.Set(i, 7);
        cache.Insert(queries.back(), CachedResult::kSat, model);
    }

    const SharedSolverCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.inserts, 32u);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.bytes, options.max_bytes);
    EXPECT_LT(stats.entries, 32u);
    EXPECT_EQ(stats.entries, stats.inserts - stats.evictions);

    // LRU: the newest entry survives, the oldest was evicted.
    CachedResult result;
    EXPECT_TRUE(cache.Lookup(queries.back(), &result, nullptr));
    EXPECT_FALSE(cache.Lookup(queries.front(), &result, nullptr));
}

TEST(SharedSolverCache, LookupRefreshesLruPosition)
{
    SharedSolverCache::Options options;
    options.num_shards = 1;
    options.max_bytes = 1024;
    SharedSolverCache cache(options);

    const CanonicalQuery keeper = Canonicalize(IntervalQuery(1, 5, 9));
    cache.Insert(keeper, CachedResult::kUnsat, Assignment());
    CachedResult result;
    for (uint32_t i = 2; i <= 32; ++i) {
        // Touch the keeper before every insert so it never reaches the
        // LRU tail despite being the oldest entry.
        ASSERT_TRUE(cache.Lookup(keeper, &result, nullptr));
        cache.Insert(Canonicalize(IntervalQuery(i, 5, 9)),
                     CachedResult::kUnsat, Assignment());
    }
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_TRUE(cache.Lookup(keeper, &result, nullptr));
}

TEST(SharedSolverCache, OversizeEntriesAreSkippedNotCycled)
{
    SharedSolverCache::Options options;
    options.num_shards = 1;
    options.max_bytes = 64;  // Below the fixed per-entry overhead.
    SharedSolverCache cache(options);
    cache.Insert(Canonicalize(IntervalQuery(1, 5, 9)),
                 CachedResult::kUnsat, Assignment());
    const SharedSolverCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.inserts, 0u);
    EXPECT_EQ(stats.oversize_skips, 1u);
    EXPECT_EQ(stats.entries, 0u);
}

// ---------------------------------------------------------------------------
// Counterexample store.
// ---------------------------------------------------------------------------

TEST(SharedSolverCache, CounterexampleReuseAcrossQueries)
{
    SharedSolverCache cache;
    Assignment model;
    model.Set(1, 55);
    cache.PublishModel(model);

    const ExprRef x = MakeVar(1, "x", 16);
    Assignment out;
    EXPECT_TRUE(cache.TryCounterexamples(
        {MakeUgt(x, MakeConst(50, 16))}, &out));
    EXPECT_EQ(out.Get(1), 55u);
    EXPECT_FALSE(cache.TryCounterexamples(
        {MakeUgt(x, MakeConst(60, 16))}, nullptr));

    const SharedSolverCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.models_published, 1u);
    EXPECT_EQ(stats.model_reuse_hits, 1u);
}

TEST(SharedSolverCache, CounterexampleStoreIsBoundedNewestFirst)
{
    SharedSolverCache::Options options;
    options.max_counterexamples = 4;
    SharedSolverCache cache(options);
    for (uint64_t v = 1; v <= 10; ++v) {
        Assignment model;
        model.Set(1, v);
        cache.PublishModel(model);
    }
    const ExprRef x = MakeVar(1, "x", 16);
    // Values 1..6 were displaced; only 7..10 remain.
    EXPECT_FALSE(cache.TryCounterexamples(
        {MakeEq(x, MakeConst(6, 16))}, nullptr));
    Assignment out;
    EXPECT_TRUE(cache.TryCounterexamples(
        {MakeEq(x, MakeConst(7, 16))}, &out));
    // Newest first: an unconstrained probe sees the latest model.
    EXPECT_TRUE(cache.TryCounterexamples(
        {MakeUgt(x, MakeConst(0, 16))}, &out));
    EXPECT_EQ(out.Get(1), 10u);
}

// ---------------------------------------------------------------------------
// Solver integration.
// ---------------------------------------------------------------------------

TEST(SharedSolverCache, SecondSolverHitsFirstSolversResults)
{
    SharedSolverCache cache;
    Solver::Options options;
    options.shared_cache = &cache;

    Solver first(options);
    Assignment model;
    ASSERT_EQ(first.Solve(IntervalQuery(1, 100, 110), &model),
              QueryResult::kSat);
    ASSERT_EQ(first.Solve(IntervalQuery(2, 9, 5), nullptr),
              QueryResult::kUnsat);
    EXPECT_GT(first.stats().sat_calls, 0u);

    // A fresh solver (empty local cache, no recent models) answers the
    // same queries entirely from the shared cache.
    Solver second(options);
    Assignment second_model;
    ASSERT_EQ(second.Solve(IntervalQuery(1, 100, 110), &second_model),
              QueryResult::kSat);
    ASSERT_EQ(second.Solve(IntervalQuery(2, 9, 5), nullptr),
              QueryResult::kUnsat);
    EXPECT_EQ(second.stats().sat_calls, 0u);
    EXPECT_EQ(second.stats().shared_cache_hits, 2u);
    // The served model satisfies the interval.
    EXPECT_GT(second_model.Get(1), 100u);
    EXPECT_LT(second_model.Get(1), 110u);
}

TEST(SharedSolverCache, SiblingModelSatisfiesNewQueryWithoutSat)
{
    SharedSolverCache cache;
    Solver::Options options;
    options.shared_cache = &cache;

    Solver first(options);
    ASSERT_EQ(first.Solve(IntervalQuery(1, 50, 60), nullptr),
              QueryResult::kSat);

    // A *different* (weaker) query: not in the shared query cache, but
    // the first solver's published model satisfies it.
    Solver second(options);
    Assignment model;
    ASSERT_EQ(second.Solve(IntervalQuery(1, 10, 200), &model),
              QueryResult::kSat);
    EXPECT_EQ(second.stats().sat_calls, 0u);
    EXPECT_GE(second.stats().shared_model_reuse_hits, 1u);
    EXPECT_GT(model.Get(1), 10u);
    EXPECT_LT(model.Get(1), 200u);
}

/// Slice-aware prefetch: a solver that solves a multi-slice query
/// publishes it *whole* to the shared cache, so a sibling answers every
/// slice from one lookup and primes its local per-slice caches.
TEST(SharedSolverCache, WholeSlicedQueryPrimesSiblings)
{
    SharedSolverCache cache;
    Solver::Options options;
    options.shared_cache = &cache;

    // Two variable-disjoint slices: x1 in (10,20) and x2 in (30,40).
    std::vector<ExprRef> query = IntervalQuery(1, 10, 20);
    const std::vector<ExprRef> second_slice = IntervalQuery(2, 30, 40);
    query.insert(query.end(), second_slice.begin(), second_slice.end());

    Solver first(options);
    Assignment model;
    ASSERT_EQ(first.Solve(query, &model), QueryResult::kSat);
    EXPECT_EQ(first.stats().sliced_queries, 1u);
    EXPECT_EQ(first.stats().shared_whole_query_hits, 0u);

    // The sibling takes the whole query from one shared entry: no SAT
    // call, no per-slice shared probes, both slices primed locally.
    Solver second(options);
    Assignment sibling_model;
    ASSERT_EQ(second.Solve(query, &sibling_model), QueryResult::kSat);
    EXPECT_EQ(second.stats().sat_calls, 0u);
    EXPECT_EQ(second.stats().shared_cache_hits, 0u);
    EXPECT_EQ(second.stats().shared_whole_query_hits, 1u);
    EXPECT_EQ(second.stats().shared_slices_primed, 2u);
    EXPECT_GT(sibling_model.Get(1), 10u);
    EXPECT_LT(sibling_model.Get(1), 20u);
    EXPECT_GT(sibling_model.Get(2), 30u);
    EXPECT_LT(sibling_model.Get(2), 40u);

    // The primed local entries answer a slice sub-query without
    // touching the shared cache again.
    const uint64_t lookups_before = cache.stats().lookups;
    ASSERT_EQ(second.Solve(IntervalQuery(1, 10, 20), nullptr),
              QueryResult::kSat);
    EXPECT_GE(second.stats().cache_hits, 1u);
    EXPECT_EQ(cache.stats().lookups, lookups_before);
}

TEST(SharedSolverCache, WholeSlicedUnsatQueryIsPublished)
{
    SharedSolverCache cache;
    Solver::Options options;
    options.shared_cache = &cache;

    // One unsat slice (x3 > 9 && x3 < 5) decides the whole query.
    std::vector<ExprRef> query = IntervalQuery(3, 9, 5);
    const std::vector<ExprRef> sat_slice = IntervalQuery(4, 30, 40);
    query.insert(query.end(), sat_slice.begin(), sat_slice.end());

    Solver first(options);
    ASSERT_EQ(first.Solve(query, nullptr), QueryResult::kUnsat);

    Solver second(options);
    ASSERT_EQ(second.Solve(query, nullptr), QueryResult::kUnsat);
    EXPECT_EQ(second.stats().sat_calls, 0u);
    EXPECT_EQ(second.stats().shared_whole_query_hits, 1u);
    EXPECT_EQ(second.stats().shared_slices_primed, 0u);
}

/// The determinism contract: sat/unsat outcomes are identical with and
/// without sharing for any query sequence; only the satisfying model may
/// differ (and always satisfies the query). The model-dependent effect is
/// exactly why sharing is opt-in at the service layer.
TEST(SharedSolverCache, OutcomesAreCacheInvariant)
{
    Rng rng(77);
    std::vector<std::vector<ExprRef>> queries;
    for (int i = 0; i < 40; ++i) {
        const uint64_t lo = rng.NextBelow(300);
        const uint64_t hi = rng.NextBelow(300);
        queries.push_back(
            IntervalQuery(1 + static_cast<uint32_t>(i % 3), lo, hi));
    }

    SharedSolverCache cache;
    Solver::Options shared_options;
    shared_options.shared_cache = &cache;
    // Warm the cache with an independent solver first, so the solver
    // under test answers mostly from shared state.
    Solver warmup(shared_options);
    for (const auto& query : queries) {
        warmup.Solve(query, nullptr);
    }

    Solver plain;
    Solver shared(shared_options);
    for (const auto& query : queries) {
        Assignment plain_model;
        Assignment shared_model;
        const QueryResult plain_result =
            plain.Solve(query, &plain_model);
        const QueryResult shared_result =
            shared.Solve(query, &shared_model);
        EXPECT_EQ(plain_result, shared_result);
        if (shared_result == QueryResult::kSat) {
            for (const ExprRef& assertion : query) {
                EXPECT_EQ(EvalConcrete(assertion, shared_model), 1u);
            }
        }
    }
    EXPECT_GT(shared.stats().shared_cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency.
// ---------------------------------------------------------------------------

/// Hammer one cache from many threads with overlapping keys, lookups,
/// inserts, and model publishes. Run under ThreadSanitizer locally to
/// verify the striped locking; in a plain build this still exercises
/// LRU/byte-budget invariants under contention.
TEST(SharedSolverCache, MultiThreadStress)
{
    SharedSolverCache::Options options;
    options.num_shards = 4;
    options.max_bytes = 16 * 1024;  // Small: forces concurrent eviction.
    options.max_counterexamples = 8;
    SharedSolverCache cache(options);

    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 2000;
    constexpr uint32_t kKeySpace = 64;

    std::atomic<uint64_t> hits{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &hits, t] {
            Rng rng(1000 + static_cast<uint64_t>(t));
            for (int op = 0; op < kOpsPerThread; ++op) {
                const uint32_t var =
                    1 + static_cast<uint32_t>(rng.NextBelow(kKeySpace));
                const CanonicalQuery query =
                    Canonicalize(IntervalQuery(var, 5, 9));
                const uint64_t roll = rng.NextBelow(4);
                if (roll == 0) {
                    Assignment model;
                    model.Set(var, 7);
                    cache.Insert(query, CachedResult::kSat, model);
                } else if (roll == 1) {
                    Assignment model;
                    model.Set(var, 7);
                    cache.PublishModel(model);
                    cache.TryCounterexamples(query.sorted_assertions,
                                             &model);
                } else {
                    CachedResult result;
                    Assignment model;
                    if (cache.Lookup(query, &result, &model)) {
                        hits.fetch_add(1,
                                       std::memory_order_relaxed);
                    }
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }

    const SharedSolverCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
    EXPECT_GE(stats.hits, hits.load());
    EXPECT_LE(stats.bytes, options.max_bytes);
    EXPECT_EQ(stats.entries, stats.inserts - stats.evictions);
    EXPECT_GT(stats.inserts, 0u);
}

}  // namespace
}  // namespace chef::cache
