/// \file
/// Tests for the telemetry layer: striped counter/histogram concurrency,
/// snapshot isolation, log-bucket quantile bounds, the allocation-free
/// hot path, snapshot merge/serialization round trips, phase-tracer span
/// semantics, and an end-to-end 2-shard loopback batch whose trace must
/// be strict JSON with correctly nested spans from both shards.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "obs/trace.h"
#include "service/job.h"
#include "shard/coordinator.h"
#include "support/json.h"

// --------------------------------------------------------------------------
// Allocation counting for the hot-path test: replace global operator new
// so the test can assert that Counter::Add and Histogram::RecordNanos
// perform zero heap allocations. Counting is a relaxed atomic bump, so
// the replacement does not perturb what it measures.

static std::atomic<uint64_t> g_allocations{0};

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    void* ptr = std::malloc(size);
    if (ptr == nullptr) {
        throw std::bad_alloc();
    }
    return ptr;
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void* ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void* ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void* ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace chef::obs {
namespace {

using support::JsonValue;
using support::JsonWriter;
using support::ParseJson;

// --------------------------------------------------------------------------
// Counters and histograms under concurrency.

TEST(MetricsTest, CounterConcurrentAddsLoseNothing)
{
    MetricsRegistry registry;
    Counter* counter = registry.counter("test.adds");
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([counter] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                counter->Add();
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(counter->Value(), kThreads * kPerThread);
    EXPECT_EQ(registry.Snapshot().CounterValue("test.adds"),
              kThreads * kPerThread);
}

TEST(MetricsTest, HistogramConcurrentRecordsLoseNothing)
{
    MetricsRegistry registry;
    Histogram* histogram = registry.histogram("test.latency");
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 10'000;
    constexpr uint64_t kNanos = 4096;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([histogram] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                histogram->RecordNanos(kNanos);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    const MetricsSnapshot snapshot = registry.Snapshot();
    const HistogramSnapshot* h = snapshot.FindHistogram("test.latency");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, kThreads * kPerThread);
    EXPECT_EQ(h->sum_nanos, kThreads * kPerThread * kNanos);
    EXPECT_EQ(h->min_nanos, kNanos);
    EXPECT_EQ(h->max_nanos, kNanos);
    EXPECT_EQ(h->buckets[Histogram::BucketFor(kNanos)],
              kThreads * kPerThread);
}

TEST(MetricsTest, HistogramBucketEdges)
{
    EXPECT_EQ(Histogram::BucketFor(0), 0u);
    EXPECT_EQ(Histogram::BucketFor(1), 1u);
    EXPECT_EQ(Histogram::BucketFor(2), 2u);
    EXPECT_EQ(Histogram::BucketFor(3), 2u);
    EXPECT_EQ(Histogram::BucketFor(4), 3u);
    // Bucket b >= 1 covers [2^(b-1), 2^b).
    for (size_t b = 1; b + 1 < kHistogramBuckets; ++b) {
        const uint64_t lower = uint64_t{1} << (b - 1);
        EXPECT_EQ(Histogram::BucketFor(lower), b);
        EXPECT_EQ(Histogram::BucketFor(2 * lower - 1), b);
        EXPECT_EQ(Histogram::BucketUpperNanos(b), 2 * lower - 1);
    }
}

TEST(MetricsTest, QuantileEstimateWithinFactorTwo)
{
    // A known distribution: 1..1000 microseconds, one sample each. The
    // true q-quantile is q*1000 us; the log-bucket estimate returns the
    // bucket's upper edge clamped to the observed max, so it must land
    // in [true, 2*true).
    MetricsRegistry registry;
    Histogram* histogram = registry.histogram("test.quantiles");
    for (uint64_t us = 1; us <= 1000; ++us) {
        histogram->RecordNanos(us * 1000);
    }
    const MetricsSnapshot snapshot = registry.Snapshot();
    const HistogramSnapshot* h = snapshot.FindHistogram("test.quantiles");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1000u);
    EXPECT_EQ(h->min_nanos, 1000u);
    EXPECT_EQ(h->max_nanos, 1'000'000u);
    for (const double q : {0.5, 0.95, 0.99}) {
        const double true_seconds = q * 1000.0 * 1e-6;
        const double estimate = h->QuantileSeconds(q);
        EXPECT_GE(estimate, true_seconds) << "q=" << q;
        EXPECT_LT(estimate, 2.0 * true_seconds) << "q=" << q;
    }
    // q = 1.0 is exactly the observed max (the clamp).
    EXPECT_DOUBLE_EQ(h->QuantileSeconds(1.0), 1e-3);
    EXPECT_NEAR(h->MeanSeconds(), 500.5 * 1e-6, 1e-12);
}

TEST(MetricsTest, SnapshotIsIsolatedFromLaterRecording)
{
    MetricsRegistry registry;
    Counter* counter = registry.counter("test.c");
    Histogram* histogram = registry.histogram("test.h");
    counter->Add(5);
    histogram->RecordNanos(100);
    const MetricsSnapshot before = registry.Snapshot();
    counter->Add(7);
    histogram->RecordNanos(200);
    registry.gauge("test.g")->Set(-3);
    const MetricsSnapshot after = registry.Snapshot();

    EXPECT_EQ(before.CounterValue("test.c"), 5u);
    EXPECT_EQ(after.CounterValue("test.c"), 12u);
    ASSERT_NE(before.FindHistogram("test.h"), nullptr);
    EXPECT_EQ(before.FindHistogram("test.h")->count, 1u);
    EXPECT_EQ(after.FindHistogram("test.h")->count, 2u);
    EXPECT_TRUE(before.gauges.empty());
    ASSERT_EQ(after.gauges.size(), 1u);
    EXPECT_EQ(after.gauges[0].second, -3);
}

TEST(MetricsTest, HotPathDoesNotAllocate)
{
    MetricsRegistry registry;
    // Handles resolve (and intern names) up front; the hot path below
    // must never touch the registry map again.
    Counter* counter = registry.counter("test.hot");
    Histogram* histogram = registry.histogram("test.hot_latency");
    counter->Add();  // Warm the thread-stripe assignment.
    histogram->RecordNanos(1);

    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 10'000; ++i) {
        counter->Add();
        histogram->RecordNanos(static_cast<uint64_t>(i));
    }
    const uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
}

// --------------------------------------------------------------------------
// Snapshot merge and serialization.

std::string
Rendered(const MetricsSnapshot& snapshot)
{
    JsonWriter json;
    WriteMetricsSnapshot(json, snapshot);
    return json.Take();
}

TEST(MetricsTest, MergeSumsAndIsOrderIndependent)
{
    MetricsRegistry ra;
    ra.counter("x")->Add(1);
    ra.counter("y")->Add(2);
    ra.gauge("depth")->Set(4);
    ra.histogram("h")->RecordNanos(100);
    MetricsRegistry rb;
    rb.counter("y")->Add(3);
    rb.counter("z")->Add(4);
    rb.gauge("depth")->Set(6);
    rb.histogram("h")->RecordNanos(900);
    rb.histogram("h2")->RecordNanos(50);

    MetricsSnapshot ab = ra.Snapshot();
    ab.MergeFrom(rb.Snapshot());
    MetricsSnapshot ba = rb.Snapshot();
    ba.MergeFrom(ra.Snapshot());

    EXPECT_EQ(ab.CounterValue("x"), 1u);
    EXPECT_EQ(ab.CounterValue("y"), 5u);
    EXPECT_EQ(ab.CounterValue("z"), 4u);
    // Gauges are levels, not flows: the merge normalizes them into the
    // labeled space instead of silently summing, so a cluster snapshot
    // says which aggregation each value carries.
    ASSERT_EQ(ab.gauges.size(), 2u);
    EXPECT_EQ(ab.gauges[0].first, "depth_max");
    EXPECT_EQ(ab.gauges[0].second, 6);
    EXPECT_EQ(ab.gauges[1].first, "depth_total");
    EXPECT_EQ(ab.gauges[1].second, 10);
    // Re-merging an already-labeled snapshot keeps combining under each
    // label's own rule (max stays max, total keeps summing).
    MetricsSnapshot again = ab;
    again.MergeFrom(ra.Snapshot());
    ASSERT_EQ(again.gauges.size(), 2u);
    EXPECT_EQ(again.gauges[0].second, 6);
    EXPECT_EQ(again.gauges[1].second, 14);
    const HistogramSnapshot* h = ab.FindHistogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
    EXPECT_EQ(h->min_nanos, 100u);
    EXPECT_EQ(h->max_nanos, 900u);
    // The same entries from either merge order (sorted-by-name makes the
    // rendered forms directly comparable).
    EXPECT_EQ(Rendered(ab), Rendered(ba));
}

TEST(MetricsTest, SnapshotJsonRoundTrip)
{
    MetricsRegistry registry;
    registry.counter("solver.queries")->Add(42);
    registry.gauge("queue.depth")->Set(-7);
    Histogram* histogram = registry.histogram("solver.solve_seconds");
    histogram->RecordNanos(1);
    histogram->RecordNanos(1'000'000);
    const MetricsSnapshot original = registry.Snapshot();

    const std::string text = Rendered(original);
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(text, &parsed, &error)) << error;
    MetricsSnapshot decoded;
    ASSERT_TRUE(DecodeMetricsSnapshot(parsed, &decoded, &error)) << error;
    EXPECT_EQ(Rendered(decoded), text);
}

// --------------------------------------------------------------------------
// Phase tracer.

TEST(TraceTest, DisabledTracerRecordsNothing)
{
    PhaseTracer tracer;
    {
        CHEF_OBS_SPAN(span, &tracer, "test/span", "test");
        span.set_detail("ignored");
    }
    {
        CHEF_OBS_SPAN(span, static_cast<PhaseTracer*>(nullptr),
                      "test/null", "test");
    }
    tracer.RecordInstant("test/instant", "test");
    EXPECT_EQ(tracer.ApproxEventCount(), 0u);
    EXPECT_TRUE(tracer.TakeEvents().empty());
}

TEST(TraceTest, ScopedSpansNestAndCarryDetail)
{
    PhaseTracer tracer;
    tracer.set_enabled(true);
    tracer.set_pid(3);
    {
        ScopedSpan outer(&tracer, "outer", "test");
        ScopedSpan inner(&tracer, "inner", "test");
        inner.set_detail("d1");
    }
    std::vector<TraceEvent> events = tracer.TakeEvents();
    ASSERT_EQ(events.size(), 2u);
    // Inner closes first (LIFO destruction).
    const TraceEvent& inner = events[0].name == "inner" ? events[0]
                                                        : events[1];
    const TraceEvent& outer = events[0].name == "inner" ? events[1]
                                                        : events[0];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(inner.detail, "d1");
    EXPECT_EQ(inner.pid, 3u);
    EXPECT_EQ(inner.tid, outer.tid);
    EXPECT_GE(inner.ts_us, outer.ts_us);
    EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
    // Drained means drained.
    EXPECT_TRUE(tracer.TakeEvents().empty());
}

TEST(TraceTest, EnabledLatchesAtSpanOpen)
{
    PhaseTracer tracer;
    {
        ScopedSpan span(&tracer, "opened-disabled", "test");
        tracer.set_enabled(true);  // Must not make the span record.
    }
    EXPECT_TRUE(tracer.TakeEvents().empty());
    {
        ScopedSpan span(&tracer, "opened-enabled", "test");
        tracer.set_enabled(false);  // Latched open: still records.
    }
    EXPECT_EQ(tracer.TakeEvents().size(), 1u);
}

TEST(TraceTest, ChromeTraceIsStrictJson)
{
    PhaseTracer tracer;
    tracer.set_enabled(true);
    tracer.RecordSpan("solver/solve", "solver", 10, 5,
                      "tricky \"detail\"\nwith\tescapes");
    tracer.RecordInstant("sched/plateau_cancel", "service", "py/x");
    const std::string text = RenderChromeTrace(tracer.TakeEvents());
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(text, &parsed, &error)) << error;
    const JsonValue* events = parsed.Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->items.size(), 2u);
    std::string ph;
    EXPECT_TRUE(events->items[0].GetString("ph", &ph));
    EXPECT_EQ(ph, "X");
}

TEST(TraceTest, WireEventsRoundTrip)
{
    PhaseTracer tracer;
    tracer.set_enabled(true);
    tracer.set_pid(2);
    tracer.RecordSpan("engine/run", "engine", 100, 50, "run 7");
    tracer.RecordSpan("solver/sat", "solver", 120, 10);
    const std::vector<TraceEvent> original = tracer.TakeEvents();

    JsonWriter json;
    WriteTraceEvents(json, original);
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(json.Take(), &parsed, &error)) << error;
    std::vector<TraceEvent> decoded;
    ASSERT_TRUE(DecodeTraceEvents(parsed, &decoded, &error)) << error;
    ASSERT_EQ(decoded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(decoded[i].name, original[i].name);
        EXPECT_EQ(decoded[i].cat, original[i].cat);
        EXPECT_EQ(decoded[i].detail, original[i].detail);
        EXPECT_EQ(decoded[i].ts_us, original[i].ts_us);
        EXPECT_EQ(decoded[i].dur_us, original[i].dur_us);
        EXPECT_EQ(decoded[i].tid, original[i].tid);
        EXPECT_EQ(decoded[i].pid, original[i].pid);
    }
}

// --------------------------------------------------------------------------
// End-to-end: a 2-shard loopback batch with tracing on. The rendered
// trace must be strict JSON, spans must arrive from both shards, and no
// job span may close before a solver span it contains (the nesting
// contract: ScopedSpan destruction is LIFO per thread, so a child that
// outlives its parent would mean a span leaked across job boundaries).

struct ParsedSpan {
    std::string name;
    uint64_t pid = 0;
    uint64_t tid = 0;
    uint64_t ts = 0;
    uint64_t dur = 0;
};

TEST(TraceTest, LoopbackShardTraceIsValidAndNested)
{
    std::vector<chef::service::JobSpec> jobs;
    int copy = 0;
    for (const char* workload :
         {"py/argparse", "py/simplejson", "lua/cliargs", "py/argparse"}) {
        chef::service::JobSpec spec;
        spec.workload = workload;
        spec.label = std::string(workload) + "#" + std::to_string(copy);
        spec.seed = static_cast<uint64_t>(++copy);
        spec.options.max_runs = 6;
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }

    shard::ShardCoordinator::Options options;
    options.service.seed = 7;
    options.service.tracing = true;
    shard::ShardCoordinator coordinator(options);
    std::string error;
    ASSERT_TRUE(shard::RunLoopbackShards(&coordinator, jobs, 2, &error))
        << error;

    // Strict-parse the rendered Chrome trace.
    const std::string text = coordinator.RenderTrace();
    JsonValue parsed;
    ASSERT_TRUE(ParseJson(text, &parsed, &error)) << error;
    const JsonValue* events = parsed.Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_FALSE(events->items.empty());

    std::vector<ParsedSpan> spans;
    bool saw_pid[3] = {false, false, false};
    for (const JsonValue& event : events->items) {
        ParsedSpan span;
        ASSERT_TRUE(event.GetString("name", &span.name));
        ASSERT_TRUE(event.GetUint64("pid", &span.pid));
        ASSERT_TRUE(event.GetUint64("tid", &span.tid));
        ASSERT_TRUE(event.GetUint64("ts", &span.ts));
        ASSERT_TRUE(event.GetUint64("dur", &span.dur));
        if (span.pid < 3) {
            saw_pid[span.pid] = true;
        }
        spans.push_back(std::move(span));
    }
    // Workers stamp shard_id + 1; both shards must have contributed.
    EXPECT_FALSE(saw_pid[0]);
    EXPECT_TRUE(saw_pid[1]);
    EXPECT_TRUE(saw_pid[2]);

    // Nesting: every solver span that starts inside a job span on the
    // same (pid, tid) must also end inside it.
    size_t checked = 0;
    for (const ParsedSpan& solver : spans) {
        if (solver.name.rfind("solver/", 0) != 0) {
            continue;
        }
        for (const ParsedSpan& job : spans) {
            if (job.name != "job" || job.pid != solver.pid ||
                job.tid != solver.tid) {
                continue;
            }
            if (solver.ts >= job.ts && solver.ts < job.ts + job.dur) {
                EXPECT_LE(solver.ts + solver.dur, job.ts + job.dur)
                    << "solver span closes after its enclosing job span";
                ++checked;
            }
        }
    }
    EXPECT_GT(checked, 0u)
        << "expected solver spans nested inside job spans";

    // The merged report's telemetry section: cluster counters must equal
    // the per-shard sum.
    JsonValue report;
    ASSERT_TRUE(ParseJson(coordinator.RenderMergedReport(), &report,
                          &error))
        << error;
    const JsonValue* telemetry = report.Find("telemetry");
    ASSERT_NE(telemetry, nullptr);
    const JsonValue* tele_shards = telemetry->Find("shards");
    const JsonValue* cluster = telemetry->Find("cluster");
    ASSERT_NE(tele_shards, nullptr);
    ASSERT_NE(cluster, nullptr);
    ASSERT_EQ(tele_shards->items.size(), 2u);
    uint64_t shard_sum = 0;
    for (const JsonValue& entry : tele_shards->items) {
        const JsonValue* metrics = entry.Find("metrics");
        ASSERT_NE(metrics, nullptr);
        const JsonValue* counters = metrics->Find("counters");
        ASSERT_NE(counters, nullptr);
        uint64_t value = 0;
        counters->GetUint64("solver.queries", &value);
        shard_sum += value;
    }
    uint64_t cluster_queries = 0;
    ASSERT_NE(cluster->Find("counters"), nullptr);
    cluster->Find("counters")->GetUint64("solver.queries",
                                         &cluster_queries);
    EXPECT_GT(cluster_queries, 0u);
    EXPECT_EQ(cluster_queries, shard_sum);
    // In-memory view agrees with the rendered one.
    EXPECT_EQ(coordinator.cluster_telemetry().CounterValue(
                  "solver.queries"),
              cluster_queries);
}

}  // namespace
}  // namespace chef::obs
