/// \file
/// Tests for the fault-tolerant shard runtime: the seeded
/// FaultInjectingTransport decorator (drop / truncate / corrupt / close
/// scripts, deterministic replay), the v2.2 heartbeat wire frames, and
/// the coordinator's failure paths end-to-end over loopback shards —
/// heartbeat timeout, mid-batch transport close with deterministic
/// requeue onto the survivor, malformed frames condemning the shard
/// (not the batch), quorum degradation to a partial report, and the
/// worker cancelling its in-flight batch when the coordinator vanishes.

#include "shard/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "shard/coordinator.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "shard/worker.h"

namespace chef::shard {
namespace {

using service::JobResult;
using service::JobSpec;
using service::JobStatus;

// ---------------------------------------------------------------------------
// FaultInjectingTransport unit tests.
// ---------------------------------------------------------------------------

TEST(FaultTransport, DropSwallowsExactlyTheNthSend)
{
    LoopbackPair pair = CreateLoopbackPair();
    FaultInjectingTransport faulty(
        pair.a.get(),
        {{FaultRule::Point::kSend, FaultRule::Action::kDrop, 2}});

    EXPECT_TRUE(faulty.Send("one"));
    EXPECT_TRUE(faulty.Send("two"));  // Swallowed, but reports success.
    EXPECT_TRUE(faulty.Send("three"));
    EXPECT_EQ(faulty.sends(), 3u);
    EXPECT_EQ(faulty.faults_fired(), 1u);

    std::string message;
    ASSERT_EQ(pair.b->Receive(&message, -1),
              Transport::RecvStatus::kMessage);
    EXPECT_EQ(message, "one");
    ASSERT_EQ(pair.b->Receive(&message, -1),
              Transport::RecvStatus::kMessage);
    EXPECT_EQ(message, "three");
}

TEST(FaultTransport, ReceiveDropLooksLikeAQuietPoll)
{
    LoopbackPair pair = CreateLoopbackPair();
    FaultInjectingTransport faulty(
        pair.b.get(),
        {{FaultRule::Point::kReceive, FaultRule::Action::kDrop, 1}});

    ASSERT_TRUE(pair.a->Send("lost"));
    ASSERT_TRUE(pair.a->Send("kept"));
    std::string message;
    // The first delivered message is discarded; the caller just sees an
    // empty poll, exactly like a lossy datagram link.
    EXPECT_EQ(faulty.Receive(&message, -1),
              Transport::RecvStatus::kTimeout);
    EXPECT_TRUE(message.empty());
    ASSERT_EQ(faulty.Receive(&message, -1),
              Transport::RecvStatus::kMessage);
    EXPECT_EQ(message, "kept");
    EXPECT_EQ(faulty.receives(), 2u);
}

TEST(FaultTransport, TruncateYieldsAMalformedStrictPrefix)
{
    LoopbackPair pair = CreateLoopbackPair();
    FaultInjectingTransport faulty(
        pair.a.get(),
        {{FaultRule::Point::kSend, FaultRule::Action::kTruncate, 1}},
        /*seed=*/2014);

    const std::string hello = EncodeHello();
    ASSERT_TRUE(faulty.Send(hello));
    std::string wire;
    ASSERT_EQ(pair.b->Receive(&wire, -1), Transport::RecvStatus::kMessage);
    // A strict prefix: never empty, never the whole frame.
    ASSERT_FALSE(wire.empty());
    ASSERT_LT(wire.size(), hello.size());
    EXPECT_EQ(hello.compare(0, wire.size(), wire), 0);
    // And a strict prefix of a JSON object must fail to decode.
    Message decoded;
    std::string decode_error;
    EXPECT_FALSE(DecodeMessage(wire, &decoded, &decode_error));
    EXPECT_FALSE(decode_error.empty());
}

TEST(FaultTransport, CorruptionIsDeterministicForASeed)
{
    const std::string frame = EncodeHello();
    const std::vector<FaultRule> script = {
        {FaultRule::Point::kSend, FaultRule::Action::kCorrupt, 1}};

    auto mangle_once = [&](uint64_t seed) {
        LoopbackPair pair = CreateLoopbackPair();
        FaultInjectingTransport faulty(pair.a.get(), script, seed);
        EXPECT_TRUE(faulty.Send(frame));
        std::string wire;
        EXPECT_EQ(pair.b->Receive(&wire, -1),
                  Transport::RecvStatus::kMessage);
        return wire;
    };

    const std::string first = mangle_once(7);
    const std::string again = mangle_once(7);
    EXPECT_EQ(first, again);  // Same seed -> bit-identical mangling.
    EXPECT_NE(first, frame);  // ... and it really did corrupt something.
    EXPECT_EQ(first.size(), frame.size());
}

TEST(FaultTransport, CloseSeversTheChannelMidScript)
{
    LoopbackPair pair = CreateLoopbackPair();
    FaultInjectingTransport faulty(
        pair.a.get(),
        {{FaultRule::Point::kSend, FaultRule::Action::kClose, 2}});

    EXPECT_TRUE(faulty.Send("first"));
    // The closing send itself reports success (the process died mid-
    // write, from the peer's point of view); later sends fail for real.
    EXPECT_TRUE(faulty.Send("second"));
    EXPECT_FALSE(faulty.Send("third"));

    std::string message;
    ASSERT_EQ(pair.b->Receive(&message, -1),
              Transport::RecvStatus::kMessage);
    EXPECT_EQ(message, "first");
    EXPECT_EQ(pair.b->Receive(&message, -1),
              Transport::RecvStatus::kClosed);
}

TEST(FaultTransport, DelayHoldsTheMessageThenDeliversIt)
{
    LoopbackPair pair = CreateLoopbackPair();
    FaultRule rule;
    rule.point = FaultRule::Point::kSend;
    rule.action = FaultRule::Action::kDelay;
    rule.nth = 1;
    rule.delay_seconds = 0.05;
    FaultInjectingTransport faulty(pair.a.get(), {rule});

    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(faulty.Send("late"));
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(waited, 0.045);
    std::string message;
    ASSERT_EQ(pair.b->Receive(&message, -1),
              Transport::RecvStatus::kMessage);
    EXPECT_EQ(message, "late");
}

// ---------------------------------------------------------------------------
// Heartbeat wire frames (v2.2).
// ---------------------------------------------------------------------------

TEST(WireHeartbeat, RoundTripsLivenessAndStreamedResults)
{
    HeartbeatMessage beat;
    beat.shard_id = 3;
    beat.sequence = 41;
    JobResult done;
    done.job_index = 17;
    done.workload = "py/argparse";
    done.label = "py/argparse#17";
    done.status = JobStatus::kCompleted;
    done.seed_used = 2014;
    done.num_test_cases = 9;
    done.num_relevant_test_cases = 4;
    beat.results.push_back(done);

    Message decoded;
    std::string error;
    ASSERT_TRUE(DecodeMessage(EncodeHeartbeat(beat), &decoded, &error))
        << error;
    EXPECT_EQ(decoded.type, MessageType::kHeartbeat);
    EXPECT_EQ(decoded.heartbeat.shard_id, 3u);
    EXPECT_EQ(decoded.heartbeat.sequence, 41u);
    ASSERT_EQ(decoded.heartbeat.results.size(), 1u);
    const JobResult& round = decoded.heartbeat.results[0];
    EXPECT_EQ(round.job_index, 17u);
    EXPECT_EQ(round.workload, "py/argparse");
    EXPECT_EQ(round.status, JobStatus::kCompleted);
    EXPECT_EQ(round.seed_used, 2014u);
    EXPECT_EQ(round.num_test_cases, 9u);
    EXPECT_EQ(round.num_relevant_test_cases, 4u);
}

TEST(WireHeartbeat, RunRequestOmitsCadenceAtZeroAndRoundTripsIt)
{
    RunRequest request;
    request.shard_id = 0;
    request.num_shards = 1;

    // Heartbeats off: the v2.2 key must be absent so the frame stays
    // byte-compatible with what a v2.1 coordinator would have sent.
    request.service.heartbeat_interval_seconds = 0.0;
    const std::string quiet = EncodeRun(request);
    EXPECT_EQ(quiet.find("heartbeat_interval_seconds"), std::string::npos);
    Message decoded;
    std::string error;
    ASSERT_TRUE(DecodeMessage(quiet, &decoded, &error)) << error;
    EXPECT_EQ(decoded.run.service.heartbeat_interval_seconds, 0.0);

    request.service.heartbeat_interval_seconds = 0.25;
    ASSERT_TRUE(DecodeMessage(EncodeRun(request), &decoded, &error))
        << error;
    EXPECT_EQ(decoded.run.service.heartbeat_interval_seconds, 0.25);
}

// ---------------------------------------------------------------------------
// Coordinator failure paths over loopback shards.
// ---------------------------------------------------------------------------

std::vector<JobSpec>
SmallBatch(uint64_t max_runs)
{
    std::vector<JobSpec> jobs;
    int copy = 0;
    for (const char* id :
         {"py/argparse", "lua/cliargs", "py/simplejson", "lua/haml"}) {
        JobSpec spec;
        spec.workload = id;
        spec.label = std::string(id) + "#" + std::to_string(copy);
        spec.seed = static_cast<uint64_t>(++copy);
        spec.options.max_runs = max_runs;
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

ShardCoordinator::Options
FaultyCoordinatorOptions()
{
    ShardCoordinator::Options options;
    options.service.seed = 2014;
    options.service.num_workers = 1;
    return options;
}

/// Runs \p coordinator with shard 0 served by a real worker and shard 1
/// by \p misbehave — a script acting directly on the worker-side
/// transport endpoint.
bool
RunWithFaultyShard(ShardCoordinator* coordinator,
                   const std::vector<JobSpec>& jobs,
                   const std::function<void(Transport*)>& misbehave,
                   std::string* error)
{
    LoopbackPair good = CreateLoopbackPair();
    LoopbackPair bad = CreateLoopbackPair();
    const std::vector<Transport*> side = {good.a.get(), bad.a.get()};
    std::thread survivor([&] {
        ShardWorker worker(ShardWorker::Options{}, good.b.get());
        worker.Serve();
    });
    std::thread faulty([&] { misbehave(bad.b.get()); });
    const bool ok = coordinator->Run(jobs, side, error);
    good.a->Close();
    bad.a->Close();
    survivor.join();
    faulty.join();
    return ok;
}

/// Blocks until the peer closes (the coordinator condemning the shard).
void
DrainUntilClosed(Transport* endpoint)
{
    std::string line;
    while (endpoint->Receive(&line, -1) != Transport::RecvStatus::kClosed) {
    }
}

TEST(CoordinatorFaults, HeartbeatTimeoutCondemnsASilentShard)
{
    const std::vector<JobSpec> jobs = SmallBatch(4);
    ShardCoordinator::Options options = FaultyCoordinatorOptions();
    options.heartbeat_interval_seconds = 0.05;
    options.heartbeat_timeout_seconds = 0.5;

    // A single shard that greets, accepts its batch, then never speaks
    // again — the SIGSTOP shape: the pipe stays open, so only the
    // heartbeat deadline can catch it.
    LoopbackPair pair = CreateLoopbackPair();
    std::thread mute([&] {
        ASSERT_TRUE(pair.b->Send(EncodeHello()));
        DrainUntilClosed(pair.b.get());
    });
    ShardCoordinator coordinator(options);
    std::string error;
    const bool ok =
        coordinator.Run(jobs, {pair.a.get()}, &error);
    pair.a->Close();
    mute.join();

    // Death degrades the batch; it does not fail it.
    EXPECT_TRUE(ok) << error;
    EXPECT_TRUE(coordinator.degraded());
    EXPECT_EQ(coordinator.fault().deaths, 1u);
    ASSERT_EQ(coordinator.shards().size(), 1u);
    EXPECT_TRUE(coordinator.shards()[0].dead);
    EXPECT_NE(coordinator.shards()[0].death_cause.find("heartbeat timeout"),
              std::string::npos)
        << coordinator.shards()[0].death_cause;
    // The whole partition was requeued, but with no survivor the quorum
    // broke and every job resolved to a cancelled placeholder.
    EXPECT_EQ(coordinator.fault().jobs_requeued, jobs.size());
    ASSERT_EQ(coordinator.results().size(), jobs.size());
    for (const JobResult& result : coordinator.results()) {
        EXPECT_EQ(result.status, JobStatus::kCancelled);
        EXPECT_EQ(result.stop_source, "shard_death");
    }
}

TEST(CoordinatorFaults, MidBatchCloseRequeuesDeterministically)
{
    const std::vector<JobSpec> jobs = SmallBatch(6);

    // Clean single-shard reference run.
    ShardCoordinator reference(FaultyCoordinatorOptions());
    std::string error;
    ASSERT_TRUE(RunLoopbackShards(&reference, jobs, 1, &error)) << error;

    // Two shards; shard 1 accepts its batch and drops dead.
    ShardCoordinator coordinator(FaultyCoordinatorOptions());
    const bool ok = RunWithFaultyShard(
        &coordinator, jobs,
        [](Transport* endpoint) {
            ASSERT_TRUE(endpoint->Send(EncodeHello()));
            std::string line;
            Message message;
            std::string decode_error;
            while (endpoint->Receive(&line, -1) ==
                   Transport::RecvStatus::kMessage) {
                if (DecodeMessage(line, &message, &decode_error) &&
                    message.type == MessageType::kRun) {
                    endpoint->Close();  // SIGKILL, as the wire sees it.
                    return;
                }
            }
        },
        &error);

    EXPECT_TRUE(ok) << error;
    EXPECT_TRUE(coordinator.degraded());
    EXPECT_EQ(coordinator.fault().deaths, 1u);
    EXPECT_GT(coordinator.fault().jobs_requeued, 0u);
    ASSERT_EQ(coordinator.shards().size(), 2u);
    EXPECT_FALSE(coordinator.shards()[0].dead);
    EXPECT_TRUE(coordinator.shards()[1].dead);
    EXPECT_NE(coordinator.shards()[1].death_cause.find("transport closed"),
              std::string::npos)
        << coordinator.shards()[1].death_cause;

    // The requeued jobs reran from their global-index-derived seeds, so
    // every per-job result matches the undisturbed reference run.
    ASSERT_EQ(coordinator.results().size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobResult& a = reference.results()[i];
        const JobResult& b = coordinator.results()[i];
        SCOPED_TRACE(jobs[i].label);
        EXPECT_EQ(b.status, JobStatus::kCompleted);
        EXPECT_EQ(a.seed_used, b.seed_used);
        EXPECT_EQ(a.num_test_cases, b.num_test_cases);
        EXPECT_EQ(a.num_relevant_test_cases, b.num_relevant_test_cases);
        EXPECT_EQ(a.engine_stats.ll_paths, b.engine_stats.ll_paths);
        EXPECT_EQ(a.engine_stats.hl_paths, b.engine_stats.hl_paths);
    }
    // Corpus parity — the paper's merged-corpus invariant, under fire.
    EXPECT_EQ(reference.corpus().Keys(), coordinator.corpus().Keys());
}

TEST(CoordinatorFaults, MalformedFrameCondemnsTheShardNotTheBatch)
{
    const std::vector<JobSpec> jobs = SmallBatch(4);
    ShardCoordinator coordinator(FaultyCoordinatorOptions());
    std::string error;
    const bool ok = RunWithFaultyShard(
        &coordinator, jobs,
        [](Transport* endpoint) {
            ASSERT_TRUE(endpoint->Send(EncodeHello()));
            std::string line;
            Message message;
            std::string decode_error;
            while (endpoint->Receive(&line, -1) ==
                   Transport::RecvStatus::kMessage) {
                if (DecodeMessage(line, &message, &decode_error) &&
                    message.type == MessageType::kRun) {
                    endpoint->Send("@@garbage frame, not json@@");
                    DrainUntilClosed(endpoint);
                    return;
                }
            }
        },
        &error);

    EXPECT_TRUE(ok) << error;
    EXPECT_TRUE(coordinator.degraded());
    ASSERT_EQ(coordinator.shards().size(), 2u);
    EXPECT_TRUE(coordinator.shards()[1].dead);
    const std::string& cause = coordinator.shards()[1].death_cause;
    EXPECT_NE(cause.find("malformed message"), std::string::npos) << cause;
    // The post-mortem keeps a snippet of the offending frame.
    EXPECT_NE(cause.find("garbage frame"), std::string::npos) << cause;
    // The survivor absorbed the orphaned jobs: a full, valid report.
    ASSERT_EQ(coordinator.results().size(), jobs.size());
    for (const JobResult& result : coordinator.results()) {
        EXPECT_EQ(result.status, JobStatus::kCompleted) << result.error;
    }
}

TEST(CoordinatorFaults, BrokenQuorumDegradesToAPartialReport)
{
    const std::vector<JobSpec> jobs = SmallBatch(4);
    ShardCoordinator::Options options = FaultyCoordinatorOptions();
    options.min_live_shards = 2;  // Both shards required.
    ShardCoordinator coordinator(options);
    std::string error;
    const bool ok = RunWithFaultyShard(
        &coordinator, jobs,
        [](Transport* endpoint) {
            ASSERT_TRUE(endpoint->Send(EncodeHello()));
            std::string line;
            Message message;
            std::string decode_error;
            while (endpoint->Receive(&line, -1) ==
                   Transport::RecvStatus::kMessage) {
                if (DecodeMessage(line, &message, &decode_error) &&
                    message.type == MessageType::kRun) {
                    endpoint->Close();
                    return;
                }
            }
        },
        &error);

    // Still true: a degraded partial report, not a batch error.
    EXPECT_TRUE(ok) << error;
    EXPECT_TRUE(coordinator.degraded());
    ASSERT_EQ(coordinator.results().size(), jobs.size());
    size_t completed = 0;
    size_t lost = 0;
    for (const JobResult& result : coordinator.results()) {
        if (result.status == JobStatus::kCompleted) {
            ++completed;
        } else {
            ASSERT_EQ(result.status, JobStatus::kCancelled);
            EXPECT_EQ(result.stop_source, "shard_death");
            EXPECT_NE(result.error.find("insufficient live shards"),
                      std::string::npos)
                << result.error;
            ++lost;
        }
    }
    // The survivor's own partition completed; the dead shard's jobs
    // were not requeued below quorum.
    EXPECT_GT(completed, 0u);
    EXPECT_GT(lost, 0u);
}

TEST(CoordinatorFaults, WorkerCancelsInFlightBatchWhenCoordinatorDies)
{
    LoopbackPair pair = CreateLoopbackPair();
    bool served_clean = true;
    std::thread worker_thread([&] {
        ShardWorker worker(ShardWorker::Options{}, pair.b.get());
        served_clean = worker.Serve();
    });

    std::string line;
    ASSERT_EQ(pair.a->Receive(&line, -1), Transport::RecvStatus::kMessage);
    Message hello;
    std::string error;
    ASSERT_TRUE(DecodeMessage(line, &hello, &error)) << error;
    ASSERT_EQ(hello.type, MessageType::kHello);

    // A batch that would run ~forever if nobody cancelled it.
    RunRequest request;
    request.shard_id = 0;
    request.num_shards = 1;
    service::ExplorationService::Options service_options;
    service_options.seed = 2014;
    service_options.num_workers = 1;
    request.service = ServiceConfig::FromServiceOptions(service_options);
    WireJob job;
    job.job_index = 0;
    job.spec.workload = "py/argparse";
    job.spec.options.max_runs = 100000000;
    job.spec.options.max_seconds = 1e9;
    job.spec.options.collect_timeline = false;
    request.jobs.push_back(job);
    ASSERT_TRUE(pair.a->Send(EncodeRun(request)));

    // Let the batch actually start, then vanish.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    pair.a->Close();

    const auto t0 = std::chrono::steady_clock::now();
    worker_thread.join();
    const double unwound =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Serve() reports the dirty exit (a real worker process would exit
    // nonzero) and does so promptly — the stop source cancels between
    // runs, not after the hundred-million-run budget.
    EXPECT_FALSE(served_clean);
    EXPECT_LT(unwound, 30.0);
}

}  // namespace
}  // namespace chef::shard
