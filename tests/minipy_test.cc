/// \file
/// MiniPy interpreter tests: concrete execution of guest programs. These
/// pin down the language semantics the symbolic engine then explores.

#include <gtest/gtest.h>

#include "minipy/vm.h"

namespace chef::minipy {
namespace {

struct RunResult {
    std::string output;
    VmOutcome outcome;
};

RunResult
RunPy(const std::string& source)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    lowlevel::LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());

    CompileResult compiled = Compile(source);
    if (!compiled.ok) {
        return {"<compile error: " + compiled.error + " at line " +
                    std::to_string(compiled.error_line) + ">",
                {}};
    }
    Vm vm(&rt, compiled.program, Vm::Options{});
    RunResult result;
    result.outcome = vm.RunModule();
    result.output = vm.output();
    return result;
}

std::string
Out(const std::string& source)
{
    return RunPy(source).output;
}

TEST(MiniPyBasics, PrintLiterals)
{
    EXPECT_EQ(Out("print(42)\n"), "42\n");
    EXPECT_EQ(Out("print('hello')\n"), "hello\n");
    EXPECT_EQ(Out("print(True, False, None)\n"), "True False None\n");
    EXPECT_EQ(Out("print(-7)\n"), "-7\n");
    EXPECT_EQ(Out("print(0x1f)\n"), "31\n");
}

TEST(MiniPyBasics, Arithmetic)
{
    EXPECT_EQ(Out("print(2 + 3 * 4)\n"), "14\n");
    EXPECT_EQ(Out("print((2 + 3) * 4)\n"), "20\n");
    EXPECT_EQ(Out("print(7 // 2, 7 % 2)\n"), "3 1\n");
    EXPECT_EQ(Out("print(-7 // 2, -7 % 2)\n"), "-4 1\n");  // Floor div.
    EXPECT_EQ(Out("print(7 // -2, 7 % -2)\n"), "-4 -1\n");
    EXPECT_EQ(Out("print(2 - 5)\n"), "-3\n");
    EXPECT_EQ(Out("print(1 << 4, 256 >> 2)\n"), "16 64\n");
    EXPECT_EQ(Out("print(6 & 3, 6 | 3, 6 ^ 3)\n"), "2 7 5\n");
    EXPECT_EQ(Out("print(~5)\n"), "-6\n");
}

TEST(MiniPyBasics, Comparisons)
{
    EXPECT_EQ(Out("print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4)\n"),
              "True True False True\n");
    EXPECT_EQ(Out("print(1 == 1, 1 != 1)\n"), "True False\n");
    EXPECT_EQ(Out("print('ab' == 'ab', 'ab' == 'ac')\n"),
              "True False\n");
    EXPECT_EQ(Out("print('ab' < 'b', 'abc' < 'abd')\n"), "True True\n");
    EXPECT_EQ(Out("print(True == 1, False == 0)\n"), "True True\n");
    EXPECT_EQ(Out("print(1 == '1')\n"), "False\n");
    EXPECT_EQ(Out("print(None == None, None is None)\n"), "True True\n");
}

TEST(MiniPyBasics, BoolOpsShortCircuit)
{
    EXPECT_EQ(Out("print(1 and 2)\n"), "2\n");
    EXPECT_EQ(Out("print(0 and 2)\n"), "0\n");
    EXPECT_EQ(Out("print(0 or 'x')\n"), "x\n");
    EXPECT_EQ(Out("print(not 0, not 'a')\n"), "True False\n");
    // Short circuit avoids the crash.
    EXPECT_EQ(Out("d = {}\n"
                  "print(False and d['missing'])\n"),
              "False\n");
}

TEST(MiniPyControlFlow, IfElifElse)
{
    const char* program = R"(x = 7
if x > 10:
    print('big')
elif x > 5:
    print('medium')
else:
    print('small')
)";
    EXPECT_EQ(Out(program), "medium\n");
}

TEST(MiniPyControlFlow, WhileWithBreakContinue)
{
    const char* program = R"(i = 0
total = 0
while True:
    i = i + 1
    if i > 10:
        break
    if i % 2 == 0:
        continue
    total = total + i
print(total)
)";
    EXPECT_EQ(Out(program), "25\n");
}

TEST(MiniPyControlFlow, ForOverListAndRange)
{
    EXPECT_EQ(Out("for x in [1, 2, 3]:\n    print(x)\n"), "1\n2\n3\n");
    EXPECT_EQ(Out("t = 0\nfor i in range(5):\n    t = t + i\nprint(t)\n"),
              "10\n");
    EXPECT_EQ(Out("for i in range(2, 5):\n    print(i)\n"), "2\n3\n4\n");
    EXPECT_EQ(Out("for i in range(6, 0, -2):\n    print(i)\n"),
              "6\n4\n2\n");
    EXPECT_EQ(Out("for c in 'abc':\n    print(c)\n"), "a\nb\nc\n");
}

TEST(MiniPyControlFlow, ForWithBreakAndTupleUnpack)
{
    const char* program = R"(pairs = [(1, 'a'), (2, 'b'), (3, 'c')]
for n, s in pairs:
    if n == 2:
        print('found', s)
        break
)";
    EXPECT_EQ(Out(program), "found b\n");
}

TEST(MiniPyFunctions, DefCallReturn)
{
    const char* program = R"(def add(a, b):
    return a + b
print(add(2, 3))
)";
    EXPECT_EQ(Out(program), "5\n");
}

TEST(MiniPyFunctions, DefaultsAndKeywords)
{
    const char* program = R"(def greet(name, greeting='hello', punct='!'):
    return greeting + ' ' + name + punct
print(greet('world'))
print(greet('bob', 'hi'))
print(greet('eve', punct='?'))
print(greet(name='zed', greeting='yo'))
)";
    EXPECT_EQ(Out(program), "hello world!\nhi bob!\nhello eve?\nyo zed!\n");
}

TEST(MiniPyFunctions, Recursion)
{
    const char* program = R"(def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
print(fib(10))
)";
    EXPECT_EQ(Out(program), "55\n");
}

TEST(MiniPyFunctions, RecursionLimit)
{
    const char* program = R"(def loop(n):
    return loop(n + 1)
try:
    loop(0)
except RecursionError:
    print('caught')
)";
    EXPECT_EQ(Out(program), "caught\n");
}

TEST(MiniPyFunctions, GlobalsAndLocals)
{
    const char* program = R"(counter = 0
def bump():
    global counter
    counter = counter + 1
def shadow():
    counter = 99
    return counter
bump()
bump()
print(counter, shadow(), counter)
)";
    EXPECT_EQ(Out(program), "2 99 2\n");
}

TEST(MiniPyFunctions, Lambda)
{
    EXPECT_EQ(Out("f = lambda x, y: x * y + 1\nprint(f(3, 4))\n"),
              "13\n");
}

TEST(MiniPyStrings, MethodsBasics)
{
    EXPECT_EQ(Out("print('user@host'.find('@'))\n"), "4\n");
    EXPECT_EQ(Out("print('abc'.find('z'))\n"), "-1\n");
    EXPECT_EQ(Out("print('a,b,,c'.split(','))\n"),
              "['a', 'b', '', 'c']\n");
    EXPECT_EQ(Out("print('  hi  '.strip())\n"), "hi\n");
    EXPECT_EQ(Out("print('Hello'.lower(), 'Hello'.upper())\n"),
              "hello HELLO\n");
    EXPECT_EQ(Out("print('ab cd'.startswith('ab'), "
                  "'ab cd'.endswith('cd'))\n"),
              "True True\n");
    EXPECT_EQ(Out("print('-'.join(['a', 'b', 'c']))\n"), "a-b-c\n");
    EXPECT_EQ(Out("print('aXbXc'.replace('X', '--'))\n"), "a--b--c\n");
    EXPECT_EQ(Out("print('banana'.count('an'))\n"), "2\n");
    EXPECT_EQ(Out("print('123'.isdigit(), '12a'.isdigit(), "
                  "''.isdigit())\n"),
              "True False False\n");
    EXPECT_EQ(Out("print('one two'.split())\n"), "['one', 'two']\n");
}

TEST(MiniPyStrings, IndexSliceConcatRepeat)
{
    EXPECT_EQ(Out("s = 'hello'\nprint(s[0], s[4], s[-1])\n"),
              "h o o\n");
    EXPECT_EQ(Out("s = 'hello'\nprint(s[1:3], s[:2], s[3:], s[:])\n"),
              "el he lo hello\n");
    EXPECT_EQ(Out("print('ab' + 'cd')\n"), "abcd\n");
    EXPECT_EQ(Out("print('ab' * 3)\n"), "ababab\n");
    EXPECT_EQ(Out("print(len('chef'))\n"), "4\n");
    EXPECT_EQ(Out("print('e' in 'chef', 'z' in 'chef')\n"),
              "True False\n");
    EXPECT_EQ(Out("print(ord('A'), chr(66))\n"), "65 B\n");
}

TEST(MiniPyStrings, Conversions)
{
    EXPECT_EQ(Out("print(int('42'), int('-17'), int(' 8 '))\n"),
              "42 -17 8\n");
    EXPECT_EQ(Out("print(str(42) + str(-3))\n"), "42-3\n");
    EXPECT_EQ(Out("try:\n    int('4x')\nexcept ValueError:\n"
                  "    print('bad')\n"),
              "bad\n");
}

TEST(MiniPyLists, CoreOps)
{
    EXPECT_EQ(Out("l = [1, 2]\nl.append(3)\nprint(l, len(l))\n"),
              "[1, 2, 3] 3\n");
    EXPECT_EQ(Out("l = [1, 2, 3]\nprint(l.pop(), l)\n"), "3 [1, 2]\n");
    EXPECT_EQ(Out("l = [1, 2, 3]\nprint(l.pop(0), l)\n"), "1 [2, 3]\n");
    EXPECT_EQ(Out("l = [1]\nl.extend([2, 3])\nprint(l)\n"),
              "[1, 2, 3]\n");
    EXPECT_EQ(Out("l = [1, 3]\nl.insert(1, 2)\nprint(l)\n"),
              "[1, 2, 3]\n");
    EXPECT_EQ(Out("print([10, 20, 30].index(20))\n"), "1\n");
    EXPECT_EQ(Out("l = [1, 2, 3]\nl.reverse()\nprint(l)\n"),
              "[3, 2, 1]\n");
    EXPECT_EQ(Out("print([1, 2, 2, 3].count(2))\n"), "2\n");
    EXPECT_EQ(Out("l = [1, 2]\nl[0] = 9\nprint(l)\n"), "[9, 2]\n");
    EXPECT_EQ(Out("print([1, 2] + [3])\n"), "[1, 2, 3]\n");
    EXPECT_EQ(Out("print([0] * 4)\n"), "[0, 0, 0, 0]\n");
    EXPECT_EQ(Out("print(2 in [1, 2], 5 in [1, 2])\n"), "True False\n");
    EXPECT_EQ(Out("l = [1, 2, 3, 4]\nprint(l[1:3])\n"), "[2, 3]\n");
}

TEST(MiniPyDicts, CoreOps)
{
    EXPECT_EQ(Out("d = {'a': 1, 'b': 2}\nprint(d['a'], d['b'])\n"),
              "1 2\n");
    EXPECT_EQ(Out("d = {}\nd['x'] = 5\nd['x'] = 6\nprint(d['x'], "
                  "len(d))\n"),
              "6 1\n");
    EXPECT_EQ(Out("d = {'a': 1}\nprint('a' in d, 'b' in d)\n"),
              "True False\n");
    EXPECT_EQ(Out("d = {'a': 1}\nprint(d.get('a'), d.get('b'), "
                  "d.get('b', 9))\n"),
              "1 None 9\n");
    EXPECT_EQ(Out("d = {'a': 1, 'b': 2}\nprint(d.keys())\n"),
              "['a', 'b']\n");
    EXPECT_EQ(Out("d = {'a': 1, 'b': 2}\nprint(d.items())\n"),
              "[('a', 1), ('b', 2)]\n");
    EXPECT_EQ(Out("d = {}\nprint(d.setdefault('k', []), d)\n"),
              "[] {'k': []}\n");
    EXPECT_EQ(Out("d = {'a': 1}\nprint(d.pop('a'), len(d))\n"), "1 0\n");
    EXPECT_EQ(Out("d = {1: 'x', 2: 'y'}\nprint(d[2])\n"), "y\n");
    EXPECT_EQ(Out("d = {'a': 1}\ntry:\n    d['zz']\nexcept KeyError:\n"
                  "    print('missing')\n"),
              "missing\n");
    EXPECT_EQ(Out("d = {}\nfor i in range(20):\n    d[i] = i * i\n"
                  "print(len(d), d[7], d[19])\n"),
              "20 49 361\n");  // Exercises rehashing.
}

TEST(MiniPyDicts, IterationOrder)
{
    EXPECT_EQ(Out("d = {'b': 2, 'a': 1}\nfor k in d:\n    print(k)\n"),
              "b\na\n");
}

TEST(MiniPyExceptions, RaiseCatch)
{
    const char* program = R"(try:
    raise ValueError('oops')
except ValueError as e:
    print('caught', e)
)";
    EXPECT_EQ(Out(program), "caught oops\n");
}

TEST(MiniPyExceptions, MatchingOrder)
{
    const char* program = R"(def f(k):
    try:
        if k == 0:
            raise KeyError('k')
        raise ValueError('v')
    except KeyError:
        return 'key'
    except ValueError:
        return 'value'
print(f(0), f(1))
)";
    EXPECT_EQ(Out(program), "key value\n");
}

TEST(MiniPyExceptions, BaseClassCatches)
{
    const char* program = R"(try:
    raise IndexError('x')
except Exception as e:
    print('generic', e)
)";
    EXPECT_EQ(Out(program), "generic x\n");
}

TEST(MiniPyExceptions, UncaughtPropagates)
{
    RunResult result = RunPy("raise RuntimeError('boom')\n");
    EXPECT_FALSE(result.outcome.ok);
    EXPECT_EQ(result.outcome.exception_type, "RuntimeError");
    EXPECT_EQ(result.outcome.exception_message, "boom");
}

TEST(MiniPyExceptions, ZeroDivisionAndIndexError)
{
    EXPECT_EQ(Out("try:\n    x = 1 // 0\nexcept ZeroDivisionError:\n"
                  "    print('div0')\n"),
              "div0\n");
    EXPECT_EQ(Out("l = [1]\ntry:\n    l[5]\nexcept IndexError:\n"
                  "    print('oob')\n"),
              "oob\n");
}

TEST(MiniPyExceptions, UserDefinedHierarchy)
{
    const char* program = R"(class AppError(Exception):
    pass
class ParseError(AppError):
    pass
try:
    raise ParseError('bad input')
except AppError as e:
    print('app error:', e)
)";
    EXPECT_EQ(Out(program), "app error: bad input\n");
}

TEST(MiniPyExceptions, NestedTryReRaise)
{
    const char* program = R"(def risky():
    try:
        raise ValueError('inner')
    except KeyError:
        print('wrong handler')
try:
    risky()
except ValueError as e:
    print('outer caught', e)
)";
    EXPECT_EQ(Out(program), "outer caught inner\n");
}

TEST(MiniPyExceptions, AssertStatement)
{
    EXPECT_EQ(Out("try:\n    assert 1 == 2, 'nope'\n"
                  "except AssertionError as e:\n    print('assert', e)\n"),
              "assert nope\n");
    EXPECT_EQ(Out("assert True\nprint('ok')\n"), "ok\n");
}

TEST(MiniPyClasses, BasicsAndMethods)
{
    const char* program = R"(class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y
    def dist2(self):
        return self.x * self.x + self.y * self.y
p = Point(3, 4)
print(p.x, p.y, p.dist2())
p.x = 6
print(p.dist2())
)";
    EXPECT_EQ(Out(program), "3 4 25\n52\n");
}

TEST(MiniPyClasses, Inheritance)
{
    const char* program = R"(class Animal:
    def __init__(self, name):
        self.name = name
    def speak(self):
        return self.name + ' makes a sound'
class Dog(Animal):
    def speak(self):
        return self.name + ' barks'
a = Animal('cat')
d = Dog('rex')
print(a.speak())
print(d.speak())
print(isinstance(d, Animal), isinstance(a, Dog))
)";
    EXPECT_EQ(Out(program),
              "cat makes a sound\nrex barks\nTrue False\n");
}

TEST(MiniPyClasses, ClassAttributes)
{
    const char* program = R"(class Config:
    DEBUG = False
    LIMIT = 10
print(Config.DEBUG, Config.LIMIT)
c = Config()
print(c.LIMIT)
)";
    EXPECT_EQ(Out(program), "False 10\n10\n");
}

TEST(MiniPyBuiltins, MinMaxAbs)
{
    EXPECT_EQ(Out("print(min(3, 1, 2), max(3, 1, 2))\n"), "1 3\n");
    EXPECT_EQ(Out("print(min([4, 2, 9]), max([4, 2, 9]))\n"), "2 9\n");
    EXPECT_EQ(Out("print(abs(-5), abs(5))\n"), "5 5\n");
}

TEST(MiniPyBuiltins, ListTupleConstructors)
{
    EXPECT_EQ(Out("print(list('abc'))\n"), "['a', 'b', 'c']\n");
    EXPECT_EQ(Out("print(list(range(3)))\n"), "[0, 1, 2]\n");
    EXPECT_EQ(Out("print(tuple([1, 2]))\n"), "(1, 2)\n");
}

TEST(MiniPyMisc, TupleAssignmentAndSwap)
{
    EXPECT_EQ(Out("a, b = 1, 2\na, b = b, a\nprint(a, b)\n"), "2 1\n");
}

TEST(MiniPyMisc, AugmentedAssignment)
{
    EXPECT_EQ(Out("x = 10\nx += 5\nx -= 3\nx *= 2\nx //= 3\nprint(x)\n"),
              "8\n");
    EXPECT_EQ(Out("l = [1]\nl += [2]\nprint(l)\n"), "[1, 2]\n");
    EXPECT_EQ(Out("d = {'n': 1}\nd['n'] += 9\nprint(d['n'])\n"), "10\n");
}

TEST(MiniPyMisc, NestedDataStructures)
{
    const char* program = R"(data = {'users': [{'name': 'ann'}, {'name': 'bob'}]}
print(data['users'][1]['name'])
data['users'].append({'name': 'carl'})
print(len(data['users']))
)";
    EXPECT_EQ(Out(program), "bob\n3\n");
}

TEST(MiniPyMisc, CommentsAndBlankLines)
{
    const char* program = R"(# leading comment
x = 1  # trailing comment

# comment between statements

print(x)
)";
    EXPECT_EQ(Out(program), "1\n");
}

TEST(MiniPyMisc, MultilineCollections)
{
    const char* program = R"(values = [
    1,
    2,
    3,
]
table = {
    'a': 1,
    'b': 2,
}
print(len(values), len(table))
)";
    EXPECT_EQ(Out(program), "3 2\n");
}

TEST(MiniPyMisc, StringEscapes)
{
    EXPECT_EQ(Out("print(len('\\x00\\x01\\xff'))\n"), "3\n");
    EXPECT_EQ(Out("print('a\\tb')\n"), "a\tb\n");
    EXPECT_EQ(Out(R"(print('it\'s'))" "\n"), "it's\n");
}

TEST(MiniPyErrors, CompileErrors)
{
    EXPECT_NE(Out("def f(:\n    pass\n").find("<compile error"),
              std::string::npos);
    EXPECT_NE(Out("x = 1.5\n").find("<compile error"),
              std::string::npos);  // Floats rejected.
    EXPECT_NE(Out("return 5\n").find("<compile error"),
              std::string::npos);
}

TEST(MiniPyErrors, NameErrors)
{
    RunResult result = RunPy("print(undefined_name)\n");
    EXPECT_FALSE(result.outcome.ok);
    EXPECT_EQ(result.outcome.exception_type, "NameError");
}

TEST(MiniPyErrors, TypeErrors)
{
    RunResult result = RunPy("x = 'a' + 1\n");
    EXPECT_FALSE(result.outcome.ok);
    EXPECT_EQ(result.outcome.exception_type, "TypeError");
}

/// A small end-to-end parser program, shaped like the evaluation
/// workloads.
TEST(MiniPyPrograms, CsvLikeParser)
{
    const char* program = R"(def parse_line(line):
    fields = line.split(',')
    out = []
    for f in fields:
        out.append(f.strip())
    return out

rows = []
for line in ['a, b ,c', '1,2,3']:
    rows.append(parse_line(line))
print(rows)
)";
    EXPECT_EQ(Out(program),
              "[['a', 'b', 'c'], ['1', '2', '3']]\n");
}

TEST(MiniPyPrograms, WordCount)
{
    const char* program = R"(text = 'the cat and the dog and the bird'
counts = {}
for word in text.split():
    counts[word] = counts.get(word, 0) + 1
print(counts['the'], counts['and'], counts.get('fish', 0))
)";
    EXPECT_EQ(Out(program), "3 2 0\n");
}

TEST(MiniPyPrograms, ValidateEmailFromPaper)
{
    // The paper's Figure 2 example, concretely.
    const char* program = R"(class InvalidEmailError(Exception):
    pass

def validateEmail(email):
    at_sign_pos = email.find('@')
    if at_sign_pos < 3:
        raise InvalidEmailError('bad email')
    return True

print(validateEmail('user@host'))
try:
    validateEmail('u@h')
except InvalidEmailError:
    print('rejected')
)";
    EXPECT_EQ(Out(program), "True\nrejected\n");
}

TEST(MiniPyPrograms, AverageFromPaper)
{
    EXPECT_EQ(Out("def average(x, y):\n    return (x + y) // 2\n"
                  "print(average(10, 20))\n"),
              "15\n");
}

}  // namespace
}  // namespace chef::minipy
