/// \file
/// Tests for the distributed shard layer: corpus delta snapshots and
/// order-independent merging, remote-yield ingestion into the batch
/// scheduler (plateau from gossip), loopback transports, and the
/// coordinator end-to-end — partition determinism against a single
/// shard, merged-report validity, and non-serializable-spec rejection.

#include "shard/coordinator.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lowlevel/runtime.h"
#include "lowlevel/symvalue.h"
#include "service/scheduler.h"
#include "service/service.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "shard/worker.h"
#include "support/json.h"
#include "workloads/registry.h"

namespace chef::shard {
namespace {

using service::BatchScheduler;
using service::JobResult;
using service::JobSpec;
using service::JobStatus;
using service::TestCorpus;
using support::JsonValid;
using support::JsonValue;

// ---------------------------------------------------------------------------
// Corpus deltas and order-independent merge.
// ---------------------------------------------------------------------------

TestCorpus::Entry
MakeEntry(const std::string& workload, uint64_t fingerprint)
{
    TestCorpus::Entry entry;
    entry.workload = workload;
    entry.fingerprint = fingerprint;
    entry.outcome_kind = "ok";
    return entry;
}

TEST(CorpusDelta, SnapshotCutsOnSequenceAndSkipsRemoteEntries)
{
    TestCorpus corpus;
    ASSERT_TRUE(corpus.Insert(MakeEntry("a", 1)));
    ASSERT_TRUE(corpus.Insert(MakeEntry("a", 2)));
    const TestCorpus::Delta first = corpus.Snapshot("me", 0);
    EXPECT_EQ(first.entries.size(), 2u);
    EXPECT_EQ(first.source, "me");

    // Nothing new since the watermark.
    EXPECT_TRUE(corpus.Snapshot("me", first.sequence).entries.empty());

    // A remote merge must not re-export through the next snapshot (no
    // gossip echo), but a fresh local insert must.
    TestCorpus::Delta remote;
    remote.source = "other";
    remote.entries.push_back(MakeEntry("b", 77));
    const TestCorpus::MergeStats merge = corpus.MergeFrom(remote);
    EXPECT_EQ(merge.inserted, 1u);
    EXPECT_EQ(merge.duplicates, 0u);
    ASSERT_TRUE(corpus.Insert(MakeEntry("a", 3)));
    const TestCorpus::Delta second = corpus.Snapshot("me", first.sequence);
    ASSERT_EQ(second.entries.size(), 1u);
    EXPECT_EQ(second.entries[0].fingerprint, 3u);
    EXPECT_EQ(corpus.remote_entries(), 1u);
}

TEST(CorpusDelta, MergeReportsDedupAndMergedYields)
{
    TestCorpus corpus;
    ASSERT_TRUE(corpus.Insert(MakeEntry("a", 1)));
    corpus.RecordJobYield("a", 4, 2);

    TestCorpus::Delta delta;
    delta.source = "shard1";
    delta.entries.push_back(MakeEntry("a", 1));  // Duplicate.
    delta.entries.push_back(MakeEntry("a", 9));  // New.
    delta.yields["a"].jobs_recorded = 1;
    delta.yields["a"].offered_total = 3;
    delta.yields["a"].accepted_total = 0;
    delta.yields["a"].decayed_yield = 0.0;
    delta.yields["a"].consecutive_zero_yield = 3;

    const TestCorpus::MergeStats merge = corpus.MergeFrom(delta);
    EXPECT_EQ(merge.inserted, 1u);
    EXPECT_EQ(merge.duplicates, 1u);
    const TestCorpus::WorkloadYield merged = merge.merged_yields.at("a");
    EXPECT_EQ(merged.jobs_recorded, 2u);
    EXPECT_EQ(merged.offered_total, 7u);
    EXPECT_EQ(merged.accepted_total, 2u);
    // Jobs-weighted mean of (2.0 over 1 job, 0.0 over 1 job).
    EXPECT_DOUBLE_EQ(merged.decayed_yield, 1.0);
    // Max across sources: remote plateau evidence counts here.
    EXPECT_EQ(merged.consecutive_zero_yield, 3u);
    // YieldFor serves the same merged view.
    EXPECT_EQ(corpus.YieldFor("a").consecutive_zero_yield, 3u);
    // The local-only view is unchanged (what this corpus would gossip).
    EXPECT_EQ(corpus.LocalYields().at("a").consecutive_zero_yield, 0u);

    // A local rediscovery of a remote-seeded key counts as cross-shard
    // dedup.
    EXPECT_FALSE(corpus.Insert(MakeEntry("a", 9)));
    EXPECT_EQ(corpus.remote_duplicate_hits(), 1u);
    // ... but rediscovering one's own entry does not.
    EXPECT_FALSE(corpus.Insert(MakeEntry("a", 1)));
    EXPECT_EQ(corpus.remote_duplicate_hits(), 1u);
}

TEST(CorpusDelta, MergeIsOrderIndependent)
{
    // Regression contract for gossip: merging shard A's delta then shard
    // B's must produce the same corpus and merged yield state as B then
    // A, including when the deltas overlap each other and local state.
    TestCorpus::Delta a;
    a.source = "shardA";
    a.entries.push_back(MakeEntry("w", 1));
    a.entries.push_back(MakeEntry("w", 2));
    a.entries.push_back(MakeEntry("v", 5));
    a.yields["w"] = {3, 10, 4, 2.0, 0};
    a.yields["v"] = {1, 2, 0, 0.0, 1};

    TestCorpus::Delta b;
    b.source = "shardB";
    b.entries.push_back(MakeEntry("w", 2));  // Overlaps A.
    b.entries.push_back(MakeEntry("w", 3));
    b.yields["w"] = {1, 5, 0, 0.0, 4};

    const auto build = [&](bool a_first) {
        auto corpus = std::make_unique<TestCorpus>();
        EXPECT_TRUE(corpus->Insert(MakeEntry("w", 2))) << "seed insert";
        corpus->RecordJobYield("w", 6, 6);
        if (a_first) {
            corpus->MergeFrom(a), corpus->MergeFrom(b);
        } else {
            corpus->MergeFrom(b), corpus->MergeFrom(a);
        }
        return corpus;
    };
    const std::unique_ptr<TestCorpus> ab = build(true);
    const std::unique_ptr<TestCorpus> ba = build(false);

    EXPECT_EQ(ab->Keys(), ba->Keys());
    EXPECT_EQ(ab->size(), 4u);  // {w:1, w:2, w:3, v:5}.
    for (const char* workload : {"w", "v"}) {
        const TestCorpus::WorkloadYield ya = ab->YieldFor(workload);
        const TestCorpus::WorkloadYield yb = ba->YieldFor(workload);
        EXPECT_EQ(ya.jobs_recorded, yb.jobs_recorded) << workload;
        EXPECT_EQ(ya.offered_total, yb.offered_total) << workload;
        EXPECT_EQ(ya.accepted_total, yb.accepted_total) << workload;
        EXPECT_DOUBLE_EQ(ya.decayed_yield, yb.decayed_yield) << workload;
        EXPECT_EQ(ya.consecutive_zero_yield, yb.consecutive_zero_yield)
            << workload;
    }
    // Re-merging the same delta is idempotent (cumulative snapshots
    // replace, never accumulate).
    const TestCorpus::WorkloadYield before = ab->YieldFor("w");
    ab->MergeFrom(a);
    const TestCorpus::WorkloadYield after = ab->YieldFor("w");
    EXPECT_EQ(before.jobs_recorded, after.jobs_recorded);
    EXPECT_DOUBLE_EQ(before.decayed_yield, after.decayed_yield);
}

// ---------------------------------------------------------------------------
// Remote yield -> scheduler (the PR 4 follow-on).
// ---------------------------------------------------------------------------

TEST(RemoteYield, GossipTripsPlateauWithoutLocalCompletions)
{
    TestCorpus corpus;
    BatchScheduler::Options options;
    options.plateau.enabled = true;
    options.plateau.deprioritize_after = 1;
    options.plateau.cancel_after = 2;
    BatchScheduler scheduler({"dup", "dup", "fresh"}, &corpus, options);

    // A sibling shard reports the workload flat (streak >= cancel_after)
    // and its fingerprints already cover it.
    TestCorpus::Delta delta;
    delta.source = "shard1";
    delta.entries.push_back(MakeEntry("dup", 11));
    delta.yields["dup"] = {3, 9, 1, 0.0, 2};
    corpus.MergeFrom(delta);
    scheduler.NotifyYieldsChanged();

    // The fresh workload dispatches first (untried beats deprioritized),
    // and the duplicate jobs pop as plateau cancellations without this
    // shard ever burning a job on them.
    BatchScheduler::Dispatch dispatch;
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 2u);
    EXPECT_FALSE(dispatch.plateau_cancelled);
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 0u);
    EXPECT_TRUE(dispatch.plateau_cancelled);
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 1u);
    EXPECT_TRUE(dispatch.plateau_cancelled);
}

// ---------------------------------------------------------------------------
// Loopback transport.
// ---------------------------------------------------------------------------

TEST(Transport, LoopbackDeliversInOrderAndClosesSticky)
{
    LoopbackPair pair = CreateLoopbackPair();
    ASSERT_TRUE(pair.a->Send("one"));
    ASSERT_TRUE(pair.a->Send("two"));
    std::string message;
    ASSERT_EQ(pair.b->Receive(&message, -1),
              Transport::RecvStatus::kMessage);
    EXPECT_EQ(message, "one");
    ASSERT_EQ(pair.b->Receive(&message, -1),
              Transport::RecvStatus::kMessage);
    EXPECT_EQ(message, "two");
    EXPECT_EQ(pair.b->Receive(&message, 5),
              Transport::RecvStatus::kTimeout);
    pair.a->Close();
    EXPECT_EQ(pair.b->Receive(&message, -1),
              Transport::RecvStatus::kClosed);
    EXPECT_FALSE(pair.b->Send("into the void"));
}

// ---------------------------------------------------------------------------
// Coordinator end-to-end over loopback shards.
// ---------------------------------------------------------------------------

std::vector<JobSpec>
MixedBatch(uint64_t max_runs)
{
    std::vector<JobSpec> jobs;
    int copy = 0;
    for (const char* id :
         {"py/argparse", "py/simplejson", "lua/cliargs", "lua/haml",
          "py/argparse", "lua/cliargs"}) {
        JobSpec spec;
        spec.workload = id;
        spec.label = std::string(id) + "#" + std::to_string(copy);
        spec.seed = static_cast<uint64_t>(++copy);
        spec.options.max_runs = max_runs;
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

ShardCoordinator::Options
CoordinatorOptions()
{
    ShardCoordinator::Options options;
    options.service.seed = 2014;
    options.service.num_workers = 1;
    return options;
}

TEST(Coordinator, PartitioningDoesNotChangePerJobResults)
{
    const std::vector<JobSpec> jobs = MixedBatch(8);

    ShardCoordinator single(CoordinatorOptions());
    std::string error;
    ASSERT_TRUE(RunLoopbackShards(&single, jobs, 1, &error)) << error;

    ShardCoordinator sharded(CoordinatorOptions());
    ASSERT_TRUE(RunLoopbackShards(&sharded, jobs, 2, &error)) << error;

    ASSERT_EQ(single.results().size(), jobs.size());
    ASSERT_EQ(sharded.results().size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobResult& a = single.results()[i];
        const JobResult& b = sharded.results()[i];
        SCOPED_TRACE(jobs[i].label);
        EXPECT_EQ(a.status, JobStatus::kCompleted);
        EXPECT_EQ(b.status, JobStatus::kCompleted);
        EXPECT_EQ(a.workload, b.workload);
        // Seeds derive from the *global* index on both sides, so the
        // sessions are bit-identical regardless of the partition.
        EXPECT_EQ(a.seed_used, b.seed_used);
        EXPECT_EQ(a.num_test_cases, b.num_test_cases);
        EXPECT_EQ(a.num_relevant_test_cases, b.num_relevant_test_cases);
        EXPECT_EQ(a.engine_stats.ll_paths, b.engine_stats.ll_paths);
        EXPECT_EQ(a.engine_stats.hl_paths, b.engine_stats.hl_paths);
    }
    // Same sessions -> same union corpus, however it was sharded.
    EXPECT_EQ(single.corpus().Keys(), sharded.corpus().Keys());
    EXPECT_GT(single.corpus().size(), 0u);

    // Stats merged across shards account for every job.
    EXPECT_EQ(sharded.merged_stats().jobs_submitted, jobs.size());
    EXPECT_EQ(sharded.merged_stats().jobs_completed, jobs.size());
    EXPECT_EQ(sharded.merged_stats().corpus_size,
              sharded.corpus().size());
}

TEST(Coordinator, MergedReportIsStrictJsonWithCrossShardStats)
{
    const std::vector<JobSpec> jobs = MixedBatch(6);
    ShardCoordinator coordinator(CoordinatorOptions());
    std::string error;
    ASSERT_TRUE(RunLoopbackShards(&coordinator, jobs, 2, &error)) << error;

    const std::string report = coordinator.RenderMergedReport();
    ASSERT_TRUE(JsonValid(report)) << report;

    JsonValue parsed;
    ASSERT_TRUE(support::ParseJson(report, &parsed, &error)) << error;
    std::string kind;
    ASSERT_TRUE(parsed.GetString("report", &kind));
    EXPECT_EQ(kind, "chef-shard-coordinator");
    uint64_t num_shards = 0;
    ASSERT_TRUE(parsed.GetUint64("num_shards", &num_shards));
    EXPECT_EQ(num_shards, 2u);

    const JsonValue* cross = parsed.Find("cross_shard");
    ASSERT_NE(cross, nullptr);
    for (const char* key :
         {"gossip_messages", "fingerprints_gossiped",
          "remote_duplicate_hits", "jobs_suppressed",
          "merge_duplicates"}) {
        uint64_t value = 0;
        EXPECT_TRUE(cross->GetUint64(key, &value)) << key;
    }

    const JsonValue* shards = parsed.Find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_EQ(shards->items.size(), 2u);
    for (const JsonValue& shard : shards->items) {
        uint64_t assigned = 0;
        EXPECT_TRUE(shard.GetUint64("jobs_assigned", &assigned));
        EXPECT_EQ(assigned, 3u);
        EXPECT_NE(shard.Find("stats"), nullptr);
    }

    // The merged section is a full single-service-schema report.
    const JsonValue* merged = parsed.Find("merged");
    ASSERT_NE(merged, nullptr);
    std::string merged_kind;
    ASSERT_TRUE(merged->GetString("report", &merged_kind));
    EXPECT_EQ(merged_kind, "chef-exploration-service");
    const JsonValue* merged_jobs = merged->Find("jobs");
    ASSERT_NE(merged_jobs, nullptr);
    EXPECT_EQ(merged_jobs->items.size(), jobs.size());
}

TEST(Coordinator, RejectsNonSerializableSpecsAtSubmit)
{
    std::vector<JobSpec> jobs = MixedBatch(4);
    jobs[2].options.stop_requested = [] { return false; };

    ShardCoordinator coordinator(CoordinatorOptions());
    std::string error;
    EXPECT_FALSE(RunLoopbackShards(&coordinator, jobs, 2, &error));
    EXPECT_NE(error.find("stop_requested"), std::string::npos);
    EXPECT_NE(error.find("not "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cross-shard dedup on a duplicate-skewed batch.
// ---------------------------------------------------------------------------

enum Opcode : uint32_t { kOpStmt = 1, kOpCmp = 2 };

/// Two high-level paths total (as in scheduler_test): the first job on
/// any shard discovers both; every later job yields zero.
Engine::GuestOutcome
TwoPathGuest(lowlevel::LowLevelRuntime& rt)
{
    lowlevel::SymValue byte = rt.MakeSymbolicValue("b0", 8, 1);
    rt.LogPc(1, kOpCmp);
    if (rt.Branch(SvEq(byte, lowlevel::SymValue(0, 8)), CHEF_LLPC)) {
        rt.LogPc(2, kOpStmt);
    } else {
        rt.LogPc(3, kOpStmt);
    }
    return {"ok", ""};
}

void
EnsureTwoPathWorkload()
{
    static const bool registered = [] {
        workloads::WorkloadInfo info;
        info.id = "test/shard-two-path";
        info.language = "custom";
        info.description = "exactly two high-level paths";
        info.make_run = [](const interp::InterpBuildOptions&) {
            return Engine::RunFn(TwoPathGuest);
        };
        return workloads::RegisterWorkload(std::move(info));
    }();
    ASSERT_TRUE(registered);
}

TEST(Coordinator, PlateauPlusGossipSuppressesDuplicateJobs)
{
    EnsureTwoPathWorkload();

    // 12 duplicate jobs of a two-path workload over 2 shards: each
    // shard's first job saturates the workload, so nearly everything
    // else is duplicate work the plateau (fed by local *and* gossiped
    // zero-yield streaks) should cancel before dispatch.
    std::vector<JobSpec> jobs;
    for (int i = 0; i < 12; ++i) {
        JobSpec spec;
        spec.workload = "test/shard-two-path";
        spec.label = "dup#" + std::to_string(i);
        spec.options.max_runs = 8;
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }

    ShardCoordinator::Options options = CoordinatorOptions();
    options.service.plateau_policy.enabled = true;
    options.service.plateau_policy.deprioritize_after = 1;
    options.service.plateau_policy.cancel_after = 2;
    ShardCoordinator coordinator(options);
    std::string error;
    ASSERT_TRUE(RunLoopbackShards(&coordinator, jobs, 2, &error)) << error;

    // Both paths are in the merged corpus, every job is accounted for,
    // and at least the local plateau floor of duplicate jobs was
    // suppressed (3 per shard with 6 jobs and cancel_after=2; gossip
    // can only raise this by propagating the streak earlier).
    EXPECT_EQ(coordinator.corpus().size(), 2u);
    size_t completed = 0;
    size_t suppressed = 0;
    for (const JobResult& result : coordinator.results()) {
        if (result.status == JobStatus::kCompleted) {
            ++completed;
        } else {
            EXPECT_EQ(result.stop_source, "plateau");
            ++suppressed;
        }
    }
    EXPECT_EQ(completed + suppressed, jobs.size());
    EXPECT_GE(suppressed, 6u);
    EXPECT_EQ(coordinator.cross_shard().jobs_suppressed, suppressed);
    // The duplicate-job suppression target: >= 50% of the 11 duplicate
    // jobs (everything beyond the first).
    EXPECT_GE(suppressed * 2, (jobs.size() - 1));
}

}  // namespace
}  // namespace chef::shard
