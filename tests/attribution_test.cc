/// \file
/// Tests for the attribution profiler: charge/snapshot correctness,
/// stripe spilling under location counts past one stripe's capacity,
/// the allocation-free hot path, order-independent snapshot merging and
/// idempotent gossip redelivery, JSON round trips with unknown-key
/// tolerance, folded-stack and hot-location rendering, frontier
/// introspection, and a 2-shard loopback batch whose cluster table must
/// equal the single-shard table on every deterministic column.

#include "obs/attribution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "service/job.h"
#include "shard/coordinator.h"
#include "support/json.h"

// --------------------------------------------------------------------------
// Allocation counting for the hot-path test: replace global operator new
// so the test can assert that Charge / ChargeWithParent / ChargeSolver
// perform zero heap allocations. Counting is a relaxed atomic bump, so
// the replacement does not perturb what it measures. (Each tests/*.cc
// file builds into its own binary, so this replacement is local.)

static std::atomic<uint64_t> g_allocations{0};

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    void* ptr = std::malloc(size);
    if (ptr == nullptr) {
        throw std::bad_alloc();
    }
    return ptr;
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void* ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void* ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void* ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace chef::obs {
namespace {

using support::JsonValue;
using support::JsonWriter;
using support::ParseJson;

// --------------------------------------------------------------------------
// Charging and snapshots.

TEST(Attribution, ChargesAccumulatePerLocation)
{
    AttributionProfiler profiler("py/argparse");
    profiler.Charge(0x10, AttributionProfiler::kSteps, 5);
    profiler.Charge(0x10, AttributionProfiler::kSteps, 2);
    profiler.Charge(0x10, AttributionProfiler::kForks);
    profiler.Charge(0x20, AttributionProfiler::kNewFingerprints, 3);
    profiler.ChargeWithParent(0x30, 0x10,
                              AttributionProfiler::kAssumeFailures);

    const AttributionSnapshot snapshot = profiler.Snapshot();
    ASSERT_EQ(snapshot.workloads.size(), 1u);
    const std::map<uint64_t, AttributionRow>& table =
        snapshot.workloads.at("py/argparse");
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table.at(0x10).steps, 7u);
    EXPECT_EQ(table.at(0x10).forks, 1u);
    EXPECT_EQ(table.at(0x10).parent, kAttributionNoParent);
    EXPECT_EQ(table.at(0x20).new_fingerprints, 3u);
    EXPECT_EQ(table.at(0x30).assume_failures, 1u);
    EXPECT_EQ(table.at(0x30).parent, 0x10u);
    EXPECT_EQ(snapshot.dropped_locations, 0u);
    EXPECT_EQ(snapshot.NewFingerprintsTotal(), 3u);
    EXPECT_FALSE(snapshot.empty());
    EXPECT_TRUE(AttributionSnapshot().empty());
}

TEST(Attribution, ChargeSolverLandsOnAmbientLocation)
{
    AttributionProfiler profiler("lua/JSON");
    EXPECT_EQ(CurrentAmbientLocation(), 0u);
    {
        ScopedLocation outer(0x42);
        EXPECT_EQ(CurrentAmbientLocation(), 0x42u);
        profiler.ChargeSolver(1'000'000);
        {
            ScopedLocation inner(0x43);
            profiler.ChargeSolver(2'000'000);
        }
        // The previous ambient location is restored on scope exit.
        EXPECT_EQ(CurrentAmbientLocation(), 0x42u);
        profiler.ChargeSolver(3'000'000);
    }
    EXPECT_EQ(CurrentAmbientLocation(), 0u);
    profiler.ChargeSolver(5'000'000);  // Root location outside any scope.

    const AttributionSnapshot snapshot = profiler.Snapshot();
    const std::map<uint64_t, AttributionRow>& table =
        snapshot.workloads.at("lua/JSON");
    EXPECT_EQ(table.at(0x42).solver_nanos, 4'000'000u);
    EXPECT_EQ(table.at(0x42).solver_queries, 2u);
    EXPECT_EQ(table.at(0x43).solver_nanos, 2'000'000u);
    EXPECT_EQ(table.at(0x0).solver_nanos, 5'000'000u);
    EXPECT_NEAR(snapshot.SolverSecondsTotal(), 0.011, 1e-9);
}

// Many threads charging many more distinct locations than one stripe
// holds: full stripes must spill into siblings (not the overflow
// aggregate), and the fold in Snapshot() must lose nothing.
TEST(Attribution, ConcurrentChargesAcrossStripesLoseNothing)
{
    AttributionProfiler profiler("py/simplejson");
    constexpr int kThreads = 8;
    constexpr uint64_t kLocations = 1'000;
    static_assert(kLocations > kAttributionCellsPerStripe,
                  "test must overflow a single stripe");
    static_assert(kLocations <
                      kMetricStripes * kAttributionCellsPerStripe,
                  "test must fit the profiler as a whole");
    constexpr uint64_t kRounds = 20;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&profiler] {
            for (uint64_t round = 0; round < kRounds; ++round) {
                for (uint64_t pc = 0; pc < kLocations; ++pc) {
                    profiler.Charge(pc, AttributionProfiler::kSteps);
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }

    const AttributionSnapshot snapshot = profiler.Snapshot();
    EXPECT_EQ(snapshot.dropped_locations, 0u);
    const std::map<uint64_t, AttributionRow>& table =
        snapshot.workloads.at("py/simplejson");
    ASSERT_EQ(table.size(), kLocations);
    for (const auto& [pc, row] : table) {
        EXPECT_EQ(row.steps, kThreads * kRounds) << "hl_pc " << pc;
    }
}

// Exhausting every stripe folds further new locations into the overflow
// aggregate instead of losing the charges.
TEST(Attribution, FullTableFoldsIntoOverflowAggregate)
{
    AttributionProfiler profiler("w");
    const uint64_t capacity =
        kMetricStripes * kAttributionCellsPerStripe;
    for (uint64_t pc = 0; pc < capacity + 10; ++pc) {
        profiler.Charge(pc, AttributionProfiler::kSteps, 2);
    }
    const AttributionSnapshot snapshot = profiler.Snapshot();
    // dropped_locations counts redirected *charges* (delta-weighted).
    EXPECT_EQ(snapshot.dropped_locations, 20u);
    const std::map<uint64_t, AttributionRow>& table =
        snapshot.workloads.at("w");
    ASSERT_NE(table.find(kAttributionOverflowHlPc), table.end());
    EXPECT_EQ(table.at(kAttributionOverflowHlPc).steps, 20u);
    uint64_t total_steps = 0;
    for (const auto& [pc, row] : table) {
        total_steps += row.steps;
    }
    EXPECT_EQ(total_steps, (capacity + 10) * 2);
}

TEST(Attribution, HotPathAllocatesNothing)
{
    AttributionProfiler profiler("w");
    // Warm the cells the measured section will hit (cell claiming is
    // also allocation-free, but warming keeps the assert focused).
    for (uint64_t pc = 0; pc < 64; ++pc) {
        profiler.Charge(pc, AttributionProfiler::kSteps);
    }
    ScopedLocation location(7);

    const uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (uint64_t round = 0; round < 10'000; ++round) {
        profiler.Charge(round % 64, AttributionProfiler::kSteps);
        profiler.ChargeWithParent(round % 64, 3,
                                  AttributionProfiler::kForks);
        profiler.ChargeSolver(100);
    }
    const uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
}

// --------------------------------------------------------------------------
// Merging: order independence and idempotent redelivery.

AttributionSnapshot
MakeSnapshot(const std::string& workload, uint64_t hl_pc, uint64_t steps,
             uint64_t parent = kAttributionNoParent)
{
    AttributionSnapshot snapshot;
    AttributionRow& row = snapshot.workloads[workload][hl_pc];
    row.steps = steps;
    row.new_fingerprints = steps / 2;
    row.parent = parent;
    return snapshot;
}

TEST(Attribution, MergeIsOrderIndependent)
{
    const AttributionSnapshot a = MakeSnapshot("w", 0x10, 4, 0x2);
    const AttributionSnapshot b = MakeSnapshot("w", 0x10, 6, 0x1);
    AttributionSnapshot c = MakeSnapshot("v", 0x99, 3);
    c.dropped_locations = 2;

    std::vector<const AttributionSnapshot*> order = {&a, &b, &c};
    std::sort(order.begin(), order.end());
    std::vector<AttributionSnapshot> merges;
    do {
        AttributionSnapshot merged;
        for (const AttributionSnapshot* part : order) {
            merged.MergeFrom(*part);
        }
        merges.push_back(std::move(merged));
    } while (std::next_permutation(order.begin(), order.end()));

    ASSERT_FALSE(merges.empty());
    for (const AttributionSnapshot& merged : merges) {
        EXPECT_TRUE(AttributionCountsEqual(merged, merges.front()));
        EXPECT_EQ(merged.workloads.at("w").at(0x10).steps, 10u);
        // Parent resolves to the smallest recorded parent — a pure
        // function of the operand set, independent of arrival order.
        EXPECT_EQ(merged.workloads.at("w").at(0x10).parent, 0x1u);
        EXPECT_EQ(merged.workloads.at("v").at(0x99).steps, 3u);
        EXPECT_EQ(merged.dropped_locations, 2u);
    }
}

// The coordinator's gossip lifecycle: per-shard tables replace by
// latest (gossip snapshots are cumulative), and the cluster view folds
// the latest per shard. Redelivering any frame must not change the
// fold.
TEST(Attribution, IdempotentRedeliveryUnderReplaceByLatest)
{
    const AttributionSnapshot shard0_t1 = MakeSnapshot("w", 0x10, 5);
    const AttributionSnapshot shard0_t2 = MakeSnapshot("w", 0x10, 9);
    const AttributionSnapshot shard1_t1 = MakeSnapshot("w", 0x20, 4);

    const auto fold = [](const std::map<int, AttributionSnapshot>& latest) {
        AttributionSnapshot cluster;
        for (const auto& [shard, snapshot] : latest) {
            cluster.MergeFrom(snapshot);
        }
        return cluster;
    };

    std::map<int, AttributionSnapshot> latest;
    latest[0] = shard0_t1;
    latest[0] = shard0_t2;  // Newer cumulative frame replaces.
    latest[1] = shard1_t1;
    const AttributionSnapshot once = fold(latest);

    // Redeliver every frame, including a stale one arriving late:
    // replace-by-latest makes the duplicate a no-op and the stale frame
    // at worst a temporary regression that the next delivery repairs.
    latest[1] = shard1_t1;
    latest[0] = shard0_t2;
    const AttributionSnapshot twice = fold(latest);

    EXPECT_TRUE(AttributionCountsEqual(once, twice));
    EXPECT_EQ(twice.workloads.at("w").at(0x10).steps, 9u);
    EXPECT_EQ(twice.workloads.at("w").at(0x20).steps, 4u);
}

// --------------------------------------------------------------------------
// Serialization.

TEST(Attribution, JsonRoundTripPreservesEveryColumn)
{
    AttributionProfiler profiler("py/argparse");
    profiler.Charge(0x10, AttributionProfiler::kSteps, 12);
    profiler.Charge(0x10, AttributionProfiler::kSolverQueries, 2);
    profiler.Charge(0x10, AttributionProfiler::kSolverNanos, 5'000'000);
    profiler.ChargeWithParent(0x20, 0x10,
                              AttributionProfiler::kNewFingerprints);
    AttributionSnapshot snapshot = profiler.Snapshot();
    snapshot.dropped_locations = 3;

    JsonWriter json;
    WriteAttributionSnapshot(json, snapshot);
    const std::string doc = json.Take();
    ASSERT_TRUE(support::JsonValid(doc)) << doc;

    JsonValue value;
    ASSERT_TRUE(ParseJson(doc, &value));
    AttributionSnapshot decoded;
    std::string error;
    ASSERT_TRUE(DecodeAttributionSnapshot(value, &decoded, &error))
        << error;
    EXPECT_TRUE(AttributionCountsEqual(snapshot, decoded));
    EXPECT_EQ(decoded.workloads.at("py/argparse").at(0x10).solver_nanos,
              5'000'000u);
    EXPECT_EQ(decoded.workloads.at("py/argparse").at(0x20).parent, 0x10u);
    EXPECT_EQ(decoded.dropped_locations, 3u);
}

TEST(Attribution, DecodeIgnoresUnknownKeysAndRejectsMalformedTables)
{
    // Unknown keys at every level: forward compatibility with future
    // minors that add columns or sections.
    const std::string doc =
        "{\"future_section\":[1,2],\"dropped_locations\":1,"
        "\"workloads\":[{\"workload\":\"w\",\"future_flag\":true,"
        "\"locations\":[{\"hl_pc\":\"0x10\",\"steps\":4,"
        "\"future_column\":9}]}]}";
    JsonValue value;
    ASSERT_TRUE(ParseJson(doc, &value));
    AttributionSnapshot decoded;
    std::string error;
    ASSERT_TRUE(DecodeAttributionSnapshot(value, &decoded, &error))
        << error;
    EXPECT_EQ(decoded.workloads.at("w").at(0x10).steps, 4u);
    EXPECT_EQ(decoded.dropped_locations, 1u);

    // Missing required fields fail loudly instead of half-decoding.
    for (const char* bad :
         {"{\"dropped_locations\":0}",
          "{\"workloads\":[{\"locations\":[]}]}",
          "{\"workloads\":[{\"workload\":\"w\","
          "\"locations\":[{\"steps\":1}]}]}"}) {
        JsonValue bad_value;
        ASSERT_TRUE(ParseJson(bad, &bad_value)) << bad;
        AttributionSnapshot sink;
        EXPECT_FALSE(DecodeAttributionSnapshot(bad_value, &sink, &error))
            << bad;
    }
}

// --------------------------------------------------------------------------
// Rendering: folded stacks and the hot-locations panel.

TEST(Attribution, FoldedStacksFollowParentChains)
{
    AttributionSnapshot snapshot;
    std::map<uint64_t, AttributionRow>& table = snapshot.workloads["w"];
    table[0x1].steps = 10;  // Root (no parent).
    table[0x2].steps = 4;
    table[0x2].parent = 0x1;
    table[0x3].steps = 0;  // Pure-solver location: value falls back to
    table[0x3].solver_queries = 6;  // TotalCharges().
    table[0x3].parent = 0x2;

    const std::string stacks = RenderAttributionFoldedStacks(snapshot);
    EXPECT_NE(stacks.find("w;0x1 10\n"), std::string::npos) << stacks;
    EXPECT_NE(stacks.find("w;0x1;0x2 4\n"), std::string::npos) << stacks;
    EXPECT_NE(stacks.find("w;0x1;0x2;0x3 6\n"), std::string::npos)
        << stacks;

    // Parent cycles terminate instead of looping.
    AttributionSnapshot cyclic;
    cyclic.workloads["c"][0xa].steps = 1;
    cyclic.workloads["c"][0xa].parent = 0xb;
    cyclic.workloads["c"][0xb].steps = 1;
    cyclic.workloads["c"][0xb].parent = 0xa;
    const std::string cycle_stacks =
        RenderAttributionFoldedStacks(cyclic);
    EXPECT_NE(cycle_stacks.find("0xa 1\n"), std::string::npos)
        << cycle_stacks;
    EXPECT_NE(cycle_stacks.find("0xb 1\n"), std::string::npos)
        << cycle_stacks;
}

TEST(Attribution, HotLocationsRanksBySolverSecondsAndYield)
{
    AttributionSnapshot snapshot;
    std::map<uint64_t, AttributionRow>& table = snapshot.workloads["w"];
    table[0x1].solver_nanos = 9'000'000'000;  // Hottest by cost.
    table[0x1].solver_queries = 9;
    table[0x2].solver_nanos = 1'000'000'000;
    table[0x2].solver_queries = 1;
    table[0x2].new_fingerprints = 50;  // Hottest by yield.

    const std::string panel = RenderHotLocations(snapshot, 2);
    EXPECT_NE(panel.find("0x1"), std::string::npos) << panel;
    EXPECT_NE(panel.find("0x2"), std::string::npos) << panel;
    // Cost ranking lists 0x1 before 0x2.
    EXPECT_LT(panel.find("0x1"), panel.find("0x2")) << panel;

    EXPECT_EQ(RenderHotLocations(AttributionSnapshot(), 5), "");
}

// --------------------------------------------------------------------------
// Frontier introspection.

TEST(Frontier, DepthBucketsAreLogarithmicWithSaturatingTail)
{
    EXPECT_EQ(FrontierSnapshot::DepthBucket(0), 0u);
    EXPECT_EQ(FrontierSnapshot::DepthBucket(1), 1u);
    EXPECT_EQ(FrontierSnapshot::DepthBucket(2), 1u);
    EXPECT_EQ(FrontierSnapshot::DepthBucket(3), 2u);
    EXPECT_EQ(FrontierSnapshot::DepthBucket(6), 2u);
    EXPECT_EQ(FrontierSnapshot::DepthBucket(7), 3u);
    EXPECT_EQ(FrontierSnapshot::DepthBucket(UINT32_MAX),
              kFrontierDepthBuckets - 1);
}

TEST(Frontier, InspectorKeepsExactCountsAndBoundedRing)
{
    FrontierInspector inspector;
    for (uint64_t i = 0; i < kFrontierPickRing + 10; ++i) {
        inspector.RecordPick("fifo", i, static_cast<uint32_t>(i));
    }
    inspector.RecordPick("coverage", 0x999, 3);

    const std::map<std::string, uint64_t> counts = inspector.PickCounts();
    EXPECT_EQ(counts.at("fifo"), kFrontierPickRing + 10);
    EXPECT_EQ(counts.at("coverage"), 1u);

    const std::vector<FrontierInspector::Pick> picks =
        inspector.RecentPicks();
    ASSERT_EQ(picks.size(), kFrontierPickRing);
    // Oldest first, and the ring holds exactly the most recent picks.
    EXPECT_EQ(picks.front().seq + kFrontierPickRing - 1,
              picks.back().seq);
    EXPECT_STREQ(picks.back().strategy, "coverage");
    EXPECT_EQ(picks.back().hl_pc, 0x999u);
}

// --------------------------------------------------------------------------
// End to end: a 2-shard loopback batch's cluster table equals the
// single-shard table on every deterministic column (the wall-time
// column is excluded by AttributionCountsEqual).

TEST(Attribution, TwoShardClusterTableMatchesSingleShard)
{
    std::vector<service::JobSpec> jobs;
    int copy = 0;
    for (const char* id :
         {"py/argparse", "lua/cliargs", "py/simplejson", "lua/haml"}) {
        service::JobSpec spec;
        spec.workload = id;
        spec.label = std::string(id) + "#" + std::to_string(copy);
        spec.seed = static_cast<uint64_t>(++copy);
        spec.options.max_runs = 6;
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }
    shard::ShardCoordinator::Options options;
    options.service.seed = 2014;
    options.service.num_workers = 1;

    shard::ShardCoordinator single(options);
    std::string error;
    ASSERT_TRUE(shard::RunLoopbackShards(&single, jobs, 1, &error))
        << error;
    shard::ShardCoordinator sharded(options);
    ASSERT_TRUE(shard::RunLoopbackShards(&sharded, jobs, 2, &error))
        << error;

    const AttributionSnapshot one = single.ClusterAttribution();
    const AttributionSnapshot two = sharded.ClusterAttribution();
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one.dropped_locations, 0u);
    EXPECT_TRUE(AttributionCountsEqual(one, two));
    EXPECT_EQ(one.workloads.size(), 4u);
    EXPECT_GT(one.NewFingerprintsTotal(), 0u);
    EXPECT_GT(two.SolverSecondsTotal(), 0.0);

    // The report surfaces the same cluster table under
    // telemetry.attribution.
    const std::string report = sharded.RenderMergedReport();
    ASSERT_TRUE(support::JsonValid(report));
    JsonValue parsed;
    ASSERT_TRUE(ParseJson(report, &parsed));
    const JsonValue* telemetry = parsed.Find("telemetry");
    ASSERT_NE(telemetry, nullptr);
    const JsonValue* attribution = telemetry->Find("attribution");
    ASSERT_NE(attribution, nullptr);
    const JsonValue* cluster = attribution->Find("cluster");
    ASSERT_NE(cluster, nullptr);
    AttributionSnapshot reported;
    ASSERT_TRUE(DecodeAttributionSnapshot(*cluster, &reported, &error))
        << error;
    EXPECT_TRUE(AttributionCountsEqual(reported, two));
    const JsonValue* shards = attribution->Find("shards");
    ASSERT_NE(shards, nullptr);
    EXPECT_EQ(shards->items.size(), 2u);
}

}  // namespace
}  // namespace chef::obs
