/// \file
/// Tests for the instrumented interpreter substrate: string ops, memory
/// ops, interning, and bignum behaviour under the different interpreter
/// builds (§4.2). These validate the path-explosion model that the paper's
/// Figure 11/12 experiments measure.

#include <gtest/gtest.h>

#include "chef/engine.h"
#include "interp/int_ops.h"
#include "interp/mem_ops.h"
#include "interp/str_ops.h"

namespace chef::interp {
namespace {

using lowlevel::LowLevelRuntime;
using lowlevel::SymValue;

/// Runs a guest body under a fresh engine and returns engine stats.
EngineStats
ExploreGuest(const std::function<void(LowLevelRuntime&)>& body,
             uint64_t max_runs = 400)
{
    Engine::Options options;
    options.max_runs = max_runs;
    options.collect_timeline = false;
    Engine engine(options);
    engine.Explore([&body](LowLevelRuntime& rt) {
        body(rt);
        return Engine::GuestOutcome{};
    });
    return engine.stats();
}

SymStr
MakeSymbolicStr(LowLevelRuntime& rt, const std::string& name, int len,
                const std::string& defaults = "")
{
    SymStr s;
    for (int i = 0; i < len; ++i) {
        const uint64_t default_byte =
            i < static_cast<int>(defaults.size())
                ? static_cast<uint8_t>(defaults[i])
                : 0;
        s.push_back(rt.MakeSymbolicValue(name + std::to_string(i), 8,
                                         default_byte));
    }
    return s;
}

TEST(StrOps, ConcreteRoundTrip)
{
    const SymStr s = ConcreteStr("hello");
    EXPECT_EQ(ConcreteView(s), "hello");
    EXPECT_FALSE(AnySymbolic(s));
}

TEST(StrOps, VanillaEqForksPerByte)
{
    // Comparing a 4-byte symbolic string against "chef" with the
    // short-circuiting loop yields 5 low-level paths: mismatch at each of
    // the 4 positions, plus full match.
    const EngineStats stats = ExploreGuest([](LowLevelRuntime& rt) {
        StrOps ops(&rt, InterpBuildOptions::Vanilla());
        const SymStr s = MakeSymbolicStr(rt, "s", 4);
        rt.LogPc(1, 1);
        ops.Decide(ops.Eq(s, ConcreteStr("chef")), CHEF_LLPC);
        rt.LogPc(2, 2);
    });
    EXPECT_EQ(stats.ll_paths, 5u);
}

TEST(StrOps, OptimizedEqForksOnce)
{
    // With fast paths eliminated, Eq accumulates symbolically and the
    // single Decide branch yields exactly 2 paths.
    const EngineStats stats = ExploreGuest([](LowLevelRuntime& rt) {
        StrOps ops(&rt, InterpBuildOptions::FullyOptimized());
        const SymStr s = MakeSymbolicStr(rt, "s", 4);
        rt.LogPc(1, 1);
        ops.Decide(ops.Eq(s, ConcreteStr("chef")), CHEF_LLPC);
        rt.LogPc(2, 2);
    });
    EXPECT_EQ(stats.ll_paths, 2u);
}

TEST(StrOps, EqLengthMismatchIsConcreteFalse)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());
    StrOps ops(&rt, InterpBuildOptions::Vanilla());
    const SymStr s = MakeSymbolicStr(rt, "s", 3);
    const SymValue eq = ops.Eq(s, ConcreteStr("chef"));
    EXPECT_FALSE(eq.IsSymbolic());
    EXPECT_FALSE(eq.ConcreteTruth());
    EXPECT_TRUE(tree.pending().empty());
}

TEST(StrOps, FindCharEnumeratesPositions)
{
    // find('@') over 6 symbolic bytes: 7 outcomes (positions 0..5, not
    // found) -- the paper's validateEmail path count.
    const EngineStats stats = ExploreGuest([](LowLevelRuntime& rt) {
        StrOps ops(&rt, InterpBuildOptions::FullyOptimized());
        const SymStr s = MakeSymbolicStr(rt, "s", 6);
        rt.LogPc(1, 1);
        ops.FindChar(s, SymValue('@', 8));
        rt.LogPc(2, 2);
    });
    EXPECT_EQ(stats.ll_paths, 7u);
}

TEST(StrOps, FindSubstringTerminates)
{
    const EngineStats stats = ExploreGuest(
        [](LowLevelRuntime& rt) {
            StrOps ops(&rt, InterpBuildOptions::FullyOptimized());
            const SymStr s = MakeSymbolicStr(rt, "s", 5);
            rt.LogPc(1, 1);
            ops.Find(s, ConcreteStr("ab"));
            rt.LogPc(2, 2);
        },
        100);
    // Positions 0..3 plus not-found: 5 high-level-relevant outcomes.
    EXPECT_EQ(stats.ll_paths, 5u);
}

TEST(StrOps, HashNeutralizationKillsSymbolicHash)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());

    StrOps vanilla(&rt, InterpBuildOptions::Vanilla());
    StrOps optimized(&rt, InterpBuildOptions::FullyOptimized());
    SymStr s = MakeSymbolicStr(rt, "s", 4);
    EXPECT_TRUE(vanilla.Hash(s).IsSymbolic());
    EXPECT_FALSE(optimized.Hash(s).IsSymbolic());
    EXPECT_EQ(optimized.Hash(s).concrete(), 0u);
}

TEST(StrOps, HashContractEqualStringsEqualHashes)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());
    for (const auto& options : {InterpBuildOptions::Vanilla(),
                                InterpBuildOptions::FullyOptimized()}) {
        StrOps ops(&rt, options);
        const SymValue h1 = ops.Hash(ConcreteStr("key"));
        const SymValue h2 = ops.Hash(ConcreteStr("key"));
        EXPECT_EQ(h1.concrete(), h2.concrete());
    }
}

TEST(StrOps, CharClassifiers)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());
    StrOps ops(&rt, InterpBuildOptions::FullyOptimized());
    EXPECT_TRUE(ops.IsDigit(SymValue('7', 8)).ConcreteTruth());
    EXPECT_FALSE(ops.IsDigit(SymValue('x', 8)).ConcreteTruth());
    EXPECT_TRUE(ops.IsAlpha(SymValue('g', 8)).ConcreteTruth());
    EXPECT_TRUE(ops.IsAlpha(SymValue('G', 8)).ConcreteTruth());
    EXPECT_FALSE(ops.IsAlpha(SymValue('3', 8)).ConcreteTruth());
    EXPECT_TRUE(ops.IsSpace(SymValue('\t', 8)).ConcreteTruth());
    EXPECT_EQ(ops.ToLower(SymValue('A', 8)).concrete(), 'a');
    EXPECT_EQ(ops.ToLower(SymValue('a', 8)).concrete(), 'a');
    EXPECT_EQ(ops.ToUpper(SymValue('z', 8)).concrete(), 'Z');
}

TEST(StrOps, CompareOrdersLexicographically)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());
    StrOps ops(&rt, InterpBuildOptions::FullyOptimized());
    EXPECT_LT(ops.Compare(ConcreteStr("abc"), ConcreteStr("abd")), 0);
    EXPECT_GT(ops.Compare(ConcreteStr("b"), ConcreteStr("ab")), 0);
    EXPECT_EQ(ops.Compare(ConcreteStr("same"), ConcreteStr("same")), 0);
    EXPECT_LT(ops.Compare(ConcreteStr("ab"), ConcreteStr("abc")), 0);
}

TEST(MemOps, AllocationSizeConcretizationAvoidsForks)
{
    // Optimized build: upper_bound, no forking -> a single path.
    const EngineStats stats = ExploreGuest([](LowLevelRuntime& rt) {
        SymValue n = rt.MakeSymbolicValue("n", 32, 3);
        rt.Assume(SvUlt(n, SymValue(10, 32)));
        rt.LogPc(1, 1);
        const uint64_t capacity = ResolveAllocationSize(
            &rt, n, InterpBuildOptions::FullyOptimized());
        EXPECT_EQ(capacity, 9u);  // max n with n < 10.
        rt.LogPc(2, 2);
    });
    EXPECT_EQ(stats.ll_paths, 1u);
}

TEST(MemOps, VanillaAllocationForksPerSize)
{
    const EngineStats stats = ExploreGuest([](LowLevelRuntime& rt) {
        SymValue n = rt.MakeSymbolicValue("n", 32, 3);
        rt.Assume(SvUlt(n, SymValue(6, 32)));
        rt.LogPc(1, 1);
        ResolveAllocationSize(&rt, n, InterpBuildOptions::Vanilla(), 64);
        rt.LogPc(2, 2);
    });
    // One path per feasible size 0..5.
    EXPECT_EQ(stats.ll_paths, 6u);
}

TEST(MemOps, ResolveIndexForksOverCandidates)
{
    const EngineStats stats = ExploreGuest([](LowLevelRuntime& rt) {
        SymValue i = rt.MakeSymbolicValue("i", 32, 0);
        rt.Assume(SvUlt(i, SymValue(4, 32)));
        rt.LogPc(1, 1);
        const uint64_t resolved = ResolveIndex(&rt, i, 4);
        EXPECT_LT(resolved, 4u);
        rt.LogPc(2, 2);
    });
    EXPECT_EQ(stats.ll_paths, 4u);
}

TEST(MemOps, ResolveBucketConcreteHashNoForks)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());
    EXPECT_EQ(ResolveBucket(&rt, SymValue(13, 64), 8), 5u);
    EXPECT_TRUE(tree.pending().empty());
}

TEST(MemOps, InternTableDeduplicatesConcrete)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());
    StrOps ops(&rt, InterpBuildOptions::Vanilla());
    InternTable table(&ops);
    table.Intern(ConcreteStr("abc"));
    table.Intern(ConcreteStr("abc"));
    table.Intern(ConcreteStr("xyz"));
    EXPECT_EQ(table.size(), 2u);
}

TEST(MemOps, InterningSymbolicStringForks)
{
    // Interning a symbolic 3-byte string against an existing entry probes
    // bucket + equality: multiple low-level paths in the vanilla build.
    const EngineStats stats = ExploreGuest(
        [](LowLevelRuntime& rt) {
            StrOps ops(&rt, InterpBuildOptions::Vanilla());
            InternTable table(&ops);
            table.Intern(ConcreteStr("abc"));
            const SymStr s = MakeSymbolicStr(rt, "s", 3);
            rt.LogPc(1, 1);
            table.Intern(s);
            rt.LogPc(2, 2);
        },
        3000);
    EXPECT_GT(stats.ll_paths, 4u);
}

TEST(IntOps, NormalizeBignumConcreteIsFree)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());
    EXPECT_EQ(NormalizeBignum(&rt, SymValue(12345, 64)), 1);
    EXPECT_TRUE(tree.pending().empty());
}

TEST(IntOps, NormalizeBignumForksPerDigitBoundary)
{
    // A symbolic 64-bit value spans 1..5 digits of 15 bits: 5 paths.
    const EngineStats stats = ExploreGuest([](LowLevelRuntime& rt) {
        SymValue x = rt.MakeSymbolicValue("x", 64, 1);
        rt.Assume(SvSge(x, SymValue(0, 64)));
        rt.LogPc(1, 1);
        NormalizeBignum(&rt, x);
        rt.LogPc(2, 2);
    });
    EXPECT_EQ(stats.ll_paths, 5u);
}

TEST(IntOps, SmallIntCacheForksOnlyWhenVanilla)
{
    const EngineStats vanilla = ExploreGuest([](LowLevelRuntime& rt) {
        SymValue x = rt.MakeSymbolicValue("x", 64, 7);
        rt.LogPc(1, 1);
        SmallIntCacheLookup(&rt, x, InterpBuildOptions::Vanilla());
        rt.LogPc(2, 2);
    });
    EXPECT_EQ(vanilla.ll_paths, 2u);

    const EngineStats optimized = ExploreGuest([](LowLevelRuntime& rt) {
        SymValue x = rt.MakeSymbolicValue("x", 64, 7);
        rt.LogPc(1, 1);
        SmallIntCacheLookup(&rt, x, InterpBuildOptions::FullyOptimized());
        rt.LogPc(2, 2);
    });
    EXPECT_EQ(optimized.ll_paths, 1u);
}

TEST(IntOps, ParseIntConcrete)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());
    StrOps ops(&rt, InterpBuildOptions::FullyOptimized());
    SymValue value;
    ASSERT_TRUE(ParseInt(ops, ConcreteStr("-482"), 0, 4, &value));
    EXPECT_EQ(value.concrete_signed(), -482);
    ASSERT_TRUE(ParseInt(ops, ConcreteStr("+17"), 0, 3, &value));
    EXPECT_EQ(value.concrete_signed(), 17);
    EXPECT_FALSE(ParseInt(ops, ConcreteStr("12x"), 0, 3, &value));
    EXPECT_FALSE(ParseInt(ops, ConcreteStr(""), 0, 0, &value));
    EXPECT_FALSE(ParseInt(ops, ConcreteStr("-"), 0, 1, &value));
}

TEST(IntOps, FormatIntConcrete)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());
    EXPECT_EQ(ConcreteView(FormatInt(&rt, SymValue(0, 64))), "0");
    EXPECT_EQ(ConcreteView(FormatInt(&rt, SymValue(90210, 64))), "90210");
    EXPECT_EQ(ConcreteView(FormatInt(
                  &rt, SymValue(static_cast<uint64_t>(-345), 64))),
              "-345");
}

TEST(IntOps, ParseFormatRoundTripSymbolic)
{
    // Property: for each generated test case, formatting the parsed value
    // agrees with concrete parse of the inputs.
    Engine::Options options;
    options.max_runs = 60;
    Engine engine(options);
    const auto tests = engine.Explore([](LowLevelRuntime& rt) {
        StrOps ops(&rt, InterpBuildOptions::FullyOptimized());
        SymStr s = MakeSymbolicStr(rt, "s", 3, "123");
        rt.LogPc(1, 1);
        SymValue value;
        if (ParseInt(ops, s, 0, 3, &value)) {
            const SymStr formatted = FormatInt(&rt, value);
            // On this path the concrete views must agree with C++ parsing.
            const std::string text = ConcreteView(s);
            const long expected = std::strtol(text.c_str(), nullptr, 10);
            EXPECT_EQ(std::to_string(expected), ConcreteView(formatted));
        }
        rt.LogPc(2, 2);
        return Engine::GuestOutcome{};
    });
    EXPECT_GT(engine.stats().ll_paths, 10u);
}

}  // namespace
}  // namespace chef::interp
