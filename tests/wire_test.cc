/// \file
/// Tests for support/json.h (DOM parser + strict validation) and the
/// shard wire format: round-trip property tests over JobSpecs, corpus
/// deltas / gossip, yield snapshots, results and merged reports;
/// NaN/Inf-to-null doubles; rejection of non-serializable JobSpecs.

#include "shard/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "support/json.h"
#include "cache/shared_cache.h"
#include "support/rng.h"

namespace chef::shard {
namespace {

using service::JobResult;
using service::JobSpec;
using service::JobStatus;
using service::SchedulePolicy;
using service::ServiceStats;
using service::TestCorpus;
using support::JsonValid;
using support::JsonValue;
using support::ParseJson;

// ---------------------------------------------------------------------------
// support/json.h basics.
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsAndStructure)
{
    JsonValue value;
    ASSERT_TRUE(ParseJson("{\"a\":[1,2.5,\"x\",true,null]}", &value));
    const JsonValue* a = value.Find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items.size(), 5u);
    uint64_t u = 0;
    EXPECT_TRUE(a->items[0].AsUint64(&u));
    EXPECT_EQ(u, 1u);
    double d = 0.0;
    EXPECT_TRUE(a->items[1].AsDouble(&d));
    EXPECT_DOUBLE_EQ(d, 2.5);
    std::string s;
    EXPECT_TRUE(a->items[2].AsString(&s));
    EXPECT_EQ(s, "x");
    bool b = false;
    EXPECT_TRUE(a->items[3].AsBool(&b));
    EXPECT_TRUE(b);
    EXPECT_TRUE(a->items[4].IsNull());
    // null decodes as 0.0 through AsDouble (the NaN/Inf convention).
    EXPECT_TRUE(a->items[4].AsDouble(&d));
    EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(Json, StrictRejectsWhatTheOldTestParserRejected)
{
    EXPECT_TRUE(JsonValid("{\"k\":[1,2,3]}"));
    EXPECT_TRUE(JsonValid("  {\"k\":\"\\u0001\"} "));
    EXPECT_FALSE(JsonValid(""));
    EXPECT_FALSE(JsonValid("{\"k\":nan}"));
    EXPECT_FALSE(JsonValid("{\"k\":inf}"));
    EXPECT_FALSE(JsonValid("{\"k\":0x10}"));
    EXPECT_FALSE(JsonValid("{\"k\":1,}"));
    EXPECT_FALSE(JsonValid("{\"k\":1} extra"));
    EXPECT_FALSE(JsonValid("\"unterminated"));
    EXPECT_FALSE(JsonValid("{\"k\":+1}"));
    EXPECT_FALSE(JsonValid("{\"k\":.5}"));
    EXPECT_FALSE(JsonValid(std::string("\"a\x01b\"")));
}

TEST(Json, HexStringsDecodeAsUint64)
{
    JsonValue value;
    ASSERT_TRUE(
        ParseJson("{\"fp\":\"0xffffffffffffffff\",\"n\":12345}", &value));
    uint64_t u = 0;
    EXPECT_TRUE(value.GetUint64("fp", &u));
    EXPECT_EQ(u, 0xffffffffffffffffull);
    EXPECT_TRUE(value.GetUint64("n", &u));
    EXPECT_EQ(u, 12345u);
    // Above 2^53: the raw-token path must not round through a double.
    ASSERT_TRUE(ParseJson("{\"n\":9007199254740993}", &value));
    EXPECT_TRUE(value.GetUint64("n", &u));
    EXPECT_EQ(u, 9007199254740993ull);
}

TEST(Json, EscapedStringsRoundTrip)
{
    // Raw guest bytes: the writer escapes per byte, the parser decodes.
    std::string raw;
    for (int c = 0; c < 256; ++c) {
        raw += static_cast<char>(c);
    }
    support::JsonWriter writer;
    writer.BeginObject();
    writer.Key("s"), writer.Value(raw);
    writer.EndObject();
    const std::string doc = writer.Take();
    ASSERT_TRUE(JsonValid(doc)) << doc;
    JsonValue value;
    ASSERT_TRUE(ParseJson(doc, &value));
    std::string decoded;
    ASSERT_TRUE(value.GetString("s", &decoded));
    EXPECT_EQ(decoded, raw);
}

// ---------------------------------------------------------------------------
// JobSpec round-trips and serializability.
// ---------------------------------------------------------------------------

JobSpec
RandomSpec(Rng& rng)
{
    static const char* kWorkloads[] = {"py/argparse", "lua/JSON",
                                       "py/simplejson", "lua/haml"};
    static const StrategyKind kStrategies[] = {
        StrategyKind::kRandom,       StrategyKind::kDfs,
        StrategyKind::kBfs,          StrategyKind::kCupaPath,
        StrategyKind::kCupaCoverage, StrategyKind::kCupaPathInverted,
    };
    JobSpec spec;
    spec.workload = kWorkloads[rng.Next() % 4];
    spec.label = "label#" + std::to_string(rng.Next() % 100);
    spec.seed = rng.Next();
    spec.exact_seed = (rng.Next() & 1) != 0;
    spec.build.avoid_symbolic_pointers = (rng.Next() & 1) != 0;
    spec.build.neutralize_hashes = (rng.Next() & 1) != 0;
    spec.build.eliminate_fast_paths = (rng.Next() & 1) != 0;
    spec.options.strategy = kStrategies[rng.Next() % 6];
    spec.options.max_runs = rng.Next() % 100000;
    spec.options.max_seconds = static_cast<double>(rng.Next() % 1000);
    spec.options.max_steps_per_run = rng.Next() % 1000000;
    spec.options.fork_weight_decay =
        static_cast<double>(rng.Next() % 1000) / 1000.0;
    spec.options.branch_opcode_drop_fraction =
        static_cast<double>(rng.Next() % 1000) / 1000.0;
    spec.options.collect_timeline = (rng.Next() & 1) != 0;
    // 1 half the time (the omitted-on-wire default), 2..8 otherwise.
    spec.options.exploration_threads =
        (rng.Next() & 1) != 0
            ? 1
            : static_cast<uint32_t>(2 + rng.Next() % 7);
    spec.options.solver_options.enable_query_cache =
        (rng.Next() & 1) != 0;
    spec.options.solver_options.enable_model_reuse =
        (rng.Next() & 1) != 0;
    spec.options.solver_options.enable_independence_slicing =
        (rng.Next() & 1) != 0;
    spec.options.solver_options.enable_incremental_sat =
        (rng.Next() & 1) != 0;
    spec.options.solver_options.model_reuse_window = rng.Next() % 64;
    spec.options.solver_options.max_cache_bytes = rng.Next() % (1u << 24);
    spec.options.solver_options.max_conflicts = rng.Next() % 1000000;
    spec.options.solver_options.max_learned_clauses =
        rng.Next() % 100000;
    return spec;
}

void
ExpectSpecsEqual(const JobSpec& a, const JobSpec& b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.exact_seed, b.exact_seed);
    EXPECT_EQ(a.build.avoid_symbolic_pointers,
              b.build.avoid_symbolic_pointers);
    EXPECT_EQ(a.build.neutralize_hashes, b.build.neutralize_hashes);
    EXPECT_EQ(a.build.eliminate_fast_paths, b.build.eliminate_fast_paths);
    EXPECT_EQ(a.options.strategy, b.options.strategy);
    EXPECT_EQ(a.options.max_runs, b.options.max_runs);
    EXPECT_DOUBLE_EQ(a.options.max_seconds, b.options.max_seconds);
    EXPECT_EQ(a.options.max_steps_per_run, b.options.max_steps_per_run);
    EXPECT_NEAR(a.options.fork_weight_decay, b.options.fork_weight_decay,
                1e-6);
    EXPECT_NEAR(a.options.branch_opcode_drop_fraction,
                b.options.branch_opcode_drop_fraction, 1e-6);
    EXPECT_EQ(a.options.collect_timeline, b.options.collect_timeline);
    EXPECT_EQ(a.options.exploration_threads,
              b.options.exploration_threads);
    const auto& sa = a.options.solver_options;
    const auto& sb = b.options.solver_options;
    EXPECT_EQ(sa.enable_query_cache, sb.enable_query_cache);
    EXPECT_EQ(sa.enable_model_reuse, sb.enable_model_reuse);
    EXPECT_EQ(sa.enable_independence_slicing,
              sb.enable_independence_slicing);
    EXPECT_EQ(sa.enable_incremental_sat, sb.enable_incremental_sat);
    EXPECT_EQ(sa.model_reuse_window, sb.model_reuse_window);
    EXPECT_EQ(sa.max_cache_bytes, sb.max_cache_bytes);
    EXPECT_EQ(sa.max_conflicts, sb.max_conflicts);
    EXPECT_EQ(sa.max_learned_clauses, sb.max_learned_clauses);
}

TEST(Wire, RunRequestRoundTripsRandomSpecs)
{
    Rng rng(2014);
    for (int round = 0; round < 20; ++round) {
        RunRequest request;
        request.shard_id = static_cast<size_t>(rng.Next() % 8);
        request.num_shards = 8;
        request.service.seed = rng.Next();
        request.service.num_workers = 1 + rng.Next() % 8;
        request.service.max_total_seconds =
            static_cast<double>(rng.Next() % 100);
        request.service.share_solver_cache = (rng.Next() & 1) != 0;
        request.service.schedule_policy = (rng.Next() & 1) != 0
                                              ? SchedulePolicy::kFifo
                                              : SchedulePolicy::kYieldPriority;
        request.service.plateau_policy.enabled = (rng.Next() & 1) != 0;
        request.service.plateau_policy.deprioritize_after =
            rng.Next() % 5;
        request.service.plateau_policy.cancel_after = rng.Next() % 9;
        request.service.engine_threads =
            static_cast<uint32_t>(1 + rng.Next() % 4);
        const size_t jobs = 1 + rng.Next() % 5;
        for (size_t i = 0; i < jobs; ++i) {
            WireJob job;
            job.job_index = rng.Next() % 64;
            job.spec = RandomSpec(rng);
            request.jobs.push_back(std::move(job));
        }

        const std::string line = EncodeRun(request);
        ASSERT_TRUE(JsonValid(line)) << line;
        Message message;
        std::string error;
        ASSERT_TRUE(DecodeMessage(line, &message, &error)) << error;
        ASSERT_EQ(message.type, MessageType::kRun);
        const RunRequest& decoded = message.run;
        EXPECT_EQ(decoded.shard_id, request.shard_id);
        EXPECT_EQ(decoded.num_shards, request.num_shards);
        EXPECT_EQ(decoded.service.seed, request.service.seed);
        EXPECT_EQ(decoded.service.num_workers,
                  request.service.num_workers);
        EXPECT_EQ(decoded.service.engine_threads,
                  request.service.engine_threads);
        EXPECT_EQ(decoded.service.schedule_policy,
                  request.service.schedule_policy);
        EXPECT_EQ(decoded.service.plateau_policy.enabled,
                  request.service.plateau_policy.enabled);
        EXPECT_EQ(decoded.service.plateau_policy.cancel_after,
                  request.service.plateau_policy.cancel_after);
        ASSERT_EQ(decoded.jobs.size(), request.jobs.size());
        for (size_t i = 0; i < request.jobs.size(); ++i) {
            EXPECT_EQ(decoded.jobs[i].job_index,
                      request.jobs[i].job_index);
            ExpectSpecsEqual(decoded.jobs[i].spec, request.jobs[i].spec);
        }
    }
}

TEST(Wire, NonSerializableSpecsAreRejectedWithClearErrors)
{
    JobSpec with_hook;
    with_hook.workload = "py/argparse";
    with_hook.options.stop_requested = [] { return false; };
    std::string why;
    EXPECT_FALSE(CheckSerializable(with_hook, &why));
    EXPECT_NE(why.find("stop_requested"), std::string::npos);
    EXPECT_NE(why.find("py/argparse"), std::string::npos);

    cache::SharedSolverCache cache;
    JobSpec with_cache;
    with_cache.workload = "lua/JSON";
    with_cache.options.solver_options.shared_cache = &cache;
    EXPECT_FALSE(CheckSerializable(with_cache, &why));
    EXPECT_NE(why.find("shared_cache"), std::string::npos);
    EXPECT_NE(why.find("share_solver_cache"), std::string::npos);

    JobSpec plain;
    plain.workload = "py/argparse";
    EXPECT_TRUE(CheckSerializable(plain, &why));
}

// ---------------------------------------------------------------------------
// Gossip / delta round-trips.
// ---------------------------------------------------------------------------

TEST(Wire, GossipRoundTripsFingerprintsAndYields)
{
    TestCorpus corpus;
    Rng rng(7);
    for (int i = 0; i < 30; ++i) {
        TestCorpus::Entry entry;
        entry.workload = (i % 3 == 0) ? "py/argparse" : "lua/JSON";
        entry.fingerprint = rng.Next();
        entry.outcome_kind = "ok";
        ASSERT_TRUE(corpus.Insert(entry));
    }
    corpus.RecordJobYield("py/argparse", 12, 7);
    corpus.RecordJobYield("lua/JSON", 4, 0);

    const TestCorpus::Delta delta = corpus.Snapshot("shard3", 0);
    const std::string line = EncodeGossip(delta);
    ASSERT_TRUE(JsonValid(line)) << line;

    Message message;
    std::string error;
    ASSERT_TRUE(DecodeMessage(line, &message, &error)) << error;
    ASSERT_EQ(message.type, MessageType::kGossip);
    EXPECT_EQ(message.gossip.source, "shard3");
    EXPECT_EQ(message.gossip.sequence, delta.sequence);
    ASSERT_EQ(message.gossip.entries.size(), delta.entries.size());
    for (size_t i = 0; i < delta.entries.size(); ++i) {
        EXPECT_EQ(message.gossip.entries[i].workload,
                  delta.entries[i].workload);
        EXPECT_EQ(message.gossip.entries[i].fingerprint,
                  delta.entries[i].fingerprint);
    }
    ASSERT_EQ(message.gossip.yields.size(), 2u);
    const TestCorpus::WorkloadYield& py =
        message.gossip.yields.at("py/argparse");
    EXPECT_EQ(py.jobs_recorded, 1u);
    EXPECT_EQ(py.offered_total, 12u);
    EXPECT_EQ(py.accepted_total, 7u);
    EXPECT_DOUBLE_EQ(py.decayed_yield, 7.0);
    EXPECT_EQ(message.gossip.yields.at("lua/JSON").consecutive_zero_yield,
              1u);
}

TEST(Wire, ResultRoundTripsEntriesStatsAndNonFiniteDoubles)
{
    ResultMessage result;
    result.shard_id = 1;
    result.stats.jobs_submitted = 4;
    result.stats.jobs_completed = 3;
    result.stats.hl_paths = 17;
    // Non-finite doubles must serialize as null and decode as 0.0 (the
    // wire contract for "not a measurement").
    result.stats.jobs_per_second =
        std::numeric_limits<double>::quiet_NaN();
    result.stats.solver_seconds =
        std::numeric_limits<double>::infinity();
    result.stats.wall_seconds = 2.25;
    result.stats.engine_threads = 4;
    result.stats.wide_sessions_granted = 2;

    JobResult job;
    job.job_index = 7;
    job.workload = "py/argparse";
    job.label = "argparse#1";
    job.status = JobStatus::kCancelled;
    job.stop_source = "plateau";
    job.error = "workload plateaued";
    job.seed_used = 0xdeadbeefcafef00dull;
    job.engine_stats.elapsed_seconds =
        -std::numeric_limits<double>::infinity();
    job.engine_stats.hl_paths = 5;
    job.engine_stats.threads_used = 3;
    result.results.push_back(job);

    TestCorpus::Entry entry;
    entry.workload = "py/argparse";
    entry.fingerprint = 0xffffffffffffff01ull;
    entry.outcome_kind = "exception";
    entry.outcome_detail = "KeyError";
    entry.hl_length = 9;
    entry.ll_steps = 12345;
    entry.inputs = {{1, 0x41}, {2, 0xffffffffffffffffull}};
    result.corpus.source = "shard1";
    result.corpus.sequence = 30;
    result.corpus.entries.push_back(entry);
    result.corpus.yields["py/argparse"].jobs_recorded = 2;
    result.remote_entries = 11;
    result.remote_duplicate_hits = 3;

    const std::string line = EncodeResult(result);
    ASSERT_TRUE(JsonValid(line)) << line;
    EXPECT_EQ(line.find("nan"), std::string::npos);
    EXPECT_EQ(line.find("inf"), std::string::npos);

    Message message;
    std::string error;
    ASSERT_TRUE(DecodeMessage(line, &message, &error)) << error;
    ASSERT_EQ(message.type, MessageType::kResult);
    const ResultMessage& decoded = message.result;
    EXPECT_EQ(decoded.shard_id, 1u);
    EXPECT_EQ(decoded.stats.jobs_submitted, 4u);
    EXPECT_EQ(decoded.stats.hl_paths, 17u);
    EXPECT_DOUBLE_EQ(decoded.stats.jobs_per_second, 0.0);
    EXPECT_DOUBLE_EQ(decoded.stats.solver_seconds, 0.0);
    EXPECT_DOUBLE_EQ(decoded.stats.wall_seconds, 2.25);
    EXPECT_EQ(decoded.stats.engine_threads, 4u);
    EXPECT_EQ(decoded.stats.wide_sessions_granted, 2u);
    ASSERT_EQ(decoded.results.size(), 1u);
    EXPECT_EQ(decoded.results[0].job_index, 7u);
    EXPECT_EQ(decoded.results[0].status, JobStatus::kCancelled);
    EXPECT_EQ(decoded.results[0].stop_source, "plateau");
    EXPECT_EQ(decoded.results[0].error, "workload plateaued");
    EXPECT_EQ(decoded.results[0].seed_used, 0xdeadbeefcafef00dull);
    EXPECT_DOUBLE_EQ(decoded.results[0].engine_stats.elapsed_seconds,
                     0.0);
    EXPECT_EQ(decoded.results[0].engine_stats.hl_paths, 5u);
    EXPECT_EQ(decoded.results[0].engine_stats.threads_used, 3u);
    ASSERT_EQ(decoded.corpus.entries.size(), 1u);
    const TestCorpus::Entry& roundtripped = decoded.corpus.entries[0];
    EXPECT_EQ(roundtripped.workload, entry.workload);
    EXPECT_EQ(roundtripped.fingerprint, entry.fingerprint);
    EXPECT_EQ(roundtripped.outcome_kind, entry.outcome_kind);
    EXPECT_EQ(roundtripped.outcome_detail, entry.outcome_detail);
    EXPECT_EQ(roundtripped.hl_length, entry.hl_length);
    EXPECT_EQ(roundtripped.ll_steps, entry.ll_steps);
    EXPECT_EQ(roundtripped.inputs, entry.inputs);
    EXPECT_EQ(decoded.corpus.yields.at("py/argparse").jobs_recorded, 2u);
    EXPECT_EQ(decoded.remote_entries, 11u);
    EXPECT_EQ(decoded.remote_duplicate_hits, 3u);
}

// ---------------------------------------------------------------------------
// v2.4 attribution snapshots and forward compatibility.
// ---------------------------------------------------------------------------

obs::AttributionSnapshot
SampleAttribution()
{
    obs::AttributionSnapshot snapshot;
    obs::AttributionRow& a = snapshot.workloads["py/argparse"][0x10];
    a.solver_nanos = 1'500'000;
    a.solver_queries = 3;
    a.steps = 42;
    a.new_fingerprints = 2;
    a.runs = 1;
    obs::AttributionRow& b = snapshot.workloads["py/argparse"][0x20];
    b.steps = 7;
    b.forks = 2;
    b.parent = 0x10;
    snapshot.workloads["lua/JSON"][0x99].assume_failures = 1;
    snapshot.dropped_locations = 5;
    return snapshot;
}

TEST(Wire, GossipCarriesAttributionWhenNonEmpty)
{
    TestCorpus corpus;
    const TestCorpus::Delta delta = corpus.Snapshot("shard0", 0);

    // Omitted when absent or empty: byte-compat with v2.3.
    const obs::AttributionSnapshot empty;
    EXPECT_EQ(EncodeGossip(delta), EncodeGossip(delta, nullptr, nullptr,
                                                &empty));
    EXPECT_EQ(EncodeGossip(delta).find("attribution"), std::string::npos);

    const obs::AttributionSnapshot attribution = SampleAttribution();
    const std::string line =
        EncodeGossip(delta, nullptr, nullptr, &attribution);
    ASSERT_TRUE(JsonValid(line)) << line;
    Message message;
    std::string error;
    ASSERT_TRUE(DecodeMessage(line, &message, &error)) << error;
    ASSERT_TRUE(message.has_attribution);
    const obs::AttributionRow& row =
        message.attribution.workloads.at("py/argparse").at(0x10);
    EXPECT_EQ(row.solver_nanos, 1'500'000u);
    EXPECT_EQ(row.solver_queries, 3u);
    EXPECT_EQ(row.steps, 42u);
    EXPECT_EQ(row.new_fingerprints, 2u);
    EXPECT_EQ(
        message.attribution.workloads.at("py/argparse").at(0x20).parent,
        0x10u);
    EXPECT_EQ(message.attribution.dropped_locations, 5u);
}

TEST(Wire, ResultRoundTripsAttribution)
{
    ResultMessage result;
    result.shard_id = 0;
    result.corpus.source = "shard0";
    result.attribution = SampleAttribution();
    const std::string line = EncodeResult(result);
    ASSERT_TRUE(JsonValid(line)) << line;
    Message message;
    std::string error;
    ASSERT_TRUE(DecodeMessage(line, &message, &error)) << error;
    EXPECT_TRUE(obs::AttributionCountsEqual(message.result.attribution,
                                            result.attribution));
    EXPECT_EQ(message.result.attribution.workloads.at("py/argparse")
                  .at(0x10)
                  .solver_nanos,
              1'500'000u);

    // Empty table: the key is omitted entirely (a v2.3 run's result
    // encodes byte-identically).
    ResultMessage plain;
    plain.corpus.source = "shard0";
    EXPECT_EQ(EncodeResult(plain).find("attribution"), std::string::npos);
}

// The forward-compatibility regression: a v2.3-shaped decoder is one
// that does not know the v2.4 "attribution" key — and tomorrow's v2.5
// will add keys today's decoder does not know. Every wire decoder and
// DecodeMetricsSnapshot must ignore unknown keys rather than fail, so
// mixed-minor clusters keep talking. Simulate the future by splicing
// unknown keys into otherwise-valid frames.
TEST(Wire, DecodersIgnoreUnknownKeysFromNewerMinors)
{
    TestCorpus corpus;
    TestCorpus::Entry entry;
    entry.workload = "py/argparse";
    entry.fingerprint = 0x1234;
    entry.outcome_kind = "ok";
    ASSERT_TRUE(corpus.Insert(entry));
    const TestCorpus::Delta delta = corpus.Snapshot("shard0", 0);
    const obs::AttributionSnapshot attribution = SampleAttribution();

    const auto splice = [](std::string line, const std::string& extra) {
        // After the opening '{' of the top-level object.
        return "{" + extra + "," + line.substr(1);
    };
    const std::string unknown =
        "\"v25_hint\":{\"nested\":[1,2,3]},\"v25_flag\":true";

    Message message;
    std::string error;

    // Gossip with unknown top-level keys, carrying v2.4 attribution a
    // v2.3 decoder would also have skipped over.
    const std::string gossip = splice(
        EncodeGossip(delta, nullptr, nullptr, &attribution), unknown);
    ASSERT_TRUE(JsonValid(gossip));
    ASSERT_TRUE(DecodeMessage(gossip, &message, &error)) << error;
    EXPECT_EQ(message.type, MessageType::kGossip);
    ASSERT_EQ(message.gossip.entries.size(), 1u);
    EXPECT_EQ(message.gossip.entries[0].fingerprint, 0x1234u);
    EXPECT_TRUE(message.has_attribution);

    // Result with unknown keys at top level.
    ResultMessage result;
    result.shard_id = 2;
    result.corpus.source = "shard2";
    result.attribution = attribution;
    message = Message();
    const std::string result_line = splice(EncodeResult(result), unknown);
    ASSERT_TRUE(JsonValid(result_line));
    ASSERT_TRUE(DecodeMessage(result_line, &message, &error)) << error;
    EXPECT_EQ(message.result.shard_id, 2u);
    EXPECT_TRUE(obs::AttributionCountsEqual(message.result.attribution,
                                            attribution));

    // A metrics snapshot with unknown keys (as a future minor might
    // embed) must decode its known fields and skip the rest.
    const std::string metrics_doc =
        "{\"future_section\":{\"x\":1},"
        "\"counters\":{\"solver.queries\":7},"
        "\"gauges\":{},\"histograms\":[]}";
    JsonValue metrics_value;
    ASSERT_TRUE(ParseJson(metrics_doc, &metrics_value));
    obs::MetricsSnapshot metrics;
    ASSERT_TRUE(
        obs::DecodeMetricsSnapshot(metrics_value, &metrics, &error))
        << error;
    EXPECT_EQ(metrics.CounterValue("solver.queries"), 7u);

    // Same for an attribution table whose locations grow new columns.
    const std::string attr_doc =
        "{\"schema_rev\":9,\"dropped_locations\":0,"
        "\"workloads\":[{\"workload\":\"w\",\"future\":true,"
        "\"locations\":[{\"hl_pc\":\"0x5\",\"steps\":3,"
        "\"v25_column\":17}]}]}";
    JsonValue attr_value;
    ASSERT_TRUE(ParseJson(attr_doc, &attr_value));
    obs::AttributionSnapshot decoded;
    ASSERT_TRUE(
        obs::DecodeAttributionSnapshot(attr_value, &decoded, &error))
        << error;
    EXPECT_EQ(decoded.workloads.at("w").at(0x5).steps, 3u);
}

TEST(Wire, MalformedAndUnknownMessagesFailLoudly)
{
    Message message;
    std::string error;
    EXPECT_FALSE(DecodeMessage("not json", &message, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(DecodeMessage("{\"type\":\"warp\"}", &message, &error));
    EXPECT_NE(error.find("warp"), std::string::npos);
    // A run request with a missing field must not decode to defaults.
    EXPECT_FALSE(DecodeMessage("{\"type\":\"run\",\"shard_id\":0}",
                               &message, &error));

    EXPECT_TRUE(DecodeMessage(EncodeShutdown(), &message, &error));
    EXPECT_EQ(message.type, MessageType::kShutdown);
    EXPECT_TRUE(DecodeMessage(EncodeHello(), &message, &error));
    EXPECT_EQ(message.type, MessageType::kHello);
    EXPECT_EQ(message.protocol_version, kProtocolVersion);
    EXPECT_TRUE(DecodeMessage(EncodeError("boom"), &message, &error));
    EXPECT_EQ(message.type, MessageType::kError);
    EXPECT_EQ(message.error, "boom");
}

}  // namespace
}  // namespace chef::shard
