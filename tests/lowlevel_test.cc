/// \file
/// Tests for SymValue concolic arithmetic, the execution tree, and the
/// low-level runtime.

#include <gtest/gtest.h>

#include "lowlevel/exec_tree.h"
#include "lowlevel/runtime.h"
#include "lowlevel/symvalue.h"
#include "support/rng.h"

namespace chef::lowlevel {
namespace {

using solver::Assignment;
using solver::EvalConcrete;
using solver::QueryResult;

TEST(SymValue, ConcreteOnlyCarriesNoExpr)
{
    const SymValue a(5, 32);
    const SymValue b(7, 32);
    const SymValue sum = SvAdd(a, b);
    EXPECT_EQ(sum.concrete(), 12u);
    EXPECT_FALSE(sum.IsSymbolic());
}

TEST(SymValue, SymbolicPropagates)
{
    const SymValue x(5, 32, solver::MakeVar(1, "x", 32));
    const SymValue sum = SvAdd(x, SymValue(7, 32));
    EXPECT_EQ(sum.concrete(), 12u);
    ASSERT_TRUE(sum.IsSymbolic());
    Assignment assignment;
    assignment.Set(1, 100);
    EXPECT_EQ(EvalConcrete(sum.ToExpr(), assignment), 107u);
}

TEST(SymValue, ConstantExpressionIsDropped)
{
    const SymValue v(9, 16, solver::MakeConst(9, 16));
    EXPECT_FALSE(v.IsSymbolic());
}

/// Property: concolic ops keep concrete and symbolic views consistent: the
/// expression evaluated under the inputs equals the concrete value.
class SymValueConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SymValueConsistency, ConcreteMatchesExprEval)
{
    Rng rng(GetParam());
    Assignment inputs;
    const uint64_t xv = rng.Next() & 0xffffffffu;
    const uint64_t yv = rng.Next() & 0xffffffffu;
    inputs.Set(1, xv);
    inputs.Set(2, yv);
    const SymValue x(xv, 32, solver::MakeVar(1, "x", 32));
    const SymValue y(yv, 32, solver::MakeVar(2, "y", 32));

    using Op = SymValue (*)(const SymValue&, const SymValue&);
    const Op ops[] = {SvAdd, SvSub, SvMul,  SvUDiv, SvSDiv, SvURem,
                      SvSRem, SvAnd, SvOr,  SvXor,  SvShl,  SvLShr,
                      SvAShr, SvEq,  SvNe,  SvUlt,  SvUle,  SvSlt,
                      SvSle,  SvSgt, SvSge};
    for (const Op op : ops) {
        const SymValue result = op(x, y);
        ASSERT_TRUE(result.IsSymbolic());
        EXPECT_EQ(result.concrete(),
                  EvalConcrete(result.ToExpr(), inputs));
    }
    const SymValue extended = SvSExt(SvTrunc(x, 8), 64);
    EXPECT_EQ(extended.concrete(),
              EvalConcrete(extended.ToExpr(), inputs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymValueConsistency,
                         ::testing::Values(3, 5, 8, 13, 21, 34));

TEST(ExecTree, RegistersAlternateOnFirstBranch)
{
    ExecutionTree tree;
    const auto cond = solver::MakeEq(solver::MakeVar(1, "x", 8),
                                     solver::MakeConst(1, 8));
    tree.BeginRun();
    auto result = tree.Advance(100, true, cond, solver::MakeBoolNot(cond));
    ASSERT_NE(result.registered, 0u);
    const AlternateState* state = tree.FindPending(result.registered);
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(state->llpc, 100u);
    EXPECT_FALSE(state->direction);
    EXPECT_EQ(state->path_condition.size(), 1u);
    EXPECT_EQ(tree.pending().size(), 1u);
}

TEST(ExecTree, NoDuplicateRegistration)
{
    ExecutionTree tree;
    const auto cond = solver::MakeEq(solver::MakeVar(1, "x", 8),
                                     solver::MakeConst(1, 8));
    const auto negated = solver::MakeBoolNot(cond);
    tree.BeginRun();
    tree.Advance(100, true, cond, negated);
    // Second run takes the same direction: no new registration.
    tree.BeginRun();
    auto result = tree.Advance(100, true, cond, negated);
    EXPECT_EQ(result.registered, 0u);
    EXPECT_EQ(tree.pending().size(), 1u);
}

TEST(ExecTree, NaturalExplorationRemovesPending)
{
    ExecutionTree tree;
    std::vector<StateId> removed;
    tree.set_on_pending_removed(
        [&removed](StateId id) { removed.push_back(id); });
    const auto cond = solver::MakeEq(solver::MakeVar(1, "x", 8),
                                     solver::MakeConst(1, 8));
    const auto negated = solver::MakeBoolNot(cond);
    tree.BeginRun();
    auto first = tree.Advance(100, true, cond, negated);
    const StateId pending_id = first.registered;
    // A later run takes the other direction without the strategy ever
    // selecting the alternate: the pending state is consumed.
    tree.BeginRun();
    auto second = tree.Advance(100, false, negated, cond);
    EXPECT_EQ(second.registered, 0u);
    EXPECT_TRUE(tree.pending().empty());
    ASSERT_EQ(removed.size(), 1u);
    EXPECT_EQ(removed[0], pending_id);
}

TEST(ExecTree, PathConditionAccumulates)
{
    ExecutionTree tree;
    const auto x = solver::MakeVar(1, "x", 8);
    const auto c1 = solver::MakeUgt(x, solver::MakeConst(10, 8));
    const auto c2 = solver::MakeUlt(x, solver::MakeConst(100, 8));
    tree.BeginRun();
    tree.Advance(1, true, c1, solver::MakeBoolNot(c1));
    auto result = tree.Advance(2, true, c2, solver::MakeBoolNot(c2));
    // The alternate at the second branch carries the first constraint plus
    // the negation of the second.
    ASSERT_NE(result.registered, 0u);
    const AlternateState* alternate = tree.FindPending(result.registered);
    ASSERT_NE(alternate, nullptr);
    ASSERT_EQ(alternate->path_condition.size(), 2u);
    EXPECT_TRUE(solver::Expr::Equal(alternate->path_condition[0], c1));
    EXPECT_EQ(tree.current_path_condition().size(), 2u);
}

TEST(ExecTree, TakePendingAndMarkInfeasible)
{
    ExecutionTree tree;
    const auto cond = solver::MakeEq(solver::MakeVar(1, "x", 8),
                                     solver::MakeConst(1, 8));
    tree.BeginRun();
    auto result = tree.Advance(7, true, cond, solver::MakeBoolNot(cond));
    const StateId id = result.registered;
    AlternateState state = tree.TakePending(id);
    EXPECT_TRUE(tree.pending().empty());
    tree.MarkInfeasible(state);
    // Re-running the same branch direction must not re-register the
    // infeasible direction.
    tree.BeginRun();
    auto again = tree.Advance(7, true, cond, solver::MakeBoolNot(cond));
    EXPECT_EQ(again.registered, 0u);
}

class RuntimeFixture : public ::testing::Test
{
  protected:
    RuntimeFixture()
        : runtime_(&tree_, &solver_, lowlevel::LowLevelRuntime::Options{})
    {
    }

    ExecutionTree tree_;
    solver::Solver solver_;
    LowLevelRuntime runtime_;
};

TEST_F(RuntimeFixture, MakeSymbolicUsesDefaultsThenAssignment)
{
    runtime_.BeginRun(Assignment());
    SymValue x = runtime_.MakeSymbolicValue("x", 8, 42);
    EXPECT_EQ(x.concrete(), 42u);
    EXPECT_TRUE(x.IsSymbolic());
    runtime_.EndRun();

    Assignment inputs;
    inputs.Set(1, 7);
    runtime_.BeginRun(inputs);
    x = runtime_.MakeSymbolicValue("x", 8, 42);
    EXPECT_EQ(x.concrete(), 7u);
}

TEST_F(RuntimeFixture, ConcreteBranchDoesNotFork)
{
    runtime_.BeginRun(Assignment());
    EXPECT_TRUE(runtime_.Branch(SymValue(1, 1), CHEF_LLPC));
    EXPECT_FALSE(runtime_.Branch(SymValue(0, 1), CHEF_LLPC));
    EXPECT_TRUE(tree_.pending().empty());
}

TEST_F(RuntimeFixture, SymbolicBranchForksAndFollowsConcrete)
{
    runtime_.BeginRun(Assignment());
    SymValue x = runtime_.MakeSymbolicValue("x", 8, 5);
    const SymValue cond = SvUgt(x, SymValue(10, 8));
    EXPECT_FALSE(runtime_.Branch(cond, 1234));
    EXPECT_EQ(tree_.pending().size(), 1u);
    const RunStats stats = runtime_.EndRun();
    EXPECT_EQ(stats.symbolic_branches, 1u);
    EXPECT_EQ(stats.registered_states, 1u);
}

TEST_F(RuntimeFixture, AssumeViolationAbortsPath)
{
    runtime_.BeginRun(Assignment());
    SymValue x = runtime_.MakeSymbolicValue("x", 8, 5);
    runtime_.Assume(SvUgt(x, SymValue(100, 8)));  // Concretely false.
    EXPECT_EQ(runtime_.status(), PathStatus::kAssumeViolated);
    // The assumption is still in the path condition for re-solving.
    EXPECT_EQ(runtime_.current_path_condition().size(), 1u);
}

TEST_F(RuntimeFixture, ConcretizeAddsEqualityConstraint)
{
    runtime_.BeginRun(Assignment());
    SymValue x = runtime_.MakeSymbolicValue("x", 8, 33);
    EXPECT_EQ(runtime_.Concretize(x), 33u);
    ASSERT_EQ(runtime_.current_path_condition().size(), 1u);
    // The constraint pins x to 33.
    Assignment model;
    ASSERT_EQ(solver_.Solve(runtime_.current_path_condition(), &model),
              QueryResult::kSat);
    EXPECT_EQ(model.Get(1), 33u);
}

TEST_F(RuntimeFixture, UpperBoundUnderPathCondition)
{
    runtime_.BeginRun(Assignment());
    SymValue x = runtime_.MakeSymbolicValue("x", 8, 5);
    // Branch concretely taken: x < 57.
    runtime_.Branch(SvUlt(x, SymValue(57, 8)), CHEF_LLPC);
    EXPECT_EQ(runtime_.UpperBound(x), 56u);
}

TEST_F(RuntimeFixture, StepBudgetFlagsHang)
{
    LowLevelRuntime::Options options;
    options.max_steps_per_run = 100;
    LowLevelRuntime tight(&tree_, &solver_, options);
    tight.BeginRun(Assignment());
    for (int i = 0; i < 200 && tight.running(); ++i) {
        tight.CountStep();
    }
    EXPECT_EQ(tight.status(), PathStatus::kHang);
    EXPECT_TRUE(tight.out_of_budget());
}

TEST_F(RuntimeFixture, ForkWeightStreakDecays)
{
    // Three consecutive forks at the same LLPC: weights p^2, p, 1.
    runtime_.BeginRun(Assignment());
    SymValue s0 = runtime_.MakeSymbolicValue("s0", 8, 'a');
    SymValue s1 = runtime_.MakeSymbolicValue("s1", 8, 'b');
    SymValue s2 = runtime_.MakeSymbolicValue("s2", 8, 'c');
    const uint64_t loop_llpc = 999;
    std::vector<StateId> ids;
    for (const SymValue* byte : {&s0, &s1, &s2}) {
        runtime_.Branch(SvEq(*byte, SymValue('x', 8)), loop_llpc);
    }
    ASSERT_EQ(tree_.pending().size(), 3u);
    std::vector<double> weights;
    for (const auto& [id, state] : tree_.pending()) {
        weights.push_back(state.fork_weight);
    }
    std::sort(weights.begin(), weights.end());
    EXPECT_DOUBLE_EQ(weights[0], 0.75 * 0.75);
    EXPECT_DOUBLE_EQ(weights[1], 0.75);
    EXPECT_DOUBLE_EQ(weights[2], 1.0);
}

TEST_F(RuntimeFixture, ForkWeightStreakBrokenByOtherSite)
{
    runtime_.BeginRun(Assignment());
    SymValue s0 = runtime_.MakeSymbolicValue("s0", 8, 'a');
    SymValue s1 = runtime_.MakeSymbolicValue("s1", 8, 'b');
    runtime_.Branch(SvEq(s0, SymValue('x', 8)), 111);
    runtime_.Branch(SvEq(s1, SymValue('x', 8)), 222);
    for (const auto& [id, state] : tree_.pending()) {
        EXPECT_DOUBLE_EQ(state.fork_weight, 1.0);
    }
}

TEST_F(RuntimeFixture, LlpcFromLocationIsStable)
{
    const uint64_t a = LlpcFromLocation("foo.cc", 10);
    const uint64_t b = LlpcFromLocation("foo.cc", 10);
    const uint64_t c = LlpcFromLocation("foo.cc", 11);
    const uint64_t d = LlpcFromLocation("bar.cc", 10);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
}

}  // namespace
}  // namespace chef::lowlevel
