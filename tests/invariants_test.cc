/// \file
/// System-wide invariants from DESIGN.md §6:
///  - interpreter build optimizations preserve guest semantics,
///  - exhaustive exploration enumerates each feasible HL path once,
///  - every emitted test case replays to its predicted outcome,
///  - determinism of replay across repeated runs.

#include <gtest/gtest.h>

#include "support/rng.h"
#include "workloads/packages.h"

namespace chef::workloads {
namespace {

/// Replays a Python package under a given build with concrete inputs.
PyReplayResult
ReplayPyWithBuild(const PyPackage& package,
                  const std::shared_ptr<minipy::Program>& program,
                  const solver::Assignment& inputs,
                  interp::InterpBuildOptions build)
{
    // ReplayPy always uses the vanilla build; emulate other builds by
    // driving the engine's run function once with fixed inputs.
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    lowlevel::LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(inputs);
    minipy::Vm::Options options;
    options.build = build;
    minipy::Vm vm(&rt, program, options);
    PyReplayResult result;
    minipy::VmOutcome module_outcome = vm.RunModule();
    if (!module_outcome.ok) {
        result.ok = false;
        result.exception_type = module_outcome.exception_type;
        return result;
    }
    std::vector<minipy::PyRef> args;
    for (const SymbolicArg& arg : package.test.args) {
        if (arg.kind == SymbolicArg::Kind::kStr) {
            interp::SymStr bytes;
            for (int i = 0; i < arg.length; ++i) {
                bytes.push_back(rt.MakeSymbolicValue(
                    arg.name + "[" + std::to_string(i) + "]", 8,
                    i < static_cast<int>(arg.default_bytes.size())
                        ? static_cast<uint8_t>(arg.default_bytes[i])
                        : 0));
            }
            args.push_back(minipy::MakeStr(std::move(bytes)));
        } else {
            args.push_back(minipy::MakeInt(lowlevel::SvSExt(
                rt.MakeSymbolicValue(
                    arg.name, 32,
                    static_cast<uint64_t>(arg.default_int)),
                64)));
        }
    }
    minipy::VmOutcome outcome =
        vm.CallGlobal(package.test.entry, std::move(args));
    result.ok = outcome.ok;
    result.exception_type = outcome.exception_type;
    result.exception_message = outcome.exception_message;
    result.output = vm.output();
    return result;
}

/// Builds a random concrete input assignment for a package.
solver::Assignment
RandomInputs(const PyPackage& package, Rng* rng)
{
    solver::Assignment inputs;
    uint32_t var = 1;
    for (const SymbolicArg& arg : package.test.args) {
        const int count =
            arg.kind == SymbolicArg::Kind::kStr ? arg.length : 1;
        for (int i = 0; i < count; ++i) {
            // Mostly-printable bytes exercise the parsers' interesting
            // regions more often than uniform bytes.
            const uint64_t value =
                rng->Chance(0.8) ? 0x20 + rng->NextBelow(0x5f)
                                 : rng->NextBelow(256);
            inputs.Set(var++, value);
        }
    }
    return inputs;
}

/// DESIGN.md invariant: all four interpreter builds produce identical
/// guest outcomes for identical concrete inputs.
class BuildSemanticsProperty
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BuildSemanticsProperty, BuildsAgreeOnConcreteInputs)
{
    const PyPackage& package = PyPackageByName(GetParam());
    auto program = CompilePyOrDie(package.test.source);
    Rng rng(interp::ConcreteStr(package.name).size() * 7919 + 13);
    for (int round = 0; round < 12; ++round) {
        const solver::Assignment inputs = RandomInputs(package, &rng);
        PyReplayResult reference;
        for (int level = 0; level < 4; ++level) {
            const PyReplayResult result = ReplayPyWithBuild(
                package, program, inputs,
                interp::InterpBuildOptions::Level(level));
            if (level == 0) {
                reference = result;
                continue;
            }
            EXPECT_EQ(result.ok, reference.ok)
                << package.name << " round " << round << " level "
                << level;
            EXPECT_EQ(result.exception_type, reference.exception_type)
                << package.name << " round " << round << " level "
                << level;
            EXPECT_EQ(result.output, reference.output)
                << package.name << " round " << round << " level "
                << level;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PyPackagesSweep, BuildSemanticsProperty,
                         ::testing::Values("argparse", "ConfigParser",
                                           "HTMLParser", "simplejson",
                                           "unicodecsv", "xlrd"));

TEST(Invariants, ExhaustiveEnumerationCountsHlPathsOnce)
{
    const char* source = R"(def f(s):
    n = 0
    if s[0] == 'a':
        n = n + 1
    if s[1] == 'b':
        n = n + 2
    return n
)";
    PySymbolicTest spec;
    spec.source = source;
    spec.entry = "f";
    spec.args = {SymbolicArg::Str("s", 2)};
    auto program = CompilePyOrDie(source);
    Engine::Options options;
    options.max_runs = 200;
    Engine engine(options);
    const auto tests = engine.Explore(MakePyRunFn(
        program, spec, interp::InterpBuildOptions::FullyOptimized()));
    // 4 feasible high-level paths; relevant test cases == hl_paths and
    // each final HL node is distinct.
    EXPECT_EQ(engine.stats().hl_paths, 4u);
    std::set<uint32_t> final_nodes;
    uint64_t relevant = 0;
    for (const TestCase& test : tests) {
        if (test.new_hl_path) {
            ++relevant;
            EXPECT_TRUE(final_nodes.insert(test.hl_final_node).second);
        }
    }
    EXPECT_EQ(relevant, engine.stats().hl_paths);
}

TEST(Invariants, ReplayIsDeterministic)
{
    const PyPackage& package = PyPackageByName("simplejson");
    auto program = CompilePyOrDie(package.test.source);
    Rng rng(99);
    for (int round = 0; round < 5; ++round) {
        const solver::Assignment inputs = RandomInputs(package, &rng);
        const PyReplayResult a = ReplayPy(program, package.test, inputs);
        const PyReplayResult b = ReplayPy(program, package.test, inputs);
        EXPECT_EQ(a.ok, b.ok);
        EXPECT_EQ(a.exception_type, b.exception_type);
        EXPECT_EQ(a.output, b.output);
        EXPECT_EQ(a.covered_lines, b.covered_lines);
    }
}

TEST(Invariants, EveryRelevantTestCaseReplaysToItsOutcome)
{
    // Soundness sweep over two packages with non-trivial exceptions.
    for (const char* name : {"ConfigParser", "unicodecsv"}) {
        const PyPackage& package = PyPackageByName(name);
        auto program = CompilePyOrDie(package.test.source);
        Engine::Options options;
        options.max_runs = 60;
        options.max_seconds = 15.0;
        options.max_steps_per_run = 60'000;
        Engine engine(options);
        const auto tests = engine.Explore(MakePyRunFn(
            program, package.test,
            interp::InterpBuildOptions::FullyOptimized()));
        for (const TestCase& test : tests) {
            if (!test.new_hl_path || test.outcome_kind == "hang") {
                continue;
            }
            const PyReplayResult replay =
                ReplayPy(program, package.test, test.inputs);
            if (test.outcome_kind == "ok") {
                EXPECT_TRUE(replay.ok) << name << ": unexpected "
                                       << replay.exception_type;
            } else {
                EXPECT_FALSE(replay.ok) << name;
                EXPECT_EQ(replay.exception_type, test.outcome_detail)
                    << name;
            }
        }
    }
}

TEST(Invariants, LuaBuildsAgreeOnConcreteInputs)
{
    const LuaPackage& package = LuaPackageByName("markdown");
    auto chunk = ParseLuaOrDie(package.test.source);
    Rng rng(4242);
    for (int round = 0; round < 8; ++round) {
        solver::Assignment inputs;
        for (uint32_t var = 1; var <= 6; ++var) {
            inputs.Set(var, 0x20 + rng.NextBelow(0x5f));
        }
        const LuaReplayResult vanilla =
            ReplayLua(chunk, package.test, inputs);
        // ReplayLua is always vanilla; compare against an optimized-run
        // of the same inputs through the engine-facing run function by
        // using replay twice (determinism) plus the engine's outcome.
        const LuaReplayResult again =
            ReplayLua(chunk, package.test, inputs);
        EXPECT_EQ(vanilla.ok, again.ok);
        EXPECT_EQ(vanilla.output, again.output);
    }
}

}  // namespace
}  // namespace chef::workloads
