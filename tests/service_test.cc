/// \file
/// Tests for the parallel exploration service: corpus deduplication,
/// per-job seed determinism across worker counts, cooperative
/// cancellation under the service wall-clock budget, stats aggregation,
/// and JSON reporting.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "lowlevel/runtime.h"
#include "lowlevel/symvalue.h"
#include "service/corpus.h"
#include "service/report.h"
#include "service/service.h"
#include "workloads/registry.h"

namespace chef::service {
namespace {

using lowlevel::LowLevelRuntime;
using lowlevel::SymValue;

enum Opcode : uint32_t { kOpStmt = 1, kOpCmp = 2 };

// ---------------------------------------------------------------------------
// Custom registry workloads for service tests.
// ---------------------------------------------------------------------------

/// Hang-heavy guest: 20 symbolic byte branches (~1M paths) and every
/// path then spins until the per-run step budget flags a hang. Without
/// external cancellation a session over this guest runs for minutes.
Engine::GuestOutcome
HangHeavyGuest(LowLevelRuntime& rt)
{
    uint64_t hlpc = 1;
    for (uint32_t i = 0; i < 20; ++i) {
        SymValue byte =
            rt.MakeSymbolicValue("b" + std::to_string(i), 8, 1);
        rt.LogPc(hlpc++, kOpCmp);
        if (rt.Branch(SvEq(byte, SymValue(0, 8)), CHEF_LLPC)) {
            rt.LogPc(hlpc + 100, kOpStmt);
        }
    }
    while (rt.CountStep()) {
    }
    return {"hang", "loop"};
}

/// Registers the custom test workloads once per process.
void
EnsureTestWorkloads()
{
    static const bool registered = [] {
        workloads::WorkloadInfo hang;
        hang.id = "test/hang-heavy";
        hang.language = "custom";
        hang.description = "every path spins until the step budget";
        hang.make_run = [](const interp::InterpBuildOptions&) {
            return Engine::RunFn(HangHeavyGuest);
        };
        return workloads::RegisterWorkload(std::move(hang));
    }();
    ASSERT_TRUE(registered);
}

/// A small real-workload batch exercising both guest languages.
std::vector<JobSpec>
SmallBatch()
{
    std::vector<JobSpec> jobs;
    for (const char* id :
         {"py/argparse", "py/simplejson", "lua/cliargs", "lua/haml"}) {
        JobSpec spec;
        spec.workload = id;
        spec.options.max_runs = 12;
        // Work is bounded by max_runs; keep the wall budget out of play
        // so results stay worker-count-deterministic even on a loaded
        // machine (a session truncated by its own wall clock is not).
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

// ---------------------------------------------------------------------------
// Corpus.
// ---------------------------------------------------------------------------

TEST(TestCorpus, DedupsByWorkloadAndFingerprint)
{
    TestCorpus corpus;
    TestCorpus::Entry entry;
    entry.workload = "py/argparse";
    entry.fingerprint = 0xabcdef;
    entry.outcome_kind = "ok";

    EXPECT_TRUE(corpus.Insert(entry));
    // Same key again (even with different payload): rejected.
    entry.outcome_kind = "exception";
    EXPECT_FALSE(corpus.Insert(entry));
    EXPECT_EQ(corpus.size(), 1u);
    // First writer wins.
    EXPECT_EQ(corpus.Snapshot()[0].outcome_kind, "ok");

    // Same fingerprint under a different workload is a distinct path.
    entry.workload = "lua/JSON";
    EXPECT_TRUE(corpus.Insert(entry));
    EXPECT_EQ(corpus.size(), 2u);

    EXPECT_TRUE(corpus.Contains("py/argparse", 0xabcdef));
    EXPECT_FALSE(corpus.Contains("py/argparse", 0xabcd));

    const std::vector<TestCorpus::Key> keys = corpus.Keys();
    EXPECT_EQ(keys.size(), 2u);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

// ---------------------------------------------------------------------------
// Seeds.
// ---------------------------------------------------------------------------

TEST(ExplorationService, DerivedSeedsAreDeterministicAndDistinct)
{
    const uint64_t a = ExplorationService::DeriveJobSeed(1, 0, 0);
    EXPECT_EQ(a, ExplorationService::DeriveJobSeed(1, 0, 0));
    EXPECT_NE(a, ExplorationService::DeriveJobSeed(1, 1, 0));
    EXPECT_NE(a, ExplorationService::DeriveJobSeed(2, 0, 0));
    EXPECT_NE(a, ExplorationService::DeriveJobSeed(1, 0, 7));
}

// ---------------------------------------------------------------------------
// Determinism across worker counts.
// ---------------------------------------------------------------------------

TEST(ExplorationService, ResultsIdenticalForOneAndFourWorkers)
{
    const std::vector<JobSpec> jobs = SmallBatch();

    ExplorationService::Options base;
    base.seed = 42;

    ExplorationService::Options serial = base;
    serial.num_workers = 1;
    ExplorationService service_serial(serial);
    const std::vector<JobResult> results_serial =
        service_serial.RunBatch(jobs);

    ExplorationService::Options parallel = base;
    parallel.num_workers = 4;
    ExplorationService service_parallel(parallel);
    const std::vector<JobResult> results_parallel =
        service_parallel.RunBatch(jobs);

    ASSERT_EQ(results_serial.size(), jobs.size());
    ASSERT_EQ(results_parallel.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobResult& a = results_serial[i];
        const JobResult& b = results_parallel[i];
        SCOPED_TRACE(a.workload);
        EXPECT_EQ(a.status, JobStatus::kCompleted);
        EXPECT_EQ(b.status, JobStatus::kCompleted);
        // Seeds derive from (service seed, job index, spec seed) alone,
        // so each session is bit-identical regardless of which worker
        // ran it.
        EXPECT_EQ(a.seed_used,
                  ExplorationService::DeriveJobSeed(42, i, jobs[i].seed));
        EXPECT_EQ(a.seed_used, b.seed_used);
        EXPECT_EQ(a.num_test_cases, b.num_test_cases);
        EXPECT_EQ(a.num_relevant_test_cases, b.num_relevant_test_cases);
        EXPECT_EQ(a.engine_stats.ll_paths, b.engine_stats.ll_paths);
        EXPECT_EQ(a.engine_stats.hl_paths, b.engine_stats.hl_paths);
        EXPECT_EQ(a.engine_stats.solver_queries,
                  b.engine_stats.solver_queries);
    }

    // The deduplicated corpora agree as sets, independent of the
    // cross-thread discovery interleaving.
    EXPECT_EQ(service_serial.corpus().Keys(),
              service_parallel.corpus().Keys());
    EXPECT_GT(service_serial.corpus().size(), 0u);
}

// ---------------------------------------------------------------------------
// Cancellation and budgets.
// ---------------------------------------------------------------------------

TEST(ExplorationService, BudgetCancelsHangHeavyJob)
{
    EnsureTestWorkloads();

    JobSpec spec;
    spec.workload = "test/hang-heavy";
    // On its own the session would grind through up to a million runs of
    // up to 500k steps each; the service budget must cut it short. The
    // per-session max_seconds bounds the damage should budget plumbing
    // ever regress (the test would fail on wall time, not hang).
    spec.options.max_runs = 1'000'000;
    spec.options.max_seconds = 20.0;
    spec.options.max_steps_per_run = 500'000;
    spec.options.collect_timeline = false;

    ExplorationService::Options options;
    options.num_workers = 2;
    options.max_total_seconds = 0.3;
    ExplorationService service(options);

    const auto start = std::chrono::steady_clock::now();
    const std::vector<JobResult> results =
        service.RunBatch({spec, spec});
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // Generous margin over the 0.3s budget: the hook is polled between
    // runs, so overshoot is bounded by one run, not by the session.
    EXPECT_LT(wall, 5.0);
    for (const JobResult& result : results) {
        EXPECT_EQ(result.status, JobStatus::kCancelled);
    }
    EXPECT_EQ(service.stats().jobs_cancelled, 2u);
    EXPECT_EQ(service.stats().jobs_completed, 0u);
}

TEST(ExplorationService, RequestStopDuringBatchCancelsRunningAndQueued)
{
    EnsureTestWorkloads();
    ExplorationService::Options options;
    options.num_workers = 1;  // Forces the second job to sit in the queue.
    ExplorationService service(options);

    JobSpec spec;
    spec.workload = "test/hang-heavy";
    spec.options.max_runs = 1'000'000;
    spec.options.max_seconds = 20.0;
    spec.options.collect_timeline = false;

    std::thread watchdog([&service] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        service.RequestStop();
    });
    const std::vector<JobResult> results = service.RunBatch({spec, spec});
    watchdog.join();

    ASSERT_EQ(results.size(), 2u);
    for (const JobResult& result : results) {
        EXPECT_EQ(result.status, JobStatus::kCancelled);
    }
    // The queued job's placeholder still carries identity fields.
    EXPECT_EQ(results[1].workload, "test/hang-heavy");
    EXPECT_EQ(results[1].seed_used,
              ExplorationService::DeriveJobSeed(service.options().seed, 1,
                                                spec.seed));
}

/// Regression for the serial-reuse footgun: a stop raised against a
/// previous batch must not silently cancel the next one. RunBatch treats
/// a pre-existing stop flag as stale and clears it at entry.
TEST(ExplorationService, StaleStopFlagDoesNotCancelNextBatch)
{
    ExplorationService service({});
    service.RequestStop();  // No batch in flight: this stop is stale.

    JobSpec spec;
    spec.workload = "py/argparse";
    spec.options.max_runs = 4;
    spec.options.collect_timeline = false;
    const std::vector<JobResult> results = service.RunBatch({spec});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::kCompleted);
    EXPECT_FALSE(service.stop_requested());
}

TEST(ExplorationService, UnknownWorkloadFailsGracefully)
{
    ExplorationService service({});
    JobSpec spec;
    spec.workload = "py/definitely-not-a-package";
    const std::vector<JobResult> results = service.RunBatch({spec});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::kFailed);
    EXPECT_NE(results[0].error.find("unknown workload"),
              std::string::npos);
    EXPECT_EQ(service.stats().jobs_failed, 1u);
}

// ---------------------------------------------------------------------------
// Stats aggregation.
// ---------------------------------------------------------------------------

TEST(ExplorationService, StatsTotalsEqualSumOfJobStats)
{
    const std::vector<JobSpec> jobs = SmallBatch();
    ExplorationService::Options options;
    options.num_workers = 2;
    options.seed = 7;
    ExplorationService service(options);
    const std::vector<JobResult> results = service.RunBatch(jobs);

    uint64_t ll_paths = 0;
    uint64_t hl_paths = 0;
    uint64_t hangs = 0;
    uint64_t solver_queries = 0;
    size_t corpus_inserted = 0;
    for (const JobResult& result : results) {
        ll_paths += result.engine_stats.ll_paths;
        hl_paths += result.engine_stats.hl_paths;
        hangs += result.engine_stats.hangs;
        solver_queries += result.engine_stats.solver_queries;
        corpus_inserted += result.corpus_inserted;
    }

    const ServiceStats& stats = service.stats();
    EXPECT_EQ(stats.jobs_submitted, jobs.size());
    EXPECT_EQ(stats.jobs_completed, jobs.size());
    EXPECT_EQ(stats.ll_paths, ll_paths);
    EXPECT_EQ(stats.hl_paths, hl_paths);
    EXPECT_EQ(stats.hangs, hangs);
    EXPECT_EQ(stats.solver_queries, solver_queries);
    EXPECT_GT(stats.solver_queries, 0u);
    // Every corpus entry was inserted by exactly one job.
    EXPECT_EQ(stats.corpus_size, corpus_inserted);
    EXPECT_EQ(stats.corpus_size, service.corpus().size());
    EXPECT_GT(stats.wall_seconds, 0.0);
    EXPECT_GT(stats.jobs_per_second, 0.0);
}

// ---------------------------------------------------------------------------
// Shared solver cache.
// ---------------------------------------------------------------------------

/// A same-workload batch with sharing on: sessions issue structurally
/// identical early queries (the first run uses declared defaults), so
/// later jobs must hit results the first job inserted — regardless of
/// scheduling, because jobs run one after another on overlapping keys.
TEST(ExplorationService, SharedSolverCacheProducesHits)
{
    std::vector<JobSpec> jobs;
    for (int i = 0; i < 4; ++i) {
        JobSpec spec;
        spec.workload = "py/argparse";
        spec.label = "argparse#" + std::to_string(i);
        spec.options.max_runs = 10;
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }

    ExplorationService::Options options;
    options.num_workers = 2;
    options.seed = 9;
    options.share_solver_cache = true;
    ExplorationService service(options);
    const std::vector<JobResult> results = service.RunBatch(jobs);

    for (const JobResult& result : results) {
        EXPECT_EQ(result.status, JobStatus::kCompleted);
    }
    ASSERT_NE(service.shared_solver_cache(), nullptr);
    const ServiceStats& stats = service.stats();
    EXPECT_TRUE(stats.solver_cache_shared);
    EXPECT_GT(stats.shared_cache_inserts, 0u);
    EXPECT_GT(stats.shared_cache_hits + stats.shared_cache_model_hits,
              0u);
    EXPECT_GT(stats.shared_cache_bytes, 0u);
    EXPECT_GT(stats.solver_seconds, 0.0);

    // The per-job shared-hit counters aggregate to the same signal.
    uint64_t job_shared_hits = 0;
    for (const JobResult& result : results) {
        job_shared_hits += result.engine_stats.solver_shared_hits +
                           result.engine_stats.solver_shared_model_hits;
    }
    EXPECT_GT(job_shared_hits, 0u);

    // The report carries the sharing telemetry.
    const std::string report =
        RenderJsonReport(service.stats(), results, service.corpus());
    for (const char* key :
         {"\"solver_cache_shared\":true", "\"shared_cache_hits\"",
          "\"shared_cache_inserts\"", "\"solver_seconds\"",
          "\"solver_shared_hits\""}) {
        EXPECT_NE(report.find(key), std::string::npos) << key;
    }
}

/// Sharing must stay off by default: the determinism contract of
/// ResultsIdenticalForOneAndFourWorkers depends on it.
TEST(ExplorationService, SolverCacheSharingIsOptIn)
{
    ExplorationService service({});
    EXPECT_FALSE(service.options().share_solver_cache);
    JobSpec spec;
    spec.workload = "py/argparse";
    spec.options.max_runs = 4;
    spec.options.collect_timeline = false;
    service.RunBatch({spec});
    EXPECT_EQ(service.shared_solver_cache(), nullptr);
    EXPECT_FALSE(service.stats().solver_cache_shared);
    EXPECT_EQ(service.stats().shared_cache_hits, 0u);
}

TEST(ExplorationService, GrantExplorationThreadsClampsToBudget)
{
    ExplorationService::Options options;
    options.num_workers = 2;
    options.core_budget = 8;  // fair share = 4 per worker.
    ExplorationService service(options);

    JobSpec spec;
    spec.workload = "py/argparse";

    // Default request (1 thread) passes through untouched.
    ExplorationService::ThreadGrant grant =
        service.GrantExplorationThreads(spec);
    EXPECT_EQ(grant.threads, 1u);
    EXPECT_FALSE(grant.wide);

    // A request within the fair share is granted verbatim.
    spec.options.exploration_threads = 3;
    grant = service.GrantExplorationThreads(spec);
    EXPECT_EQ(grant.threads, 3u);
    EXPECT_FALSE(grant.wide);

    // Above the fair share, a workload with no recorded yield counts as
    // high-yield and gets a wide session, capped so every other worker
    // keeps one core: budget 8 - (2 - 1) = 7.
    spec.options.exploration_threads = 16;
    grant = service.GrantExplorationThreads(spec);
    EXPECT_EQ(grant.threads, 7u);
    EXPECT_TRUE(grant.wide);
}

TEST(ExplorationService, GrantExplorationThreadsOversubscribedBudget)
{
    // More workers than cores: everyone gets exactly one thread, no
    // matter how many the spec asks for.
    ExplorationService::Options options;
    options.num_workers = 4;
    options.core_budget = 2;
    ExplorationService service(options);

    JobSpec spec;
    spec.workload = "py/argparse";
    spec.options.exploration_threads = 8;
    const ExplorationService::ThreadGrant grant =
        service.GrantExplorationThreads(spec);
    EXPECT_EQ(grant.threads, 1u);
    EXPECT_FALSE(grant.wide);
}

TEST(ExplorationService, ServiceDefaultEngineThreadsAppliesWhenSpecSilent)
{
    ExplorationService::Options options;
    options.num_workers = 1;
    options.core_budget = 4;
    options.engine_threads = 2;
    ExplorationService service(options);

    JobSpec spec;
    spec.workload = "py/argparse";
    const ExplorationService::ThreadGrant grant =
        service.GrantExplorationThreads(spec);
    EXPECT_EQ(grant.threads, 2u);
    EXPECT_FALSE(grant.wide);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(WorkloadRegistry, CoversAllEvaluationPackages)
{
    EXPECT_GE(workloads::AllWorkloads().size(), 11u);
    EXPECT_NE(workloads::FindWorkload("py/argparse"), nullptr);
    EXPECT_NE(workloads::FindWorkload("py/xlrd"), nullptr);
    EXPECT_NE(workloads::FindWorkload("lua/JSON"), nullptr);
    EXPECT_NE(workloads::FindWorkload("lua/moonscript"), nullptr);
    EXPECT_EQ(workloads::FindWorkload("py/nope"), nullptr);
    EXPECT_EQ(workloads::WorkloadIds().size(),
              workloads::AllWorkloads().size());
}

TEST(WorkloadRegistry, RejectsDuplicateIds)
{
    workloads::WorkloadInfo info;
    info.id = "py/argparse";
    info.make_run = [](const interp::InterpBuildOptions&) {
        return Engine::RunFn();
    };
    EXPECT_FALSE(workloads::RegisterWorkload(std::move(info)));
}

// ---------------------------------------------------------------------------
// JSON report.
// ---------------------------------------------------------------------------

TEST(JsonReport, EscapesStrings)
{
    EXPECT_EQ(JsonEscape("plain"), "plain");
    EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonReport, RendersBatchOutcome)
{
    std::vector<JobSpec> jobs;
    JobSpec spec;
    spec.workload = "py/argparse";
    spec.options.max_runs = 6;
    spec.options.collect_timeline = false;
    jobs.push_back(spec);

    ExplorationService service({});
    const std::vector<JobResult> results = service.RunBatch(jobs);
    const std::string report =
        RenderJsonReport(service.stats(), results, service.corpus());

    EXPECT_EQ(report.front(), '{');
    EXPECT_EQ(report.back(), '}');
    for (const char* key :
         {"\"report\"", "\"stats\"", "\"jobs_per_second\"", "\"jobs\"",
          "\"corpus\"", "\"fingerprint\"", "\"workload\"",
          "\"py/argparse\""}) {
        EXPECT_NE(report.find(key), std::string::npos) << key;
    }

    // Entry cap: corpus_size still reports the full size.
    ReportOptions capped;
    capped.max_corpus_entries = 1;
    const std::string capped_report =
        RenderJsonReport(service.stats(), results, service.corpus(),
                         capped);
    EXPECT_LT(capped_report.size(), report.size());
}

}  // namespace
}  // namespace chef::service
