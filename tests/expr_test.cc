/// \file
/// Unit and property tests for the expression DAG and constant folder.

#include "solver/expr.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace chef::solver {
namespace {

TEST(ExprBasics, ConstantsAreMaskedToWidth)
{
    EXPECT_EQ(MakeConst(0x1ff, 8)->constant_value(), 0xffu);
    EXPECT_EQ(MakeConst(~0ull, 64)->constant_value(), ~0ull);
    EXPECT_EQ(MakeConst(2, 1)->constant_value(), 0u);
}

TEST(ExprBasics, WidthMask)
{
    EXPECT_EQ(WidthMask(1), 1u);
    EXPECT_EQ(WidthMask(8), 0xffu);
    EXPECT_EQ(WidthMask(64), ~0ull);
}

TEST(ExprBasics, SignExtend)
{
    EXPECT_EQ(SignExtend(0x80, 8), -128);
    EXPECT_EQ(SignExtend(0x7f, 8), 127);
    EXPECT_EQ(SignExtend(1, 1), -1);
    EXPECT_EQ(SignExtend(~0ull, 64), -1);
}

TEST(ExprFolding, ArithmeticIdentities)
{
    const ExprRef x = MakeVar(1, "x", 32);
    const ExprRef zero = MakeConst(0, 32);
    const ExprRef one = MakeConst(1, 32);

    EXPECT_EQ(MakeAdd(x, zero).get(), x.get());
    EXPECT_EQ(MakeSub(x, zero).get(), x.get());
    EXPECT_TRUE(MakeSub(x, x)->IsConstant());
    EXPECT_EQ(MakeMul(x, one).get(), x.get());
    EXPECT_TRUE(MakeMul(x, zero)->IsConstant());
    EXPECT_EQ(MakeXor(x, zero).get(), x.get());
    EXPECT_TRUE(MakeXor(x, x)->IsConstant());
    EXPECT_EQ(MakeAnd(x, MakeConst(~0u, 32)).get(), x.get());
    EXPECT_EQ(MakeOr(x, zero).get(), x.get());
}

TEST(ExprFolding, ComparisonsOnConstants)
{
    EXPECT_TRUE(MakeUlt(MakeConst(3, 8), MakeConst(5, 8))->IsTrue());
    EXPECT_TRUE(MakeUlt(MakeConst(5, 8), MakeConst(3, 8))->IsFalse());
    EXPECT_TRUE(MakeSlt(MakeConst(0xff, 8), MakeConst(0, 8))->IsTrue());
    EXPECT_TRUE(MakeSle(MakeConst(0x80, 8), MakeConst(0x7f, 8))->IsTrue());
    EXPECT_TRUE(MakeEq(MakeConst(7, 16), MakeConst(7, 16))->IsTrue());
}

TEST(ExprFolding, SelfComparisons)
{
    const ExprRef x = MakeVar(1, "x", 32);
    EXPECT_TRUE(MakeEq(x, x)->IsTrue());
    EXPECT_TRUE(MakeUlt(x, x)->IsFalse());
    EXPECT_TRUE(MakeUle(x, x)->IsTrue());
    EXPECT_TRUE(MakeSlt(x, x)->IsFalse());
    EXPECT_TRUE(MakeSle(x, x)->IsTrue());
}

TEST(ExprFolding, DoubleNegationCancels)
{
    const ExprRef x = MakeVar(1, "x", 1);
    EXPECT_EQ(MakeBoolNot(MakeBoolNot(x)).get(), x.get());
}

TEST(ExprFolding, IteWithConstantCondition)
{
    const ExprRef x = MakeVar(1, "x", 8);
    const ExprRef y = MakeVar(2, "y", 8);
    EXPECT_EQ(MakeIte(MakeBool(true), x, y).get(), x.get());
    EXPECT_EQ(MakeIte(MakeBool(false), x, y).get(), y.get());
    EXPECT_EQ(MakeIte(MakeVar(3, "c", 1), x, x).get(), x.get());
}

TEST(ExprFolding, BooleanIteCollapsesToCondition)
{
    const ExprRef c = MakeVar(1, "c", 1);
    EXPECT_EQ(MakeIte(c, MakeBool(true), MakeBool(false)).get(), c.get());
    const ExprRef negated = MakeIte(c, MakeBool(false), MakeBool(true));
    EXPECT_EQ(negated->kind(), ExprKind::kNot);
    EXPECT_EQ(negated->a().get(), c.get());
}

TEST(ExprFolding, ExtractThroughConcat)
{
    const ExprRef high = MakeVar(1, "h", 8);
    const ExprRef low = MakeVar(2, "l", 8);
    const ExprRef concat = MakeConcat(high, low);
    EXPECT_EQ(MakeExtract(concat, 0, 8).get(), low.get());
    EXPECT_EQ(MakeExtract(concat, 8, 8).get(), high.get());
}

TEST(ExprFolding, ExtractOfExtract)
{
    const ExprRef x = MakeVar(1, "x", 32);
    const ExprRef inner = MakeExtract(x, 8, 16);
    const ExprRef outer = MakeExtract(inner, 4, 8);
    EXPECT_EQ(outer->kind(), ExprKind::kExtract);
    EXPECT_EQ(outer->extract_offset(), 12);
    EXPECT_EQ(outer->a().get(), x.get());
}

TEST(ExprFolding, DivisionSmtSemantics)
{
    // x udiv 0 = all-ones; x urem 0 = x.
    EXPECT_EQ(MakeUDiv(MakeConst(5, 8), MakeConst(0, 8))->constant_value(),
              0xffu);
    EXPECT_EQ(MakeURem(MakeConst(5, 8), MakeConst(0, 8))->constant_value(),
              5u);
    // Signed division truncates toward zero.
    EXPECT_EQ(MakeSDiv(MakeConst(0xf9, 8), MakeConst(2, 8))  // -7 / 2
                  ->constant_value(),
              0xfdu);  // -3
    EXPECT_EQ(MakeSRem(MakeConst(0xf9, 8), MakeConst(2, 8))  // -7 % 2
                  ->constant_value(),
              0xffu);  // -1
}

TEST(ExprEquality, StructuralEqualityIgnoresNodeIdentity)
{
    const ExprRef x1 = MakeVar(1, "x", 32);
    const ExprRef x2 = MakeVar(1, "x", 32);
    const ExprRef e1 = MakeAdd(x1, MakeConst(3, 32));
    const ExprRef e2 = MakeAdd(x2, MakeConst(3, 32));
    EXPECT_TRUE(Expr::Equal(e1, e2));
    EXPECT_EQ(e1->hash(), e2->hash());
    const ExprRef e3 = MakeAdd(x1, MakeConst(4, 32));
    EXPECT_FALSE(Expr::Equal(e1, e3));
}

TEST(ExprEval, EvaluatesUnderAssignment)
{
    const ExprRef x = MakeVar(1, "x", 32);
    const ExprRef y = MakeVar(2, "y", 32);
    const ExprRef e =
        MakeAdd(MakeMul(x, MakeConst(3, 32)), y);  // 3x + y
    Assignment assignment;
    assignment.Set(1, 10);
    assignment.Set(2, 7);
    EXPECT_EQ(EvalConcrete(e, assignment), 37u);
    const ExprRef cmp = MakeUgt(e, MakeConst(36, 32));
    EXPECT_EQ(EvalConcrete(cmp, assignment), 1u);
}

TEST(ExprEval, UnassignedVariablesAreZero)
{
    const ExprRef x = MakeVar(9, "x", 16);
    Assignment assignment;
    EXPECT_EQ(EvalConcrete(x, assignment), 0u);
}

TEST(ExprVariables, CollectsDistinctVariables)
{
    const ExprRef x = MakeVar(1, "x", 8);
    const ExprRef y = MakeVar(2, "y", 8);
    const ExprRef e = MakeAdd(MakeXor(x, y), x);
    std::vector<ExprRef> vars;
    CollectVariables(e, &vars);
    EXPECT_EQ(vars.size(), 2u);
}

/// Property test: folding must agree with EvalConcrete on random constant
/// operands for every binary operator.
class FoldEvalAgreement : public ::testing::TestWithParam<int> {};

TEST_P(FoldEvalAgreement, BinaryOpsOnConstants)
{
    const int width = GetParam();
    Rng rng(width * 1234567u);
    const Assignment empty;
    using Maker = ExprRef (*)(const ExprRef&, const ExprRef&);
    const Maker makers[] = {
        MakeAdd, MakeSub, MakeMul, MakeUDiv, MakeSDiv, MakeURem, MakeSRem,
        MakeAnd, MakeOr,  MakeXor, MakeShl,  MakeLShr, MakeAShr,
        MakeEq,  MakeUlt, MakeUle, MakeSlt,  MakeSle,
    };
    for (int round = 0; round < 200; ++round) {
        const uint64_t av = rng.Next() & WidthMask(width);
        const uint64_t bv = rng.Next() & WidthMask(width);
        for (const Maker make : makers) {
            const ExprRef folded =
                make(MakeConst(av, width), MakeConst(bv, width));
            ASSERT_TRUE(folded->IsConstant());
            // Folding and evaluation must produce the same value when the
            // same operator is applied to variables bound to the operands.
            const ExprRef xa = MakeVar(1, "a", width);
            const ExprRef xb = MakeVar(2, "b", width);
            Assignment assignment;
            assignment.Set(1, av);
            assignment.Set(2, bv);
            const ExprRef symbolic = make(xa, xb);
            EXPECT_EQ(folded->constant_value(),
                      EvalConcrete(symbolic, assignment))
                << "width=" << width << " op mismatch with a=" << av
                << " b=" << bv;
        }
    }
    (void)empty;
}

INSTANTIATE_TEST_SUITE_P(Widths, FoldEvalAgreement,
                         ::testing::Values(1, 7, 8, 16, 32, 33, 64));

}  // namespace
}  // namespace chef::solver
