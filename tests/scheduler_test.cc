/// \file
/// Tests for the yield-weighted batch scheduler and streaming events:
/// corpus yield tracking, priority ordering and plateau handling at the
/// BatchScheduler level, worker-count determinism under priority
/// dispatch, event delivery/ordering (including under RequestStop), stop
/// attribution, and the service-reporting bugfixes (non-finite doubles,
/// corpus truncation) validated through a strict JSON parser.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "lowlevel/runtime.h"
#include "lowlevel/symvalue.h"
#include "obs/metrics.h"
#include "service/corpus.h"
#include "service/report.h"
#include "service/scheduler.h"
#include "service/service.h"
#include "support/json.h"
#include "workloads/registry.h"

namespace chef::service {
namespace {

using lowlevel::LowLevelRuntime;
using lowlevel::SymValue;

// The strict RFC-8259 validator used to live here as a test-only class;
// it is now the production parser in support/json.h, shared with the
// shard wire format, so the report contract and the wire format are
// checked by the same grammar.
using support::JsonValid;

enum Opcode : uint32_t { kOpStmt = 1, kOpCmp = 2 };

// ---------------------------------------------------------------------------
// Custom registry workloads.
// ---------------------------------------------------------------------------

/// Two high-level paths total: one symbolic byte, one branch. Any
/// session with max_runs >= 2 discovers both, so in a batch of repeats
/// the first job inserts everything and every later job yields zero —
/// the plateau shape, deterministically.
Engine::GuestOutcome
TwoPathGuest(LowLevelRuntime& rt)
{
    SymValue byte = rt.MakeSymbolicValue("b0", 8, 1);
    rt.LogPc(1, kOpCmp);
    if (rt.Branch(SvEq(byte, SymValue(0, 8)), CHEF_LLPC)) {
        rt.LogPc(2, kOpStmt);
    } else {
        rt.LogPc(3, kOpStmt);
    }
    return {"ok", ""};
}

/// Hang-heavy guest (as in service_test): ~1M paths, every run spins to
/// the step budget; only external cancellation ends a session promptly.
Engine::GuestOutcome
HangGuest(LowLevelRuntime& rt)
{
    uint64_t hlpc = 1;
    for (uint32_t i = 0; i < 20; ++i) {
        SymValue byte =
            rt.MakeSymbolicValue("b" + std::to_string(i), 8, 1);
        rt.LogPc(hlpc++, kOpCmp);
        if (rt.Branch(SvEq(byte, SymValue(0, 8)), CHEF_LLPC)) {
            rt.LogPc(hlpc + 100, kOpStmt);
        }
    }
    while (rt.CountStep()) {
    }
    return {"hang", "loop"};
}

void
EnsureTestWorkloads()
{
    static const bool registered = [] {
        workloads::WorkloadInfo two_path;
        two_path.id = "test/two-path";
        two_path.language = "custom";
        two_path.description = "exactly two high-level paths";
        two_path.make_run = [](const interp::InterpBuildOptions&) {
            return Engine::RunFn(TwoPathGuest);
        };
        if (!workloads::RegisterWorkload(std::move(two_path))) {
            return false;
        }
        workloads::WorkloadInfo hang;
        hang.id = "test/sched-hang";
        hang.language = "custom";
        hang.description = "every path spins until the step budget";
        hang.make_run = [](const interp::InterpBuildOptions&) {
            return Engine::RunFn(HangGuest);
        };
        return workloads::RegisterWorkload(std::move(hang));
    }();
    ASSERT_TRUE(registered);
}

std::vector<JobSpec>
MixedBatch()
{
    std::vector<JobSpec> jobs;
    for (const char* id :
         {"py/argparse", "py/simplejson", "lua/cliargs", "lua/haml"}) {
        JobSpec spec;
        spec.workload = id;
        spec.options.max_runs = 10;
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

// ---------------------------------------------------------------------------
// Corpus yield tracking.
// ---------------------------------------------------------------------------

TEST(CorpusYield, TracksDecayedYieldAndZeroStreak)
{
    TestCorpus corpus;
    EXPECT_EQ(corpus.YieldFor("py/argparse").jobs_recorded, 0u);

    corpus.RecordJobYield("py/argparse", 10, 8);
    TestCorpus::WorkloadYield yield = corpus.YieldFor("py/argparse");
    EXPECT_EQ(yield.jobs_recorded, 1u);
    EXPECT_EQ(yield.offered_total, 10u);
    EXPECT_EQ(yield.accepted_total, 8u);
    EXPECT_DOUBLE_EQ(yield.decayed_yield, 8.0);  // First job seeds.
    EXPECT_EQ(yield.consecutive_zero_yield, 0u);

    corpus.RecordJobYield("py/argparse", 10, 4);
    yield = corpus.YieldFor("py/argparse");
    EXPECT_DOUBLE_EQ(yield.decayed_yield, 6.0);  // 0.5*(8+4).

    corpus.RecordJobYield("py/argparse", 10, 0);
    corpus.RecordJobYield("py/argparse", 10, 0);
    yield = corpus.YieldFor("py/argparse");
    EXPECT_EQ(yield.consecutive_zero_yield, 2u);
    EXPECT_DOUBLE_EQ(yield.decayed_yield, 1.5);  // Decays toward zero.

    corpus.RecordJobYield("py/argparse", 10, 2);
    EXPECT_EQ(corpus.YieldFor("py/argparse").consecutive_zero_yield, 0u);

    // Workloads track independently.
    EXPECT_EQ(corpus.YieldFor("lua/JSON").jobs_recorded, 0u);
    corpus.Clear();
    EXPECT_EQ(corpus.YieldFor("py/argparse").jobs_recorded, 0u);
}

// ---------------------------------------------------------------------------
// BatchScheduler ordering.
// ---------------------------------------------------------------------------

TEST(BatchScheduler, FifoWhenNoYieldSignal)
{
    TestCorpus corpus;
    BatchScheduler::Options options;  // kYieldPriority.
    BatchScheduler scheduler({"a", "b", "a", "b"}, &corpus, options);

    // All workloads untried: pure submission order (the FIFO tie-break).
    BatchScheduler::Dispatch dispatch;
    for (size_t expected = 0; expected < 4; ++expected) {
        ASSERT_TRUE(scheduler.Acquire(&dispatch));
        EXPECT_EQ(dispatch.job_index, expected);
        EXPECT_FALSE(dispatch.plateau_cancelled);
    }
    EXPECT_FALSE(scheduler.Acquire(&dispatch));
}

TEST(BatchScheduler, PrefersUntriedThenHighestYield)
{
    TestCorpus corpus;
    BatchScheduler::Options options;
    // Jobs: 0=a 1=a 2=b 3=b 4=c 5=c.
    BatchScheduler scheduler({"a", "a", "b", "b", "c", "c"}, &corpus,
                             options);

    BatchScheduler::Dispatch dispatch;
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 0u);  // FIFO at the start.
    scheduler.OnJobCompleted("a", 6, 6);  // a: tried, high yield.

    // Untried workloads outrank even a high-yield tried one.
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 2u);  // b (untried).
    scheduler.OnJobCompleted("b", 2, 1);  // b: tried, low yield.

    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 4u);  // c (untried).
    scheduler.OnJobCompleted("c", 0, 0);  // c: tried, zero yield.

    // All tried now: highest decayed yield first (a=6 > b=1 > c=0).
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 1u);  // a.
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 3u);  // b.
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 5u);  // c.
    EXPECT_FALSE(scheduler.Acquire(&dispatch));
}

TEST(BatchScheduler, PlateauDeprioritizesThenCancels)
{
    TestCorpus corpus;
    BatchScheduler::Options options;
    options.plateau.enabled = true;
    options.plateau.deprioritize_after = 1;
    options.plateau.cancel_after = 2;
    // Jobs: 0=a 1=a 2=a 3=a 4=b.
    BatchScheduler scheduler({"a", "a", "a", "a", "b"}, &corpus, options);

    BatchScheduler::Dispatch dispatch;
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 0u);
    scheduler.OnJobCompleted("a", 0, 0);  // Zero streak: 1.

    // One zero-yield job deprioritizes a behind untried b.
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 4u);
    EXPECT_FALSE(dispatch.plateau_cancelled);
    scheduler.OnJobCompleted("b", 3, 3);

    // a is still dispatchable (deprioritized, not cancelled).
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 1u);
    EXPECT_FALSE(dispatch.plateau_cancelled);
    scheduler.OnJobCompleted("a", 0, 0);  // Zero streak: 2 -> cancelled.

    // Remaining a jobs pop as plateau cancellations, in order.
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 2u);
    EXPECT_TRUE(dispatch.plateau_cancelled);
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 3u);
    EXPECT_TRUE(dispatch.plateau_cancelled);
    EXPECT_FALSE(scheduler.Acquire(&dispatch));
}

TEST(BatchScheduler, RatePlateauCancelsDuplicateSkewedWorkload)
{
    // Rate mode on a fake clock: "dup" yields once then flatlines (the
    // duplicate-skewed shape), "fresh" keeps yielding. Only "dup" may
    // be cancelled, and only after its windowed rate stayed under the
    // threshold for a full window.
    TestCorpus corpus;
    obs::MetricsRegistry metrics;
    double now = 0.0;
    BatchScheduler::Options options;
    options.plateau.enabled = true;
    options.plateau.deprioritize_after = 1;
    options.plateau.rate_mode = true;
    options.plateau.min_yield_per_second = 1.0;
    options.plateau.rate_window_seconds = 5.0;
    options.plateau.rate_min_jobs = 2;
    options.obs.metrics = &metrics;
    options.now_seconds = [&now] { return now; };
    // Jobs: 0-4 = dup, 5-6 = fresh.
    BatchScheduler scheduler(
        {"dup", "dup", "dup", "dup", "dup", "fresh", "fresh"}, &corpus,
        options);

    BatchScheduler::Dispatch dispatch;
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 0u);   // FIFO while all untried.
    scheduler.OnJobCompleted("dup", 10, 8);  // t=0: dup's only yield.

    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 5u);   // fresh is untried.
    now = 1.0;
    scheduler.OnJobCompleted("fresh", 10, 6);

    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 1u);   // dup yield 8 > fresh 6.
    EXPECT_FALSE(dispatch.plateau_cancelled);
    now = 3.0;
    scheduler.OnJobCompleted("dup", 10, 0);
    // Window spans only 3s of the required 5: no judgment yet, and the
    // zero-yield count must NOT cancel (rate mode replaces it).

    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 6u);   // dup deprioritized (streak 1).
    EXPECT_FALSE(dispatch.plateau_cancelled);
    now = 4.0;
    scheduler.OnJobCompleted("fresh", 10, 6);  // fresh rate stays high.

    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 2u);
    EXPECT_FALSE(dispatch.plateau_cancelled);
    now = 6.0;
    scheduler.OnJobCompleted("dup", 10, 0);
    // dup's window now spans 6s >= 5 with 0 accepted: rate 0 < 1.0/s.

    // The remaining dup jobs pop as plateau cancellations; fresh never
    // tripped the rule.
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 3u);
    EXPECT_TRUE(dispatch.plateau_cancelled);
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_EQ(dispatch.job_index, 4u);
    EXPECT_TRUE(dispatch.plateau_cancelled);
    EXPECT_FALSE(scheduler.Acquire(&dispatch));
    // One cancellation event per workload, not per job.
    EXPECT_EQ(metrics.Snapshot().CounterValue("scheduler.plateau_cancels"),
              1u);
}

TEST(BatchScheduler, RatePlateauTriggersFromRemoteYieldGossip)
{
    // The same rule must fire from NotifyYieldsChanged alone: remote
    // shards' gossiped completions flatten a workload's merged rate
    // without any local job finishing.
    TestCorpus corpus;
    double now = 0.0;
    BatchScheduler::Options options;
    options.plateau.enabled = true;
    options.plateau.rate_mode = true;
    options.plateau.min_yield_per_second = 1.0;
    options.plateau.rate_window_seconds = 5.0;
    options.plateau.rate_min_jobs = 2;
    options.now_seconds = [&now] { return now; };
    BatchScheduler scheduler({"remote", "remote"}, &corpus, options);

    corpus.RecordJobYield("remote", 10, 4);  // t=0, as merged by gossip.
    scheduler.NotifyYieldsChanged();
    now = 6.0;
    corpus.RecordJobYield("remote", 10, 0);  // Flat across the window.
    scheduler.NotifyYieldsChanged();

    BatchScheduler::Dispatch dispatch;
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_TRUE(dispatch.plateau_cancelled);
    ASSERT_TRUE(scheduler.Acquire(&dispatch));
    EXPECT_TRUE(dispatch.plateau_cancelled);
    EXPECT_FALSE(scheduler.Acquire(&dispatch));
}

// ---------------------------------------------------------------------------
// Service: determinism under priority dispatch.
// ---------------------------------------------------------------------------

TEST(Scheduler, ResultsIdenticalAcrossWorkerCountsUnderPriority)
{
    const std::vector<JobSpec> jobs = MixedBatch();

    ExplorationService::Options base;
    base.seed = 7;
    ASSERT_EQ(base.schedule_policy, SchedulePolicy::kYieldPriority);

    ExplorationService::Options serial = base;
    serial.num_workers = 1;
    ExplorationService service_serial(serial);
    const std::vector<JobResult> results_serial =
        service_serial.RunBatch(jobs);

    ExplorationService::Options parallel = base;
    parallel.num_workers = 4;
    ExplorationService service_parallel(parallel);
    const std::vector<JobResult> results_parallel =
        service_parallel.RunBatch(jobs);

    ASSERT_EQ(results_serial.size(), jobs.size());
    ASSERT_EQ(results_parallel.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobResult& a = results_serial[i];
        const JobResult& b = results_parallel[i];
        SCOPED_TRACE(a.workload);
        EXPECT_EQ(a.status, JobStatus::kCompleted);
        EXPECT_EQ(b.status, JobStatus::kCompleted);
        EXPECT_EQ(a.seed_used, b.seed_used);
        EXPECT_EQ(a.num_test_cases, b.num_test_cases);
        EXPECT_EQ(a.num_relevant_test_cases, b.num_relevant_test_cases);
        EXPECT_EQ(a.engine_stats.ll_paths, b.engine_stats.ll_paths);
        EXPECT_EQ(a.engine_stats.hl_paths, b.engine_stats.hl_paths);
        EXPECT_EQ(a.engine_stats.solver_queries,
                  b.engine_stats.solver_queries);
        EXPECT_EQ(a.stop_source, "none");
    }
    EXPECT_EQ(service_serial.corpus().Keys(),
              service_parallel.corpus().Keys());
    EXPECT_GT(service_serial.corpus().size(), 0u);
}

// ---------------------------------------------------------------------------
// Streaming events.
// ---------------------------------------------------------------------------

TEST(Scheduler, OneCompletedEventPerJobAndOrdering)
{
    const std::vector<JobSpec> jobs = MixedBatch();

    JobEventQueue queue;
    size_t callback_completed = 0;
    ExplorationService::Options options;
    options.num_workers = 2;
    options.event_queue = &queue;
    options.on_job_event = [&callback_completed](const JobEvent& event) {
        // Runs on the dispatcher thread, strictly serialized; no lock
        // needed as long as the count is read after RunBatch returns.
        if (event.kind == JobEvent::Kind::kJobCompleted) {
            ++callback_completed;
        }
    };
    ExplorationService service(options);
    const std::vector<JobResult> results = service.RunBatch(jobs);

    const std::vector<JobEvent> events = queue.Drain();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(service.stats().events_delivered, events.size());

    std::map<size_t, size_t> started, completed;
    size_t last_finished = 0;
    size_t progress_events = 0;
    for (const JobEvent& event : events) {
        EXPECT_EQ(event.jobs_total, jobs.size());
        switch (event.kind) {
          case JobEvent::Kind::kJobStarted:
            ++started[event.job_index];
            // A job must start before it completes.
            EXPECT_EQ(completed.count(event.job_index), 0u);
            break;
          case JobEvent::Kind::kJobCompleted:
            ++completed[event.job_index];
            EXPECT_EQ(event.status, JobStatus::kCompleted);
            EXPECT_EQ(event.stop_source, "none");
            break;
          case JobEvent::Kind::kBatchProgress:
            ++progress_events;
            // Completions only accumulate.
            EXPECT_GE(event.jobs_finished, last_finished);
            last_finished = event.jobs_finished;
            break;
        }
    }
    EXPECT_EQ(callback_completed, jobs.size());
    EXPECT_EQ(progress_events, jobs.size());
    EXPECT_EQ(last_finished, jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(started[i], 1u) << "job " << i;
        EXPECT_EQ(completed[i], 1u) << "job " << i;
    }
    // The streamed corpus_inserted matches the job results.
    for (const JobEvent& event : events) {
        if (event.kind == JobEvent::Kind::kJobCompleted) {
            EXPECT_EQ(event.corpus_inserted,
                      results[event.job_index].corpus_inserted);
        }
    }
}

TEST(Scheduler, EventOrderingUnderRequestStopMidStream)
{
    EnsureTestWorkloads();

    JobSpec spec;
    spec.workload = "test/sched-hang";
    spec.options.max_runs = 1'000'000;
    spec.options.max_seconds = 20.0;
    spec.options.collect_timeline = false;
    const std::vector<JobSpec> jobs = {spec, spec, spec};

    JobEventQueue queue;
    ExplorationService::Options options;
    options.num_workers = 1;  // Jobs 1 and 2 sit in the queue.
    options.event_queue = &queue;
    ExplorationService service(options);

    std::thread watchdog([&service] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        service.RequestStop();
    });
    const std::vector<JobResult> results = service.RunBatch(jobs);
    watchdog.join();

    ASSERT_EQ(results.size(), 3u);
    for (const JobResult& result : results) {
        EXPECT_EQ(result.status, JobStatus::kCancelled);
        EXPECT_EQ(result.stop_source, "service_stop");
        EXPECT_EQ(result.error, "stop requested");
    }

    // Every job still produced exactly one completed event — the
    // undispatched ones included — and only the dispatched job started.
    std::map<size_t, size_t> started, completed;
    for (const JobEvent& event : queue.Drain()) {
        if (event.kind == JobEvent::Kind::kJobStarted) {
            ++started[event.job_index];
        } else if (event.kind == JobEvent::Kind::kJobCompleted) {
            ++completed[event.job_index];
            EXPECT_EQ(event.status, JobStatus::kCancelled);
            EXPECT_EQ(event.stop_source, "service_stop");
        }
    }
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(completed[i], 1u) << "job " << i;
    }
    EXPECT_EQ(started[0], 1u);
    EXPECT_EQ(started.count(1), 0u);
    EXPECT_EQ(started.count(2), 0u);
}

// ---------------------------------------------------------------------------
// Plateau policy through the service.
// ---------------------------------------------------------------------------

TEST(Scheduler, PlateauPolicyCancelsAndAttributes)
{
    EnsureTestWorkloads();

    std::vector<JobSpec> jobs;
    for (int i = 0; i < 6; ++i) {
        JobSpec spec;
        spec.workload = "test/two-path";
        spec.label = "two-path#" + std::to_string(i);
        spec.options.max_runs = 8;
        spec.options.max_seconds = 1e9;
        spec.options.collect_timeline = false;
        jobs.push_back(std::move(spec));
    }

    JobEventQueue queue;
    ExplorationService::Options options;
    options.num_workers = 1;  // Deterministic completion order.
    options.event_queue = &queue;
    options.plateau_policy.enabled = true;
    options.plateau_policy.deprioritize_after = 1;
    options.plateau_policy.cancel_after = 2;
    ExplorationService service(options);
    const std::vector<JobResult> results = service.RunBatch(jobs);

    // Job 0 discovers both paths; jobs 1-2 complete with zero yield and
    // trip the plateau; jobs 3-5 are cancelled before dispatch.
    ASSERT_EQ(results.size(), 6u);
    EXPECT_EQ(results[0].status, JobStatus::kCompleted);
    EXPECT_EQ(results[0].corpus_inserted, 2u);
    for (size_t i = 1; i <= 2; ++i) {
        EXPECT_EQ(results[i].status, JobStatus::kCompleted) << i;
        EXPECT_EQ(results[i].corpus_inserted, 0u) << i;
    }
    for (size_t i = 3; i <= 5; ++i) {
        EXPECT_EQ(results[i].status, JobStatus::kCancelled) << i;
        EXPECT_EQ(results[i].stop_source, "plateau") << i;
        EXPECT_EQ(results[i].error, "workload plateaued") << i;
    }
    EXPECT_EQ(service.stats().jobs_plateau_cancelled, 3u);
    EXPECT_EQ(service.stats().jobs_cancelled, 3u);
    EXPECT_EQ(service.stats().jobs_completed, 3u);

    // One completed event per job, plateau cancellations included.
    std::map<size_t, size_t> completed;
    for (const JobEvent& event : queue.Drain()) {
        if (event.kind == JobEvent::Kind::kJobCompleted) {
            ++completed[event.job_index];
        }
    }
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(completed[i], 1u) << "job " << i;
    }

    // The attribution lands in the report, which stays strictly valid.
    const std::string report =
        RenderJsonReport(service.stats(), results, service.corpus());
    EXPECT_TRUE(JsonValid(report));
    EXPECT_NE(report.find("\"jobs_plateau_cancelled\":3"),
              std::string::npos);
    EXPECT_NE(report.find("\"stop_source\":\"plateau\""),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Stop-source attribution.
// ---------------------------------------------------------------------------

TEST(Scheduler, UserStopHookReportsCompletedNotCancelled)
{
    // Regression: a session ended by the *spec's own* stop_requested
    // hook was misreported as service-cancelled with an empty error.
    JobSpec spec;
    spec.workload = "py/argparse";
    spec.options.max_runs = 1'000'000;
    spec.options.max_seconds = 1e9;
    spec.options.collect_timeline = false;
    int calls = 0;
    spec.options.stop_requested = [&calls] { return ++calls > 3; };

    ExplorationService service({});
    const std::vector<JobResult> results = service.RunBatch({spec});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].engine_stats.stopped);
    EXPECT_EQ(results[0].status, JobStatus::kCompleted);
    EXPECT_EQ(results[0].stop_source, "job_hook");
    EXPECT_TRUE(results[0].error.empty());
    EXPECT_EQ(service.stats().jobs_completed, 1u);
    EXPECT_EQ(service.stats().jobs_cancelled, 0u);
}

TEST(Scheduler, ServiceBudgetStopIsAttributed)
{
    EnsureTestWorkloads();
    JobSpec spec;
    spec.workload = "test/sched-hang";
    spec.options.max_runs = 1'000'000;
    spec.options.max_seconds = 20.0;
    spec.options.collect_timeline = false;

    ExplorationService::Options options;
    options.max_total_seconds = 0.2;
    ExplorationService service(options);
    const std::vector<JobResult> results = service.RunBatch({spec});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::kCancelled);
    EXPECT_EQ(results[0].stop_source, "service_budget");
    EXPECT_EQ(results[0].error, "service budget exhausted");
}

// ---------------------------------------------------------------------------
// Report bugfixes.
// ---------------------------------------------------------------------------

TEST(JsonReport, NonFiniteDoublesSerializeAsNull)
{
    // Regression: %.6f prints bare `nan`/`inf`, which breaks strict
    // JSON parsing of the whole report.
    ServiceStats stats;
    stats.jobs_per_second = std::numeric_limits<double>::quiet_NaN();
    stats.solver_seconds = std::numeric_limits<double>::infinity();
    stats.engine_seconds = -std::numeric_limits<double>::infinity();
    stats.wall_seconds = 1.5;

    JobResult result;
    result.workload = "py/argparse";
    result.label = "argparse";
    result.engine_stats.elapsed_seconds =
        std::numeric_limits<double>::quiet_NaN();

    TestCorpus corpus;
    const std::string report =
        RenderJsonReport(stats, {result}, corpus);
    EXPECT_TRUE(JsonValid(report)) << report;
    EXPECT_NE(report.find("\"jobs_per_second\":null"), std::string::npos);
    EXPECT_NE(report.find("\"solver_seconds\":null"), std::string::npos);
    EXPECT_EQ(report.find("nan"), std::string::npos);
    EXPECT_EQ(report.find("inf"), std::string::npos);
    // Finite values still serialize as numbers.
    EXPECT_NE(report.find("\"wall_seconds\":1.500000"), std::string::npos);
}

TEST(JsonReport, CorpusTruncatedCountsDroppedEntries)
{
    TestCorpus corpus;
    for (uint64_t i = 0; i < 3; ++i) {
        TestCorpus::Entry entry;
        entry.workload = "py/argparse";
        entry.fingerprint = i;
        entry.outcome_kind = "ok";
        ASSERT_TRUE(corpus.Insert(entry));
    }
    const ServiceStats stats;

    ReportOptions capped;
    capped.max_corpus_entries = 1;
    const std::string capped_report =
        RenderJsonReport(stats, {}, corpus, capped);
    EXPECT_TRUE(JsonValid(capped_report));
    EXPECT_NE(capped_report.find("\"corpus_truncated\":2"),
              std::string::npos);

    const std::string full_report = RenderJsonReport(stats, {}, corpus);
    EXPECT_TRUE(JsonValid(full_report));
    EXPECT_NE(full_report.find("\"corpus_truncated\":0"),
              std::string::npos);
}

TEST(JsonReport, NewFieldsParseStrictOnRealBatch)
{
    JobSpec spec;
    spec.workload = "py/argparse";
    spec.options.max_runs = 6;
    spec.options.collect_timeline = false;

    JobEventQueue queue;
    ExplorationService::Options options;
    options.event_queue = &queue;
    ExplorationService service(options);
    const std::vector<JobResult> results = service.RunBatch({spec});

    const std::string report =
        RenderJsonReport(service.stats(), results, service.corpus());
    EXPECT_TRUE(JsonValid(report)) << report;
    for (const char* key :
         {"\"schedule_policy\":\"yield_priority\"",
          "\"jobs_plateau_cancelled\":0", "\"events_delivered\"",
          "\"stop_source\":\"none\"", "\"corpus_truncated\":0"}) {
        EXPECT_NE(report.find(key), std::string::npos) << key;
    }
}

}  // namespace
}  // namespace chef::service
