/// \file
/// End-to-end symbolic execution of MiniPy guests through the CHEF engine:
/// the paper's Figure 2 examples, soundness-of-replay, and the build
/// optimization effects at guest level.

#include <gtest/gtest.h>

#include "workloads/py_harness.h"

namespace chef::workloads {
namespace {

struct ExploreResult {
    EngineStats stats;
    std::vector<TestCase> tests;
};

ExploreResult
Explore(const std::string& source, const PySymbolicTest& spec,
        interp::InterpBuildOptions build =
            interp::InterpBuildOptions::FullyOptimized(),
        Engine::Options engine_options = {})
{
    auto program = CompilePyOrDie(source);
    Engine engine(engine_options);
    ExploreResult result;
    result.tests =
        engine.Explore(MakePyRunFn(program, spec, build));
    result.stats = engine.stats();
    return result;
}

// The paper's Figure 2 validateEmail example.
const char* kValidateEmail = R"(class InvalidEmailError(Exception):
    pass

def validateEmail(email):
    at_sign_pos = email.find('@')
    if at_sign_pos < 3:
        raise InvalidEmailError('bad email')
    return True
)";

TEST(PySymbolic, ValidateEmailEnumeratesFindOutcomes)
{
    PySymbolicTest spec;
    spec.source = kValidateEmail;
    spec.entry = "validateEmail";
    spec.args = {SymbolicArg::Str("email", 5)};
    Engine::Options options;
    options.max_runs = 200;
    const ExploreResult result =
        Explore(kValidateEmail, spec,
                interp::InterpBuildOptions::FullyOptimized(), options);

    // find over 5 symbolic bytes: positions 0..4 or not-found = 6
    // low-level outcomes; high-level: raise vs return = 2 paths.
    EXPECT_EQ(result.stats.ll_paths, 6u);
    EXPECT_EQ(result.stats.hl_paths, 2u);

    // Both guest outcomes appear, and the accepting inputs have '@' at
    // position >= 3.
    bool accepted = false;
    bool rejected = false;
    for (const TestCase& test : result.tests) {
        std::string email;
        for (uint32_t var = 1; var <= 5; ++var) {
            email.push_back(
                static_cast<char>(test.inputs.Get(var)));
        }
        if (test.outcome_kind == "ok") {
            accepted = true;
            EXPECT_GE(email.find('@'), 3u);
            EXPECT_NE(email.find('@'), std::string::npos);
        } else {
            rejected = true;
            EXPECT_EQ(test.outcome_detail, "InvalidEmailError");
        }
    }
    EXPECT_TRUE(accepted);
    EXPECT_TRUE(rejected);
}

TEST(PySymbolic, ReplayAgreesWithSymbolicOutcome)
{
    // Soundness: replaying every generated test case concretely on the
    // vanilla build reproduces the predicted guest outcome.
    PySymbolicTest spec;
    spec.source = kValidateEmail;
    spec.entry = "validateEmail";
    spec.args = {SymbolicArg::Str("email", 5)};
    auto program = CompilePyOrDie(kValidateEmail);
    Engine::Options options;
    options.max_runs = 100;
    Engine engine(options);
    const auto tests = engine.Explore(MakePyRunFn(
        program, spec, interp::InterpBuildOptions::FullyOptimized()));
    ASSERT_FALSE(tests.empty());
    for (const TestCase& test : tests) {
        const PyReplayResult replay =
            ReplayPy(program, spec, test.inputs);
        if (test.outcome_kind == "ok") {
            EXPECT_TRUE(replay.ok);
        } else {
            EXPECT_FALSE(replay.ok);
            EXPECT_EQ(replay.exception_type, test.outcome_detail);
        }
        EXPECT_FALSE(replay.covered_lines.empty());
    }
}

TEST(PySymbolic, AverageHasOneHighLevelPathManyLowLevel)
{
    // Figure 2's average(): a single high-level path, multiple low-level
    // paths from bignum digit normalization of the symbolic sum.
    const char* source = R"(def average(x, y):
    return (x + y) // 2
)";
    PySymbolicTest spec;
    spec.source = source;
    spec.entry = "average";
    spec.args = {SymbolicArg::Int("x", 10), SymbolicArg::Int("y", 20)};
    Engine::Options options;
    options.max_runs = 200;
    const ExploreResult result = Explore(
        source, spec, interp::InterpBuildOptions::FullyOptimized(),
        options);
    EXPECT_EQ(result.stats.hl_paths, 1u);
    EXPECT_GT(result.stats.ll_paths, 3u);
}

TEST(PySymbolic, FindsGuardedException)
{
    const char* source = R"(def parse(cmd):
    if cmd.startswith('GET'):
        return 1
    if cmd.startswith('PUT'):
        raise ValueError('writes unsupported')
    return 0
)";
    PySymbolicTest spec;
    spec.source = source;
    spec.entry = "parse";
    spec.args = {SymbolicArg::Str("cmd", 4)};
    Engine::Options options;
    options.max_runs = 300;
    const ExploreResult result = Explore(
        source, spec, interp::InterpBuildOptions::FullyOptimized(),
        options);
    bool found_value_error = false;
    for (const TestCase& test : result.tests) {
        if (test.outcome_detail == "ValueError") {
            found_value_error = true;
            std::string cmd;
            for (uint32_t var = 1; var <= 4; ++var) {
                cmd.push_back(static_cast<char>(test.inputs.Get(var)));
            }
            EXPECT_EQ(cmd.substr(0, 3), "PUT");
        }
    }
    EXPECT_TRUE(found_value_error);
}

TEST(PySymbolic, HangDetectionOnGuestInfiniteLoop)
{
    // An input-triggered infinite loop (the Lua JSON bug pattern).
    const char* source = R"(def scan(s):
    i = 0
    while i < len(s):
        if s[i] == 'x':
            continue
        i = i + 1
    return i
)";
    PySymbolicTest spec;
    spec.source = source;
    spec.entry = "scan";
    spec.args = {SymbolicArg::Str("s", 3)};
    Engine::Options options;
    options.max_runs = 60;
    options.max_steps_per_run = 30'000;
    const ExploreResult result = Explore(
        source, spec, interp::InterpBuildOptions::FullyOptimized(),
        options);
    EXPECT_GE(result.stats.hangs, 1u);
    bool hang_has_x = false;
    for (const TestCase& test : result.tests) {
        if (test.outcome_kind == "hang") {
            for (uint32_t var = 1; var <= 3; ++var) {
                if (static_cast<char>(test.inputs.Get(var)) == 'x') {
                    hang_has_x = true;
                }
            }
        }
    }
    EXPECT_TRUE(hang_has_x);
}

TEST(PySymbolic, SymbolicIntControlFlow)
{
    const char* source = R"(def classify(n):
    if n < 0:
        return 'negative'
    if n == 0:
        return 'zero'
    if n > 1000:
        return 'big'
    return 'small'
)";
    PySymbolicTest spec;
    spec.source = source;
    spec.entry = "classify";
    spec.args = {SymbolicArg::Int("n", 5)};
    Engine::Options options;
    options.max_runs = 200;
    const ExploreResult result = Explore(
        source, spec, interp::InterpBuildOptions::FullyOptimized(),
        options);
    EXPECT_EQ(result.stats.hl_paths, 4u);
}

TEST(PySymbolic, DictWithSymbolicKeysVanillaVsOptimized)
{
    // The Figure-12 microcosm: inserting a symbolic string key into a
    // dict. The vanilla build forks on hashing + interning + bucket
    // resolution; the optimized build stays lean.
    const char* source = R"(def store(key):
    table = {}
    table[key] = 1
    return table.get(key)
)";
    PySymbolicTest spec;
    spec.source = source;
    spec.entry = "store";
    spec.args = {SymbolicArg::Str("key", 3, "abc")};

    Engine::Options options;
    options.max_runs = 150;
    options.max_seconds = 20.0;
    const ExploreResult optimized = Explore(
        source, spec, interp::InterpBuildOptions::FullyOptimized(),
        options);
    const ExploreResult vanilla = Explore(
        source, spec, interp::InterpBuildOptions::Vanilla(), options);

    // Same guest behaviour; wildly different low-level path counts.
    EXPECT_LE(optimized.stats.ll_paths, 4u);
    EXPECT_GT(vanilla.stats.ll_paths, optimized.stats.ll_paths);
}

TEST(PySymbolic, StringEqualityFastPathEffect)
{
    const char* source = R"(def check(pw):
    if pw == 'se':
        return 'yes'
    return 'no'
)";
    PySymbolicTest spec;
    spec.source = source;
    spec.entry = "check";
    spec.args = {SymbolicArg::Str("pw", 2)};

    Engine::Options options;
    options.max_runs = 100;
    // Vanilla short-circuit comparison: one LL path per mismatch position
    // plus the match: 3. Optimized: match/mismatch only: 2.
    const ExploreResult vanilla =
        Explore(source, spec, interp::InterpBuildOptions::Vanilla(),
                options);
    const ExploreResult optimized = Explore(
        source, spec, interp::InterpBuildOptions::FullyOptimized(),
        options);
    EXPECT_EQ(optimized.stats.ll_paths, 2u);
    EXPECT_GT(vanilla.stats.ll_paths, 2u);
    // Both discover the same 2 high-level paths, including the match.
    EXPECT_EQ(optimized.stats.hl_paths, 2u);
    EXPECT_GE(vanilla.stats.hl_paths, 2u);
}

TEST(PySymbolic, CupaBeatsRandomOnSkewedGuest)
{
    // A guest mixing a fork-heavy statement (find over a long buffer)
    // with a single plain comparison: path-optimized CUPA should reach
    // both high-level outcomes of the comparison at least as fast as the
    // skew-prone baseline. This is the qualitative Figure 8 effect; the
    // quantitative version is bench_fig8_paths.
    const char* source = R"(def work(s, n):
    junk = s.find('@')
    if n == 123456:
        return 'rare'
    return junk
)";
    PySymbolicTest spec;
    spec.source = source;
    spec.entry = "work";
    spec.args = {SymbolicArg::Str("s", 8), SymbolicArg::Int("n", 0)};

    auto hl_paths_with = [&](StrategyKind kind) {
        auto program = CompilePyOrDie(source);
        Engine::Options options;
        options.max_runs = 6;  // Tight budget forces prioritization.
        options.strategy = kind;
        options.seed = 7;
        Engine engine(options);
        engine.Explore(MakePyRunFn(
            program, spec, interp::InterpBuildOptions::FullyOptimized()));
        return engine.stats().hl_paths;
    };
    EXPECT_GE(hl_paths_with(StrategyKind::kCupaPath), 2u);
}

TEST(PySymbolic, ExceptionsInGuestHandledPathsExplored)
{
    const char* source = R"(def safe_int(s):
    try:
        return int(s)
    except ValueError:
        return -1
)";
    PySymbolicTest spec;
    spec.source = source;
    spec.entry = "safe_int";
    spec.args = {SymbolicArg::Str("s", 2, "12")};
    Engine::Options options;
    options.max_runs = 400;
    const ExploreResult result = Explore(
        source, spec, interp::InterpBuildOptions::FullyOptimized(),
        options);
    // All outcomes are "ok" (exception handled in-guest), and both the
    // parse-success and parse-failure HL paths are covered.
    EXPECT_GE(result.stats.hl_paths, 2u);
    for (const TestCase& test : result.tests) {
        EXPECT_NE(test.outcome_kind, "exception");
    }
}

}  // namespace
}  // namespace chef::workloads
