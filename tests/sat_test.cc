/// \file
/// Tests for the CDCL SAT solver, including a brute-force cross-check on
/// random small instances.

#include "solver/sat.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace chef::solver {
namespace {

TEST(Sat, EmptyFormulaIsSat)
{
    CnfFormula formula;
    SatSolver solver;
    EXPECT_EQ(solver.Solve(formula), SatStatus::kSat);
}

TEST(Sat, SingleUnit)
{
    CnfFormula formula;
    const int x = formula.NewVar();
    formula.AddUnit(x);
    SatSolver solver;
    ASSERT_EQ(solver.Solve(formula), SatStatus::kSat);
    EXPECT_TRUE(solver.ModelValue(x));
}

TEST(Sat, ContradictoryUnitsAreUnsat)
{
    CnfFormula formula;
    const int x = formula.NewVar();
    formula.AddUnit(x);
    formula.AddUnit(-x);
    SatSolver solver;
    EXPECT_EQ(solver.Solve(formula), SatStatus::kUnsat);
}

TEST(Sat, EmptyClauseIsUnsat)
{
    CnfFormula formula;
    formula.AddClause({});
    SatSolver solver;
    EXPECT_EQ(solver.Solve(formula), SatStatus::kUnsat);
}

TEST(Sat, TautologicalClauseIsDropped)
{
    CnfFormula formula;
    const int x = formula.NewVar();
    formula.AddClause({x, -x});
    EXPECT_EQ(formula.clauses().size(), 0u);
}

TEST(Sat, SimpleImplicationChain)
{
    CnfFormula formula;
    const int a = formula.NewVar();
    const int b = formula.NewVar();
    const int c = formula.NewVar();
    formula.AddUnit(a);
    formula.AddBinary(-a, b);   // a -> b
    formula.AddBinary(-b, c);   // b -> c
    SatSolver solver;
    ASSERT_EQ(solver.Solve(formula), SatStatus::kSat);
    EXPECT_TRUE(solver.ModelValue(a));
    EXPECT_TRUE(solver.ModelValue(b));
    EXPECT_TRUE(solver.ModelValue(c));
}

TEST(Sat, RequiresConflictAnalysis)
{
    // (a | b) & (a | -b) & (-a | c) & (-a | -c) is unsat via two levels.
    CnfFormula formula;
    const int a = formula.NewVar();
    const int b = formula.NewVar();
    const int c = formula.NewVar();
    formula.AddBinary(a, b);
    formula.AddBinary(a, -b);
    formula.AddBinary(-a, c);
    formula.AddBinary(-a, -c);
    SatSolver solver;
    EXPECT_EQ(solver.Solve(formula), SatStatus::kUnsat);
}

/// Builds pigeonhole PHP(n+1, n): n+1 pigeons into n holes; always unsat.
CnfFormula
Pigeonhole(int holes)
{
    const int pigeons = holes + 1;
    CnfFormula formula;
    // var(p, h): pigeon p sits in hole h.
    std::vector<std::vector<int>> var(pigeons, std::vector<int>(holes));
    for (int p = 0; p < pigeons; ++p) {
        for (int h = 0; h < holes; ++h) {
            var[p][h] = formula.NewVar();
        }
    }
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h) {
            clause.push_back(var[p][h]);
        }
        formula.AddClause(clause);
    }
    for (int h = 0; h < holes; ++h) {
        for (int p1 = 0; p1 < pigeons; ++p1) {
            for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
                formula.AddBinary(-var[p1][h], -var[p2][h]);
            }
        }
    }
    return formula;
}

TEST(Sat, PigeonholeUnsat)
{
    for (int holes = 2; holes <= 5; ++holes) {
        SatSolver solver;
        EXPECT_EQ(solver.Solve(Pigeonhole(holes)), SatStatus::kUnsat)
            << "PHP with " << holes << " holes";
    }
}

TEST(Sat, ModelSatisfiesAllClauses)
{
    // Random satisfiable instance: plant a solution, add clauses
    // consistent with it.
    Rng rng(42);
    CnfFormula formula;
    const int num_vars = 50;
    std::vector<bool> planted(num_vars + 1);
    for (int v = 1; v <= num_vars; ++v) {
        formula.NewVar();
        planted[v] = rng.Chance(0.5);
    }
    for (int i = 0; i < 300; ++i) {
        std::vector<Lit> clause;
        bool satisfied = false;
        for (int k = 0; k < 3; ++k) {
            const int v = 1 + static_cast<int>(rng.NextBelow(num_vars));
            const bool positive = rng.Chance(0.5);
            clause.push_back(positive ? v : -v);
            satisfied |= (positive == planted[v]);
        }
        if (!satisfied) {
            // Flip one literal to agree with the planted model.
            const int v = std::abs(clause[0]);
            clause[0] = planted[v] ? v : -v;
        }
        formula.AddClause(clause);
    }
    SatSolver solver;
    ASSERT_EQ(solver.Solve(formula), SatStatus::kSat);
    for (const auto& clause : formula.clauses()) {
        bool satisfied = false;
        for (Lit lit : clause) {
            const bool value = solver.ModelValue(std::abs(lit));
            satisfied |= (lit > 0) == value;
        }
        EXPECT_TRUE(satisfied);
    }
}

/// Brute-force satisfiability for cross-checking (<= 16 variables).
bool
BruteForceSat(const CnfFormula& formula)
{
    const int n = formula.num_vars();
    for (uint32_t bits = 0; bits < (1u << n); ++bits) {
        bool all = true;
        for (const auto& clause : formula.clauses()) {
            bool sat = false;
            for (Lit lit : clause) {
                const bool value = (bits >> (std::abs(lit) - 1)) & 1;
                sat |= (lit > 0) == value;
            }
            if (!sat) {
                all = false;
                break;
            }
        }
        if (all) {
            return true;
        }
    }
    return false;
}

class SatRandomCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatRandomCrossCheck, AgreesWithBruteForce)
{
    Rng rng(GetParam());
    for (int round = 0; round < 40; ++round) {
        CnfFormula formula;
        const int num_vars = 4 + static_cast<int>(rng.NextBelow(8));
        for (int v = 0; v < num_vars; ++v) {
            formula.NewVar();
        }
        // Clause density around 4.3 makes roughly half the instances
        // unsatisfiable.
        const int num_clauses =
            static_cast<int>(num_vars * 4.3) +
            static_cast<int>(rng.NextBelow(4));
        for (int i = 0; i < num_clauses; ++i) {
            std::vector<Lit> clause;
            for (int k = 0; k < 3; ++k) {
                const int v =
                    1 + static_cast<int>(rng.NextBelow(num_vars));
                clause.push_back(rng.Chance(0.5) ? v : -v);
            }
            formula.AddClause(clause);
        }
        SatSolver solver;
        const SatStatus status = solver.Solve(formula);
        const bool expected = BruteForceSat(formula);
        EXPECT_EQ(status,
                  expected ? SatStatus::kSat : SatStatus::kUnsat)
            << "seed=" << GetParam() << " round=" << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Sat, ConflictLimitReportsUnknown)
{
    SatSolver::Options options;
    options.max_conflicts = 1;
    SatSolver solver(options);
    const SatStatus status = solver.Solve(Pigeonhole(6));
    EXPECT_EQ(status, SatStatus::kUnknown);
}

// ---------------------------------------------------------------------------
// Incremental interface.
// ---------------------------------------------------------------------------

TEST(SatIncremental, AssumptionsFlipOutcomeWithoutReload)
{
    CnfFormula formula;
    const int a = formula.NewVar();
    const int b = formula.NewVar();
    formula.AddBinary(-a, b);  // a -> b
    SatSolver solver;
    ASSERT_EQ(solver.SolveIncremental(formula, {a}), SatStatus::kSat);
    EXPECT_TRUE(solver.ModelValue(a));
    EXPECT_TRUE(solver.ModelValue(b));
    const size_t loaded = solver.loaded_clauses();

    // Contradictory assumptions answer kUnsat without poisoning the
    // database: the un-assumed formula stays satisfiable afterwards.
    EXPECT_EQ(solver.SolveIncremental(formula, {a, -b}),
              SatStatus::kUnsat);
    EXPECT_EQ(solver.SolveIncremental(formula, {-a}), SatStatus::kSat);
    EXPECT_FALSE(solver.ModelValue(a));
    // No clauses were appended, so nothing was reloaded.
    EXPECT_EQ(solver.loaded_clauses(), loaded);
}

TEST(SatIncremental, LoadsOnlyAppendedClauses)
{
    CnfFormula formula;
    const int a = formula.NewVar();
    const int b = formula.NewVar();
    formula.AddBinary(a, b);
    SatSolver solver;
    ASSERT_EQ(solver.SolveIncremental(formula, {}), SatStatus::kSat);
    EXPECT_EQ(solver.loaded_clauses(), 1u);

    const int c = formula.NewVar();
    formula.AddBinary(-a, c);
    formula.AddBinary(-b, c);
    ASSERT_EQ(solver.SolveIncremental(formula, {}), SatStatus::kSat);
    EXPECT_EQ(solver.loaded_clauses(), 3u);
    EXPECT_TRUE(solver.ModelValue(c));
}

TEST(SatIncremental, ClauseLoadedAfterRootAssignmentsStillConstrains)
{
    // Regression: watchers only fire on future enqueues, so a clause
    // appended after its literals were already root-assigned must be
    // evaluated at load time — attaching it blindly would leave it
    // permanently unseen and answer kSat on an unsat database.
    CnfFormula formula;
    const int a = formula.NewVar();
    const int b = formula.NewVar();
    formula.AddUnit(a);
    formula.AddUnit(b);
    SatSolver solver;
    ASSERT_EQ(solver.SolveIncremental(formula, {}), SatStatus::kSat);

    formula.AddBinary(-a, -b);
    EXPECT_EQ(solver.SolveIncremental(formula, {}), SatStatus::kUnsat);

    // Same mechanism, unit flavor: a clause that is unit under the root
    // assignment at load time must propagate its surviving literal.
    CnfFormula chain;
    const int x = chain.NewVar();
    chain.AddUnit(x);
    SatSolver second;
    ASSERT_EQ(second.SolveIncremental(chain, {}), SatStatus::kSat);
    const int y = chain.NewVar();
    chain.AddBinary(-x, y);
    ASSERT_EQ(second.SolveIncremental(chain, {}), SatStatus::kSat);
    EXPECT_TRUE(second.ModelValue(y));
    // ... and assuming its negation is detected as unsat.
    EXPECT_EQ(second.SolveIncremental(chain, {-y}), SatStatus::kUnsat);
}

TEST(SatIncremental, RootUnsatLatchesAcrossCalls)
{
    CnfFormula formula;
    const int x = formula.NewVar();
    formula.AddUnit(x);
    SatSolver solver;
    ASSERT_EQ(solver.SolveIncremental(formula, {}), SatStatus::kSat);
    formula.AddUnit(-x);
    EXPECT_EQ(solver.SolveIncremental(formula, {}), SatStatus::kUnsat);
    // Once the database itself is unsat, every later call answers kUnsat
    // immediately, under any assumptions.
    EXPECT_EQ(solver.SolveIncremental(formula, {x}), SatStatus::kUnsat);
}

TEST(SatIncremental, AssumptionFalsifiedByFullAssignmentIsUnsat)
{
    // Root propagation assigns every variable; the unplaced assumption
    // that contradicts it must still answer kUnsat (a completion check
    // before assumption placement would wrongly report kSat).
    CnfFormula formula;
    const int x = formula.NewVar();
    formula.AddUnit(x);
    SatSolver solver;
    EXPECT_EQ(solver.SolveIncremental(formula, {-x}), SatStatus::kUnsat);
    EXPECT_EQ(solver.SolveIncremental(formula, {x}), SatStatus::kSat);
}

TEST(SatIncremental, AgreesWithOneShotAcrossGrowingFormula)
{
    // Grow a random planted-solution formula in increments; at every step
    // the incremental solver (persistent learned clauses) must agree with
    // a fresh one-shot solve, under assumptions from the planted model.
    Rng rng(99);
    CnfFormula formula;
    const int num_vars = 30;
    std::vector<bool> planted(num_vars + 1);
    for (int v = 1; v <= num_vars; ++v) {
        formula.NewVar();
        planted[v] = rng.Chance(0.5);
    }
    SatSolver incremental;
    for (int step = 0; step < 10; ++step) {
        for (int i = 0; i < 20; ++i) {
            std::vector<Lit> clause;
            bool satisfied = false;
            for (int k = 0; k < 3; ++k) {
                const int v =
                    1 + static_cast<int>(rng.NextBelow(num_vars));
                const bool positive = rng.Chance(0.5);
                clause.push_back(positive ? v : -v);
                satisfied |= (positive == planted[v]);
            }
            if (!satisfied) {
                const int v = std::abs(clause[0]);
                clause[0] = planted[v] ? v : -v;
            }
            formula.AddClause(clause);
        }
        // Assume three planted literals: satisfiable by construction.
        std::vector<Lit> assumptions;
        for (int k = 0; k < 3; ++k) {
            const int v = 1 + static_cast<int>(rng.NextBelow(num_vars));
            assumptions.push_back(planted[v] ? v : -v);
        }
        EXPECT_EQ(incremental.SolveIncremental(formula, assumptions),
                  SatStatus::kSat);
        // Assuming the negation of a planted literal may or may not be
        // satisfiable; cross-check against a fresh one-shot solver on the
        // formula plus assumption units.
        const int v = 1 + static_cast<int>(rng.NextBelow(num_vars));
        const Lit contrary = planted[v] ? -v : v;
        CnfFormula augmented = formula;
        augmented.AddUnit(contrary);
        SatSolver fresh;
        EXPECT_EQ(incremental.SolveIncremental(formula, {contrary}),
                  fresh.Solve(augmented));
    }
}

TEST(SatIncremental, LearnedClausePurgeBoundsLongSession)
{
    // A persistent session accumulates learned clauses across every
    // query; with a cap the lowest-activity half is purged while every
    // answer stays identical to a fresh (uncapped) one-shot solve. The
    // planted-solution formula keeps the database satisfiable forever, so
    // root-unsat never latches and conflict-heavy contrary assumptions
    // keep the learning rate up for the whole session.
    Rng rng(2014);
    CnfFormula formula;
    const int num_vars = 60;
    std::vector<bool> planted(num_vars + 1);
    for (int v = 1; v <= num_vars; ++v) {
        formula.NewVar();
        planted[v] = rng.Chance(0.5);
    }

    SatSolver::Options capped;
    capped.max_learned_clauses = 25;
    SatSolver session(capped);

    for (int step = 0; step < 30; ++step) {
        for (int i = 0; i < 8; ++i) {
            std::vector<Lit> clause;
            bool satisfied = false;
            for (int k = 0; k < 3; ++k) {
                const int v =
                    1 + static_cast<int>(rng.NextBelow(num_vars));
                const bool positive = rng.Chance(0.5);
                clause.push_back(positive ? v : -v);
                satisfied |= (positive == planted[v]);
            }
            if (!satisfied) {
                const int v = std::abs(clause[0]);
                clause[0] = planted[v] ? v : -v;
            }
            formula.AddClause(clause);
        }
        // Assume against the planted model to force conflict analysis.
        std::vector<Lit> assumptions;
        for (int k = 0; k < 3; ++k) {
            const int v = 1 + static_cast<int>(rng.NextBelow(num_vars));
            assumptions.push_back(planted[v] ? -v : v);
        }
        CnfFormula augmented = formula;
        for (const Lit assumption : assumptions) {
            augmented.AddUnit(assumption);
        }
        SatSolver fresh;  // Uncapped reference.
        EXPECT_EQ(session.SolveIncremental(formula, assumptions),
                  fresh.Solve(augmented))
            << "step " << step;
        // The session must stay usable for satisfiable queries too.
        EXPECT_EQ(session.SolveIncremental(formula, {}), SatStatus::kSat);
    }

    EXPECT_GT(session.stats().learned_clauses, 25u);
    EXPECT_GT(session.stats().purged_clauses, 0u);
    // The database stays bounded: live learned clauses (learned minus
    // purged) never outgrow the cap by more than the purge slack.
    EXPECT_LE(session.stats().learned_clauses -
                  session.stats().purged_clauses,
              2 * capped.max_learned_clauses);
}

}  // namespace
}  // namespace chef::solver
