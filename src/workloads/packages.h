#ifndef CHEF_WORKLOADS_PACKAGES_H_
#define CHEF_WORKLOADS_PACKAGES_H_

/// \file
/// The evaluation workloads: miniature but functional re-implementations
/// of the paper's 11 packages (Table 3), written in MiniPy / MiniLua guest
/// source, each with its symbolic test specification (Figure 7) and its
/// documented-exception list (used to classify discovered exceptions into
/// documented vs. undocumented, §6.2).

#include <string>
#include <vector>

#include "workloads/lua_harness.h"
#include "workloads/py_harness.h"

namespace chef::workloads {

/// One MiniPy evaluation package.
struct PyPackage {
    std::string name;       ///< Paper's package name.
    std::string category;   ///< System / Web / Office.
    std::string description;
    PySymbolicTest test;
    /// Exception types listed in the package's documentation; anything
    /// else discovered counts as undocumented (§6.2).
    std::vector<std::string> documented_exceptions;
};

/// One MiniLua evaluation package.
struct LuaPackage {
    std::string name;
    std::string category;
    std::string description;
    LuaSymbolicTest test;
    /// True if the paper reports a hang for this package (sb-JSON).
    bool expect_hang = false;
};

/// The six Python packages of Table 3.
const std::vector<PyPackage>& PyPackages();

/// The five Lua packages of Table 3.
const std::vector<LuaPackage>& LuaPackages();

/// Looks up a package by name (fatal if absent).
const PyPackage& PyPackageByName(const std::string& name);
const LuaPackage& LuaPackageByName(const std::string& name);

/// Guest source line count (cloc-style: non-blank, non-comment).
size_t GuestLoc(const std::string& source);

}  // namespace chef::workloads

#endif  // CHEF_WORKLOADS_PACKAGES_H_
