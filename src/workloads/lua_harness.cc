#include "workloads/lua_harness.h"

#include "support/diagnostics.h"

namespace chef::workloads {

using lowlevel::SymValue;
using minilua::LuaValue;

std::shared_ptr<minilua::LuaChunk>
ParseLuaOrDie(const std::string& source)
{
    minilua::LuaParseResult parsed = minilua::LuaParse(source);
    if (!parsed.ok) {
        Fatal("workload Lua guest failed to parse: " + parsed.error +
              " at line " + std::to_string(parsed.error_line));
    }
    return parsed.chunk;
}

namespace {

std::vector<LuaValue>
BuildSymbolicArgs(lowlevel::LowLevelRuntime& rt,
                  const LuaSymbolicTest& test)
{
    std::vector<LuaValue> args;
    for (const SymbolicArg& arg : test.args) {
        if (arg.kind == SymbolicArg::Kind::kStr) {
            interp::SymStr bytes;
            for (int i = 0; i < arg.length; ++i) {
                const uint64_t fallback =
                    i < static_cast<int>(arg.default_bytes.size())
                        ? static_cast<uint8_t>(arg.default_bytes[i])
                        : 0;
                bytes.push_back(rt.MakeSymbolicValue(
                    arg.name + "[" + std::to_string(i) + "]", 8,
                    fallback));
            }
            args.push_back(LuaValue::Str(std::move(bytes)));
        } else {
            const SymValue value = rt.MakeSymbolicValue(
                arg.name, 32, static_cast<uint64_t>(arg.default_int));
            args.push_back(LuaValue::Int(SvSExt(value, 64)));
        }
    }
    return args;
}

}  // namespace

Engine::RunFn
MakeLuaRunFn(std::shared_ptr<minilua::LuaChunk> chunk,
             const LuaSymbolicTest& test, interp::InterpBuildOptions build)
{
    return [chunk, test, build](lowlevel::LowLevelRuntime& rt)
               -> Engine::GuestOutcome {
        minilua::LuaInterp::Options options;
        options.build = build;
        minilua::LuaInterp interp(&rt, chunk, options);
        minilua::LuaOutcome module_outcome = interp.RunChunk();
        if (!module_outcome.ok) {
            return {"abort", module_outcome.error_message};
        }
        std::vector<LuaValue> args = BuildSymbolicArgs(rt, test);
        minilua::LuaOutcome outcome =
            interp.CallGlobal(test.entry, std::move(args));
        if (!outcome.ok) {
            if (outcome.aborted) {
                return {"abort", ""};
            }
            return {"error", outcome.error_message};
        }
        return {"ok", ""};
    };
}

LuaReplayResult
ReplayLua(const std::shared_ptr<minilua::LuaChunk>& chunk,
          const LuaSymbolicTest& test, const solver::Assignment& inputs)
{
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    lowlevel::LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());

    minilua::LuaInterp::Options options;
    options.build = interp::InterpBuildOptions::Vanilla();
    options.coverage = true;
    minilua::LuaInterp interp(&rt, chunk, options);

    LuaReplayResult result;
    minilua::LuaOutcome module_outcome = interp.RunChunk();
    if (!module_outcome.ok) {
        result.ok = false;
        result.error_message = module_outcome.error_message;
        return result;
    }

    std::vector<LuaValue> args;
    uint32_t var_id = 1;
    for (const SymbolicArg& arg : test.args) {
        if (arg.kind == SymbolicArg::Kind::kStr) {
            interp::SymStr bytes;
            for (int i = 0; i < arg.length; ++i) {
                uint64_t value = 0;
                if (inputs.Has(var_id)) {
                    value = inputs.Get(var_id);
                } else if (i < static_cast<int>(
                                   arg.default_bytes.size())) {
                    value = static_cast<uint8_t>(arg.default_bytes[i]);
                }
                ++var_id;
                bytes.emplace_back(value, 8);
            }
            args.push_back(LuaValue::Str(std::move(bytes)));
        } else {
            uint64_t value = static_cast<uint64_t>(arg.default_int);
            if (inputs.Has(var_id)) {
                value = inputs.Get(var_id);
            }
            ++var_id;
            args.push_back(LuaValue::Int(
                SvSExt(SymValue(value, 32), 64)));
        }
    }

    minilua::LuaOutcome outcome =
        interp.CallGlobal(test.entry, std::move(args));
    result.ok = outcome.ok;
    result.error_message = outcome.error_message;
    result.output = interp.output();
    result.covered_lines = interp.covered_lines();
    return result;
}

}  // namespace chef::workloads
