#include "workloads/py_harness.h"

#include "support/diagnostics.h"

namespace chef::workloads {

using lowlevel::SymValue;
using minipy::PyRef;

std::shared_ptr<minipy::Program>
CompilePyOrDie(const std::string& source)
{
    minipy::CompileResult compiled = minipy::Compile(source);
    if (!compiled.ok) {
        Fatal("workload guest failed to compile: " + compiled.error +
              " at line " + std::to_string(compiled.error_line));
    }
    return compiled.program;
}

namespace {

/// Builds the guest argument objects, declaring symbolic inputs in a
/// deterministic order.
std::vector<PyRef>
BuildSymbolicArgs(lowlevel::LowLevelRuntime& rt, const PySymbolicTest& test)
{
    std::vector<PyRef> args;
    for (const SymbolicArg& arg : test.args) {
        if (arg.kind == SymbolicArg::Kind::kStr) {
            interp::SymStr bytes;
            for (int i = 0; i < arg.length; ++i) {
                const uint64_t fallback =
                    i < static_cast<int>(arg.default_bytes.size())
                        ? static_cast<uint8_t>(arg.default_bytes[i])
                        : 0;
                bytes.push_back(rt.MakeSymbolicValue(
                    arg.name + "[" + std::to_string(i) + "]", 8,
                    fallback));
            }
            args.push_back(minipy::MakeStr(std::move(bytes)));
        } else {
            const SymValue value = rt.MakeSymbolicValue(
                arg.name, 32, static_cast<uint64_t>(arg.default_int));
            args.push_back(minipy::MakeInt(SvSExt(value, 64)));
        }
    }
    return args;
}

}  // namespace

Engine::RunFn
MakePyRunFn(std::shared_ptr<minipy::Program> program,
            const PySymbolicTest& test, interp::InterpBuildOptions build)
{
    return [program, test, build](lowlevel::LowLevelRuntime& rt)
               -> Engine::GuestOutcome {
        minipy::Vm::Options options;
        options.build = build;
        minipy::Vm vm(&rt, program, options);
        minipy::VmOutcome module_outcome = vm.RunModule();
        if (!module_outcome.ok) {
            if (module_outcome.aborted) {
                return {"abort", "module"};
            }
            return {"exception",
                    module_outcome.exception_type + ": " +
                        module_outcome.exception_message};
        }
        std::vector<PyRef> args = BuildSymbolicArgs(rt, test);
        minipy::VmOutcome outcome = vm.CallGlobal(test.entry, args);
        if (!outcome.ok) {
            if (outcome.aborted) {
                return {"abort", ""};
            }
            return {"exception", outcome.exception_type};
        }
        return {"ok", ""};
    };
}

PyReplayResult
ReplayPy(const std::shared_ptr<minipy::Program>& program,
         const PySymbolicTest& test, const solver::Assignment& inputs)
{
    // A throwaway runtime: inputs are concrete, so nothing forks; the
    // vanilla build with coverage mirrors the paper's replay on a pristine
    // interpreter.
    lowlevel::ExecutionTree tree;
    solver::Solver solver;
    lowlevel::LowLevelRuntime rt(&tree, &solver, {});
    rt.BeginRun(solver::Assignment());

    minipy::Vm::Options options;
    options.build = interp::InterpBuildOptions::Vanilla();
    options.coverage = true;
    minipy::Vm vm(&rt, program, options);

    PyReplayResult result;
    minipy::VmOutcome module_outcome = vm.RunModule();
    if (!module_outcome.ok) {
        result.ok = false;
        result.exception_type = module_outcome.exception_type;
        result.exception_message = module_outcome.exception_message;
        return result;
    }

    // Rebuild the arguments from the concrete assignment, following the
    // same variable ordering the symbolic run used.
    std::vector<PyRef> args;
    uint32_t var_id = 1;
    for (const SymbolicArg& arg : test.args) {
        if (arg.kind == SymbolicArg::Kind::kStr) {
            interp::SymStr bytes;
            for (int i = 0; i < arg.length; ++i) {
                uint64_t value = 0;
                if (inputs.Has(var_id)) {
                    value = inputs.Get(var_id);
                } else if (i < static_cast<int>(
                                   arg.default_bytes.size())) {
                    value = static_cast<uint8_t>(arg.default_bytes[i]);
                }
                ++var_id;
                bytes.emplace_back(value, 8);
            }
            args.push_back(minipy::MakeStr(std::move(bytes)));
        } else {
            uint64_t value = static_cast<uint64_t>(arg.default_int);
            if (inputs.Has(var_id)) {
                value = inputs.Get(var_id);
            }
            ++var_id;
            args.push_back(minipy::MakeInt(
                SvSExt(SymValue(value, 32), 64)));
        }
    }

    minipy::VmOutcome outcome = vm.CallGlobal(test.entry, args);
    result.ok = outcome.ok;
    result.exception_type = outcome.exception_type;
    result.exception_message = outcome.exception_message;
    result.output = vm.output();
    result.covered_lines = vm.covered_lines();
    return result;
}

size_t
CoverableLines(const minipy::Program& program)
{
    return program.coverable_lines.size();
}

}  // namespace chef::workloads
