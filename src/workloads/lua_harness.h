#ifndef CHEF_WORKLOADS_LUA_HARNESS_H_
#define CHEF_WORKLOADS_LUA_HARNESS_H_

/// \file
/// Symbolic test harness for MiniLua guests (mirror of py_harness.h).

#include <memory>
#include <string>
#include <vector>

#include "chef/engine.h"
#include "interp/build_options.h"
#include "minilua/lua_interp.h"
#include "workloads/py_harness.h"  // SymbolicArg

namespace chef::workloads {

/// A symbolic test specification for a MiniLua guest.
struct LuaSymbolicTest {
    std::string source;
    std::string entry;
    std::vector<SymbolicArg> args;
};

/// Parses the guest source; fatal on parse errors (fixtures).
std::shared_ptr<minilua::LuaChunk> ParseLuaOrDie(
    const std::string& source);

/// Engine run-callback for a Lua symbolic test.
Engine::RunFn MakeLuaRunFn(std::shared_ptr<minilua::LuaChunk> chunk,
                           const LuaSymbolicTest& test,
                           interp::InterpBuildOptions build);

/// Concrete replay with coverage on the vanilla build.
struct LuaReplayResult {
    bool ok = true;
    std::string error_message;
    std::string output;
    std::set<int> covered_lines;
};

LuaReplayResult ReplayLua(const std::shared_ptr<minilua::LuaChunk>& chunk,
                          const LuaSymbolicTest& test,
                          const solver::Assignment& inputs);

}  // namespace chef::workloads

#endif  // CHEF_WORKLOADS_LUA_HARNESS_H_
