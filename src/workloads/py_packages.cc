/// \file
/// The six MiniPy evaluation packages (Table 3), written as guest source.
/// Each mirrors the corresponding real package's input language and error
/// behaviour at reduced scale; mini_xlrd deliberately reaches the paper's
/// four undocumented exception types (BadZipfile, IndexError, error,
/// AssertionError) on malformed inputs (§6.2).

#include "workloads/packages.h"

#include "support/diagnostics.h"

namespace chef::workloads {

namespace {

// ---------------------------------------------------------------------------
// argparse -- command-line interface generator (paper: 1,466 LOC, System).
// ---------------------------------------------------------------------------
const char* kArgparseSource = R"PY(class ArgparseError(Exception):
    pass

class Argument:
    def __init__(self, name):
        self.name = name
        self.is_flag = name.startswith('-')
        dest = name
        while dest.startswith('-'):
            dest = dest[1:]
        self.dest = dest

class ArgumentParser:
    def __init__(self):
        self.positionals = []
        self.optionals = []

    def add_argument(self, name):
        if name == '':
            raise ArgparseError('empty argument name')
        arg = Argument(name)
        if arg.is_flag:
            if arg.dest == '':
                raise ArgparseError('invalid flag name: ' + name)
            self.optionals.append(arg)
        else:
            self.positionals.append(arg)
        return arg

    def find_optional(self, token):
        for arg in self.optionals:
            if arg.name == token:
                return arg
        return None

    def parse_args(self, argv):
        result = {}
        pos_index = 0
        i = 0
        while i < len(argv):
            token = argv[i]
            if token.startswith('-') and len(token) > 1:
                eq = token.find('=')
                if eq >= 0:
                    name = token[:eq]
                    value = token[eq + 1:]
                    arg = self.find_optional(name)
                    if arg is None:
                        raise ArgparseError('unknown option: ' + name)
                    result[arg.dest] = value
                else:
                    arg = self.find_optional(token)
                    if arg is None:
                        raise ArgparseError('unknown option: ' + token)
                    if i + 1 >= len(argv):
                        raise ArgparseError('option expects a value')
                    result[arg.dest] = argv[i + 1]
                    i = i + 1
            else:
                if pos_index >= len(self.positionals):
                    raise ArgparseError('unexpected positional: ' + token)
                result[self.positionals[pos_index].dest] = token
                pos_index = pos_index + 1
            i = i + 1
        if pos_index < len(self.positionals):
            missing = self.positionals[pos_index]
            raise ArgparseError('missing positional: ' + missing.name)
        return result

def run_argparse(arg1_name, arg2_name, arg1, arg2):
    parser = ArgumentParser()
    parser.add_argument(arg1_name)
    parser.add_argument(arg2_name)
    return parser.parse_args([arg1, arg2])
)PY";

// ---------------------------------------------------------------------------
// ConfigParser -- INI configuration parser (paper: 451 LOC, System).
// ---------------------------------------------------------------------------
const char* kConfigParserSource = R"PY(class ConfigError(Exception):
    pass

class MissingSectionHeaderError(ConfigError):
    pass

class DuplicateOptionError(ConfigError):
    pass

def parse_config(text):
    sections = {}
    current = None
    for raw_line in text.split('\n'):
        line = raw_line.strip()
        if line == '' or line.startswith(';') or line.startswith('#'):
            continue
        if line.startswith('['):
            end = line.find(']')
            if end < 0:
                raise ConfigError('unterminated section header')
            name = line[1:end].strip()
            if name == '':
                raise ConfigError('empty section name')
            current = name
            if current not in sections:
                sections[current] = {}
        else:
            eq = line.find('=')
            colon = line.find(':')
            if eq < 0 or (colon >= 0 and colon < eq):
                eq = colon
            if eq < 0:
                raise ConfigError('line is not an assignment: ' + line)
            if current is None:
                raise MissingSectionHeaderError(
                    'option appears before any section header')
            key = line[:eq].strip()
            value = line[eq + 1:].strip()
            if key == '':
                raise ConfigError('empty option name')
            if key in sections[current]:
                raise DuplicateOptionError('duplicate option: ' + key)
            sections[current][key] = value
    return sections
)PY";

// ---------------------------------------------------------------------------
// HTMLParser -- HTML tag scanner (paper: 623 LOC, Web).
// ---------------------------------------------------------------------------
const char* kHtmlParserSource = R"PY(class HTMLParseError(Exception):
    pass

def parse_html(text):
    events = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == '<':
            if text[i + 1:i + 4] == '!--':
                end = text.find('-->', i + 4)
                if end < 0:
                    raise HTMLParseError('unterminated comment')
                events.append(('comment', text[i + 4:end]))
                i = end + 3
            elif i + 1 < n and text[i + 1] == '/':
                end = text.find('>', i)
                if end < 0:
                    raise HTMLParseError('unterminated end tag')
                name = text[i + 2:end].strip()
                if name == '':
                    raise HTMLParseError('malformed end tag')
                events.append(('endtag', name.lower()))
                i = end + 1
            else:
                end = text.find('>', i)
                if end < 0:
                    raise HTMLParseError('unterminated start tag')
                inner = text[i + 1:end].strip()
                if inner == '':
                    raise HTMLParseError('empty tag')
                parts = inner.split()
                name = parts[0].lower()
                attrs = []
                for chunk in parts[1:]:
                    eq = chunk.find('=')
                    if eq >= 0:
                        attrs.append((chunk[:eq], chunk[eq + 1:]))
                    else:
                        attrs.append((chunk, None))
                events.append(('starttag', name, attrs))
                i = end + 1
        elif c == '&':
            semi = text.find(';', i)
            if semi < 0:
                events.append(('data', c))
                i = i + 1
            else:
                ref = text[i + 1:semi]
                if ref == '':
                    raise HTMLParseError('empty entity reference')
                events.append(('entityref', ref))
                i = semi + 1
        else:
            events.append(('data', c))
            i = i + 1
    return events
)PY";

// ---------------------------------------------------------------------------
// simplejson -- JSON decoder (paper: 1,087 LOC, Web).
// ---------------------------------------------------------------------------
const char* kSimpleJsonSource = R"PY(class JSONDecodeError(ValueError):
    pass

def _skip_ws(s, i):
    while i < len(s) and s[i].isspace():
        i = i + 1
    return i

def _decode_string(s, i):
    i = i + 1
    out = ''
    while True:
        if i >= len(s):
            raise JSONDecodeError('unterminated string')
        c = s[i]
        if c == '"':
            return (out, i + 1)
        if c == '\\':
            if i + 1 >= len(s):
                raise JSONDecodeError('truncated escape')
            e = s[i + 1]
            if e == 'n':
                out = out + '\n'
            elif e == 't':
                out = out + '\t'
            elif e == '"':
                out = out + '"'
            elif e == '\\':
                out = out + '\\'
            elif e == '/':
                out = out + '/'
            else:
                raise JSONDecodeError('unknown escape')
            i = i + 2
        else:
            out = out + c
            i = i + 1

def _decode_number(s, i):
    start = i
    if i < len(s) and s[i] == '-':
        i = i + 1
    digits = 0
    while i < len(s) and s[i].isdigit():
        i = i + 1
        digits = digits + 1
    if digits == 0:
        raise JSONDecodeError('not a number')
    return (int(s[start:i]), i)

def _decode_array(s, i, depth):
    items = []
    i = _skip_ws(s, i + 1)
    if i < len(s) and s[i] == ']':
        return (items, i + 1)
    while True:
        value, i = _decode_value(s, i, depth + 1)
        items.append(value)
        i = _skip_ws(s, i)
        if i >= len(s):
            raise JSONDecodeError('unterminated array')
        if s[i] == ']':
            return (items, i + 1)
        if s[i] != ',':
            raise JSONDecodeError('expected , in array')
        i = i + 1

def _decode_object(s, i, depth):
    obj = {}
    i = _skip_ws(s, i + 1)
    if i < len(s) and s[i] == '}':
        return (obj, i + 1)
    while True:
        i = _skip_ws(s, i)
        if i >= len(s) or s[i] != '"':
            raise JSONDecodeError('expected object key')
        key, i = _decode_string(s, i)
        i = _skip_ws(s, i)
        if i >= len(s) or s[i] != ':':
            raise JSONDecodeError('expected : after key')
        value, i = _decode_value(s, i + 1, depth + 1)
        obj[key] = value
        i = _skip_ws(s, i)
        if i >= len(s):
            raise JSONDecodeError('unterminated object')
        if s[i] == '}':
            return (obj, i + 1)
        if s[i] != ',':
            raise JSONDecodeError('expected , in object')
        i = i + 1

def _decode_value(s, i, depth):
    if depth > 6:
        raise JSONDecodeError('value too deeply nested')
    i = _skip_ws(s, i)
    if i >= len(s):
        raise JSONDecodeError('unexpected end of input')
    c = s[i]
    if c == '{':
        return _decode_object(s, i, depth)
    if c == '[':
        return _decode_array(s, i, depth)
    if c == '"':
        return _decode_string(s, i)
    if c == 't':
        if s[i:i + 4] == 'true':
            return (True, i + 4)
        raise JSONDecodeError('bad literal')
    if c == 'f':
        if s[i:i + 5] == 'false':
            return (False, i + 5)
        raise JSONDecodeError('bad literal')
    if c == 'n':
        if s[i:i + 4] == 'null':
            return (None, i + 4)
        raise JSONDecodeError('bad literal')
    return _decode_number(s, i)

def loads(s):
    value, i = _decode_value(s, 0, 0)
    i = _skip_ws(s, i)
    if i != len(s):
        raise JSONDecodeError('trailing data after document')
    return value
)PY";

// ---------------------------------------------------------------------------
// unicodecsv -- CSV parser (paper: 126 LOC, Office).
// ---------------------------------------------------------------------------
const char* kUnicodeCsvSource = R"PY(class CsvError(Exception):
    pass

def parse_csv(text):
    rows = []
    row = []
    field = ''
    in_quotes = False
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if in_quotes:
            if c == '"':
                if i + 1 < n and text[i + 1] == '"':
                    field = field + '"'
                    i = i + 2
                else:
                    in_quotes = False
                    i = i + 1
            else:
                field = field + c
                i = i + 1
        elif c == '"':
            if field != '':
                raise CsvError('quote inside unquoted field')
            in_quotes = True
            i = i + 1
        elif c == ',':
            row.append(field)
            field = ''
            i = i + 1
        elif c == '\n':
            row.append(field)
            field = ''
            rows.append(row)
            row = []
            i = i + 1
        else:
            field = field + c
            i = i + 1
    if in_quotes:
        raise CsvError('unterminated quoted field')
    row.append(field)
    rows.append(row)
    return rows
)PY";

// ---------------------------------------------------------------------------
// xlrd -- binary workbook reader (paper: 7,241 LOC, Office). Reaches the
// paper's four undocumented exception types on malformed inputs.
// ---------------------------------------------------------------------------
const char* kXlrdSource = R"PY(class XLRDError(Exception):
    pass

class BadZipfile(Exception):
    pass

class error(Exception):
    pass

def _u8(data, i):
    # Reading past the end raises IndexError -- an inner-component
    # failure the public API does not document.
    return ord(data[i])

def _u16(data, i):
    return _u8(data, i) + _u8(data, i + 1) * 256

def parse_workbook(data):
    if len(data) < 2:
        raise XLRDError('file too short')
    if data[0] == 'P' and data[1] == 'K':
        # The file looks like a ZIP container (an .xlsx); the zip layer
        # rejects it with its own exception type.
        raise BadZipfile('File is not a zip file')
    if data[0] != 'X' or data[1] != 'L':
        raise XLRDError('unsupported file format')
    book = {'sheets': [], 'cells': {}}
    seen_bof = False
    i = 2
    while i < len(data):
        rtype = _u8(data, i)
        if rtype == 0:
            break
        rlen = _u8(data, i + 1)
        payload = i + 2
        if rtype == 1:
            version = _u8(data, payload)
            if version > 8:
                raise XLRDError('unsupported BIFF version')
            seen_bof = True
        elif rtype == 2:
            if not seen_bof:
                raise error('SHEET record before BOF')
            name = data[payload:payload + rlen]
            if len(name) != rlen:
                raise XLRDError('truncated sheet name')
            book['sheets'].append(name)
        elif rtype == 3:
            assert seen_bof, 'CELL record before BOF'
            row = _u8(data, payload)
            col = _u8(data, payload + 1)
            value = _u16(data, payload + 2)
            book['cells'][(row, col)] = value
        elif rtype == 4:
            index = _u8(data, payload)
            name = book['sheets'][index]
            book['cells'][('formula', index)] = name
        else:
            raise XLRDError('unknown record type')
        i = payload + rlen
    if not seen_bof:
        raise XLRDError('workbook has no BOF record')
    return book
)PY";

std::vector<PyPackage>
BuildPyPackages()
{
    std::vector<PyPackage> packages;

    {
        PyPackage p;
        p.name = "argparse";
        p.category = "System";
        p.description = "Command-line interface";
        p.test.source = kArgparseSource;
        p.test.entry = "run_argparse";
        // Figure 7's test: two 3-char symbolic argument names plus two
        // 3-char symbolic argument values (12 symbolic characters).
        p.test.args = {SymbolicArg::Str("arg1_name", 3),
                       SymbolicArg::Str("arg2_name", 3),
                       SymbolicArg::Str("arg1", 3),
                       SymbolicArg::Str("arg2", 3)};
        p.documented_exceptions = {"ArgparseError"};
        packages.push_back(std::move(p));
    }
    {
        PyPackage p;
        p.name = "ConfigParser";
        p.category = "System";
        p.description = "Configuration file parser";
        p.test.source = kConfigParserSource;
        p.test.entry = "parse_config";
        p.test.args = {SymbolicArg::Str("cfg", 8, "[s]\na=b\n")};
        p.documented_exceptions = {"ConfigError",
                                   "MissingSectionHeaderError",
                                   "DuplicateOptionError"};
        packages.push_back(std::move(p));
    }
    {
        PyPackage p;
        p.name = "HTMLParser";
        p.category = "Web";
        p.description = "HTML parser";
        p.test.source = kHtmlParserSource;
        p.test.entry = "parse_html";
        p.test.args = {SymbolicArg::Str("html", 7, "<a>x</a")};
        p.documented_exceptions = {"HTMLParseError"};
        packages.push_back(std::move(p));
    }
    {
        PyPackage p;
        p.name = "simplejson";
        p.category = "Web";
        p.description = "JSON format parser";
        p.test.source = kSimpleJsonSource;
        p.test.entry = "loads";
        p.test.args = {SymbolicArg::Str("doc", 6, "{\"a\":1")};
        p.documented_exceptions = {"JSONDecodeError"};
        packages.push_back(std::move(p));
    }
    {
        PyPackage p;
        p.name = "unicodecsv";
        p.category = "Office";
        p.description = "CSV file parser";
        p.test.source = kUnicodeCsvSource;
        p.test.entry = "parse_csv";
        p.test.args = {SymbolicArg::Str("csv", 6, "a,b\nc,")};
        p.documented_exceptions = {"CsvError"};
        packages.push_back(std::move(p));
    }
    {
        PyPackage p;
        p.name = "xlrd";
        p.category = "Office";
        p.description = "Binary workbook reader";
        p.test.source = kXlrdSource;
        p.test.entry = "parse_workbook";
        p.test.args = {SymbolicArg::Str("data", 8, "XL\x01\x01\x08")};
        p.documented_exceptions = {"XLRDError"};
        packages.push_back(std::move(p));
    }
    return packages;
}

}  // namespace

const std::vector<PyPackage>&
PyPackages()
{
    static const std::vector<PyPackage> packages = BuildPyPackages();
    return packages;
}

const PyPackage&
PyPackageByName(const std::string& name)
{
    for (const PyPackage& package : PyPackages()) {
        if (package.name == name) {
            return package;
        }
    }
    Fatal("unknown Python package: " + name);
}

size_t
GuestLoc(const std::string& source)
{
    size_t lines = 0;
    size_t start = 0;
    while (start < source.size()) {
        size_t end = source.find('\n', start);
        if (end == std::string::npos) {
            end = source.size();
        }
        // Count non-blank, non-comment lines (cloc-style).
        size_t i = start;
        while (i < end && (source[i] == ' ' || source[i] == '\t')) {
            ++i;
        }
        if (i < end && source[i] != '#' &&
            !(source[i] == '-' && i + 1 < end && source[i + 1] == '-')) {
            ++lines;
        }
        start = end + 1;
    }
    return lines;
}

}  // namespace chef::workloads
