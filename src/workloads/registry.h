#ifndef CHEF_WORKLOADS_REGISTRY_H_
#define CHEF_WORKLOADS_REGISTRY_H_

/// \file
/// Declarative workload registry.
///
/// Maps stable workload ids ("py/argparse", "lua/JSON") to factories that
/// build the engine run-callback, so higher layers — notably the
/// exploration service — can describe a job as data (id + options + seed)
/// instead of holding closures. The built-in entries cover the 11 Table-3
/// evaluation packages; RegisterWorkload adds custom scenarios.

#include <functional>
#include <string>
#include <vector>

#include "chef/engine.h"
#include "interp/build_options.h"

namespace chef::workloads {

/// One runnable workload.
struct WorkloadInfo {
    /// Stable id, by convention "<language>/<package>".
    std::string id;
    /// "minipy", "minilua", or "custom".
    std::string language;
    std::string description;
    /// Builds a fresh run-callback for the given interpreter build. Each
    /// invocation compiles/parses its own guest program, so callbacks from
    /// separate invocations share no state and may run on different worker
    /// threads concurrently.
    std::function<Engine::RunFn(const interp::InterpBuildOptions&)>
        make_run;
};

/// All registered workloads: the 11 built-in evaluation packages plus any
/// custom registrations, in registration order.
const std::vector<WorkloadInfo>& AllWorkloads();

/// Looks up a workload by id; nullptr if absent.
const WorkloadInfo* FindWorkload(const std::string& id);

/// The ids of all registered workloads, in registration order.
std::vector<std::string> WorkloadIds();

/// Registers a custom workload. Returns false (and registers nothing) if
/// the id is already taken. Not thread-safe: register everything before
/// starting any exploration service.
bool RegisterWorkload(WorkloadInfo info);

}  // namespace chef::workloads

#endif  // CHEF_WORKLOADS_REGISTRY_H_
