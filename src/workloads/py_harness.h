#ifndef CHEF_WORKLOADS_PY_HARNESS_H_
#define CHEF_WORKLOADS_PY_HARNESS_H_

/// \file
/// Symbolic test harness for MiniPy guests (the paper's SymbolicTest API,
/// Figure 7).
///
/// A PySymbolicTest names a guest entry function and declares the symbolic
/// inputs (fixed-length strings and integers, matching the prototype's
/// §6.1 limitation). MakePyRunFn adapts it to the engine: each concolic
/// iteration instantiates a fresh interpreter, runs the module body,
/// builds the symbolic arguments via make_symbolic, and calls the entry.
/// ReplayPy runs a test case's concrete inputs on a vanilla interpreter
/// build and reports output plus line coverage.

#include <memory>
#include <string>
#include <vector>

#include "chef/engine.h"
#include "interp/build_options.h"
#include "minipy/vm.h"

namespace chef::workloads {

/// One symbolic input declaration.
struct SymbolicArg {
    enum class Kind { kStr, kInt } kind = Kind::kStr;
    std::string name;
    /// For kStr: the fixed byte length (paper: getString("x", '\0' * n)).
    int length = 0;
    /// Default bytes (padded with NUL) or default integer value.
    std::string default_bytes;
    int64_t default_int = 0;

    static SymbolicArg Str(const std::string& name, int length,
                           const std::string& defaults = "")
    {
        SymbolicArg arg;
        arg.kind = Kind::kStr;
        arg.name = name;
        arg.length = length;
        arg.default_bytes = defaults;
        return arg;
    }
    static SymbolicArg Int(const std::string& name, int64_t default_value = 0)
    {
        SymbolicArg arg;
        arg.kind = Kind::kInt;
        arg.name = name;
        arg.default_int = default_value;
        return arg;
    }
};

/// A symbolic test specification for a MiniPy guest.
struct PySymbolicTest {
    std::string source;  ///< Guest program (package + glue).
    std::string entry;   ///< Module-level function to drive.
    std::vector<SymbolicArg> args;
};

/// Compiles the guest source; fails fatally on compile errors (workload
/// sources are fixtures).
std::shared_ptr<minipy::Program> CompilePyOrDie(const std::string& source);

/// Builds the engine run-callback for a symbolic test under the given
/// interpreter build.
Engine::RunFn MakePyRunFn(std::shared_ptr<minipy::Program> program,
                          const PySymbolicTest& test,
                          interp::InterpBuildOptions build);

/// Result of replaying one test case concretely.
struct PyReplayResult {
    bool ok = true;
    std::string exception_type;
    std::string exception_message;
    std::string output;
    std::set<int> covered_lines;
};

/// Replays concrete inputs (a solved test case) on a vanilla interpreter
/// build with coverage collection, outside any symbolic engine.
PyReplayResult ReplayPy(const std::shared_ptr<minipy::Program>& program,
                        const PySymbolicTest& test,
                        const solver::Assignment& inputs);

/// Total coverable lines of the program (denominator for Figure 9).
size_t CoverableLines(const minipy::Program& program);

}  // namespace chef::workloads

#endif  // CHEF_WORKLOADS_PY_HARNESS_H_
