#include "workloads/registry.h"

#include "workloads/packages.h"

namespace chef::workloads {

namespace {

WorkloadInfo
MakePyEntry(const PyPackage& package)
{
    WorkloadInfo info;
    info.id = "py/" + package.name;
    info.language = "minipy";
    info.description = package.description;
    const std::string name = package.name;
    info.make_run = [name](const interp::InterpBuildOptions& build) {
        const PyPackage& p = PyPackageByName(name);
        auto program = CompilePyOrDie(p.test.source);
        return MakePyRunFn(std::move(program), p.test, build);
    };
    return info;
}

WorkloadInfo
MakeLuaEntry(const LuaPackage& package)
{
    WorkloadInfo info;
    info.id = "lua/" + package.name;
    info.language = "minilua";
    info.description = package.description;
    const std::string name = package.name;
    info.make_run = [name](const interp::InterpBuildOptions& build) {
        const LuaPackage& p = LuaPackageByName(name);
        auto chunk = ParseLuaOrDie(p.test.source);
        return MakeLuaRunFn(std::move(chunk), p.test, build);
    };
    return info;
}

std::vector<WorkloadInfo>&
MutableRegistry()
{
    static std::vector<WorkloadInfo> registry = [] {
        std::vector<WorkloadInfo> entries;
        for (const PyPackage& package : PyPackages()) {
            entries.push_back(MakePyEntry(package));
        }
        for (const LuaPackage& package : LuaPackages()) {
            entries.push_back(MakeLuaEntry(package));
        }
        return entries;
    }();
    return registry;
}

}  // namespace

const std::vector<WorkloadInfo>&
AllWorkloads()
{
    return MutableRegistry();
}

const WorkloadInfo*
FindWorkload(const std::string& id)
{
    for (const WorkloadInfo& info : MutableRegistry()) {
        if (info.id == id) {
            return &info;
        }
    }
    return nullptr;
}

std::vector<std::string>
WorkloadIds()
{
    std::vector<std::string> ids;
    for (const WorkloadInfo& info : MutableRegistry()) {
        ids.push_back(info.id);
    }
    return ids;
}

bool
RegisterWorkload(WorkloadInfo info)
{
    if (info.id.empty() || FindWorkload(info.id) != nullptr) {
        return false;
    }
    MutableRegistry().push_back(std::move(info));
    return true;
}

}  // namespace chef::workloads
