/// \file
/// The five MiniLua evaluation packages (Table 3). The JSON package
/// faithfully reproduces the paper's real bug (§6.2): an unterminated
/// `/*` or `//` comment never advances the scan position, so the parser
/// spins forever — comments are a non-standard convenience extension, and
/// an attacker can use a malformed one for denial of service.

#include "workloads/packages.h"

#include "support/diagnostics.h"

namespace chef::workloads {

namespace {

// ---------------------------------------------------------------------------
// cliargs -- command-line interface (paper: 370 LOC, System).
// ---------------------------------------------------------------------------
const char* kCliargsSource = R"LUA(function split_words(input)
  local words = {}
  local current = ''
  for i = 1, #input do
    local c = input:sub(i, i)
    if c == ' ' then
      if current ~= '' then
        table.insert(words, current)
      end
      current = ''
    else
      current = current .. c
    end
  end
  if current ~= '' then
    table.insert(words, current)
  end
  return words
end

function parse_args(input)
  local args = split_words(input)
  local result = {}
  local positional = 0
  local i = 1
  while i <= #args do
    local a = args[i]
    if a:sub(1, 2) == '--' then
      local eq = a:find('=')
      if eq then
        local key = a:sub(3, eq - 1)
        if key == '' then
          error('malformed option: ' .. a)
        end
        result[key] = a:sub(eq + 1)
      else
        local key = a:sub(3)
        if key == '' then
          error('malformed option: ' .. a)
        end
        result[key] = true
      end
    elseif a:sub(1, 1) == '-' and #a > 1 then
      if i + 1 > #args then
        error('option requires a value: ' .. a)
      end
      result[a:sub(2)] = args[i + 1]
      i = i + 1
    else
      positional = positional + 1
      result[positional] = a
    end
    i = i + 1
  end
  return result
end
)LUA";

// ---------------------------------------------------------------------------
// haml -- HTML description markup (paper: 984 LOC, Web).
// ---------------------------------------------------------------------------
const char* kHamlSource = R"LUA(function split_lines(src)
  local lines = {}
  local current = ''
  for i = 1, #src do
    local c = src:sub(i, i)
    if c == '\n' then
      table.insert(lines, current)
      current = ''
    else
      current = current .. c
    end
  end
  table.insert(lines, current)
  return lines
end

function render_haml(src)
  local lines = split_lines(src)
  local html = ''
  local stack = {}
  for idx = 1, #lines do
    local line = lines[idx]
    local indent = 0
    while indent < #line and line:sub(indent + 1, indent + 1) == ' ' do
      indent = indent + 1
    end
    if indent % 2 ~= 0 then
      error('odd indentation')
    end
    local body = line:sub(indent + 1)
    local depth = indent / 2
    if body ~= '' then
      if depth > #stack then
        error('indentation skipped a level')
      end
      while #stack > depth do
        html = html .. '</' .. table.remove(stack) .. '>'
      end
      if body:sub(1, 1) == '%' then
        local space = body:find(' ')
        local tag
        local content = ''
        if space then
          tag = body:sub(2, space - 1)
          content = body:sub(space + 1)
        else
          tag = body:sub(2)
        end
        if tag == '' then
          error('missing tag name')
        end
        html = html .. '<' .. tag .. '>' .. content
        table.insert(stack, tag)
      elseif body:sub(1, 1) == '/' then
        html = html .. '<!--' .. body:sub(2) .. '-->'
      else
        html = html .. body
      end
    end
  end
  while #stack > 0 do
    html = html .. '</' .. table.remove(stack) .. '>'
  end
  return html
end
)LUA";

// ---------------------------------------------------------------------------
// sb-JSON -- JSON parser WITH the comment hang bug (paper: 454 LOC, Web).
// ---------------------------------------------------------------------------
const char* kJsonSource = R"LUA(function skip_ws(s, i)
  while i <= #s do
    local c = s:sub(i, i)
    if c == ' ' or c == '\t' or c == '\n' or c == '\r' then
      i = i + 1
    elseif c == '/' and s:sub(i + 1, i + 1) == '/' then
      local j = i + 2
      while j <= #s and s:sub(j, j) ~= '\n' do
        j = j + 1
      end
      if j <= #s then
        i = j + 1
      end
      -- BUG (faithful to the paper, 6.2): an unterminated line comment
      -- leaves i unchanged, so the scanner re-reads the same '/' forever.
    elseif c == '/' and s:sub(i + 1, i + 1) == '*' then
      local j = i + 2
      while j <= #s do
        if s:sub(j, j) == '*' and s:sub(j + 1, j + 1) == '/' then
          break
        end
        j = j + 1
      end
      if j <= #s then
        i = j + 2
      end
      -- BUG: an unterminated block comment also never advances i.
    else
      return i
    end
  end
  return i
end

function decode_string(s, i)
  i = i + 1
  local out = ''
  while true do
    if i > #s then
      error('unterminated string')
    end
    local c = s:sub(i, i)
    if c == '"' then
      return out, i + 1
    end
    if c == '\\' then
      local e = s:sub(i + 1, i + 1)
      if e == 'n' then
        out = out .. '\n'
      elseif e == 't' then
        out = out .. '\t'
      elseif e == '"' then
        out = out .. '"'
      elseif e == '\\' then
        out = out .. '\\'
      else
        error('bad escape')
      end
      i = i + 2
    else
      out = out .. c
      i = i + 1
    end
  end
end

function decode_number(s, i)
  local start = i
  if s:sub(i, i) == '-' then
    i = i + 1
  end
  local digits = 0
  while i <= #s do
    local c = s:sub(i, i)
    if c >= '0' and c <= '9' then
      i = i + 1
      digits = digits + 1
    else
      break
    end
  end
  if digits == 0 then
    error('bad number')
  end
  return tonumber(s:sub(start, i - 1)), i
end

function decode_value(s, i, depth)
  if depth > 5 then
    error('too deeply nested')
  end
  i = skip_ws(s, i)
  if i > #s then
    error('unexpected end of input')
  end
  local c = s:sub(i, i)
  if c == '{' then
    local obj = {}
    i = skip_ws(s, i + 1)
    if s:sub(i, i) == '}' then
      return obj, i + 1
    end
    while true do
      i = skip_ws(s, i)
      if s:sub(i, i) ~= '"' then
        error('expected object key')
      end
      local key
      key, i = decode_string(s, i)
      i = skip_ws(s, i)
      if s:sub(i, i) ~= ':' then
        error('expected colon')
      end
      local value
      value, i = decode_value(s, i + 1, depth + 1)
      obj[key] = value
      i = skip_ws(s, i)
      local t = s:sub(i, i)
      if t == '}' then
        return obj, i + 1
      end
      if t ~= ',' then
        error('expected comma in object')
      end
      i = i + 1
    end
  elseif c == '[' then
    local arr = {}
    i = skip_ws(s, i + 1)
    if s:sub(i, i) == ']' then
      return arr, i + 1
    end
    while true do
      local value
      value, i = decode_value(s, i, depth + 1)
      table.insert(arr, value)
      i = skip_ws(s, i)
      local t = s:sub(i, i)
      if t == ']' then
        return arr, i + 1
      end
      if t ~= ',' then
        error('expected comma in array')
      end
      i = i + 1
    end
  elseif c == '"' then
    return decode_string(s, i)
  elseif c == 't' then
    if s:sub(i, i + 3) == 'true' then
      return true, i + 4
    end
    error('bad literal')
  elseif c == 'f' then
    if s:sub(i, i + 4) == 'false' then
      return false, i + 5
    end
    error('bad literal')
  elseif c == 'n' then
    if s:sub(i, i + 3) == 'null' then
      return nil, i + 4
    end
    error('bad literal')
  else
    return decode_number(s, i)
  end
end

function decode(s)
  local value, i = decode_value(s, 1, 0)
  i = skip_ws(s, i)
  if i <= #s then
    error('trailing data')
  end
  return value
end
)LUA";

// ---------------------------------------------------------------------------
// markdown -- text-to-HTML conversion (paper: 1,057 LOC, Web).
// ---------------------------------------------------------------------------
const char* kMarkdownSource = R"LUA(function md_lines(src)
  local lines = {}
  local current = ''
  for i = 1, #src do
    local c = src:sub(i, i)
    if c == '\n' then
      table.insert(lines, current)
      current = ''
    else
      current = current .. c
    end
  end
  table.insert(lines, current)
  return lines
end

function md_inline(text)
  local out = ''
  local bold = false
  local code = false
  for i = 1, #text do
    local c = text:sub(i, i)
    if c == '*' and not code then
      if bold then
        out = out .. '</b>'
      else
        out = out .. '<b>'
      end
      bold = not bold
    elseif c == '`' then
      if code then
        out = out .. '</code>'
      else
        out = out .. '<code>'
      end
      code = not code
    else
      out = out .. c
    end
  end
  if bold then
    error('unbalanced emphasis')
  end
  if code then
    error('unterminated code span')
  end
  return out
end

function render_markdown(src)
  local lines = md_lines(src)
  local html = ''
  local in_list = false
  for idx = 1, #lines do
    local line = lines[idx]
    if line:sub(1, 2) == '# ' then
      if in_list then
        html = html .. '</ul>'
        in_list = false
      end
      html = html .. '<h1>' .. md_inline(line:sub(3)) .. '</h1>'
    elseif line:sub(1, 3) == '## ' then
      if in_list then
        html = html .. '</ul>'
        in_list = false
      end
      html = html .. '<h2>' .. md_inline(line:sub(4)) .. '</h2>'
    elseif line:sub(1, 2) == '- ' then
      if not in_list then
        html = html .. '<ul>'
        in_list = true
      end
      html = html .. '<li>' .. md_inline(line:sub(3)) .. '</li>'
    elseif line == '' then
      if in_list then
        html = html .. '</ul>'
        in_list = false
      end
    else
      if in_list then
        html = html .. '</ul>'
        in_list = false
      end
      html = html .. '<p>' .. md_inline(line) .. '</p>'
    end
  end
  if in_list then
    html = html .. '</ul>'
  end
  return html
end
)LUA";

// ---------------------------------------------------------------------------
// moonscript -- a language that compiles to Lua (paper: 4,634 LOC,
// System). A miniature indentation-based compiler emitting Lua text.
// ---------------------------------------------------------------------------
const char* kMoonscriptSource = R"LUA(function moon_lines(src)
  local lines = {}
  local current = ''
  for i = 1, #src do
    local c = src:sub(i, i)
    if c == '\n' then
      table.insert(lines, current)
      current = ''
    else
      current = current .. c
    end
  end
  table.insert(lines, current)
  return lines
end

function moon_expr(text)
  -- Validate an expression: names, numbers, operators, spaces, quotes.
  local i = 1
  while i <= #text do
    local c = text:sub(i, i)
    local ok = false
    if c >= 'a' and c <= 'z' then
      ok = true
    elseif c >= 'A' and c <= 'Z' then
      ok = true
    elseif c >= '0' and c <= '9' then
      ok = true
    elseif c == ' ' or c == '_' or c == '+' or c == '-' or c == '*'
        or c == '(' or c == ')' or c == '<' or c == '>' or c == '=' then
      ok = true
    elseif c == '"' then
      local close = text:find('"', i + 1)
      if not close then
        error('unterminated string in expression')
      end
      i = close
      ok = true
    end
    if not ok then
      error('invalid character in expression: ' .. c)
    end
    i = i + 1
  end
  if text == '' then
    error('empty expression')
  end
  return text
end

function compile_moon(src)
  local lines = moon_lines(src)
  local out = ''
  local levels = {0}
  for idx = 1, #lines do
    local line = lines[idx]
    local indent = 0
    while indent < #line and line:sub(indent + 1, indent + 1) == ' ' do
      indent = indent + 1
    end
    local body = line:sub(indent + 1)
    if body ~= '' then
      while indent < levels[#levels] do
        out = out .. 'end\n'
        table.remove(levels)
      end
      if indent ~= levels[#levels] then
        error('bad indentation')
      end
      if body:sub(1, 3) == 'if ' then
        out = out .. 'if ' .. moon_expr(body:sub(4)) .. ' then\n'
        table.insert(levels, indent + 2)
      elseif body:sub(1, 6) == 'while ' then
        out = out .. 'while ' .. moon_expr(body:sub(7)) .. ' do\n'
        table.insert(levels, indent + 2)
      elseif body:sub(1, 6) == 'print ' then
        out = out .. 'print(' .. moon_expr(body:sub(7)) .. ')\n'
      else
        local eq = body:find('=')
        if eq then
          local name = body:sub(1, eq - 1)
          local trimmed = ''
          for k = 1, #name do
            local c = name:sub(k, k)
            if c ~= ' ' then
              trimmed = trimmed .. c
            end
          end
          if trimmed == '' then
            error('missing variable name')
          end
          for k = 1, #trimmed do
            local c = trimmed:sub(k, k)
            local is_name = (c >= 'a' and c <= 'z')
                or (c >= 'A' and c <= 'Z') or c == '_'
                or (c >= '0' and c <= '9')
            if not is_name then
              error('invalid variable name: ' .. trimmed)
            end
          end
          out = out .. 'local ' .. trimmed .. ' = '
              .. moon_expr(body:sub(eq + 1)) .. '\n'
        else
          error('unknown statement: ' .. body)
        end
      end
    end
  end
  while #levels > 1 do
    out = out .. 'end\n'
    table.remove(levels)
  end
  return out
end
)LUA";

std::vector<LuaPackage>
BuildLuaPackages()
{
    std::vector<LuaPackage> packages;

    {
        LuaPackage p;
        p.name = "cliargs";
        p.category = "System";
        p.description = "Command-line interface";
        p.test.source = kCliargsSource;
        p.test.entry = "parse_args";
        p.test.args = {SymbolicArg::Str("argv", 6, "--a=b ")};
        packages.push_back(std::move(p));
    }
    {
        LuaPackage p;
        p.name = "haml";
        p.category = "Web";
        p.description = "HTML description markup";
        p.test.source = kHamlSource;
        p.test.entry = "render_haml";
        p.test.args = {SymbolicArg::Str("src", 6, "%p hi\n")};
        packages.push_back(std::move(p));
    }
    {
        LuaPackage p;
        p.name = "JSON";
        p.category = "Web";
        p.description = "JSON format parser";
        p.test.source = kJsonSource;
        p.test.entry = "decode";
        p.test.args = {SymbolicArg::Str("doc", 5, "[1,2]")};
        p.expect_hang = true;  // The §6.2 comment bug.
        packages.push_back(std::move(p));
    }
    {
        LuaPackage p;
        p.name = "markdown";
        p.category = "Web";
        p.description = "Text-to-HTML conversion";
        p.test.source = kMarkdownSource;
        p.test.entry = "render_markdown";
        p.test.args = {SymbolicArg::Str("src", 6, "# hi\n")};
        packages.push_back(std::move(p));
    }
    {
        LuaPackage p;
        p.name = "moonscript";
        p.category = "System";
        p.description = "Language that compiles to Lua";
        p.test.source = kMoonscriptSource;
        p.test.entry = "compile_moon";
        p.test.args = {SymbolicArg::Str("src", 6, "x = 1\n")};
        packages.push_back(std::move(p));
    }
    return packages;
}

}  // namespace

const std::vector<LuaPackage>&
LuaPackages()
{
    static const std::vector<LuaPackage> packages = BuildLuaPackages();
    return packages;
}

const LuaPackage&
LuaPackageByName(const std::string& name)
{
    for (const LuaPackage& package : LuaPackages()) {
        if (package.name == name) {
            return package;
        }
    }
    Fatal("unknown Lua package: " + name);
}

}  // namespace chef::workloads
