#ifndef CHEF_CACHE_CANONICAL_H_
#define CHEF_CACHE_CANONICAL_H_

/// \file
/// Canonical form for solver queries, shared by the per-solver query
/// cache and the cross-worker SharedSolverCache.
///
/// A query is the conjunction of a set of width-1 assertions; two queries
/// are the same cache key iff they contain structurally equal assertions,
/// in any order. The canonical form is (order-insensitive hash, assertions
/// sorted by structural hash); the sorted vector is kept alongside the
/// hash so lookups can reject hash collisions with an exact structural
/// comparison. Hoisted out of Solver (which used private equivalents) so
/// every cache layer agrees on one canonicalization.

#include <cstdint>
#include <vector>

#include "solver/expr.h"

namespace chef::cache {

/// Order-insensitive combination of the assertions' structural hashes, so
/// permuted assertion sets map to the same cache line.
uint64_t QueryHash(const std::vector<solver::ExprRef>& assertions);

/// Returns the assertions sorted by structural hash (the canonical order).
std::vector<solver::ExprRef>
SortedByHash(std::vector<solver::ExprRef> assertions);

/// Exact structural equality of two hash-sorted assertion vectors; used to
/// reject hash collisions.
bool SameAssertions(const std::vector<solver::ExprRef>& sorted_a,
                    const std::vector<solver::ExprRef>& sorted_b);

/// A query in canonical form. Build via Canonicalize(); the fields are
/// public so tests can fabricate colliding keys.
struct CanonicalQuery {
    uint64_t hash = 0;
    /// Assertions sorted by structural hash.
    std::vector<solver::ExprRef> sorted_assertions;
};

CanonicalQuery Canonicalize(std::vector<solver::ExprRef> assertions);

/// True if every assertion evaluates to 1 under the model. Evaluates
/// newest-first: for concolic negation queries the violated assertion is
/// almost always the freshly flipped branch at the end. One definition
/// serves both the solver's local model-reuse window and the shared
/// counterexample store.
bool ModelSatisfies(const std::vector<solver::ExprRef>& assertions,
                    const solver::Assignment& model);

}  // namespace chef::cache

#endif  // CHEF_CACHE_CANONICAL_H_
