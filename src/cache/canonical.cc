#include "cache/canonical.h"

#include <algorithm>
#include <utility>

namespace chef::cache {

uint64_t
QueryHash(const std::vector<solver::ExprRef>& assertions)
{
    // Commutative combination (sum of mixed per-assertion hashes) so that
    // permuted assertion sets hit the same cache line. Keep in sync with
    // nothing: this *is* the one definition.
    uint64_t combined = 0x51ed270b4d2d3c75ull;
    for (const solver::ExprRef& assertion : assertions) {
        combined += assertion->hash() * 0x9e3779b97f4a7c15ull;
    }
    return combined;
}

std::vector<solver::ExprRef>
SortedByHash(std::vector<solver::ExprRef> assertions)
{
    std::sort(assertions.begin(), assertions.end(),
              [](const solver::ExprRef& a, const solver::ExprRef& b) {
                  return a->hash() < b->hash();
              });
    return assertions;
}

bool
SameAssertions(const std::vector<solver::ExprRef>& sorted_a,
               const std::vector<solver::ExprRef>& sorted_b)
{
    if (sorted_a.size() != sorted_b.size()) {
        return false;
    }
    for (size_t i = 0; i < sorted_a.size(); ++i) {
        if (!solver::Expr::Equal(sorted_a[i], sorted_b[i])) {
            return false;
        }
    }
    return true;
}

CanonicalQuery
Canonicalize(std::vector<solver::ExprRef> assertions)
{
    CanonicalQuery query;
    query.hash = QueryHash(assertions);
    query.sorted_assertions = SortedByHash(std::move(assertions));
    return query;
}

bool
ModelSatisfies(const std::vector<solver::ExprRef>& assertions,
               const solver::Assignment& model)
{
    for (size_t i = assertions.size(); i > 0; --i) {
        if (solver::EvalConcrete(assertions[i - 1], model) == 0) {
            return false;
        }
    }
    return true;
}

}  // namespace chef::cache
