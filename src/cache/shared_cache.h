#ifndef CHEF_CACHE_SHARED_CACHE_H_
#define CHEF_CACHE_SHARED_CACHE_H_

/// \file
/// Cross-worker shared solver cache.
///
/// One SharedSolverCache is shared by every Solver in a batch of parallel
/// exploration sessions (one engine per worker thread). It memoizes
/// sat/unsat outcomes keyed by canonicalized assertion sets, and keeps a
/// bounded store of recently published satisfying models so that one
/// worker's counterexample can satisfy a sibling session's concolic
/// negation query without a SAT call.
///
/// Concurrency: the query cache is lock-striped into power-of-two shards,
/// each an LRU map under its own mutex with a per-shard byte budget
/// (total budget / shards). The counterexample store is copy-on-write: a
/// publish swaps in a new immutable snapshot, readers evaluate models
/// without holding any lock. Counters are relaxed atomics.
///
/// Determinism: sat/unsat *outcomes* are cache-invariant — an entry is
/// only ever a proven result, and kUnknown (budget-dependent) is never
/// stored, so a query answers the same with or without the cache.
/// *Models* are not canonical: a shared hit may return a different
/// satisfying assignment than a fresh SAT call would, which steers a
/// session's subsequent concrete runs down a different (still valid)
/// path. Sharing is therefore opt-in at the service layer and off by
/// default; see the determinism tests in tests/cache_test.cc.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/canonical.h"
#include "solver/expr.h"

namespace chef::cache {

/// Sat/unsat outcome stored in the cache. Mirrors solver::QueryResult
/// minus kUnknown (never cached); kept as a separate enum so this module
/// does not depend on solver.h (which depends back on this module).
enum class CachedResult : uint8_t {
    kSat,
    kUnsat,
};

/// Approximate footprint of one cached query entry (structure overhead
/// plus per-ref/per-binding costs — not deep DAG sizes, since expression
/// nodes are shared across entries and with the engines' own trees).
/// One definition for both the shared cache's byte budget and the local
/// Solver cache's cache_bytes gauge, so the two accountings can't drift.
/// Pass 0 model entries for results that store no model (unsat).
size_t QueryEntryBytes(size_t num_assertions, size_t num_model_entries);

class SharedSolverCache
{
  public:
    struct Options {
        /// Lock stripes; rounded up to a power of two, clamped to >= 1.
        size_t num_shards = 16;
        /// Total byte budget across all shards (approximate accounting:
        /// per-entry structure overhead + refs, not deep DAG sizes, since
        /// expression nodes are shared across entries).
        size_t max_bytes = 64u << 20;
        /// Bound on the shared counterexample (model) store.
        size_t max_counterexamples = 64;
    };

    /// Snapshot of the cache's counters and gauges.
    struct Stats {
        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        /// Lookups/inserts whose hash matched an entry with structurally
        /// different assertions (rejected, never served).
        uint64_t collisions = 0;
        uint64_t inserts = 0;
        uint64_t evictions = 0;
        /// Entries skipped because a single entry exceeded the per-shard
        /// byte budget.
        uint64_t oversize_skips = 0;
        /// Queries satisfied by a sibling session's published model.
        uint64_t model_reuse_hits = 0;
        uint64_t models_published = 0;
        /// Current gauges.
        size_t bytes = 0;
        size_t entries = 0;
    };

    SharedSolverCache() : SharedSolverCache(Options{}) {}
    explicit SharedSolverCache(Options options);

    /// Looks up a canonicalized query. On hit fills \p result, and \p
    /// model (if non-null) with the stored satisfying assignment for
    /// kSat. Refreshes LRU position.
    bool Lookup(const CanonicalQuery& query, CachedResult* result,
                solver::Assignment* model);

    /// Inserts a proven outcome. The model is stored only for kSat.
    /// First writer wins: a colliding hash with different assertions is
    /// dropped (counted), as is re-insertion of an existing key.
    void Insert(const CanonicalQuery& query, CachedResult result,
                const solver::Assignment& model);

    /// Tries every model in the counterexample store against the
    /// assertions (newest first); on success fills \p model (if non-null)
    /// and returns true. Lock-free on the read side.
    bool TryCounterexamples(const std::vector<solver::ExprRef>& assertions,
                            solver::Assignment* model);

    /// Publishes a satisfying model to the counterexample store
    /// (newest-first, bounded by Options::max_counterexamples).
    void PublishModel(const solver::Assignment& model);

    Stats stats() const;
    const Options& options() const { return options_; }

  private:
    struct Entry {
        CachedResult result = CachedResult::kSat;
        solver::Assignment model;
        /// Assertions sorted by hash: rejects hash collisions.
        std::vector<solver::ExprRef> key_assertions;
        size_t bytes = 0;
        /// Position in the shard's LRU list (front = most recent).
        std::list<uint64_t>::iterator lru_it;
    };

    struct Shard {
        std::mutex mu;
        std::unordered_map<uint64_t, Entry> map;
        /// Hashes, most-recently-used first.
        std::list<uint64_t> lru;
        size_t bytes = 0;
    };

    static size_t EntryBytes(const CanonicalQuery& query,
                             const solver::Assignment& model,
                             CachedResult result);
    Shard& ShardFor(uint64_t hash);

    Options options_;
    size_t shard_mask_ = 0;
    size_t shard_budget_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;

    /// Copy-on-write counterexample store: readers grab the snapshot
    /// pointer under the mutex, then evaluate without it.
    std::mutex models_mu_;
    std::shared_ptr<const std::vector<solver::Assignment>> models_;

    mutable std::atomic<uint64_t> lookups_{0};
    mutable std::atomic<uint64_t> hits_{0};
    mutable std::atomic<uint64_t> misses_{0};
    mutable std::atomic<uint64_t> collisions_{0};
    mutable std::atomic<uint64_t> inserts_{0};
    mutable std::atomic<uint64_t> evictions_{0};
    mutable std::atomic<uint64_t> oversize_skips_{0};
    mutable std::atomic<uint64_t> model_reuse_hits_{0};
    mutable std::atomic<uint64_t> models_published_{0};
    mutable std::atomic<size_t> bytes_{0};
    mutable std::atomic<size_t> entries_{0};
};

}  // namespace chef::cache

#endif  // CHEF_CACHE_SHARED_CACHE_H_
