#include "cache/shared_cache.h"

#include <algorithm>
#include <utility>

namespace chef::cache {

namespace {

/// Relaxed ordering everywhere: the counters are statistics, not
/// synchronization; the shard mutexes order the data itself.
constexpr auto kRelaxed = std::memory_order_relaxed;

size_t
RoundUpPow2(size_t n)
{
    size_t p = 1;
    while (p < n) {
        p <<= 1;
    }
    return p;
}

}  // namespace

SharedSolverCache::SharedSolverCache(Options options) : options_(options)
{
    const size_t shards =
        RoundUpPow2(options_.num_shards == 0 ? 1 : options_.num_shards);
    options_.num_shards = shards;
    shard_mask_ = shards - 1;
    shard_budget_ = options_.max_bytes / shards;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
        shards_.push_back(std::make_unique<Shard>());
    }
    models_ = std::make_shared<const std::vector<solver::Assignment>>();
}

SharedSolverCache::Shard&
SharedSolverCache::ShardFor(uint64_t hash)
{
    // Fibonacci mixing before masking: QueryHash sums per-assertion
    // hashes, so raw low bits cluster for small queries.
    return *shards_[(hash * 0x9e3779b97f4a7c15ull >> 32) & shard_mask_];
}

size_t
QueryEntryBytes(size_t num_assertions, size_t num_model_entries)
{
    constexpr size_t kEntryOverhead = 128;
    return kEntryOverhead + num_assertions * sizeof(solver::ExprRef) +
           num_model_entries * sizeof(std::pair<uint32_t, uint64_t>);
}

size_t
SharedSolverCache::EntryBytes(const CanonicalQuery& query,
                              const solver::Assignment& model,
                              CachedResult result)
{
    return QueryEntryBytes(
        query.sorted_assertions.size(),
        result == CachedResult::kSat ? model.size() : 0);
}

bool
SharedSolverCache::Lookup(const CanonicalQuery& query, CachedResult* result,
                          solver::Assignment* model)
{
    lookups_.fetch_add(1, kRelaxed);
    Shard& shard = ShardFor(query.hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(query.hash);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, kRelaxed);
        return false;
    }
    if (!SameAssertions(it->second.key_assertions,
                        query.sorted_assertions)) {
        collisions_.fetch_add(1, kRelaxed);
        misses_.fetch_add(1, kRelaxed);
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    hits_.fetch_add(1, kRelaxed);
    *result = it->second.result;
    if (it->second.result == CachedResult::kSat && model != nullptr) {
        *model = it->second.model;
    }
    return true;
}

void
SharedSolverCache::Insert(const CanonicalQuery& query, CachedResult result,
                          const solver::Assignment& model)
{
    const size_t entry_bytes = EntryBytes(query, model, result);
    if (entry_bytes > shard_budget_) {
        oversize_skips_.fetch_add(1, kRelaxed);
        return;
    }
    Shard& shard = ShardFor(query.hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(query.hash);
    if (it != shard.map.end()) {
        // First writer wins, for both genuine re-insertion and hash
        // collisions; the latter are counted so a pathological workload
        // is visible in the stats.
        if (!SameAssertions(it->second.key_assertions,
                            query.sorted_assertions)) {
            collisions_.fetch_add(1, kRelaxed);
        }
        return;
    }
    Entry entry;
    entry.result = result;
    if (result == CachedResult::kSat) {
        entry.model = model;
    }
    entry.key_assertions = query.sorted_assertions;
    entry.bytes = entry_bytes;
    shard.lru.push_front(query.hash);
    entry.lru_it = shard.lru.begin();
    shard.map.emplace(query.hash, std::move(entry));
    shard.bytes += entry_bytes;
    inserts_.fetch_add(1, kRelaxed);
    bytes_.fetch_add(entry_bytes, kRelaxed);
    entries_.fetch_add(1, kRelaxed);
    while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
        const uint64_t victim = shard.lru.back();
        shard.lru.pop_back();
        auto victim_it = shard.map.find(victim);
        shard.bytes -= victim_it->second.bytes;
        bytes_.fetch_sub(victim_it->second.bytes, kRelaxed);
        shard.map.erase(victim_it);
        entries_.fetch_sub(1, kRelaxed);
        evictions_.fetch_add(1, kRelaxed);
    }
}

bool
SharedSolverCache::TryCounterexamples(
    const std::vector<solver::ExprRef>& assertions,
    solver::Assignment* model)
{
    std::shared_ptr<const std::vector<solver::Assignment>> snapshot;
    {
        std::lock_guard<std::mutex> lock(models_mu_);
        snapshot = models_;
    }
    for (const solver::Assignment& candidate : *snapshot) {
        if (ModelSatisfies(assertions, candidate)) {
            model_reuse_hits_.fetch_add(1, kRelaxed);
            if (model != nullptr) {
                *model = candidate;
            }
            return true;
        }
    }
    return false;
}

void
SharedSolverCache::PublishModel(const solver::Assignment& model)
{
    std::lock_guard<std::mutex> lock(models_mu_);
    auto next = std::make_shared<std::vector<solver::Assignment>>();
    next->reserve(
        std::min(models_->size() + 1, options_.max_counterexamples));
    next->push_back(model);
    for (const solver::Assignment& existing : *models_) {
        if (next->size() >= options_.max_counterexamples) {
            break;
        }
        next->push_back(existing);
    }
    models_ = std::move(next);
    models_published_.fetch_add(1, kRelaxed);
}

SharedSolverCache::Stats
SharedSolverCache::stats() const
{
    Stats stats;
    stats.lookups = lookups_.load(kRelaxed);
    stats.hits = hits_.load(kRelaxed);
    stats.misses = misses_.load(kRelaxed);
    stats.collisions = collisions_.load(kRelaxed);
    stats.inserts = inserts_.load(kRelaxed);
    stats.evictions = evictions_.load(kRelaxed);
    stats.oversize_skips = oversize_skips_.load(kRelaxed);
    stats.model_reuse_hits = model_reuse_hits_.load(kRelaxed);
    stats.models_published = models_published_.load(kRelaxed);
    stats.bytes = bytes_.load(kRelaxed);
    stats.entries = entries_.load(kRelaxed);
    return stats;
}

}  // namespace chef::cache
