#include "lowlevel/exec_tree.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace chef::lowlevel {

ExecutionTree::ExecutionTree()
{
    Reset();
}

void
ExecutionTree::Reset()
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    nodes_.clear();
    // Node 0 is a sentinel whose child[0] slot holds the first real branch.
    nodes_.push_back(Node{});
    pending_.clear();
    in_flight_.clear();
    next_state_id_ = 1;
    BeginRun(default_cursor_);
}

void
ExecutionTree::BeginRun(Cursor& cursor)
{
    cursor.node = 0;
    cursor.at_root = true;
    cursor.path_condition_.clear();
    cursor.depth_ = 0;
}

ExecutionTree::AdvanceResult
ExecutionTree::Advance(Cursor& cursor, uint64_t llpc, bool taken,
                       const solver::ExprRef& taken_constraint,
                       const solver::ExprRef& negated_constraint,
                       const HlPosition& hl)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);

    // The next branch lives in the child slot reached by the last decision
    // (or the sentinel's slot 0 at the start of a run).
    const int32_t parent = cursor.node;
    const int dir_index = cursor.at_root ? 0 : (cursor.last_direction ? 1 : 0);
    int32_t slot = nodes_[parent].child[dir_index];
    if (slot < 0) {
        slot = static_cast<int32_t>(nodes_.size());
        Node node;
        node.llpc = llpc;
        nodes_.push_back(node);
        nodes_[parent].child[dir_index] = slot;
    }
    Node& node = nodes_[slot];
    CHEF_CHECK_MSG(node.llpc == llpc,
                   "non-deterministic branch sequence: interpreter replay "
                   "diverged from the recorded execution tree");

    AdvanceResult result;
    const int taken_index = taken ? 1 : 0;
    const int other_index = taken ? 0 : 1;

    // The taken direction is now explored; a stale pending alternate for it
    // (if the strategy had not picked it yet) is dropped.
    if (node.status[taken_index] == EdgeStatus::kRegistered) {
        if (pending_.erase(node.pending_id[taken_index]) > 0) {
            states_overtaken_.fetch_add(1, std::memory_order_relaxed);
            if (on_pending_removed_) {
                on_pending_removed_(node.pending_id[taken_index]);
            }
        }
    }
    node.status[taken_index] = EdgeStatus::kExplored;

    // Register the alternate for the other direction if it is still open.
    if (node.status[other_index] == EdgeStatus::kUnknown) {
        AlternateState state;
        state.id = next_state_id_++;
        state.path_condition = cursor.path_condition_;
        state.path_condition.push_back(negated_constraint);
        state.node = static_cast<uint32_t>(slot);
        state.direction = !taken;
        state.llpc = llpc;
        state.static_hlpc = hl.static_hlpc;
        state.dynamic_hlpc = hl.dynamic_hlpc;
        state.hl_opcode = hl.opcode;
        state.depth = cursor.depth_;
        node.status[other_index] = EdgeStatus::kRegistered;
        node.pending_id[other_index] = state.id;
        auto [it, inserted] = pending_.emplace(state.id, std::move(state));
        CHEF_CHECK(inserted);
        result.registered = it->first;
        if (on_state_added_) {
            on_state_added_(it->second);
        }
    }

    cursor.path_condition_.push_back(taken_constraint);
    ++cursor.depth_;
    cursor.node = slot;
    cursor.at_root = false;
    cursor.last_direction = taken;
    return result;
}

AlternateState
ExecutionTree::TakePending(StateId id)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    auto it = pending_.find(id);
    CHEF_CHECK_MSG(it != pending_.end(), "unknown pending state id");
    AlternateState state = std::move(it->second);
    pending_.erase(it);
    if (on_pending_removed_) {
        on_pending_removed_(state.id);
    }
    return state;
}

bool
ExecutionTree::ClaimState(const std::function<StateId()>& select,
                          AlternateState* out)
{
    std::unique_lock<std::recursive_mutex> lock(mutex_, std::try_to_lock);
    if (!lock.owns_lock()) {
        claim_contention_.fetch_add(1, std::memory_order_relaxed);
        lock.lock();
    }
    const StateId id = select();
    if (id == 0) {
        return false;
    }
    *out = TakePending(id);
    in_flight_.emplace(id, std::chrono::steady_clock::now());
    return true;
}

void
ExecutionTree::ReleaseClaim(const AlternateState& state)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    in_flight_.erase(state.id);
    auto [it, inserted] = pending_.emplace(state.id, state);
    CHEF_CHECK_MSG(inserted, "released state was still pending");
    if (on_state_added_) {
        on_state_added_(it->second);
    }
}

void
ExecutionTree::CompleteClaim(StateId id)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    in_flight_.erase(id);
}

void
ExecutionTree::MarkInfeasible(const AlternateState& state)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    in_flight_.erase(state.id);
    Node& node = nodes_[state.node];
    const int index = state.direction ? 1 : 0;
    node.status[index] = EdgeStatus::kInfeasible;
    node.pending_id[index] = 0;
}

size_t
ExecutionTree::states_in_flight() const
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return in_flight_.size();
}

const AlternateState*
ExecutionTree::FindPending(StateId id) const
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    auto it = pending_.find(id);
    return it == pending_.end() ? nullptr : &it->second;
}

void
ExecutionTree::ScaleForkWeight(StateId id, double factor)
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    auto it = pending_.find(id);
    if (it != pending_.end()) {
        it->second.fork_weight *= factor;
    }
}

size_t
ExecutionTree::num_nodes() const
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return nodes_.size();
}

uint64_t
ExecutionTree::total_registered() const
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    return next_state_id_ - 1;
}

obs::FrontierSnapshot
ExecutionTree::SnapshotFrontier() const
{
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    obs::FrontierSnapshot frontier;
    frontier.pending = pending_.size();
    frontier.in_flight = in_flight_.size();
    // Exclude the root sentinel: it is not a branch site.
    frontier.nodes = nodes_.empty() ? 0 : nodes_.size() - 1;
    for (const auto& [id, state] : pending_) {
        (void)id;
        ++frontier.depth_histogram[obs::FrontierSnapshot::DepthBucket(
            state.depth)];
    }
    uint64_t children = 0;
    uint64_t branch_nodes = 0;
    for (size_t i = 1; i < nodes_.size(); ++i) {
        ++branch_nodes;
        children += (nodes_[i].child[0] >= 0 ? 1 : 0) +
                    (nodes_[i].child[1] >= 0 ? 1 : 0);
    }
    frontier.mean_branching =
        branch_nodes == 0
            ? 0.0
            : static_cast<double>(children) /
                  static_cast<double>(branch_nodes);
    const auto now = std::chrono::steady_clock::now();
    double age_sum = 0.0;
    for (const auto& [id, since] : in_flight_) {
        (void)id;
        const double age =
            std::chrono::duration<double>(now - since).count();
        age_sum += age;
        frontier.lease_age_max_seconds =
            std::max(frontier.lease_age_max_seconds, age);
    }
    frontier.lease_age_mean_seconds =
        in_flight_.empty()
            ? 0.0
            : age_sum / static_cast<double>(in_flight_.size());
    return frontier;
}

}  // namespace chef::lowlevel
