#include "lowlevel/exec_tree.h"

#include "support/diagnostics.h"

namespace chef::lowlevel {

ExecutionTree::ExecutionTree()
{
    Reset();
}

void
ExecutionTree::Reset()
{
    nodes_.clear();
    // Node 0 is a sentinel whose child[0] slot holds the first real branch.
    nodes_.push_back(Node{});
    pending_.clear();
    next_state_id_ = 1;
    BeginRun();
}

void
ExecutionTree::BeginRun()
{
    cursor_ = 0;
    at_root_ = true;
    current_pc_.clear();
    current_depth_ = 0;
}

ExecutionTree::AdvanceResult
ExecutionTree::Advance(uint64_t llpc, bool taken,
                       const solver::ExprRef& taken_constraint,
                       const solver::ExprRef& negated_constraint)
{
    // The next branch lives in the child slot reached by the last decision
    // (or the sentinel's slot 0 at the start of a run).
    const int32_t parent = cursor_;
    const int dir_index = at_root_ ? 0 : (last_direction_ ? 1 : 0);
    int32_t slot = nodes_[parent].child[dir_index];
    if (slot < 0) {
        slot = static_cast<int32_t>(nodes_.size());
        Node node;
        node.llpc = llpc;
        nodes_.push_back(node);
        nodes_[parent].child[dir_index] = slot;
    }
    Node& node = nodes_[slot];
    CHEF_CHECK_MSG(node.llpc == llpc,
                   "non-deterministic branch sequence: interpreter replay "
                   "diverged from the recorded execution tree");

    AdvanceResult result;
    const int taken_index = taken ? 1 : 0;
    const int other_index = taken ? 0 : 1;

    // The taken direction is now explored; a stale pending alternate for it
    // (if the strategy had not picked it yet) is dropped.
    if (node.status[taken_index] == EdgeStatus::kRegistered) {
        if (pending_.erase(node.pending_id[taken_index]) > 0 &&
            on_pending_removed_) {
            on_pending_removed_(node.pending_id[taken_index]);
        }
    }
    node.status[taken_index] = EdgeStatus::kExplored;

    // Register the alternate for the other direction if it is still open.
    if (node.status[other_index] == EdgeStatus::kUnknown) {
        AlternateState state;
        state.id = next_state_id_++;
        state.path_condition = current_pc_;
        state.path_condition.push_back(negated_constraint);
        state.node = static_cast<uint32_t>(slot);
        state.direction = !taken;
        state.llpc = llpc;
        state.depth = current_depth_;
        node.status[other_index] = EdgeStatus::kRegistered;
        node.pending_id[other_index] = state.id;
        auto [it, inserted] = pending_.emplace(state.id, std::move(state));
        CHEF_CHECK(inserted);
        result.registered = &it->second;
    }

    current_pc_.push_back(taken_constraint);
    ++current_depth_;
    cursor_ = slot;
    at_root_ = false;
    last_direction_ = taken;
    return result;
}

void
ExecutionTree::AddConstraint(const solver::ExprRef& constraint)
{
    current_pc_.push_back(constraint);
}

AlternateState
ExecutionTree::TakePending(StateId id)
{
    auto it = pending_.find(id);
    CHEF_CHECK_MSG(it != pending_.end(), "unknown pending state id");
    AlternateState state = std::move(it->second);
    pending_.erase(it);
    if (on_pending_removed_) {
        on_pending_removed_(state.id);
    }
    return state;
}

void
ExecutionTree::MarkInfeasible(const AlternateState& state)
{
    Node& node = nodes_[state.node];
    const int index = state.direction ? 1 : 0;
    node.status[index] = EdgeStatus::kInfeasible;
    node.pending_id[index] = 0;
}

const AlternateState*
ExecutionTree::FindPending(StateId id) const
{
    auto it = pending_.find(id);
    return it == pending_.end() ? nullptr : &it->second;
}

void
ExecutionTree::ScaleForkWeight(StateId id, double factor)
{
    auto it = pending_.find(id);
    if (it != pending_.end()) {
        it->second.fork_weight *= factor;
    }
}

}  // namespace chef::lowlevel
