#ifndef CHEF_LOWLEVEL_RUNTIME_H_
#define CHEF_LOWLEVEL_RUNTIME_H_

/// \file
/// The low-level concolic execution runtime.
///
/// This is our substitute for S2E's guest-facing machinery: interpreters run
/// as ordinary C++ code, but every guest-data-dependent branch goes through
/// Branch() with a unique low-level program counter (LLPC), every symbolic
/// input is created through MakeSymbolicValue(), and the paper's guest API
/// (Table 1: make_symbolic, assume, concretize, upper_bound, is_symbolic,
/// log_pc) is provided as methods. A run executes concretely under the
/// current input assignment while the runtime records the path condition
/// and registers alternate states in the ExecutionTree.
///
/// Two execution modes support intra-session parallel exploration:
///
///  - Live mode (BeginRun): branches advance the shared ExecutionTree
///    immediately. This is the classic single-threaded path.
///  - Recording mode (BeginRecordedRun): the run appends its symbolic
///    events (branches, assumptions, log_pc) to a RunLog and touches no
///    shared structure; a run is a pure function of its input assignment.
///    A worker thread executes the guest in recording mode, then the
///    engine replays the log into the shared tree + tracker serially via
///    CommitRecordedRun on its commit runtime — making every registration,
///    throttle, fork-streak, and HL-position decision exactly as a live
///    run would have.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lowlevel/exec_tree.h"
#include "lowlevel/symvalue.h"
#include "solver/solver.h"

namespace chef::lowlevel {

/// Final status of one concolic run.
enum class PathStatus {
    kRunning,
    kFinished,        ///< The guest program terminated normally.
    kHang,            ///< Step budget exhausted (paper's 60s timeout).
    kAssumeViolated,  ///< An assume() failed concretely; re-solve and rerun.
    kAborted,         ///< Guest aborted (unrecoverable interpreter error).
};

/// Statistics for a completed run.
struct RunStats {
    PathStatus status = PathStatus::kRunning;
    uint64_t steps = 0;
    uint32_t symbolic_branches = 0;
    uint32_t registered_states = 0;
};

/// One symbolic event of a recorded run (see RunLog).
struct RunEvent {
    enum class Kind : uint8_t {
        kBranch,      ///< Symbolic branch: pc = llpc, taken, constraint.
        kConstraint,  ///< assume/concretize constraint (no forking).
        kLogPc,       ///< log_pc: pc = hlpc, opcode.
    };
    Kind kind = Kind::kBranch;
    uint64_t pc = 0;
    uint32_t opcode = 0;
    bool taken = false;
    /// kBranch: the taken-form branch constraint. kConstraint: the
    /// constraint itself.
    solver::ExprRef constraint;
};

/// The symbolic trace of one recorded run; replayed at commit time.
struct RunLog {
    std::vector<RunEvent> events;
};

/// Declares one symbolic input variable (stable across runs of a test).
struct VarDecl {
    std::string name;
    int width = 8;
    uint64_t default_value = 0;
};

/// Computes a stable low-level PC from a source location. Interpreters tag
/// each guest-data-dependent branch site with CHEF_LLPC.
uint64_t LlpcFromLocation(const char* file, int line);

#define CHEF_LLPC (::chef::lowlevel::LlpcFromLocation(__FILE__, __LINE__))

/// Guest-facing concolic runtime; one instance per symbolic test session
/// (or per exploration worker of a parallel session).
class LowLevelRuntime
{
  public:
    struct Options {
        /// Low-level step budget per run; exceeding it flags a hang (the
        /// paper's per-path 60-second timeout).
        uint64_t max_steps_per_run = 4'000'000;
        /// Fork-weight decay for consecutive forks at one LLPC (§3.4).
        double fork_weight_decay = 0.75;
        /// State-pool pressure control: after this many alternate states
        /// registered by one run, further branches follow the concrete
        /// path without registering (S2E similarly throttles forking
        /// under memory pressure). Runs that hit the cap are almost
        /// always runaway input-dependent loops already flagged as hangs.
        uint32_t max_registered_per_run = 2048;
    };

    LowLevelRuntime(ExecutionTree* tree, solver::Solver* solver,
                    Options options);

    // -- Run lifecycle (driven by the engine) -------------------------------

    /// Starts a new live run under the given input assignment (values
    /// override the per-variable defaults).
    void BeginRun(const solver::Assignment& inputs);

    /// Starts a recorded run: symbolic events are appended to \p log and
    /// no shared structure is touched until the log is committed.
    void BeginRecordedRun(const solver::Assignment& inputs, RunLog* log);

    /// Finalizes the run; a still-running status becomes kFinished.
    RunStats EndRun();

    /// Replays a recorded run's log into the shared tree (and, through the
    /// log_pc hook, the tracker) on this runtime, exactly as a live run
    /// would have: registration, throttling, fork-weight streaks and
    /// HL-position stamping all happen here. Must be called serially (the
    /// engine commits one run at a time). Returns stats whose
    /// registered_states is meaningful; status and steps belong to the
    /// recorded run. Leaves the cursor at the end of the replayed path, so
    /// current_path_condition() can seed an assume-retry solve.
    RunStats CommitRecordedRun(const RunLog& log);

    // -- Guest API (paper Table 1) ------------------------------------------

    /// make_symbolic: creates (or re-binds, on later runs) a symbolic input
    /// variable. Creation order must be deterministic across runs.
    SymValue MakeSymbolicValue(const std::string& name, int width,
                               uint64_t default_value = 0);

    /// Records a branch on a (possibly symbolic) condition at the branch
    /// site \p llpc and returns the direction the concrete execution takes.
    bool Branch(const SymValue& cond, uint64_t llpc);

    /// assume: constrains the path without forking. If the condition is
    /// concretely false the run is flagged kAssumeViolated; the engine
    /// re-solves the path condition and reruns.
    void Assume(const SymValue& cond);

    /// concretize: pins a symbolic value to its concrete value on this
    /// path (adds an equality constraint) and returns that value.
    uint64_t Concretize(const SymValue& value);

    /// upper_bound: maximum value the expression can take on this path.
    uint64_t UpperBound(const SymValue& value);

    /// is_symbolic.
    static bool IsSymbolic(const SymValue& value)
    {
        return value.IsSymbolic();
    }

    /// log_pc: interpreter dispatch-loop instrumentation. Forwarded to the
    /// registered hook (the high-level tracker), or recorded for commit
    /// time.
    void LogPc(uint64_t hlpc, uint32_t opcode);

    /// Accounts low-level work; returns false once the step budget is
    /// exhausted (callers must then unwind the run).
    bool CountStep(uint64_t steps = 1);

    bool out_of_budget() const
    {
        return stats_.steps > options_.max_steps_per_run;
    }

    /// Aborts the current path with the given status.
    void AbortPath(PathStatus status);

    PathStatus status() const { return stats_.status; }
    bool running() const { return stats_.status == PathStatus::kRunning; }

    /// The path condition of this runtime's current run (its own cursor;
    /// valid in live, recording, and just-replayed states).
    const std::vector<solver::ExprRef>& current_path_condition() const
    {
        return cursor_.path_condition();
    }

    // -- Wiring ---------------------------------------------------------------

    using LogPcHook = std::function<void(uint64_t hlpc, uint32_t opcode)>;

    /// Installs the high-level tracker hook, invoked on every LogPc call
    /// (live mode) or replayed log_pc event (commit).
    void set_log_pc_hook(LogPcHook hook) { log_pc_hook_ = std::move(hook); }

    using StateAddedHook = std::function<void(const AlternateState&)>;

    /// Invoked after a freshly registered alternate state has its
    /// high-level bookkeeping filled in (search strategies subscribe).
    /// Prefer ExecutionTree::set_on_state_added for shared-tree setups;
    /// this runtime-level hook is kept for single-runtime callers.
    void set_state_added_hook(StateAddedHook hook)
    {
        state_added_hook_ = std::move(hook);
    }

    /// Current high-level position, written back by the tracker so that
    /// alternate states registered at low-level branches carry it.
    void SetHlPosition(uint64_t static_hlpc, uint64_t dynamic_hlpc,
                       uint32_t opcode);

    const std::vector<VarDecl>& variables() const { return variables_; }
    const solver::Assignment& inputs() const { return inputs_; }
    ExecutionTree* tree() { return tree_; }
    solver::Solver* constraint_solver() { return solver_; }
    const Options& options() const { return options_; }

    /// Resets the variable registry (new symbolic test session).
    void ResetSession();

  private:
    /// Registration half of Branch (shared by live mode and replay):
    /// throttle, tree advance, fork-weight streak, state-added hook.
    void ApplyBranch(uint64_t llpc, bool taken,
                     const solver::ExprRef& taken_constraint);

    /// Adds a non-forking constraint to the path (records it in recording
    /// mode).
    void AddPathConstraint(const solver::ExprRef& constraint);

    ExecutionTree* tree_;
    solver::Solver* solver_;
    Options options_;

    std::vector<VarDecl> variables_;
    size_t next_var_index_ = 0;
    solver::Assignment inputs_;

    RunStats stats_;
    LogPcHook log_pc_hook_;
    StateAddedHook state_added_hook_;

    ExecutionTree::Cursor cursor_;
    RunLog* recording_ = nullptr;

    uint64_t hl_static_ = 0;
    uint64_t hl_dynamic_ = 0;
    uint32_t hl_opcode_ = 0;

    // Fork streak tracking for §3.4 fork weights.
    uint64_t streak_llpc_ = 0;
    bool streak_active_ = false;
    std::vector<StateId> streak_ids_;
};

}  // namespace chef::lowlevel

#endif  // CHEF_LOWLEVEL_RUNTIME_H_
