#include "lowlevel/runtime.h"

#include "support/diagnostics.h"
#include "support/strings.h"

namespace chef::lowlevel {

uint64_t
LlpcFromLocation(const char* file, int line)
{
    uint64_t h = FnvHash(file, std::char_traits<char>::length(file));
    return HashCombine(h, static_cast<uint64_t>(line));
}

LowLevelRuntime::LowLevelRuntime(ExecutionTree* tree, solver::Solver* solver,
                                 Options options)
    : tree_(tree), solver_(solver), options_(options)
{
}

void
LowLevelRuntime::ResetSession()
{
    variables_.clear();
    next_var_index_ = 0;
    inputs_ = solver::Assignment();
    stats_ = RunStats();
}

void
LowLevelRuntime::BeginRun(const solver::Assignment& inputs)
{
    inputs_ = inputs;
    stats_ = RunStats();
    next_var_index_ = 0;
    hl_static_ = 0;
    hl_dynamic_ = 0;
    hl_opcode_ = 0;
    streak_active_ = false;
    streak_ids_.clear();
    recording_ = nullptr;
    tree_->BeginRun(cursor_);
}

void
LowLevelRuntime::BeginRecordedRun(const solver::Assignment& inputs,
                                  RunLog* log)
{
    CHEF_CHECK(log != nullptr);
    BeginRun(inputs);
    log->events.clear();
    recording_ = log;
}

RunStats
LowLevelRuntime::EndRun()
{
    if (stats_.status == PathStatus::kRunning) {
        stats_.status = PathStatus::kFinished;
    }
    recording_ = nullptr;
    return stats_;
}

RunStats
LowLevelRuntime::CommitRecordedRun(const RunLog& log)
{
    stats_ = RunStats();
    hl_static_ = 0;
    hl_dynamic_ = 0;
    hl_opcode_ = 0;
    streak_active_ = false;
    streak_ids_.clear();
    recording_ = nullptr;
    tree_->BeginRun(cursor_);
    for (const RunEvent& event : log.events) {
        switch (event.kind) {
          case RunEvent::Kind::kLogPc:
            if (log_pc_hook_) {
                log_pc_hook_(event.pc, event.opcode);
            } else {
                SetHlPosition(event.pc, event.pc, event.opcode);
            }
            break;
          case RunEvent::Kind::kConstraint:
            tree_->AddConstraint(cursor_, event.constraint);
            break;
          case RunEvent::Kind::kBranch:
            ++stats_.symbolic_branches;
            ApplyBranch(event.pc, event.taken, event.constraint);
            break;
        }
    }
    return stats_;
}

SymValue
LowLevelRuntime::MakeSymbolicValue(const std::string& name, int width,
                                   uint64_t default_value)
{
    const size_t index = next_var_index_++;
    if (index == variables_.size()) {
        variables_.push_back({name, width, default_value});
    } else {
        CHEF_CHECK_MSG(index < variables_.size() &&
                           variables_[index].name == name &&
                           variables_[index].width == width,
                       "symbolic inputs must be created in a deterministic "
                       "order across runs");
    }
    const uint32_t var_id = static_cast<uint32_t>(index + 1);
    const uint64_t concrete = inputs_.Has(var_id)
                                  ? inputs_.Get(var_id)
                                  : variables_[index].default_value;
    return SymValue(concrete, width,
                    solver::MakeVar(var_id, name, width));
}

void
LowLevelRuntime::ApplyBranch(uint64_t llpc, bool taken,
                             const solver::ExprRef& taken_constraint)
{
    if (stats_.registered_states >= options_.max_registered_per_run) {
        // Pool-pressure throttle: keep executing concretely, but record
        // the constraint so the path condition stays sound.
        tree_->AddConstraint(cursor_, taken_constraint);
        return;
    }
    const solver::ExprRef negated_constraint =
        solver::MakeBoolNot(taken_constraint);

    ExecutionTree::AdvanceResult advance = tree_->Advance(
        cursor_, llpc, taken, taken_constraint, negated_constraint,
        HlPosition{hl_static_, hl_dynamic_, hl_opcode_});

    if (advance.registered != 0) {
        ++stats_.registered_states;

        // Fork-weight streak (§3.4): consecutive forks at one LLPC decay
        // earlier states by p each time a newer one appears.
        if (streak_active_ && streak_llpc_ == llpc) {
            for (StateId id : streak_ids_) {
                tree_->ScaleForkWeight(id, options_.fork_weight_decay);
            }
        } else {
            streak_ids_.clear();
            streak_llpc_ = llpc;
            streak_active_ = true;
        }
        streak_ids_.push_back(advance.registered);
        if (state_added_hook_) {
            const AlternateState* state =
                tree_->FindPending(advance.registered);
            if (state != nullptr) {
                state_added_hook_(*state);
            }
        }
    } else if (!streak_active_ || streak_llpc_ != llpc) {
        // A branch at a different site interrupts the streak.
        streak_active_ = false;
        streak_ids_.clear();
    }
}

bool
LowLevelRuntime::Branch(const SymValue& cond, uint64_t llpc)
{
    CHEF_CHECK(cond.width() == 1);
    CountStep();
    if (!cond.IsSymbolic() || !running()) {
        return cond.ConcreteTruth();
    }
    const bool taken = cond.ConcreteTruth();
    const solver::ExprRef taken_constraint =
        taken ? cond.ToExpr() : solver::MakeBoolNot(cond.ToExpr());
    ++stats_.symbolic_branches;
    if (recording_ != nullptr) {
        RunEvent event;
        event.kind = RunEvent::Kind::kBranch;
        event.pc = llpc;
        event.taken = taken;
        event.constraint = taken_constraint;
        recording_->events.push_back(std::move(event));
        // The local cursor still tracks the path condition so that
        // UpperBound works mid-run; the shared tree is untouched.
        tree_->AddConstraint(cursor_, taken_constraint);
        return taken;
    }
    ApplyBranch(llpc, taken, taken_constraint);
    return taken;
}

void
LowLevelRuntime::AddPathConstraint(const solver::ExprRef& constraint)
{
    if (recording_ != nullptr) {
        RunEvent event;
        event.kind = RunEvent::Kind::kConstraint;
        event.constraint = constraint;
        recording_->events.push_back(std::move(event));
        tree_->AddConstraint(cursor_, constraint);
        return;
    }
    tree_->AddConstraint(cursor_, constraint);
}

void
LowLevelRuntime::Assume(const SymValue& cond)
{
    CHEF_CHECK(cond.width() == 1);
    if (!running()) {
        return;
    }
    if (cond.IsSymbolic()) {
        AddPathConstraint(cond.ToExpr());
    }
    if (!cond.ConcreteTruth()) {
        if (!cond.IsSymbolic()) {
            Fatal("assume() on a concretely false, non-symbolic condition: "
                  "the symbolic test is self-contradictory");
        }
        AbortPath(PathStatus::kAssumeViolated);
    }
}

uint64_t
LowLevelRuntime::Concretize(const SymValue& value)
{
    if (value.IsSymbolic() && running()) {
        AddPathConstraint(solver::MakeEq(
            value.ToExpr(),
            solver::MakeConst(value.concrete(), value.width())));
    }
    return value.concrete();
}

uint64_t
LowLevelRuntime::UpperBound(const SymValue& value)
{
    if (!value.IsSymbolic()) {
        return value.concrete();
    }
    uint64_t bound = 0;
    if (!solver_->UpperBound(cursor_.path_condition(), value.ToExpr(),
                             &bound)) {
        // The current path condition should always be satisfiable (the run
        // is executing under a witness); fall back to the concrete value.
        return value.concrete();
    }
    return bound;
}

void
LowLevelRuntime::LogPc(uint64_t hlpc, uint32_t opcode)
{
    CountStep();
    if (recording_ != nullptr) {
        RunEvent event;
        event.kind = RunEvent::Kind::kLogPc;
        event.pc = hlpc;
        event.opcode = opcode;
        recording_->events.push_back(std::move(event));
        return;
    }
    if (log_pc_hook_) {
        log_pc_hook_(hlpc, opcode);
    } else {
        // Without a tracker, fall back to using the static HLPC directly.
        SetHlPosition(hlpc, hlpc, opcode);
    }
}

bool
LowLevelRuntime::CountStep(uint64_t steps)
{
    stats_.steps += steps;
    if (stats_.steps > options_.max_steps_per_run) {
        if (stats_.status == PathStatus::kRunning) {
            stats_.status = PathStatus::kHang;
        }
        return false;
    }
    return true;
}

void
LowLevelRuntime::AbortPath(PathStatus status)
{
    if (stats_.status == PathStatus::kRunning) {
        stats_.status = status;
    }
}

void
LowLevelRuntime::SetHlPosition(uint64_t static_hlpc, uint64_t dynamic_hlpc,
                               uint32_t opcode)
{
    hl_static_ = static_hlpc;
    hl_dynamic_ = dynamic_hlpc;
    hl_opcode_ = opcode;
}

}  // namespace chef::lowlevel
