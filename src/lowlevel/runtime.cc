#include "lowlevel/runtime.h"

#include "support/diagnostics.h"
#include "support/strings.h"

namespace chef::lowlevel {

uint64_t
LlpcFromLocation(const char* file, int line)
{
    uint64_t h = FnvHash(file, std::char_traits<char>::length(file));
    return HashCombine(h, static_cast<uint64_t>(line));
}

LowLevelRuntime::LowLevelRuntime(ExecutionTree* tree, solver::Solver* solver,
                                 Options options)
    : tree_(tree), solver_(solver), options_(options)
{
}

void
LowLevelRuntime::ResetSession()
{
    variables_.clear();
    next_var_index_ = 0;
    inputs_ = solver::Assignment();
    stats_ = RunStats();
}

void
LowLevelRuntime::BeginRun(const solver::Assignment& inputs)
{
    inputs_ = inputs;
    stats_ = RunStats();
    next_var_index_ = 0;
    hl_static_ = 0;
    hl_dynamic_ = 0;
    hl_opcode_ = 0;
    streak_active_ = false;
    streak_ids_.clear();
    tree_->BeginRun();
}

RunStats
LowLevelRuntime::EndRun()
{
    if (stats_.status == PathStatus::kRunning) {
        stats_.status = PathStatus::kFinished;
    }
    return stats_;
}

SymValue
LowLevelRuntime::MakeSymbolicValue(const std::string& name, int width,
                                   uint64_t default_value)
{
    const size_t index = next_var_index_++;
    if (index == variables_.size()) {
        variables_.push_back({name, width, default_value});
    } else {
        CHEF_CHECK_MSG(index < variables_.size() &&
                           variables_[index].name == name &&
                           variables_[index].width == width,
                       "symbolic inputs must be created in a deterministic "
                       "order across runs");
    }
    const uint32_t var_id = static_cast<uint32_t>(index + 1);
    const uint64_t concrete = inputs_.Has(var_id)
                                  ? inputs_.Get(var_id)
                                  : variables_[index].default_value;
    return SymValue(concrete, width,
                    solver::MakeVar(var_id, name, width));
}

bool
LowLevelRuntime::Branch(const SymValue& cond, uint64_t llpc)
{
    CHEF_CHECK(cond.width() == 1);
    CountStep();
    if (!cond.IsSymbolic() || !running()) {
        return cond.ConcreteTruth();
    }
    const bool taken = cond.ConcreteTruth();
    if (stats_.registered_states >= options_.max_registered_per_run) {
        // Pool-pressure throttle: keep executing concretely, but record
        // the constraint so the path condition stays sound.
        tree_->AddConstraint(taken ? cond.ToExpr()
                                   : solver::MakeBoolNot(cond.ToExpr()));
        ++stats_.symbolic_branches;
        return taken;
    }
    const solver::ExprRef taken_constraint =
        taken ? cond.ToExpr() : solver::MakeBoolNot(cond.ToExpr());
    const solver::ExprRef negated_constraint =
        solver::MakeBoolNot(taken_constraint);

    ++stats_.symbolic_branches;
    ExecutionTree::AdvanceResult advance =
        tree_->Advance(llpc, taken, taken_constraint, negated_constraint);

    if (advance.registered != nullptr) {
        AlternateState* state = advance.registered;
        state->static_hlpc = hl_static_;
        state->dynamic_hlpc = hl_dynamic_;
        state->hl_opcode = hl_opcode_;
        ++stats_.registered_states;

        // Fork-weight streak (§3.4): consecutive forks at one LLPC decay
        // earlier states by p each time a newer one appears.
        if (streak_active_ && streak_llpc_ == llpc) {
            for (StateId id : streak_ids_) {
                tree_->ScaleForkWeight(id, options_.fork_weight_decay);
            }
        } else {
            streak_ids_.clear();
            streak_llpc_ = llpc;
            streak_active_ = true;
        }
        streak_ids_.push_back(state->id);
        if (state_added_hook_) {
            state_added_hook_(*state);
        }
    } else if (!streak_active_ || streak_llpc_ != llpc) {
        // A branch at a different site interrupts the streak.
        streak_active_ = false;
        streak_ids_.clear();
    }
    return taken;
}

void
LowLevelRuntime::Assume(const SymValue& cond)
{
    CHEF_CHECK(cond.width() == 1);
    if (!running()) {
        return;
    }
    if (cond.IsSymbolic()) {
        tree_->AddConstraint(cond.ToExpr());
    }
    if (!cond.ConcreteTruth()) {
        if (!cond.IsSymbolic()) {
            Fatal("assume() on a concretely false, non-symbolic condition: "
                  "the symbolic test is self-contradictory");
        }
        AbortPath(PathStatus::kAssumeViolated);
    }
}

uint64_t
LowLevelRuntime::Concretize(const SymValue& value)
{
    if (value.IsSymbolic() && running()) {
        tree_->AddConstraint(solver::MakeEq(
            value.ToExpr(),
            solver::MakeConst(value.concrete(), value.width())));
    }
    return value.concrete();
}

uint64_t
LowLevelRuntime::UpperBound(const SymValue& value)
{
    if (!value.IsSymbolic()) {
        return value.concrete();
    }
    uint64_t bound = 0;
    if (!solver_->UpperBound(tree_->current_path_condition(),
                             value.ToExpr(), &bound)) {
        // The current path condition should always be satisfiable (the run
        // is executing under a witness); fall back to the concrete value.
        return value.concrete();
    }
    return bound;
}

void
LowLevelRuntime::LogPc(uint64_t hlpc, uint32_t opcode)
{
    CountStep();
    if (log_pc_hook_) {
        log_pc_hook_(hlpc, opcode);
    } else {
        // Without a tracker, fall back to using the static HLPC directly.
        SetHlPosition(hlpc, hlpc, opcode);
    }
}

bool
LowLevelRuntime::CountStep(uint64_t steps)
{
    stats_.steps += steps;
    if (stats_.steps > options_.max_steps_per_run) {
        if (stats_.status == PathStatus::kRunning) {
            stats_.status = PathStatus::kHang;
        }
        return false;
    }
    return true;
}

void
LowLevelRuntime::AbortPath(PathStatus status)
{
    if (stats_.status == PathStatus::kRunning) {
        stats_.status = status;
    }
}

void
LowLevelRuntime::SetHlPosition(uint64_t static_hlpc, uint64_t dynamic_hlpc,
                               uint32_t opcode)
{
    hl_static_ = static_hlpc;
    hl_dynamic_ = dynamic_hlpc;
    hl_opcode_ = opcode;
}

}  // namespace chef::lowlevel
