#ifndef CHEF_LOWLEVEL_EXEC_TREE_H_
#define CHEF_LOWLEVEL_EXEC_TREE_H_

/// \file
/// The low-level symbolic execution tree.
///
/// Nodes are symbolic branch points encountered during concolic runs, in the
/// order a deterministic execution meets them (Figure 1 of the paper). Each
/// direction of a node is either unexplored, explored by some completed run,
/// pending as a registered alternate state, or proven infeasible. Alternate
/// states carry the bookkeeping CUPA needs: the forking low-level PC, the
/// static and dynamic high-level PC at the fork, and the fork weight.
///
/// Concurrency model: one ExecutionTree may be shared by several exploration
/// workers. All shared structures (nodes, the pending pool, the in-flight
/// lease set) are guarded by an internal lock; per-run traversal state lives
/// in a Cursor owned by each worker's runtime, so concurrent runs never
/// share mutable cursor state. A pending state is *leased* to a worker via
/// ClaimState (which runs the strategy's selection under the tree lock, so
/// selection and removal are atomic); leased states are out of the pending
/// pool and therefore excluded from further selection until the worker
/// either commits the run that explores them (CompleteClaim), proves them
/// infeasible (MarkInfeasible), or hands them back (ReleaseClaim).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/attribution.h"
#include "solver/expr.h"

namespace chef::lowlevel {

/// Identifier of a pending alternate state.
using StateId = uint64_t;

/// A not-yet-explored branch direction, scheduled for exploration.
/// This is the paper's "symbolic execution state" from the point of view of
/// the search strategy.
struct AlternateState {
    StateId id = 0;
    /// Conjunction describing the alternate path (prefix + negated branch).
    std::vector<solver::ExprRef> path_condition;
    /// Position in the tree: node index and the direction to take there.
    uint32_t node = 0;
    bool direction = false;
    /// Low-level program counter of the forking branch site.
    uint64_t llpc = 0;
    /// Static high-level PC (value of the last log_pc) at fork time.
    uint64_t static_hlpc = 0;
    /// Dynamic high-level PC: the occurrence of static_hlpc in the unfolded
    /// high-level execution tree (node id assigned by the HL tracker).
    uint64_t dynamic_hlpc = 0;
    /// Opcode reported by the last log_pc before the fork.
    uint32_t hl_opcode = 0;
    /// Paper §3.4: states forked consecutively at the same low-level PC get
    /// geometrically decaying weights; the most recent fork has weight 1.
    double fork_weight = 1.0;
    /// Depth in the low-level tree (number of symbolic branches en route).
    uint32_t depth = 0;
};

/// Exploration status of one direction of a branch node.
enum class EdgeStatus : uint8_t {
    kUnknown,     ///< Never taken, no alternate registered.
    kExplored,    ///< Some completed run went this way.
    kRegistered,  ///< Alternate state pending in the strategy queue.
    kInfeasible,  ///< Solver proved the direction's path condition UNSAT.
};

/// High-level position of the run at a fork, recorded into the alternate
/// state registered there (filled by the runtime from the tracker's
/// write-back).
struct HlPosition {
    uint64_t static_hlpc = 0;
    uint64_t dynamic_hlpc = 0;
    uint32_t opcode = 0;
};

/// The concolic execution tree plus the pool of pending alternate states.
class ExecutionTree
{
  public:
    /// Per-run traversal state. Each concurrent run owns one cursor; the
    /// tree never stores per-run state, so runs only contend on the shared
    /// node/pending structures inside Advance.
    class Cursor
    {
      public:
        /// The path condition of the run so far.
        const std::vector<solver::ExprRef>& path_condition() const
        {
            return path_condition_;
        }

        /// Number of symbolic branches the run has passed.
        uint32_t depth() const { return depth_; }

      private:
        friend class ExecutionTree;

        int32_t node = 0;
        bool at_root = true;
        bool last_direction = false;
        std::vector<solver::ExprRef> path_condition_;
        uint32_t depth_ = 0;
    };

    ExecutionTree();

    /// Drops all nodes and pending states.
    void Reset();

    /// Resets \p cursor to the root for a new run.
    void BeginRun(Cursor& cursor);

    /// Legacy form: resets the tree's built-in default cursor (used by
    /// single-threaded callers and tests).
    void BeginRun() { BeginRun(default_cursor_); }

    /// Result of advancing a run cursor through a symbolic branch.
    struct AdvanceResult {
        /// Non-zero when a new alternate state was registered for the
        /// not-taken direction.
        StateId registered = 0;
    };

    /// Records that the run behind \p cursor took direction \p taken at a
    /// symbolic branch with the given site \p llpc and branch condition
    /// (already in taken-form, i.e. the constraint that holds on this run).
    /// The alternate's path condition is the cursor's prefix plus the
    /// negated constraint; \p hl stamps the alternate with the run's
    /// high-level position. A newly registered state is announced through
    /// the state-added hook while still holding the tree lock, so observers
    /// see it fully constructed and exactly once.
    AdvanceResult Advance(Cursor& cursor, uint64_t llpc, bool taken,
                          const solver::ExprRef& taken_constraint,
                          const solver::ExprRef& negated_constraint,
                          const HlPosition& hl);

    /// Legacy form: default cursor, empty high-level position.
    AdvanceResult Advance(uint64_t llpc, bool taken,
                          const solver::ExprRef& taken_constraint,
                          const solver::ExprRef& negated_constraint)
    {
        return Advance(default_cursor_, llpc, taken, taken_constraint,
                       negated_constraint, HlPosition{});
    }

    /// The path condition of the default cursor's current run.
    const std::vector<solver::ExprRef>& current_path_condition() const
    {
        return default_cursor_.path_condition();
    }

    /// Adds an assumption to a run's path condition (not a branch; no
    /// forking, no shared state touched).
    void AddConstraint(Cursor& cursor, const solver::ExprRef& constraint)
    {
        cursor.path_condition_.push_back(constraint);
    }

    /// Legacy form: default cursor.
    void AddConstraint(const solver::ExprRef& constraint)
    {
        AddConstraint(default_cursor_, constraint);
    }

    /// Number of symbolic branches the default cursor's run has passed.
    uint32_t current_depth() const { return default_cursor_.depth(); }

    /// Removes and returns a pending state (strategy selected it).
    /// The state stays recorded as kRegistered in the tree until the caller
    /// reports the outcome via MarkInfeasible or a subsequent run exploring
    /// it.
    AlternateState TakePending(StateId id);

    // -- Claim/lease protocol (parallel exploration) ------------------------

    /// Atomically runs \p select (typically SearchStrategy::ClaimState)
    /// under the tree lock and, if it returns a non-zero id, leases that
    /// state to the caller: the state leaves the pending pool (firing the
    /// pending-removed hook) and is tracked as in flight. Returns false
    /// when \p select returned 0 (nothing selectable). The leased state
    /// must be resolved with CompleteClaim, MarkInfeasible, or
    /// ReleaseClaim.
    bool ClaimState(const std::function<StateId()>& select,
                    AlternateState* out);

    /// Hands a leased state back untouched: re-inserts it into the pending
    /// pool and re-announces it through the state-added hook (so the
    /// strategy re-queues it).
    void ReleaseClaim(const AlternateState& state);

    /// Marks a leased state's run as committed (the exploring run advanced
    /// through its node, so the tree already records the direction as
    /// explored); drops the in-flight lease.
    void CompleteClaim(StateId id);

    /// Marks a previously taken or leased state's direction as infeasible.
    void MarkInfeasible(const AlternateState& state);

    /// Number of leased (claimed, not yet resolved) states.
    size_t states_in_flight() const;

    /// Times a claim found the tree lock already held (lock contention
    /// between exploration workers).
    uint64_t claim_contention() const
    {
        return claim_contention_.load(std::memory_order_relaxed);
    }

    /// Pending states dropped because a run explored their direction
    /// before the strategy picked them (Advance's stale-alternate path).
    /// With concurrent runs the count depends on interleaving: every
    /// registered state ends up exactly one of finalized, still pending,
    /// or overtaken.
    uint64_t states_overtaken() const
    {
        return states_overtaken_.load(std::memory_order_relaxed);
    }

    // -----------------------------------------------------------------------

    /// Looks up a pending state (for strategies). Null if absent. Only
    /// meaningful under the tree lock (i.e. from within a ClaimState
    /// selection callback or single-threaded use); the pointer is
    /// invalidated by any concurrent mutation.
    const AlternateState* FindPending(StateId id) const;

    /// All pending states (insertion order not guaranteed). Requires
    /// external quiescence; used by single-threaded callers and tests.
    const std::unordered_map<StateId, AlternateState>& pending() const
    {
        return pending_;
    }

    /// Multiplies the fork weight of a pending state (fork streak decay).
    void ScaleForkWeight(StateId id, double factor);

    size_t num_nodes() const;
    uint64_t total_registered() const;

    /// Point-in-time frontier view (obs/attribution.h): pending count
    /// and depth histogram, in-flight lease count and ages, node count,
    /// and the tree's mean branching factor. strategy_picks is left
    /// empty — the engine owns the strategy-decision audit ring and
    /// fills it in. Takes the tree lock.
    obs::FrontierSnapshot SnapshotFrontier() const;

    /// Observer invoked whenever a pending state disappears from the pool
    /// (selected by the strategy, overtaken by natural exploration, or
    /// proven infeasible). Used by search strategies for bookkeeping.
    /// Invoked under the tree lock.
    void set_on_pending_removed(std::function<void(StateId)> hook)
    {
        on_pending_removed_ = std::move(hook);
    }

    /// Observer invoked when a state enters (or re-enters, after
    /// ReleaseClaim) the pending pool, fully constructed. Invoked under the
    /// tree lock.
    void set_on_state_added(
        std::function<void(const AlternateState&)> hook)
    {
        on_state_added_ = std::move(hook);
    }

  private:
    struct Node {
        uint64_t llpc = 0;
        int32_t child[2] = {-1, -1};
        EdgeStatus status[2] = {EdgeStatus::kUnknown, EdgeStatus::kUnknown};
        StateId pending_id[2] = {0, 0};
    };

    // Recursive because strategy callbacks run under the tree lock and may
    // legitimately re-enter read accessors (CupaStrategy reads pending
    // fork weights through FindPending while selecting).
    mutable std::recursive_mutex mutex_;

    std::vector<Node> nodes_;
    std::unordered_map<StateId, AlternateState> pending_;
    /// Leased states with their claim times (frontier lease ages).
    std::unordered_map<StateId, std::chrono::steady_clock::time_point>
        in_flight_;
    StateId next_state_id_ = 1;
    std::atomic<uint64_t> claim_contention_{0};
    std::atomic<uint64_t> states_overtaken_{0};
    std::function<void(StateId)> on_pending_removed_;
    std::function<void(const AlternateState&)> on_state_added_;

    Cursor default_cursor_;
};

}  // namespace chef::lowlevel

#endif  // CHEF_LOWLEVEL_EXEC_TREE_H_
