#ifndef CHEF_LOWLEVEL_EXEC_TREE_H_
#define CHEF_LOWLEVEL_EXEC_TREE_H_

/// \file
/// The low-level symbolic execution tree.
///
/// Nodes are symbolic branch points encountered during concolic runs, in the
/// order a deterministic execution meets them (Figure 1 of the paper). Each
/// direction of a node is either unexplored, explored by some completed run,
/// pending as a registered alternate state, or proven infeasible. Alternate
/// states carry the bookkeeping CUPA needs: the forking low-level PC, the
/// static and dynamic high-level PC at the fork, and the fork weight.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "solver/expr.h"

namespace chef::lowlevel {

/// Identifier of a pending alternate state.
using StateId = uint64_t;

/// A not-yet-explored branch direction, scheduled for exploration.
/// This is the paper's "symbolic execution state" from the point of view of
/// the search strategy.
struct AlternateState {
    StateId id = 0;
    /// Conjunction describing the alternate path (prefix + negated branch).
    std::vector<solver::ExprRef> path_condition;
    /// Position in the tree: node index and the direction to take there.
    uint32_t node = 0;
    bool direction = false;
    /// Low-level program counter of the forking branch site.
    uint64_t llpc = 0;
    /// Static high-level PC (value of the last log_pc) at fork time.
    uint64_t static_hlpc = 0;
    /// Dynamic high-level PC: the occurrence of static_hlpc in the unfolded
    /// high-level execution tree (node id assigned by the HL tracker).
    uint64_t dynamic_hlpc = 0;
    /// Opcode reported by the last log_pc before the fork.
    uint32_t hl_opcode = 0;
    /// Paper §3.4: states forked consecutively at the same low-level PC get
    /// geometrically decaying weights; the most recent fork has weight 1.
    double fork_weight = 1.0;
    /// Depth in the low-level tree (number of symbolic branches en route).
    uint32_t depth = 0;
};

/// Exploration status of one direction of a branch node.
enum class EdgeStatus : uint8_t {
    kUnknown,     ///< Never taken, no alternate registered.
    kExplored,    ///< Some completed run went this way.
    kRegistered,  ///< Alternate state pending in the strategy queue.
    kInfeasible,  ///< Solver proved the direction's path condition UNSAT.
};

/// The concolic execution tree plus the pool of pending alternate states.
class ExecutionTree
{
  public:
    ExecutionTree();

    /// Drops all nodes and pending states.
    void Reset();

    /// Starts a new run from the root. Returns a cursor used by Advance.
    void BeginRun();

    /// Result of advancing the run cursor through a symbolic branch.
    struct AdvanceResult {
        /// Non-null when a new alternate state was registered for the
        /// not-taken direction; the caller fills in the HL bookkeeping.
        AlternateState* registered = nullptr;
    };

    /// Records that the current run took direction \p taken at a symbolic
    /// branch with the given site \p llpc and branch condition (already in
    /// taken-form, i.e. the constraint that holds on this run). The
    /// alternate's path condition is the current prefix plus the negated
    /// constraint.
    AdvanceResult Advance(uint64_t llpc, bool taken,
                          const solver::ExprRef& taken_constraint,
                          const solver::ExprRef& negated_constraint);

    /// The path condition of the current run so far.
    const std::vector<solver::ExprRef>& current_path_condition() const
    {
        return current_pc_;
    }

    /// Adds an assumption to the current run's path condition (not a
    /// branch; no forking).
    void AddConstraint(const solver::ExprRef& constraint);

    /// Number of symbolic branches the current run has passed.
    uint32_t current_depth() const { return current_depth_; }

    /// Removes and returns a pending state (strategy selected it).
    /// The state stays recorded as kRegistered in the tree until the caller
    /// reports the outcome via MarkInfeasible or a subsequent run exploring
    /// it.
    AlternateState TakePending(StateId id);

    /// Marks a previously taken state's direction as infeasible.
    void MarkInfeasible(const AlternateState& state);

    /// Looks up a pending state (for strategies). Null if absent.
    const AlternateState* FindPending(StateId id) const;

    /// All pending states (insertion order not guaranteed).
    const std::unordered_map<StateId, AlternateState>& pending() const
    {
        return pending_;
    }

    /// Multiplies the fork weight of a pending state (fork streak decay).
    void ScaleForkWeight(StateId id, double factor);

    size_t num_nodes() const { return nodes_.size(); }
    uint64_t total_registered() const { return next_state_id_ - 1; }

    /// Observer invoked whenever a pending state disappears from the pool
    /// (selected by the strategy, overtaken by natural exploration, or
    /// proven infeasible). Used by search strategies for bookkeeping.
    void set_on_pending_removed(std::function<void(StateId)> hook)
    {
        on_pending_removed_ = std::move(hook);
    }

  private:
    struct Node {
        uint64_t llpc = 0;
        int32_t child[2] = {-1, -1};
        EdgeStatus status[2] = {EdgeStatus::kUnknown, EdgeStatus::kUnknown};
        StateId pending_id[2] = {0, 0};
    };

    std::vector<Node> nodes_;
    std::unordered_map<StateId, AlternateState> pending_;
    StateId next_state_id_ = 1;
    std::function<void(StateId)> on_pending_removed_;

    // Run cursor state.
    int32_t cursor_ = 0;
    bool at_root_ = true;
    bool last_direction_ = false;
    std::vector<solver::ExprRef> current_pc_;
    uint32_t current_depth_ = 0;
};

}  // namespace chef::lowlevel

#endif  // CHEF_LOWLEVEL_EXEC_TREE_H_
