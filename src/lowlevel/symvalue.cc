#include "lowlevel/symvalue.h"

#include "support/diagnostics.h"

namespace chef::lowlevel {

using solver::ExprRef;
using solver::SignExtend;
using solver::WidthMask;

SymValue
MakeSymBool(bool concrete, ExprRef expr)
{
    return SymValue(concrete ? 1 : 0, 1, std::move(expr));
}

namespace {

/// Implements a binary concolic operator given the concrete function and
/// the expression factory.
template <typename ConcreteFn, typename ExprFn>
SymValue
BinOp(const SymValue& a, const SymValue& b, int result_width,
      ConcreteFn&& concrete_fn, ExprFn&& expr_fn)
{
    CHEF_CHECK(a.width() == b.width());
    const uint64_t concrete =
        concrete_fn(a.concrete(), b.concrete()) & WidthMask(result_width);
    if (!a.IsSymbolic() && !b.IsSymbolic()) {
        return SymValue(concrete, result_width);
    }
    return SymValue(concrete, result_width,
                    expr_fn(a.ToExpr(), b.ToExpr()));
}

}  // namespace

SymValue
SvAdd(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, a.width(),
                 [](uint64_t x, uint64_t y) { return x + y; },
                 solver::MakeAdd);
}

SymValue
SvSub(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, a.width(),
                 [](uint64_t x, uint64_t y) { return x - y; },
                 solver::MakeSub);
}

SymValue
SvMul(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, a.width(),
                 [](uint64_t x, uint64_t y) { return x * y; },
                 solver::MakeMul);
}

SymValue
SvUDiv(const SymValue& a, const SymValue& b)
{
    const int w = a.width();
    return BinOp(a, b, w,
                 [w](uint64_t x, uint64_t y) {
                     return y == 0 ? WidthMask(w) : x / y;
                 },
                 solver::MakeUDiv);
}

SymValue
SvSDiv(const SymValue& a, const SymValue& b)
{
    const int w = a.width();
    return BinOp(a, b, w,
                 [w](uint64_t x, uint64_t y) -> uint64_t {
                     const int64_t sx = SignExtend(x, w);
                     const int64_t sy = SignExtend(y, w);
                     if (sy == 0) {
                         return sx < 0 ? 1 : WidthMask(w);
                     }
                     if (sx == INT64_MIN && sy == -1) {
                         return x;
                     }
                     return static_cast<uint64_t>(sx / sy);
                 },
                 solver::MakeSDiv);
}

SymValue
SvURem(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, a.width(),
                 [](uint64_t x, uint64_t y) { return y == 0 ? x : x % y; },
                 solver::MakeURem);
}

SymValue
SvSRem(const SymValue& a, const SymValue& b)
{
    const int w = a.width();
    return BinOp(a, b, w,
                 [w](uint64_t x, uint64_t y) -> uint64_t {
                     const int64_t sx = SignExtend(x, w);
                     const int64_t sy = SignExtend(y, w);
                     if (sy == 0) {
                         return x;
                     }
                     if (sx == INT64_MIN && sy == -1) {
                         return 0;
                     }
                     return static_cast<uint64_t>(sx % sy);
                 },
                 solver::MakeSRem);
}

SymValue
SvAnd(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, a.width(),
                 [](uint64_t x, uint64_t y) { return x & y; },
                 solver::MakeAnd);
}

SymValue
SvOr(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, a.width(),
                 [](uint64_t x, uint64_t y) { return x | y; },
                 solver::MakeOr);
}

SymValue
SvXor(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, a.width(),
                 [](uint64_t x, uint64_t y) { return x ^ y; },
                 solver::MakeXor);
}

SymValue
SvShl(const SymValue& a, const SymValue& b)
{
    const int w = a.width();
    return BinOp(a, b, w,
                 [w](uint64_t x, uint64_t y) -> uint64_t {
                     return y >= static_cast<uint64_t>(w) ? 0 : x << y;
                 },
                 solver::MakeShl);
}

SymValue
SvLShr(const SymValue& a, const SymValue& b)
{
    const int w = a.width();
    return BinOp(a, b, w,
                 [w](uint64_t x, uint64_t y) -> uint64_t {
                     return y >= static_cast<uint64_t>(w)
                                ? 0
                                : (x & WidthMask(w)) >> y;
                 },
                 solver::MakeLShr);
}

SymValue
SvAShr(const SymValue& a, const SymValue& b)
{
    const int w = a.width();
    return BinOp(a, b, w,
                 [w](uint64_t x, uint64_t y) -> uint64_t {
                     const int64_t sx = SignExtend(x, w);
                     if (y >= static_cast<uint64_t>(w)) {
                         return sx < 0 ? WidthMask(w) : 0;
                     }
                     return static_cast<uint64_t>(sx >> y);
                 },
                 solver::MakeAShr);
}

SymValue
SvNot(const SymValue& a)
{
    if (!a.IsSymbolic()) {
        return SymValue(~a.concrete(), a.width());
    }
    return SymValue(~a.concrete() & WidthMask(a.width()), a.width(),
                    solver::MakeNot(a.ToExpr()));
}

SymValue
SvNeg(const SymValue& a)
{
    if (!a.IsSymbolic()) {
        return SymValue(-a.concrete(), a.width());
    }
    return SymValue(-a.concrete() & WidthMask(a.width()), a.width(),
                    solver::MakeNeg(a.ToExpr()));
}

SymValue
SvEq(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, 1,
                 [](uint64_t x, uint64_t y) -> uint64_t { return x == y; },
                 solver::MakeEq);
}

SymValue
SvNe(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, 1,
                 [](uint64_t x, uint64_t y) -> uint64_t { return x != y; },
                 solver::MakeNe);
}

SymValue
SvUlt(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, 1,
                 [](uint64_t x, uint64_t y) -> uint64_t { return x < y; },
                 solver::MakeUlt);
}

SymValue
SvUle(const SymValue& a, const SymValue& b)
{
    return BinOp(a, b, 1,
                 [](uint64_t x, uint64_t y) -> uint64_t { return x <= y; },
                 solver::MakeUle);
}

SymValue
SvUgt(const SymValue& a, const SymValue& b)
{
    return SvUlt(b, a);
}

SymValue
SvUge(const SymValue& a, const SymValue& b)
{
    return SvUle(b, a);
}

SymValue
SvSlt(const SymValue& a, const SymValue& b)
{
    const int w = a.width();
    return BinOp(a, b, 1,
                 [w](uint64_t x, uint64_t y) -> uint64_t {
                     return SignExtend(x, w) < SignExtend(y, w);
                 },
                 solver::MakeSlt);
}

SymValue
SvSle(const SymValue& a, const SymValue& b)
{
    const int w = a.width();
    return BinOp(a, b, 1,
                 [w](uint64_t x, uint64_t y) -> uint64_t {
                     return SignExtend(x, w) <= SignExtend(y, w);
                 },
                 solver::MakeSle);
}

SymValue
SvSgt(const SymValue& a, const SymValue& b)
{
    return SvSlt(b, a);
}

SymValue
SvSge(const SymValue& a, const SymValue& b)
{
    return SvSle(b, a);
}

SymValue
SvBoolAnd(const SymValue& a, const SymValue& b)
{
    CHEF_CHECK(a.width() == 1 && b.width() == 1);
    return BinOp(a, b, 1,
                 [](uint64_t x, uint64_t y) { return x & y; },
                 solver::MakeBoolAnd);
}

SymValue
SvBoolOr(const SymValue& a, const SymValue& b)
{
    CHEF_CHECK(a.width() == 1 && b.width() == 1);
    return BinOp(a, b, 1,
                 [](uint64_t x, uint64_t y) { return x | y; },
                 solver::MakeBoolOr);
}

SymValue
SvBoolNot(const SymValue& a)
{
    CHEF_CHECK(a.width() == 1);
    if (!a.IsSymbolic()) {
        return SymValue(a.concrete() ? 0 : 1, 1);
    }
    return SymValue(a.concrete() ? 0 : 1, 1,
                    solver::MakeBoolNot(a.ToExpr()));
}

SymValue
SvZExt(const SymValue& a, int width)
{
    if (width == a.width()) {
        return a;
    }
    if (!a.IsSymbolic()) {
        return SymValue(a.concrete(), width);
    }
    return SymValue(a.concrete(), width,
                    solver::MakeZExt(a.ToExpr(), width));
}

SymValue
SvSExt(const SymValue& a, int width)
{
    if (width == a.width()) {
        return a;
    }
    if (!a.IsSymbolic()) {
        return SymValue(static_cast<uint64_t>(a.concrete_signed()), width);
    }
    return SymValue(static_cast<uint64_t>(a.concrete_signed()), width,
                    solver::MakeSExt(a.ToExpr(), width));
}

SymValue
SvTrunc(const SymValue& a, int width)
{
    CHEF_CHECK(width <= a.width());
    if (width == a.width()) {
        return a;
    }
    if (!a.IsSymbolic()) {
        return SymValue(a.concrete(), width);
    }
    return SymValue(a.concrete(), width,
                    solver::MakeExtract(a.ToExpr(), 0, width));
}

SymValue
SvIte(const SymValue& cond, const SymValue& then_value,
      const SymValue& else_value)
{
    CHEF_CHECK(cond.width() == 1);
    CHEF_CHECK(then_value.width() == else_value.width());
    const uint64_t concrete = cond.ConcreteTruth() ? then_value.concrete()
                                                   : else_value.concrete();
    if (!cond.IsSymbolic() && !then_value.IsSymbolic() &&
        !else_value.IsSymbolic()) {
        return SymValue(concrete, then_value.width());
    }
    return SymValue(concrete, then_value.width(),
                    solver::MakeIte(cond.ToExpr(), then_value.ToExpr(),
                                    else_value.ToExpr()));
}

}  // namespace chef::lowlevel
