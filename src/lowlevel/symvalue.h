#ifndef CHEF_LOWLEVEL_SYMVALUE_H_
#define CHEF_LOWLEVEL_SYMVALUE_H_

/// \file
/// Concolic values: a concrete value paired with an optional symbolic
/// expression.
///
/// Interpreter code computes on SymValues exactly as S2E guest code computes
/// on machine words: fully concrete values carry no expression and cost
/// nothing symbolically; values derived from symbolic inputs carry both the
/// concrete value (under the current input assignment) and the expression
/// over input variables.

#include <cstdint>
#include <string>

#include "solver/expr.h"

namespace chef::lowlevel {

/// A machine word under concolic execution.
class SymValue
{
  public:
    SymValue() : concrete_(0), width_(32) {}

    /// Concrete-only value.
    SymValue(uint64_t concrete, int width)
        : concrete_(concrete & solver::WidthMask(width)), width_(width)
    {
    }

    /// Concolic value; \p expr may be null for concrete values.
    SymValue(uint64_t concrete, int width, solver::ExprRef expr)
        : concrete_(concrete & solver::WidthMask(width)),
          width_(width),
          expr_(std::move(expr))
    {
        // Constant expressions are dropped: they carry no information
        // beyond the concrete value and would bloat path conditions.
        if (expr_ && expr_->IsConstant()) {
            expr_ = nullptr;
        }
    }

    uint64_t concrete() const { return concrete_; }
    int width() const { return width_; }
    bool IsSymbolic() const { return expr_ != nullptr; }

    /// Signed view of the concrete value.
    int64_t concrete_signed() const
    {
        return solver::SignExtend(concrete_, width_);
    }

    /// The symbolic expression, materializing a constant if concrete.
    solver::ExprRef ToExpr() const
    {
        return expr_ ? expr_ : solver::MakeConst(concrete_, width_);
    }

    /// The raw expression pointer (null if concrete).
    const solver::ExprRef& expr() const { return expr_; }

    /// True if width-1 value is concretely true.
    bool ConcreteTruth() const { return concrete_ != 0; }

  private:
    uint64_t concrete_;
    int width_;
    solver::ExprRef expr_;
};

/// Builds a boolean (width-1) SymValue from parts.
SymValue MakeSymBool(bool concrete, solver::ExprRef expr);

// ---------------------------------------------------------------------------
// Concolic operator helpers. Each computes the concrete result directly and
// builds the expression only when at least one operand is symbolic.
// ---------------------------------------------------------------------------

SymValue SvAdd(const SymValue& a, const SymValue& b);
SymValue SvSub(const SymValue& a, const SymValue& b);
SymValue SvMul(const SymValue& a, const SymValue& b);
SymValue SvUDiv(const SymValue& a, const SymValue& b);
SymValue SvSDiv(const SymValue& a, const SymValue& b);
SymValue SvURem(const SymValue& a, const SymValue& b);
SymValue SvSRem(const SymValue& a, const SymValue& b);
SymValue SvAnd(const SymValue& a, const SymValue& b);
SymValue SvOr(const SymValue& a, const SymValue& b);
SymValue SvXor(const SymValue& a, const SymValue& b);
SymValue SvShl(const SymValue& a, const SymValue& b);
SymValue SvLShr(const SymValue& a, const SymValue& b);
SymValue SvAShr(const SymValue& a, const SymValue& b);
SymValue SvNot(const SymValue& a);
SymValue SvNeg(const SymValue& a);

// Comparisons produce width-1 values.
SymValue SvEq(const SymValue& a, const SymValue& b);
SymValue SvNe(const SymValue& a, const SymValue& b);
SymValue SvUlt(const SymValue& a, const SymValue& b);
SymValue SvUle(const SymValue& a, const SymValue& b);
SymValue SvUgt(const SymValue& a, const SymValue& b);
SymValue SvUge(const SymValue& a, const SymValue& b);
SymValue SvSlt(const SymValue& a, const SymValue& b);
SymValue SvSle(const SymValue& a, const SymValue& b);
SymValue SvSgt(const SymValue& a, const SymValue& b);
SymValue SvSge(const SymValue& a, const SymValue& b);

// Boolean connectives on width-1 values.
SymValue SvBoolAnd(const SymValue& a, const SymValue& b);
SymValue SvBoolOr(const SymValue& a, const SymValue& b);
SymValue SvBoolNot(const SymValue& a);

// Width adjustment.
SymValue SvZExt(const SymValue& a, int width);
SymValue SvSExt(const SymValue& a, int width);
SymValue SvTrunc(const SymValue& a, int width);

/// Select between two values: cond must have width 1.
SymValue SvIte(const SymValue& cond, const SymValue& then_value,
               const SymValue& else_value);

}  // namespace chef::lowlevel

#endif  // CHEF_LOWLEVEL_SYMVALUE_H_
