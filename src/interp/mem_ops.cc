#include "interp/mem_ops.h"

namespace chef::interp {

using namespace chef::lowlevel;  // NOLINT

uint64_t
ResolveAllocationSize(LowLevelRuntime* rt, const SymValue& size,
                      const InterpBuildOptions& options, uint64_t cap)
{
    if (!size.IsSymbolic()) {
        return size.concrete();
    }
    if (options.avoid_symbolic_pointers) {
        // Figure 6: reserve the maximum feasible size; the size variable
        // itself stays symbolic so no completeness is lost.
        return rt->UpperBound(size);
    }
    // Vanilla: the allocator computes the block address from the size, so
    // the symbolic size becomes a symbolic pointer; the low-level engine
    // enumerates candidates.
    for (uint64_t candidate = 0; candidate < cap; ++candidate) {
        if (rt->Branch(SvEq(size, SymValue(candidate, size.width())),
                       CHEF_LLPC)) {
            return candidate;
        }
        if (!rt->running()) {
            break;
        }
    }
    return size.concrete();
}

uint64_t
ResolveBucket(LowLevelRuntime* rt, const SymValue& hash,
              uint64_t num_buckets)
{
    const SymValue index =
        SvURem(hash, SymValue(num_buckets, hash.width()));
    if (!index.IsSymbolic()) {
        return index.concrete();
    }
    for (uint64_t bucket = 0; bucket + 1 < num_buckets; ++bucket) {
        if (rt->Branch(SvEq(index, SymValue(bucket, index.width())),
                       CHEF_LLPC)) {
            return bucket;
        }
        if (!rt->running()) {
            break;
        }
    }
    return num_buckets - 1;
}

uint64_t
ResolveIndex(LowLevelRuntime* rt, const SymValue& index, uint64_t len)
{
    if (!index.IsSymbolic() || len == 0) {
        return index.concrete();
    }
    for (uint64_t candidate = 0; candidate + 1 < len; ++candidate) {
        if (rt->Branch(SvEq(index, SymValue(candidate, index.width())),
                       CHEF_LLPC)) {
            return candidate;
        }
        if (!rt->running()) {
            break;
        }
    }
    return len - 1;
}

void
InternTable::Intern(const SymStr& s)
{
    LowLevelRuntime* rt = ops_->runtime();
    const SymValue hash = ops_->Hash(s);
    const uint64_t bucket = ResolveBucket(rt, hash, kBuckets);
    for (const SymStr& existing : buckets_[bucket]) {
        if (existing.size() != s.size()) {
            continue;
        }
        if (rt->Branch(ops_->Eq(existing, s), CHEF_LLPC)) {
            return;  // Already interned (on this path).
        }
        if (!rt->running()) {
            return;
        }
    }
    buckets_[bucket].push_back(s);
    ++count_;
}

}  // namespace chef::interp
