#ifndef CHEF_INTERP_BUILD_OPTIONS_H_
#define CHEF_INTERP_BUILD_OPTIONS_H_

/// \file
/// Interpreter build configurations (§4.2 of the paper).
///
/// The paper prepares several builds of each interpreter, adding the
/// symbolic-execution optimizations one by one (Figure 11 / Figure 12):
///   1. vanilla (no optimizations),
///   2. + symbolic pointer avoidance (allocation-size concretization via
///      upper_bound, interning and caching eliminated),
///   3. + hash neutralization,
///   4. + fast-path elimination (no short-circuits in string comparison
///      and similar input-dependent early exits).
/// In our reproduction these are runtime flags rather than compile-time
/// `./configure --with-symbex` builds, which lets one binary sweep all
/// configurations.

namespace chef::interp {

/// One interpreter build configuration.
struct InterpBuildOptions {
    /// Concretize symbolic allocation sizes using upper_bound and disable
    /// value interning / small-value caches (§4.2 "Avoiding Symbolic
    /// Pointers").
    bool avoid_symbolic_pointers = true;

    /// Replace hash functions with a degenerate constant function (§4.2
    /// "Neutralizing Hash Functions").
    bool neutralize_hashes = true;

    /// Remove input-dependent short-circuit returns (§4.2 "Avoiding Fast
    /// Paths").
    bool eliminate_fast_paths = true;

    /// The unmodified interpreter.
    static InterpBuildOptions Vanilla()
    {
        return {false, false, false};
    }

    /// All optimizations on (the paper's -with-symbex build).
    static InterpBuildOptions FullyOptimized()
    {
        return {true, true, true};
    }

    /// The Figure-11 incremental builds, level 0..3.
    static InterpBuildOptions Level(int level)
    {
        InterpBuildOptions options = Vanilla();
        if (level >= 1) {
            options.avoid_symbolic_pointers = true;
        }
        if (level >= 2) {
            options.neutralize_hashes = true;
        }
        if (level >= 3) {
            options.eliminate_fast_paths = true;
        }
        return options;
    }

    const char* Name() const
    {
        if (!avoid_symbolic_pointers && !neutralize_hashes &&
            !eliminate_fast_paths) {
            return "vanilla";
        }
        if (avoid_symbolic_pointers && !neutralize_hashes &&
            !eliminate_fast_paths) {
            return "+sym-ptr-avoidance";
        }
        if (avoid_symbolic_pointers && neutralize_hashes &&
            !eliminate_fast_paths) {
            return "+hash-neutralization";
        }
        if (avoid_symbolic_pointers && neutralize_hashes &&
            eliminate_fast_paths) {
            return "+fast-path-elimination";
        }
        return "custom";
    }
};

}  // namespace chef::interp

#endif  // CHEF_INTERP_BUILD_OPTIONS_H_
