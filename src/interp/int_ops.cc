#include "interp/int_ops.h"

namespace chef::interp {

using namespace chef::lowlevel;  // NOLINT

int
NormalizeBignum(LowLevelRuntime* rt, const SymValue& value)
{
    if (!value.IsSymbolic()) {
        return 1;
    }
    // Magnitude of the two's complement value.
    const SymValue negative =
        SvSlt(value, SymValue(0, value.width()));
    const SymValue magnitude = SvIte(negative, SvNeg(value), value);
    // ob_size |digits| loop: strip leading zero digits.
    int digits = 1;
    const int max_digits =
        (value.width() + kBignumDigitBits - 1) / kBignumDigitBits;
    while (digits < max_digits) {
        const SymValue threshold(
            1ull << (static_cast<unsigned>(kBignumDigitBits) * digits),
            value.width());
        if (!rt->Branch(SvUge(magnitude, threshold), CHEF_LLPC)) {
            break;
        }
        ++digits;
    }
    return digits;
}

void
SmallIntCacheLookup(LowLevelRuntime* rt, const SymValue& value,
                    const InterpBuildOptions& options)
{
    if (options.avoid_symbolic_pointers || !value.IsSymbolic()) {
        return;
    }
    // CHECK_SMALL_INT: if -5 <= v <= 256, return the cached singleton. The
    // branch itself forks; the singleton's address then encodes the value
    // (a symbolic pointer), which subsequent identity checks would fork on
    // again -- the branch here is the dominant cost and what we model.
    const SymValue in_cache =
        SvBoolAnd(SvSge(value, SymValue(static_cast<uint64_t>(-5),
                                        value.width())),
                  SvSle(value, SymValue(256, value.width())));
    rt->Branch(in_cache, CHEF_LLPC);
}

bool
ParseInt(StrOps& ops, const SymStr& s, int start, int end, SymValue* out)
{
    LowLevelRuntime* rt = ops.runtime();
    int i = start;
    bool negative = false;
    if (i < end) {
        if (rt->Branch(SvEq(s[i], SymValue('-', 8)), CHEF_LLPC)) {
            negative = true;
            ++i;
        } else if (rt->Branch(SvEq(s[i], SymValue('+', 8)), CHEF_LLPC)) {
            ++i;
        }
    }
    if (i >= end) {
        return false;
    }
    SymValue value(0, 64);
    for (; i < end; ++i) {
        if (!rt->Branch(ops.IsDigit(s[i]), CHEF_LLPC)) {
            return false;
        }
        const SymValue digit =
            SvZExt(SvSub(s[i], SymValue('0', 8)), 64);
        value = SvAdd(SvMul(value, SymValue(10, 64)), digit);
        if (!rt->running()) {
            return false;
        }
    }
    *out = negative ? SvNeg(value) : value;
    return true;
}

SymStr
FormatInt(LowLevelRuntime* rt, const SymValue& value)
{
    SymStr digits;
    SymValue v = value;
    const bool negative =
        rt->Branch(SvSlt(v, SymValue(0, v.width())), CHEF_LLPC);
    if (negative) {
        v = SvNeg(v);
    }
    // Emit digits least-significant first; the loop's trip count (the
    // string length) is decided by forking on v != 0.
    do {
        const SymValue digit = SvURem(v, SymValue(10, v.width()));
        digits.push_back(
            SvAdd(SvTrunc(digit, 8), SymValue('0', 8)));
        v = SvUDiv(v, SymValue(10, v.width()));
        if (!rt->running()) {
            break;
        }
    } while (rt->Branch(SvNe(v, SymValue(0, v.width())), CHEF_LLPC));
    SymStr out;
    if (negative) {
        out.emplace_back('-', 8);
    }
    for (size_t i = digits.size(); i > 0; --i) {
        out.push_back(digits[i - 1]);
    }
    return out;
}

}  // namespace chef::interp
