#ifndef CHEF_INTERP_INT_OPS_H_
#define CHEF_INTERP_INT_OPS_H_

/// \file
/// Instrumented integer primitives: bignum digit normalization, the small-
/// integer cache, and number/string conversions.
///
/// MiniPy models CPython's arbitrary-precision integers: after every
/// arithmetic operation the interpreter normalizes the digit vector, a loop
/// over 15-bit digits whose trip count depends on the value — the paper's
/// `average` example, where a single high-level path spawns many low-level
/// paths. CPython additionally caches small integers (-5..256), which makes
/// the result's identity depend on its value; the optimized build removes
/// the cache (§4.2 "caching and interning can be eliminated").

#include "interp/build_options.h"
#include "interp/str_ops.h"
#include "lowlevel/runtime.h"
#include "lowlevel/symvalue.h"

namespace chef::interp {

/// CPython digit width (30 bits on 64-bit builds; 15 historically — we use
/// 15 so 64-bit values span up to 5 digits and the loop is observable).
inline constexpr int kBignumDigitBits = 15;

/// Runs the bignum digit-count normalization loop on an arithmetic result.
/// Concrete values cost nothing; symbolic values fork at each digit
/// boundary. Returns the digit count on the current path.
int NormalizeBignum(lowlevel::LowLevelRuntime* rt,
                    const lowlevel::SymValue& value);

/// Models CPython's small-int cache lookup on integer creation: a branch
/// deciding whether the value lands in the cache (identity then depends on
/// the value). Disabled by the optimized build.
void SmallIntCacheLookup(lowlevel::LowLevelRuntime* rt,
                         const lowlevel::SymValue& value,
                         const InterpBuildOptions& options);

/// Parses a decimal integer from s[start, end). Forks on sign/digit
/// checks. Returns false (and leaves *out untouched) if the text is not a
/// valid integer on the current path.
bool ParseInt(StrOps& ops, const SymStr& s, int start, int end,
              lowlevel::SymValue* out);

/// Formats a 64-bit integer as its decimal string. The digits of a
/// symbolic value are symbolic bytes; the length is concrete per path
/// (digit-count loop forks).
SymStr FormatInt(lowlevel::LowLevelRuntime* rt,
                 const lowlevel::SymValue& value);

}  // namespace chef::interp

#endif  // CHEF_INTERP_INT_OPS_H_
