#include "interp/str_ops.h"

#include "support/diagnostics.h"

namespace chef::interp {

using namespace chef::lowlevel;  // NOLINT: Sv* helpers used pervasively.

SymStr
ConcreteStr(const std::string& text)
{
    SymStr s;
    s.reserve(text.size());
    for (char c : text) {
        s.emplace_back(static_cast<uint8_t>(c), 8);
    }
    return s;
}

std::string
ConcreteView(const SymStr& s)
{
    std::string out;
    out.reserve(s.size());
    for (const SymValue& byte : s) {
        out.push_back(static_cast<char>(byte.concrete()));
    }
    return out;
}

bool
AnySymbolic(const SymStr& s)
{
    for (const SymValue& byte : s) {
        if (byte.IsSymbolic()) {
            return true;
        }
    }
    return false;
}

SymValue
StrOps::Eq(const SymStr& a, const SymStr& b)
{
    // Length check is concrete: lengths are always concrete in our string
    // representation, so this never forks (it is nonetheless the "fast
    // path" CPython has; with unequal lengths both builds exit early).
    if (a.size() != b.size()) {
        return SymValue(0, 1);
    }
    if (options_.eliminate_fast_paths) {
        // Optimized build: single pass, accumulate a symbolic mismatch
        // flag, no data-dependent control flow.
        SymValue mismatch(0, 1);
        for (size_t i = 0; i < a.size(); ++i) {
            rt_->CountStep();
            mismatch = SvBoolOr(mismatch, SvNe(a[i], b[i]));
        }
        return SvBoolNot(mismatch);
    }
    // Vanilla build: short-circuit on the first mismatching byte; each
    // comparison of a symbolic byte forks.
    for (size_t i = 0; i < a.size(); ++i) {
        if (rt_->Branch(SvNe(a[i], b[i]), CHEF_LLPC)) {
            return SymValue(0, 1);
        }
    }
    return SymValue(1, 1);
}

int
StrOps::Compare(const SymStr& a, const SymStr& b)
{
    const size_t common = std::min(a.size(), b.size());
    for (size_t i = 0; i < common; ++i) {
        if (rt_->Branch(SvUlt(a[i], b[i]), CHEF_LLPC)) {
            return -1;
        }
        if (rt_->Branch(SvUgt(a[i], b[i]), CHEF_LLPC)) {
            return 1;
        }
    }
    if (a.size() < b.size()) {
        return -1;
    }
    return a.size() > b.size() ? 1 : 0;
}

int
StrOps::FindChar(const SymStr& s, const SymValue& ch, int start)
{
    for (size_t i = static_cast<size_t>(start); i < s.size(); ++i) {
        if (rt_->Branch(SvEq(s[i], ch), CHEF_LLPC)) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

int
StrOps::Find(const SymStr& s, const SymStr& needle, int start)
{
    if (needle.empty()) {
        return start <= static_cast<int>(s.size()) ? start : -1;
    }
    for (size_t i = static_cast<size_t>(start);
         i + needle.size() <= s.size(); ++i) {
        const SymValue matched = StartsWith(s, needle, static_cast<int>(i));
        if (rt_->Branch(matched, CHEF_LLPC)) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

SymValue
StrOps::StartsWith(const SymStr& s, const SymStr& prefix, int offset)
{
    if (offset + prefix.size() > s.size()) {
        return SymValue(0, 1);
    }
    if (options_.eliminate_fast_paths) {
        SymValue mismatch(0, 1);
        for (size_t i = 0; i < prefix.size(); ++i) {
            rt_->CountStep();
            mismatch = SvBoolOr(mismatch, SvNe(s[offset + i], prefix[i]));
        }
        return SvBoolNot(mismatch);
    }
    for (size_t i = 0; i < prefix.size(); ++i) {
        if (rt_->Branch(SvNe(s[offset + i], prefix[i]), CHEF_LLPC)) {
            return SymValue(0, 1);
        }
    }
    return SymValue(1, 1);
}

SymValue
StrOps::Hash(const SymStr& s)
{
    if (options_.neutralize_hashes) {
        // Degenerate hash: constant for all values. Honors the hash
        // contract (equal strings hash equal) and turns hash-table lookups
        // into list traversals.
        return SymValue(0, 64);
    }
    // FNV-1a over the bytes; on symbolic strings this builds the nested
    // multiply-xor expression the constraint solver then has to reverse.
    SymValue h(1469598103934665603ull, 64);
    for (const SymValue& byte : s) {
        rt_->CountStep();
        h = SvMul(SvXor(h, SvZExt(byte, 64)),
                  SymValue(1099511628211ull, 64));
    }
    return h;
}

SymValue
StrOps::IsDigit(const SymValue& ch)
{
    return SvBoolAnd(SvUge(ch, SymValue('0', 8)),
                     SvUle(ch, SymValue('9', 8)));
}

SymValue
StrOps::IsAlpha(const SymValue& ch)
{
    const SymValue lower = SvBoolAnd(SvUge(ch, SymValue('a', 8)),
                                     SvUle(ch, SymValue('z', 8)));
    const SymValue upper = SvBoolAnd(SvUge(ch, SymValue('A', 8)),
                                     SvUle(ch, SymValue('Z', 8)));
    return SvBoolOr(lower, upper);
}

SymValue
StrOps::IsSpace(const SymValue& ch)
{
    SymValue space = SvEq(ch, SymValue(' ', 8));
    space = SvBoolOr(space, SvEq(ch, SymValue('\t', 8)));
    space = SvBoolOr(space, SvEq(ch, SymValue('\n', 8)));
    space = SvBoolOr(space, SvEq(ch, SymValue('\r', 8)));
    return space;
}

SymValue
StrOps::ToLower(const SymValue& ch)
{
    const SymValue is_upper = SvBoolAnd(SvUge(ch, SymValue('A', 8)),
                                        SvUle(ch, SymValue('Z', 8)));
    return SvIte(is_upper, SvAdd(ch, SymValue(32, 8)), ch);
}

SymValue
StrOps::ToUpper(const SymValue& ch)
{
    const SymValue is_lower = SvBoolAnd(SvUge(ch, SymValue('a', 8)),
                                        SvUle(ch, SymValue('z', 8)));
    return SvIte(is_lower, SvSub(ch, SymValue(32, 8)), ch);
}

}  // namespace chef::interp
