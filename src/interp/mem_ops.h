#ifndef CHEF_INTERP_MEM_OPS_H_
#define CHEF_INTERP_MEM_OPS_H_

/// \file
/// Instrumented memory-shaped operations: symbolic allocation sizes,
/// hash-bucket selection, and symbolic index resolution.
///
/// These model the §4.2 "Avoiding Symbolic Pointers" behaviours: a vanilla
/// interpreter forks per concrete candidate (that is what a low-level
/// engine does with a symbolic pointer), while the optimized build
/// concretizes allocation sizes via upper_bound and sidesteps the forks.

#include <cstdint>

#include "interp/build_options.h"
#include "interp/str_ops.h"
#include "lowlevel/runtime.h"
#include "lowlevel/symvalue.h"

namespace chef::interp {

/// Resolves an allocation size. Optimized build: reserve upper_bound(size)
/// bytes and keep the size symbolic (paper Figure 6). Vanilla build: the
/// allocator's address computation turns the size into a symbolic pointer;
/// the engine forks per candidate size up to \p cap.
uint64_t ResolveAllocationSize(lowlevel::LowLevelRuntime* rt,
                               const lowlevel::SymValue& size,
                               const InterpBuildOptions& options,
                               uint64_t cap = 4096);

/// Resolves a hash-table bucket index for a (possibly symbolic) hash
/// value: forks on each feasible bucket (§4.2: "causes the exploration to
/// fork on each possible hash bucket the value could fall into").
uint64_t ResolveBucket(lowlevel::LowLevelRuntime* rt,
                       const lowlevel::SymValue& hash, uint64_t num_buckets);

/// Resolves a (possibly symbolic) index known to be in [0, len): forks per
/// candidate position, the standard low-level treatment of a symbolic
/// pointer dereference.
uint64_t ResolveIndex(lowlevel::LowLevelRuntime* rt,
                      const lowlevel::SymValue& index, uint64_t len);

/// Interpreter-internal string interning table (Lua interns every string;
/// CPython interns small strings). Interning a symbolic string costs a
/// hash computation plus equality probes; the optimized build removes the
/// mechanism entirely (callers gate on the build options).
class InternTable
{
  public:
    explicit InternTable(StrOps* ops) : ops_(ops) {}

    /// Performs the interning lookup (and insertion on miss) with all its
    /// instrumented side effects.
    void Intern(const SymStr& s);

    size_t size() const { return count_; }

  private:
    static constexpr uint64_t kBuckets = 8;
    StrOps* ops_;
    std::vector<std::vector<SymStr>> buckets_{
        std::vector<std::vector<SymStr>>(kBuckets)};
    size_t count_ = 0;
};

}  // namespace chef::interp

#endif  // CHEF_INTERP_MEM_OPS_H_
