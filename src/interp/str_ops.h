#ifndef CHEF_INTERP_STR_OPS_H_
#define CHEF_INTERP_STR_OPS_H_

/// \file
/// Instrumented byte-wise string primitives shared by the interpreters.
///
/// These are the interpreter-internal routines whose low-level control flow
/// the paper's evaluation revolves around: comparison loops, find loops,
/// and hash functions. Every guest-data-dependent branch goes through the
/// low-level runtime with a stable LLPC, so one high-level string operation
/// can fork many low-level states — unless an interpreter build optimization
/// (fast-path elimination, hash neutralization) changes the circuit.

#include <cstdint>
#include <string>
#include <vector>

#include "interp/build_options.h"
#include "lowlevel/runtime.h"
#include "lowlevel/symvalue.h"

namespace chef::interp {

using lowlevel::LowLevelRuntime;
using lowlevel::SymValue;

/// Guest string payload: a fixed-length vector of 8-bit concolic bytes.
/// Lengths are always concrete (the paper's prototype supports strings of
/// fixed length as symbolic inputs, §6.1).
using SymStr = std::vector<SymValue>;

/// Builds a fully concrete SymStr from a C++ string.
SymStr ConcreteStr(const std::string& text);

/// Extracts the concrete bytes of a SymStr (under the current assignment).
std::string ConcreteView(const SymStr& s);

/// True if any byte of the string carries a symbolic expression.
bool AnySymbolic(const SymStr& s);

/// Instrumented string routines; stateless, parameterized by the
/// interpreter build options.
class StrOps
{
  public:
    StrOps(LowLevelRuntime* rt, const InterpBuildOptions& options)
        : rt_(rt), options_(options)
    {
    }

    /// Equality. Vanilla build: length fast path plus a short-circuiting
    /// byte loop (forks per byte). Fast-path-eliminated build: accumulates
    /// a symbolic mismatch flag over the full buffers and returns one
    /// (possibly symbolic) boolean.
    SymValue Eq(const SymStr& a, const SymStr& b);

    /// Three-way lexicographic comparison; the result is concrete on the
    /// current path (ordering forks through the byte loop).
    int Compare(const SymStr& a, const SymStr& b);

    /// First index of byte \p ch in s at or after \p start; -1 if absent.
    /// Forks once per scanned byte (the paper's validateEmail example).
    int FindChar(const SymStr& s, const SymValue& ch, int start = 0);

    /// First index of \p needle in s at or after \p start; -1 if absent.
    int Find(const SymStr& s, const SymStr& needle, int start = 0);

    /// Whether s starts with \p prefix at offset \p offset (concrete
    /// result via forks, or symbolic under fast-path elimination).
    SymValue StartsWith(const SymStr& s, const SymStr& prefix,
                        int offset = 0);

    /// String hash (FNV-style byte loop). With hash neutralization the
    /// result is the constant 0 and no symbolic expression is built.
    SymValue Hash(const SymStr& s);

    /// Character classification; returns a width-1 concolic value.
    SymValue IsDigit(const SymValue& ch);
    SymValue IsAlpha(const SymValue& ch);
    SymValue IsSpace(const SymValue& ch);

    /// ASCII case conversion of one byte.
    SymValue ToLower(const SymValue& ch);
    SymValue ToUpper(const SymValue& ch);

    /// Decides the truth of a width-1 concolic value by branching on it at
    /// the call site's LLPC. This is the single point where symbolic
    /// booleans produced by the optimized routines become control flow.
    bool Decide(const SymValue& cond, uint64_t llpc)
    {
        return rt_->Branch(cond, llpc);
    }

    LowLevelRuntime* runtime() { return rt_; }
    const InterpBuildOptions& options() const { return options_; }

  private:
    LowLevelRuntime* rt_;
    InterpBuildOptions options_;
};

}  // namespace chef::interp

#endif  // CHEF_INTERP_STR_OPS_H_
