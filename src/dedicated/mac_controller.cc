#include "dedicated/mac_controller.h"

namespace chef::dedicated {

std::string
MacControllerSource(int num_frames)
{
    std::string source = R"PY(table = {}

def learn(src, port):
    table[src] = port

def lookup(dst):
    if dst in table:
        return table[dst]
    return -1

)PY";
    source += "def process(";
    for (int i = 0; i < num_frames; ++i) {
        if (i > 0) {
            source += ", ";
        }
        source += "src" + std::to_string(i) + ", dst" + std::to_string(i);
    }
    source += "):\n    out = 0\n";
    for (int i = 0; i < num_frames; ++i) {
        source += "    learn(src" + std::to_string(i) + ", " +
                  std::to_string(i) + ")\n";
        source += "    out = out + lookup(dst" + std::to_string(i) +
                  ")\n";
    }
    source += "    return out\n";
    return source;
}

std::vector<NiceArg>
MacControllerArgs(int num_frames)
{
    std::vector<NiceArg> args;
    for (int i = 0; i < num_frames; ++i) {
        args.push_back({"src" + std::to_string(i), 10 + i});
        args.push_back({"dst" + std::to_string(i), 20 + i});
    }
    return args;
}

workloads::PySymbolicTest
MacControllerPyTest(int num_frames)
{
    workloads::PySymbolicTest test;
    test.source = MacControllerSource(num_frames);
    test.entry = "process";
    for (int i = 0; i < num_frames; ++i) {
        test.args.push_back(workloads::SymbolicArg::Int(
            "src" + std::to_string(i), 10 + i));
        test.args.push_back(workloads::SymbolicArg::Int(
            "dst" + std::to_string(i), 20 + i));
    }
    return test;
}

}  // namespace chef::dedicated
