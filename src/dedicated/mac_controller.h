#ifndef CHEF_DEDICATED_MAC_CONTROLLER_H_
#define CHEF_DEDICATED_MAC_CONTROLLER_H_

/// \file
/// The Figure-12 workload: an OpenFlow MAC-learning switch controller
/// (NICE's experimental setup, §6.6). The controller receives a sequence
/// of Ethernet frames with symbolic source/destination addresses, learns
/// the source port, and forwards by table lookup (flooding on a miss).
/// One MiniPy source serves both engines: the CHEF-derived engine executes
/// it through the full interpreter, the dedicated engine directly.

#include <string>
#include <vector>

#include "dedicated/nice_engine.h"
#include "workloads/py_harness.h"

namespace chef::dedicated {

/// Guest source processing \p num_frames frames (2 symbolic ints each).
std::string MacControllerSource(int num_frames);

/// Argument declarations for the dedicated engine.
std::vector<NiceArg> MacControllerArgs(int num_frames);

/// Symbolic test specification for the CHEF-derived Python engine.
workloads::PySymbolicTest MacControllerPyTest(int num_frames);

}  // namespace chef::dedicated

#endif  // CHEF_DEDICATED_MAC_CONTROLLER_H_
