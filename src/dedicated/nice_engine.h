#ifndef CHEF_DEDICATED_NICE_ENGINE_H_
#define CHEF_DEDICATED_NICE_ENGINE_H_

/// \file
/// A hand-written ("dedicated") symbolic execution engine for a MiniPy
/// subset, in the mold of NICE-PySE (§6.6, Table 4, Figure 12).
///
/// Unlike the CHEF-derived engine — which symbolically executes the whole
/// MiniPy interpreter, paying for dispatch, bignum normalization, hash
/// circuits and interning — this engine walks the guest AST directly and
/// manipulates symbolic values natively. It is much faster per high-level
/// path, but supports only the language subset its authors bothered to
/// implement: integers and booleans, dicts keyed by integers, basic
/// control flow, and a handful of builtins. Strings, classes, exceptions
/// and native methods are unsupported (Table 4's half/empty bullets).
///
/// The engine can also be built with the *seeded NICE bug* the paper found
/// via cross-checking (§6.6): `if not <expr>` mishandles the branch
/// alternate by recording the constraint of the un-negated expression, so
/// the negated query re-explores an old path and a feasible path is lost.

#include <memory>
#include <string>
#include <vector>

#include "chef/engine.h"
#include "minipy/ast.h"

namespace chef::dedicated {

/// Symbolic input declaration: the dedicated engine supports integer
/// inputs only (NICE's symbolic types wrap ints).
struct NiceArg {
    std::string name;
    int64_t default_value = 0;
};

/// Result of exploration.
struct NiceResult {
    EngineStats stats;
    std::vector<TestCase> tests;
    /// Distinct high-level path signatures (guest branch sequences).
    uint64_t hl_paths = 0;
};

/// Hand-written symbolic executor for the MiniPy subset.
class NicePyEngine
{
  public:
    struct Options {
        uint64_t seed = 1;
        uint64_t max_runs = 2000;
        double max_seconds = 30.0;
        /// Reintroduce the `if not <expr>` branch-selection bug the paper
        /// found in NICE (§6.6).
        bool seeded_not_bug = false;
    };

    /// Parses the guest program; Fatal on parse errors or on constructs
    /// outside the supported subset that appear at module level.
    NicePyEngine(const std::string& source, Options options);

    /// Explores `entry(args...)` symbolically.
    NiceResult Explore(const std::string& entry,
                       const std::vector<NiceArg>& args);

    /// True if the engine supports the given language feature (Table 4
    /// probe; names: "int", "str", "float", "list", "dict", "class",
    /// "exceptions", "native").
    static bool SupportsFeature(const std::string& feature);

  private:
    std::shared_ptr<minipy::Ast> module_;
    Options options_;
    std::string source_;
};

}  // namespace chef::dedicated

#endif  // CHEF_DEDICATED_NICE_ENGINE_H_
