#include "dedicated/nice_engine.h"

#include <unordered_map>

#include "support/diagnostics.h"

namespace chef::dedicated {

using namespace chef::lowlevel;  // NOLINT
using minipy::Ast;
using minipy::AstKind;

namespace {

/// A native symbolic value: integer/bool SymValue, or a dict mapping
/// (symbolically compared) integer keys to values.
struct NiceValue {
    enum class Type : uint8_t { kNone, kInt, kDict };
    Type type = Type::kNone;
    SymValue num{0, 64};
    /// Association list; lookups compare keys symbolically via Branch.
    std::shared_ptr<std::vector<std::pair<SymValue, SymValue>>> dict;

    static NiceValue Int(SymValue v)
    {
        NiceValue value;
        value.type = Type::kInt;
        value.num = v.width() == 64 ? v : SvSExt(v, 64);
        return value;
    }
    static NiceValue Dict()
    {
        NiceValue value;
        value.type = Type::kDict;
        value.dict = std::make_shared<
            std::vector<std::pair<SymValue, SymValue>>>();
        return value;
    }
};

/// Direct AST executor over native symbolic values.
class Executor
{
  public:
    Executor(const Ast& module, LowLevelRuntime* rt, bool seeded_not_bug)
        : module_(module), rt_(rt), seeded_not_bug_(seeded_not_bug)
    {
    }

    /// Runs the module body (function defs + globals).
    bool RunModule()
    {
        for (const minipy::AstPtr& stmt : module_.kids) {
            if (!ExecStmt(*stmt, &globals_)) {
                return false;
            }
        }
        return true;
    }

    bool CallEntry(const std::string& name, std::vector<NiceValue> args)
    {
        auto it = functions_.find(name);
        if (it == functions_.end()) {
            Fatal("dedicated engine: entry function not found: " + name);
        }
        NiceValue result;
        return CallFunction(*it->second, std::move(args), &result);
    }

    bool failed() const { return failed_; }
    const std::string& failure() const { return failure_; }

  private:
    using Scope = std::unordered_map<std::string, NiceValue>;

    void Unsupported(const std::string& what)
    {
        if (!failed_) {
            failed_ = true;
            failure_ = "unsupported by dedicated engine: " + what;
        }
    }

    bool CallFunction(const Ast& def, std::vector<NiceValue> args,
                      NiceValue* result)
    {
        if (++depth_ > 32) {
            --depth_;
            Unsupported("deep recursion");
            return false;
        }
        Scope locals;
        for (size_t i = 0; i < def.strings.size(); ++i) {
            locals[def.strings[i]] =
                i < args.size() ? args[i] : NiceValue();
        }
        const bool ok = ExecBody(*def.kids[0], &locals);
        --depth_;
        if (returned_) {
            *result = return_value_;
            returned_ = false;
            return true;
        }
        return ok;
    }

    bool ExecBody(const Ast& body, Scope* scope)
    {
        for (const minipy::AstPtr& stmt : body.kids) {
            if (!rt_->running() || failed_) {
                return false;
            }
            if (!ExecStmt(*stmt, scope)) {
                return false;
            }
            if (returned_ || broke_) {
                return true;
            }
        }
        return true;
    }

    bool ExecStmt(const Ast& stmt, Scope* scope)
    {
        // The dedicated engine "knows" the guest structure natively: each
        // statement is one high-level instruction.
        rt_->LogPc(reinterpret_cast<uintptr_t>(&stmt) & 0xffffffff,
                   static_cast<uint32_t>(stmt.kind));
        switch (stmt.kind) {
          case AstKind::kBody:
            return ExecBody(stmt, scope);
          case AstKind::kDef:
            functions_[stmt.name] = &stmt;
            return true;
          case AstKind::kPass:
          case AstKind::kGlobal:
            return true;
          case AstKind::kExprStmt: {
            NiceValue ignored;
            return Eval(*stmt.kids[0], scope, &ignored);
          }
          case AstKind::kAssign: {
            NiceValue value;
            if (!Eval(*stmt.kids[1], scope, &value)) {
                return false;
            }
            return Store(*stmt.kids[0], scope, value);
          }
          case AstKind::kAugAssign: {
            NiceValue current;
            NiceValue delta;
            if (!Eval(*stmt.kids[0], scope, &current) ||
                !Eval(*stmt.kids[1], scope, &delta)) {
                return false;
            }
            NiceValue updated = NiceValue::Int(
                stmt.op == minipy::TokKind::kPlusEq
                    ? SvAdd(current.num, delta.num)
                    : SvSub(current.num, delta.num));
            return Store(*stmt.kids[0], scope, updated);
          }
          case AstKind::kIf: {
            bool taken = false;
            if (!EvalCondAndBranch(*stmt.kids[0], scope, &taken)) {
                return false;
            }
            if (taken) {
                return ExecBody(*stmt.kids[1], scope);
            }
            if (stmt.kids.size() > 2) {
                return ExecBody(*stmt.kids[2], scope);
            }
            return true;
          }
          case AstKind::kWhile: {
            for (;;) {
                if (!rt_->running()) {
                    return false;
                }
                bool taken = false;
                if (!EvalCondAndBranch(*stmt.kids[0], scope, &taken)) {
                    return false;
                }
                if (!taken) {
                    return true;
                }
                if (!ExecBody(*stmt.kids[1], scope)) {
                    return false;
                }
                if (returned_) {
                    return true;
                }
                if (broke_) {
                    broke_ = false;
                    return true;
                }
            }
          }
          case AstKind::kFor: {
            // Only `for i in range(...)` is supported.
            const Ast& iter = *stmt.kids[1];
            if (iter.kind != AstKind::kCall ||
                iter.kids[0]->kind != AstKind::kName ||
                iter.kids[0]->name != "range") {
                Unsupported("for over non-range iterable");
                return false;
            }
            NiceValue stop;
            NiceValue start = NiceValue::Int(SymValue(0, 64));
            if (iter.kids.size() == 2) {
                if (!Eval(*iter.kids[1], scope, &stop)) {
                    return false;
                }
            } else if (iter.kids.size() == 3) {
                if (!Eval(*iter.kids[1], scope, &start) ||
                    !Eval(*iter.kids[2], scope, &stop)) {
                    return false;
                }
            } else {
                Unsupported("range() with step");
                return false;
            }
            SymValue position = start.num;
            for (;;) {
                if (!rt_->running()) {
                    return false;
                }
                if (!rt_->Branch(SvSlt(position, stop.num), CHEF_LLPC)) {
                    return true;
                }
                if (stmt.kids[0]->kind == AstKind::kName) {
                    (*scope)[stmt.kids[0]->name] =
                        NiceValue::Int(position);
                }
                if (!ExecBody(*stmt.kids[2], scope)) {
                    return false;
                }
                if (returned_) {
                    return true;
                }
                if (broke_) {
                    broke_ = false;
                    return true;
                }
                position = SvAdd(position, SymValue(1, 64));
            }
          }
          case AstKind::kReturn: {
            if (!stmt.kids.empty()) {
                if (!Eval(*stmt.kids[0], scope, &return_value_)) {
                    return false;
                }
            } else {
                return_value_ = NiceValue();
            }
            returned_ = true;
            return true;
          }
          case AstKind::kBreak:
            broke_ = true;
            return true;
          case AstKind::kTry:
          case AstKind::kRaise:
          case AstKind::kClass:
            Unsupported("exceptions/classes");
            return false;
          default:
            Unsupported("statement");
            return false;
        }
    }

    /// Branches on a condition, with the optional seeded `if not` bug.
    bool EvalCondAndBranch(const Ast& cond, Scope* scope, bool* taken)
    {
        if (seeded_not_bug_ && cond.kind == AstKind::kUnaryOp &&
            cond.op == minipy::TokKind::kKwNot) {
            // BUG (reintroduced per §6.6): the engine forgets to negate
            // the symbolic condition for `if not <expr>` while following
            // the correct concrete arm. The recorded constraint has the
            // wrong polarity, so the "alternate" the strategy later
            // selects solves to inputs that re-drive the already-explored
            // path: redundant test cases, and the other feasible path is
            // never generated.
            NiceValue inner;
            if (!Eval(*cond.kids[0], scope, &inner)) {
                return false;
            }
            const SymValue truth = ToBool(inner);
            const bool concrete_not = !truth.ConcreteTruth();
            const SymValue wrong_polarity(concrete_not ? 1 : 0, 1,
                                          truth.ToExpr());
            *taken = rt_->Branch(wrong_polarity, CHEF_LLPC);
            return true;
        }
        NiceValue value;
        if (!Eval(cond, scope, &value)) {
            return false;
        }
        *taken = rt_->Branch(ToBool(value), CHEF_LLPC);
        return true;
    }

    static SymValue ToBool(const NiceValue& value)
    {
        if (value.type == NiceValue::Type::kInt) {
            return value.num.width() == 1
                       ? value.num
                       : SvNe(value.num, SymValue(0, 64));
        }
        return SymValue(value.type != NiceValue::Type::kNone ? 1 : 0, 1);
    }

    bool Eval(const Ast& expr, Scope* scope, NiceValue* out)
    {
        switch (expr.kind) {
          case AstKind::kIntLit:
            *out = NiceValue::Int(
                SymValue(static_cast<uint64_t>(expr.int_value), 64));
            return true;
          case AstKind::kBoolLit:
            *out = NiceValue::Int(SymValue(expr.int_value, 64));
            return true;
          case AstKind::kNoneLit:
            *out = NiceValue();
            return true;
          case AstKind::kName: {
            auto local = scope->find(expr.name);
            if (local != scope->end()) {
                *out = local->second;
                return true;
            }
            auto global = globals_.find(expr.name);
            if (global != globals_.end()) {
                *out = global->second;
                return true;
            }
            Unsupported("undefined name " + expr.name);
            return false;
          }
          case AstKind::kBinOp: {
            NiceValue lhs;
            NiceValue rhs;
            if (!Eval(*expr.kids[0], scope, &lhs) ||
                !Eval(*expr.kids[1], scope, &rhs)) {
                return false;
            }
            switch (expr.op) {
              case minipy::TokKind::kPlus:
                *out = NiceValue::Int(SvAdd(lhs.num, rhs.num));
                return true;
              case minipy::TokKind::kMinus:
                *out = NiceValue::Int(SvSub(lhs.num, rhs.num));
                return true;
              case minipy::TokKind::kStar:
                *out = NiceValue::Int(SvMul(lhs.num, rhs.num));
                return true;
              case minipy::TokKind::kAmp:
                *out = NiceValue::Int(SvAnd(lhs.num, rhs.num));
                return true;
              case minipy::TokKind::kPipe:
                *out = NiceValue::Int(SvOr(lhs.num, rhs.num));
                return true;
              default:
                Unsupported("binary operator");
                return false;
            }
          }
          case AstKind::kUnaryOp: {
            NiceValue inner;
            if (!Eval(*expr.kids[0], scope, &inner)) {
                return false;
            }
            if (expr.op == minipy::TokKind::kKwNot) {
                *out = NiceValue::Int(
                    SvZExt(SvBoolNot(ToBool(inner)), 64));
                return true;
            }
            if (expr.op == minipy::TokKind::kMinus) {
                *out = NiceValue::Int(SvNeg(inner.num));
                return true;
            }
            Unsupported("unary operator");
            return false;
          }
          case AstKind::kCompare: {
            NiceValue lhs;
            if (!Eval(*expr.kids[0], scope, &lhs)) {
                return false;
            }
            const std::string& op = expr.strings[0];
            if (op == "in" || op == "not in") {
                NiceValue container;
                if (!Eval(*expr.kids[1], scope, &container)) {
                    return false;
                }
                if (container.type != NiceValue::Type::kDict) {
                    Unsupported("'in' over non-dict");
                    return false;
                }
                // Native symbolic membership: probe entries with
                // symbolic equality (forks per entry, but no hashing).
                bool found = false;
                for (const auto& [key, value] : *container.dict) {
                    if (rt_->Branch(SvEq(key, lhs.num), CHEF_LLPC)) {
                        found = true;
                        break;
                    }
                    if (!rt_->running()) {
                        return false;
                    }
                }
                const bool in_result = (op == "in") ? found : !found;
                *out = NiceValue::Int(SymValue(in_result ? 1 : 0, 64));
                return true;
            }
            NiceValue rhs;
            if (!Eval(*expr.kids[1], scope, &rhs)) {
                return false;
            }
            SymValue result;
            if (op == "==") result = SvEq(lhs.num, rhs.num);
            else if (op == "!=") result = SvNe(lhs.num, rhs.num);
            else if (op == "<") result = SvSlt(lhs.num, rhs.num);
            else if (op == "<=") result = SvSle(lhs.num, rhs.num);
            else if (op == ">") result = SvSgt(lhs.num, rhs.num);
            else if (op == ">=") result = SvSge(lhs.num, rhs.num);
            else {
                Unsupported("comparison " + op);
                return false;
            }
            *out = NiceValue::Int(SvZExt(result, 64));
            return true;
          }
          case AstKind::kBoolOp: {
            // Short-circuit via concrete branches.
            const bool is_and = expr.op == minipy::TokKind::kKwAnd;
            NiceValue value;
            for (const minipy::AstPtr& operand : expr.kids) {
                if (!Eval(*operand, scope, &value)) {
                    return false;
                }
                const bool truth =
                    rt_->Branch(ToBool(value), CHEF_LLPC);
                if (is_and && !truth) {
                    break;
                }
                if (!is_and && truth) {
                    break;
                }
            }
            *out = value;
            return true;
          }
          case AstKind::kDictLit: {
            NiceValue dict = NiceValue::Dict();
            for (size_t i = 0; i + 1 < expr.kids.size(); i += 2) {
                NiceValue key;
                NiceValue value;
                if (!Eval(*expr.kids[i], scope, &key) ||
                    !Eval(*expr.kids[i + 1], scope, &value)) {
                    return false;
                }
                dict.dict->push_back({key.num, value.num});
            }
            *out = dict;
            return true;
          }
          case AstKind::kSubscript: {
            NiceValue dict;
            NiceValue key;
            if (!Eval(*expr.kids[0], scope, &dict) ||
                !Eval(*expr.kids[1], scope, &key)) {
                return false;
            }
            if (dict.type != NiceValue::Type::kDict) {
                Unsupported("subscript of non-dict");
                return false;
            }
            for (const auto& [entry_key, entry_value] : *dict.dict) {
                if (rt_->Branch(SvEq(entry_key, key.num), CHEF_LLPC)) {
                    *out = NiceValue::Int(entry_value);
                    return true;
                }
                if (!rt_->running()) {
                    return false;
                }
            }
            Unsupported("KeyError (dedicated engine has no exceptions)");
            return false;
          }
          case AstKind::kCall: {
            if (expr.kids[0]->kind != AstKind::kName) {
                Unsupported("indirect call");
                return false;
            }
            const std::string& name = expr.kids[0]->name;
            auto function = functions_.find(name);
            if (function != functions_.end()) {
                std::vector<NiceValue> args;
                for (size_t i = 1; i < expr.kids.size(); ++i) {
                    NiceValue arg;
                    if (!Eval(*expr.kids[i], scope, &arg)) {
                        return false;
                    }
                    args.push_back(std::move(arg));
                }
                return CallFunction(*function->second, std::move(args),
                                    out);
            }
            if (name == "abs" && expr.kids.size() == 2) {
                NiceValue arg;
                if (!Eval(*expr.kids[1], scope, &arg)) {
                    return false;
                }
                const SymValue negative =
                    SvSlt(arg.num, SymValue(0, 64));
                *out = NiceValue::Int(
                    SvIte(negative, SvNeg(arg.num), arg.num));
                return true;
            }
            Unsupported("builtin " + name);
            return false;
          }
          default:
            Unsupported("expression");
            return false;
        }
    }

    bool Store(const Ast& target, Scope* scope, const NiceValue& value)
    {
        if (target.kind == AstKind::kName) {
            // Module-level globals mutated from functions use the global
            // scope if already defined there (NICE-style controllers put
            // state in module globals).
            if (scope != &globals_ && !scope->count(target.name) &&
                globals_.count(target.name)) {
                globals_[target.name] = value;
                return true;
            }
            (*scope)[target.name] = value;
            return true;
        }
        if (target.kind == AstKind::kSubscript) {
            NiceValue dict;
            NiceValue key;
            if (!Eval(*target.kids[0], scope, &dict) ||
                !Eval(*target.kids[1], scope, &key)) {
                return false;
            }
            if (dict.type != NiceValue::Type::kDict) {
                Unsupported("subscript store on non-dict");
                return false;
            }
            // Update an existing entry (symbolic key probe) or append.
            for (auto& [entry_key, entry_value] : *dict.dict) {
                if (rt_->Branch(SvEq(entry_key, key.num), CHEF_LLPC)) {
                    entry_value = value.num;
                    return true;
                }
                if (!rt_->running()) {
                    return false;
                }
            }
            dict.dict->push_back({key.num, value.num});
            return true;
        }
        Unsupported("assignment target");
        return false;
    }

    const Ast& module_;
    LowLevelRuntime* rt_;
    bool seeded_not_bug_;

    Scope globals_;
    std::unordered_map<std::string, const Ast*> functions_;
    NiceValue return_value_;
    bool returned_ = false;
    bool broke_ = false;
    bool failed_ = false;
    std::string failure_;
    int depth_ = 0;
};

}  // namespace

NicePyEngine::NicePyEngine(const std::string& source, Options options)
    : options_(options), source_(source)
{
    minipy::ParseResult parsed = minipy::Parse(source);
    if (!parsed.ok) {
        Fatal("dedicated engine: guest parse error: " + parsed.error);
    }
    module_ = std::shared_ptr<minipy::Ast>(parsed.module.release());
}

NiceResult
NicePyEngine::Explore(const std::string& entry,
                      const std::vector<NiceArg>& args)
{
    Engine::Options engine_options;
    engine_options.seed = options_.seed;
    engine_options.max_runs = options_.max_runs;
    engine_options.max_seconds = options_.max_seconds;
    // Exploring a small controller: random selection suffices (the paper
    // notes strategy choice is irrelevant at this scale, §6.6).
    engine_options.strategy = StrategyKind::kCupaPath;
    Engine engine(engine_options);

    const Ast* module = module_.get();
    const bool seeded = options_.seeded_not_bug;
    NiceResult result;
    result.tests = engine.Explore(
        [module, entry, args, seeded](LowLevelRuntime& rt)
            -> Engine::GuestOutcome {
            Executor executor(*module, &rt, seeded);
            if (!executor.RunModule()) {
                return {"abort", executor.failure()};
            }
            std::vector<NiceValue> call_args;
            for (const NiceArg& arg : args) {
                call_args.push_back(NiceValue::Int(SvSExt(
                    rt.MakeSymbolicValue(
                        arg.name, 32,
                        static_cast<uint64_t>(arg.default_value)),
                    64)));
            }
            if (!executor.CallEntry(entry, std::move(call_args))) {
                if (executor.failed()) {
                    return {"abort", executor.failure()};
                }
            }
            return {"ok", ""};
        });
    result.stats = engine.stats();
    result.hl_paths = engine.stats().hl_paths;
    return result;
}

bool
NicePyEngine::SupportsFeature(const std::string& feature)
{
    // Table 4's NICE column: integers full; lists/dicts partial (wrapped
    // types); strings/floats/classes/exceptions/native unsupported.
    if (feature == "int" || feature == "basic-control-flow" ||
        feature == "data-manipulation") {
        return true;
    }
    return false;
}

}  // namespace chef::dedicated
