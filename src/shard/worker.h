#ifndef CHEF_SHARD_WORKER_H_
#define CHEF_SHARD_WORKER_H_

/// \file
/// The shard worker: one ExplorationService served over a Transport.
///
/// A worker announces itself (hello), waits for its partition of a batch
/// (run), and explores it while speaking gossip in both directions: its
/// own fresh corpus fingerprints and yield snapshot stream out as deltas,
/// and incoming deltas from sibling shards merge into the local corpus —
/// pre-seeding fingerprints so a path another shard already covered
/// dedups on discovery, and feeding remote yield into the batch
/// scheduler so priorities (and plateau cancellation) act on the
/// *cluster's* view of where coverage is climbing, not just the local
/// one. When the batch drains the worker sends a result message (job
/// results under global indices, stats, the full local-origin corpus)
/// and waits for more work or shutdown.

#include <string>

#include "shard/transport.h"
#include "shard/wire.h"

namespace chef::shard {

class ShardWorker
{
  public:
    struct Options {
        /// Floor between outgoing gossip deltas. Gossip is best-effort
        /// acceleration — a longer interval only delays dedup, never
        /// correctness (the coordinator merge dedups regardless). The
        /// default trades ~50 small messages/second for dedup that can
        /// keep up with millisecond-scale jobs.
        double gossip_interval_seconds = 0.02;
    };

    ShardWorker(Options options, Transport* transport);

    /// Serves the protocol until shutdown or transport close. Returns
    /// true on clean shutdown, false when the coordinator vanished or a
    /// protocol error occurred (the error is also sent to the peer when
    /// possible). A coordinator that vanishes mid-batch cancels the
    /// in-flight exploration via the service stop source and makes
    /// Serve() return false promptly — finishing doomed work would only
    /// burn cores nobody collects from.
    bool Serve();

  private:
    /// Runs one batch partition. Returns false when the coordinator
    /// vanished mid-run (transport closed or a send failed).
    bool HandleRun(const RunRequest& request);

    Options options_;
    Transport* transport_;
};

}  // namespace chef::shard

#endif  // CHEF_SHARD_WORKER_H_
