#include "shard/worker.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace chef::shard {

namespace {

using Clock = std::chrono::steady_clock;

std::string
ShardName(size_t shard_id)
{
    return "shard" + std::to_string(shard_id);
}

}  // namespace

ShardWorker::ShardWorker(Options options, Transport* transport)
    : options_(options), transport_(transport)
{
}

bool
ShardWorker::HandleRun(const RunRequest& request)
{
    const std::string source = ShardName(request.shard_id);

    // Per-run telemetry scope. The registry is always on (snapshot cost
    // is paid only when rendered); the tracer exists only when the
    // coordinator asked for tracing. pid = shard_id + 1 keeps shard 0
    // distinct from the coordinator process (pid 0) in merged traces.
    obs::MetricsRegistry metrics;
    obs::PhaseTracer tracer;
    tracer.set_pid(static_cast<uint32_t>(request.shard_id) + 1);
    tracer.set_enabled(request.service.tracing);
    service::ExplorationService::Options service_options =
        request.service.ToServiceOptions();
    service_options.obs.metrics = &metrics;
    service_options.obs.tracer = request.service.tracing ? &tracer : nullptr;
    // Time-series recorder, sampled by the service's ticker thread at
    // the telemetry cadence; this thread drains it incrementally onto
    // the gossip stream (wire v2.1 "series").
    const bool live_telemetry =
        request.service.metrics_interval_seconds > 0.0;
    obs::TimeSeriesRecorder::Options recorder_options;
    if (live_telemetry) {
        recorder_options.interval_seconds =
            request.service.metrics_interval_seconds;
    }
    obs::TimeSeriesRecorder recorder(recorder_options);
    if (live_telemetry) {
        service_options.obs.timeseries = &recorder;
    }

    // Heartbeats (v2.2) double as the streamed-result channel: every
    // completed job's full result is captured off the service's event
    // dispatcher and shipped on the next beat, so the coordinator can
    // requeue only the genuinely unfinished remainder if this process
    // dies later. Gated on the coordinator asking — streaming costs a
    // dispatcher thread the plain path doesn't need.
    const bool heartbeats =
        request.service.heartbeat_interval_seconds > 0.0;
    std::mutex completed_mutex;
    std::vector<std::shared_ptr<const service::JobResult>> completed;
    if (heartbeats) {
        service_options.on_job_event =
            [&](const service::JobEvent& event) {
                if (event.kind ==
                        service::JobEvent::Kind::kJobCompleted &&
                    event.result != nullptr) {
                    std::lock_guard<std::mutex> lock(completed_mutex);
                    completed.push_back(event.result);
                }
            };
    }

    service::ExplorationService service(service_options);
    std::vector<service::JobSpec> jobs;
    std::vector<size_t> global_indices;
    jobs.reserve(request.jobs.size());
    global_indices.reserve(request.jobs.size());
    for (const WireJob& job : request.jobs) {
        jobs.push_back(job.spec);
        global_indices.push_back(job.job_index);
    }

    // The batch runs on its own thread; this thread stays on the
    // transport, merging incoming gossip into the live corpus and
    // streaming fresh local discoveries out.
    std::vector<service::JobResult> results;
    std::atomic<bool> done{false};
    std::thread batch([&] {
        results = service.RunBatch(jobs);
        done.store(true, std::memory_order_release);
    });

    uint64_t gossiped_sequence = 0;
    uint64_t shipped_series_index = 0;
    auto last_gossip = Clock::now() - std::chrono::hours(1);
    auto last_telemetry = Clock::now();
    const auto gossip_interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(options_.gossip_interval_seconds));
    // Telemetry rides the gossip stream at its own (coarser) cadence;
    // 0 disables mid-batch snapshots (the result carries the final one).
    const auto telemetry_interval =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                request.service.metrics_interval_seconds));
    bool peer_gone = false;

    // The coordinator is gone: nobody will collect results, so cancel
    // the in-flight batch instead of finishing doomed work (the worker
    // lambdas observe the stop source between runs).
    const auto on_peer_gone = [&] {
        peer_gone = true;
        service.RequestStop();
    };

    const auto pump_gossip_out = [&](bool force) {
        if (peer_gone ||
            (!force && Clock::now() - last_gossip < gossip_interval)) {
            return;
        }
        // Sent every interval even when no new entries exist: the yield
        // snapshot moves on zero-yield completions (the plateau streak),
        // and that signal is exactly what lets sibling shards cancel
        // duplicate jobs without rediscovering the plateau themselves.
        const service::TestCorpus::Delta delta =
            service.corpus().Snapshot(source, gossiped_sequence);
        last_gossip = Clock::now();
        gossiped_sequence = delta.sequence;
        obs::MetricsSnapshot snapshot;
        const obs::MetricsSnapshot* telemetry = nullptr;
        std::vector<obs::SeriesSample> fresh_series;
        const std::vector<obs::SeriesSample>* series = nullptr;
        obs::AttributionSnapshot attr_snapshot;
        const obs::AttributionSnapshot* attribution = nullptr;
        if (live_telemetry &&
            Clock::now() - last_telemetry >= telemetry_interval) {
            last_telemetry = Clock::now();
            snapshot = metrics.Snapshot();
            telemetry = &snapshot;
            // Ship every sample recorded since the last gossip that
            // carried series; the coordinator dedups by index, so a
            // resend after a dropped send is harmless.
            fresh_series = recorder.SamplesSince(shipped_series_index);
            if (!fresh_series.empty()) {
                shipped_series_index = fresh_series.back().index;
                series = &fresh_series;
            }
            // v2.4: cumulative attribution table at the same cadence.
            // The coordinator replaces its per-shard latest, so a resend
            // is idempotent.
            attr_snapshot = service.attribution();
            if (!attr_snapshot.empty()) {
                attribution = &attr_snapshot;
            }
        }
        if (!transport_->Send(
                EncodeGossip(delta, telemetry, series, attribution))) {
            on_peer_gone();
        }
    };

    auto last_heartbeat = Clock::now();
    uint64_t heartbeat_sequence = 0;
    const auto heartbeat_interval =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                request.service.heartbeat_interval_seconds));
    const auto pump_heartbeat = [&] {
        if (!heartbeats || peer_gone ||
            Clock::now() - last_heartbeat < heartbeat_interval) {
            return;
        }
        // Drain first, gossip second: a drained result's corpus inserts
        // happened before its completion event fired, so the delta cut
        // below covers them, and the transport is ordered — by the time
        // the coordinator reads this beat's results, it already holds
        // every fingerprint they discovered. That ordering is what lets
        // the coordinator skip requeueing heartbeat-acknowledged jobs
        // without losing corpus entries when this shard dies.
        HeartbeatMessage beat;
        beat.shard_id = request.shard_id;
        beat.sequence = ++heartbeat_sequence;
        {
            std::lock_guard<std::mutex> lock(completed_mutex);
            beat.results.reserve(completed.size());
            for (const auto& result : completed) {
                beat.results.push_back(*result);
            }
            completed.clear();
        }
        for (service::JobResult& result : beat.results) {
            // Local queue position -> the coordinator's global index,
            // same remap the final result message applies.
            if (result.job_index < global_indices.size()) {
                result.job_index = global_indices[result.job_index];
            }
        }
        if (!beat.results.empty()) {
            pump_gossip_out(/*force=*/true);
        }
        last_heartbeat = Clock::now();
        if (!peer_gone &&
            !transport_->Send(EncodeHeartbeat(beat))) {
            on_peer_gone();
        }
    };

    while (!done.load(std::memory_order_acquire)) {
        std::string line;
        const Transport::RecvStatus status =
            peer_gone ? Transport::RecvStatus::kTimeout
                      : transport_->Receive(&line, /*timeout_ms=*/10);
        if (status == Transport::RecvStatus::kClosed) {
            on_peer_gone();
        } else if (status == Transport::RecvStatus::kMessage) {
            Message message;
            std::string decode_error;
            if (!DecodeMessage(line, &message, &decode_error)) {
                transport_->Send(EncodeError(decode_error));
            } else if (message.type == MessageType::kGossip) {
                service.mutable_corpus()->MergeFrom(message.gossip);
                // Remote yield can re-rank pending jobs and trip the
                // plateau without any local completion.
                service.NotifyYieldsChanged();
            } else if (message.type == MessageType::kShutdown) {
                // Abort the batch; the final (partial) results still go
                // out below so the coordinator can account for them.
                service.RequestStop();
            }
        } else if (peer_gone) {
            // Nothing to multiplex anymore; just wait for the (now
            // cancelling) batch to unwind.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        pump_gossip_out(/*force=*/false);
        pump_heartbeat();
    }
    batch.join();

    if (peer_gone) {
        return false;
    }

    // Final delta (discoveries since the last pump), then the result.
    const service::TestCorpus::Delta tail =
        service.corpus().Snapshot(source, gossiped_sequence);
    if (!tail.entries.empty()) {
        transport_->Send(EncodeGossip(tail));
    }

    ResultMessage result;
    result.shard_id = request.shard_id;
    result.stats = service.stats();
    result.results = std::move(results);
    for (size_t i = 0; i < result.results.size(); ++i) {
        // Local queue positions -> the coordinator's global indices.
        result.results[i].job_index = global_indices[i];
    }
    result.corpus = service.corpus().Snapshot(source, 0);
    for (service::TestCorpus::Entry& entry : result.corpus.entries) {
        // Corpus entries carry their discovering job too; remap so the
        // merged report's attribution points at the global jobs array.
        if (entry.job_index < global_indices.size()) {
            entry.job_index = global_indices[entry.job_index];
        }
    }
    result.remote_entries = service.corpus().remote_entries();
    result.remote_duplicate_hits =
        service.corpus().remote_duplicate_hits();
    result.telemetry = metrics.Snapshot();
    // v2.4: the shard's final attribution table (empty when attribution
    // is off — the encoder then omits the key entirely).
    result.attribution = service.attribution();
    if (request.service.tracing) {
        result.trace = tracer.TakeEvents();
    }
    // Samples the gossip stream never shipped — including the final one
    // RunBatch records after all accounting, so the cluster series ends
    // exactly at the reported totals.
    if (live_telemetry) {
        result.series = recorder.SamplesSince(shipped_series_index);
    }
    return transport_->Send(EncodeResult(result));
}

bool
ShardWorker::Serve()
{
    if (!transport_->Send(EncodeHello())) {
        return false;
    }
    for (;;) {
        std::string line;
        const Transport::RecvStatus status =
            transport_->Receive(&line, /*timeout_ms=*/-1);
        if (status == Transport::RecvStatus::kClosed) {
            return false;
        }
        if (status != Transport::RecvStatus::kMessage) {
            continue;
        }
        Message message;
        std::string decode_error;
        if (!DecodeMessage(line, &message, &decode_error)) {
            transport_->Send(EncodeError(decode_error));
            continue;
        }
        switch (message.type) {
          case MessageType::kRun:
            if (!HandleRun(message.run)) {
                // Coordinator vanished mid-run; exit nonzero promptly
                // rather than blocking on a transport nobody serves.
                return false;
            }
            break;
          case MessageType::kShutdown:
            return true;
          case MessageType::kGossip:
            // Gossip outside a run races a batch that already finished;
            // it is acceleration only, so dropping it is harmless.
            break;
          case MessageType::kError:
          case MessageType::kHello:
          case MessageType::kHeartbeat:
          case MessageType::kResult:
            // Not meaningful coordinator->worker; ignore.
            break;
        }
    }
}

}  // namespace chef::shard
