#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "service/service.h"
#include "shard/worker.h"
#include "support/json.h"

namespace chef::shard {

namespace {

using Clock = std::chrono::steady_clock;

double
SecondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

Clock::duration
DurationFrom(double seconds)
{
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
}

bool
Fail(std::string* error, const std::string& reason)
{
    if (error != nullptr) {
        *error = reason;
    }
    return false;
}

/// Folds one requeue round's worker stats into a shard's running total.
/// Work counters and clocks sum (rounds run back-to-back on the same
/// shard); gauge-like fields keep the latest round's value.
void
AccumulateShardStats(service::ServiceStats* into,
                     const service::ServiceStats& s)
{
    into->jobs_submitted += s.jobs_submitted;
    into->jobs_completed += s.jobs_completed;
    into->jobs_cancelled += s.jobs_cancelled;
    into->jobs_plateau_cancelled += s.jobs_plateau_cancelled;
    into->jobs_failed += s.jobs_failed;
    into->ll_paths += s.ll_paths;
    into->hl_paths += s.hl_paths;
    into->hangs += s.hangs;
    into->solver_queries += s.solver_queries;
    into->solver_sliced_queries += s.solver_sliced_queries;
    into->solver_incremental_sat_calls += s.solver_incremental_sat_calls;
    into->solver_clauses_loaded += s.solver_clauses_loaded;
    into->solver_seconds += s.solver_seconds;
    into->solver_cache_shared =
        into->solver_cache_shared || s.solver_cache_shared;
    into->shared_cache_hits += s.shared_cache_hits;
    into->shared_cache_misses += s.shared_cache_misses;
    into->shared_cache_inserts += s.shared_cache_inserts;
    into->shared_cache_evictions += s.shared_cache_evictions;
    into->shared_cache_model_hits += s.shared_cache_model_hits;
    into->shared_cache_bytes = s.shared_cache_bytes;
    into->shared_cache_entries = s.shared_cache_entries;
    into->engine_seconds += s.engine_seconds;
    into->wall_seconds += s.wall_seconds;
    into->num_workers = std::max(into->num_workers, s.num_workers);
    into->events_delivered += s.events_delivered;
    into->corpus_size = s.corpus_size;
    into->jobs_per_second = s.jobs_per_second;
    into->schedule_policy = s.schedule_policy;
}

}  // namespace

ShardCoordinator::ShardCoordinator(Options options)
    : options_(std::move(options))
{
}

bool
ShardCoordinator::Run(const std::vector<service::JobSpec>& jobs,
                      const std::vector<Transport*>& transports,
                      std::string* error)
{
    const auto start = Clock::now();
    const size_t num_shards = transports.size();
    if (num_shards == 0) {
        return Fail(error, "no shard transports");
    }

    // Reject non-serializable specs up front, before any shard has been
    // asked to do anything — a clear error at submit beats a worker
    // silently running a spec with its callbacks dropped.
    for (const service::JobSpec& spec : jobs) {
        std::string why;
        if (!CheckSerializable(spec, &why)) {
            return Fail(error, why);
        }
    }

    results_.clear();
    results_.resize(jobs.size());
    corpus_.Clear();
    shards_.clear();
    shards_.resize(num_shards);
    cross_shard_ = CrossShardStats{};
    merged_stats_ = service::ServiceStats{};
    degraded_ = false;
    fault_ = FaultStats{};
    coordinator_telemetry_ = obs::MetricsSnapshot{};
    cluster_telemetry_ = obs::MetricsSnapshot{};
    cluster_series_.Clear();
    trace_events_.clear();
    solver_seconds_max_shard_ = 0.0;

    // Coordinator-side fault telemetry: counters for the merged report
    // plus a pid-0 tracer, so death instants and requeue spans line up
    // against the workers' spans (pid shard_id + 1) in one timeline.
    obs::MetricsRegistry metrics;
    obs::Counter* deaths_total = metrics.counter("shard.deaths_total");
    obs::Counter* jobs_requeued_total =
        metrics.counter("shard.jobs_requeued_total");
    obs::Counter* heartbeats_missed =
        metrics.counter("shard.heartbeats_missed");
    obs::Counter* respawns_total = metrics.counter("shard.respawns_total");
    obs::PhaseTracer tracer;
    tracer.set_pid(0);
    tracer.set_enabled(options_.service.tracing);

    const bool heartbeats = options_.heartbeat_interval_seconds > 0.0;
    const auto heartbeat_interval =
        DurationFrom(options_.heartbeat_interval_seconds);
    const auto heartbeat_timeout =
        DurationFrom(options_.heartbeat_timeout_seconds);
    const size_t quorum = std::max<size_t>(1, options_.min_live_shards);

    // Per-shard runtime state machine. kIdle means greeted and between
    // runs — the dispatch step below hands idle shards work.
    enum class State { kAwaitingHello, kBusy, kIdle, kDead };
    struct Runtime {
        State state = State::kAwaitingHello;
        Transport* transport = nullptr;
        Clock::time_point last_heard;
        Clock::time_point hello_deadline;
        /// Heartbeat intervals of current silence already counted into
        /// shard.heartbeats_missed (resets on any message).
        uint64_t silent_intervals = 0;
        /// Whether this shard has sent any heartbeat for the current
        /// run. Missed-beat telemetry only counts gaps after the first
        /// beat: run startup (service construction, thread spawn) is
        /// legitimately silent and beats have not begun yet. The
        /// heartbeat *timeout* still applies from dispatch, so a worker
        /// that hangs before its first beat is still declared dead.
        bool beat_seen = false;
        /// Jobs dispatched in the current run, not yet reported.
        std::vector<WireJob> inflight;
        bool reported_once = false;
        bool respawn_scheduled = false;
        Clock::time_point respawn_at;
        /// Every fingerprint this shard gossiped. If the shard dies,
        /// these placeholders are all that remains of its completed-
        /// but-unreported discoveries; merging them at the end keeps
        /// the merged corpus key set identical to an undisturbed run.
        service::TestCorpus::Delta retained;
    };
    std::vector<Runtime> runtime(num_shards);

    // One *global* hello deadline shared by every shard: the workers
    // spawn concurrently and their waits overlap, so per-shard serial
    // deadlines would let total patience grow with shard count.
    const auto hello_deadline =
        start + DurationFrom(options_.hello_timeout_seconds);
    for (size_t shard = 0; shard < num_shards; ++shard) {
        shards_[shard].shard_id = shard;
        runtime[shard].transport = transports[shard];
        runtime[shard].last_heard = start;
        runtime[shard].hello_deadline = hello_deadline;
        runtime[shard].retained.source = "shard" + std::to_string(shard);
    }

    // Partition round-robin by global index, deriving each job's seed
    // from that index so neither the partition nor a later requeue onto
    // a different shard can change per-job results.
    std::vector<std::vector<WireJob>> partitions(num_shards);
    for (size_t index = 0; index < jobs.size(); ++index) {
        WireJob job;
        job.job_index = index;
        job.spec = jobs[index];
        if (!job.spec.exact_seed) {
            job.spec.seed = service::ExplorationService::DeriveJobSeed(
                options_.service.seed, index, job.spec.seed);
            job.spec.exact_seed = true;
        }
        partitions[ShardFor(index, num_shards)].push_back(std::move(job));
    }

    // Which global jobs already have a result — final, or streamed over
    // a heartbeat by a shard that died later.
    std::vector<char> have_result(jobs.size(), 0);
    std::vector<WireJob> pending_requeue;
    size_t live_shards = num_shards;
    bool quorum_broken = false;

    const auto record_result = [&](service::JobResult&& job) {
        if (job.job_index >= results_.size()) {
            return false;  // Corrupt index; drop rather than crash.
        }
        have_result[job.job_index] = 1;
        results_[job.job_index] = std::move(job);
        return true;
    };

    ServiceConfig shipped = options_.service;
    shipped.heartbeat_interval_seconds =
        heartbeats ? options_.heartbeat_interval_seconds : 0.0;

    // send_run can kill (send failure) and mark_dead requeues what
    // send_run dispatched — std::function closes the cycle.
    std::function<void(size_t, const std::string&)> mark_dead;

    const auto send_run = [&](size_t shard, std::vector<WireJob> batch) {
        Runtime& rt = runtime[shard];
        RunRequest request;
        request.shard_id = shard;
        request.num_shards = num_shards;
        request.service = shipped;
        request.jobs = std::move(batch);
        const std::string line = EncodeRun(request);
        rt.inflight = std::move(request.jobs);
        shards_[shard].jobs_assigned += rt.inflight.size();
        rt.state = State::kBusy;
        rt.last_heard = Clock::now();
        rt.silent_intervals = 0;
        rt.beat_seen = false;
        if (!rt.transport->Send(line)) {
            mark_dead(shard, "send failed");
        }
    };

    mark_dead = [&](size_t shard, const std::string& cause) {
        Runtime& rt = runtime[shard];
        if (rt.state == State::kDead) {
            return;
        }
        rt.state = State::kDead;
        rt.transport->Close();
        degraded_ = true;
        ++fault_.deaths;
        deaths_total->Add();
        shards_[shard].dead = true;
        shards_[shard].death_cause = cause;
        tracer.RecordInstant(
            "shard_death", "fault",
            "shard " + std::to_string(shard) + ": " + cause);
        // Requeue the remainder. With gossip on, a heartbeat-
        // acknowledged job's discoveries are already covered by this
        // shard's retained fingerprints, so only genuinely unfinished
        // jobs rerun; with gossip off nothing covers them, so every
        // inflight job reruns — bit-identical thanks to global-index
        // seeds, which makes overwriting a streamed result harmless.
        size_t requeued = 0;
        const auto requeue = [&](std::vector<WireJob>* batch) {
            for (WireJob& job : *batch) {
                if (options_.gossip && have_result[job.job_index]) {
                    continue;
                }
                pending_requeue.push_back(std::move(job));
                ++requeued;
            }
            batch->clear();
        };
        requeue(&rt.inflight);
        requeue(&partitions[shard]);  // Died before its first dispatch.
        shards_[shard].jobs_requeued += requeued;
        fault_.jobs_requeued += requeued;
        jobs_requeued_total->Add(requeued);
        if (options_.on_shard_death) {
            options_.on_shard_death(shard, cause);
        }
        if (options_.supervisor != nullptr &&
            shards_[shard].respawns < options_.max_respawns) {
            // Exponential backoff keyed on attempts already burned.
            rt.respawn_scheduled = true;
            rt.respawn_at =
                Clock::now() +
                DurationFrom(options_.respawn_backoff_seconds *
                             static_cast<double>(
                                 uint64_t{1} << std::min<size_t>(
                                     shards_[shard].respawns, 16)));
        } else {
            --live_shards;
        }
    };

    const auto merge_result = [&](size_t shard, ResultMessage&& result) {
        ShardOutcome& outcome = shards_[shard];
        Runtime& rt = runtime[shard];
        // The result's series tail closes the shard's curve at its
        // final counter totals.
        if (!result.series.empty() &&
            cluster_series_.Update("shard" + std::to_string(shard),
                                   result.series) > 0 &&
            options_.on_series_update) {
            options_.on_series_update(shard);
        }
        AccumulateShardStats(&outcome.stats, result.stats);
        outcome.remote_entries += result.remote_entries;
        outcome.remote_duplicate_hits += result.remote_duplicate_hits;
        // The final snapshot supersedes whatever gossip delivered live;
        // a requeue-round report merges on top of the first so counters
        // stay cumulative.
        if (rt.reported_once) {
            outcome.telemetry.MergeFrom(result.telemetry);
            outcome.attribution.MergeFrom(result.attribution);
        } else {
            outcome.telemetry = result.telemetry;
            // Authoritative final table: supersedes the live gossip
            // snapshots (which are cumulative prefixes of it).
            outcome.attribution = std::move(result.attribution);
        }
        rt.reported_once = true;
        cluster_telemetry_.MergeFrom(result.telemetry);
        trace_events_.insert(trace_events_.end(), result.trace.begin(),
                             result.trace.end());
        for (service::JobResult& job : result.results) {
            record_result(std::move(job));
        }
        const service::TestCorpus::MergeStats merge =
            corpus_.MergeFrom(result.corpus);
        outcome.corpus_contributed += merge.inserted;
        outcome.corpus_duplicate += merge.duplicates;
        cross_shard_.merge_duplicates += merge.duplicates;
        rt.inflight.clear();
        rt.state = State::kIdle;
    };

    const auto handle_message = [&](size_t shard, Message&& message) {
        Runtime& rt = runtime[shard];
        rt.last_heard = Clock::now();
        rt.silent_intervals = 0;
        switch (message.type) {
          case MessageType::kHello:
            if (rt.state != State::kAwaitingHello) {
                break;  // Stale re-hello; ignore.
            }
            if (message.protocol_version != kProtocolVersion) {
                mark_dead(shard,
                          "protocol version " +
                              std::to_string(message.protocol_version) +
                              " != " + std::to_string(kProtocolVersion));
                break;
            }
            rt.state = State::kIdle;
            break;
          case MessageType::kGossip: {
            // Telemetry piggybacked on the delta keeps the cluster view
            // live mid-batch; it is coordinator-local and never
            // forwarded to sibling shards.
            if (message.has_telemetry) {
                shards_[shard].telemetry = std::move(message.telemetry);
            }
            // Attribution snapshots are cumulative: replace-by-latest,
            // so a redelivered or out-of-cadence snapshot is idempotent.
            // Once the shard has reported a final table, later gossip
            // (a requeue round's fresh prefix) must not clobber it —
            // merge_result folds those rounds in instead.
            if (message.has_attribution && !rt.reported_once) {
                shards_[shard].attribution =
                    std::move(message.attribution);
            }
            if (!message.series.empty() &&
                cluster_series_.Update("shard" + std::to_string(shard),
                                       message.series) > 0 &&
                options_.on_series_update) {
                options_.on_series_update(shard);
            }
            if (!options_.gossip) {
                break;
            }
            ++cross_shard_.gossip_messages;
            cross_shard_.fingerprints_gossiped +=
                message.gossip.entries.size();
            rt.retained.entries.insert(rt.retained.entries.end(),
                                       message.gossip.entries.begin(),
                                       message.gossip.entries.end());
            // Forward verbatim: receivers key remote state by
            // delta.source, so rebroadcast order cannot skew the merged
            // view. The producing shard never sees its own delta back.
            const std::string line_out = EncodeGossip(message.gossip);
            for (size_t other = 0; other < num_shards; ++other) {
                if (other == shard ||
                    runtime[other].state != State::kBusy) {
                    continue;
                }
                if (!runtime[other].transport->Send(line_out)) {
                    mark_dead(other, "send failed");
                }
            }
            break;
          }
          case MessageType::kHeartbeat:
            // Liveness (last_heard above) plus the streamed-results
            // channel: anything acknowledged here survives this shard's
            // later death without a rerun.
            rt.beat_seen = true;
            for (service::JobResult& job : message.heartbeat.results) {
                record_result(std::move(job));
            }
            if (options_.on_heartbeat) {
                options_.on_heartbeat(shard);
            }
            break;
          case MessageType::kResult:
            merge_result(shard, std::move(message.result));
            break;
          case MessageType::kError:
            mark_dead(shard, "worker error: " + message.error);
            break;
          default:
            break;
        }
    };

    // The unified multiplex loop: respawn due shards, drain every live
    // transport without blocking, enforce deadlines, dispatch work to
    // idle shards. One idle sleep per quiet sweep bounds the spin.
    const int idle_sleep_ms = std::max(1, options_.poll_timeout_ms);
    for (;;) {
        const auto now = Clock::now();
        bool progressed = false;

        // Respawns whose backoff expired.
        for (size_t shard = 0; shard < num_shards; ++shard) {
            Runtime& rt = runtime[shard];
            if (rt.state != State::kDead || !rt.respawn_scheduled ||
                now < rt.respawn_at) {
                continue;
            }
            rt.respawn_scheduled = false;
            ++shards_[shard].respawns;
            ++fault_.respawns;
            respawns_total->Add();
            Transport* fresh = options_.supervisor->Respawn(shard);
            if (fresh == nullptr) {
                --live_shards;  // Respawn failed: given up for good.
                continue;
            }
            rt.transport = fresh;
            rt.state = State::kAwaitingHello;
            rt.last_heard = Clock::now();
            rt.hello_deadline =
                Clock::now() + DurationFrom(options_.hello_timeout_seconds);
            // Alive again; death_cause stays as the latest obituary.
            shards_[shard].dead = false;
            tracer.RecordInstant("shard_respawn", "fault",
                                 "shard " + std::to_string(shard));
            progressed = true;
        }

        for (size_t shard = 0; shard < num_shards; ++shard) {
            Runtime& rt = runtime[shard];
            if (rt.state == State::kDead) {
                continue;
            }
            // Drain everything queued on this transport so one chatty
            // shard cannot add a sweep of latency per message.
            for (;;) {
                std::string line;
                const Transport::RecvStatus status =
                    rt.transport->Receive(&line, /*timeout_ms=*/0);
                if (status == Transport::RecvStatus::kTimeout) {
                    break;
                }
                if (status == Transport::RecvStatus::kClosed) {
                    std::string cause = rt.state == State::kAwaitingHello
                                            ? "transport closed before hello"
                                            : "transport closed";
                    std::string probed;
                    if (options_.supervisor != nullptr &&
                        !options_.supervisor->Probe(shard, &probed) &&
                        !probed.empty()) {
                        cause += " (" + probed + ")";
                    }
                    mark_dead(shard, cause);
                    break;
                }
                progressed = true;
                Message message;
                std::string decode_error;
                if (!DecodeMessage(line, &message, &decode_error)) {
                    // Garbage on the wire condemns the shard, not the
                    // batch; keep a snippet for the post-mortem.
                    std::string snippet = line.substr(0, 96);
                    if (line.size() > 96) {
                        snippet += "...";
                    }
                    mark_dead(shard, "malformed message (" + decode_error +
                                         "): '" + snippet + "'");
                    break;
                }
                handle_message(shard, std::move(message));
                if (rt.state == State::kDead) {
                    break;
                }
            }
            if (rt.state == State::kDead) {
                progressed = true;
                continue;
            }

            if (rt.state == State::kAwaitingHello &&
                now >= rt.hello_deadline) {
                mark_dead(shard, "no hello before timeout");
                progressed = true;
                continue;
            }
            if (heartbeats && rt.state == State::kBusy &&
                heartbeat_interval.count() > 0) {
                const auto silent = now - rt.last_heard;
                // One interval of silence is ordinary cadence jitter (a
                // beat in flight); only silence beyond that counts as
                // skipped beats.
                const uint64_t overdue =
                    static_cast<uint64_t>(silent / heartbeat_interval);
                const uint64_t missed_now = overdue > 1 ? overdue - 1 : 0;
                if (rt.beat_seen && missed_now > rt.silent_intervals) {
                    const uint64_t missed =
                        missed_now - rt.silent_intervals;
                    rt.silent_intervals = missed_now;
                    fault_.heartbeats_missed += missed;
                    heartbeats_missed->Add(missed);
                }
                if (silent >= heartbeat_timeout) {
                    mark_dead(
                        shard,
                        "heartbeat timeout after " +
                            std::to_string(
                                std::chrono::duration<double>(silent)
                                    .count()) +
                            "s");
                    progressed = true;
                    continue;
                }
            }
            // Process-level probe: a pipe can buffer past its process's
            // death, and a SIGSTOPped worker never closes anything.
            if (options_.supervisor != nullptr) {
                std::string probed;
                if (!options_.supervisor->Probe(shard, &probed)) {
                    mark_dead(shard, probed.empty() ? "process gone"
                                                    : probed);
                    progressed = true;
                    continue;
                }
            }
        }

        // Dispatch: initial partitions to freshly greeted shards, then
        // the requeue backlog to the first idle survivor.
        for (size_t shard = 0; shard < num_shards; ++shard) {
            Runtime& rt = runtime[shard];
            if (rt.state != State::kIdle) {
                continue;
            }
            if (!partitions[shard].empty()) {
                std::vector<WireJob> batch = std::move(partitions[shard]);
                partitions[shard].clear();
                send_run(shard, std::move(batch));
                progressed = true;
            } else if (!pending_requeue.empty() && !quorum_broken) {
                const uint64_t t0 = tracer.NowMicros();
                const size_t count = pending_requeue.size();
                std::vector<WireJob> batch = std::move(pending_requeue);
                pending_requeue.clear();
                send_run(shard, std::move(batch));
                tracer.RecordSpan("requeue_dispatch", "fault", t0,
                                  tracer.NowMicros() - t0,
                                  std::to_string(count) + " jobs -> shard " +
                                      std::to_string(shard));
                progressed = true;
            }
        }

        quorum_broken = live_shards < quorum;

        // Done once nothing is running, greeting, or pending respawn,
        // and the backlog is empty (or undispatchable: quorum broke).
        bool waiting = false;
        for (const Runtime& rt : runtime) {
            if (rt.state == State::kAwaitingHello ||
                rt.state == State::kBusy ||
                (rt.state == State::kDead && rt.respawn_scheduled)) {
                waiting = true;
                break;
            }
        }
        if (!waiting && (pending_requeue.empty() || quorum_broken)) {
            break;
        }
        if (!progressed) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(idle_sleep_ms));
        }
    }

    // Below-quorum leftovers become cancelled placeholders so every
    // global index still resolves — a degraded partial report, not an
    // error.
    for (const WireJob& job : pending_requeue) {
        service::JobResult placeholder;
        placeholder.job_index = job.job_index;
        placeholder.workload = job.spec.workload;
        placeholder.label = job.spec.label.empty() ? job.spec.workload
                                                   : job.spec.label;
        placeholder.status = service::JobStatus::kCancelled;
        placeholder.error = "insufficient live shards (" +
                            std::to_string(live_shards) + " < " +
                            std::to_string(quorum) + ")";
        placeholder.stop_source = "shard_death";
        placeholder.seed_used = job.spec.seed;
        record_result(std::move(placeholder));
    }
    // Defensive: any remaining hole (a worker under-reported its batch)
    // also fills in, rather than passing off a default-constructed
    // "completed" result as real.
    for (size_t index = 0; index < jobs.size(); ++index) {
        if (have_result[index]) {
            continue;
        }
        service::JobResult placeholder;
        placeholder.job_index = index;
        placeholder.workload = jobs[index].workload;
        placeholder.label = jobs[index].label.empty()
                                ? jobs[index].workload
                                : jobs[index].label;
        placeholder.status = service::JobStatus::kCancelled;
        placeholder.error = "lost to shard death";
        placeholder.stop_source = "shard_death";
        record_result(std::move(placeholder));
    }

    // Dead shards' retained gossip merges last: fingerprints only, so a
    // full entry reported by any survivor wins, and only discoveries
    // nobody re-ran land as placeholders. This is what keeps the merged
    // corpus key set equal to an undisturbed run's even when a shard
    // dies after finishing (but before reporting) some of its jobs.
    for (size_t shard = 0; shard < num_shards; ++shard) {
        Runtime& rt = runtime[shard];
        if (rt.state != State::kDead || rt.retained.entries.empty()) {
            continue;
        }
        const service::TestCorpus::MergeStats merge =
            corpus_.MergeFrom(rt.retained);
        shards_[shard].corpus_contributed += merge.inserted;
        shards_[shard].corpus_duplicate += merge.duplicates;
    }

    for (size_t shard = 0; shard < num_shards; ++shard) {
        if (runtime[shard].state != State::kDead) {
            runtime[shard].transport->Send(EncodeShutdown());
        }
    }

    // Merge per-shard totals into the batch view. Shards ran
    // concurrently: wall clock takes the max (the critical path), work
    // counters sum.
    for (const ShardOutcome& outcome : shards_) {
        const service::ServiceStats& s = outcome.stats;
        service::ServiceStats& m = merged_stats_;
        m.jobs_submitted += s.jobs_submitted;
        m.jobs_completed += s.jobs_completed;
        m.jobs_cancelled += s.jobs_cancelled;
        m.jobs_plateau_cancelled += s.jobs_plateau_cancelled;
        m.jobs_failed += s.jobs_failed;
        m.ll_paths += s.ll_paths;
        m.hl_paths += s.hl_paths;
        m.hangs += s.hangs;
        m.solver_queries += s.solver_queries;
        m.solver_sliced_queries += s.solver_sliced_queries;
        m.solver_incremental_sat_calls += s.solver_incremental_sat_calls;
        m.solver_clauses_loaded += s.solver_clauses_loaded;
        m.solver_seconds += s.solver_seconds;
        solver_seconds_max_shard_ =
            std::max(solver_seconds_max_shard_, s.solver_seconds);
        m.solver_cache_shared =
            m.solver_cache_shared || s.solver_cache_shared;
        m.shared_cache_hits += s.shared_cache_hits;
        m.shared_cache_misses += s.shared_cache_misses;
        m.shared_cache_inserts += s.shared_cache_inserts;
        m.shared_cache_evictions += s.shared_cache_evictions;
        m.shared_cache_model_hits += s.shared_cache_model_hits;
        m.shared_cache_bytes += s.shared_cache_bytes;
        m.shared_cache_entries += s.shared_cache_entries;
        m.engine_seconds += s.engine_seconds;
        m.wall_seconds = std::max(m.wall_seconds, s.wall_seconds);
        m.num_workers += s.num_workers;
        m.events_delivered += s.events_delivered;
        m.schedule_policy = s.schedule_policy;
        cross_shard_.remote_duplicate_hits += outcome.remote_duplicate_hits;
        cross_shard_.jobs_suppressed += s.jobs_plateau_cancelled;
    }

    // The coordinator's own counters join the cluster view (all zero in
    // a fault-free run — cheap, and the report schema stays uniform).
    coordinator_telemetry_ = metrics.Snapshot();
    cluster_telemetry_.MergeFrom(coordinator_telemetry_);
    {
        std::vector<obs::TraceEvent> own = tracer.TakeEvents();
        trace_events_.insert(trace_events_.end(), own.begin(), own.end());
    }

    merged_stats_.corpus_size = corpus_.size();
    wall_seconds_ = SecondsSince(start);
    merged_stats_.jobs_per_second =
        merged_stats_.wall_seconds > 0.0
            ? static_cast<double>(merged_stats_.jobs_completed) /
                  merged_stats_.wall_seconds
            : 0.0;
    return true;
}

obs::AttributionSnapshot
ShardCoordinator::ClusterAttribution() const
{
    obs::AttributionSnapshot cluster;
    for (const ShardOutcome& shard : shards_) {
        cluster.MergeFrom(shard.attribution);
    }
    return cluster;
}

std::string
ShardCoordinator::RenderMergedReport(
    const service::ReportOptions& options) const
{
    support::JsonWriter json;
    json.BeginObject();
    json.Key("report"), json.Value("chef-shard-coordinator");
    json.Key("protocol_version"), json.Value(kProtocolVersion);
    json.Key("protocol_minor"), json.Value(kProtocolVersionMinor);
    json.Key("num_shards"), json.Value(shards_.size());
    json.Key("gossip_enabled"), json.Value(options_.gossip);
    // True when any shard died mid-batch: results may mix reruns,
    // heartbeat-streamed entries, and (below quorum) cancelled
    // placeholders. The "fault" section and per-shard death causes say
    // why.
    json.Key("degraded"), json.Value(degraded_);
    json.Key("coordinator_wall_seconds"), json.Value(wall_seconds_);
    // Two labeled views of solver time, because shards run concurrently:
    // the total is aggregate solver work across the cluster (it grows
    // with shard count), the max is the largest single shard's share —
    // the one comparable against a single service's solver_seconds.
    // merged.stats.solver_seconds equals the total.
    json.Key("solver_seconds_total"),
        json.Value(merged_stats_.solver_seconds);
    json.Key("solver_seconds_max_shard"),
        json.Value(solver_seconds_max_shard_);
    json.Key("fault");
    json.BeginObject();
    json.Key("deaths"), json.Value(fault_.deaths);
    json.Key("jobs_requeued"), json.Value(fault_.jobs_requeued);
    json.Key("heartbeats_missed"), json.Value(fault_.heartbeats_missed);
    json.Key("respawns"), json.Value(fault_.respawns);
    json.EndObject();
    json.Key("cross_shard");
    json.BeginObject();
    json.Key("gossip_messages"), json.Value(cross_shard_.gossip_messages);
    json.Key("fingerprints_gossiped"),
        json.Value(cross_shard_.fingerprints_gossiped);
    json.Key("remote_duplicate_hits"),
        json.Value(cross_shard_.remote_duplicate_hits);
    json.Key("jobs_suppressed"), json.Value(cross_shard_.jobs_suppressed);
    json.Key("merge_duplicates"),
        json.Value(cross_shard_.merge_duplicates);
    json.EndObject();
    json.Key("shards");
    json.BeginArray();
    for (const ShardOutcome& shard : shards_) {
        json.BeginObject();
        json.Key("shard_id"), json.Value(shard.shard_id);
        json.Key("jobs_assigned"), json.Value(shard.jobs_assigned);
        json.Key("dead"), json.Value(shard.dead);
        json.Key("death_cause"), json.Value(shard.death_cause);
        json.Key("respawns"), json.Value(shard.respawns);
        json.Key("jobs_requeued"), json.Value(shard.jobs_requeued);
        json.Key("remote_entries"), json.Value(shard.remote_entries);
        json.Key("remote_duplicate_hits"),
            json.Value(shard.remote_duplicate_hits);
        json.Key("corpus_contributed"),
            json.Value(shard.corpus_contributed);
        json.Key("corpus_duplicate"), json.Value(shard.corpus_duplicate);
        json.Key("stats");
        service::WriteServiceStats(json, shard.stats);
        json.EndObject();
    }
    json.EndArray();
    // Cluster telemetry: per-shard metrics snapshots (final, or the
    // latest gossiped one for a shard that never reported) plus their
    // merge. Schema per snapshot: obs::WriteMetricsSnapshot.
    json.Key("telemetry");
    json.BeginObject();
    json.Key("shards");
    json.BeginArray();
    for (const ShardOutcome& shard : shards_) {
        json.BeginObject();
        json.Key("shard_id"), json.Value(shard.shard_id);
        json.Key("metrics");
        obs::WriteMetricsSnapshot(json, shard.telemetry);
        json.EndObject();
    }
    json.EndArray();
    // The coordinator's own fault counters (shard.deaths_total & co.),
    // also merged into "cluster".
    json.Key("coordinator");
    obs::WriteMetricsSnapshot(json, coordinator_telemetry_);
    json.Key("cluster");
    obs::WriteMetricsSnapshot(json, cluster_telemetry_);
    // Per-location attribution: each shard's latest table plus the
    // order-independent cluster fold. Schema per table:
    // obs::WriteAttributionSnapshot. Tables are empty (no workloads)
    // when the run disabled attribution.
    json.Key("attribution");
    json.BeginObject();
    json.Key("shards");
    json.BeginArray();
    for (const ShardOutcome& shard : shards_) {
        json.BeginObject();
        json.Key("shard_id"), json.Value(shard.shard_id);
        json.Key("table");
        obs::WriteAttributionSnapshot(json, shard.attribution);
        json.EndObject();
    }
    json.EndArray();
    json.Key("cluster");
    obs::WriteAttributionSnapshot(json, ClusterAttribution());
    json.EndObject();
    json.Key("trace_events"), json.Value(trace_events_.size());
    // Time-series summary: how many samples each shard shipped, plus
    // the merged coverage/progress curves as [t_seconds, value] pairs.
    // The full per-sample dump is available via RenderClusterSeriesJson
    // (chef_shard --series-out); the report keeps the bounded view.
    json.Key("series");
    json.BeginObject();
    json.Key("samples_per_source");
    json.BeginObject();
    for (const std::string& source : cluster_series_.Sources()) {
        const std::vector<obs::SeriesSample>* samples =
            cluster_series_.SeriesFor(source);
        json.Key(source.c_str());
        json.Value(samples != nullptr ? samples->size() : 0);
    }
    json.EndObject();
    json.Key("curves");
    json.BeginObject();
    {
        // Every fingerprint/jobs counter the merged view knows about:
        // the unsuffixed cluster totals and each per-workload variant.
        const obs::MetricsSnapshot merged = cluster_series_.MergedLatest();
        const std::string fp_prefix = obs::kFingerprintsNewCounter;
        const std::string jobs_prefix = obs::kJobsFinishedCounter;
        for (const auto& [name, value] : merged.counters) {
            (void)value;
            const bool curve_counter =
                name == fp_prefix || name == jobs_prefix ||
                name.compare(0, fp_prefix.size() + 1, fp_prefix + ".") ==
                    0 ||
                name.compare(0, jobs_prefix.size() + 1,
                             jobs_prefix + ".") == 0;
            if (!curve_counter) {
                continue;
            }
            json.Key(name.c_str());
            json.BeginArray();
            for (const auto& [t, v] :
                 cluster_series_.MergedCounterCurve(name)) {
                json.BeginArray();
                json.Value(t);
                json.Value(v);
                json.EndArray();
            }
            json.EndArray();
        }
    }
    json.EndObject();
    json.EndObject();
    json.EndObject();
    // The merged view reuses the single-service report schema verbatim,
    // so existing report consumers can read a sharded batch by looking
    // one key deeper.
    json.Key("merged");
    json.RawValue(
        service::RenderJsonReport(merged_stats_, results_, corpus_,
                                  options));
    json.EndObject();
    return json.Take();
}

bool
RunLoopbackShards(ShardCoordinator* coordinator,
                  const std::vector<service::JobSpec>& jobs,
                  size_t num_shards, std::string* error)
{
    if (num_shards == 0) {
        return Fail(error, "num_shards must be >= 1");
    }
    std::vector<LoopbackPair> pairs;
    std::vector<Transport*> coordinator_side;
    pairs.reserve(num_shards);
    for (size_t shard = 0; shard < num_shards; ++shard) {
        pairs.push_back(CreateLoopbackPair());
        coordinator_side.push_back(pairs.back().a.get());
    }
    std::vector<std::thread> workers;
    workers.reserve(num_shards);
    for (size_t shard = 0; shard < num_shards; ++shard) {
        Transport* endpoint = pairs[shard].b.get();
        workers.emplace_back([endpoint] {
            ShardWorker worker(ShardWorker::Options{}, endpoint);
            worker.Serve();
        });
    }
    const bool ok = coordinator->Run(jobs, coordinator_side, error);
    for (size_t shard = 0; shard < num_shards; ++shard) {
        // Shutdown was sent on success; closing unblocks workers in
        // every case.
        pairs[shard].a->Close();
    }
    for (std::thread& worker : workers) {
        worker.join();
    }
    return ok;
}

}  // namespace chef::shard
