#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "service/service.h"
#include "shard/worker.h"
#include "support/json.h"

namespace chef::shard {

namespace {

using Clock = std::chrono::steady_clock;

double
SecondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

bool
Fail(std::string* error, const std::string& reason)
{
    if (error != nullptr) {
        *error = reason;
    }
    return false;
}

}  // namespace

ShardCoordinator::ShardCoordinator(Options options)
    : options_(std::move(options))
{
}

bool
ShardCoordinator::Run(const std::vector<service::JobSpec>& jobs,
                      const std::vector<Transport*>& transports,
                      std::string* error)
{
    const auto start = Clock::now();
    const size_t num_shards = transports.size();
    if (num_shards == 0) {
        return Fail(error, "no shard transports");
    }

    // Reject non-serializable specs up front, before any shard has been
    // asked to do anything — a clear error at submit beats a worker
    // silently running a spec with its callbacks dropped.
    for (const service::JobSpec& spec : jobs) {
        std::string why;
        if (!CheckSerializable(spec, &why)) {
            return Fail(error, why);
        }
    }

    results_.clear();
    results_.resize(jobs.size());
    corpus_.Clear();
    shards_.clear();
    shards_.resize(num_shards);
    cross_shard_ = CrossShardStats{};
    merged_stats_ = service::ServiceStats{};
    cluster_telemetry_ = obs::MetricsSnapshot{};
    cluster_series_.Clear();
    trace_events_.clear();
    solver_seconds_max_shard_ = 0.0;

    // Wait for every worker's hello (and check protocol versions) so a
    // dead subprocess is caught before the batch is partitioned.
    for (size_t shard = 0; shard < num_shards; ++shard) {
        const auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options_.hello_timeout_seconds));
        bool greeted = false;
        while (!greeted) {
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (remaining <= 0) {
                return Fail(error, "shard " + std::to_string(shard) +
                                       ": no hello before timeout");
            }
            std::string line;
            const Transport::RecvStatus status =
                transports[shard]->Receive(&line,
                                           static_cast<int>(remaining));
            if (status == Transport::RecvStatus::kClosed) {
                return Fail(error, "shard " + std::to_string(shard) +
                                       ": transport closed before hello");
            }
            if (status != Transport::RecvStatus::kMessage) {
                continue;
            }
            Message message;
            std::string decode_error;
            if (!DecodeMessage(line, &message, &decode_error)) {
                return Fail(error, "shard " + std::to_string(shard) +
                                       ": " + decode_error);
            }
            if (message.type == MessageType::kError) {
                return Fail(error, "shard " + std::to_string(shard) +
                                       ": " + message.error);
            }
            if (message.type != MessageType::kHello) {
                continue;  // Stale gossip from a previous batch.
            }
            if (message.protocol_version != kProtocolVersion) {
                return Fail(
                    error,
                    "shard " + std::to_string(shard) +
                        ": protocol version " +
                        std::to_string(message.protocol_version) +
                        " != " + std::to_string(kProtocolVersion));
            }
            greeted = true;
        }
    }

    // Partition round-robin by global index, deriving each job's seed
    // from that index so the partition cannot change per-job sessions.
    std::vector<RunRequest> requests(num_shards);
    for (size_t shard = 0; shard < num_shards; ++shard) {
        requests[shard].shard_id = shard;
        requests[shard].num_shards = num_shards;
        requests[shard].service = options_.service;
    }
    for (size_t index = 0; index < jobs.size(); ++index) {
        WireJob job;
        job.job_index = index;
        job.spec = jobs[index];
        if (!job.spec.exact_seed) {
            job.spec.seed = service::ExplorationService::DeriveJobSeed(
                options_.service.seed, index, job.spec.seed);
            job.spec.exact_seed = true;
        }
        const size_t shard = ShardFor(index, num_shards);
        requests[shard].jobs.push_back(std::move(job));
        ++shards_[shard].jobs_assigned;
    }
    for (size_t shard = 0; shard < num_shards; ++shard) {
        shards_[shard].shard_id = shard;
        if (!transports[shard]->Send(EncodeRun(requests[shard]))) {
            return Fail(error, "shard " + std::to_string(shard) +
                                   ": send failed");
        }
    }

    // Multiplex loop: forward gossip, collect results. Each sweep polls
    // every shard without blocking (a blocking per-shard receive would
    // serialize forwarding: a delta on the last shard's pipe would wait
    // out every earlier shard's timeout); one idle sleep per quiet
    // sweep bounds the spin instead.
    std::vector<bool> reported(num_shards, false);
    std::vector<ResultMessage> shard_results(num_shards);
    size_t outstanding = num_shards;
    while (outstanding > 0) {
        bool progressed = false;
        for (size_t shard = 0; shard < num_shards; ++shard) {
            if (reported[shard]) {
                continue;
            }
            std::string line;
            const Transport::RecvStatus status =
                transports[shard]->Receive(&line, /*timeout_ms=*/0);
            if (status == Transport::RecvStatus::kClosed) {
                return Fail(error, "shard " + std::to_string(shard) +
                                       ": died before reporting");
            }
            if (status != Transport::RecvStatus::kMessage) {
                continue;
            }
            progressed = true;
            Message message;
            std::string decode_error;
            if (!DecodeMessage(line, &message, &decode_error)) {
                return Fail(error, "shard " + std::to_string(shard) +
                                       ": " + decode_error);
            }
            switch (message.type) {
              case MessageType::kGossip: {
                // Telemetry piggybacked on the delta keeps the cluster
                // view live mid-batch; it is coordinator-local and never
                // forwarded to sibling shards.
                if (message.has_telemetry) {
                    shards_[shard].telemetry = std::move(message.telemetry);
                }
                if (!message.series.empty() &&
                    cluster_series_.Update("shard" + std::to_string(shard),
                                           message.series) > 0 &&
                    options_.on_series_update) {
                    options_.on_series_update(shard);
                }
                if (!options_.gossip) {
                    break;
                }
                ++cross_shard_.gossip_messages;
                cross_shard_.fingerprints_gossiped +=
                    message.gossip.entries.size();
                // Forward verbatim: receivers key remote state by
                // delta.source, so rebroadcast order cannot skew the
                // merged view. The producing shard never sees its own
                // delta back.
                const std::string line_out = EncodeGossip(message.gossip);
                for (size_t other = 0; other < num_shards; ++other) {
                    if (other != shard && !reported[other]) {
                        transports[other]->Send(line_out);
                    }
                }
                break;
              }
              case MessageType::kResult:
                // The result's series tail closes the shard's curve at
                // its final counter totals.
                if (!message.result.series.empty() &&
                    cluster_series_.Update("shard" + std::to_string(shard),
                                           message.result.series) > 0 &&
                    options_.on_series_update) {
                    options_.on_series_update(shard);
                }
                shard_results[shard] = std::move(message.result);
                reported[shard] = true;
                --outstanding;
                break;
              case MessageType::kError:
                return Fail(error, "shard " + std::to_string(shard) +
                                       ": " + message.error);
              default:
                break;
            }
        }
        if (!progressed && outstanding > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(options_.poll_timeout_ms));
        }
    }

    for (size_t shard = 0; shard < num_shards; ++shard) {
        transports[shard]->Send(EncodeShutdown());
    }

    // Merge: results under global indices, corpora deduplicated, stats
    // summed (wall clock is the critical path, not a sum — shards ran
    // concurrently).
    for (size_t shard = 0; shard < num_shards; ++shard) {
        const ResultMessage& result = shard_results[shard];
        ShardOutcome& outcome = shards_[shard];
        outcome.stats = result.stats;
        outcome.remote_entries = result.remote_entries;
        outcome.remote_duplicate_hits = result.remote_duplicate_hits;
        // The final snapshot supersedes whatever gossip delivered live;
        // the cluster view merges finals only, so every shard weighs in
        // exactly once.
        outcome.telemetry = result.telemetry;
        cluster_telemetry_.MergeFrom(result.telemetry);
        trace_events_.insert(trace_events_.end(), result.trace.begin(),
                             result.trace.end());
        cross_shard_.remote_duplicate_hits += result.remote_duplicate_hits;
        cross_shard_.jobs_suppressed += result.stats.jobs_plateau_cancelled;
        for (const service::JobResult& job : result.results) {
            if (job.job_index >= results_.size()) {
                return Fail(error,
                            "shard " + std::to_string(shard) +
                                ": result for unknown job index " +
                                std::to_string(job.job_index));
            }
            results_[job.job_index] = job;
        }
        const service::TestCorpus::MergeStats merge =
            corpus_.MergeFrom(result.corpus);
        outcome.corpus_contributed = merge.inserted;
        outcome.corpus_duplicate = merge.duplicates;
        cross_shard_.merge_duplicates += merge.duplicates;

        service::ServiceStats& m = merged_stats_;
        const service::ServiceStats& s = result.stats;
        m.jobs_submitted += s.jobs_submitted;
        m.jobs_completed += s.jobs_completed;
        m.jobs_cancelled += s.jobs_cancelled;
        m.jobs_plateau_cancelled += s.jobs_plateau_cancelled;
        m.jobs_failed += s.jobs_failed;
        m.ll_paths += s.ll_paths;
        m.hl_paths += s.hl_paths;
        m.hangs += s.hangs;
        m.solver_queries += s.solver_queries;
        m.solver_sliced_queries += s.solver_sliced_queries;
        m.solver_incremental_sat_calls += s.solver_incremental_sat_calls;
        m.solver_clauses_loaded += s.solver_clauses_loaded;
        m.solver_seconds += s.solver_seconds;
        solver_seconds_max_shard_ =
            std::max(solver_seconds_max_shard_, s.solver_seconds);
        m.solver_cache_shared =
            m.solver_cache_shared || s.solver_cache_shared;
        m.shared_cache_hits += s.shared_cache_hits;
        m.shared_cache_misses += s.shared_cache_misses;
        m.shared_cache_inserts += s.shared_cache_inserts;
        m.shared_cache_evictions += s.shared_cache_evictions;
        m.shared_cache_model_hits += s.shared_cache_model_hits;
        m.shared_cache_bytes += s.shared_cache_bytes;
        m.shared_cache_entries += s.shared_cache_entries;
        m.engine_seconds += s.engine_seconds;
        m.wall_seconds = std::max(m.wall_seconds, s.wall_seconds);
        m.num_workers += s.num_workers;
        m.events_delivered += s.events_delivered;
        m.schedule_policy = s.schedule_policy;
    }
    merged_stats_.corpus_size = corpus_.size();
    wall_seconds_ = SecondsSince(start);
    merged_stats_.jobs_per_second =
        merged_stats_.wall_seconds > 0.0
            ? static_cast<double>(merged_stats_.jobs_completed) /
                  merged_stats_.wall_seconds
            : 0.0;
    return true;
}

std::string
ShardCoordinator::RenderMergedReport(
    const service::ReportOptions& options) const
{
    support::JsonWriter json;
    json.BeginObject();
    json.Key("report"), json.Value("chef-shard-coordinator");
    json.Key("protocol_version"), json.Value(kProtocolVersion);
    json.Key("protocol_minor"), json.Value(kProtocolVersionMinor);
    json.Key("num_shards"), json.Value(shards_.size());
    json.Key("gossip_enabled"), json.Value(options_.gossip);
    json.Key("coordinator_wall_seconds"), json.Value(wall_seconds_);
    // Two labeled views of solver time, because shards run concurrently:
    // the total is aggregate solver work across the cluster (it grows
    // with shard count), the max is the largest single shard's share —
    // the one comparable against a single service's solver_seconds.
    // merged.stats.solver_seconds equals the total.
    json.Key("solver_seconds_total"),
        json.Value(merged_stats_.solver_seconds);
    json.Key("solver_seconds_max_shard"),
        json.Value(solver_seconds_max_shard_);
    json.Key("cross_shard");
    json.BeginObject();
    json.Key("gossip_messages"), json.Value(cross_shard_.gossip_messages);
    json.Key("fingerprints_gossiped"),
        json.Value(cross_shard_.fingerprints_gossiped);
    json.Key("remote_duplicate_hits"),
        json.Value(cross_shard_.remote_duplicate_hits);
    json.Key("jobs_suppressed"), json.Value(cross_shard_.jobs_suppressed);
    json.Key("merge_duplicates"),
        json.Value(cross_shard_.merge_duplicates);
    json.EndObject();
    json.Key("shards");
    json.BeginArray();
    for (const ShardOutcome& shard : shards_) {
        json.BeginObject();
        json.Key("shard_id"), json.Value(shard.shard_id);
        json.Key("jobs_assigned"), json.Value(shard.jobs_assigned);
        json.Key("remote_entries"), json.Value(shard.remote_entries);
        json.Key("remote_duplicate_hits"),
            json.Value(shard.remote_duplicate_hits);
        json.Key("corpus_contributed"),
            json.Value(shard.corpus_contributed);
        json.Key("corpus_duplicate"), json.Value(shard.corpus_duplicate);
        json.Key("stats");
        service::WriteServiceStats(json, shard.stats);
        json.EndObject();
    }
    json.EndArray();
    // Cluster telemetry: per-shard metrics snapshots (final, or the
    // latest gossiped one for a shard that never reported) plus their
    // merge. Schema per snapshot: obs::WriteMetricsSnapshot.
    json.Key("telemetry");
    json.BeginObject();
    json.Key("shards");
    json.BeginArray();
    for (const ShardOutcome& shard : shards_) {
        json.BeginObject();
        json.Key("shard_id"), json.Value(shard.shard_id);
        json.Key("metrics");
        obs::WriteMetricsSnapshot(json, shard.telemetry);
        json.EndObject();
    }
    json.EndArray();
    json.Key("cluster");
    obs::WriteMetricsSnapshot(json, cluster_telemetry_);
    json.Key("trace_events"), json.Value(trace_events_.size());
    // Time-series summary: how many samples each shard shipped, plus
    // the merged coverage/progress curves as [t_seconds, value] pairs.
    // The full per-sample dump is available via RenderClusterSeriesJson
    // (chef_shard --series-out); the report keeps the bounded view.
    json.Key("series");
    json.BeginObject();
    json.Key("samples_per_source");
    json.BeginObject();
    for (const std::string& source : cluster_series_.Sources()) {
        const std::vector<obs::SeriesSample>* samples =
            cluster_series_.SeriesFor(source);
        json.Key(source.c_str());
        json.Value(samples != nullptr ? samples->size() : 0);
    }
    json.EndObject();
    json.Key("curves");
    json.BeginObject();
    {
        // Every fingerprint/jobs counter the merged view knows about:
        // the unsuffixed cluster totals and each per-workload variant.
        const obs::MetricsSnapshot merged = cluster_series_.MergedLatest();
        const std::string fp_prefix = obs::kFingerprintsNewCounter;
        const std::string jobs_prefix = obs::kJobsFinishedCounter;
        for (const auto& [name, value] : merged.counters) {
            (void)value;
            const bool curve_counter =
                name == fp_prefix || name == jobs_prefix ||
                name.compare(0, fp_prefix.size() + 1, fp_prefix + ".") ==
                    0 ||
                name.compare(0, jobs_prefix.size() + 1,
                             jobs_prefix + ".") == 0;
            if (!curve_counter) {
                continue;
            }
            json.Key(name.c_str());
            json.BeginArray();
            for (const auto& [t, v] :
                 cluster_series_.MergedCounterCurve(name)) {
                json.BeginArray();
                json.Value(t);
                json.Value(v);
                json.EndArray();
            }
            json.EndArray();
        }
    }
    json.EndObject();
    json.EndObject();
    json.EndObject();
    // The merged view reuses the single-service report schema verbatim,
    // so existing report consumers can read a sharded batch by looking
    // one key deeper.
    json.Key("merged");
    json.RawValue(
        service::RenderJsonReport(merged_stats_, results_, corpus_,
                                  options));
    json.EndObject();
    return json.Take();
}

bool
RunLoopbackShards(ShardCoordinator* coordinator,
                  const std::vector<service::JobSpec>& jobs,
                  size_t num_shards, std::string* error)
{
    if (num_shards == 0) {
        return Fail(error, "num_shards must be >= 1");
    }
    std::vector<LoopbackPair> pairs;
    std::vector<Transport*> coordinator_side;
    pairs.reserve(num_shards);
    for (size_t shard = 0; shard < num_shards; ++shard) {
        pairs.push_back(CreateLoopbackPair());
        coordinator_side.push_back(pairs.back().a.get());
    }
    std::vector<std::thread> workers;
    workers.reserve(num_shards);
    for (size_t shard = 0; shard < num_shards; ++shard) {
        Transport* endpoint = pairs[shard].b.get();
        workers.emplace_back([endpoint] {
            ShardWorker worker(ShardWorker::Options{}, endpoint);
            worker.Serve();
        });
    }
    const bool ok = coordinator->Run(jobs, coordinator_side, error);
    for (size_t shard = 0; shard < num_shards; ++shard) {
        // Shutdown was sent on success; closing unblocks workers in
        // every case.
        pairs[shard].a->Close();
    }
    for (std::thread& worker : workers) {
        worker.join();
    }
    return ok;
}

}  // namespace chef::shard
