#include "shard/transport.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace chef::shard {

namespace {

// ---------------------------------------------------------------------------
// Loopback.
// ---------------------------------------------------------------------------

/// One direction of a loopback pair. Closed is sticky; queued messages
/// drain before kClosed is reported, matching fd EOF semantics.
struct Channel {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::string> queue;
    bool closed = false;
};

class LoopbackEndpoint : public Transport
{
  public:
    LoopbackEndpoint(std::shared_ptr<Channel> out,
                     std::shared_ptr<Channel> in)
        : out_(std::move(out)), in_(std::move(in))
    {
    }

    ~LoopbackEndpoint() override { Close(); }

    bool Send(const std::string& message) override
    {
        {
            std::lock_guard<std::mutex> lock(out_->mutex);
            if (out_->closed) {
                return false;
            }
            out_->queue.push_back(message);
        }
        out_->cv.notify_one();
        return true;
    }

    RecvStatus Receive(std::string* message, int timeout_ms) override
    {
        std::unique_lock<std::mutex> lock(in_->mutex);
        const auto ready = [this] {
            return !in_->queue.empty() || in_->closed;
        };
        if (timeout_ms < 0) {
            in_->cv.wait(lock, ready);
        } else if (!in_->cv.wait_for(
                       lock, std::chrono::milliseconds(timeout_ms),
                       ready)) {
            return RecvStatus::kTimeout;
        }
        if (in_->queue.empty()) {
            return RecvStatus::kClosed;
        }
        *message = std::move(in_->queue.front());
        in_->queue.pop_front();
        return RecvStatus::kMessage;
    }

    void Close() override
    {
        for (const std::shared_ptr<Channel>& channel : {out_, in_}) {
            {
                std::lock_guard<std::mutex> lock(channel->mutex);
                channel->closed = true;
            }
            channel->cv.notify_all();
        }
    }

  private:
    std::shared_ptr<Channel> out_;
    std::shared_ptr<Channel> in_;
};

// ---------------------------------------------------------------------------
// Fd transport.
// ---------------------------------------------------------------------------

void
IgnoreSigpipeOnce()
{
    // A peer process dying mid-write must surface as EPIPE from
    // write(2), not terminate us.
    static const bool ignored = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)ignored;
}

class FdTransport : public Transport
{
  public:
    FdTransport(int read_fd, int write_fd, bool owns_fds)
        : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds)
    {
        IgnoreSigpipeOnce();
    }

    ~FdTransport() override { Close(); }

    bool Send(const std::string& message) override
    {
        std::lock_guard<std::mutex> lock(write_mutex_);
        if (write_fd_ < 0) {
            return false;
        }
        std::string line = message;
        line += '\n';
        size_t written = 0;
        while (written < line.size()) {
            const ssize_t n = ::write(write_fd_, line.data() + written,
                                      line.size() - written);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                return false;  // EPIPE: peer gone.
            }
            written += static_cast<size_t>(n);
        }
        return true;
    }

    RecvStatus Receive(std::string* message, int timeout_ms) override
    {
        std::lock_guard<std::mutex> lock(read_mutex_);
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
        bool polled = false;
        for (;;) {
            // Serve from the buffer first: poll() must not be consulted
            // while a complete line is already in hand.
            const size_t newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                message->assign(buffer_, 0, newline);
                buffer_.erase(0, newline + 1);
                return RecvStatus::kMessage;
            }
            if (eof_) {
                // A partial trailing line is a truncated stream, not a
                // message; drop it and report closed.
                return RecvStatus::kClosed;
            }
            int wait_ms = -1;
            if (timeout_ms >= 0) {
                const auto remaining =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
                // timeout_ms == 0 is a non-blocking probe: the fd must
                // still be polled (with a zero wait) at least once, or
                // pending bytes would never be read.
                if (remaining <= 0 && polled) {
                    return RecvStatus::kTimeout;
                }
                wait_ms = remaining > 0 ? static_cast<int>(remaining) : 0;
            }
            polled = true;
            struct pollfd pfd;
            pfd.fd = read_fd_;
            pfd.events = POLLIN;
            pfd.revents = 0;
            const int ready = ::poll(&pfd, 1, wait_ms);
            if (ready < 0) {
                if (errno == EINTR) {
                    continue;
                }
                eof_ = true;
                continue;
            }
            if (ready == 0) {
                return RecvStatus::kTimeout;
            }
            char chunk[4096];
            const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                eof_ = true;
            } else if (n == 0) {
                eof_ = true;
            } else {
                buffer_.append(chunk, static_cast<size_t>(n));
            }
        }
    }

    void Close() override
    {
        std::lock_guard<std::mutex> read_lock(read_mutex_);
        std::lock_guard<std::mutex> write_lock(write_mutex_);
        if (owns_fds_) {
            if (read_fd_ >= 0) {
                ::close(read_fd_);
            }
            if (write_fd_ >= 0 && write_fd_ != read_fd_) {
                ::close(write_fd_);
            }
        }
        read_fd_ = -1;
        write_fd_ = -1;
        eof_ = true;
    }

  private:
    std::mutex read_mutex_;
    std::mutex write_mutex_;
    int read_fd_;
    int write_fd_;
    bool owns_fds_;
    std::string buffer_;
    bool eof_ = false;
};

}  // namespace

LoopbackPair
CreateLoopbackPair()
{
    auto forward = std::make_shared<Channel>();
    auto backward = std::make_shared<Channel>();
    LoopbackPair pair;
    pair.a = std::make_unique<LoopbackEndpoint>(forward, backward);
    pair.b = std::make_unique<LoopbackEndpoint>(backward, forward);
    return pair;
}

std::unique_ptr<Transport>
CreateFdTransport(int read_fd, int write_fd, bool owns_fds)
{
    return std::make_unique<FdTransport>(read_fd, write_fd, owns_fds);
}

bool
SpawnWorkerProcess(const std::string& binary,
                   const std::vector<std::string>& args,
                   WorkerProcess* process, std::string* error)
{
    IgnoreSigpipeOnce();
    int to_child[2];    // coordinator writes -> child stdin.
    int from_child[2];  // child stdout -> coordinator reads.
    if (::pipe(to_child) != 0) {
        if (error != nullptr) {
            *error = std::string("pipe: ") + std::strerror(errno);
        }
        return false;
    }
    if (::pipe(from_child) != 0) {
        if (error != nullptr) {
            *error = std::string("pipe: ") + std::strerror(errno);
        }
        ::close(to_child[0]), ::close(to_child[1]);
        return false;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        if (error != nullptr) {
            *error = std::string("fork: ") + std::strerror(errno);
        }
        ::close(to_child[0]), ::close(to_child[1]);
        ::close(from_child[0]), ::close(from_child[1]);
        return false;
    }

    if (pid == 0) {
        // Child: protocol on stdin/stdout, stderr passes through.
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        ::close(to_child[0]), ::close(to_child[1]);
        ::close(from_child[0]), ::close(from_child[1]);
        std::vector<char*> argv;
        std::string argv0 = binary;
        argv.push_back(argv0.data());
        std::vector<std::string> owned = args;
        for (std::string& arg : owned) {
            argv.push_back(arg.data());
        }
        argv.push_back(nullptr);
        ::execv(binary.c_str(), argv.data());
        // exec failed: nothing sane to do but exit; the parent sees the
        // transport close without a hello.
        std::fprintf(stderr, "chef_shard: execv %s: %s\n", binary.c_str(),
                     std::strerror(errno));
        ::_exit(127);
    }

    ::close(to_child[0]);
    ::close(from_child[1]);
    process->pid = pid;
    process->transport =
        CreateFdTransport(from_child[0], to_child[1], /*owns_fds=*/true);
    return true;
}

bool
ProbeWorkerProcess(pid_t pid, std::string* cause)
{
    int status = 0;
    for (;;) {
        const pid_t waited = ::waitpid(pid, &status, WNOHANG);
        if (waited == 0) {
            return true;  // Still running.
        }
        if (waited < 0) {
            if (errno == EINTR) {
                continue;
            }
            // ECHILD: already reaped (a prior probe or wait saw it die).
            if (cause != nullptr) {
                *cause = std::string("waitpid: ") + std::strerror(errno);
            }
            return false;
        }
        break;
    }
    if (cause != nullptr) {
        if (WIFEXITED(status)) {
            *cause = "exited with status " +
                     std::to_string(WEXITSTATUS(status));
        } else if (WIFSIGNALED(status)) {
            *cause =
                "killed by signal " + std::to_string(WTERMSIG(status));
        } else {
            *cause = "terminated abnormally";
        }
    }
    return false;
}

int
WaitWorkerProcess(pid_t pid)
{
    int status = 0;
    for (;;) {
        const pid_t waited = ::waitpid(pid, &status, 0);
        if (waited < 0) {
            if (errno == EINTR) {
                continue;
            }
            return -1;
        }
        break;
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

}  // namespace chef::shard
