#include "shard/wire.h"

#include <utility>

#include "obs/timeseries.h"
#include "service/report.h"
#include "support/json.h"

namespace chef::shard {

namespace {

using service::JobResult;
using service::JobSpec;
using service::JobStatus;
using service::PlateauPolicy;
using service::SchedulePolicy;
using service::ServiceStats;
using service::TestCorpus;
using support::JsonValue;
using support::JsonWriter;

bool
DecodeFail(std::string* error, const std::string& reason)
{
    if (error != nullptr) {
        *error = reason;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Enum name round-trips. The canonical names come from the existing
// *Name() functions; these are the reverse maps.
// ---------------------------------------------------------------------------

bool
StrategyFromName(const std::string& name, StrategyKind* kind)
{
    static const StrategyKind kAll[] = {
        StrategyKind::kRandom,        StrategyKind::kDfs,
        StrategyKind::kBfs,           StrategyKind::kCupaPath,
        StrategyKind::kCupaCoverage,  StrategyKind::kCupaPathInverted,
    };
    for (const StrategyKind candidate : kAll) {
        if (name == StrategyKindName(candidate)) {
            *kind = candidate;
            return true;
        }
    }
    return false;
}

bool
SchedulePolicyFromName(const std::string& name, SchedulePolicy* policy)
{
    for (const SchedulePolicy candidate :
         {SchedulePolicy::kFifo, SchedulePolicy::kYieldPriority}) {
        if (name == SchedulePolicyName(candidate)) {
            *policy = candidate;
            return true;
        }
    }
    return false;
}

bool
JobStatusFromName(const std::string& name, JobStatus* status)
{
    for (const JobStatus candidate :
         {JobStatus::kCompleted, JobStatus::kCancelled,
          JobStatus::kFailed}) {
        if (name == JobStatusName(candidate)) {
            *status = candidate;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Typed field readers: decoding fails loudly on missing or mistyped
// fields rather than defaulting, so a schema drift between coordinator
// and worker binaries surfaces as a protocol error, not skewed results.
// ---------------------------------------------------------------------------

bool
ReadU64(const JsonValue& object, const char* key, uint64_t* out,
        std::string* error)
{
    if (!object.GetUint64(key, out)) {
        return DecodeFail(error, std::string("missing or invalid '") +
                                     key + "'");
    }
    return true;
}

bool
ReadSize(const JsonValue& object, const char* key, size_t* out,
         std::string* error)
{
    uint64_t value = 0;
    if (!ReadU64(object, key, &value, error)) {
        return false;
    }
    *out = static_cast<size_t>(value);
    return true;
}

bool
ReadDouble(const JsonValue& object, const char* key, double* out,
           std::string* error)
{
    if (!object.GetDouble(key, out)) {
        return DecodeFail(error, std::string("missing or invalid '") +
                                     key + "'");
    }
    return true;
}

bool
ReadBool(const JsonValue& object, const char* key, bool* out,
         std::string* error)
{
    if (!object.GetBool(key, out)) {
        return DecodeFail(error, std::string("missing or invalid '") +
                                     key + "'");
    }
    return true;
}

bool
ReadString(const JsonValue& object, const char* key, std::string* out,
           std::string* error)
{
    if (!object.GetString(key, out)) {
        return DecodeFail(error, std::string("missing or invalid '") +
                                     key + "'");
    }
    return true;
}

// ---------------------------------------------------------------------------
// JobSpec.
// ---------------------------------------------------------------------------

void
WriteJobSpec(JsonWriter& json, const JobSpec& spec)
{
    json.BeginObject();
    json.Key("workload"), json.Value(spec.workload);
    json.Key("label"), json.Value(spec.label);
    json.Key("seed"), json.HexValue(spec.seed);
    json.Key("exact_seed"), json.Value(spec.exact_seed);
    json.Key("build");
    json.BeginObject();
    json.Key("avoid_symbolic_pointers"),
        json.Value(spec.build.avoid_symbolic_pointers);
    json.Key("neutralize_hashes"), json.Value(spec.build.neutralize_hashes);
    json.Key("eliminate_fast_paths"),
        json.Value(spec.build.eliminate_fast_paths);
    json.EndObject();
    json.Key("engine");
    json.BeginObject();
    json.Key("strategy"),
        json.Value(StrategyKindName(spec.options.strategy));
    json.Key("max_runs"), json.Value(spec.options.max_runs);
    json.Key("max_seconds"), json.Value(spec.options.max_seconds);
    json.Key("max_steps_per_run"),
        json.Value(spec.options.max_steps_per_run);
    json.Key("fork_weight_decay"),
        json.Value(spec.options.fork_weight_decay);
    json.Key("branch_opcode_drop_fraction"),
        json.Value(spec.options.branch_opcode_drop_fraction);
    json.Key("collect_timeline"), json.Value(spec.options.collect_timeline);
    // v2.3: per-job exploration-thread request, omitted at the default.
    if (spec.options.exploration_threads > 1) {
        json.Key("exploration_threads"),
            json.Value(static_cast<uint64_t>(
                spec.options.exploration_threads));
    }
    const solver::Solver::Options& so = spec.options.solver_options;
    json.Key("solver");
    json.BeginObject();
    json.Key("enable_query_cache"), json.Value(so.enable_query_cache);
    json.Key("enable_model_reuse"), json.Value(so.enable_model_reuse);
    json.Key("enable_independence_slicing"),
        json.Value(so.enable_independence_slicing);
    json.Key("enable_incremental_sat"),
        json.Value(so.enable_incremental_sat);
    json.Key("model_reuse_window"), json.Value(so.model_reuse_window);
    json.Key("max_cache_bytes"), json.Value(so.max_cache_bytes);
    json.Key("max_conflicts"), json.Value(so.max_conflicts);
    json.Key("max_learned_clauses"), json.Value(so.max_learned_clauses);
    json.EndObject();
    json.EndObject();
    json.EndObject();
}

bool
DecodeJobSpec(const JsonValue& object, JobSpec* spec, std::string* error)
{
    if (!ReadString(object, "workload", &spec->workload, error) ||
        !ReadString(object, "label", &spec->label, error) ||
        !ReadU64(object, "seed", &spec->seed, error) ||
        !ReadBool(object, "exact_seed", &spec->exact_seed, error)) {
        return false;
    }
    const JsonValue* build = object.Find("build");
    if (build == nullptr) {
        return DecodeFail(error, "missing 'build'");
    }
    if (!ReadBool(*build, "avoid_symbolic_pointers",
                  &spec->build.avoid_symbolic_pointers, error) ||
        !ReadBool(*build, "neutralize_hashes",
                  &spec->build.neutralize_hashes, error) ||
        !ReadBool(*build, "eliminate_fast_paths",
                  &spec->build.eliminate_fast_paths, error)) {
        return false;
    }
    const JsonValue* engine = object.Find("engine");
    if (engine == nullptr) {
        return DecodeFail(error, "missing 'engine'");
    }
    std::string strategy;
    if (!ReadString(*engine, "strategy", &strategy, error) ||
        !ReadU64(*engine, "max_runs", &spec->options.max_runs, error) ||
        !ReadDouble(*engine, "max_seconds", &spec->options.max_seconds,
                    error) ||
        !ReadU64(*engine, "max_steps_per_run",
                 &spec->options.max_steps_per_run, error) ||
        !ReadDouble(*engine, "fork_weight_decay",
                    &spec->options.fork_weight_decay, error) ||
        !ReadDouble(*engine, "branch_opcode_drop_fraction",
                    &spec->options.branch_opcode_drop_fraction, error) ||
        !ReadBool(*engine, "collect_timeline",
                  &spec->options.collect_timeline, error)) {
        return false;
    }
    if (!StrategyFromName(strategy, &spec->options.strategy)) {
        return DecodeFail(error, "unknown strategy '" + strategy + "'");
    }
    // v2.3: optional per-job exploration-thread request, default 1.
    if (engine->Find("exploration_threads") != nullptr) {
        uint64_t exploration_threads = 1;
        if (!ReadU64(*engine, "exploration_threads", &exploration_threads,
                     error)) {
            return false;
        }
        spec->options.exploration_threads =
            static_cast<uint32_t>(exploration_threads);
    }
    const JsonValue* sol = engine->Find("solver");
    if (sol == nullptr) {
        return DecodeFail(error, "missing 'solver'");
    }
    solver::Solver::Options& so = spec->options.solver_options;
    return ReadBool(*sol, "enable_query_cache", &so.enable_query_cache,
                    error) &&
           ReadBool(*sol, "enable_model_reuse", &so.enable_model_reuse,
                    error) &&
           ReadBool(*sol, "enable_independence_slicing",
                    &so.enable_independence_slicing, error) &&
           ReadBool(*sol, "enable_incremental_sat",
                    &so.enable_incremental_sat, error) &&
           ReadSize(*sol, "model_reuse_window", &so.model_reuse_window,
                    error) &&
           ReadSize(*sol, "max_cache_bytes", &so.max_cache_bytes, error) &&
           ReadU64(*sol, "max_conflicts", &so.max_conflicts, error) &&
           ReadSize(*sol, "max_learned_clauses", &so.max_learned_clauses,
                    error);
}

// ---------------------------------------------------------------------------
// Yields and corpus deltas.
// ---------------------------------------------------------------------------

void
WriteYields(JsonWriter& json, const TestCorpus::YieldMap& yields)
{
    json.BeginArray();
    for (const auto& [workload, yield] : yields) {
        json.BeginObject();
        json.Key("workload"), json.Value(workload);
        json.Key("jobs_recorded"), json.Value(yield.jobs_recorded);
        json.Key("offered_total"), json.Value(yield.offered_total);
        json.Key("accepted_total"), json.Value(yield.accepted_total);
        json.Key("decayed_yield"), json.Value(yield.decayed_yield);
        json.Key("consecutive_zero_yield"),
            json.Value(yield.consecutive_zero_yield);
        json.EndObject();
    }
    json.EndArray();
}

bool
DecodeYields(const JsonValue* array, TestCorpus::YieldMap* yields,
             std::string* error)
{
    if (array == nullptr || array->kind != JsonValue::Kind::kArray) {
        return DecodeFail(error, "missing or invalid 'yields'");
    }
    for (const JsonValue& item : array->items) {
        std::string workload;
        TestCorpus::WorkloadYield yield;
        if (!ReadString(item, "workload", &workload, error) ||
            !ReadU64(item, "jobs_recorded", &yield.jobs_recorded, error) ||
            !ReadU64(item, "offered_total", &yield.offered_total, error) ||
            !ReadU64(item, "accepted_total", &yield.accepted_total,
                     error) ||
            !ReadDouble(item, "decayed_yield", &yield.decayed_yield,
                        error) ||
            !ReadU64(item, "consecutive_zero_yield",
                     &yield.consecutive_zero_yield, error)) {
            return false;
        }
        (*yields)[workload] = yield;
    }
    return true;
}

void
WriteCorpusEntryFull(JsonWriter& json, const TestCorpus::Entry& entry)
{
    json.BeginObject();
    json.Key("workload"), json.Value(entry.workload);
    json.Key("fingerprint"), json.HexValue(entry.fingerprint);
    json.Key("job_index"), json.Value(entry.job_index);
    json.Key("outcome_kind"), json.Value(entry.outcome_kind);
    json.Key("outcome_detail"), json.Value(entry.outcome_detail);
    json.Key("hl_length"), json.Value(entry.hl_length);
    json.Key("ll_steps"), json.Value(entry.ll_steps);
    json.Key("inputs");
    json.BeginArray();
    for (const auto& [var_id, value] : entry.inputs) {
        json.BeginArray();
        json.Value(static_cast<uint64_t>(var_id));
        json.HexValue(value);
        json.EndArray();
    }
    json.EndArray();
    json.EndObject();
}

bool
DecodeCorpusEntryFull(const JsonValue& object, TestCorpus::Entry* entry,
                      std::string* error)
{
    if (!ReadString(object, "workload", &entry->workload, error) ||
        !ReadU64(object, "fingerprint", &entry->fingerprint, error) ||
        !ReadSize(object, "job_index", &entry->job_index, error) ||
        !ReadString(object, "outcome_kind", &entry->outcome_kind, error) ||
        !ReadString(object, "outcome_detail", &entry->outcome_detail,
                    error) ||
        !ReadSize(object, "hl_length", &entry->hl_length, error) ||
        !ReadU64(object, "ll_steps", &entry->ll_steps, error)) {
        return false;
    }
    const JsonValue* inputs = object.Find("inputs");
    if (inputs == nullptr || inputs->kind != JsonValue::Kind::kArray) {
        return DecodeFail(error, "missing or invalid 'inputs'");
    }
    for (const JsonValue& pair : inputs->items) {
        if (pair.kind != JsonValue::Kind::kArray ||
            pair.items.size() != 2) {
            return DecodeFail(error, "malformed input pair");
        }
        uint64_t var_id = 0;
        uint64_t value = 0;
        if (!pair.items[0].AsUint64(&var_id) ||
            !pair.items[1].AsUint64(&value)) {
            return DecodeFail(error, "malformed input pair");
        }
        entry->inputs.emplace_back(static_cast<uint32_t>(var_id), value);
    }
    return true;
}

// ---------------------------------------------------------------------------
// ServiceStats (numeric mirror of service::WriteServiceStats).
// ---------------------------------------------------------------------------

bool
DecodeServiceStats(const JsonValue& object, ServiceStats* stats,
                   std::string* error)
{
    std::string policy;
    if (!ReadSize(object, "jobs_submitted", &stats->jobs_submitted,
                  error) ||
        !ReadSize(object, "jobs_completed", &stats->jobs_completed,
                  error) ||
        !ReadSize(object, "jobs_cancelled", &stats->jobs_cancelled,
                  error) ||
        !ReadSize(object, "jobs_plateau_cancelled",
                  &stats->jobs_plateau_cancelled, error) ||
        !ReadSize(object, "jobs_failed", &stats->jobs_failed, error) ||
        !ReadU64(object, "ll_paths", &stats->ll_paths, error) ||
        !ReadU64(object, "hl_paths", &stats->hl_paths, error) ||
        !ReadU64(object, "hangs", &stats->hangs, error) ||
        !ReadU64(object, "solver_queries", &stats->solver_queries,
                 error) ||
        !ReadU64(object, "solver_sliced_queries",
                 &stats->solver_sliced_queries, error) ||
        !ReadU64(object, "solver_incremental_sat_calls",
                 &stats->solver_incremental_sat_calls, error) ||
        !ReadU64(object, "solver_clauses_loaded",
                 &stats->solver_clauses_loaded, error) ||
        !ReadDouble(object, "solver_seconds", &stats->solver_seconds,
                    error) ||
        !ReadBool(object, "solver_cache_shared",
                  &stats->solver_cache_shared, error) ||
        !ReadU64(object, "shared_cache_hits", &stats->shared_cache_hits,
                 error) ||
        !ReadU64(object, "shared_cache_misses",
                 &stats->shared_cache_misses, error) ||
        !ReadU64(object, "shared_cache_inserts",
                 &stats->shared_cache_inserts, error) ||
        !ReadU64(object, "shared_cache_evictions",
                 &stats->shared_cache_evictions, error) ||
        !ReadU64(object, "shared_cache_model_hits",
                 &stats->shared_cache_model_hits, error) ||
        !ReadSize(object, "shared_cache_bytes", &stats->shared_cache_bytes,
                  error) ||
        !ReadSize(object, "shared_cache_entries",
                  &stats->shared_cache_entries, error) ||
        !ReadSize(object, "corpus_size", &stats->corpus_size, error) ||
        !ReadDouble(object, "engine_seconds", &stats->engine_seconds,
                    error) ||
        !ReadDouble(object, "wall_seconds", &stats->wall_seconds, error) ||
        !ReadDouble(object, "jobs_per_second", &stats->jobs_per_second,
                    error) ||
        !ReadSize(object, "num_workers", &stats->num_workers, error) ||
        !ReadString(object, "schedule_policy", &policy, error) ||
        !ReadU64(object, "events_delivered", &stats->events_delivered,
                 error)) {
        return false;
    }
    // v2.3 additions: absent from pre-v2.3 peers, default to 1 / 0.
    if (object.Find("engine_threads") != nullptr) {
        uint64_t engine_threads = 1;
        if (!ReadU64(object, "engine_threads", &engine_threads, error)) {
            return false;
        }
        stats->engine_threads = static_cast<uint32_t>(engine_threads);
    }
    if (object.Find("wide_sessions_granted") != nullptr &&
        !ReadSize(object, "wide_sessions_granted",
                  &stats->wide_sessions_granted, error)) {
        return false;
    }
    if (!SchedulePolicyFromName(policy, &stats->schedule_policy)) {
        return DecodeFail(error, "unknown schedule policy '" + policy +
                                     "'");
    }
    return true;
}

// ---------------------------------------------------------------------------
// JobResult (numeric mirror of service::WriteJobResult).
// ---------------------------------------------------------------------------

bool
DecodeJobResult(const JsonValue& object, JobResult* result,
                std::string* error)
{
    std::string status;
    if (!ReadSize(object, "job_index", &result->job_index, error) ||
        !ReadString(object, "workload", &result->workload, error) ||
        !ReadString(object, "label", &result->label, error) ||
        !ReadString(object, "status", &status, error) ||
        !ReadString(object, "stop_source", &result->stop_source, error) ||
        !ReadU64(object, "seed_used", &result->seed_used, error) ||
        !ReadSize(object, "test_cases", &result->num_test_cases, error) ||
        !ReadSize(object, "relevant_test_cases",
                  &result->num_relevant_test_cases, error) ||
        !ReadSize(object, "corpus_inserted", &result->corpus_inserted,
                  error) ||
        !ReadU64(object, "ll_paths", &result->engine_stats.ll_paths,
                 error) ||
        !ReadU64(object, "hl_paths", &result->engine_stats.hl_paths,
                 error) ||
        !ReadU64(object, "hangs", &result->engine_stats.hangs, error) ||
        !ReadU64(object, "solver_queries",
                 &result->engine_stats.solver_queries, error) ||
        !ReadU64(object, "solver_sliced_queries",
                 &result->engine_stats.solver_sliced_queries, error) ||
        !ReadU64(object, "solver_incremental_sat_calls",
                 &result->engine_stats.solver_incremental_sat_calls,
                 error) ||
        !ReadU64(object, "solver_clauses_loaded",
                 &result->engine_stats.solver_clauses_loaded, error) ||
        !ReadDouble(object, "solver_seconds",
                    &result->engine_stats.solver_seconds, error) ||
        !ReadU64(object, "solver_shared_hits",
                 &result->engine_stats.solver_shared_hits, error) ||
        !ReadU64(object, "solver_shared_model_hits",
                 &result->engine_stats.solver_shared_model_hits, error) ||
        !ReadBool(object, "stopped", &result->engine_stats.stopped,
                  error) ||
        !ReadDouble(object, "elapsed_seconds",
                    &result->engine_stats.elapsed_seconds, error)) {
        return false;
    }
    // v2.3 addition: absent from pre-v2.3 peers, default 1.
    if (object.Find("threads_used") != nullptr) {
        uint64_t threads_used = 1;
        if (!ReadU64(object, "threads_used", &threads_used, error)) {
            return false;
        }
        result->engine_stats.threads_used =
            static_cast<uint32_t>(threads_used);
    }
    if (!JobStatusFromName(status, &result->status)) {
        return DecodeFail(error, "unknown job status '" + status + "'");
    }
    // WriteJobResult omits "error" when empty.
    const JsonValue* err = object.Find("error");
    if (err != nullptr && !err->AsString(&result->error)) {
        return DecodeFail(error, "invalid 'error'");
    }
    return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

const char*
MessageTypeName(MessageType type)
{
    switch (type) {
      case MessageType::kHello: return "hello";
      case MessageType::kRun: return "run";
      case MessageType::kGossip: return "gossip";
      case MessageType::kHeartbeat: return "heartbeat";
      case MessageType::kResult: return "result";
      case MessageType::kShutdown: return "shutdown";
      case MessageType::kError: return "error";
    }
    return "?";
}

service::ExplorationService::Options
ServiceConfig::ToServiceOptions() const
{
    service::ExplorationService::Options options;
    options.seed = seed;
    options.num_workers = num_workers;
    options.max_total_seconds = max_total_seconds;
    options.record_corpus_inputs = record_corpus_inputs;
    options.share_solver_cache = share_solver_cache;
    options.schedule_policy = schedule_policy;
    options.plateau_policy = plateau_policy;
    options.metrics_interval_seconds = metrics_interval_seconds;
    options.engine_threads = engine_threads;
    // Options::obs is deliberately left null: telemetry scopes never
    // cross the wire. The worker builds its own registry/tracer per run
    // (see ShardWorker::HandleRun) and wires them in there.
    return options;
}

ServiceConfig
ServiceConfig::FromServiceOptions(
    const service::ExplorationService::Options& options)
{
    ServiceConfig config;
    config.seed = options.seed;
    config.num_workers = options.num_workers;
    config.max_total_seconds = options.max_total_seconds;
    config.record_corpus_inputs = options.record_corpus_inputs;
    config.share_solver_cache = options.share_solver_cache;
    config.schedule_policy = options.schedule_policy;
    config.plateau_policy = options.plateau_policy;
    config.tracing = options.obs.tracing_enabled();
    config.metrics_interval_seconds = options.metrics_interval_seconds;
    config.engine_threads = options.engine_threads;
    return config;
}

bool
CheckSerializable(const service::JobSpec& spec, std::string* why)
{
    if (spec.options.stop_requested) {
        if (why != nullptr) {
            *why = "JobSpec '" + spec.workload +
                   "': Engine stop_requested callback is not "
                   "serializable; express job budgets via "
                   "max_runs/max_seconds, service budgets via "
                   "max_total_seconds";
        }
        return false;
    }
    if (spec.options.solver_options.shared_cache != nullptr) {
        if (why != nullptr) {
            *why = "JobSpec '" + spec.workload +
                   "': solver_options.shared_cache points at process "
                   "memory and is not serializable; enable the service "
                   "option share_solver_cache instead (each shard builds "
                   "its own batch cache)";
        }
        return false;
    }
    return true;
}

std::string
EncodeHello()
{
    JsonWriter json;
    json.BeginObject();
    json.Key("type"), json.Value("hello");
    json.Key("protocol_version"), json.Value(kProtocolVersion);
    json.Key("protocol_minor"), json.Value(kProtocolVersionMinor);
    json.EndObject();
    return json.Take();
}

std::string
EncodeRun(const RunRequest& request)
{
    JsonWriter json;
    json.BeginObject();
    json.Key("type"), json.Value("run");
    json.Key("shard_id"), json.Value(request.shard_id);
    json.Key("num_shards"), json.Value(request.num_shards);
    json.Key("service");
    json.BeginObject();
    json.Key("seed"), json.HexValue(request.service.seed);
    json.Key("num_workers"), json.Value(request.service.num_workers);
    json.Key("max_total_seconds"),
        json.Value(request.service.max_total_seconds);
    json.Key("record_corpus_inputs"),
        json.Value(request.service.record_corpus_inputs);
    json.Key("share_solver_cache"),
        json.Value(request.service.share_solver_cache);
    json.Key("schedule_policy"),
        json.Value(SchedulePolicyName(request.service.schedule_policy));
    json.Key("tracing"), json.Value(request.service.tracing);
    json.Key("metrics_interval_seconds"),
        json.Value(request.service.metrics_interval_seconds);
    // v2.2 heartbeat cadence; old decoders ignore unknown keys, and
    // omitting the field at 0 keeps the encoding of a heartbeat-free
    // run byte-identical to a v2.1 coordinator's.
    if (request.service.heartbeat_interval_seconds > 0.0) {
        json.Key("heartbeat_interval_seconds"),
            json.Value(request.service.heartbeat_interval_seconds);
    }
    // v2.3 intra-session parallelism; omitted at the default of 1 so a
    // single-threaded run encodes byte-identically to a v2.2 one.
    if (request.service.engine_threads > 1) {
        json.Key("engine_threads"),
            json.Value(static_cast<uint64_t>(
                request.service.engine_threads));
    }
    json.Key("plateau");
    json.BeginObject();
    json.Key("enabled"), json.Value(request.service.plateau_policy.enabled);
    json.Key("deprioritize_after"),
        json.Value(request.service.plateau_policy.deprioritize_after);
    json.Key("cancel_after"),
        json.Value(request.service.plateau_policy.cancel_after);
    // v2.1 rate-mode fields; old decoders ignore unknown keys.
    json.Key("rate_mode"),
        json.Value(request.service.plateau_policy.rate_mode);
    json.Key("min_yield_per_second"),
        json.Value(request.service.plateau_policy.min_yield_per_second);
    json.Key("rate_window_seconds"),
        json.Value(request.service.plateau_policy.rate_window_seconds);
    json.Key("rate_min_jobs"),
        json.Value(request.service.plateau_policy.rate_min_jobs);
    json.EndObject();
    json.EndObject();
    json.Key("jobs");
    json.BeginArray();
    for (const WireJob& job : request.jobs) {
        json.BeginObject();
        json.Key("job_index"), json.Value(job.job_index);
        json.Key("spec");
        WriteJobSpec(json, job.spec);
        json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    return json.Take();
}

std::string
EncodeGossip(const service::TestCorpus::Delta& delta,
             const obs::MetricsSnapshot* telemetry,
             const std::vector<obs::SeriesSample>* series,
             const obs::AttributionSnapshot* attribution)
{
    JsonWriter json;
    json.BeginObject();
    json.Key("type"), json.Value("gossip");
    json.Key("source"), json.Value(delta.source);
    json.Key("sequence"), json.Value(delta.sequence);
    if (telemetry != nullptr) {
        json.Key("telemetry");
        obs::WriteMetricsSnapshot(json, *telemetry);
    }
    if (series != nullptr && !series->empty()) {
        json.Key("series");
        obs::WriteSeriesSamples(json, *series);
    }
    // v2.4: cumulative attribution table, omitted when empty so a run
    // without attribution encodes byte-identically to v2.3.
    if (attribution != nullptr && !attribution->empty()) {
        json.Key("attribution");
        obs::WriteAttributionSnapshot(json, *attribution);
    }
    // Group fingerprints by workload: entries arrive sorted by
    // (workload, fingerprint), so one linear pass emits each group.
    json.Key("workloads");
    json.BeginArray();
    size_t i = 0;
    while (i < delta.entries.size()) {
        const std::string& workload = delta.entries[i].workload;
        json.BeginObject();
        json.Key("workload"), json.Value(workload);
        json.Key("fingerprints");
        json.BeginArray();
        while (i < delta.entries.size() &&
               delta.entries[i].workload == workload) {
            json.HexValue(delta.entries[i].fingerprint);
            ++i;
        }
        json.EndArray();
        json.EndObject();
    }
    json.EndArray();
    json.Key("yields");
    WriteYields(json, delta.yields);
    json.EndObject();
    return json.Take();
}

std::string
EncodeHeartbeat(const HeartbeatMessage& heartbeat)
{
    JsonWriter json;
    json.BeginObject();
    json.Key("type"), json.Value("heartbeat");
    json.Key("shard_id"), json.Value(heartbeat.shard_id);
    json.Key("sequence"), json.Value(heartbeat.sequence);
    json.Key("results");
    json.BeginArray();
    for (const JobResult& job : heartbeat.results) {
        service::WriteJobResult(json, job);
    }
    json.EndArray();
    json.EndObject();
    return json.Take();
}

std::string
EncodeResult(const ResultMessage& result)
{
    JsonWriter json;
    json.BeginObject();
    json.Key("type"), json.Value("result");
    json.Key("shard_id"), json.Value(result.shard_id);
    json.Key("stats");
    service::WriteServiceStats(json, result.stats);
    json.Key("results");
    json.BeginArray();
    for (const JobResult& job : result.results) {
        service::WriteJobResult(json, job);
    }
    json.EndArray();
    json.Key("corpus");
    json.BeginObject();
    json.Key("source"), json.Value(result.corpus.source);
    json.Key("sequence"), json.Value(result.corpus.sequence);
    json.Key("entries");
    json.BeginArray();
    for (const TestCorpus::Entry& entry : result.corpus.entries) {
        WriteCorpusEntryFull(json, entry);
    }
    json.EndArray();
    json.Key("yields");
    WriteYields(json, result.corpus.yields);
    json.EndObject();
    json.Key("remote_entries"), json.Value(result.remote_entries);
    json.Key("remote_duplicate_hits"),
        json.Value(result.remote_duplicate_hits);
    json.Key("telemetry");
    obs::WriteMetricsSnapshot(json, result.telemetry);
    if (!result.series.empty()) {
        json.Key("series");
        obs::WriteSeriesSamples(json, result.series);
    }
    // v2.4: final attribution table, omitted when empty (byte-compat
    // with v2.3 when attribution is off).
    if (!result.attribution.empty()) {
        json.Key("attribution");
        obs::WriteAttributionSnapshot(json, result.attribution);
    }
    json.Key("trace");
    obs::WriteTraceEvents(json, result.trace);
    json.EndObject();
    return json.Take();
}

std::string
EncodeShutdown()
{
    JsonWriter json;
    json.BeginObject();
    json.Key("type"), json.Value("shutdown");
    json.EndObject();
    return json.Take();
}

std::string
EncodeError(const std::string& reason)
{
    JsonWriter json;
    json.BeginObject();
    json.Key("type"), json.Value("error");
    json.Key("message"), json.Value(reason);
    json.EndObject();
    return json.Take();
}

bool
DecodeMessage(const std::string& line, Message* message,
              std::string* error)
{
    JsonValue root;
    std::string parse_error;
    if (!ParseJson(line, &root, &parse_error)) {
        return DecodeFail(error, "malformed message: " + parse_error);
    }
    std::string type;
    if (!ReadString(root, "type", &type, error)) {
        return false;
    }

    if (type == "hello") {
        message->type = MessageType::kHello;
        uint64_t version = 0;
        if (!ReadU64(root, "protocol_version", &version, error)) {
            return false;
        }
        message->protocol_version = static_cast<int>(version);
        // v2.0 peers never announce a minor; default 0.
        uint64_t minor = 0;
        if (root.Find("protocol_minor") != nullptr &&
            !ReadU64(root, "protocol_minor", &minor, error)) {
            return false;
        }
        message->protocol_minor = static_cast<int>(minor);
        return true;
    }

    if (type == "run") {
        message->type = MessageType::kRun;
        RunRequest& run = message->run;
        if (!ReadSize(root, "shard_id", &run.shard_id, error) ||
            !ReadSize(root, "num_shards", &run.num_shards, error)) {
            return false;
        }
        const JsonValue* svc = root.Find("service");
        if (svc == nullptr) {
            return DecodeFail(error, "missing 'service'");
        }
        std::string policy;
        if (!ReadU64(*svc, "seed", &run.service.seed, error) ||
            !ReadSize(*svc, "num_workers", &run.service.num_workers,
                      error) ||
            !ReadDouble(*svc, "max_total_seconds",
                        &run.service.max_total_seconds, error) ||
            !ReadBool(*svc, "record_corpus_inputs",
                      &run.service.record_corpus_inputs, error) ||
            !ReadBool(*svc, "share_solver_cache",
                      &run.service.share_solver_cache, error) ||
            !ReadString(*svc, "schedule_policy", &policy, error) ||
            !ReadBool(*svc, "tracing", &run.service.tracing, error) ||
            !ReadDouble(*svc, "metrics_interval_seconds",
                        &run.service.metrics_interval_seconds, error)) {
            return false;
        }
        // v2.2 heartbeat cadence: optional, default 0 (no heartbeats)
        // when a pre-v2.2 coordinator omits it.
        if (svc->Find("heartbeat_interval_seconds") != nullptr &&
            !ReadDouble(*svc, "heartbeat_interval_seconds",
                        &run.service.heartbeat_interval_seconds, error)) {
            return false;
        }
        // v2.3 intra-session parallelism: optional, default 1 when a
        // pre-v2.3 coordinator omits it.
        if (svc->Find("engine_threads") != nullptr) {
            uint64_t engine_threads = 1;
            if (!ReadU64(*svc, "engine_threads", &engine_threads, error)) {
                return false;
            }
            run.service.engine_threads =
                static_cast<uint32_t>(engine_threads);
        }
        if (!SchedulePolicyFromName(policy,
                                    &run.service.schedule_policy)) {
            return DecodeFail(error,
                              "unknown schedule policy '" + policy + "'");
        }
        const JsonValue* plateau = svc->Find("plateau");
        if (plateau == nullptr) {
            return DecodeFail(error, "missing 'plateau'");
        }
        if (!ReadBool(*plateau, "enabled",
                      &run.service.plateau_policy.enabled, error) ||
            !ReadSize(*plateau, "deprioritize_after",
                      &run.service.plateau_policy.deprioritize_after,
                      error) ||
            !ReadSize(*plateau, "cancel_after",
                      &run.service.plateau_policy.cancel_after, error)) {
            return false;
        }
        // v2.1 rate-mode fields: optional, keep PlateauPolicy defaults
        // when a v2.0 coordinator omits them.
        PlateauPolicy& pp = run.service.plateau_policy;
        if ((plateau->Find("rate_mode") != nullptr &&
             !ReadBool(*plateau, "rate_mode", &pp.rate_mode, error)) ||
            (plateau->Find("min_yield_per_second") != nullptr &&
             !ReadDouble(*plateau, "min_yield_per_second",
                         &pp.min_yield_per_second, error)) ||
            (plateau->Find("rate_window_seconds") != nullptr &&
             !ReadDouble(*plateau, "rate_window_seconds",
                         &pp.rate_window_seconds, error)) ||
            (plateau->Find("rate_min_jobs") != nullptr &&
             !ReadSize(*plateau, "rate_min_jobs", &pp.rate_min_jobs,
                       error))) {
            return false;
        }
        const JsonValue* jobs = root.Find("jobs");
        if (jobs == nullptr || jobs->kind != JsonValue::Kind::kArray) {
            return DecodeFail(error, "missing or invalid 'jobs'");
        }
        for (const JsonValue& item : jobs->items) {
            WireJob job;
            const JsonValue* spec = item.Find("spec");
            if (!ReadSize(item, "job_index", &job.job_index, error)) {
                return false;
            }
            if (spec == nullptr) {
                return DecodeFail(error, "missing 'spec'");
            }
            if (!DecodeJobSpec(*spec, &job.spec, error)) {
                return false;
            }
            run.jobs.push_back(std::move(job));
        }
        return true;
    }

    if (type == "gossip") {
        message->type = MessageType::kGossip;
        TestCorpus::Delta& delta = message->gossip;
        if (!ReadString(root, "source", &delta.source, error) ||
            !ReadU64(root, "sequence", &delta.sequence, error)) {
            return false;
        }
        const JsonValue* telemetry = root.Find("telemetry");
        if (telemetry != nullptr) {
            if (!obs::DecodeMetricsSnapshot(*telemetry,
                                            &message->telemetry, error)) {
                return false;
            }
            message->has_telemetry = true;
        }
        const JsonValue* series = root.Find("series");
        if (series != nullptr &&
            !obs::DecodeSeriesSamples(*series, &message->series, error)) {
            return false;
        }
        // v2.4: optional cumulative attribution table.
        const JsonValue* attribution = root.Find("attribution");
        if (attribution != nullptr) {
            if (!obs::DecodeAttributionSnapshot(
                    *attribution, &message->attribution, error)) {
                return false;
            }
            message->has_attribution = true;
        }
        const JsonValue* workloads = root.Find("workloads");
        if (workloads == nullptr ||
            workloads->kind != JsonValue::Kind::kArray) {
            return DecodeFail(error, "missing or invalid 'workloads'");
        }
        for (const JsonValue& group : workloads->items) {
            std::string workload;
            if (!ReadString(group, "workload", &workload, error)) {
                return false;
            }
            const JsonValue* fingerprints = group.Find("fingerprints");
            if (fingerprints == nullptr ||
                fingerprints->kind != JsonValue::Kind::kArray) {
                return DecodeFail(error,
                                  "missing or invalid 'fingerprints'");
            }
            for (const JsonValue& fp : fingerprints->items) {
                TestCorpus::Entry entry;
                entry.workload = workload;
                if (!fp.AsUint64(&entry.fingerprint)) {
                    return DecodeFail(error, "invalid fingerprint");
                }
                // Fingerprint-only placeholder: enough to dedup local
                // rediscovery; the discovering shard reports the full
                // entry in its result message.
                entry.outcome_kind = "remote";
                delta.entries.push_back(std::move(entry));
            }
        }
        return DecodeYields(root.Find("yields"), &delta.yields, error);
    }

    if (type == "heartbeat") {
        message->type = MessageType::kHeartbeat;
        HeartbeatMessage& heartbeat = message->heartbeat;
        if (!ReadSize(root, "shard_id", &heartbeat.shard_id, error) ||
            !ReadU64(root, "sequence", &heartbeat.sequence, error)) {
            return false;
        }
        const JsonValue* results = root.Find("results");
        if (results == nullptr ||
            results->kind != JsonValue::Kind::kArray) {
            return DecodeFail(error, "missing or invalid 'results'");
        }
        for (const JsonValue& item : results->items) {
            JobResult job;
            if (!DecodeJobResult(item, &job, error)) {
                return false;
            }
            heartbeat.results.push_back(std::move(job));
        }
        return true;
    }

    if (type == "result") {
        message->type = MessageType::kResult;
        ResultMessage& result = message->result;
        if (!ReadSize(root, "shard_id", &result.shard_id, error)) {
            return false;
        }
        const JsonValue* stats = root.Find("stats");
        if (stats == nullptr ||
            !DecodeServiceStats(*stats, &result.stats, error)) {
            return stats == nullptr ? DecodeFail(error, "missing 'stats'")
                                    : false;
        }
        const JsonValue* results = root.Find("results");
        if (results == nullptr ||
            results->kind != JsonValue::Kind::kArray) {
            return DecodeFail(error, "missing or invalid 'results'");
        }
        for (const JsonValue& item : results->items) {
            JobResult job;
            if (!DecodeJobResult(item, &job, error)) {
                return false;
            }
            result.results.push_back(std::move(job));
        }
        const JsonValue* corpus = root.Find("corpus");
        if (corpus == nullptr) {
            return DecodeFail(error, "missing 'corpus'");
        }
        if (!ReadString(*corpus, "source", &result.corpus.source, error) ||
            !ReadU64(*corpus, "sequence", &result.corpus.sequence,
                     error)) {
            return false;
        }
        const JsonValue* entries = corpus->Find("entries");
        if (entries == nullptr ||
            entries->kind != JsonValue::Kind::kArray) {
            return DecodeFail(error, "missing or invalid 'entries'");
        }
        for (const JsonValue& item : entries->items) {
            TestCorpus::Entry entry;
            if (!DecodeCorpusEntryFull(item, &entry, error)) {
                return false;
            }
            result.corpus.entries.push_back(std::move(entry));
        }
        if (!DecodeYields(corpus->Find("yields"), &result.corpus.yields,
                          error)) {
            return false;
        }
        if (!ReadSize(root, "remote_entries", &result.remote_entries,
                      error) ||
            !ReadSize(root, "remote_duplicate_hits",
                      &result.remote_duplicate_hits, error)) {
            return false;
        }
        const JsonValue* telemetry = root.Find("telemetry");
        if (telemetry == nullptr ||
            !obs::DecodeMetricsSnapshot(*telemetry, &result.telemetry,
                                        error)) {
            return telemetry == nullptr
                       ? DecodeFail(error, "missing 'telemetry'")
                       : false;
        }
        const JsonValue* trace = root.Find("trace");
        if (trace == nullptr ||
            !obs::DecodeTraceEvents(*trace, &result.trace, error)) {
            return trace == nullptr ? DecodeFail(error, "missing 'trace'")
                                    : false;
        }
        // v2.1: optional tail of unshipped time-series samples.
        const JsonValue* series = root.Find("series");
        if (series != nullptr &&
            !obs::DecodeSeriesSamples(*series, &result.series, error)) {
            return false;
        }
        // v2.4: optional final attribution table.
        const JsonValue* attribution = root.Find("attribution");
        if (attribution != nullptr &&
            !obs::DecodeAttributionSnapshot(*attribution,
                                            &result.attribution, error)) {
            return false;
        }
        return true;
    }

    if (type == "shutdown") {
        message->type = MessageType::kShutdown;
        return true;
    }

    if (type == "error") {
        message->type = MessageType::kError;
        return ReadString(root, "message", &message->error, error);
    }

    return DecodeFail(error, "unknown message type '" + type + "'");
}

}  // namespace chef::shard
