#ifndef CHEF_SHARD_COORDINATOR_H_
#define CHEF_SHARD_COORDINATOR_H_

/// \file
/// The shard coordinator: one batch fanned out over N shard workers.
///
/// The coordinator partitions a batch round-robin over the shards,
/// pre-deriving every job's seed from its *global* index (so the
/// partition cannot change per-job results — see JobSpec::exact_seed),
/// then multiplexes the transports from one thread: gossip deltas from
/// any shard are forwarded to every other shard (receivers merge per
/// source, so forwarding order cannot skew the merged state), and
/// result messages are collected until the batch is accounted for.
/// Afterwards the shard corpora merge into one deduplicated corpus
/// (duplicate keys across shards are the residual cross-shard overlap
/// gossip didn't suppress in time) and the per-shard reports merge into
/// one JSON document with per-shard and cross-shard-dedup stats.
///
/// The batch survives shard death. A shard is declared dead on EOF, a
/// failed send, a malformed wire line, a worker-announced error, a
/// supervisor probe (waitpid), or heartbeat silence past the deadline;
/// its unfinished jobs — everything inflight minus the results already
/// streamed over heartbeats — requeue onto the next idle survivor, and
/// because every seed derives from the *global* job index, the rerun is
/// bit-identical to what the dead shard would have produced. Completed-
/// but-unreported discoveries survive as gossip fingerprints the
/// coordinator retains per shard. An optional ShardSupervisor can
/// respawn dead pipe workers with bounded exponential backoff; below
/// Options::min_live_shards the batch stops requeueing and degrades to
/// a partial report (degraded() == true) instead of failing.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "service/report.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace chef::shard {

/// Hook the coordinator uses to check on and revive shard processes it
/// does not itself own (the CLI owns the fork/exec side). Both calls
/// happen on the coordinator's Run thread.
class ShardSupervisor
{
  public:
    virtual ~ShardSupervisor() = default;

    /// Liveness probe for \p shard_id (e.g. waitpid(WNOHANG)). Returns
    /// false when the underlying process is gone, filling \p cause with
    /// a human-readable reason ("killed by signal 9"). Transports can
    /// buffer past a peer's death, so the probe catches corpses whose
    /// pipes still read clean.
    virtual bool Probe(size_t shard_id, std::string* cause) = 0;

    /// Replaces a dead shard with a fresh process and returns its
    /// transport (owned by the supervisor, valid until the next Respawn
    /// of the same shard or supervisor destruction). nullptr when the
    /// respawn itself failed — the coordinator then gives the shard up
    /// for good.
    virtual Transport* Respawn(size_t shard_id) = 0;
};

class ShardCoordinator
{
  public:
    struct Options {
        /// Per-shard service configuration (seed, workers per shard,
        /// schedule/plateau policy, ...). The seed also feeds the
        /// global-index seed derivation.
        ServiceConfig service;
        /// Forward corpus/yield gossip between shards. Off, shards only
        /// dedup at the final merge — the ablation baseline the bench
        /// measures against.
        bool gossip = true;
        /// Idle sleep after a multiplex sweep in which no shard had a
        /// message (each sweep polls every transport without blocking).
        int poll_timeout_ms = 10;
        /// Seconds to wait for every worker's hello (subprocess spawn +
        /// exec can be slow under load).
        double hello_timeout_seconds = 30.0;
        /// Invoked (on the coordinator's Run thread) after fresh
        /// time-series samples from \p shard_id merged into
        /// cluster_series() — the live monitor / NDJSON streaming hook.
        /// Reading cluster_series() from inside is safe; Run() is
        /// blocked while the callback executes.
        std::function<void(size_t shard_id)> on_series_update;
        /// Cadence at which busy workers must beat (wire v2.2); each
        /// beat also streams the results completed since the last one,
        /// which is what narrows requeue to the unfinished remainder.
        /// 0 disables heartbeats entirely — the kRun encoding is then
        /// byte-identical to v2.1 and death is detected by EOF / failed
        /// send / supervisor probe only.
        double heartbeat_interval_seconds = 0.25;
        /// Silence from a *busy* shard beyond this declares it dead
        /// (hung worker, wedged pipe). Only meaningful with heartbeats
        /// on; generous by default because a beat can legitimately
        /// lag behind a long solver query.
        double heartbeat_timeout_seconds = 10.0;
        /// Quorum: once fewer shards than this are live, the batch
        /// stops requeueing, fills the missing results with cancelled
        /// placeholders (stop_source "shard_death") and returns a
        /// degraded partial report instead of an error. The floor of 1
        /// is implicit — with zero live shards nothing can run.
        size_t min_live_shards = 1;
        /// Respawn budget per shard (0 = never respawn). Needs a
        /// supervisor; each attempt backs off exponentially from
        /// respawn_backoff_seconds.
        size_t max_respawns = 0;
        double respawn_backoff_seconds = 0.25;
        /// Optional process-level liveness/revival hook (not owned).
        ShardSupervisor* supervisor = nullptr;
        /// Invoked (on the Run thread) when a shard is declared dead,
        /// after its remainder moved to the requeue list.
        std::function<void(size_t shard_id, const std::string& cause)>
            on_shard_death;
        /// Invoked (on the Run thread) for every heartbeat received —
        /// the chaos harness's trigger point ("kill the victim once it
        /// is provably mid-batch").
        std::function<void(size_t shard_id)> on_heartbeat;
    };

    /// Per-shard outcome, kept for the merged report.
    struct ShardOutcome {
        size_t shard_id = 0;
        size_t jobs_assigned = 0;
        service::ServiceStats stats;
        /// Cross-shard dedup counters reported by the worker.
        size_t remote_entries = 0;
        size_t remote_duplicate_hits = 0;
        /// Entries this shard contributed to the merged corpus vs. ones
        /// another shard had already merged (filled during the merge).
        size_t corpus_contributed = 0;
        size_t corpus_duplicate = 0;
        /// Latest metrics snapshot: updated live from telemetry-bearing
        /// gossip mid-batch, then replaced by the final result's
        /// snapshot when the shard reports (merged across requeue
        /// rounds when the shard reported more than once).
        obs::MetricsSnapshot telemetry;
        /// Latest per-location attribution table (wire v2.4), same
        /// lifecycle as `telemetry`: replace-by-latest from gossip
        /// (snapshots are cumulative, so redelivery is idempotent),
        /// authoritative final from the result message, merged across
        /// requeue rounds.
        obs::AttributionSnapshot attribution;
        /// Fault-tolerance outcome. dead reflects the shard's *final*
        /// state — a successfully respawned shard is not dead, but
        /// death_cause keeps its latest obituary for the report.
        bool dead = false;
        std::string death_cause;
        size_t respawns = 0;
        /// Jobs this shard's deaths sent back to the requeue list.
        size_t jobs_requeued = 0;
    };

    /// Batch-wide fault counters (mirrored into coordinator telemetry
    /// as shard.deaths_total / shard.jobs_requeued_total /
    /// shard.heartbeats_missed / shard.respawns_total).
    struct FaultStats {
        uint64_t deaths = 0;
        uint64_t jobs_requeued = 0;
        uint64_t heartbeats_missed = 0;
        uint64_t respawns = 0;
    };

    /// Aggregated cross-shard telemetry.
    struct CrossShardStats {
        /// Gossip deltas forwarded between shards.
        uint64_t gossip_messages = 0;
        /// Fingerprints those deltas carried.
        uint64_t fingerprints_gossiped = 0;
        /// Local discoveries suppressed at shards by gossiped
        /// fingerprints (summed remote_duplicate_hits).
        uint64_t remote_duplicate_hits = 0;
        /// Jobs cancelled before dispatch because their workload
        /// plateaued, summed over shards. Counts *every* plateau
        /// cancellation — purely local zero-yield streaks included —
        /// so it is nonzero even with gossip off; gossip raises it by
        /// feeding remote streaks into each shard's threshold earlier.
        /// Compare a gossip-on vs gossip-off run (bench_sharding does)
        /// to isolate the cross-shard contribution.
        uint64_t jobs_suppressed = 0;
        /// Duplicate keys found when merging shard corpora at the end:
        /// overlap gossip did not suppress in time.
        uint64_t merge_duplicates = 0;
    };

    explicit ShardCoordinator(Options options);

    /// Runs \p jobs over the shard \p transports (one per worker, all
    /// already connected). Blocks until every job is accounted for —
    /// by a surviving shard's result, a streamed heartbeat result from
    /// a shard that died later, a deterministic rerun on a survivor,
    /// or (below the quorum) a cancelled placeholder. Returns false
    /// with \p error only on caller mistakes (no transports,
    /// non-serializable specs); shard deaths degrade the report
    /// (degraded() == true) rather than fail the batch.
    bool Run(const std::vector<service::JobSpec>& jobs,
             const std::vector<Transport*>& transports,
             std::string* error);

    /// Results indexed by global submission order (as if one service had
    /// run the whole batch).
    const std::vector<service::JobResult>& results() const
    {
        return results_;
    }

    /// The merged, deduplicated cross-shard corpus.
    const service::TestCorpus& corpus() const { return corpus_; }

    /// Shard stats summed (wall_seconds is the max across shards — the
    /// batch's critical path — while engine/solver seconds sum).
    const service::ServiceStats& merged_stats() const
    {
        return merged_stats_;
    }

    const std::vector<ShardOutcome>& shards() const { return shards_; }
    const CrossShardStats& cross_shard() const { return cross_shard_; }

    /// True when any shard died during the last Run (even if a respawn
    /// or requeue fully recovered the work — the report still flags
    /// that the batch did not execute as planned).
    bool degraded() const { return degraded_; }
    const FaultStats& fault() const { return fault_; }

    /// Coordinator-side telemetry (fault counters), pid 0 in traces.
    /// Also merged into cluster_telemetry().
    const obs::MetricsSnapshot& coordinator_telemetry() const
    {
        return coordinator_telemetry_;
    }

    /// Every shard's final snapshot merged into one cluster view:
    /// counters and gauges sum, histograms add bucket-wise (so cluster
    /// quantiles reflect every shard's latency samples). Live mid-batch
    /// reads see whatever gossip has delivered so far.
    const obs::MetricsSnapshot& cluster_telemetry() const
    {
        return cluster_telemetry_;
    }

    /// Cluster-wide attribution table: every shard's latest snapshot
    /// folded at call time (AttributionSnapshot::MergeFrom is
    /// commutative, so the fold is order-independent regardless of
    /// which shards reported when). Mid-batch reads follow the same
    /// thread rules as cluster_telemetry().
    obs::AttributionSnapshot ClusterAttribution() const;

    /// Merged cluster time-series: one series per shard ("shard<N>"),
    /// fed live from v2.1 gossip and completed by each result's tail.
    /// Mid-batch reads are only safe from Options::on_series_update
    /// (same thread as Run); after Run returns, any thread may read.
    const obs::ClusterSeries& cluster_series() const
    {
        return cluster_series_;
    }

    /// Trace spans shipped back by tracing-enabled workers, pid-stamped
    /// shard_id + 1 (pid 0 stays free for a coordinator-side tracer).
    const std::vector<obs::TraceEvent>& trace_events() const
    {
        return trace_events_;
    }

    /// Chrome trace-event JSON ("traceEvents" array form) of every span
    /// collected from the workers — load in chrome://tracing or
    /// Perfetto. Strict-parser valid.
    std::string RenderTrace() const
    {
        return obs::RenderChromeTrace(trace_events_);
    }

    /// Streams the collected trace spans to \p path without building the
    /// whole document in memory (obs::WriteChromeTraceFile). False with
    /// \p error on I/O failure.
    bool WriteTraceFile(const std::string& path,
                        std::string* error = nullptr) const
    {
        return obs::WriteChromeTraceFile(path, trace_events_, error);
    }

    /// One JSON document: merged stats/jobs/corpus (the same schema as a
    /// single service report, under "merged") plus per-shard stats and
    /// the cross-shard dedup counters. Strict-parser valid.
    std::string RenderMergedReport(
        const service::ReportOptions& options = {}) const;

    /// The partitioning rule (global job index -> shard), exposed so
    /// tests and benches can reason about placement.
    static size_t ShardFor(size_t job_index, size_t num_shards)
    {
        return job_index % num_shards;
    }

  private:
    Options options_;
    std::vector<service::JobResult> results_;
    service::TestCorpus corpus_;
    service::ServiceStats merged_stats_;
    std::vector<ShardOutcome> shards_;
    CrossShardStats cross_shard_;
    bool degraded_ = false;
    FaultStats fault_;
    obs::MetricsSnapshot coordinator_telemetry_;
    obs::MetricsSnapshot cluster_telemetry_;
    obs::ClusterSeries cluster_series_;
    std::vector<obs::TraceEvent> trace_events_;
    /// Largest single-shard solver time, kept alongside the summed
    /// merged_stats_.solver_seconds: the sum is aggregate work, the max
    /// is the concurrent batch's critical-path contribution. Reporting
    /// only the sum made sharded solver time look worse than one
    /// service's (it grows with shard count even at fixed wall time).
    double solver_seconds_max_shard_ = 0.0;
    double wall_seconds_ = 0.0;
};

/// Convenience harness: runs \p jobs over \p num_shards in-process
/// workers, each on its own thread behind a loopback transport pair.
/// The deterministic-transport path used by tests and bench_sharding.
bool RunLoopbackShards(ShardCoordinator* coordinator,
                       const std::vector<service::JobSpec>& jobs,
                       size_t num_shards, std::string* error);

}  // namespace chef::shard

#endif  // CHEF_SHARD_COORDINATOR_H_
