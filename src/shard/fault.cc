#include "shard/fault.h"

#include <chrono>
#include <thread>
#include <utility>

namespace chef::shard {

FaultInjectingTransport::FaultInjectingTransport(
    Transport* inner, std::vector<FaultRule> rules, uint64_t seed)
    : inner_(inner),
      rules_(std::move(rules)),
      fired_(rules_.size(), false),
      // splitmix64's recommended non-zero scrambling of the seed.
      rng_state_(seed ^ 0x9e3779b97f4a7c15ULL)
{
}

uint64_t
FaultInjectingTransport::NextRandom()
{
    // splitmix64: tiny, seedable, and good enough to pick corruption
    // offsets — statistical quality is irrelevant, replayability is not.
    uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool
FaultInjectingTransport::Apply(FaultRule::Point point, uint64_t ordinal,
                               std::string* message)
{
    bool pass = true;
    for (size_t i = 0; i < rules_.size(); ++i) {
        const FaultRule& rule = rules_[i];
        if (fired_[i] || rule.point != point || rule.nth != ordinal) {
            continue;
        }
        fired_[i] = true;
        ++faults_fired_;
        switch (rule.action) {
          case FaultRule::Action::kDrop:
            pass = false;
            break;
          case FaultRule::Action::kDelay:
            std::this_thread::sleep_for(std::chrono::duration<double>(
                rule.delay_seconds));
            break;
          case FaultRule::Action::kTruncate:
            // Keep a strict prefix: long enough to look like the start
            // of a frame, never the whole line — the peer must see a
            // malformed message, not a short valid one.
            if (message->size() > 1) {
                message->resize(
                    1 + NextRandom() % (message->size() - 1));
            }
            break;
          case FaultRule::Action::kCorrupt: {
            // Flip a few seeded bytes to printable garbage. Printable
            // keeps the line framing intact (no injected newlines), so
            // the peer reads exactly one garbage frame.
            if (!message->empty()) {
                const size_t flips = 1 + NextRandom() % 3;
                for (size_t f = 0; f < flips; ++f) {
                    const size_t at = NextRandom() % message->size();
                    (*message)[at] =
                        static_cast<char>('#' + NextRandom() % 60);
                }
            }
            break;
          }
          case FaultRule::Action::kClose:
            inner_->Close();
            pass = false;
            break;
        }
    }
    return pass;
}

bool
FaultInjectingTransport::Send(const std::string& message)
{
    const uint64_t ordinal = ++sends_;
    std::string mangled = message;
    if (!Apply(FaultRule::Point::kSend, ordinal, &mangled)) {
        // Dropped: a lost datagram looks like success to the sender.
        // Closed: the next send on the inner transport fails anyway.
        return true;
    }
    return inner_->Send(mangled);
}

Transport::RecvStatus
FaultInjectingTransport::Receive(std::string* message, int timeout_ms)
{
    const RecvStatus status = inner_->Receive(message, timeout_ms);
    if (status != RecvStatus::kMessage) {
        return status;
    }
    const uint64_t ordinal = ++receives_;
    if (!Apply(FaultRule::Point::kReceive, ordinal, message)) {
        // Dropped on the receive path: the caller sees a quiet poll.
        message->clear();
        return RecvStatus::kTimeout;
    }
    return RecvStatus::kMessage;
}

void
FaultInjectingTransport::Close()
{
    inner_->Close();
}

}  // namespace chef::shard
