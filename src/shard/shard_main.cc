/// \file
/// chef_shard: the distributed shard CLI.
///
/// Two modes over the shard/wire.h protocol:
///
///   chef_shard --worker
///     Serves one shard on stdin/stdout (spawned by a coordinator; the
///     protocol owns stdout, diagnostics go to stderr).
///
///   chef_shard --coordinator --workers N [options]
///     Spawns N `chef_shard --worker` subprocesses over pipes, fans the
///     batch out, and writes the merged JSON report. With --smoke it
///     additionally runs the same batch on one in-process loopback
///     shard and asserts the multi-process merged corpus covers the
///     single-shard corpus, the report parses strictly, and the
///     cross-shard dedup stats are present — the CI contract.
///
/// Batch options (coordinator): repeat --job WORKLOAD[xCOUNT] to build
/// the batch (default: a small mixed py/lua batch), --max-runs,
/// --seed, --shard-workers (worker threads per shard), --budget
/// (service seconds per shard), --plateau, --no-gossip, --report PATH.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "service/report.h"
#include "shard/coordinator.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "shard/worker.h"
#include "support/json.h"

namespace {

using chef::service::JobSpec;
using chef::service::TestCorpus;
using chef::shard::ShardCoordinator;
using chef::shard::ShardWorker;
using chef::shard::Transport;
using chef::shard::WorkerProcess;

struct CliOptions {
    bool worker = false;
    bool coordinator = false;
    size_t num_workers = 2;
    size_t shard_workers = 1;
    uint64_t seed = 2014;
    uint64_t max_runs = 25;
    double budget_seconds = 0.0;
    bool plateau = false;
    bool gossip = true;
    bool smoke = false;
    std::string report_path = "chef_shard_report.json";
    std::vector<std::pair<std::string, int>> job_specs;  // workload, count
};

void
Usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --worker\n"
        "       %s --coordinator [--workers N] [--job WORKLOAD[xCOUNT]]...\n"
        "           [--max-runs N] [--seed S] [--shard-workers K]\n"
        "           [--budget SECONDS] [--plateau] [--no-gossip]\n"
        "           [--report PATH] [--smoke]\n",
        argv0, argv0);
}

bool
ParseArgs(int argc, char** argv, CliOptions* options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--worker") {
            options->worker = true;
        } else if (arg == "--coordinator") {
            options->coordinator = true;
        } else if (arg == "--workers") {
            const char* value = next("--workers");
            if (value == nullptr) {
                return false;
            }
            options->num_workers =
                static_cast<size_t>(std::strtoull(value, nullptr, 10));
        } else if (arg == "--shard-workers") {
            const char* value = next("--shard-workers");
            if (value == nullptr) {
                return false;
            }
            options->shard_workers =
                static_cast<size_t>(std::strtoull(value, nullptr, 10));
        } else if (arg == "--seed") {
            const char* value = next("--seed");
            if (value == nullptr) {
                return false;
            }
            options->seed = std::strtoull(value, nullptr, 0);
        } else if (arg == "--max-runs") {
            const char* value = next("--max-runs");
            if (value == nullptr) {
                return false;
            }
            options->max_runs = std::strtoull(value, nullptr, 10);
        } else if (arg == "--budget") {
            const char* value = next("--budget");
            if (value == nullptr) {
                return false;
            }
            options->budget_seconds = std::atof(value);
        } else if (arg == "--plateau") {
            options->plateau = true;
        } else if (arg == "--no-gossip") {
            options->gossip = false;
        } else if (arg == "--smoke") {
            options->smoke = true;
        } else if (arg == "--report") {
            const char* value = next("--report");
            if (value == nullptr) {
                return false;
            }
            options->report_path = value;
        } else if (arg == "--job") {
            const char* value = next("--job");
            if (value == nullptr) {
                return false;
            }
            std::string workload = value;
            int count = 1;
            const size_t x = workload.rfind('x');
            if (x != std::string::npos && x + 1 < workload.size() &&
                workload.find('/') < x) {
                const int parsed = std::atoi(workload.c_str() + x + 1);
                if (parsed > 0) {
                    count = parsed;
                    workload.resize(x);
                }
            }
            options->job_specs.emplace_back(workload, count);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return false;
        }
    }
    if (options->worker == options->coordinator) {
        Usage(argv[0]);
        return false;
    }
    return true;
}

std::vector<JobSpec>
BuildBatch(const CliOptions& options)
{
    std::vector<std::pair<std::string, int>> specs = options.job_specs;
    if (specs.empty()) {
        // A small duplicate-skewed mixed batch: enough overlap for the
        // gossip/dedup machinery to have something to do.
        specs = {{"py/argparse", 3},
                 {"py/simplejson", 1},
                 {"lua/cliargs", 1},
                 {"lua/haml", 1}};
    }
    std::vector<JobSpec> jobs;
    int copy = 0;
    for (const auto& [workload, count] : specs) {
        for (int i = 0; i < count; ++i) {
            JobSpec spec;
            spec.workload = workload;
            spec.label = workload + "#" + std::to_string(i);
            spec.seed = static_cast<uint64_t>(++copy);
            spec.options.max_runs = options.max_runs;
            spec.options.max_seconds = 1e9;
            spec.options.collect_timeline = false;
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

ShardCoordinator::Options
CoordinatorOptions(const CliOptions& options)
{
    ShardCoordinator::Options coordinator;
    coordinator.service.seed = options.seed;
    coordinator.service.num_workers = options.shard_workers;
    coordinator.service.max_total_seconds = options.budget_seconds;
    if (options.plateau) {
        coordinator.service.plateau_policy.enabled = true;
        coordinator.service.plateau_policy.deprioritize_after = 1;
        coordinator.service.plateau_policy.cancel_after = 2;
    }
    coordinator.gossip = options.gossip;
    return coordinator;
}

std::string
SelfBinaryPath(const char* argv0)
{
    char buffer[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
    if (n > 0) {
        buffer[n] = '\0';
        return buffer;
    }
    return argv0;
}

int
RunWorker()
{
    // The protocol owns stdin/stdout; stderr remains for diagnostics.
    std::unique_ptr<Transport> transport = chef::shard::CreateFdTransport(
        STDIN_FILENO, STDOUT_FILENO, /*owns_fds=*/false);
    ShardWorker worker(ShardWorker::Options{}, transport.get());
    return worker.Serve() ? 0 : 1;
}

/// True when every key of \p subset is present in \p superset.
bool
CoversCorpus(const std::vector<TestCorpus::Key>& superset,
             const std::vector<TestCorpus::Key>& subset)
{
    size_t i = 0;
    for (const TestCorpus::Key& key : subset) {
        while (i < superset.size() && superset[i] < key) {
            ++i;
        }
        if (i >= superset.size() || !(superset[i] == key)) {
            return false;
        }
    }
    return true;
}

int
RunCoordinator(const CliOptions& options, const char* argv0)
{
    const std::vector<JobSpec> jobs = BuildBatch(options);
    const std::string binary = SelfBinaryPath(argv0);

    std::vector<WorkerProcess> processes;
    std::vector<Transport*> transports;
    for (size_t i = 0; i < options.num_workers; ++i) {
        WorkerProcess process;
        std::string error;
        if (!chef::shard::SpawnWorkerProcess(binary, {"--worker"},
                                             &process, &error)) {
            std::fprintf(stderr, "spawn worker %zu: %s\n", i,
                         error.c_str());
            return 1;
        }
        processes.push_back(std::move(process));
    }
    for (WorkerProcess& process : processes) {
        transports.push_back(process.transport.get());
    }

    ShardCoordinator coordinator(CoordinatorOptions(options));
    std::string error;
    const bool ok = coordinator.Run(jobs, transports, &error);
    for (WorkerProcess& process : processes) {
        process.transport->Close();
        chef::shard::WaitWorkerProcess(process.pid);
    }
    if (!ok) {
        std::fprintf(stderr, "coordinator: %s\n", error.c_str());
        return 1;
    }

    const std::string report = coordinator.RenderMergedReport();
    std::FILE* file = std::fopen(options.report_path.c_str(), "wb");
    if (file == nullptr ||
        std::fwrite(report.data(), 1, report.size(), file) !=
            report.size() ||
        std::fclose(file) != 0) {
        std::fprintf(stderr, "failed to write %s\n",
                     options.report_path.c_str());
        return 1;
    }

    const ShardCoordinator::CrossShardStats& cross =
        coordinator.cross_shard();
    std::printf("chef_shard: %zu jobs over %zu worker processes\n",
                jobs.size(), options.num_workers);
    std::printf("  merged corpus: %zu entries (%llu cross-shard merge "
                "duplicates)\n",
                coordinator.corpus().size(),
                static_cast<unsigned long long>(cross.merge_duplicates));
    std::printf("  gossip: %llu messages, %llu fingerprints, %llu local "
                "rediscoveries suppressed, %llu jobs suppressed\n",
                static_cast<unsigned long long>(cross.gossip_messages),
                static_cast<unsigned long long>(
                    cross.fingerprints_gossiped),
                static_cast<unsigned long long>(
                    cross.remote_duplicate_hits),
                static_cast<unsigned long long>(cross.jobs_suppressed));
    std::printf("  report: %s\n", options.report_path.c_str());

    if (!options.smoke) {
        return 0;
    }

    // --- Smoke assertions (the CI contract) ----------------------------
    int failures = 0;

    // 1. The merged report is strict JSON with the cross-shard dedup
    //    stats and per-shard sections present.
    chef::support::JsonValue parsed;
    std::string parse_error;
    if (!chef::support::ParseJson(report, &parsed, &parse_error)) {
        std::fprintf(stderr, "FAIL: merged report is not strict JSON: %s\n",
                     parse_error.c_str());
        ++failures;
    } else {
        const chef::support::JsonValue* cross_obj =
            parsed.Find("cross_shard");
        for (const char* key :
             {"fingerprints_gossiped", "remote_duplicate_hits",
              "jobs_suppressed", "merge_duplicates"}) {
            uint64_t value = 0;
            if (cross_obj == nullptr ||
                !cross_obj->GetUint64(key, &value)) {
                std::fprintf(stderr,
                             "FAIL: cross_shard.%s missing from the "
                             "merged report\n",
                             key);
                ++failures;
            }
        }
        const chef::support::JsonValue* shards_arr = parsed.Find("shards");
        if (shards_arr == nullptr ||
            shards_arr->items.size() != options.num_workers) {
            std::fprintf(stderr,
                         "FAIL: expected %zu per-shard stats sections\n",
                         options.num_workers);
            ++failures;
        }
    }

    // 2. The multi-process merged corpus covers a single-shard run of
    //    the same batch (identical global-index seeds make the corpora
    //    comparable key-for-key).
    ShardCoordinator::Options single_options = CoordinatorOptions(options);
    single_options.service.plateau_policy = {};  // Run every job.
    ShardCoordinator single(single_options);
    if (!chef::shard::RunLoopbackShards(&single, jobs, 1, &error)) {
        std::fprintf(stderr, "FAIL: single-shard baseline: %s\n",
                     error.c_str());
        ++failures;
    } else if (!options.plateau) {
        const std::vector<TestCorpus::Key> merged_keys =
            coordinator.corpus().Keys();
        const std::vector<TestCorpus::Key> single_keys =
            single.corpus().Keys();
        if (!CoversCorpus(merged_keys, single_keys)) {
            std::fprintf(stderr,
                         "FAIL: merged corpus (%zu keys) does not cover "
                         "the single-shard corpus (%zu keys)\n",
                         merged_keys.size(), single_keys.size());
            ++failures;
        } else {
            std::printf("  smoke: merged corpus covers the single-shard "
                        "corpus (%zu keys)\n",
                        single_keys.size());
        }
    }

    if (failures > 0) {
        std::fprintf(stderr, "chef_shard --smoke: %d failure(s)\n",
                     failures);
        return 1;
    }
    std::printf("  smoke: OK\n");
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    CliOptions options;
    if (!ParseArgs(argc, argv, &options)) {
        return 2;
    }
    if (options.worker) {
        return RunWorker();
    }
    return RunCoordinator(options, argv[0]);
}
