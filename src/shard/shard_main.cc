/// \file
/// chef_shard: the distributed shard CLI.
///
/// Two modes over the shard/wire.h protocol:
///
///   chef_shard --worker
///     Serves one shard on stdin/stdout (spawned by a coordinator; the
///     protocol owns stdout, diagnostics go to stderr).
///
///   chef_shard --coordinator --workers N [options]
///     Spawns N `chef_shard --worker` subprocesses over pipes, fans the
///     batch out, and writes the merged JSON report. With --smoke it
///     additionally runs the same batch on one in-process loopback
///     shard and asserts the multi-process merged corpus covers the
///     single-shard corpus, the report parses strictly, and the
///     cross-shard dedup stats are present — the CI contract.
///
/// Batch options (coordinator): repeat --job WORKLOAD[xCOUNT] to build
/// the batch (default: a small mixed py/lua batch), --max-runs,
/// --seed, --shard-workers (worker threads per shard), --budget
/// (service seconds per shard), --plateau, --no-gossip, --report PATH.
///
/// Telemetry options: --trace-out PATH turns on phase tracing in every
/// worker and writes the merged Chrome trace-event JSON (load in
/// chrome://tracing or Perfetto); --metrics-interval MS sets the
/// cadence of live metrics snapshots piggybacked on gossip. Both accept
/// --flag=value and --flag value forms. The merged report always
/// carries a "telemetry" section with per-shard and cluster-merged
/// metrics snapshots.
///
/// Time-series options (coordinator; all force a 100 ms metrics
/// interval when none was set): --stats-out PATH streams one NDJSON
/// line per shard sample (windowed jobs/s, fingerprints/s, solver p95,
/// cluster totals) as gossip delivers them; --curves-out PATH writes
/// the per-workload coverage_curves CSV (the Figure-9 reproduction);
/// --series-out PATH dumps every retained cluster sample as JSON;
/// --monitor renders an in-place ANSI dashboard to stderr while the
/// batch runs. Shard deaths additionally appear on the --stats-out
/// stream as {"event":"shard_death",...} records.
///
/// Attribution options (coordinator): --attr-out PATH writes the
/// cluster per-location attribution table (solver seconds, steps,
/// forks, new fingerprints, ... charged to each high-level location)
/// as strict JSON; --flame-out PATH writes the same table as folded
/// stacks ("workload;0xroot;...;0xleaf value" lines) ready for
/// flamegraph.pl or speedscope. --monitor appends a "hot locations"
/// panel ranked by solver cost and by fingerprint yield per solver
/// second. Attribution is on by default in every worker; the tables
/// ride gossip at the metrics cadence (wire v2.4) and always arrive
/// with the final result.
///
/// Fault-tolerance options (coordinator): --heartbeat-interval MS sets
/// the worker heartbeat cadence (v2.2; 0 disables), --respawns N lets
/// the coordinator respawn each dead worker up to N times,
/// --min-live-shards K degrades the batch to a partial report below K
/// live shards, and --chaos kill-one SIGKILLs the first shard to
/// heartbeat — a built-in crash drill: the run must still complete,
/// flagged "degraded" with the dead shard's jobs requeued onto
/// survivors. With --smoke the chaos run additionally asserts the
/// merged corpus is key-for-key identical to an undisturbed
/// single-shard run.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "obs/monitor.h"
#include "obs/timeseries.h"
#include "service/report.h"
#include "shard/coordinator.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "shard/worker.h"
#include "support/json.h"

namespace {

using chef::service::JobSpec;
using chef::service::TestCorpus;
using chef::shard::ShardCoordinator;
using chef::shard::ShardWorker;
using chef::shard::Transport;
using chef::shard::WorkerProcess;

struct CliOptions {
    bool worker = false;
    bool coordinator = false;
    size_t num_workers = 2;
    size_t shard_workers = 1;
    /// Intra-session exploration threads granted to each job's engine
    /// (deterministic round mode; 1 = classic serial sessions).
    uint32_t engine_threads = 1;
    uint64_t seed = 2014;
    uint64_t max_runs = 25;
    double budget_seconds = 0.0;
    bool plateau = false;
    bool gossip = true;
    bool smoke = false;
    std::string report_path = "chef_shard_report.json";
    /// Non-empty enables worker phase tracing; the merged trace lands
    /// here as Chrome trace-event JSON.
    std::string trace_path;
    /// Live telemetry cadence in milliseconds; 0 = final snapshot only
    /// (unless a time-series sink below forces the 100 ms default).
    double metrics_interval_ms = 0.0;
    /// NDJSON stream of per-shard series samples.
    std::string stats_path;
    /// Per-workload coverage-curves CSV (Figure 9).
    std::string curves_path;
    /// Full cluster series dump as JSON.
    std::string series_path;
    /// Render the live ANSI dashboard to stderr.
    bool monitor = false;
    /// Cluster attribution table as strict JSON.
    std::string attr_path;
    /// Cluster attribution table as folded stacks (flamegraph input).
    std::string flame_path;
    /// Fault-injection drill: "" (off) or "kill-one" (SIGKILL the first
    /// shard that heartbeats — provably mid-batch).
    std::string chaos;
    /// Worker heartbeat cadence in milliseconds (0 disables v2.2
    /// heartbeats and the streamed-results channel).
    double heartbeat_interval_ms = 250.0;
    /// Respawn budget per dead worker.
    size_t max_respawns = 0;
    /// Quorum below which the batch degrades instead of requeueing.
    size_t min_live_shards = 1;
    std::vector<std::pair<std::string, int>> job_specs;  // workload, count
};

void
Usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --worker\n"
        "       %s --coordinator [--workers N] [--job WORKLOAD[xCOUNT]]...\n"
        "           [--max-runs N] [--seed S] [--shard-workers K]\n"
        "           [--engine-threads N]\n"
        "           [--budget SECONDS] [--plateau] [--no-gossip]\n"
        "           [--report PATH] [--trace-out PATH]\n"
        "           [--metrics-interval MS] [--stats-out PATH]\n"
        "           [--curves-out PATH] [--series-out PATH]\n"
        "           [--attr-out PATH] [--flame-out PATH]\n"
        "           [--heartbeat-interval MS] [--respawns N]\n"
        "           [--min-live-shards K] [--chaos kill-one]\n"
        "           [--monitor] [--smoke]\n",
        argv0, argv0);
}

bool
ParseArgs(int argc, char** argv, CliOptions* options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        // --flag=value form (telemetry flags accept both forms; the
        // older batch flags keep their space form only).
        std::string inline_value;
        bool flag_error = false;
        const auto match = [&](const char* flag) {
            if (arg == flag) {
                const char* value = next(flag);
                if (value == nullptr) {
                    flag_error = true;
                    return false;
                }
                inline_value = value;
                return true;
            }
            const std::string prefix = std::string(flag) + "=";
            if (arg.compare(0, prefix.size(), prefix) == 0) {
                inline_value = arg.substr(prefix.size());
                return true;
            }
            return false;
        };
        if (match("--trace-out")) {
            if (inline_value.empty()) {
                std::fprintf(stderr, "--trace-out requires a path\n");
                return false;
            }
            options->trace_path = inline_value;
            continue;
        }
        if (match("--metrics-interval")) {
            options->metrics_interval_ms = std::atof(inline_value.c_str());
            continue;
        }
        if (match("--stats-out")) {
            if (inline_value.empty()) {
                std::fprintf(stderr, "--stats-out requires a path\n");
                return false;
            }
            options->stats_path = inline_value;
            continue;
        }
        if (match("--curves-out")) {
            if (inline_value.empty()) {
                std::fprintf(stderr, "--curves-out requires a path\n");
                return false;
            }
            options->curves_path = inline_value;
            continue;
        }
        if (match("--series-out")) {
            if (inline_value.empty()) {
                std::fprintf(stderr, "--series-out requires a path\n");
                return false;
            }
            options->series_path = inline_value;
            continue;
        }
        if (match("--attr-out")) {
            if (inline_value.empty()) {
                std::fprintf(stderr, "--attr-out requires a path\n");
                return false;
            }
            options->attr_path = inline_value;
            continue;
        }
        if (match("--flame-out")) {
            if (inline_value.empty()) {
                std::fprintf(stderr, "--flame-out requires a path\n");
                return false;
            }
            options->flame_path = inline_value;
            continue;
        }
        if (match("--heartbeat-interval")) {
            options->heartbeat_interval_ms =
                std::atof(inline_value.c_str());
            continue;
        }
        if (match("--respawns")) {
            options->max_respawns = static_cast<size_t>(
                std::strtoull(inline_value.c_str(), nullptr, 10));
            continue;
        }
        if (match("--min-live-shards")) {
            options->min_live_shards = static_cast<size_t>(
                std::strtoull(inline_value.c_str(), nullptr, 10));
            continue;
        }
        if (match("--chaos")) {
            if (inline_value != "kill-one") {
                std::fprintf(stderr,
                             "--chaos supports only 'kill-one' (got "
                             "'%s')\n",
                             inline_value.c_str());
                return false;
            }
            options->chaos = inline_value;
            continue;
        }
        if (flag_error) {
            return false;
        }
        if (arg == "--worker") {
            options->worker = true;
        } else if (arg == "--coordinator") {
            options->coordinator = true;
        } else if (arg == "--workers") {
            const char* value = next("--workers");
            if (value == nullptr) {
                return false;
            }
            options->num_workers =
                static_cast<size_t>(std::strtoull(value, nullptr, 10));
        } else if (arg == "--shard-workers") {
            const char* value = next("--shard-workers");
            if (value == nullptr) {
                return false;
            }
            options->shard_workers =
                static_cast<size_t>(std::strtoull(value, nullptr, 10));
        } else if (arg == "--engine-threads") {
            const char* value = next("--engine-threads");
            if (value == nullptr) {
                return false;
            }
            options->engine_threads =
                static_cast<uint32_t>(std::strtoull(value, nullptr, 10));
            if (options->engine_threads == 0) {
                options->engine_threads = 1;
            }
        } else if (arg == "--seed") {
            const char* value = next("--seed");
            if (value == nullptr) {
                return false;
            }
            options->seed = std::strtoull(value, nullptr, 0);
        } else if (arg == "--max-runs") {
            const char* value = next("--max-runs");
            if (value == nullptr) {
                return false;
            }
            options->max_runs = std::strtoull(value, nullptr, 10);
        } else if (arg == "--budget") {
            const char* value = next("--budget");
            if (value == nullptr) {
                return false;
            }
            options->budget_seconds = std::atof(value);
        } else if (arg == "--monitor") {
            options->monitor = true;
        } else if (arg == "--plateau") {
            options->plateau = true;
        } else if (arg == "--no-gossip") {
            options->gossip = false;
        } else if (arg == "--smoke") {
            options->smoke = true;
        } else if (arg == "--report") {
            const char* value = next("--report");
            if (value == nullptr) {
                return false;
            }
            options->report_path = value;
        } else if (arg == "--job") {
            const char* value = next("--job");
            if (value == nullptr) {
                return false;
            }
            std::string workload = value;
            int count = 1;
            const size_t x = workload.rfind('x');
            if (x != std::string::npos && x + 1 < workload.size() &&
                workload.find('/') < x) {
                const int parsed = std::atoi(workload.c_str() + x + 1);
                if (parsed > 0) {
                    count = parsed;
                    workload.resize(x);
                }
            }
            options->job_specs.emplace_back(workload, count);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return false;
        }
    }
    if (options->worker == options->coordinator) {
        Usage(argv[0]);
        return false;
    }
    return true;
}

std::vector<JobSpec>
BuildBatch(const CliOptions& options)
{
    std::vector<std::pair<std::string, int>> specs = options.job_specs;
    if (specs.empty()) {
        // A small duplicate-skewed mixed batch: enough overlap for the
        // gossip/dedup machinery to have something to do.
        specs = {{"py/argparse", 3},
                 {"py/simplejson", 1},
                 {"lua/cliargs", 1},
                 {"lua/haml", 1}};
    }
    std::vector<JobSpec> jobs;
    int copy = 0;
    for (const auto& [workload, count] : specs) {
        for (int i = 0; i < count; ++i) {
            JobSpec spec;
            spec.workload = workload;
            spec.label = workload + "#" + std::to_string(i);
            spec.seed = static_cast<uint64_t>(++copy);
            spec.options.max_runs = options.max_runs;
            spec.options.max_seconds = 1e9;
            spec.options.collect_timeline = false;
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

ShardCoordinator::Options
CoordinatorOptions(const CliOptions& options)
{
    ShardCoordinator::Options coordinator;
    coordinator.service.seed = options.seed;
    coordinator.service.num_workers = options.shard_workers;
    coordinator.service.engine_threads = options.engine_threads;
    coordinator.service.max_total_seconds = options.budget_seconds;
    if (options.plateau) {
        coordinator.service.plateau_policy.enabled = true;
        coordinator.service.plateau_policy.deprioritize_after = 1;
        coordinator.service.plateau_policy.cancel_after = 2;
    }
    coordinator.gossip = options.gossip;
    coordinator.service.tracing = !options.trace_path.empty();
    coordinator.service.metrics_interval_seconds =
        options.metrics_interval_ms / 1000.0;
    // The time-series sinks are useless without samples; force the
    // 100 ms default cadence when none was requested explicitly.
    const bool wants_series = options.monitor ||
                              !options.stats_path.empty() ||
                              !options.curves_path.empty() ||
                              !options.series_path.empty();
    if (wants_series && coordinator.service.metrics_interval_seconds <= 0.0) {
        coordinator.service.metrics_interval_seconds = 0.1;
    }
    coordinator.heartbeat_interval_seconds =
        options.heartbeat_interval_ms / 1000.0;
    coordinator.max_respawns = options.max_respawns;
    coordinator.min_live_shards = options.min_live_shards;
    return coordinator;
}

bool
ReadFileOrComplain(const std::string& path, std::string* contents)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        std::fprintf(stderr, "failed to read %s\n", path.c_str());
        return false;
    }
    contents->clear();
    char buffer[65536];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
        contents->append(buffer, n);
    }
    std::fclose(file);
    return true;
}

bool
WriteFileOrComplain(const std::string& path, const std::string& contents)
{
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr ||
        std::fwrite(contents.data(), 1, contents.size(), file) !=
            contents.size() ||
        std::fclose(file) != 0) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return false;
    }
    return true;
}

std::string
SelfBinaryPath(const char* argv0)
{
    char buffer[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
    if (n > 0) {
        buffer[n] = '\0';
        return buffer;
    }
    return argv0;
}

/// ShardSupervisor over the coordinator's pipe-worker subprocesses:
/// waitpid(WNOHANG) liveness probes and fork/exec respawns that replace
/// the dead WorkerProcess slot in place.
class PipeShardSupervisor : public chef::shard::ShardSupervisor
{
  public:
    PipeShardSupervisor(std::string binary,
                        std::vector<WorkerProcess>* processes)
        : binary_(std::move(binary)), processes_(processes)
    {
    }

    bool Probe(size_t shard_id, std::string* cause) override
    {
        if (shard_id >= processes_->size()) {
            return true;
        }
        WorkerProcess& process = (*processes_)[shard_id];
        if (process.pid < 0) {
            if (cause != nullptr) {
                *cause = "process gone";
            }
            return false;
        }
        if (!chef::shard::ProbeWorkerProcess(process.pid, cause)) {
            process.pid = -1;  // Reaped by the probe; don't wait again.
            return false;
        }
        return true;
    }

    Transport* Respawn(size_t shard_id) override
    {
        if (shard_id >= processes_->size()) {
            return nullptr;
        }
        WorkerProcess& slot = (*processes_)[shard_id];
        if (slot.pid >= 0) {
            // Dead to the protocol but the process survives (hung, or
            // spoke garbage): reap it before replacing the slot.
            ::kill(slot.pid, SIGKILL);
            chef::shard::WaitWorkerProcess(slot.pid);
            slot.pid = -1;
        }
        WorkerProcess fresh;
        std::string error;
        if (!chef::shard::SpawnWorkerProcess(binary_, {"--worker"},
                                             &fresh, &error)) {
            std::fprintf(stderr, "respawn shard %zu: %s\n", shard_id,
                         error.c_str());
            return nullptr;
        }
        slot = std::move(fresh);
        return slot.transport.get();
    }

  private:
    std::string binary_;
    std::vector<WorkerProcess>* processes_;
};

int
RunWorker()
{
    // The protocol owns stdin/stdout; stderr remains for diagnostics.
    std::unique_ptr<Transport> transport = chef::shard::CreateFdTransport(
        STDIN_FILENO, STDOUT_FILENO, /*owns_fds=*/false);
    ShardWorker worker(ShardWorker::Options{}, transport.get());
    return worker.Serve() ? 0 : 1;
}

/// True when every key of \p subset is present in \p superset.
bool
CoversCorpus(const std::vector<TestCorpus::Key>& superset,
             const std::vector<TestCorpus::Key>& subset)
{
    size_t i = 0;
    for (const TestCorpus::Key& key : subset) {
        while (i < superset.size() && superset[i] < key) {
            ++i;
        }
        if (i >= superset.size() || !(superset[i] == key)) {
            return false;
        }
    }
    return true;
}

int
RunCoordinator(const CliOptions& options, const char* argv0)
{
    const std::vector<JobSpec> jobs = BuildBatch(options);
    const std::string binary = SelfBinaryPath(argv0);

    std::vector<WorkerProcess> processes;
    std::vector<Transport*> transports;
    for (size_t i = 0; i < options.num_workers; ++i) {
        WorkerProcess process;
        std::string error;
        if (!chef::shard::SpawnWorkerProcess(binary, {"--worker"},
                                             &process, &error)) {
            std::fprintf(stderr, "spawn worker %zu: %s\n", i,
                         error.c_str());
            return 1;
        }
        processes.push_back(std::move(process));
    }
    for (WorkerProcess& process : processes) {
        transports.push_back(process.transport.get());
    }

    ShardCoordinator::Options coordinator_options =
        CoordinatorOptions(options);
    // Pipe workers always get the process-level supervisor: waitpid
    // probes catch corpses whose pipes still read clean, and --respawns
    // turns on revival through the same object.
    PipeShardSupervisor supervisor(binary, &processes);
    coordinator_options.supervisor = &supervisor;
    const double stats_window = std::max(
        2.0, 4.0 * coordinator_options.service.metrics_interval_seconds);

    // Live time-series sinks, driven from the coordinator's Run thread
    // via on_series_update: an NDJSON line per fresh sample, and a
    // throttled in-place dashboard frame.
    std::FILE* stats_file = nullptr;
    if (!options.stats_path.empty()) {
        stats_file = std::fopen(options.stats_path.c_str(), "w");
        if (stats_file == nullptr) {
            std::fprintf(stderr, "failed to open %s\n",
                         options.stats_path.c_str());
            return 1;
        }
    }
    ShardCoordinator* running = nullptr;
    std::map<std::string, uint64_t> streamed;  // source -> last index
    size_t ndjson_lines = 0;
    const auto run_start = std::chrono::steady_clock::now();

    // Shard deaths: one stderr obituary each, plus an NDJSON event
    // record on the stats stream (consumers skip records carrying an
    // "event" key when computing rates).
    coordinator_options.on_shard_death = [&](size_t shard,
                                             const std::string& cause) {
        std::fprintf(stderr, "chef_shard: shard %zu died: %s\n", shard,
                     cause.c_str());
        if (stats_file != nullptr) {
            chef::support::JsonWriter json;
            json.BeginObject();
            json.Key("event"), json.Value("shard_death");
            json.Key("shard"), json.Value(shard);
            json.Key("cause"), json.Value(cause);
            json.Key("t_seconds"),
                json.Value(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - run_start)
                               .count());
            json.EndObject();
            std::string line = json.Take();
            line += '\n';
            std::fwrite(line.data(), 1, line.size(), stats_file);
            std::fflush(stats_file);
        }
    };

    // The kill-one drill: SIGKILL the first shard to heartbeat. A
    // heartbeat only flows while RunBatch is still executing, so the
    // victim is provably mid-batch — the hard case, where requeue and
    // retained-gossip recovery must both engage.
    bool chaos_killed = false;
    if (options.chaos == "kill-one") {
        coordinator_options.on_heartbeat = [&](size_t shard) {
            if (chaos_killed || shard >= processes.size() ||
                processes[shard].pid < 0) {
                return;
            }
            chaos_killed = true;
            std::fprintf(stderr,
                         "chef_shard: chaos kill-one: SIGKILL shard %zu "
                         "(pid %d) on its first heartbeat\n",
                         shard, static_cast<int>(processes[shard].pid));
            ::kill(processes[shard].pid, SIGKILL);
        };
    }
    auto last_frame = std::chrono::steady_clock::now();
    bool first_frame = true;
    coordinator_options.on_series_update = [&](size_t shard_id) {
        const chef::obs::ClusterSeries& series = running->cluster_series();
        const std::string source = "shard" + std::to_string(shard_id);
        const std::vector<chef::obs::SeriesSample>* samples =
            series.SeriesFor(source);
        if (samples != nullptr) {
            uint64_t& rendered = streamed[source];
            for (const chef::obs::SeriesSample& sample : *samples) {
                if (sample.index <= rendered) {
                    continue;
                }
                rendered = sample.index;
                ++ndjson_lines;
                if (stats_file != nullptr) {
                    const std::string line =
                        chef::obs::RenderSeriesSampleNdjson(
                            series, source, sample, stats_window);
                    std::fwrite(line.data(), 1, line.size(), stats_file);
                }
            }
            if (stats_file != nullptr) {
                std::fflush(stats_file);
            }
        }
        if (options.monitor) {
            const auto now = std::chrono::steady_clock::now();
            if (first_frame ||
                now - last_frame >= std::chrono::milliseconds(250)) {
                first_frame = false;
                last_frame = now;
                const chef::obs::AttributionSnapshot attribution =
                    running->ClusterAttribution();
                const std::string frame = chef::obs::RenderMonitorFrame(
                    series, stats_window, &attribution);
                // Home, repaint, then clear from the cursor to the end
                // of the screen: clearing *after* the frame (ESC[0J)
                // instead of before it (ESC[2J) erases exactly the rows
                // a shrinking panel no longer covers, without leaving
                // stale lines below the new frame.
                std::fprintf(stderr, "\x1b[H%s\x1b[0J", frame.c_str());
            }
        }
    };

    ShardCoordinator coordinator(coordinator_options);
    running = &coordinator;
    std::string error;
    const bool ok = coordinator.Run(jobs, transports, &error);
    for (WorkerProcess& process : processes) {
        process.transport->Close();
        if (process.pid >= 0) {  // Dead shards were reaped by the probe.
            chef::shard::WaitWorkerProcess(process.pid);
        }
    }
    if (stats_file != nullptr) {
        std::fclose(stats_file);
    }
    if (options.monitor) {
        // One final frame from the complete series, then drop out of the
        // in-place redraw so subsequent stderr output scrolls normally.
        // Same clear-after-repaint as the live path, so a final frame
        // shorter than the last live one leaves no stale rows behind.
        const chef::obs::AttributionSnapshot attribution =
            coordinator.ClusterAttribution();
        const std::string frame = chef::obs::RenderMonitorFrame(
            coordinator.cluster_series(), stats_window, &attribution);
        std::fprintf(stderr, "\x1b[H%s\x1b[0J\n", frame.c_str());
    }
    if (!ok) {
        std::fprintf(stderr, "coordinator: %s\n", error.c_str());
        return 1;
    }

    const std::string report = coordinator.RenderMergedReport();
    if (!WriteFileOrComplain(options.report_path, report)) {
        return 1;
    }
    if (!options.trace_path.empty()) {
        // Streamed span-by-span rather than rendered whole in memory.
        std::string trace_error;
        if (!coordinator.WriteTraceFile(options.trace_path, &trace_error)) {
            std::fprintf(stderr, "%s\n", trace_error.c_str());
            return 1;
        }
    }
    std::string curves_csv;
    if (!options.curves_path.empty()) {
        curves_csv =
            chef::obs::RenderCoverageCurvesCsv(coordinator.cluster_series());
        if (!WriteFileOrComplain(options.curves_path, curves_csv)) {
            return 1;
        }
    }
    if (!options.series_path.empty() &&
        !WriteFileOrComplain(
            options.series_path,
            chef::obs::RenderClusterSeriesJson(
                coordinator.cluster_series()))) {
        return 1;
    }
    const chef::obs::AttributionSnapshot cluster_attribution =
        coordinator.ClusterAttribution();
    std::string attr_json;
    if (!options.attr_path.empty()) {
        chef::support::JsonWriter json;
        chef::obs::WriteAttributionSnapshot(json, cluster_attribution);
        attr_json = json.Take();
        if (!WriteFileOrComplain(options.attr_path, attr_json)) {
            return 1;
        }
    }
    std::string flame_stacks;
    if (!options.flame_path.empty()) {
        flame_stacks =
            chef::obs::RenderAttributionFoldedStacks(cluster_attribution);
        if (!WriteFileOrComplain(options.flame_path, flame_stacks)) {
            return 1;
        }
    }

    const ShardCoordinator::CrossShardStats& cross =
        coordinator.cross_shard();
    std::printf("chef_shard: %zu jobs over %zu worker processes\n",
                jobs.size(), options.num_workers);
    std::printf("  merged corpus: %zu entries (%llu cross-shard merge "
                "duplicates)\n",
                coordinator.corpus().size(),
                static_cast<unsigned long long>(cross.merge_duplicates));
    std::printf("  gossip: %llu messages, %llu fingerprints, %llu local "
                "rediscoveries suppressed, %llu jobs suppressed\n",
                static_cast<unsigned long long>(cross.gossip_messages),
                static_cast<unsigned long long>(
                    cross.fingerprints_gossiped),
                static_cast<unsigned long long>(
                    cross.remote_duplicate_hits),
                static_cast<unsigned long long>(cross.jobs_suppressed));
    if (coordinator.degraded()) {
        const ShardCoordinator::FaultStats& fault = coordinator.fault();
        std::printf("  fault: DEGRADED — %llu death(s), %llu jobs "
                    "requeued, %llu heartbeats missed, %llu respawn(s)\n",
                    static_cast<unsigned long long>(fault.deaths),
                    static_cast<unsigned long long>(fault.jobs_requeued),
                    static_cast<unsigned long long>(
                        fault.heartbeats_missed),
                    static_cast<unsigned long long>(fault.respawns));
    }
    std::printf("  report: %s\n", options.report_path.c_str());
    if (!options.trace_path.empty()) {
        std::printf("  trace: %s (%zu events)\n",
                    options.trace_path.c_str(),
                    coordinator.trace_events().size());
    }
    if (!options.stats_path.empty()) {
        std::printf("  stats: %s (%zu NDJSON samples)\n",
                    options.stats_path.c_str(), ndjson_lines);
    }
    if (!options.curves_path.empty()) {
        std::printf("  curves: %s\n", options.curves_path.c_str());
    }
    if (!options.series_path.empty()) {
        std::printf("  series: %s (%zu samples over %zu sources)\n",
                    options.series_path.c_str(),
                    coordinator.cluster_series().total_samples(),
                    coordinator.cluster_series().Sources().size());
    }
    if (!options.attr_path.empty() || !options.flame_path.empty()) {
        size_t locations = 0;
        for (const auto& [workload, rows] :
             cluster_attribution.workloads) {
            (void)workload;
            locations += rows.size();
        }
        if (!options.attr_path.empty()) {
            std::printf("  attribution: %s (%zu locations, %.3f solver "
                        "seconds attributed)\n",
                        options.attr_path.c_str(), locations,
                        cluster_attribution.SolverSecondsTotal());
        }
        if (!options.flame_path.empty()) {
            std::printf("  flame: %s\n", options.flame_path.c_str());
        }
    }

    if (!options.smoke) {
        return 0;
    }

    // --- Smoke assertions (the CI contract) ----------------------------
    int failures = 0;

    // 1. The merged report is strict JSON with the cross-shard dedup
    //    stats and per-shard sections present.
    chef::support::JsonValue parsed;
    std::string parse_error;
    if (!chef::support::ParseJson(report, &parsed, &parse_error)) {
        std::fprintf(stderr, "FAIL: merged report is not strict JSON: %s\n",
                     parse_error.c_str());
        ++failures;
    } else {
        const chef::support::JsonValue* cross_obj =
            parsed.Find("cross_shard");
        for (const char* key :
             {"fingerprints_gossiped", "remote_duplicate_hits",
              "jobs_suppressed", "merge_duplicates"}) {
            uint64_t value = 0;
            if (cross_obj == nullptr ||
                !cross_obj->GetUint64(key, &value)) {
                std::fprintf(stderr,
                             "FAIL: cross_shard.%s missing from the "
                             "merged report\n",
                             key);
                ++failures;
            }
        }
        const chef::support::JsonValue* shards_arr = parsed.Find("shards");
        if (shards_arr == nullptr ||
            shards_arr->items.size() != options.num_workers) {
            std::fprintf(stderr,
                         "FAIL: expected %zu per-shard stats sections\n",
                         options.num_workers);
            ++failures;
        }
        // Telemetry section: per-shard snapshots plus the cluster merge,
        // each with counters/histograms objects, and the cluster's
        // solver.queries equal to the sum over shards (MergeFrom sums
        // name-keyed counters, so a drift here means a shard's snapshot
        // was dropped or double-merged).
        const chef::support::JsonValue* telemetry =
            parsed.Find("telemetry");
        const chef::support::JsonValue* tele_shards =
            telemetry != nullptr ? telemetry->Find("shards") : nullptr;
        const chef::support::JsonValue* cluster =
            telemetry != nullptr ? telemetry->Find("cluster") : nullptr;
        if (tele_shards == nullptr ||
            tele_shards->items.size() != options.num_workers ||
            cluster == nullptr || cluster->Find("counters") == nullptr ||
            cluster->Find("histograms") == nullptr) {
            std::fprintf(stderr,
                         "FAIL: telemetry section missing per-shard or "
                         "cluster snapshots\n");
            ++failures;
        } else {
            // Dead shards never report, so their (gossiped, partial)
            // snapshots are excluded from the cluster merge: sum the
            // survivors only, and on a degraded run accept cluster >=
            // sum (requeue rounds from since-dead shards may have
            // merged work no surviving per-shard snapshot shows).
            uint64_t shard_queries = 0;
            for (size_t i = 0; i < tele_shards->items.size(); ++i) {
                if (i < coordinator.shards().size() &&
                    coordinator.shards()[i].dead) {
                    continue;
                }
                const chef::support::JsonValue& entry =
                    tele_shards->items[i];
                const chef::support::JsonValue* counters =
                    entry.Find("metrics") != nullptr
                        ? entry.Find("metrics")->Find("counters")
                        : nullptr;
                uint64_t value = 0;
                if (counters != nullptr) {
                    counters->GetUint64("solver.queries", &value);
                }
                shard_queries += value;
            }
            uint64_t cluster_queries = 0;
            cluster->Find("counters")->GetUint64("solver.queries",
                                                 &cluster_queries);
            const bool consistent =
                coordinator.degraded()
                    ? cluster_queries >= shard_queries
                    : cluster_queries == shard_queries;
            if (cluster_queries == 0 || !consistent) {
                std::fprintf(stderr,
                             "FAIL: cluster solver.queries %llu != "
                             "per-shard sum %llu (or zero)\n",
                             static_cast<unsigned long long>(
                                 cluster_queries),
                             static_cast<unsigned long long>(
                                 shard_queries));
                ++failures;
            }
        }
        // Attribution section: one table per shard plus the cluster
        // fold, always present (tables are empty when attribution is
        // off, never absent).
        const chef::support::JsonValue* attr_section =
            telemetry != nullptr ? telemetry->Find("attribution")
                                 : nullptr;
        const chef::support::JsonValue* attr_shards =
            attr_section != nullptr ? attr_section->Find("shards")
                                    : nullptr;
        if (attr_shards == nullptr ||
            attr_shards->items.size() != options.num_workers ||
            attr_section->Find("cluster") == nullptr) {
            std::fprintf(stderr,
                         "FAIL: telemetry.attribution missing per-shard "
                         "tables or the cluster fold\n");
            ++failures;
        }
        // Labeled solver-time views: total (aggregate work) and
        // max-shard (critical-path share) must both be present and
        // ordered total >= max.
        double solver_total = 0.0;
        double solver_max = 0.0;
        if (!parsed.GetDouble("solver_seconds_total", &solver_total) ||
            !parsed.GetDouble("solver_seconds_max_shard", &solver_max) ||
            solver_total + 1e-12 < solver_max) {
            std::fprintf(stderr,
                         "FAIL: solver_seconds_total/max_shard missing "
                         "or inconsistent\n");
            ++failures;
        }
    }

    // 1b. With tracing on: the trace file is strict JSON, and spans
    //     arrived from every worker shard (pids 1..N; pid 0 would be a
    //     coordinator-side tracer).
    if (!options.trace_path.empty()) {
        // Validate exactly what the streaming writer put on disk.
        std::string trace;
        chef::support::JsonValue trace_doc;
        std::string trace_error;
        if (!ReadFileOrComplain(options.trace_path, &trace)) {
            ++failures;
        } else if (!chef::support::ParseJson(trace, &trace_doc,
                                             &trace_error)) {
            std::fprintf(stderr,
                         "FAIL: trace is not strict JSON: %s\n",
                         trace_error.c_str());
            ++failures;
        } else {
            const chef::support::JsonValue* events =
                trace_doc.Find("traceEvents");
            std::vector<bool> seen(options.num_workers + 1, false);
            size_t spans = 0;
            if (events != nullptr) {
                for (const chef::support::JsonValue& event :
                     events->items) {
                    uint64_t pid = 0;
                    if (event.GetUint64("pid", &pid) &&
                        pid < seen.size()) {
                        seen[pid] = true;
                        ++spans;
                    }
                }
            }
            // A dead shard's spans die with it (they ship in the final
            // result), so only surviving shards owe spans.
            bool all_shards = true;
            for (size_t shard = 1; shard <= options.num_workers;
                 ++shard) {
                if (shard - 1 < coordinator.shards().size() &&
                    coordinator.shards()[shard - 1].dead) {
                    continue;
                }
                all_shards = all_shards && seen[shard];
            }
            if (events == nullptr || spans == 0 || !all_shards) {
                std::fprintf(stderr,
                             "FAIL: trace lacks spans from every worker "
                             "shard (%zu spans)\n",
                             spans);
                ++failures;
            } else {
                std::printf("  smoke: trace has %zu spans from all %zu "
                            "shards\n",
                            spans, options.num_workers);
            }
        }
    }

    // 1c. With --stats-out: the stream on disk is valid NDJSON — every
    //     line strict-parses with the per-sample schema — and at least 5
    //     samples arrived (2 shards at a 100 ms cadence cross that in
    //     well under a second of batch time).
    if (!options.stats_path.empty()) {
        std::string ndjson;
        size_t valid_lines = 0;
        size_t event_lines = 0;
        bool malformed = false;
        if (!ReadFileOrComplain(options.stats_path, &ndjson)) {
            ++failures;
        } else {
            size_t begin = 0;
            while (begin < ndjson.size()) {
                size_t end = ndjson.find('\n', begin);
                if (end == std::string::npos) {
                    end = ndjson.size();
                }
                const std::string line = ndjson.substr(begin, end - begin);
                begin = end + 1;
                if (line.empty()) {
                    continue;
                }
                chef::support::JsonValue sample;
                std::string sample_error;
                if (!chef::support::ParseJson(line, &sample,
                                              &sample_error)) {
                    malformed = true;
                    std::fprintf(stderr,
                                 "FAIL: invalid NDJSON sample: %.120s\n",
                                 line.c_str());
                    break;
                }
                // Fault events share the stream with samples; they
                // carry "event" instead of the sample schema.
                if (sample.Find("event") != nullptr) {
                    if (sample.Find("shard") == nullptr ||
                        sample.Find("cause") == nullptr) {
                        malformed = true;
                        std::fprintf(
                            stderr,
                            "FAIL: invalid NDJSON event: %.120s\n",
                            line.c_str());
                        break;
                    }
                    ++event_lines;
                    continue;
                }
                if (sample.Find("source") == nullptr ||
                    sample.Find("index") == nullptr ||
                    sample.Find("t_seconds") == nullptr ||
                    sample.Find("jobs_per_second") == nullptr ||
                    sample.Find("fingerprints_per_second") == nullptr ||
                    sample.Find("cluster") == nullptr) {
                    malformed = true;
                    std::fprintf(stderr,
                                 "FAIL: invalid NDJSON sample: %.120s\n",
                                 line.c_str());
                    break;
                }
                ++valid_lines;
            }
            // A degraded run can cut sample volume (a shard died early),
            // but every shard death must have left an event record.
            const size_t need_samples = coordinator.degraded() ? 1 : 5;
            const bool events_accounted =
                event_lines >=
                static_cast<size_t>(coordinator.fault().deaths);
            if (malformed || valid_lines < need_samples ||
                !events_accounted) {
                std::fprintf(stderr,
                             "FAIL: --stats-out produced %zu valid NDJSON "
                             "samples + %zu events (need >= %zu samples, "
                             ">= %llu events)\n",
                             valid_lines, event_lines, need_samples,
                             static_cast<unsigned long long>(
                                 coordinator.fault().deaths));
                ++failures;
            } else {
                std::printf("  smoke: %zu valid NDJSON samples + %zu "
                            "event records streamed\n",
                            valid_lines, event_lines);
            }
        }
    }

    // 1d. With --curves-out: the cluster "__all__" coverage curve is
    //     monotone and ends exactly at the report's cluster telemetry
    //     totals (the recorder's final sample is taken after all batch
    //     accounting, so the curve and the report must agree).
    if (!options.curves_path.empty() && coordinator.degraded()) {
        // A dead shard's curve ends at its last gossiped sample while
        // the cluster totals include survivors' reruns; the tail-match
        // contract only holds for undisturbed runs.
        std::printf("  smoke: degraded run — skipping the coverage-CSV "
                    "tail match\n");
    } else if (!options.curves_path.empty()) {
        uint64_t last_jobs = 0;
        uint64_t last_fp = 0;
        bool monotone = true;
        size_t all_rows = 0;
        size_t begin = curves_csv.find('\n');  // Skip the header.
        begin = begin == std::string::npos ? curves_csv.size() : begin + 1;
        while (begin < curves_csv.size()) {
            size_t end = curves_csv.find('\n', begin);
            if (end == std::string::npos) {
                end = curves_csv.size();
            }
            const std::string row = curves_csv.substr(begin, end - begin);
            begin = end + 1;
            if (row.compare(0, 8, "__all__,") != 0) {
                continue;
            }
            unsigned long long jobs = 0;
            unsigned long long fp = 0;
            double t = 0.0;
            if (std::sscanf(row.c_str(), "__all__,%lf,%llu,%llu", &t,
                            &jobs, &fp) == 3) {
                monotone = monotone && jobs >= last_jobs && fp >= last_fp;
                last_jobs = jobs;
                last_fp = fp;
                ++all_rows;
            }
        }
        uint64_t cluster_jobs = 0;
        uint64_t cluster_fp = 0;
        const chef::support::JsonValue* telemetry = parsed.Find("telemetry");
        const chef::support::JsonValue* cluster =
            telemetry != nullptr ? telemetry->Find("cluster") : nullptr;
        const chef::support::JsonValue* counters =
            cluster != nullptr ? cluster->Find("counters") : nullptr;
        if (counters != nullptr) {
            counters->GetUint64("service.jobs_finished", &cluster_jobs);
            counters->GetUint64("corpus.fingerprints_new", &cluster_fp);
        }
        if (all_rows == 0 || !monotone || last_jobs != cluster_jobs ||
            last_fp != cluster_fp) {
            std::fprintf(stderr,
                         "FAIL: coverage CSV disagrees with the report "
                         "(%zu rows, monotone=%d, jobs %llu vs %llu, "
                         "fingerprints %llu vs %llu)\n",
                         all_rows, monotone ? 1 : 0,
                         static_cast<unsigned long long>(last_jobs),
                         static_cast<unsigned long long>(cluster_jobs),
                         static_cast<unsigned long long>(last_fp),
                         static_cast<unsigned long long>(cluster_fp));
            ++failures;
        } else {
            std::printf("  smoke: coverage CSV matches the report "
                        "(%llu jobs, %llu fingerprints over %zu points)\n",
                        static_cast<unsigned long long>(last_jobs),
                        static_cast<unsigned long long>(last_fp),
                        all_rows);
        }
    }

    // 1e. With --attr-out: the attribution table on disk is strict JSON
    //     with at least one charged location, its cluster solver-seconds
    //     total agrees with the report's solver_seconds_total (both sides
    //     measure the very same Solve calls — the profiler charges the
    //     ScopedTimer's own elapsed reading — so only double-vs-nanos
    //     rounding separates them), and the folded-stack file is
    //     non-empty.
    if (!options.attr_path.empty()) {
        chef::support::JsonValue attr_doc;
        std::string attr_error;
        size_t attr_locations = 0;
        if (!chef::support::ParseJson(attr_json, &attr_doc,
                                      &attr_error)) {
            std::fprintf(stderr,
                         "FAIL: attribution table is not strict JSON: "
                         "%s\n",
                         attr_error.c_str());
            ++failures;
        } else {
            const chef::support::JsonValue* workloads =
                attr_doc.Find("workloads");
            if (workloads != nullptr) {
                for (const chef::support::JsonValue& group :
                     workloads->items) {
                    const chef::support::JsonValue* locations =
                        group.Find("locations");
                    attr_locations +=
                        locations != nullptr ? locations->items.size()
                                             : 0;
                }
            }
            if (attr_locations == 0) {
                std::fprintf(stderr,
                             "FAIL: attribution table charged no "
                             "locations\n");
                ++failures;
            }
        }
        double report_solver_total = 0.0;
        parsed.GetDouble("solver_seconds_total", &report_solver_total);
        const double attr_solver_total =
            cluster_attribution.SolverSecondsTotal();
        const double tolerance = 0.05 * report_solver_total + 0.05;
        // A dead shard's stats never merge but its last gossiped table
        // may linger: the totals only owe agreement on a clean run.
        if (!coordinator.degraded() &&
            std::abs(attr_solver_total - report_solver_total) >
                tolerance) {
            std::fprintf(stderr,
                         "FAIL: attributed solver seconds %.6f disagree "
                         "with solver_seconds_total %.6f (tolerance "
                         "%.6f)\n",
                         attr_solver_total, report_solver_total,
                         tolerance);
            ++failures;
        } else {
            std::printf("  smoke: attribution table has %zu locations; "
                        "%.3fs attributed vs %.3fs reported\n",
                        attr_locations, attr_solver_total,
                        report_solver_total);
        }
    }
    if (!options.flame_path.empty()) {
        if (flame_stacks.empty() ||
            flame_stacks.find(';') == std::string::npos ||
            flame_stacks.back() != '\n') {
            std::fprintf(stderr,
                         "FAIL: folded-stack file is empty or malformed\n");
            ++failures;
        } else {
            size_t stack_lines = 0;
            for (const char c : flame_stacks) {
                stack_lines += c == '\n' ? 1 : 0;
            }
            std::printf("  smoke: %zu folded stacks written\n",
                        stack_lines);
        }
    }

    // 2. The multi-process merged corpus covers a single-shard run of
    //    the same batch (identical global-index seeds make the corpora
    //    comparable key-for-key).
    ShardCoordinator::Options single_options = CoordinatorOptions(options);
    single_options.service.plateau_policy = {};  // Run every job.
    ShardCoordinator single(single_options);
    const bool baseline_ok =
        chef::shard::RunLoopbackShards(&single, jobs, 1, &error);
    if (!baseline_ok) {
        std::fprintf(stderr, "FAIL: single-shard baseline: %s\n",
                     error.c_str());
        ++failures;
    } else if (!options.plateau) {
        const std::vector<TestCorpus::Key> merged_keys =
            coordinator.corpus().Keys();
        const std::vector<TestCorpus::Key> single_keys =
            single.corpus().Keys();
        if (!CoversCorpus(merged_keys, single_keys)) {
            std::fprintf(stderr,
                         "FAIL: merged corpus (%zu keys) does not cover "
                         "the single-shard corpus (%zu keys)\n",
                         merged_keys.size(), single_keys.size());
            ++failures;
        } else {
            std::printf("  smoke: merged corpus covers the single-shard "
                        "corpus (%zu keys)\n",
                        single_keys.size());
        }
    }

    // 2b. Intra-session parallelism parity: deterministic round mode
    //    must produce exactly the corpus a single-threaded run of the
    //    same batch does (sessions are bounded by max_runs, so their
    //    results are thread-count-invariant).
    if (baseline_ok && !options.plateau && options.engine_threads > 1) {
        ShardCoordinator::Options serial_options =
            CoordinatorOptions(options);
        serial_options.service.plateau_policy = {};
        serial_options.service.engine_threads = 1;
        ShardCoordinator serial(serial_options);
        if (!chef::shard::RunLoopbackShards(&serial, jobs, 1, &error)) {
            std::fprintf(stderr,
                         "FAIL: engine-threads=1 parity baseline: %s\n",
                         error.c_str());
            ++failures;
        } else {
            const std::vector<TestCorpus::Key> wide_keys =
                single.corpus().Keys();
            const std::vector<TestCorpus::Key> serial_keys =
                serial.corpus().Keys();
            if (!CoversCorpus(wide_keys, serial_keys) ||
                !CoversCorpus(serial_keys, wide_keys)) {
                std::fprintf(stderr,
                             "FAIL: engine-threads corpus parity broken "
                             "— %u threads: %zu keys vs 1 thread: %zu "
                             "keys\n",
                             options.engine_threads, wide_keys.size(),
                             serial_keys.size());
                ++failures;
            } else {
                std::printf("  smoke: engine-threads corpus parity holds "
                            "(%u threads, %zu keys)\n",
                            options.engine_threads, serial_keys.size());
            }
            // 2c. Attribution thread parity: every count column of the
            //    table (steps, forks, runs, fingerprints, ...) is
            //    charged on serial commit paths, so deterministic round
            //    mode must produce *identical* counts at any thread
            //    width. Solver wall-nanos are real time and excluded
            //    (AttributionCountsEqual compares counts only).
            if (!chef::obs::AttributionCountsEqual(
                    single.ClusterAttribution(),
                    serial.ClusterAttribution())) {
                std::fprintf(stderr,
                             "FAIL: attribution counts differ between "
                             "%u engine threads and 1\n",
                             options.engine_threads);
                ++failures;
            } else {
                std::printf("  smoke: attribution tables identical at "
                            "%u threads vs 1 (count columns)\n",
                            options.engine_threads);
            }
        }
    }

    // 3. Chaos contract: the injected kill must have actually degraded
    //    the batch (death + requeue recorded, report flagged), and the
    //    recovery must be *lossless* — the merged corpus key set equals
    //    the undisturbed single-shard run's exactly, in both directions.
    if (!options.chaos.empty()) {
        const ShardCoordinator::FaultStats& fault = coordinator.fault();
        bool report_degraded = false;
        parsed.GetBool("degraded", &report_degraded);
        if (!chaos_killed || !coordinator.degraded() ||
            !report_degraded || fault.deaths < 1) {
            std::fprintf(stderr,
                         "FAIL: chaos kill-one did not degrade the batch "
                         "(killed=%d, degraded=%d, report=%d, deaths="
                         "%llu)\n",
                         chaos_killed ? 1 : 0,
                         coordinator.degraded() ? 1 : 0,
                         report_degraded ? 1 : 0,
                         static_cast<unsigned long long>(fault.deaths));
            ++failures;
        }
        if (fault.jobs_requeued < 1) {
            std::fprintf(stderr,
                         "FAIL: chaos kill-one left no jobs to requeue "
                         "(victim killed too late?)\n");
            ++failures;
        }
        bool victim_attributed = false;
        for (const ShardCoordinator::ShardOutcome& shard :
             coordinator.shards()) {
            victim_attributed =
                victim_attributed || !shard.death_cause.empty();
        }
        if (!victim_attributed) {
            std::fprintf(stderr,
                         "FAIL: no shard carries a death cause\n");
            ++failures;
        }
        if (baseline_ok && !options.plateau) {
            const std::vector<TestCorpus::Key> merged_keys =
                coordinator.corpus().Keys();
            const std::vector<TestCorpus::Key> single_keys =
                single.corpus().Keys();
            if (!CoversCorpus(merged_keys, single_keys) ||
                !CoversCorpus(single_keys, merged_keys)) {
                std::fprintf(stderr,
                             "FAIL: chaos corpus parity broken — merged "
                             "%zu keys vs undisturbed %zu keys\n",
                             merged_keys.size(), single_keys.size());
                ++failures;
            } else {
                std::printf("  smoke: chaos corpus parity holds (%zu "
                            "keys, %llu jobs requeued, %llu death(s))\n",
                            merged_keys.size(),
                            static_cast<unsigned long long>(
                                fault.jobs_requeued),
                            static_cast<unsigned long long>(
                                fault.deaths));
            }
        }
    }

    if (failures > 0) {
        std::fprintf(stderr, "chef_shard --smoke: %d failure(s)\n",
                     failures);
        return 1;
    }
    std::printf("  smoke: OK\n");
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    CliOptions options;
    if (!ParseArgs(argc, argv, &options)) {
        return 2;
    }
    if (options.worker) {
        return RunWorker();
    }
    return RunCoordinator(options, argv[0]);
}
