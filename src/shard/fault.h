#ifndef CHEF_SHARD_FAULT_H_
#define CHEF_SHARD_FAULT_H_

/// \file
/// Deterministic fault injection for shard transports.
///
/// FaultInjectingTransport decorates any Transport with a script of
/// fault rules: at the Nth send or receive, drop the message, delay it,
/// truncate it, corrupt bytes inside it, or close the channel. The
/// mangling is seeded, so a failing chaos run replays bit-identically —
/// every coordinator failure path (EOF, send failure, malformed line,
/// heartbeat silence) becomes a reproducible unit test instead of a
/// kill -9 in a shell loop. `chef_shard --chaos` builds on the same
/// decorator for the process-level smoke.
///
/// Operation ordinals are 1-based and count *attempts* on this
/// endpoint: the 3rd Send() call is `nth == 3` whether or not earlier
/// sends were themselves dropped. A rule fires at most once; rules with
/// the same (point, nth) all fire, in script order.

#include <cstdint>
#include <string>
#include <vector>

#include "shard/transport.h"

namespace chef::shard {

/// One scripted fault.
struct FaultRule {
    enum class Point {
        kSend,     ///< Applies to the Nth Send() on this endpoint.
        kReceive,  ///< Applies to the Nth delivered Receive() message.
    };
    enum class Action {
        kDrop,      ///< Swallow the message (send: report success;
                    ///< receive: discard and report timeout).
        kDelay,     ///< Sleep delay_seconds, then proceed normally.
        kTruncate,  ///< Pass through only a prefix of the message — the
                    ///< peer decodes a malformed JSON line.
        kCorrupt,   ///< Flip seeded bytes inside the message.
        kClose,     ///< Close the underlying transport instead.
    };
    Point point = Point::kSend;
    Action action = Action::kDrop;
    /// 1-based ordinal of the operation the rule fires at.
    uint64_t nth = 1;
    /// kDelay only.
    double delay_seconds = 0.0;
};

class FaultInjectingTransport : public Transport
{
  public:
    /// Decorates \p inner (not owned). \p seed drives the corrupt /
    /// truncate mangling deterministically.
    FaultInjectingTransport(Transport* inner, std::vector<FaultRule> rules,
                            uint64_t seed = 1);

    bool Send(const std::string& message) override;
    RecvStatus Receive(std::string* message, int timeout_ms) override;
    void Close() override;

    /// Operations attempted on this endpoint so far.
    uint64_t sends() const { return sends_; }
    uint64_t receives() const { return receives_; }
    /// Rules that have fired.
    uint64_t faults_fired() const { return faults_fired_; }

  private:
    /// Applies every matching unfired rule to \p message (which may be
    /// mangled in place). Returns false when a kDrop or kClose rule
    /// consumed the operation.
    bool Apply(FaultRule::Point point, uint64_t ordinal,
               std::string* message);

    uint64_t NextRandom();

    Transport* inner_;
    std::vector<FaultRule> rules_;
    std::vector<bool> fired_;
    uint64_t rng_state_;
    uint64_t sends_ = 0;
    uint64_t receives_ = 0;
    uint64_t faults_fired_ = 0;
};

}  // namespace chef::shard

#endif  // CHEF_SHARD_FAULT_H_
