#ifndef CHEF_SHARD_TRANSPORT_H_
#define CHEF_SHARD_TRANSPORT_H_

/// \file
/// Message transports for the coordinator/worker shard protocol.
///
/// A Transport is one bidirectional, ordered channel carrying the
/// newline-delimited JSON messages of shard/wire.h. Two implementations:
///
///  - Loopback: a pair of in-process endpoints over mutex-guarded
///    queues. Deterministic FIFO delivery, no I/O — the unit-test and
///    single-machine-bench substrate (shards become threads).
///  - Fd: buffered line framing over POSIX file descriptors — pipes to
///    a spawned `chef_shard --worker` subprocess, or the worker's own
///    stdin/stdout. Receive multiplexes with poll(2) timeouts so one
///    coordinator thread can serve many shards.
///
/// Messages are single lines by construction (JsonEscape keeps payloads
/// ASCII with no raw newlines), so framing is trivial and a partial line
/// at EOF is a protocol error, not a message.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

namespace chef::shard {

class Transport
{
  public:
    enum class RecvStatus {
        kMessage,  ///< One message delivered.
        kTimeout,  ///< Nothing arrived within the timeout.
        kClosed,   ///< Peer closed; no further messages will arrive.
    };

    virtual ~Transport() = default;

    /// Sends one message (the line terminator is added here). Returns
    /// false when the peer is gone.
    virtual bool Send(const std::string& message) = 0;

    /// Receives the next message. \p timeout_ms < 0 blocks
    /// indefinitely; 0 polls.
    virtual RecvStatus Receive(std::string* message, int timeout_ms) = 0;

    /// Closes this endpoint; the peer observes kClosed after draining.
    virtual void Close() = 0;
};

/// Two connected in-process endpoints: whatever `a` sends, `b` receives,
/// and vice versa. Both sides are thread-safe.
struct LoopbackPair {
    std::unique_ptr<Transport> a;
    std::unique_ptr<Transport> b;
};

LoopbackPair CreateLoopbackPair();

/// Line-framed transport over raw fds. With \p owns_fds the fds are
/// closed on Close()/destruction.
std::unique_ptr<Transport> CreateFdTransport(int read_fd, int write_fd,
                                             bool owns_fds);

/// A spawned `chef_shard --worker` subprocess with a pipe transport to
/// its stdin/stdout (stderr passes through for diagnostics).
struct WorkerProcess {
    std::unique_ptr<Transport> transport;
    pid_t pid = -1;
};

/// fork/exec \p binary with \p args (argv[0] is derived from binary).
/// Returns false with \p error on failure. SIGPIPE is ignored
/// process-wide on first use — a worker dying mid-send must surface as
/// a Send() failure, not kill the coordinator.
bool SpawnWorkerProcess(const std::string& binary,
                        const std::vector<std::string>& args,
                        WorkerProcess* process, std::string* error);

/// Waits for the subprocess; returns its exit code, or -1 on abnormal
/// termination.
int WaitWorkerProcess(pid_t pid);

/// Non-blocking liveness probe (waitpid WNOHANG). Returns true while
/// the subprocess is still running; false once it terminated, with a
/// human-readable cause ("exited with status 1", "killed by signal 9")
/// in \p cause. A terminated child is reaped by the probe — callers
/// must not double-wait the same pid expecting its status again.
bool ProbeWorkerProcess(pid_t pid, std::string* cause);

}  // namespace chef::shard

#endif  // CHEF_SHARD_TRANSPORT_H_
