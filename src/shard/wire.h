#ifndef CHEF_SHARD_WIRE_H_
#define CHEF_SHARD_WIRE_H_

/// \file
/// JSON wire format for the coordinator/worker shard protocol.
///
/// Every message is one line of strict RFC-8259 JSON (newline-delimited
/// framing; see shard/transport.h), built and parsed with support/json.h
/// so the wire obeys the same grammar the report contract promises. What
/// crosses the wire is the paper's "compact canonical artifacts" idea
/// applied to distribution: job descriptions, corpus fingerprint deltas,
/// and per-workload yield snapshots — never engine state or expression
/// DAGs.
///
/// Only the declarative subset of a JobSpec is serializable: callbacks
/// (Engine stop_requested hooks) and shared pointers (a pre-wired
/// solver_options.shared_cache) cannot cross a process boundary, and
/// CheckSerializable rejects them with a clear error at submit time
/// rather than silently dropping behavior. 64-bit identities (seeds,
/// fingerprints) travel as "0x..." hex strings; non-finite doubles
/// serialize as null and decode as 0.0 (support/json.h).

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attribution.h"
#include "obs/obs.h"
#include "obs/timeseries.h"
#include "service/corpus.h"
#include "service/job.h"
#include "service/service.h"

namespace chef::shard {

/// Bumped on incompatible wire changes; the coordinator refuses workers
/// announcing a different version instead of mis-decoding mid-batch.
/// v2: telemetry config in kRun, optional telemetry snapshots on
/// kGossip, telemetry + trace events in kResult.
constexpr int kProtocolVersion = 2;

/// Bumped on *compatible* additions within a major version; peers never
/// refuse a different minor. v2.1: optional "series" sample arrays on
/// kGossip and kResult (time-series telemetry), optional rate-mode
/// plateau fields in kRun. v2.2: optional "heartbeat_interval_seconds"
/// in kRun and the kHeartbeat message — a worker only emits heartbeats
/// when the run request asked for them, so a v2.1 coordinator (which
/// never asks) never sees the new message type. A v2.0 peer ignores
/// unknown optional fields and omits them on send; decoders default
/// every v2.1/v2.2 field. v2.3: optional "engine_threads" in the kRun
/// service config and optional "exploration_threads" per job spec
/// (intra-session parallel exploration); both omitted at their default
/// of 1, so a single-threaded run encodes byte-identically to v2.2.
/// v2.4: optional "attribution" per-location cost/yield snapshot on
/// kGossip and kResult (obs/attribution.h); omitted when the sender has
/// no table, so a run without attribution encodes byte-identically to
/// v2.3, and pre-v2.4 decoders ignore the key when present.
constexpr int kProtocolVersionMinor = 4;

enum class MessageType {
    kHello,      ///< worker -> coordinator: ready, protocol version.
    kRun,        ///< coordinator -> worker: run this batch partition.
    kGossip,     ///< both directions: corpus fingerprint delta + yields.
    kHeartbeat,  ///< worker -> coordinator: liveness + streamed results.
    kResult,     ///< worker -> coordinator: results, stats, local corpus.
    kShutdown,   ///< coordinator -> worker: exit cleanly.
    kError,      ///< either: fatal protocol/setup failure, with reason.
};

const char* MessageTypeName(MessageType type);

/// One job with its *global* batch index. The worker runs jobs in local
/// order but reports results under global indices, and the coordinator
/// pre-derives each job's exact seed from the global index — so the
/// partition cannot change any per-job result (see JobSpec::exact_seed).
struct WireJob {
    size_t job_index = 0;
    service::JobSpec spec;
};

/// The serializable subset of ExplorationService::Options. Streaming
/// sinks (on_job_event, event_queue) are coordinator-side concerns and
/// never cross the wire.
struct ServiceConfig {
    uint64_t seed = 1;
    size_t num_workers = 1;
    double max_total_seconds = 0.0;
    bool record_corpus_inputs = true;
    bool share_solver_cache = false;
    service::SchedulePolicy schedule_policy =
        service::SchedulePolicy::kYieldPriority;
    service::PlateauPolicy plateau_policy;
    /// Workers run their batch with phase tracing on and ship the spans
    /// back in the result message (obs contexts themselves never cross
    /// the wire — each worker builds its own registry/tracer).
    bool tracing = false;
    /// Cadence for telemetry snapshots piggybacked on gossip (and for
    /// local kMetrics events); 0 means final-result telemetry only.
    double metrics_interval_seconds = 0.0;
    /// v2.2: cadence for worker heartbeats while a batch runs; 0 (the
    /// pre-v2.2 behavior) disables them. Heartbeats double as the
    /// streamed-result channel: each one carries the jobs completed
    /// since the previous beat, so the coordinator can requeue only the
    /// genuinely unfinished remainder when the shard later dies.
    double heartbeat_interval_seconds = 0.0;
    /// v2.3: default intra-session exploration threads per job on the
    /// worker (clamped there against its core budget); 1 (the pre-v2.3
    /// behavior) keeps sessions single-threaded.
    uint32_t engine_threads = 1;

    service::ExplorationService::Options ToServiceOptions() const;
    static ServiceConfig FromServiceOptions(
        const service::ExplorationService::Options& options);
};

/// coordinator -> worker: the shard's partition of the batch.
struct RunRequest {
    size_t shard_id = 0;
    size_t num_shards = 1;
    ServiceConfig service;
    std::vector<WireJob> jobs;
};

/// worker -> coordinator while a batch runs (v2.2, only when the run
/// request set heartbeat_interval_seconds > 0). Liveness signal plus
/// the completed results since the previous beat, already remapped to
/// global job indices. The worker's pump sends the covering corpus
/// gossip delta *before* the heartbeat on the same ordered transport,
/// so any job a received heartbeat lists has its discoveries'
/// fingerprints already at the coordinator — the invariant that keeps
/// the corpus complete when the shard dies after the beat.
struct HeartbeatMessage {
    size_t shard_id = 0;
    /// Monotonic per-run beat counter (diagnostic only).
    uint64_t sequence = 0;
    std::vector<service::JobResult> results;
};

/// worker -> coordinator at batch end. `corpus` carries the shard's
/// *local-origin* entries in full (inputs included) plus its local yield
/// view; gossip-seeded remote entries are excluded — the discovering
/// shard reports those, so the union over shards has no echoes.
struct ResultMessage {
    size_t shard_id = 0;
    service::ServiceStats stats;
    std::vector<service::JobResult> results;
    service::TestCorpus::Delta corpus;
    /// Cross-shard dedup telemetry (see TestCorpus): gossip entries
    /// merged in, and local discoveries suppressed by them.
    size_t remote_entries = 0;
    size_t remote_duplicate_hits = 0;
    /// Final metrics snapshot of the shard's run (always present; empty
    /// when the worker recorded nothing).
    obs::MetricsSnapshot telemetry;
    /// Completed trace spans, pid-stamped shard_id + 1 (present only
    /// when the run request asked for tracing).
    std::vector<obs::TraceEvent> trace;
    /// v2.1: time-series samples not yet shipped via gossip (the tail of
    /// the worker's recorder). Empty from v2.0 workers or when the run
    /// disabled the metrics interval.
    std::vector<obs::SeriesSample> series;
    /// v2.4: the shard's final per-location attribution table. Empty
    /// from pre-v2.4 workers or when the run disabled attribution.
    obs::AttributionSnapshot attribution;
};

/// One decoded message. Tagged union as plain struct: only the payload
/// matching `type` is meaningful.
struct Message {
    MessageType type = MessageType::kError;
    int protocol_version = 0;                 ///< kHello.
    /// kHello: minor protocol revision; 0 from pre-v2.1 peers that
    /// never announce one.
    int protocol_minor = 0;
    RunRequest run;                           ///< kRun.
    service::TestCorpus::Delta gossip;        ///< kGossip.
    /// kGossip: live telemetry piggybacked on the delta (worker ->
    /// coordinator only, at the configured metrics interval).
    bool has_telemetry = false;
    obs::MetricsSnapshot telemetry;
    /// kGossip/kResult (v2.1): incremental time-series samples from the
    /// sender's recorder; empty from v2.0 peers.
    std::vector<obs::SeriesSample> series;
    /// kGossip (v2.4): cumulative attribution table piggybacked on the
    /// delta at the metrics cadence. Replace-by-latest at the receiver
    /// (each snapshot supersedes the previous one from that shard), so
    /// redelivery is idempotent. For kResult the table lives in
    /// `result.attribution`.
    bool has_attribution = false;
    obs::AttributionSnapshot attribution;
    HeartbeatMessage heartbeat;               ///< kHeartbeat.
    ResultMessage result;                     ///< kResult.
    std::string error;                        ///< kError.
};

/// True iff the spec can cross a process boundary. On failure fills
/// \p why with which field is non-serializable and what to use instead.
bool CheckSerializable(const service::JobSpec& spec, std::string* why);

std::string EncodeHello();
std::string EncodeRun(const RunRequest& request);
/// Gossip is the compact form of a delta: per-workload fingerprint
/// lists and the yield snapshot — no outcomes or inputs. A worker may
/// piggyback a live metrics snapshot (\p telemetry non-null) and/or
/// incremental time-series samples (\p series non-null and non-empty)
/// so the coordinator's cluster view stays current mid-batch, and/or a
/// cumulative attribution table (\p attribution non-null and non-empty;
/// v2.4).
std::string EncodeGossip(
    const service::TestCorpus::Delta& delta,
    const obs::MetricsSnapshot* telemetry = nullptr,
    const std::vector<obs::SeriesSample>* series = nullptr,
    const obs::AttributionSnapshot* attribution = nullptr);
std::string EncodeHeartbeat(const HeartbeatMessage& heartbeat);
std::string EncodeResult(const ResultMessage& result);
std::string EncodeShutdown();
std::string EncodeError(const std::string& reason);

/// Decodes any message type. Returns false (with \p error) on malformed
/// JSON, unknown type, or missing/mistyped fields.
bool DecodeMessage(const std::string& line, Message* message,
                   std::string* error);

}  // namespace chef::shard

#endif  // CHEF_SHARD_WIRE_H_
