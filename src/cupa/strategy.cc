#include "cupa/strategy.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace chef::cupa {

CupaStrategy::CupaStrategy(
    lowlevel::ExecutionTree* tree, Rng* rng, std::vector<LevelSpec> levels,
    std::function<double(const AlternateState&)> state_weight,
    std::string name)
    : tree_(tree),
      rng_(rng),
      levels_(std::move(levels)),
      state_weight_(std::move(state_weight)),
      name_(std::move(name))
{
    CHEF_CHECK(!levels_.empty());
}

void
CupaStrategy::AddLocked(const AlternateState& state)
{
    std::vector<uint64_t> keys;
    keys.reserve(levels_.size());
    ClassNode* node = &root_;
    ++node->total_states;
    for (const LevelSpec& level : levels_) {
        const uint64_t key = level.classify(state);
        keys.push_back(key);
        std::unique_ptr<ClassNode>& child = node->children[key];
        if (!child) {
            child = std::make_unique<ClassNode>();
        }
        node = child.get();
        ++node->total_states;
    }
    node->states.push_back(state.id);
    membership_.emplace(state.id, std::move(keys));
}

void
CupaStrategy::RemoveLocked(StateId id)
{
    auto it = membership_.find(id);
    if (it == membership_.end()) {
        return;
    }
    const std::vector<uint64_t>& keys = it->second;
    // Walk down, decrementing counts and pruning empty classes on the way
    // back up.
    std::vector<ClassNode*> path{&root_};
    ClassNode* node = &root_;
    for (uint64_t key : keys) {
        auto child_it = node->children.find(key);
        CHEF_CHECK(child_it != node->children.end());
        node = child_it->second.get();
        path.push_back(node);
    }
    auto state_it = std::find(node->states.begin(), node->states.end(), id);
    CHEF_CHECK(state_it != node->states.end());
    node->states.erase(state_it);
    for (ClassNode* entry : path) {
        --entry->total_states;
    }
    for (size_t depth = keys.size(); depth > 0; --depth) {
        ClassNode* parent = path[depth - 1];
        if (path[depth]->total_states == 0) {
            parent->children.erase(keys[depth - 1]);
        }
    }
    membership_.erase(it);
}

StateId
CupaStrategy::ClaimLocked()
{
    CHEF_CHECK(!membership_.empty());
    ClassNode* node = &root_;
    for (const LevelSpec& level : levels_) {
        CHEF_CHECK(!node->children.empty());
        std::vector<double> weights;
        std::vector<ClassNode*> children;
        weights.reserve(node->children.size());
        for (auto& [key, child] : node->children) {
            double weight = 1.0;
            if (level.class_weight) {
                weight = level.class_weight(key);
            }
            weights.push_back(weight);
            children.push_back(child.get());
        }
        node = children[rng_->PickWeighted(weights)];
    }
    CHEF_CHECK(!node->states.empty());
    if (!state_weight_) {
        return node->states[rng_->NextBelow(node->states.size())];
    }
    std::vector<double> weights;
    weights.reserve(node->states.size());
    for (StateId id : node->states) {
        const AlternateState* state = tree_->FindPending(id);
        weights.push_back(state != nullptr ? state_weight_(*state) : 0.0);
    }
    return node->states[rng_->PickWeighted(weights)];
}

void
RandomStrategy::AddLocked(const AlternateState& state)
{
    index_[state.id] = states_.size();
    states_.push_back(state.id);
}

void
RandomStrategy::RemoveLocked(StateId id)
{
    auto it = index_.find(id);
    if (it == index_.end()) {
        return;
    }
    const size_t pos = it->second;
    const StateId last = states_.back();
    states_[pos] = last;
    index_[last] = pos;
    states_.pop_back();
    index_.erase(it);
}

StateId
RandomStrategy::ClaimLocked()
{
    CHEF_CHECK(!states_.empty());
    return states_[rng_->NextBelow(states_.size())];
}

void
DfsStrategy::AddLocked(const AlternateState& state)
{
    ids_.emplace(state.id, true);
}

void
DfsStrategy::RemoveLocked(StateId id)
{
    ids_.erase(id);
}

StateId
DfsStrategy::ClaimLocked()
{
    CHEF_CHECK(!ids_.empty());
    return ids_.rbegin()->first;
}

void
BfsStrategy::AddLocked(const AlternateState& state)
{
    ids_.emplace(state.id, true);
}

void
BfsStrategy::RemoveLocked(StateId id)
{
    ids_.erase(id);
}

StateId
BfsStrategy::ClaimLocked()
{
    CHEF_CHECK(!ids_.empty());
    return ids_.begin()->first;
}

std::unique_ptr<CupaStrategy>
MakePathOptimizedCupa(lowlevel::ExecutionTree* tree, Rng* rng)
{
    std::vector<CupaStrategy::LevelSpec> levels(2);
    levels[0].classify = [](const AlternateState& state) {
        return state.dynamic_hlpc;
    };
    levels[1].classify = [](const AlternateState& state) {
        return state.llpc;
    };
    return std::make_unique<CupaStrategy>(tree, rng, std::move(levels),
                                          nullptr, "cupa-path");
}

std::unique_ptr<CupaStrategy>
MakeInvertedPathCupa(lowlevel::ExecutionTree* tree, Rng* rng)
{
    std::vector<CupaStrategy::LevelSpec> levels(2);
    levels[0].classify = [](const AlternateState& state) {
        return state.llpc;
    };
    levels[1].classify = [](const AlternateState& state) {
        return state.dynamic_hlpc;
    };
    return std::make_unique<CupaStrategy>(tree, rng, std::move(levels),
                                          nullptr, "cupa-path-inverted");
}

std::unique_ptr<CupaStrategy>
MakeCoverageOptimizedCupa(lowlevel::ExecutionTree* tree, Rng* rng,
                          DistanceWeightFn distance_weight)
{
    std::vector<CupaStrategy::LevelSpec> levels(1);
    levels[0].classify = [](const AlternateState& state) {
        return state.static_hlpc;
    };
    levels[0].class_weight = std::move(distance_weight);
    // Level 2 of §3.4 is "the state itself", weighted by fork weight;
    // realized here as the leaf-level per-state weight.
    return std::make_unique<CupaStrategy>(
        tree, rng, std::move(levels),
        [](const AlternateState& state) { return state.fork_weight; },
        "cupa-coverage");
}

}  // namespace chef::cupa
