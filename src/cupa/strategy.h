#ifndef CHEF_CUPA_STRATEGY_H_
#define CHEF_CUPA_STRATEGY_H_

/// \file
/// State selection strategies, including Class-Uniform Path Analysis (§3.2).
///
/// A strategy watches the pool of pending alternate states and, when the
/// engine needs the next state to explore, claims one. CUPA organizes the
/// pool into a hierarchy of classes (Figure 5) and picks by random descent:
/// first a class, uniformly (or by class weight), then recursively within.
///
/// Claim/release protocol: ClaimState() picks a state id without removing
/// it from the strategy's own structures — the caller immediately leases it
/// through ExecutionTree::ClaimState/TakePending, whose pending-removed hook
/// drives OnStateRemoved; ExecutionTree::ReleaseClaim re-announces a
/// handed-back state through the state-added hook, driving OnStateAdded.
/// Every public entry point locks an internal mutex, so one strategy
/// instance may be driven by several exploration workers; under the
/// engine's shared tree all strategy calls additionally happen under the
/// tree lock (hooks and selection callbacks), giving a single lock order
/// (tree, then strategy). With one worker the behavior — including every
/// RNG draw — is bit-identical to the pre-claim-protocol SelectState().

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "lowlevel/exec_tree.h"
#include "support/rng.h"

namespace chef::cupa {

using lowlevel::AlternateState;
using lowlevel::StateId;

/// Interface for state selection. Public methods are thread-safe; derived
/// classes implement the *Locked virtuals, which run under the strategy
/// mutex.
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /// A state entered the pending pool.
    void OnStateAdded(const AlternateState& state)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        AddLocked(state);
    }

    /// A state left the pending pool (claimed, overtaken, or infeasible).
    void OnStateRemoved(StateId id)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        RemoveLocked(id);
    }

    /// Claims a pending state for exploration. Must not be called when
    /// empty(). The claimed state must then be leased from the tree
    /// (TakePending / ExecutionTree::ClaimState), which fires
    /// OnStateRemoved; until a claim is leased the strategy still counts
    /// it.
    StateId ClaimState()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return ClaimLocked();
    }

    bool empty() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return SizeLocked() == 0;
    }

    size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return SizeLocked();
    }

    virtual std::string name() const = 0;

  protected:
    virtual void AddLocked(const AlternateState& state) = 0;
    virtual void RemoveLocked(StateId id) = 0;
    virtual StateId ClaimLocked() = 0;
    virtual size_t SizeLocked() const = 0;

  private:
    mutable std::mutex mutex_;
};

/// Generic N-level CUPA strategy (Figure 5).
///
/// Each level is a classification function h_i mapping a state to a class
/// key, with an optional class weight; sibling classes are selected with
/// probability proportional to their weight (uniform by default). At the
/// leaves, an optional per-state weight biases the final pick (used by
/// coverage-optimized CUPA for fork weights, §3.4).
class CupaStrategy : public SearchStrategy
{
  public:
    struct LevelSpec {
        /// Maps a state to its class key at this level.
        std::function<uint64_t(const AlternateState&)> classify;
        /// Weight of a class (evaluated at selection time); null = uniform.
        std::function<double(uint64_t class_key)> class_weight;
    };

    /// \p tree is consulted to read current state attributes (e.g. fork
    /// weights) at selection time.
    CupaStrategy(lowlevel::ExecutionTree* tree, Rng* rng,
                 std::vector<LevelSpec> levels,
                 std::function<double(const AlternateState&)> state_weight,
                 std::string name);

    std::string name() const override { return name_; }

  protected:
    void AddLocked(const AlternateState& state) override;
    void RemoveLocked(StateId id) override;
    StateId ClaimLocked() override;
    size_t SizeLocked() const override { return membership_.size(); }

  private:
    struct ClassNode {
        // Child classes, keyed by class key (ordered map for deterministic
        // iteration under a fixed RNG seed).
        std::map<uint64_t, std::unique_ptr<ClassNode>> children;
        // States at a leaf node.
        std::vector<StateId> states;
        size_t total_states = 0;
    };

    lowlevel::ExecutionTree* tree_;
    Rng* rng_;
    std::vector<LevelSpec> levels_;
    std::function<double(const AlternateState&)> state_weight_;
    std::string name_;

    ClassNode root_;
    std::unordered_map<StateId, std::vector<uint64_t>> membership_;
};

/// Baseline: uniform random selection over all pending states (the paper's
/// "random state selection" baseline configuration).
class RandomStrategy : public SearchStrategy
{
  public:
    explicit RandomStrategy(Rng* rng) : rng_(rng) {}

    std::string name() const override { return "random"; }

  protected:
    void AddLocked(const AlternateState& state) override;
    void RemoveLocked(StateId id) override;
    StateId ClaimLocked() override;
    size_t SizeLocked() const override { return states_.size(); }

  private:
    Rng* rng_;
    std::vector<StateId> states_;
    std::unordered_map<StateId, size_t> index_;
};

/// Baseline: depth-first (always the most recently registered state).
class DfsStrategy : public SearchStrategy
{
  public:
    std::string name() const override { return "dfs"; }

  protected:
    void AddLocked(const AlternateState& state) override;
    void RemoveLocked(StateId id) override;
    StateId ClaimLocked() override;
    size_t SizeLocked() const override { return ids_.size(); }

  private:
    // Sorted container used as a stack with arbitrary removal.
    std::map<StateId, bool> ids_;
};

/// Baseline: breadth-first (always the oldest registered state).
class BfsStrategy : public SearchStrategy
{
  public:
    std::string name() const override { return "bfs"; }

  protected:
    void AddLocked(const AlternateState& state) override;
    void RemoveLocked(StateId id) override;
    StateId ClaimLocked() override;
    size_t SizeLocked() const override { return ids_.size(); }

  private:
    std::map<StateId, bool> ids_;
};

// ---------------------------------------------------------------------------
// Paper instantiations.
// ---------------------------------------------------------------------------

/// Path-optimized CUPA (§3.3): level 1 classes are dynamic HLPCs, level 2
/// classes are low-level PCs; uniform class probabilities.
std::unique_ptr<CupaStrategy> MakePathOptimizedCupa(
    lowlevel::ExecutionTree* tree, Rng* rng);

/// Ablation: path-optimized CUPA with the level order inverted (LLPC above
/// dynamic HLPC); used by the fig8 ablation flag.
std::unique_ptr<CupaStrategy> MakeInvertedPathCupa(
    lowlevel::ExecutionTree* tree, Rng* rng);

/// Interface the coverage-optimized CUPA uses to read CFG distances.
using DistanceWeightFn = std::function<double(uint64_t static_hlpc)>;

/// Coverage-optimized CUPA (§3.4): level 1 classes are static HLPCs
/// weighted by 1/d to the nearest potential branching point; level 2 is the
/// state itself, weighted by fork weight.
std::unique_ptr<CupaStrategy> MakeCoverageOptimizedCupa(
    lowlevel::ExecutionTree* tree, Rng* rng,
    DistanceWeightFn distance_weight);

}  // namespace chef::cupa

#endif  // CHEF_CUPA_STRATEGY_H_
