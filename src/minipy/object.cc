#include "minipy/object.h"

#include "interp/mem_ops.h"
#include "minipy/vm.h"
#include "support/diagnostics.h"

namespace chef::minipy {

using namespace chef::lowlevel;  // NOLINT

const char*
PyTypeName(PyType type)
{
    switch (type) {
      case PyType::kNone: return "NoneType";
      case PyType::kBool: return "bool";
      case PyType::kInt: return "int";
      case PyType::kStr: return "str";
      case PyType::kList: return "list";
      case PyType::kTuple: return "tuple";
      case PyType::kDict: return "dict";
      case PyType::kFunction: return "function";
      case PyType::kBuiltin: return "builtin_function_or_method";
      case PyType::kBoundMethod: return "method";
      case PyType::kClass: return "type";
      case PyType::kInstance: return "object";
      case PyType::kRange: return "range";
      case PyType::kIterator: return "iterator";
    }
    return "?";
}

PyRef
MakeNone()
{
    static const PyRef none = std::make_shared<PyObject>(PyType::kNone);
    return none;
}

PyRef
MakeBool(SymValue value)
{
    auto object = std::make_shared<PyObject>(PyType::kBool);
    object->num = SvZExt(value, 64);
    return object;
}

PyRef
MakeInt(SymValue value)
{
    auto object = std::make_shared<PyObject>(PyType::kInt);
    object->num = value.width() == 64 ? value : SvSExt(value, 64);
    return object;
}

PyRef
MakeInt64(int64_t value)
{
    return MakeInt(SymValue(static_cast<uint64_t>(value), 64));
}

PyRef
MakeStr(SymStr value)
{
    auto object = std::make_shared<PyObject>(PyType::kStr);
    object->str = std::move(value);
    return object;
}

PyRef
MakeStrC(const std::string& value)
{
    return MakeStr(interp::ConcreteStr(value));
}

PyRef
MakeList(std::vector<PyRef> items)
{
    auto object = std::make_shared<PyObject>(PyType::kList);
    object->items = std::move(items);
    return object;
}

PyRef
MakeTuple(std::vector<PyRef> items)
{
    auto object = std::make_shared<PyObject>(PyType::kTuple);
    object->items = std::move(items);
    return object;
}

PyRef
MakeDict()
{
    return std::make_shared<PyObject>(PyType::kDict);
}

uint64_t
PyDict::BucketFor(Vm& vm, const PyRef& key, uint64_t num_buckets)
{
    const SymValue hash = vm.HashKey(key);
    return interp::ResolveBucket(vm.rt(), hash, num_buckets);
}

PyRef*
PyDict::Find(Vm& vm, const PyRef& key)
{
    if (vm.raised()) {
        return nullptr;
    }
    const uint64_t bucket = BucketFor(vm, key, buckets_.size());
    if (vm.raised()) {
        return nullptr;
    }
    for (uint32_t index : buckets_[bucket]) {
        Entry& entry = entries_[index];
        if (!entry.alive) {
            continue;
        }
        if (vm.rt()->Branch(vm.ValueEq(entry.key, key), CHEF_LLPC)) {
            return &entry.value;
        }
        if (!vm.rt()->running()) {
            return nullptr;
        }
    }
    return nullptr;
}

void
PyDict::Set(Vm& vm, const PyRef& key, PyRef value)
{
    if (PyRef* slot = Find(vm, key)) {
        *slot = std::move(value);
        return;
    }
    if (vm.raised() || !vm.rt()->running()) {
        return;
    }
    MaybeGrow(vm);
    const uint64_t bucket = BucketFor(vm, key, buckets_.size());
    if (vm.raised()) {
        return;
    }
    buckets_[bucket].push_back(static_cast<uint32_t>(entries_.size()));
    entries_.push_back({key, std::move(value), true});
    ++live_count_;
}

bool
PyDict::Erase(Vm& vm, const PyRef& key)
{
    if (vm.raised()) {
        return false;
    }
    const uint64_t bucket = BucketFor(vm, key, buckets_.size());
    if (vm.raised()) {
        return false;
    }
    auto& chain = buckets_[bucket];
    for (size_t i = 0; i < chain.size(); ++i) {
        Entry& entry = entries_[chain[i]];
        if (!entry.alive) {
            continue;
        }
        if (vm.rt()->Branch(vm.ValueEq(entry.key, key), CHEF_LLPC)) {
            entry.alive = false;
            chain.erase(chain.begin() + static_cast<long>(i));
            --live_count_;
            return true;
        }
        if (!vm.rt()->running()) {
            return false;
        }
    }
    return false;
}

void
PyDict::MaybeGrow(Vm& vm)
{
    if (live_count_ + 1 <= buckets_.size() * 2 / 3) {
        return;
    }
    // Rehash into twice as many buckets; recomputes every key hash with
    // full instrumentation, like a real table resize would.
    const uint64_t new_size = buckets_.size() * 2;
    std::vector<std::vector<uint32_t>> fresh(new_size);
    for (uint32_t index = 0; index < entries_.size(); ++index) {
        if (!entries_[index].alive) {
            continue;
        }
        const uint64_t bucket =
            BucketFor(vm, entries_[index].key, new_size);
        if (vm.raised() || !vm.rt()->running()) {
            return;
        }
        fresh[bucket].push_back(index);
    }
    buckets_ = std::move(fresh);
}

}  // namespace chef::minipy
