/// \file
/// MiniPy builtin functions and methods. String and container routines run
/// through the instrumented substrate so their interpreter-internal control
/// flow forks exactly like CPython's C code would under low-level symbolic
/// execution.

#include "minipy/builtin_ids.h"
#include "minipy/vm.h"
#include "support/diagnostics.h"

namespace chef::minipy {

using namespace chef::lowlevel;  // NOLINT
using interp::ConcreteStr;
using interp::ConcreteView;

int
Vm::LookupBuiltinMethod(PyType type, const std::string& name) const
{
    switch (type) {
      case PyType::kStr:
        if (name == "find") return kStrFind;
        if (name == "split") return kStrSplit;
        if (name == "strip") return kStrStrip;
        if (name == "lstrip") return kStrLstrip;
        if (name == "rstrip") return kStrRstrip;
        if (name == "startswith") return kStrStartswith;
        if (name == "endswith") return kStrEndswith;
        if (name == "lower") return kStrLower;
        if (name == "upper") return kStrUpper;
        if (name == "join") return kStrJoin;
        if (name == "replace") return kStrReplace;
        if (name == "count") return kStrCount;
        if (name == "isdigit") return kStrIsdigit;
        if (name == "isalpha") return kStrIsalpha;
        if (name == "isspace") return kStrIsspace;
        if (name == "index") return kStrIndex;
        return 0;
      case PyType::kList:
        if (name == "append") return kListAppend;
        if (name == "pop") return kListPop;
        if (name == "extend") return kListExtend;
        if (name == "insert") return kListInsert;
        if (name == "index") return kListIndex;
        if (name == "remove") return kListRemove;
        if (name == "reverse") return kListReverse;
        if (name == "count") return kListCount;
        return 0;
      case PyType::kDict:
        if (name == "get") return kDictGet;
        if (name == "keys") return kDictKeys;
        if (name == "values") return kDictValues;
        if (name == "items") return kDictItems;
        if (name == "setdefault") return kDictSetdefault;
        if (name == "pop") return kDictPop;
        if (name == "update") return kDictUpdate;
        return 0;
      default:
        return 0;
    }
}

namespace {

bool
IsNum(const PyRef& value)
{
    return value->type == PyType::kInt || value->type == PyType::kBool;
}

}  // namespace

PyRef
Vm::CallBuiltinFunction(int builtin_id, std::vector<PyRef>& args)
{
    auto arity_error = [this](const char* name) {
        RaiseError("TypeError",
                   std::string(name) + "() received a bad argument count");
        return MakeNone();
    };

    switch (builtin_id) {
      case kFnLen: {
        if (args.size() != 1) return arity_error("len");
        const PyRef& value = args[0];
        switch (value->type) {
          case PyType::kStr:
            return MakeInt64(static_cast<int64_t>(value->str.size()));
          case PyType::kList:
          case PyType::kTuple:
            return MakeInt64(static_cast<int64_t>(value->items.size()));
          case PyType::kDict:
            return MakeInt64(static_cast<int64_t>(value->dict.size()));
          default:
            RaiseError("TypeError",
                       std::string("object of type '") +
                           PyTypeName(value->type) + "' has no len()");
            return MakeNone();
        }
      }
      case kFnOrd: {
        if (args.size() != 1 || args[0]->type != PyType::kStr ||
            args[0]->str.size() != 1) {
            RaiseError("TypeError",
                       "ord() expects a string of length 1");
            return MakeNone();
        }
        return MakeInt(SvZExt(args[0]->str[0], 64));
      }
      case kFnChr: {
        if (args.size() != 1 || !IsNum(args[0])) {
            return arity_error("chr");
        }
        const SymValue in_range =
            SvBoolAnd(SvSge(args[0]->num, SymValue(0, 64)),
                      SvSlt(args[0]->num, SymValue(256, 64)));
        if (!rt_->Branch(in_range, CHEF_LLPC)) {
            RaiseError("ValueError", "chr() arg not in range(256)");
            return MakeNone();
        }
        return MakeStr({SvTrunc(args[0]->num, 8)});
      }
      case kFnStr: {
        if (args.empty()) {
            return MakeStrC("");
        }
        return MakeStr(ToStr(args[0]));
      }
      case kFnRepr: {
        if (args.size() != 1) return arity_error("repr");
        return MakeStr(ToRepr(args[0]));
      }
      case kFnInt: {
        if (args.empty() || args.size() > 2) return arity_error("int");
        if (args.size() == 2) {
            RaiseError("TypeError",
                       "int() with an explicit base is not supported");
            return MakeNone();
        }
        const PyRef& value = args[0];
        if (IsNum(value)) {
            return MakeInt(value->num);
        }
        if (value->type == PyType::kStr) {
            // Leading/trailing ASCII whitespace is accepted, as in
            // CPython.
            int start = 0;
            int end = static_cast<int>(value->str.size());
            while (start < end &&
                   rt_->Branch(str_ops_.IsSpace(value->str[start]),
                               CHEF_LLPC)) {
                ++start;
            }
            while (end > start &&
                   rt_->Branch(str_ops_.IsSpace(value->str[end - 1]),
                               CHEF_LLPC)) {
                --end;
            }
            SymValue parsed;
            if (!interp::ParseInt(str_ops_, value->str, start, end,
                                  &parsed)) {
                if (rt_->running()) {
                    RaiseError("ValueError",
                               "invalid literal for int(): '" +
                                   ConcreteView(value->str) + "'");
                }
                return MakeNone();
            }
            return MakeArithInt(parsed);
        }
        RaiseError("TypeError", "int() argument must be a string or a "
                                "number");
        return MakeNone();
      }
      case kFnBool: {
        if (args.empty()) {
            return MakeBool(SymValue(0, 1));
        }
        return MakeBool(Truthy(args[0]));
      }
      case kFnRange: {
        if (args.empty() || args.size() > 3) return arity_error("range");
        for (const PyRef& arg : args) {
            if (!IsNum(arg)) {
                RaiseError("TypeError", "range() expects integers");
                return MakeNone();
            }
        }
        auto range = std::make_shared<PyObject>(PyType::kRange);
        if (args.size() == 1) {
            range->range_start = SymValue(0, 64);
            range->range_stop = args[0]->num;
        } else {
            range->range_start = args[0]->num;
            range->range_stop = args[1]->num;
        }
        range->range_step =
            args.size() == 3 ? ConcretizeStep(args[2]->num) : 1;
        if (range->range_step == 0) {
            RaiseError("ValueError", "range() arg 3 must not be zero");
            return MakeNone();
        }
        return range;
      }
      case kFnPrint: {
        SymStr line;
        for (size_t i = 0; i < args.size(); ++i) {
            if (i > 0) {
                line.emplace_back(' ', 8);
            }
            const SymStr text = ToStr(args[i]);
            line.insert(line.end(), text.begin(), text.end());
        }
        output_ += ConcreteView(line);
        output_ += '\n';
        return MakeNone();
      }
      case kFnIsinstance: {
        if (args.size() != 2) return arity_error("isinstance");
        return MakeBool(
            SymValue(IsInstanceOf(args[0], args[1]) ? 1 : 0, 1));
      }
      case kFnMin:
      case kFnMax: {
        std::vector<PyRef> values;
        if (args.size() == 1 && (args[0]->type == PyType::kList ||
                                 args[0]->type == PyType::kTuple)) {
            values = args[0]->items;
        } else {
            values = args;
        }
        if (values.empty()) {
            RaiseError("ValueError", "min()/max() of empty sequence");
            return MakeNone();
        }
        PyRef best = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
            if (!IsNum(values[i]) || !IsNum(best)) {
                RaiseError("TypeError",
                           "min()/max() supports integers only");
                return MakeNone();
            }
            const SymValue better =
                builtin_id == kFnMin ? SvSlt(values[i]->num, best->num)
                                     : SvSgt(values[i]->num, best->num);
            if (rt_->Branch(better, CHEF_LLPC)) {
                best = values[i];
            }
        }
        return best;
      }
      case kFnAbs: {
        if (args.size() != 1 || !IsNum(args[0])) {
            return arity_error("abs");
        }
        const SymValue negative =
            SvSlt(args[0]->num, SymValue(0, 64));
        return MakeArithInt(
            SvIte(negative, SvNeg(args[0]->num), args[0]->num));
      }
      case kFnList: {
        if (args.empty()) {
            return MakeList({});
        }
        if (args.size() != 1) return arity_error("list");
        PyRef iterator = GetIter(args[0]);
        if (raised()) {
            return MakeNone();
        }
        std::vector<PyRef> items;
        for (;;) {
            bool exhausted = false;
            PyRef item = IterNext(iterator, &exhausted);
            if (raised() || exhausted || !rt_->running()) {
                break;
            }
            items.push_back(std::move(item));
        }
        return MakeList(std::move(items));
      }
      case kFnTuple: {
        if (args.empty()) {
            return MakeTuple({});
        }
        if (args.size() != 1) return arity_error("tuple");
        if (args[0]->type == PyType::kList ||
            args[0]->type == PyType::kTuple) {
            return MakeTuple(args[0]->items);
        }
        RaiseError("TypeError", "tuple() expects a sequence");
        return MakeNone();
      }
      case kFnDict: {
        if (!args.empty()) {
            RaiseError("TypeError", "dict() takes no arguments");
            return MakeNone();
        }
        return MakeDict();
      }
      default:
        CHEF_UNREACHABLE("unknown builtin function id");
    }
}

PyRef
Vm::CallBuiltinMethod(const PyRef& self, int method_id,
                      std::vector<PyRef>& args)
{
    auto arg_str = [this](const std::vector<PyRef>& a, size_t i) -> const
        SymStr* {
        if (i >= a.size() || a[i]->type != PyType::kStr) {
            RaiseError("TypeError", "expected a string argument");
            return nullptr;
        }
        return &a[i]->str;
    };

    switch (method_id) {
      // ---- str -------------------------------------------------------------
      case kStrFind:
      case kStrIndex: {
        const SymStr* needle = arg_str(args, 0);
        if (needle == nullptr) return MakeNone();
        int start = 0;
        if (args.size() > 1) {
            if (!IsNum(args[1])) {
                RaiseError("TypeError", "find() start must be an int");
                return MakeNone();
            }
            start = static_cast<int>(interp::ResolveIndex(
                rt_, args[1]->num, self->str.size() + 1));
        }
        const int position = str_ops_.Find(self->str, *needle, start);
        if (method_id == kStrIndex && position < 0) {
            RaiseError("ValueError", "substring not found");
            return MakeNone();
        }
        return MakeInt64(position);
      }
      case kStrStartswith:
      case kStrEndswith: {
        const SymStr* prefix = arg_str(args, 0);
        if (prefix == nullptr) return MakeNone();
        if (method_id == kStrStartswith) {
            return MakeBool(str_ops_.StartsWith(self->str, *prefix, 0));
        }
        if (prefix->size() > self->str.size()) {
            return MakeBool(SymValue(0, 1));
        }
        return MakeBool(str_ops_.StartsWith(
            self->str, *prefix,
            static_cast<int>(self->str.size() - prefix->size())));
      }
      case kStrSplit: {
        std::vector<PyRef> parts;
        if (args.empty()) {
            // Whitespace split: skips runs of whitespace.
            SymStr current;
            for (const SymValue& byte : self->str) {
                if (rt_->Branch(str_ops_.IsSpace(byte), CHEF_LLPC)) {
                    if (!current.empty()) {
                        parts.push_back(MakeStr(std::move(current)));
                        current = SymStr();
                    }
                } else {
                    current.push_back(byte);
                }
                if (!rt_->running()) {
                    return MakeNone();
                }
            }
            if (!current.empty()) {
                parts.push_back(MakeStr(std::move(current)));
            }
            return MakeList(std::move(parts));
        }
        const SymStr* sep = arg_str(args, 0);
        if (sep == nullptr) return MakeNone();
        if (sep->empty()) {
            RaiseError("ValueError", "empty separator");
            return MakeNone();
        }
        int64_t max_split = -1;
        if (args.size() > 1 && IsNum(args[1])) {
            max_split = static_cast<int64_t>(
                rt_->Concretize(args[1]->num));
        }
        SymStr current;
        size_t i = 0;
        int64_t splits = 0;
        while (i < self->str.size()) {
            if ((max_split < 0 || splits < max_split) &&
                i + sep->size() <= self->str.size() &&
                rt_->Branch(str_ops_.StartsWith(
                                self->str, *sep, static_cast<int>(i)),
                            CHEF_LLPC)) {
                parts.push_back(MakeStr(std::move(current)));
                current = SymStr();
                i += sep->size();
                ++splits;
            } else {
                current.push_back(self->str[i]);
                ++i;
            }
            if (!rt_->running()) {
                return MakeNone();
            }
        }
        parts.push_back(MakeStr(std::move(current)));
        return MakeList(std::move(parts));
      }
      case kStrStrip:
      case kStrLstrip:
      case kStrRstrip: {
        size_t begin = 0;
        size_t end = self->str.size();
        if (method_id != kStrRstrip) {
            while (begin < end &&
                   rt_->Branch(str_ops_.IsSpace(self->str[begin]),
                               CHEF_LLPC)) {
                ++begin;
            }
        }
        if (method_id != kStrLstrip) {
            while (end > begin &&
                   rt_->Branch(str_ops_.IsSpace(self->str[end - 1]),
                               CHEF_LLPC)) {
                --end;
            }
        }
        return MakeStr(SymStr(self->str.begin() + begin,
                              self->str.begin() + end));
      }
      case kStrLower:
      case kStrUpper: {
        SymStr out;
        out.reserve(self->str.size());
        for (const SymValue& byte : self->str) {
            rt_->CountStep();
            out.push_back(method_id == kStrLower
                              ? str_ops_.ToLower(byte)
                              : str_ops_.ToUpper(byte));
        }
        return MakeStr(std::move(out));
      }
      case kStrJoin: {
        if (args.size() != 1 || (args[0]->type != PyType::kList &&
                                 args[0]->type != PyType::kTuple)) {
            RaiseError("TypeError", "join() expects a sequence");
            return MakeNone();
        }
        SymStr out;
        for (size_t i = 0; i < args[0]->items.size(); ++i) {
            const PyRef& item = args[0]->items[i];
            if (item->type != PyType::kStr) {
                RaiseError("TypeError",
                           "join() sequence items must be strings");
                return MakeNone();
            }
            if (i > 0) {
                out.insert(out.end(), self->str.begin(),
                           self->str.end());
            }
            out.insert(out.end(), item->str.begin(), item->str.end());
        }
        return MakeStr(std::move(out));
      }
      case kStrReplace: {
        const SymStr* old_text = arg_str(args, 0);
        if (old_text == nullptr) return MakeNone();
        const SymStr* new_text = arg_str(args, 1);
        if (new_text == nullptr) return MakeNone();
        if (old_text->empty()) {
            RaiseError("ValueError", "replace() of empty substring");
            return MakeNone();
        }
        SymStr out;
        size_t i = 0;
        while (i < self->str.size()) {
            if (i + old_text->size() <= self->str.size() &&
                rt_->Branch(str_ops_.StartsWith(self->str, *old_text,
                                                static_cast<int>(i)),
                            CHEF_LLPC)) {
                out.insert(out.end(), new_text->begin(),
                           new_text->end());
                i += old_text->size();
            } else {
                out.push_back(self->str[i]);
                ++i;
            }
            if (!rt_->running()) {
                return MakeNone();
            }
        }
        return MakeStr(std::move(out));
      }
      case kStrCount: {
        const SymStr* needle = arg_str(args, 0);
        if (needle == nullptr) return MakeNone();
        if (needle->empty()) {
            return MakeInt64(
                static_cast<int64_t>(self->str.size()) + 1);
        }
        int64_t count = 0;
        size_t i = 0;
        while (i + needle->size() <= self->str.size()) {
            if (rt_->Branch(str_ops_.StartsWith(self->str, *needle,
                                                static_cast<int>(i)),
                            CHEF_LLPC)) {
                ++count;
                i += needle->size();
            } else {
                ++i;
            }
            if (!rt_->running()) {
                return MakeNone();
            }
        }
        return MakeInt64(count);
      }
      case kStrIsdigit:
      case kStrIsalpha:
      case kStrIsspace: {
        if (self->str.empty()) {
            return MakeBool(SymValue(0, 1));
        }
        SymValue all(1, 1);
        for (const SymValue& byte : self->str) {
            rt_->CountStep();
            SymValue one;
            if (method_id == kStrIsdigit) {
                one = str_ops_.IsDigit(byte);
            } else if (method_id == kStrIsalpha) {
                one = str_ops_.IsAlpha(byte);
            } else {
                one = str_ops_.IsSpace(byte);
            }
            all = SvBoolAnd(all, one);
        }
        return MakeBool(all);
      }

      // ---- list ------------------------------------------------------------
      case kListAppend: {
        if (args.size() != 1) {
            RaiseError("TypeError", "append() takes one argument");
            return MakeNone();
        }
        self->items.push_back(args[0]);
        return MakeNone();
      }
      case kListPop: {
        if (self->items.empty()) {
            RaiseError("IndexError", "pop from empty list");
            return MakeNone();
        }
        uint64_t position = self->items.size() - 1;
        if (!args.empty()) {
            if (!ResolveSequenceIndex(args[0], self->items.size(),
                                      &position)) {
                return MakeNone();
            }
        }
        PyRef value = self->items[position];
        self->items.erase(self->items.begin() +
                          static_cast<long>(position));
        return value;
      }
      case kListExtend: {
        if (args.size() != 1 || (args[0]->type != PyType::kList &&
                                 args[0]->type != PyType::kTuple)) {
            RaiseError("TypeError", "extend() expects a sequence");
            return MakeNone();
        }
        // Self-extension copies first (x.extend(x)).
        const std::vector<PyRef> source = args[0]->items;
        self->items.insert(self->items.end(), source.begin(),
                           source.end());
        return MakeNone();
      }
      case kListInsert: {
        if (args.size() != 2 || !IsNum(args[0])) {
            RaiseError("TypeError", "insert() expects (index, value)");
            return MakeNone();
        }
        int64_t position = static_cast<int64_t>(interp::ResolveIndex(
            rt_, args[0]->num, self->items.size() + 1));
        if (position < 0) {
            position = 0;
        }
        if (position > static_cast<int64_t>(self->items.size())) {
            position = static_cast<int64_t>(self->items.size());
        }
        self->items.insert(self->items.begin() + position, args[1]);
        return MakeNone();
      }
      case kListIndex: {
        for (size_t i = 0; i < self->items.size(); ++i) {
            if (rt_->Branch(ValueEq(self->items[i], args[0]),
                            CHEF_LLPC)) {
                return MakeInt64(static_cast<int64_t>(i));
            }
            if (!rt_->running()) {
                return MakeNone();
            }
        }
        RaiseError("ValueError", "value not in list");
        return MakeNone();
      }
      case kListRemove: {
        for (size_t i = 0; i < self->items.size(); ++i) {
            if (rt_->Branch(ValueEq(self->items[i], args[0]),
                            CHEF_LLPC)) {
                self->items.erase(self->items.begin() +
                                  static_cast<long>(i));
                return MakeNone();
            }
            if (!rt_->running()) {
                return MakeNone();
            }
        }
        RaiseError("ValueError", "list.remove(x): x not in list");
        return MakeNone();
      }
      case kListReverse: {
        std::reverse(self->items.begin(), self->items.end());
        return MakeNone();
      }
      case kListCount: {
        int64_t count = 0;
        for (const PyRef& item : self->items) {
            if (rt_->Branch(ValueEq(item, args[0]), CHEF_LLPC)) {
                ++count;
            }
            if (!rt_->running()) {
                return MakeNone();
            }
        }
        return MakeInt64(count);
      }

      // ---- dict ------------------------------------------------------------
      case kDictGet: {
        if (args.empty() || args.size() > 2) {
            RaiseError("TypeError", "get() expects 1 or 2 arguments");
            return MakeNone();
        }
        PyRef* slot = self->dict.Find(*this, args[0]);
        if (raised()) {
            return MakeNone();
        }
        if (slot != nullptr) {
            return *slot;
        }
        return args.size() == 2 ? args[1] : MakeNone();
      }
      case kDictKeys:
      case kDictValues:
      case kDictItems: {
        std::vector<PyRef> out;
        for (const auto& entry : self->dict.entries()) {
            if (!entry.alive) {
                continue;
            }
            if (method_id == kDictKeys) {
                out.push_back(entry.key);
            } else if (method_id == kDictValues) {
                out.push_back(entry.value);
            } else {
                out.push_back(MakeTuple({entry.key, entry.value}));
            }
        }
        return MakeList(std::move(out));
      }
      case kDictSetdefault: {
        if (args.empty() || args.size() > 2) {
            RaiseError("TypeError",
                       "setdefault() expects 1 or 2 arguments");
            return MakeNone();
        }
        PyRef* slot = self->dict.Find(*this, args[0]);
        if (raised()) {
            return MakeNone();
        }
        if (slot != nullptr) {
            return *slot;
        }
        PyRef value = args.size() == 2 ? args[1] : MakeNone();
        self->dict.Set(*this, args[0], value);
        return value;
      }
      case kDictPop: {
        if (args.empty() || args.size() > 2) {
            RaiseError("TypeError", "pop() expects 1 or 2 arguments");
            return MakeNone();
        }
        PyRef* slot = self->dict.Find(*this, args[0]);
        if (raised()) {
            return MakeNone();
        }
        if (slot == nullptr) {
            if (args.size() == 2) {
                return args[1];
            }
            RaiseError("KeyError", ConcreteView(ToRepr(args[0])));
            return MakeNone();
        }
        PyRef value = *slot;
        self->dict.Erase(*this, args[0]);
        return value;
      }
      case kDictUpdate: {
        if (args.size() != 1 || args[0]->type != PyType::kDict) {
            RaiseError("TypeError", "update() expects a dict");
            return MakeNone();
        }
        for (const auto& entry : args[0]->dict.entries()) {
            if (entry.alive) {
                self->dict.Set(*this, entry.key, entry.value);
                if (raised()) {
                    return MakeNone();
                }
            }
        }
        return MakeNone();
      }
      default:
        CHEF_UNREACHABLE("unknown builtin method id");
    }
}

}  // namespace chef::minipy
